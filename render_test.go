package sops_test

import (
	"math"
	"strings"
	"testing"

	sops "repro"
)

// gridShape checks the render is exactly h lines of w characters.
func gridShape(t *testing.T, s string, w, h int) []string {
	t.Helper()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != h {
		t.Fatalf("%d lines, want %d", len(lines), h)
	}
	for i, l := range lines {
		if len(l) != w {
			t.Fatalf("line %d has %d chars, want %d", i, len(l), w)
		}
	}
	return lines
}

func TestASCIIScatterEmptyAndNil(t *testing.T) {
	// The regression: empty input misbehaved. Both nil and empty must
	// yield a clean blank grid.
	for _, pos := range [][]sops.Vec2{nil, {}} {
		s := sops.ASCIIScatter(pos, nil, 20, 6)
		for _, l := range gridShape(t, s, 20, 6) {
			if strings.TrimSpace(l) != "" {
				t.Fatalf("blank grid expected, got %q", l)
			}
		}
	}
}

func TestASCIIScatterSkipsNonFinitePoints(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	pos := []sops.Vec2{
		{X: 0, Y: 0},
		{X: 1, Y: 1},
		{X: nan, Y: 0.5},
		{X: 0.5, Y: -inf},
		{X: inf, Y: inf},
	}
	types := []int{0, 1, 2, 3, 4}
	s := sops.ASCIIScatter(pos, types, 16, 5) // must not panic (regression: index panic)
	gridShape(t, s, 16, 5)
	if !strings.Contains(s, "0") || !strings.Contains(s, "1") {
		t.Fatalf("finite points missing from render:\n%s", s)
	}
	for _, digit := range []string{"2", "3", "4"} {
		if strings.Contains(s, digit) {
			t.Fatalf("non-finite point %s was rendered:\n%s", digit, s)
		}
	}
	// All non-finite: blank grid, no panic.
	s = sops.ASCIIScatter([]sops.Vec2{{X: nan, Y: nan}, {X: inf, Y: 0}}, nil, 16, 5)
	for _, l := range gridShape(t, s, 16, 5) {
		if strings.TrimSpace(l) != "" {
			t.Fatalf("all-non-finite input should render blank, got %q", l)
		}
	}
}

func TestASCIIScatterNegativeTypesAndShortTypesSlice(t *testing.T) {
	pos := []sops.Vec2{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 0}}
	// A negative label must map into '0'..'9', and a types slice shorter
	// than pos must not index-panic.
	s := sops.ASCIIScatter(pos, []int{-3, 12}, 12, 4)
	gridShape(t, s, 12, 4)
}

// TestASCIIScatterDivergedSim feeds the renderer the output of a
// deliberately unstable simulation — an Euler step far beyond
// MaxStableDt overflows positions to ±Inf/NaN — which used to
// index-panic the renderer.
func TestASCIIScatterDivergedSim(t *testing.T) {
	cfg := sops.SimConfig{
		N:          16,
		Force:      sops.MustF1(sops.ConstantMatrix(1, 10), sops.ConstantMatrix(1, 2)),
		Cutoff:     math.Inf(1),
		Dt:         1e30, // vastly beyond sim.MaxStableDt: guaranteed blow-up
		InitRadius: 0.5,
	}
	sys, err := sops.NewSystem(cfg, sops.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(50)
	pos := sys.Positions()
	nonFinite := 0
	for _, p := range pos {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			nonFinite++
		}
	}
	if nonFinite == 0 {
		t.Fatalf("simulation unexpectedly stayed finite; the renderer regression needs non-finite input")
	}
	gridShape(t, sops.ASCIIScatter(pos, sys.Types(), 40, 12), 40, 12)
}
