// Package sops (Self-Organizing Particle Systems) is the public facade of
// this reproduction of Harder & Polani, "Self-organizing particle systems",
// Advances in Complex Systems 16, 1250089 (2012).
//
// It re-exports the building blocks a user needs to (1) simulate typed
// particle collectives with differential-adhesion interactions (Eq. 6 of
// the paper), (2) factor the shape symmetries out of simulation ensembles
// (Sec. 5.2), and (3) quantify self-organization as the increase of the
// multi-information of the aligned observer variables (Secs. 3.1, 5.3),
// plus the experiment drivers that regenerate every figure of the paper's
// evaluation.
//
// # Quickstart
//
//	cfg := sops.SimConfig{
//		N:      30,
//		Force:  sops.MustF1(sops.ConstantMatrix(3, 1), sops.MustMatrix([][]float64{
//			{1.5, 3.0, 2.5}, {3.0, 1.5, 2.0}, {2.5, 2.0, 1.8},
//		})),
//		Cutoff: 5,
//	}
//	res, err := sops.MeasureSelfOrganization(sops.Pipeline{
//		Name:     "demo",
//		Ensemble: sops.EnsembleConfig{Sim: cfg, M: 64, Steps: 150, RecordEvery: 15, Seed: 1},
//	})
//	// res.MI is the multi-information (bits) over res.Times; an
//	// increasing curve is self-organization in the paper's sense.
//
// See the examples/ directory for complete programs.
package sops

import (
	"repro/internal/align"
	"repro/internal/experiment"
	"repro/internal/forces"
	"repro/internal/infodynamics"
	"repro/internal/infotheory"
	"repro/internal/observer"
	"repro/internal/rngx"
	"repro/internal/sim"
	"repro/internal/statcomplex"
	"repro/internal/sweep"
	"repro/internal/sweep/remote"
	"repro/internal/vec"
	"repro/internal/workpool"
)

// Geometry.
type (
	// Vec2 is a point or displacement in the plane.
	Vec2 = vec.Vec2
	// Rigid is a direct planar isometry (rotation + translation).
	Rigid = align.Rigid
)

// Interactions (Sec. 4.1).
type (
	// Matrix is a symmetric per-type-pair parameter matrix.
	Matrix = forces.Matrix
	// Scaling is a force-scaling function F_αβ(x).
	Scaling = forces.Scaling
	// F1 is Eq. (7): k_αβ(1 − r_αβ/x).
	F1 = forces.F1
	// F2 is Eq. (8): the Gaussian-difference interaction.
	F2 = forces.F2
)

// Simulation (Secs. 4.1, 5.1).
type (
	// SimConfig specifies one simulation run.
	SimConfig = sim.Config
	// System is a running simulation.
	System = sim.System
	// EnsembleConfig specifies an m-sample experiment ensemble.
	EnsembleConfig = sim.EnsembleConfig
	// Ensemble is a recorded ensemble.
	Ensemble = sim.Ensemble
	// CycleDetector detects limit cycles in a running simulation.
	CycleDetector = sim.CycleDetector
)

// Streaming ensemble machinery: the bounded-memory alternative to working
// with fully-materialised ensembles. StreamEnsemble emits each sample's
// recorded frames to a consumer as they are produced; the observer
// Accumulator aligns streamed frames straight into per-step datasets; a
// Collector opts back into full-trajectory retention. Pipeline.Run is
// built from exactly these stages.
type (
	// Frame is one recorded frame delivered to a streaming consumer.
	Frame = sim.Frame
	// FrameVisitor consumes streamed frames (possibly concurrently).
	FrameVisitor = sim.FrameVisitor
	// StreamResult describes a completed frame stream.
	StreamResult = sim.StreamResult
	// EnsembleCollector copies streamed frames into an Ensemble.
	EnsembleCollector = sim.Collector
	// ObserverAccumulator builds per-step observer datasets from
	// streamed frames without materialising the ensemble.
	ObserverAccumulator = observer.Accumulator
	// Aligner runs ICP alignments with reusable scratch storage.
	Aligner = align.Aligner
)

var (
	// StreamEnsemble runs all samples and streams their recorded frames.
	StreamEnsemble = sim.StreamEnsemble
	// StreamSamples streams a sub-range of the ensemble's samples.
	StreamSamples = sim.StreamSamples
	// RecordedSteps returns the shared recorded time grid of a run.
	RecordedSteps = sim.RecordedSteps
	// NewEnsembleCollector prepares full-trajectory retention for a
	// stream.
	NewEnsembleCollector = sim.NewCollector
	// NewObserverAccumulator prepares streaming alignment into per-step
	// datasets.
	NewObserverAccumulator = observer.NewAccumulator
)

// Measurement (Secs. 3.1, 5.2, 5.3).
type (
	// Pipeline is a full experiment: simulate → align → estimate.
	Pipeline = experiment.Pipeline
	// Result is a pipeline outcome (MI time series etc.).
	Result = experiment.Result
	// FigureData is a reduced figure: named curves plus notes; Series is
	// one of its curves. Session.Figure and the sweep scenarios return it.
	FigureData = experiment.FigureData
	Series     = experiment.Series
	// Scale bundles ensemble-size presets.
	Scale = experiment.Scale
	// Dataset holds observer-variable samples.
	Dataset = infotheory.Dataset
	// Decomposition is the Eq. (5) split of multi-information.
	Decomposition = infotheory.Decomposition
	// ObserverConfig controls alignment and k-means reduction.
	ObserverConfig = observer.Config
	// Source is a deterministic random source.
	Source = rngx.Source
	// Estimator evaluates a multi-information estimate on a dataset.
	Estimator = infotheory.Estimator
	// EstimatorEngine is the reusable tree-accelerated estimator engine:
	// one exact k-d tree core (internal/knn) answers the
	// nearest-neighbour and range-count queries of the KSG, KL-entropy
	// and kernel estimators with recycled scratch, bit-identical to the
	// brute-force definitions. Pipeline estimation workers each own one;
	// its Workers field (Pipeline.SampleWorkers) fans the samples of a
	// single estimate out across goroutines.
	EstimatorEngine = infotheory.Engine
)

// Estimator kinds accepted by Pipeline.Estimator.
const (
	EstKSGPaper = experiment.EstKSGPaper
	EstKSG1     = experiment.EstKSG1
	EstKSG2     = experiment.EstKSG2
	EstKernel   = experiment.EstKernel
	EstBinned   = experiment.EstBinned
)

// Approximate estimator tier (Pipeline.Tier / Pipeline.Subsample): the
// KSG sum evaluated at a deterministically drawn subsample of the rows,
// with neighbour searches and counts still exact over all of them, and a
// finite-population-corrected standard error reported per estimate. The
// exact tier stays the default and is bit-identical to the brute-force
// references; the tiers never share checkpoint fingerprints.
type (
	// EstimatorTier selects "exact" or "approx" on a Pipeline.
	EstimatorTier = experiment.EstimatorTier
	// ApproxOptions configures an approximate-tier estimate: the
	// evaluation budget and the (Seed, Sequence) pair keying the draw.
	ApproxOptions = infotheory.ApproxOptions
	// ApproxEstimate is an approximate-tier result: the estimate, its
	// standard error, and the 95% interval, all in bits.
	ApproxEstimate = infotheory.ApproxEstimate
)

const (
	TierExact  = experiment.TierExact
	TierApprox = experiment.TierApprox
)

// Matrix and force constructors.
var (
	// NewMatrix returns a zero symmetric l×l matrix.
	NewMatrix = forces.NewMatrix
	// ConstantMatrix returns a symmetric matrix filled with c.
	ConstantMatrix = forces.ConstantMatrix
	// MatrixFromRows builds and validates a symmetric matrix.
	MatrixFromRows = forces.MatrixFromRows
	// MustMatrix is MatrixFromRows that panics on error.
	MustMatrix = forces.MustMatrix
	// NewF1 / MustF1 build Eq. (7) interactions.
	NewF1  = forces.NewF1
	MustF1 = forces.MustF1
	// NewF2 / MustF2 build Eq. (8) interactions.
	NewF2  = forces.NewF2
	MustF2 = forces.MustF2
	// RandomF1 / RandomF2 draw the random interactions of the sweep
	// experiments.
	RandomF1 = forces.RandomF1
	RandomF2 = forces.RandomF2
	// RandomMatrixIn draws a symmetric matrix with entries uniform in
	// [lo, hi).
	RandomMatrixIn = forces.RandomMatrix
)

// Simulation helpers.
var (
	// NewSystem creates a simulation with disc-uniform initial positions.
	NewSystem = sim.New
	// NewSystemFromPositions creates a simulation from explicit positions.
	NewSystemFromPositions = sim.NewFromPositions
	// RunEnsemble executes an m-sample ensemble in parallel.
	RunEnsemble = sim.RunEnsemble
	// TypesRoundRobin / TypesBlocks assign particle types.
	TypesRoundRobin = sim.TypesRoundRobin
	TypesBlocks     = sim.TypesBlocks
	// NewRNG returns a deterministic random source.
	NewRNG = rngx.New
	// SplitRNG returns an independent sub-stream of a seed.
	SplitRNG = rngx.Split
)

// Estimators (all return bits).
var (
	// NewInfoDataset allocates an observer-variable dataset with the
	// given per-variable dimensions.
	NewInfoDataset = infotheory.NewDataset
	// NewEstimatorEngine returns an estimator engine with the given
	// within-dataset sample parallelism (0 or 1 = serial).
	NewEstimatorEngine = infotheory.NewEngine
	// MultiInfoKSG is the paper's estimator (Eqs. 18–20).
	MultiInfoKSG = infotheory.MultiInfoKSG
	// MultiInfoKernel is the Gaussian-KDE baseline.
	MultiInfoKernel = infotheory.MultiInfoKernel
	// MultiInfoBinned is the shrinkage-binning baseline.
	MultiInfoBinned = infotheory.MultiInfoBinned
	// Decompose splits multi-information over observer groups (Eq. 5).
	Decompose = infotheory.Decompose
	// GroupsByLabel groups observer variables by label (type).
	GroupsByLabel = infotheory.GroupsByLabel
)

// Scales.
var (
	// PaperScale reproduces the paper's sample sizes.
	PaperScale = experiment.PaperScale
	// QuickScale preserves curve shapes at laptop cost.
	QuickScale = experiment.QuickScale
	// TestScale is for tests and benchmarks.
	TestScale = experiment.TestScale
)

// Information dynamics over trajectories (the Sec. 7.3 extension).
type (
	// Trajectory is one particle's positions over recorded steps.
	Trajectory = infodynamics.Trajectory
	// PairTransfer reports bidirectional transfer entropy for a pair.
	PairTransfer = infodynamics.PairTransfer
	// EntropyProfile is the joint/marginal entropy snapshot of one step.
	EntropyProfile = infotheory.EntropyProfile
)

var (
	// TransferEntropy estimates TE(source→target) from trajectories.
	TransferEntropy = infodynamics.TransferEntropy
	// ActiveStorage estimates the active information storage of a
	// particle's trajectory.
	ActiveStorage = infodynamics.ActiveStorage
	// ConditionalMutualInfo is the underlying Frenzel–Pompe estimator;
	// ConditionalMutualInfoApprox is its approximate-tier sibling with
	// subsampled evaluation points and error bars.
	ConditionalMutualInfo       = infodynamics.ConditionalMutualInfo
	ConditionalMutualInfoApprox = infodynamics.ConditionalMutualInfoApprox
	// ParticleTrajectories extracts one particle's trajectories from an
	// ensemble.
	ParticleTrajectories = infodynamics.ParticleTrajectories
	// MeasurePairTransfer computes bidirectional TE for a particle pair.
	MeasurePairTransfer = infodynamics.MeasurePairTransfer
	// DifferentialEntropyKL is the Kozachenko–Leonenko entropy
	// estimator; TrackEntropies on a Pipeline records its profile.
	DifferentialEntropyKL = infotheory.DifferentialEntropyKL
)

// Sweep orchestration: batched multi-run experiments under one global
// worker budget, with per-run checkpointing and resume (see DESIGN.md
// "Sweep orchestration").
type (
	// SweepSpec is one run of a sweep: a pipeline plus a unique ID.
	SweepSpec = experiment.SweepSpec
	// Sweeper executes batches of pipeline runs in spec order.
	Sweeper = experiment.Sweeper
	// SerialSweeper is the serial reference implementation.
	SerialSweeper = experiment.SerialSweeper
	// SweepRunner runs specs concurrently under a shared worker budget
	// with optional gob checkpointing; implements Sweeper.
	SweepRunner = sweep.Runner
	// SweepScenario is a named, registry-provided sweep family.
	SweepScenario = sweep.Scenario
	// SweepGrid is the JSON-loadable custom grid description.
	SweepGrid = sweep.GridSpec
	// WorkerBudget is a shared pool of execution tokens that bounds the
	// machine-wide active work of any number of concurrent pipelines.
	WorkerBudget = workpool.Tokens
	// ResultStore persists completed sweep runs keyed by ID +
	// fingerprint — the pluggable seam checkpointing and distribution
	// share (see DESIGN.md "Distributed sweeps").
	ResultStore = sweep.ResultStore
	// DirStore is the directory-backed ResultStore (one versioned gob
	// file per run, the WithCheckpointDir layout).
	DirStore = sweep.DirStore
	// CacheStore fronts any ResultStore with a byte-bounded in-memory
	// LRU; construct with NewCacheStore.
	CacheStore = sweep.CacheStore
	// SweepCoordinator shards one sweep across worker processes;
	// implements Sweeper. Sessions build one via WithWorkerProcs.
	SweepCoordinator = remote.Coordinator
	// SweepWorkerOptions configures ServeSweepWorker.
	SweepWorkerOptions = remote.WorkerOptions
	// SweepSpawnFunc starts one distributed sweep worker; see
	// CommandSpawner and GoSpawner.
	SweepSpawnFunc = remote.SpawnFunc
)

var (
	// NewWorkerBudget allocates a budget of n tokens (0 = GOMAXPROCS).
	NewWorkerBudget = workpool.NewTokens
	// SweepScenarios lists the registered named sweeps; LookupSweepScenario
	// finds one by name.
	SweepScenarios      = sweep.Scenarios
	LookupSweepScenario = sweep.LookupScenario
	// LoadSweepGrid reads a custom-grid JSON spec.
	LoadSweepGrid = sweep.LoadGridSpec
	// AverageMI runs repeated pipelines through a Sweeper and returns the
	// pointwise-mean MI curve; MeanMICurve / MeanDeltaI are the ordered
	// reducers behind the sweep figures.
	AverageMI   = experiment.AverageMI
	MeanMICurve = experiment.MeanMICurve
	MeanDeltaI  = experiment.MeanDeltaI
	// NewCacheStore fronts a ResultStore with an in-memory LRU of at
	// most maxBytes of result payload.
	NewCacheStore = sweep.NewCacheStore
	// ServeSweepWorker runs the worker side of a distributed sweep: dial
	// the coordinator, execute specs against the shared store, stream
	// progress back (sopsweep -worker calls this).
	ServeSweepWorker = remote.Serve
	// CommandSpawner starts distributed sweep workers as child processes
	// of a binary with a worker mode; GoSpawner runs them as goroutines
	// in this process (tests, benchmarks).
	CommandSpawner = remote.CommandSpawner
	GoSpawner      = remote.GoSpawner
	// SweepWorkerArgs is the canonical argument vector for a
	// sopsweep-style -worker mode, shared so CLI and spawner agree.
	SweepWorkerArgs = remote.WorkerArgs
)

// Statistical complexity (the Sec. 3 alternative measure) and persistence.
type (
	// EpsilonMachine is a reconstructed causal-state machine.
	EpsilonMachine = statcomplex.Machine
	// ComplexityPoint is one window of a symbolic-complexity profile.
	ComplexityPoint = experiment.ComplexityPoint
	// StatComplexOptions configures ε-machine reconstruction.
	StatComplexOptions = statcomplex.Options
)

var (
	// ReconstructMachine builds an ε-machine from symbol sequences.
	ReconstructMachine = statcomplex.Reconstruct
	// SymbolizeDisplacements turns a trajectory into motion symbols.
	SymbolizeDisplacements = statcomplex.SymbolizeDisplacements
	// SymbolicComplexityProfile computes windowed statistical
	// complexity over an ensemble (the Sec. 7.1 diagnostic).
	SymbolicComplexityProfile = experiment.SymbolicComplexityProfile
	// SaveEnsemble / LoadEnsemble persist simulation output to disk.
	SaveEnsemble = sim.SaveEnsemble
	LoadEnsemble = sim.LoadEnsemble
)

// MeasureSelfOrganization runs a full pipeline: simulate the ensemble,
// factor out the shape symmetries, and estimate the multi-information of
// the observer variables at every recorded step. Self-organization in the
// paper's sense (Sec. 3.1) is an increasing Result.MI curve.
//
// The stages run as an overlapped stream with bounded memory: raw
// trajectories are dropped as soon as they are aligned unless
// Pipeline.RetainEnsemble is set, so ensemble sizes far beyond the paper's
// fit in memory. Results are bit-identical for every worker count.
//
// This is the historical entry point, kept as a thin wrapper over
// context.Background() (as are Pipeline.Run and RunEnsemble). New code
// that wants cancellation, a shared worker budget, checkpointing or
// progress events should describe the experiment as a Spec and run it
// through a Session — the numbers are bit-identical either way.
func MeasureSelfOrganization(p Pipeline) (*Result, error) { return p.Run() }
