package observer

import (
	"math"
	"testing"

	"repro/internal/forces"
	"repro/internal/infotheory"
	"repro/internal/sim"
	"repro/internal/vec"
)

func smallEnsemble(t *testing.T, n, l, m, steps, every int) *sim.Ensemble {
	t.Helper()
	ens, err := sim.RunEnsemble(sim.EnsembleConfig{
		Sim: sim.Config{
			N:      n,
			Types:  sim.TypesRoundRobin(n, l),
			Force:  forces.MustF1(forces.ConstantMatrix(l, 1), forces.ConstantMatrix(l, 2)),
			Cutoff: 6,
		},
		M:           m,
		Steps:       steps,
		RecordEvery: every,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ens
}

func TestFromEnsembleShapes(t *testing.T) {
	ens := smallEnsemble(t, 12, 3, 8, 20, 10)
	obs, err := FromEnsemble(ens, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.Times) != 3 { // 0, 10, 20
		t.Fatalf("times = %v", obs.Times)
	}
	if len(obs.Datasets) != 3 {
		t.Fatalf("%d datasets", len(obs.Datasets))
	}
	for _, d := range obs.Datasets {
		if d.NumSamples() != 8 || d.NumVars() != 12 || d.Dim(0) != 2 {
			t.Fatal("dataset shape wrong")
		}
	}
	if len(obs.Labels) != 12 {
		t.Fatalf("labels = %v", obs.Labels)
	}
	for v, lab := range obs.Labels {
		if lab != v%3 {
			t.Fatal("labels should be particle types")
		}
	}
}

func TestFromEnsembleGroups(t *testing.T) {
	ens := smallEnsemble(t, 9, 3, 4, 10, 10)
	obs, err := FromEnsemble(ens, Config{})
	if err != nil {
		t.Fatal(err)
	}
	groups := obs.Groups()
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	for ty, g := range groups {
		if len(g) != 3 {
			t.Fatalf("group %d = %v", ty, g)
		}
	}
}

func TestFromEnsembleAlignedDatasetsAreCentred(t *testing.T) {
	ens := smallEnsemble(t, 10, 2, 6, 10, 10)
	obs, err := FromEnsemble(ens, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range obs.Datasets {
		for s := 0; s < ds.NumSamples(); s++ {
			var cx, cy float64
			for v := 0; v < ds.NumVars(); v++ {
				x := ds.Var(s, v)
				cx += x[0]
				cy += x[1]
			}
			cx /= float64(ds.NumVars())
			cy /= float64(ds.NumVars())
			if math.Abs(cx) > 1e-6 || math.Abs(cy) > 1e-6 {
				t.Fatalf("sample %d centroid = (%v,%v)", s, cx, cy)
			}
		}
	}
}

func TestFromEnsembleSkipAlign(t *testing.T) {
	ens := smallEnsemble(t, 8, 2, 5, 10, 10)
	obs, err := FromEnsemble(ens, Config{SkipAlign: true})
	if err != nil {
		t.Fatal(err)
	}
	// SkipAlign still centres: variable 0 of sample 0 should be the raw
	// frame position minus its centroid.
	raw := ens.Trajs[0].Frames[0]
	c := vec.Centroid(raw)
	got := obs.Datasets[0].Var(0, 0)
	want := raw[0].Sub(c)
	if math.Abs(got[0]-want.X) > 1e-12 || math.Abs(got[1]-want.Y) > 1e-12 {
		t.Fatalf("SkipAlign dataset = %v, want %v", got, want)
	}
}

func TestFromEnsembleKMeansReduction(t *testing.T) {
	ens := smallEnsemble(t, 20, 2, 6, 10, 10)
	obs, err := FromEnsemble(ens, Config{KMeansK: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// 2 types × 3 clusters = 6 mean variables (types have 10 members
	// each, so no group shrinkage).
	if len(obs.Labels) != 6 {
		t.Fatalf("reduced to %d observers, want 6", len(obs.Labels))
	}
	for _, ds := range obs.Datasets {
		if ds.NumVars() != 6 {
			t.Fatal("reduced dataset has wrong variable count")
		}
	}
	// Labels: 3 variables per type.
	count := map[int]int{}
	for _, lab := range obs.Labels {
		count[lab]++
	}
	if count[0] != 3 || count[1] != 3 {
		t.Fatalf("label distribution = %v", count)
	}
}

func TestFromEnsembleKMeansDeterministic(t *testing.T) {
	ens := smallEnsemble(t, 16, 2, 5, 10, 10)
	a, err := FromEnsemble(ens, Config{KMeansK: 2, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromEnsemble(ens, Config{KMeansK: 2, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range a.Datasets {
		for s := 0; s < a.Datasets[ti].NumSamples(); s++ {
			for v := 0; v < a.Datasets[ti].NumVars(); v++ {
				av := a.Datasets[ti].Var(s, v)
				bv := b.Datasets[ti].Var(s, v)
				if av[0] != bv[0] || av[1] != bv[1] {
					t.Fatal("k-means reduction not deterministic")
				}
			}
		}
	}
}

func TestMeanDatasetValues(t *testing.T) {
	frames := [][]vec.Vec2{
		{v2(0, 0), v2(2, 0), v2(10, 10)},
		{v2(1, 1), v2(3, 1), v2(20, 20)},
	}
	groups := [][]int{{0, 1}, {2}}
	d := meanDataset(frames, groups)
	if v := d.Var(0, 0); v[0] != 1 || v[1] != 0 {
		t.Fatalf("mean of group 0 sample 0 = %v", v)
	}
	if v := d.Var(1, 0); v[0] != 2 || v[1] != 1 {
		t.Fatalf("mean of group 0 sample 1 = %v", v)
	}
	if v := d.Var(0, 1); v[0] != 10 || v[1] != 10 {
		t.Fatalf("singleton group mean = %v", v)
	}
}

func TestKMeansReductionLowersDimensionButKeepsSignal(t *testing.T) {
	// The reduced estimate must detect organisation in an organising
	// system: final MI above initial MI under reduction, as in the full
	// representation (Sec. 5.3.1: the reduction underestimates but
	// preserves the trend).
	ens, err := sim.RunEnsemble(sim.EnsembleConfig{
		Sim: sim.Config{
			N:     24,
			Types: sim.TypesRoundRobin(24, 2),
			Force: forces.MustF1(forces.ConstantMatrix(2, 1),
				forces.MustMatrix([][]float64{{1.5, 4.0}, {4.0, 2.0}})),
			Cutoff: 6,
		},
		M:           64,
		Steps:       120,
		RecordEvery: 120,
		Seed:        17,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := FromEnsemble(ens, Config{KMeansK: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	first := infotheory.MultiInfoKSGVariant(obs.Datasets[0], 4, infotheory.KSG2)
	last := infotheory.MultiInfoKSGVariant(obs.Datasets[len(obs.Datasets)-1], 4, infotheory.KSG2)
	if last <= first {
		t.Fatalf("reduced MI did not increase: %v -> %v", first, last)
	}
}

func TestNumTypes(t *testing.T) {
	if numTypes([]int{0, 2, 1, 2}) != 3 {
		t.Fatal("numTypes wrong")
	}
}
