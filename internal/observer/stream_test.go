package observer

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/align"
	"repro/internal/sim"
)

// datasetsEqual reports whether two observer results are byte-identical.
func observersEqual(t *testing.T, a, b *Observers) {
	t.Helper()
	if !reflect.DeepEqual(a.Times, b.Times) {
		t.Fatalf("times differ: %v vs %v", a.Times, b.Times)
	}
	if !reflect.DeepEqual(a.Labels, b.Labels) {
		t.Fatalf("labels differ: %v vs %v", a.Labels, b.Labels)
	}
	if len(a.Datasets) != len(b.Datasets) {
		t.Fatalf("%d vs %d datasets", len(a.Datasets), len(b.Datasets))
	}
	for ti := range a.Datasets {
		da, db := a.Datasets[ti], b.Datasets[ti]
		if da.NumSamples() != db.NumSamples() || da.NumVars() != db.NumVars() {
			t.Fatalf("dataset %d shape differs", ti)
		}
		for s := 0; s < da.NumSamples(); s++ {
			for v := 0; v < da.NumVars(); v++ {
				xa, xb := da.Var(s, v), db.Var(s, v)
				for i := range xa {
					if xa[i] != xb[i] {
						t.Fatalf("dataset %d sample %d var %d: %x vs %x", ti, s, v, xa[i], xb[i])
					}
				}
			}
		}
	}
}

// TestStreamingMatchesBatch asserts the headline equivalence: the streaming
// accumulator path of FromEnsemble is byte-identical to the fully-batched
// path (materialise, AlignFrame per step, package) that the seed
// implementation used, for per-particle, k-means-reduced and
// alignment-skipping configurations.
func TestStreamingMatchesBatch(t *testing.T) {
	ens := smallEnsemble(t, 12, 3, 10, 20, 10)
	cfgs := map[string]Config{
		"per-particle": {},
		"kmeans":       {KMeansK: 2, Seed: 7},
		"skipalign":    {SkipAlign: true},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			streamed, err := FromEnsemble(ens, cfg)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := fromEnsembleBatch(context.Background(), ens, cfg)
			if err != nil {
				t.Fatal(err)
			}
			observersEqual(t, streamed, batch)
		})
	}
}

// TestStreamingMatchesBatchAcrossWorkers varies the alignment worker count;
// the accumulator writes disjoint dataset rows, so results must not depend
// on scheduling.
func TestStreamingMatchesBatchAcrossWorkers(t *testing.T) {
	ens := smallEnsemble(t, 10, 2, 8, 15, 5)
	ref, err := fromEnsembleBatch(context.Background(), ens, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 32} {
		cfg := Config{Align: align.FrameOptions{Workers: workers}}
		streamed, err := FromEnsemble(ens, cfg)
		if err != nil {
			t.Fatal(err)
		}
		observersEqual(t, streamed, ref)
	}
}

// feedAccumulator drives the full accumulator protocol by hand from an
// ensemble, with the (sample, step) Add order chosen by perm.
func feedAccumulator(t *testing.T, ens *sim.Ensemble, cfg Config, addOrder func(items [][2]int)) *Accumulator {
	t.Helper()
	times := ens.Times()
	acc, err := NewAccumulator(len(ens.Trajs), times, ens.Types, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range times {
		if err := acc.SeedReference(ti, ens.Trajs[0].Frames[ti]); err != nil {
			t.Fatal(err)
		}
	}
	if err := acc.FinishReference(); err != nil {
		t.Fatal(err)
	}
	var items [][2]int
	for s := 1; s < len(ens.Trajs); s++ {
		for ti := range times {
			items = append(items, [2]int{s, ti})
		}
	}
	if addOrder != nil {
		addOrder(items)
	}
	for _, it := range items {
		if err := acc.Add(it[0], it[1], ens.Trajs[it[0]].Frames[it[1]]); err != nil {
			t.Fatal(err)
		}
	}
	return acc
}

func TestAccumulatorOrderInvariance(t *testing.T) {
	ens := smallEnsemble(t, 9, 3, 6, 10, 5)
	ref := feedAccumulator(t, ens, Config{}, nil).Observers()
	shuffled := feedAccumulator(t, ens, Config{}, func(items [][2]int) {
		rand.New(rand.NewSource(3)).Shuffle(len(items), func(i, j int) {
			items[i], items[j] = items[j], items[i]
		})
	}).Observers()
	observersEqual(t, ref, shuffled)
}

func TestAccumulatorConcurrentAdds(t *testing.T) {
	ens := smallEnsemble(t, 8, 2, 12, 10, 5)
	ref := feedAccumulator(t, ens, Config{}, nil).Observers()

	times := ens.Times()
	acc, err := NewAccumulator(len(ens.Trajs), times, ens.Types, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range times {
		if err := acc.SeedReference(ti, ens.Trajs[0].Frames[ti]); err != nil {
			t.Fatal(err)
		}
	}
	if err := acc.FinishReference(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, len(ens.Trajs))
	for s := 1; s < len(ens.Trajs); s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for ti := range times {
				if err := acc.Add(s, ti, ens.Trajs[s].Frames[ti]); err != nil {
					errc <- err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	observersEqual(t, ref, acc.Observers())
}

func TestAccumulatorStepCompletion(t *testing.T) {
	ens := smallEnsemble(t, 8, 2, 5, 10, 5)
	times := ens.Times()
	completed := make(map[int]int)
	acc, err := NewAccumulator(len(ens.Trajs), times, ens.Types, Config{})
	if err != nil {
		t.Fatal(err)
	}
	acc.OnStepComplete = func(ti int) { completed[ti]++ }
	for ti := range times {
		if err := acc.SeedReference(ti, ens.Trajs[0].Frames[ti]); err != nil {
			t.Fatal(err)
		}
	}
	if err := acc.FinishReference(); err != nil {
		t.Fatal(err)
	}
	if len(completed) != 0 {
		t.Fatalf("steps completed before any Add: %v", completed)
	}
	// Feed step-major so completions arrive one step at a time.
	for ti := range times {
		for s := 1; s < len(ens.Trajs); s++ {
			if err := acc.Add(s, ti, ens.Trajs[s].Frames[ti]); err != nil {
				t.Fatal(err)
			}
		}
		if completed[ti] != 1 {
			t.Fatalf("step %d completion count = %d after its last Add", ti, completed[ti])
		}
	}
	if len(completed) != len(times) {
		t.Fatalf("%d of %d steps completed", len(completed), len(times))
	}
}

func TestAccumulatorSingleSampleCompletesAtFinish(t *testing.T) {
	ens := smallEnsemble(t, 6, 2, 1, 10, 5)
	times := ens.Times()
	var completed []int
	acc, err := NewAccumulator(1, times, ens.Types, Config{})
	if err != nil {
		t.Fatal(err)
	}
	acc.OnStepComplete = func(ti int) { completed = append(completed, ti) }
	for ti := range times {
		if err := acc.SeedReference(ti, ens.Trajs[0].Frames[ti]); err != nil {
			t.Fatal(err)
		}
	}
	if err := acc.FinishReference(); err != nil {
		t.Fatal(err)
	}
	if len(completed) != len(times) {
		t.Fatalf("M=1: %d of %d steps completed at FinishReference", len(completed), len(times))
	}
}

func TestAccumulatorProtocolErrors(t *testing.T) {
	ens := smallEnsemble(t, 6, 2, 4, 10, 5)
	times := ens.Times()

	if _, err := NewAccumulator(0, times, ens.Types, Config{}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewAccumulator(4, nil, ens.Types, Config{}); err == nil {
		t.Error("empty time grid accepted")
	}
	if _, err := NewAccumulator(4, times, ens.Types, Config{
		Align: align.FrameOptions{Reference: align.RefMedoid},
	}); err == nil {
		t.Error("medoid reference accepted by the streaming accumulator")
	}

	acc, err := NewAccumulator(4, times, ens.Types, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(1, 0, ens.Trajs[1].Frames[0]); err == nil {
		t.Error("Add before FinishReference accepted")
	}
	if err := acc.FinishReference(); err == nil {
		t.Error("FinishReference with unseeded steps accepted")
	}
	for ti := range times {
		if err := acc.SeedReference(ti, ens.Trajs[0].Frames[ti]); err != nil {
			t.Fatal(err)
		}
	}
	if err := acc.SeedReference(0, ens.Trajs[0].Frames[0][:3]); err == nil {
		t.Error("short reference frame accepted")
	}
	if err := acc.FinishReference(); err != nil {
		t.Fatal(err)
	}
	if err := acc.FinishReference(); err == nil {
		t.Error("double FinishReference accepted")
	}
	if err := acc.Add(0, 0, ens.Trajs[0].Frames[0]); err == nil {
		t.Error("Add of the reference sample accepted")
	}
	if err := acc.Add(4, 0, ens.Trajs[1].Frames[0]); err == nil {
		t.Error("out-of-range sample accepted")
	}
	if err := acc.Add(1, len(times), ens.Trajs[1].Frames[0]); err == nil {
		t.Error("out-of-range step accepted")
	}
	if err := acc.Add(1, 0, ens.Trajs[1].Frames[0][:3]); err == nil {
		t.Error("short frame accepted")
	}
}

// TestAccumulatorSteadyStateAllocations is the allocation regression test
// for the per-step accumulators: after the pools are warm, adding a frame
// must not allocate on the SkipAlign path and must stay within a small
// constant on the ICP path (scratch-reusing Aligner; no per-frame tree,
// lift, permutation or matching storage).
func TestAccumulatorSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are only meaningful without -race")
	}
	ens := smallEnsemble(t, 12, 3, 4, 10, 5)
	times := ens.Times()
	build := func(cfg Config) *Accumulator {
		acc, err := NewAccumulator(len(ens.Trajs), times, ens.Types, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for ti := range times {
			if err := acc.SeedReference(ti, ens.Trajs[0].Frames[ti]); err != nil {
				t.Fatal(err)
			}
		}
		if err := acc.FinishReference(); err != nil {
			t.Fatal(err)
		}
		return acc
	}

	t.Run("skipalign", func(t *testing.T) {
		acc := build(Config{SkipAlign: true})
		warm := func() {
			for s := 1; s < len(ens.Trajs); s++ {
				if err := acc.Add(s, 0, ens.Trajs[s].Frames[0]); err != nil {
					t.Fatal(err)
				}
			}
		}
		warm()
		allocs := testing.AllocsPerRun(20, func() {
			if err := acc.Add(1, 1, ens.Trajs[1].Frames[1]); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("SkipAlign Add allocates %.1f objects/op, want 0", allocs)
		}
	})

	t.Run("aligned", func(t *testing.T) {
		acc := build(Config{})
		for s := 1; s < len(ens.Trajs); s++ {
			if err := acc.Add(s, 0, ens.Trajs[s].Frames[0]); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(20, func() {
			if err := acc.Add(1, 1, ens.Trajs[1].Frames[1]); err != nil {
				t.Fatal(err)
			}
		})
		// The pre-refactor ICP allocated ~10 slices, a k-d tree, O(n)
		// sort closures and several maps per frame (hundreds of
		// objects); the scratch-reusing path should be near zero.
		if allocs > 8 {
			t.Errorf("aligned Add allocates %.1f objects/op, want ≤ 8", allocs)
		}
	})
}
