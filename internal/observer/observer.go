// Package observer turns aligned simulation ensembles into the observer-
// variable datasets of Sec. 3.1: per recorded time step, a dataset whose
// variables W₁^(t),…,W_n^(t) are the aligned per-particle positions across
// the m samples, plus the coarse-graining machinery — per-type grouping for
// the decomposition of Sec. 6.1.1 and the k-means mean-variable reduction
// of Sec. 5.3.1 for large collectives.
package observer

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/align"
	"repro/internal/infotheory"
	"repro/internal/kmeans"
	"repro/internal/rngx"
	"repro/internal/sim"
	"repro/internal/vec"
	"repro/internal/workpool"
)

// Observers is the processed representation of one experiment: for each
// recorded time step, an observer dataset, together with the observer
// labels that drive grouping.
type Observers struct {
	// Times are the recorded step indices, shared with the ensemble.
	Times []int
	// Datasets[t] holds the m×n observer samples of recorded step t.
	Datasets []*infotheory.Dataset
	// Labels[v] is the type label of observer variable v (the particle
	// type, or the owning type of a k-means mean variable).
	Labels []int
}

// Groups returns the variable groups by label, for the per-type
// decomposition.
func (o *Observers) Groups() [][]int { return infotheory.GroupsByLabel(o.Labels) }

// Config controls the ensemble→observer reduction.
type Config struct {
	// Align configures the per-frame ICP alignment.
	Align align.FrameOptions
	// KMeansK, when positive, replaces per-particle observers by per-
	// type k-means mean variables (Sec. 5.3.1): particles of each type
	// are partitioned into at most KMeansK groups on the anchor frame
	// and each group's mean position becomes one observer variable. The
	// paper applies this for systems with more than 60 particles.
	KMeansK int
	// Seed drives the k-means seeding (deterministic reduction).
	Seed uint64
	// SkipAlign bypasses the ICP alignment (centring still applied).
	// Exposed for the ablation of the invariant representation: the
	// paper argues alignment densifies the sample space; this switch
	// lets the harness measure exactly that.
	SkipAlign bool
}

// Streamable reports whether this configuration can run through the
// streaming Accumulator: either alignment is skipped, or the reference is
// RefFirst (the default). The medoid reference needs every sample of a
// frame simultaneously and requires the batch path. This is the single
// dispatch predicate shared by FromEnsemble, NewAccumulator and
// experiment.Pipeline.Run.
func (c Config) Streamable() bool {
	return c.SkipAlign || c.Align.Reference == align.RefFirst
}

// FromEnsemble aligns every recorded frame of the ensemble and packages the
// result as observer datasets. The anchor frame for the k-means reduction is
// the aligned final frame of the first sample (organised configurations
// give spatially meaningful clusters).
//
// With the default RefFirst reference (or SkipAlign) the work runs through
// the streaming Accumulator: frames are aligned in parallel across
// (sample, step) work items and written directly into the per-step
// datasets, with no aligned intermediate copy of the ensemble. The medoid
// reference needs all samples of a frame at once and takes the batch path.
func FromEnsemble(ens *sim.Ensemble, cfg Config) (*Observers, error) {
	return FromEnsembleCtx(context.Background(), ens, cfg)
}

// FromEnsembleCtx is FromEnsemble under a context: cancellation stops the
// per-(sample, step) alignment pool within one work item and returns the
// context's error. Results are bit-identical to FromEnsemble whenever the
// context is never cancelled.
func FromEnsembleCtx(ctx context.Context, ens *sim.Ensemble, cfg Config) (*Observers, error) {
	times := ens.Times()
	if len(times) == 0 {
		return nil, fmt.Errorf("observer: ensemble has no recorded frames")
	}
	if !cfg.Streamable() {
		return fromEnsembleBatch(ctx, ens, cfg)
	}
	m := len(ens.Trajs)
	acc, err := NewAccumulator(m, times, ens.Types, cfg)
	if err != nil {
		return nil, err
	}
	for t := range times {
		if err := acc.SeedReference(t, ens.Trajs[0].Frames[t]); err != nil {
			return nil, err
		}
	}
	if err := acc.FinishReference(); err != nil {
		return nil, err
	}
	if m > 1 {
		nT := len(times)
		workers := cfg.Align.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		err := workpool.RunSharedCtx(ctx, (m-1)*nT, workers, nil, func(_, i int) error {
			s, t := 1+i/nT, i%nT
			return acc.Add(s, t, ens.Trajs[s].Frames[t])
		})
		if err != nil {
			return nil, err
		}
	}
	return acc.Observers(), nil
}

// fromEnsembleBatch is the fully-materialised path: align every frame over
// all samples first (required by the medoid reference), then package the
// aligned copies into datasets.
func fromEnsembleBatch(ctx context.Context, ens *sim.Ensemble, cfg Config) (*Observers, error) {
	times := ens.Times()
	// Align all recorded frames.
	aligned := make([][][]vec.Vec2, len(times))
	for t := range times {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		frames := ens.FramesAt(t)
		if cfg.SkipAlign {
			aligned[t] = centerOnly(frames)
			continue
		}
		af, err := align.AlignFrame(frames, ens.Types, cfg.Align)
		if err != nil {
			return nil, fmt.Errorf("observer: frame %d: %w", t, err)
		}
		aligned[t] = af
	}

	obs := &Observers{Times: append([]int(nil), times...)}

	if cfg.KMeansK <= 0 {
		obs.Labels = append([]int(nil), ens.Types...)
		obs.Datasets = make([]*infotheory.Dataset, len(times))
		for t := range times {
			obs.Datasets[t] = infotheory.FromFrames(aligned[t])
		}
		return obs, nil
	}

	// k-means reduction: partition particle indices per type on the
	// anchor frame, then per sample take each group's mean position.
	l := numTypes(ens.Types)
	anchor := aligned[len(times)-1][0]
	groups, err := kmeans.PartitionByType(anchor, ens.Types, l, cfg.KMeansK, rngx.New(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("observer: k-means reduction: %w", err)
	}
	var flat [][]int
	for t, perType := range groups {
		for _, g := range perType {
			flat = append(flat, g)
			obs.Labels = append(obs.Labels, t)
		}
	}
	if len(flat) < 2 {
		return nil, fmt.Errorf("observer: k-means reduction produced %d observers; need at least 2", len(flat))
	}
	obs.Datasets = make([]*infotheory.Dataset, len(times))
	for t := range times {
		obs.Datasets[t] = meanDataset(aligned[t], flat)
	}
	return obs, nil
}

func centerOnly(frames [][]vec.Vec2) [][]vec.Vec2 {
	out := make([][]vec.Vec2, len(frames))
	for s, f := range frames {
		c := append([]vec.Vec2(nil), f...)
		vec.Center(c)
		out[s] = c
	}
	return out
}

func numTypes(types []int) int {
	max := -1
	for _, t := range types {
		if t > max {
			max = t
		}
	}
	return max + 1
}

// meanDataset builds the reduced dataset Ŵ of Sec. 5.3.1: variable g of
// sample s is the mean position of the particles in groups[g] in sample s.
func meanDataset(frames [][]vec.Vec2, groups [][]int) *infotheory.Dataset {
	dims := make([]int, len(groups))
	for g := range dims {
		dims[g] = 2
	}
	d := infotheory.NewDataset(len(frames), dims)
	for s, f := range frames {
		for g, members := range groups {
			var sum vec.Vec2
			for _, i := range members {
				sum = sum.Add(f[i])
			}
			mean := sum.Scale(1 / float64(len(members)))
			d.SetVar(s, g, mean.X, mean.Y)
		}
	}
	return d
}
