//go:build !race

package observer

const raceEnabled = false
