package observer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/align"
	"repro/internal/infotheory"
	"repro/internal/kmeans"
	"repro/internal/rngx"
	"repro/internal/vec"
)

// Accumulator builds the per-step observer datasets of an ensemble from
// streamed frames, without ever materialising the ensemble or an aligned
// copy of it: each arriving frame is ICP-aligned against the retained
// reference configuration of its time step and written directly into row s
// of that step's infotheory.Dataset. Peak memory is the datasets themselves
// plus one reference trajectory — O(M·T·N) once, instead of the three
// transcripts (raw ensemble, aligned copy, datasets) of the batch path.
//
// Protocol:
//
//  1. SeedReference(t, pos) once per recorded step with the frames of the
//     reference sample (sample 0), in any order, from one goroutine.
//  2. FinishReference() — computes the k-means reduction (if configured),
//     allocates the datasets and writes the reference sample's rows.
//  3. Add(s, t, pos) exactly once per remaining (sample, step) pair, from
//     any number of goroutines concurrently.
//  4. Observers() after all Add calls have returned.
//
// Streaming alignment supports the RefFirst reference only: the medoid
// reference needs every sample of a frame simultaneously and therefore
// remains a batch-path feature (see FromEnsemble).
type Accumulator struct {
	cfg   Config
	m     int
	times []int
	types []int

	refs     [][]vec.Vec2 // centred reference configuration per step
	seeded   []bool
	finished bool

	labels   []int
	groups   [][]int // k-means variable groups; nil in per-particle mode
	datasets []*infotheory.Dataset

	// remaining[t] counts samples not yet written into step t; when it
	// reaches zero the step's dataset is complete and immutable.
	remaining []atomic.Int32
	// OnStepComplete, when set before FinishReference, is invoked exactly
	// once per step as soon as the step's dataset holds all m samples —
	// possibly concurrently for different steps, from whichever goroutine
	// completed the step. It lets the estimation stage of a pipeline
	// start on a step while later frames are still being simulated.
	OnStepComplete func(t int)

	scratch sync.Pool // *addScratch
}

// addScratch is the per-goroutine working set of Add: the ICP scratch plus
// a row buffer, pooled so that steady-state accumulation does not allocate.
type addScratch struct {
	al  align.Aligner
	row []vec.Vec2
}

// NewAccumulator prepares an accumulator for an ensemble of m samples over
// the given recorded time grid and type assignment. cfg.Align.Reference
// must be RefFirst (the default) unless cfg.SkipAlign is set.
func NewAccumulator(m int, times, types []int, cfg Config) (*Accumulator, error) {
	if m <= 0 {
		return nil, fmt.Errorf("observer: accumulator needs at least one sample, got %d", m)
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("observer: ensemble has no recorded frames")
	}
	if len(types) == 0 {
		return nil, fmt.Errorf("observer: empty type assignment")
	}
	if !cfg.Streamable() {
		return nil, fmt.Errorf("observer: streaming alignment supports the RefFirst reference only")
	}
	a := &Accumulator{
		cfg:       cfg,
		m:         m,
		times:     append([]int(nil), times...),
		types:     append([]int(nil), types...),
		refs:      make([][]vec.Vec2, len(times)),
		seeded:    make([]bool, len(times)),
		remaining: make([]atomic.Int32, len(times)),
	}
	a.scratch.New = func() any { return new(addScratch) }
	return a, nil
}

// SeedReference records the reference sample's frame for step t (centred).
// Must be called for every step before FinishReference; not safe for
// concurrent use. pos is copied.
func (a *Accumulator) SeedReference(t int, pos []vec.Vec2) error {
	if a.finished {
		return fmt.Errorf("observer: SeedReference after FinishReference")
	}
	if t < 0 || t >= len(a.times) {
		return fmt.Errorf("observer: reference step %d outside time grid of %d", t, len(a.times))
	}
	if len(pos) != len(a.types) {
		return fmt.Errorf("observer: reference frame %d has %d points, want %d", t, len(pos), len(a.types))
	}
	c := append([]vec.Vec2(nil), pos...)
	vec.Center(c)
	a.refs[t] = c
	a.seeded[t] = true
	return nil
}

// FinishReference ends the reference phase: it derives the observer
// variables (per-particle, or the Sec. 5.3.1 k-means mean variables using
// the reference sample's final frame as the anchor), allocates the per-step
// datasets and writes the reference sample's rows.
func (a *Accumulator) FinishReference() error {
	if a.finished {
		return fmt.Errorf("observer: FinishReference called twice")
	}
	for t, ok := range a.seeded {
		if !ok {
			return fmt.Errorf("observer: reference frame %d not seeded", t)
		}
	}

	if a.cfg.KMeansK <= 0 {
		a.labels = append([]int(nil), a.types...)
		dims := make([]int, len(a.types))
		for v := range dims {
			dims[v] = 2
		}
		a.datasets = make([]*infotheory.Dataset, len(a.times))
		for t := range a.times {
			a.datasets[t] = infotheory.NewDataset(a.m, dims)
		}
	} else {
		// k-means reduction: partition particle indices per type on the
		// anchor frame — the aligned final frame of the reference sample.
		l := numTypes(a.types)
		anchor := a.refs[len(a.times)-1]
		groups, err := kmeans.PartitionByType(anchor, a.types, l, a.cfg.KMeansK, rngx.New(a.cfg.Seed))
		if err != nil {
			return fmt.Errorf("observer: k-means reduction: %w", err)
		}
		for ty, perType := range groups {
			for _, g := range perType {
				a.groups = append(a.groups, g)
				a.labels = append(a.labels, ty)
			}
		}
		if len(a.groups) < 2 {
			return fmt.Errorf("observer: k-means reduction produced %d observers; need at least 2", len(a.groups))
		}
		dims := make([]int, len(a.groups))
		for g := range dims {
			dims[g] = 2
		}
		a.datasets = make([]*infotheory.Dataset, len(a.times))
		for t := range a.times {
			a.datasets[t] = infotheory.NewDataset(a.m, dims)
		}
	}

	a.finished = true
	for t := range a.times {
		a.writeRow(t, 0, a.refs[t])
		a.remaining[t].Store(int32(a.m - 1))
		if a.m == 1 {
			a.complete(t)
		}
	}
	return nil
}

// Add aligns sample s's frame for step t against the step's reference and
// writes it into the step's dataset. Call exactly once per (s, t) with
// 1 ≤ s < m, after FinishReference; safe for concurrent use. pos is read
// during the call only.
func (a *Accumulator) Add(s, t int, pos []vec.Vec2) error {
	if !a.finished {
		return fmt.Errorf("observer: Add before FinishReference")
	}
	if s <= 0 || s >= a.m {
		return fmt.Errorf("observer: sample %d outside (0, %d)", s, a.m)
	}
	if t < 0 || t >= len(a.times) {
		return fmt.Errorf("observer: step %d outside time grid of %d", t, len(a.times))
	}
	if len(pos) != len(a.types) {
		return fmt.Errorf("observer: sample %d frame %d has %d points, want %d", s, t, len(pos), len(a.types))
	}
	sc := a.scratch.Get().(*addScratch)
	defer a.scratch.Put(sc)
	if a.cfg.SkipAlign {
		sc.row = append(sc.row[:0], pos...)
		vec.Center(sc.row)
	} else {
		if cap(sc.row) < len(pos) {
			sc.row = make([]vec.Vec2, len(pos))
		}
		sc.row = sc.row[:len(pos)]
		if err := sc.al.AlignReorderedInto(sc.row, pos, a.refs[t], a.types, a.cfg.Align.ICP); err != nil {
			return fmt.Errorf("observer: sample %d frame %d: %w", s, t, err)
		}
	}
	a.writeRow(t, s, sc.row)
	if a.remaining[t].Add(-1) == 0 {
		a.complete(t)
	}
	return nil
}

func (a *Accumulator) complete(t int) {
	if a.OnStepComplete != nil {
		a.OnStepComplete(t)
	}
}

// writeRow stores one sample's aligned configuration as row s of step t's
// dataset — directly for per-particle observers, or as per-group mean
// positions under the k-means reduction (Sec. 5.3.1).
func (a *Accumulator) writeRow(t, s int, aligned []vec.Vec2) {
	d := a.datasets[t]
	if a.groups == nil {
		for v, p := range aligned {
			d.SetVar(s, v, p.X, p.Y)
		}
		return
	}
	for g, members := range a.groups {
		var sum vec.Vec2
		for _, i := range members {
			sum = sum.Add(aligned[i])
		}
		mean := sum.Scale(1 / float64(len(members)))
		d.SetVar(s, g, mean.X, mean.Y)
	}
}

// Times returns the recorded time grid.
func (a *Accumulator) Times() []int { return a.times }

// Labels returns the observer variable labels; valid after FinishReference.
func (a *Accumulator) Labels() []int { return a.labels }

// Datasets returns the per-step datasets; valid after FinishReference. A
// step's dataset is immutable once its OnStepComplete fired (or, without a
// callback, once every Add returned).
func (a *Accumulator) Datasets() []*infotheory.Dataset { return a.datasets }

// Observers packages the accumulated result. Call after the stream is done.
func (a *Accumulator) Observers() *Observers {
	return &Observers{
		Times:    append([]int(nil), a.times...),
		Datasets: a.datasets,
		Labels:   a.labels,
	}
}
