//go:build race

package observer

// raceEnabled lets allocation-count assertions skip themselves under the
// race detector, whose instrumentation allocates.
const raceEnabled = true
