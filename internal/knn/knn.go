// Package knn is the shared exact nearest-neighbour engine under every
// continuous estimator in this repository: the KSG multi-information
// estimator and the Kozachenko–Leonenko entropy estimator (package
// infotheory) and the Frenzel–Pompe conditional mutual-information
// estimator (package infodynamics). It replaces four private O(m²)
// sort-based distance sweeps with one sub-quadratic core.
//
// A Tree indexes m points stored as contiguous rows of a flat []float64
// and answers two query shapes exactly:
//
//   - KNearest: the k nearest neighbours of a query point, sorted by
//     (distance, index) with deterministic index tie-breaking;
//   - CountWithin: the number of points strictly (or inclusively) within
//     a radius.
//
// Two metrics cover every estimator in the repository:
//
//   - MaxEuclidean2 — the paper's joint metric (Eq. 19): the maximum over
//     variable blocks of the per-block squared Euclidean distance.
//     Distances are reported in squared space (monotonic, so ordering and
//     counts are unchanged). A single block spanning all coordinates is
//     plain squared Euclidean distance (the KL entropy metric).
//   - Chebyshev — max over coordinates of |Δ|, the max-norm of the
//     Frenzel–Pompe estimator.
//
// # Equivalence contract
//
// Results are bit-identical to a brute-force sweep that evaluates the
// same floating-point distance expression (a sequential sum of squared
// coordinate differences per block, maxed across blocks): candidate
// distances are computed by exactly that expression, and the tree's
// box/axis bounds are computed with elementwise-dominating terms summed
// in the same coordinate order, so IEEE rounding monotonicity guarantees
// a bound never misranks a point it gates. Subtree pruning and
// bulk-acceptance use strict inequalities wherever an equal-distance
// point could still matter (index tie-breaks, inclusive counts), so ties
// resolve exactly as the brute path resolves them.
//
// Trees are rebuildable in place: after warm-up, Rebuild over same-shaped
// inputs performs no heap allocation (the spatial.DenseGrid /
// align.Aligner recycle pattern). Queries never mutate the tree, so one
// tree serves concurrent readers; per-query scratch (the Neighbor
// buffer) is caller-provided.
package knn

import (
	"math"
	"sort"
)

// Metric selects the distance kernel of a Tree.
type Metric int

const (
	// MaxEuclidean2 is the paper's joint metric (Eq. 19) in squared
	// space: max over blocks of the block's squared Euclidean distance.
	MaxEuclidean2 Metric = iota
	// Chebyshev is the L∞ metric: max over coordinates of |Δ|.
	Chebyshev
)

// Block is one variable's coordinate range within a row.
type Block struct{ Off, Len int }

// Neighbor is one kNN result: the point's row index and its distance to
// the query in the metric's comparison space (squared for MaxEuclidean2,
// plain for Chebyshev).
type Neighbor struct {
	Index int32
	Dist  float64
}

// TreeDimLimit is the dimension above which Rebuild skips building tree
// nodes and queries fall back to a flat scan with early-exit partial
// distances. Past ~16 dimensions a k-d tree on estimator-sized point sets
// prunes almost nothing and the node traversal overhead makes it slower
// than the scan; both paths honour the same equivalence contract. Tests
// override it to force either path.
var TreeDimLimit = 16

type treeNode struct {
	index       int32 // point row
	left, right int32 // node indices, -1 for none
	count       int32 // subtree size including self
	axis        int32
}

// Tree is a rebuildable exact-kNN index over the rows of a flat matrix.
// The zero value is ready for Rebuild.
type Tree struct {
	metric Metric
	dim    int
	blocks []Block
	pts    []float64 // referenced, not copied; row j at [j*dim, (j+1)*dim)
	n      int
	built  bool // tree nodes present; otherwise queries scan

	// ids maps row index → caller-chosen stable identity; nil means the
	// row index itself. Tie-breaks compare ids, so a tree over permuted
	// rows (ids = original indices) ranks equal-distance candidates
	// exactly as a tree over the original layout would — results become
	// independent of row order. Neighbor.Index always reports the row.
	ids []int32

	// refreshed marks the split structure as stale: points have moved
	// since the last Rebuild (via Refresh), boxes were recomputed but the
	// partition invariant — left subtree ≤ node ≤ right subtree on the
	// split axis — no longer holds. Queries then rely on box bounds only.
	refreshed bool

	nodes     []treeNode
	boxes     []float64 // per node: dim lows then dim highs
	root      int32
	idx       []int32
	sorter    axisSorter
	ownBlocks [1]Block // storage for the implicit whole-row block
}

// Rebuild reconstructs the index over a new point set in place, reusing
// node, box and index storage of previous builds. pts holds n rows of dim
// coordinates each and is referenced (not copied) for the lifetime of the
// queries, so it must stay unmodified until the next Rebuild. blocks
// partitions the row for MaxEuclidean2 (nil means one block spanning the
// row); it is ignored by Chebyshev. The blocks slice is referenced, not
// copied.
func (t *Tree) Rebuild(pts []float64, n, dim int, metric Metric, blocks []Block) {
	t.RebuildWithIDs(pts, n, dim, metric, blocks, nil)
}

// RebuildWithIDs is Rebuild with stable identities: ids[j] is the
// tie-break identity of row j (referenced, not copied; ids must be
// distinct for the ordering to be total). Use it when rows are a
// permutation of some canonical layout and results must not depend on
// the permutation. nil ids fall back to row indices (plain Rebuild).
func (t *Tree) RebuildWithIDs(pts []float64, n, dim int, metric Metric, blocks []Block, ids []int32) {
	if dim <= 0 || n < 0 || len(pts) < n*dim {
		panic("knn: Rebuild needs n rows of dim coordinates")
	}
	if ids != nil && len(ids) < n {
		panic("knn: RebuildWithIDs needs one id per row")
	}
	t.metric = metric
	t.dim = dim
	t.pts = pts
	t.n = n
	t.ids = ids
	t.refreshed = false
	if metric == Chebyshev || blocks == nil {
		t.ownBlocks[0] = Block{0, dim}
		t.blocks = t.ownBlocks[:]
	} else {
		t.blocks = blocks
	}
	t.nodes = t.nodes[:0]
	t.boxes = t.boxes[:0]
	t.root = -1
	t.built = dim <= TreeDimLimit && n > 0
	if !t.built {
		return
	}
	if cap(t.idx) < n {
		t.idx = make([]int32, n)
	}
	t.idx = t.idx[:n]
	for i := range t.idx {
		t.idx[i] = int32(i)
	}
	t.root = t.build(t.idx, 0)
	t.sorter = axisSorter{}
}

// Refresh re-points the index at moved coordinates without rebuilding
// the split structure: bounding boxes are recomputed bottom-up (O(n·dim)
// instead of the O(n log n · dim) sort-based rebuild) and queries switch
// to box-only pruning, which stays exact because every bound still
// dominates the distances actually computed. The shape of the last
// (Re)build — n, dim, metric, blocks, ids — carries over unchanged.
//
// The split structure only prunes well while points sit near where the
// build placed them, so Refresh measures the maximum coordinate
// displacement against maxDrift × (largest root-box extent): exceeding
// it — or passing storage that aliases the current points, which
// destroys the old coordinates the drift check needs — triggers an
// internal full rebuild instead. Returns true for the cheap refresh
// path, false when it rebuilt. Either way the tree is exact afterwards.
func (t *Tree) Refresh(pts []float64, maxDrift float64) bool {
	if t.dim == 0 {
		panic("knn: Refresh before Rebuild")
	}
	if len(pts) < t.n*t.dim {
		panic("knn: Refresh needs the shape of the last Rebuild")
	}
	if !t.built {
		t.pts = pts // flat scan has no structure to go stale
		return true
	}
	if &pts[0] == &t.pts[0] {
		t.rebuildInPlace(pts)
		return false
	}
	limit := maxDrift * t.rootExtent()
	for i, total := 0, t.n*t.dim; i < total; i++ {
		if d := math.Abs(pts[i] - t.pts[i]); d > limit {
			t.rebuildInPlace(pts)
			return false
		}
	}
	t.pts = pts
	t.refreshBoxes()
	t.refreshed = true
	return true
}

// Refreshed reports whether the tree is currently serving queries on a
// refreshed (box-only pruning) structure.
func (t *Tree) Refreshed() bool { return t.refreshed }

// rebuildInPlace rebuilds the node structure over pts, keeping the
// shape, metric, blocks and ids of the last Rebuild. Only called while
// built, so idx capacity is already n.
func (t *Tree) rebuildInPlace(pts []float64) {
	t.pts = pts
	t.refreshed = false
	t.nodes = t.nodes[:0]
	t.boxes = t.boxes[:0]
	t.idx = t.idx[:t.n]
	for i := range t.idx {
		t.idx[i] = int32(i)
	}
	t.root = t.build(t.idx, 0)
	t.sorter = axisSorter{}
}

// rootExtent returns the largest per-coordinate extent of the root box —
// the scale the Refresh drift bound is relative to.
func (t *Tree) rootExtent() float64 {
	lo := t.boxes[int(t.root)*2*t.dim : int(t.root)*2*t.dim+t.dim]
	hi := t.boxes[int(t.root)*2*t.dim+t.dim : (int(t.root)*2+2)*t.dim]
	var ext float64
	for i := 0; i < t.dim; i++ {
		if e := hi[i] - lo[i]; e > ext {
			ext = e
		}
	}
	return ext
}

// refreshBoxes recomputes every node's bounding box over the current
// points. Nodes are appended pre-order by build, so a parent always
// precedes its children and a single reverse pass sees both children
// before their parent.
func (t *Tree) refreshBoxes() {
	for ni := len(t.nodes) - 1; ni >= 0; ni-- {
		nd := &t.nodes[ni]
		p := t.pts[int(nd.index)*t.dim : (int(nd.index)+1)*t.dim]
		box := t.boxes[ni*2*t.dim : (ni*2+2)*t.dim]
		copy(box[:t.dim], p)
		copy(box[t.dim:], p)
		t.mergeBox(int32(ni), nd.left)
		t.mergeBox(int32(ni), nd.right)
	}
}

// Release drops the tree's references to caller-owned data (points,
// blocks, ids) and marks it empty, while keeping the internal node, box
// and index storage for the next Rebuild. Pools call this so an idle
// tree never pins a dataset's row slab.
func (t *Tree) Release() {
	t.pts = nil
	t.blocks = nil
	t.ids = nil
	t.n = 0
	t.built = false
	t.refreshed = false
	t.root = -1
	t.nodes = t.nodes[:0]
	t.boxes = t.boxes[:0]
}

// RetainedBytes reports the bytes of internal storage the tree keeps
// across Rebuilds (node, box and index capacity). References to
// caller-owned slices (pts, blocks, ids) are not counted — Release drops
// those.
func (t *Tree) RetainedBytes() int {
	const nodeBytes = 16 // treeNode: four int32 fields
	return cap(t.nodes)*nodeBytes + cap(t.boxes)*8 + cap(t.idx)*4
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.n }

// TreeBacked reports whether queries run on tree nodes (as opposed to the
// flat-scan fallback).
func (t *Tree) TreeBacked() bool { return t.built }

// axisSorter sorts an index slice by one coordinate with a deterministic
// index tie-break, as a reusable sort.Interface (a sort.Slice closure
// would allocate per node).
type axisSorter struct {
	idx  []int32
	pts  []float64
	dim  int
	axis int
}

func (s *axisSorter) Len() int      { return len(s.idx) }
func (s *axisSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }
func (s *axisSorter) Less(a, b int) bool {
	ca := s.pts[int(s.idx[a])*s.dim+s.axis]
	cb := s.pts[int(s.idx[b])*s.dim+s.axis]
	if ca != cb {
		return ca < cb
	}
	return s.idx[a] < s.idx[b]
}

func (t *Tree) build(idx []int32, depth int) int32 {
	if len(idx) == 0 {
		return -1
	}
	axis := t.widestAxis(idx)
	t.sorter = axisSorter{idx: idx, pts: t.pts, dim: t.dim, axis: axis}
	sort.Sort(&t.sorter)
	mid := len(idx) / 2
	t.nodes = append(t.nodes, treeNode{
		index: idx[mid],
		left:  -1,
		right: -1,
		count: int32(len(idx)),
		axis:  int32(axis),
	})
	self := int32(len(t.nodes) - 1)
	// Reserve the node's box; filled bottom-up after the children exist.
	t.boxes = append(t.boxes, t.pts[int(idx[mid])*t.dim:(int(idx[mid])+1)*t.dim]...)
	t.boxes = append(t.boxes, t.pts[int(idx[mid])*t.dim:(int(idx[mid])+1)*t.dim]...)
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[self].left = left
	t.nodes[self].right = right
	t.mergeBox(self, left)
	t.mergeBox(self, right)
	return self
}

// widestAxis returns the coordinate with the largest spread over the
// given points — the classic k-d split heuristic. With cycling axes a
// deep point set splits only its first ~log₂(n) coordinates; spread-based
// splits keep pruning effective when the dimension approaches
// TreeDimLimit. The choice only shapes the tree; result exactness never
// depends on it. Ties resolve to the lowest axis, keeping builds
// deterministic.
func (t *Tree) widestAxis(idx []int32) int {
	axis, best := 0, -1.0
	for a := 0; a < t.dim; a++ {
		lo, hi := t.pts[int(idx[0])*t.dim+a], t.pts[int(idx[0])*t.dim+a]
		for _, j := range idx[1:] {
			c := t.pts[int(j)*t.dim+a]
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if spread := hi - lo; spread > best {
			axis, best = a, spread
		}
	}
	return axis
}

// mergeBox widens node ni's bounding box to cover child ci's box.
func (t *Tree) mergeBox(ni, ci int32) {
	if ci < 0 {
		return
	}
	dst := t.boxes[int(ni)*2*t.dim : (int(ni)*2+2)*t.dim]
	src := t.boxes[int(ci)*2*t.dim : (int(ci)*2+2)*t.dim]
	for i := 0; i < t.dim; i++ {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
		if src[t.dim+i] > dst[t.dim+i] {
			dst[t.dim+i] = src[t.dim+i]
		}
	}
}

// dist returns the metric distance between q and point row j, evaluated
// with the exact floating-point expression of the brute-force reference
// (sequential per-block sums in coordinate order, maxed across blocks).
// If the running value exceeds bound the evaluation stops and reports
// ok = false; the partial value is a lower bound on the true distance, so
// the caller may reject the point but must not use the value otherwise.
func (t *Tree) dist(q []float64, j int32, bound float64) (d float64, ok bool) {
	p := t.pts[int(j)*t.dim : (int(j)+1)*t.dim]
	if t.metric == Chebyshev {
		var worst float64
		for i := range q {
			d := math.Abs(q[i] - p[i])
			if d > worst {
				if d > bound {
					return d, false
				}
				worst = d
			}
		}
		return worst, true
	}
	var worst float64
	for _, b := range t.blocks {
		var s float64
		for i := b.Off; i < b.Off+b.Len; i++ {
			diff := q[i] - p[i]
			s += diff * diff
			if s > bound {
				// Partial sums of non-negative terms are
				// non-decreasing under IEEE rounding, so the full
				// block sum — and the max over blocks — can only be
				// larger.
				return s, false
			}
		}
		if s > worst {
			worst = s
		}
	}
	return worst, true
}

// minDistBox returns a lower bound on the distance from q to any point in
// node ni's bounding box, computed so that bound ≤ dist holds for the
// floating-point values the dist method actually produces (dominated
// terms, same summation order).
func (t *Tree) minDistBox(ni int32, q []float64) float64 {
	lo := t.boxes[int(ni)*2*t.dim : int(ni)*2*t.dim+t.dim]
	hi := t.boxes[int(ni)*2*t.dim+t.dim : (int(ni)*2+2)*t.dim]
	if t.metric == Chebyshev {
		var worst float64
		for i := range q {
			var m float64
			if q[i] < lo[i] {
				m = lo[i] - q[i]
			} else if q[i] > hi[i] {
				m = q[i] - hi[i]
			}
			if m > worst {
				worst = m
			}
		}
		return worst
	}
	var worst float64
	for _, b := range t.blocks {
		var s float64
		for i := b.Off; i < b.Off+b.Len; i++ {
			var m float64
			if q[i] < lo[i] {
				m = lo[i] - q[i]
			} else if q[i] > hi[i] {
				m = q[i] - hi[i]
			}
			s += m * m
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// maxDistBox returns an upper bound on the distance from q to any point
// in node ni's bounding box, with the same floating-point domination
// guarantee as minDistBox.
func (t *Tree) maxDistBox(ni int32, q []float64) float64 {
	lo := t.boxes[int(ni)*2*t.dim : int(ni)*2*t.dim+t.dim]
	hi := t.boxes[int(ni)*2*t.dim+t.dim : (int(ni)*2+2)*t.dim]
	if t.metric == Chebyshev {
		var worst float64
		for i := range q {
			m := q[i] - lo[i]
			if h := hi[i] - q[i]; h > m {
				m = h
			}
			if m > worst {
				worst = m
			}
		}
		return worst
	}
	var worst float64
	for _, b := range t.blocks {
		var s float64
		for i := b.Off; i < b.Off+b.Len; i++ {
			m := q[i] - lo[i]
			if h := hi[i] - q[i]; h > m {
				m = h
			}
			s += m * m
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// knnState is the mutable state of one KNearest query; it lives on the
// caller's stack so concurrent queries over one tree are safe.
type knnState struct {
	q       []float64
	k       int
	exclude int32
	dst     []Neighbor
}

// id returns row j's tie-break identity: the caller-supplied id when
// present, the row index itself otherwise.
func (t *Tree) id(j int32) int32 {
	if t.ids == nil {
		return j
	}
	return t.ids[j]
}

// nbLess orders candidates by (Dist, id) — the total order every result
// set is sorted by.
func (t *Tree) nbLess(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return t.id(a.Index) < t.id(b.Index)
}

// consider offers point j as a kNN candidate, maintaining dst as the k
// best seen so far, sorted ascending by (Dist, id).
func (st *knnState) consider(t *Tree, j int32) {
	bound := math.Inf(1)
	if len(st.dst) == st.k {
		bound = st.dst[st.k-1].Dist
	}
	d, ok := t.dist(st.q, j, bound)
	if !ok {
		return
	}
	nb := Neighbor{Index: j, Dist: d}
	if len(st.dst) == st.k {
		if !t.nbLess(nb, st.dst[st.k-1]) {
			return
		}
		st.dst = st.dst[:st.k-1]
	}
	i := len(st.dst)
	st.dst = append(st.dst, nb)
	for i > 0 && t.nbLess(nb, st.dst[i-1]) {
		st.dst[i] = st.dst[i-1]
		i--
	}
	st.dst[i] = nb
}

// KNearest returns the min(k, Len()-|{exclude}|) nearest neighbours of q,
// sorted ascending by (distance, id) — exactly the prefix a brute-force
// (distance, id) sort would produce; without caller-supplied ids that is
// the historical (distance, index) order. exclude names a row to skip
// (the query's own row), or -1. dst is the caller's scratch; the result
// aliases it (grown if needed).
func (t *Tree) KNearest(q []float64, k int, exclude int32, dst []Neighbor) []Neighbor {
	dst = dst[:0]
	if k <= 0 || t.n == 0 {
		return dst
	}
	st := knnState{q: q, k: k, exclude: exclude, dst: dst}
	if t.built {
		t.searchKNN(t.root, &st)
	} else {
		for j := 0; j < t.n; j++ {
			if int32(j) == exclude {
				continue
			}
			st.consider(t, int32(j))
		}
	}
	return st.dst
}

func (t *Tree) searchKNN(ni int32, st *knnState) {
	if ni < 0 {
		return
	}
	nd := &t.nodes[ni]
	if len(st.dst) == st.k && nd.count > 1 {
		// Box pruning: every point in the subtree is at least
		// minDistBox away; a strictly worse subtree cannot supply a
		// neighbour (equal distances must still descend for the index
		// tie-break).
		if t.minDistBox(ni, st.q) > st.dst[st.k-1].Dist {
			return
		}
	}
	if nd.index != st.exclude {
		st.consider(t, nd.index)
	}
	axis := int(nd.axis)
	delta := st.q[axis] - t.pts[int(nd.index)*t.dim+axis]
	near, far := nd.left, nd.right
	if delta > 0 {
		near, far = far, near
	}
	t.searchKNN(near, st)
	if len(st.dst) < st.k || t.refreshed {
		// After Refresh the node's point no longer separates its
		// subtrees on the split axis, so the plane-gap bound below would
		// be unsound; the far child's entry box check (boxes are
		// recomputed by Refresh) is then the only — still exact — gate.
		t.searchKNN(far, st)
		return
	}
	gap := delta * delta
	if t.metric == Chebyshev {
		gap = math.Abs(delta)
	}
	// The splitting-plane gap lower-bounds the distance to every far-side
	// point; equality descends for the tie-break.
	if gap <= st.dst[st.k-1].Dist {
		t.searchKNN(far, st)
	}
}

// CountWithin returns the number of indexed points within radius r of q:
// strictly (dist < r) by default, inclusively (dist ≤ r) when inclusive
// is set. r is in the metric's comparison space (squared for
// MaxEuclidean2). If exclude is ≥ 0 it must be the row index holding
// exactly q's coordinates (the usual self-exclusion of the estimators);
// its guaranteed zero self-distance is subtracted from bulk-accepted
// subtrees rather than threaded through the traversal.
func (t *Tree) CountWithin(q []float64, r float64, inclusive bool, exclude int32) int {
	var c int
	if t.built {
		c = t.countNode(t.root, q, r, inclusive)
		if exclude >= 0 && (r > 0 || (inclusive && r == 0)) {
			c--
		}
		return c
	}
	for j := 0; j < t.n; j++ {
		if int32(j) == exclude {
			continue
		}
		d, ok := t.dist(q, int32(j), r)
		if !ok {
			continue
		}
		if d < r || (inclusive && d == r) {
			c++
		}
	}
	return c
}

func (t *Tree) countNode(ni int32, q []float64, r float64, inclusive bool) int {
	if ni < 0 {
		return 0
	}
	minD := t.minDistBox(ni, q)
	// Reject the subtree only when every point must fail the predicate.
	if minD > r || (!inclusive && minD == r) {
		return 0
	}
	nd := &t.nodes[ni]
	maxD := t.maxDistBox(ni, q)
	if maxD < r || (inclusive && maxD == r) {
		return int(nd.count)
	}
	var c int
	if d, ok := t.dist(q, nd.index, r); ok && (d < r || (inclusive && d == r)) {
		c = 1
	}
	return c + t.countNode(nd.left, q, r, inclusive) + t.countNode(nd.right, q, r, inclusive)
}
