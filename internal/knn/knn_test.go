package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bruteDist evaluates the metric with the reference floating-point
// expression: sequential per-block sums in coordinate order, maxed across
// blocks (or max |Δ| for Chebyshev).
func bruteDist(pts []float64, dim int, metric Metric, blocks []Block, a, b int) float64 {
	pa := pts[a*dim : (a+1)*dim]
	pb := pts[b*dim : (b+1)*dim]
	if metric == Chebyshev {
		var worst float64
		for i := range pa {
			if d := math.Abs(pa[i] - pb[i]); d > worst {
				worst = d
			}
		}
		return worst
	}
	if blocks == nil {
		blocks = []Block{{0, dim}}
	}
	var worst float64
	for _, bl := range blocks {
		var s float64
		for i := bl.Off; i < bl.Off+bl.Len; i++ {
			diff := pa[i] - pb[i]
			s += diff * diff
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

func bruteKNearest(pts []float64, n, dim int, metric Metric, blocks []Block, q, k int) []Neighbor {
	var all []Neighbor
	for j := 0; j < n; j++ {
		if j == q {
			continue
		}
		all = append(all, Neighbor{Index: int32(j), Dist: bruteDist(pts, dim, metric, blocks, q, j)})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Index < all[b].Index
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func bruteCount(pts []float64, n, dim int, metric Metric, blocks []Block, q int, r float64, inclusive bool) int {
	c := 0
	for j := 0; j < n; j++ {
		if j == q {
			continue
		}
		d := bruteDist(pts, dim, metric, blocks, q, j)
		if d < r || (inclusive && d == r) {
			c++
		}
	}
	return c
}

// randomInstance draws a point set with deliberate duplicates and
// coordinate collisions so the (distance, index) tie-breaking paths are
// exercised, plus a random block structure.
func randomInstance(r *rand.Rand) (pts []float64, n, dim int, blocks []Block) {
	dim = 1 + r.Intn(6)
	n = 5 + r.Intn(60)
	pts = make([]float64, n*dim)
	for i := range pts {
		// A coarse grid makes exact distance ties common.
		pts[i] = float64(r.Intn(8))
		if r.Intn(4) == 0 {
			pts[i] += r.Float64()
		}
	}
	// Duplicate a few full rows.
	for d := 0; d < n/8; d++ {
		src, dst := r.Intn(n), r.Intn(n)
		copy(pts[dst*dim:(dst+1)*dim], pts[src*dim:(src+1)*dim])
	}
	off := 0
	for off < dim {
		l := 1 + r.Intn(dim-off)
		blocks = append(blocks, Block{off, l})
		off += l
	}
	return pts, n, dim, blocks
}

// forEachMode runs f with the tree path and the flat-scan path forced in
// turn, restoring the package default afterwards.
func forEachMode(t *testing.T, f func(t *testing.T, wantTree bool)) {
	t.Helper()
	defer func(old int) { TreeDimLimit = old }(TreeDimLimit)
	TreeDimLimit = 64
	f(t, true)
	TreeDimLimit = 0
	f(t, false)
}

func TestKNearestMatchesBruteExactly(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	forEachMode(t, func(t *testing.T, wantTree bool) {
		var tr Tree
		for trial := 0; trial < 200; trial++ {
			pts, n, dim, blocks := randomInstance(r)
			for _, metric := range []Metric{MaxEuclidean2, Chebyshev} {
				bl := blocks
				if metric == Chebyshev {
					bl = nil
				}
				tr.Rebuild(pts, n, dim, metric, bl)
				if tr.TreeBacked() != (wantTree && n > 0) {
					t.Fatalf("TreeBacked = %v, want %v", tr.TreeBacked(), wantTree)
				}
				k := 1 + r.Intn(n)
				var scratch []Neighbor
				for q := 0; q < n; q++ {
					got := tr.KNearest(rowOf(pts, dim, q), k, int32(q), scratch)
					want := bruteKNearest(pts, n, dim, metric, bl, q, k)
					if len(got) != len(want) {
						t.Fatalf("metric %v k=%d q=%d: %d neighbours, want %d", metric, k, q, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("metric %v k=%d q=%d neighbour %d: got {%d %v}, want {%d %v}",
								metric, k, q, i, got[i].Index, got[i].Dist, want[i].Index, want[i].Dist)
						}
					}
					scratch = got
				}
			}
		}
	})
}

func TestCountWithinMatchesBruteExactly(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	forEachMode(t, func(t *testing.T, wantTree bool) {
		var tr Tree
		for trial := 0; trial < 200; trial++ {
			pts, n, dim, blocks := randomInstance(r)
			for _, metric := range []Metric{MaxEuclidean2, Chebyshev} {
				bl := blocks
				if metric == Chebyshev {
					bl = nil
				}
				tr.Rebuild(pts, n, dim, metric, bl)
				for q := 0; q < n; q++ {
					// Radii that exactly hit point distances probe the
					// strict/inclusive boundary; add a couple of generic ones.
					radii := []float64{0, r.Float64() * 10}
					j := r.Intn(n)
					radii = append(radii, bruteDist(pts, dim, metric, bl, q, j))
					for _, rad := range radii {
						for _, inclusive := range []bool{false, true} {
							got := tr.CountWithin(rowOf(pts, dim, q), rad, inclusive, int32(q))
							want := bruteCount(pts, n, dim, metric, bl, q, rad, inclusive)
							if got != want {
								t.Fatalf("metric %v q=%d r=%v inclusive=%v: count %d, want %d",
									metric, q, rad, inclusive, got, want)
							}
						}
					}
				}
			}
		}
	})
}

func rowOf(pts []float64, dim, j int) []float64 { return pts[j*dim : (j+1)*dim] }

// Rebuilding over new data must behave exactly like a fresh tree, and in
// steady state (same-shaped inputs) must not allocate.
func TestRebuildReuseMatchesFreshTree(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var reused Tree
	for trial := 0; trial < 60; trial++ {
		pts, n, dim, blocks := randomInstance(r)
		reused.Rebuild(pts, n, dim, MaxEuclidean2, blocks)
		var fresh Tree
		fresh.Rebuild(pts, n, dim, MaxEuclidean2, blocks)
		k := 1 + r.Intn(4)
		for q := 0; q < n; q++ {
			a := reused.KNearest(rowOf(pts, dim, q), k, int32(q), nil)
			b := fresh.KNearest(rowOf(pts, dim, q), k, int32(q), nil)
			if len(a) != len(b) {
				t.Fatalf("trial %d q=%d: reused %d results, fresh %d", trial, q, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d q=%d: reused tree diverged from fresh tree", trial, q)
				}
			}
		}
	}
}

func TestSteadyStateRebuildAndQueryAllocationFree(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const n, dim, k = 256, 4, 4
	blocks := []Block{{0, 2}, {2, 2}}
	pts := make([]float64, n*dim)
	var tr Tree
	scratch := make([]Neighbor, 0, k)
	fill := func() {
		for i := range pts {
			pts[i] = r.NormFloat64()
		}
	}
	fill()
	tr.Rebuild(pts, n, dim, MaxEuclidean2, blocks) // warm-up build
	allocs := testing.AllocsPerRun(10, func() {
		fill()
		tr.Rebuild(pts, n, dim, MaxEuclidean2, blocks)
		for q := 0; q < n; q++ {
			scratch = tr.KNearest(rowOf(pts, dim, q), k, int32(q), scratch)
			d := scratch[k-1].Dist
			if tr.CountWithin(rowOf(pts, dim, q), d, false, int32(q)) < k-1 {
				t.Fatal("impossible count")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state rebuild+query allocates %v allocs/op, want 0", allocs)
	}
}

// perturb returns pts with every coordinate moved by at most frac of the
// point set's largest extent — the "recorded frames move little" regime
// Refresh exists for.
func perturb(r *rand.Rand, pts []float64, frac float64) []float64 {
	lo, hi := pts[0], pts[0]
	for _, v := range pts {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	ext := hi - lo
	out := make([]float64, len(pts))
	for i, v := range pts {
		out[i] = v + (r.Float64()*2-1)*frac*ext
	}
	return out
}

// TestRefreshMatchesRebuildExactly is the Refresh equivalence contract:
// after any sequence of small or large moves, a refreshed (or
// internally rebuilt) tree answers KNearest and CountWithin bit-identically
// to a freshly built tree over the same coordinates.
func TestRefreshMatchesRebuildExactly(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 80; trial++ {
		pts, n, dim, blocks := randomInstance(r)
		for _, metric := range []Metric{MaxEuclidean2, Chebyshev} {
			bl := blocks
			if metric == Chebyshev {
				bl = nil
			}
			var tr Tree
			tr.Rebuild(pts, n, dim, metric, bl)
			cur := pts
			for step := 0; step < 4; step++ {
				// Alternate small drift (refresh path) and a big jump
				// (internal rebuild path).
				frac := 0.01
				if step == 2 {
					frac = 3.0
				}
				next := perturb(r, cur, frac)
				refreshed := tr.Refresh(next, 0.1)
				if step == 2 && refreshed && tr.TreeBacked() {
					t.Fatalf("trial %d: 3×-extent jump took the refresh path", trial)
				}
				var fresh Tree
				fresh.Rebuild(next, n, dim, metric, bl)
				k := 1 + r.Intn(n)
				for q := 0; q < n; q++ {
					a := tr.KNearest(rowOf(next, dim, q), k, int32(q), nil)
					b := fresh.KNearest(rowOf(next, dim, q), k, int32(q), nil)
					if len(a) != len(b) {
						t.Fatalf("trial %d step %d q=%d: %d vs %d neighbours", trial, step, q, len(a), len(b))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("trial %d step %d q=%d: refreshed tree diverged: %v vs %v", trial, step, q, a[i], b[i])
						}
					}
					if len(a) > 0 {
						rad := a[len(a)-1].Dist
						for _, inc := range []bool{false, true} {
							ca := tr.CountWithin(rowOf(next, dim, q), rad, inc, int32(q))
							cb := fresh.CountWithin(rowOf(next, dim, q), rad, inc, int32(q))
							if ca != cb {
								t.Fatalf("trial %d step %d q=%d: count %d vs %d", trial, step, q, ca, cb)
							}
						}
					}
				}
				cur = next
			}
		}
	}
}

func TestRefreshAliasedStorageRebuilds(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts, n, dim, blocks := randomInstance(r)
	var tr Tree
	tr.Rebuild(pts, n, dim, MaxEuclidean2, blocks)
	if tr.Refresh(pts, 0.1) {
		t.Fatal("aliased Refresh claimed the cheap path; old coordinates were unobservable")
	}
	if tr.Refreshed() {
		t.Fatal("aliased Refresh left the tree marked refreshed")
	}
}

func TestRefreshFlatScanFallback(t *testing.T) {
	defer func(old int) { TreeDimLimit = old }(TreeDimLimit)
	TreeDimLimit = 0 // force the scan path
	r := rand.New(rand.NewSource(7))
	pts, n, dim, blocks := randomInstance(r)
	var tr Tree
	tr.Rebuild(pts, n, dim, MaxEuclidean2, blocks)
	next := perturb(r, pts, 5.0)
	if !tr.Refresh(next, 0.1) {
		t.Fatal("flat scan has no structure to go stale; Refresh must be trivial")
	}
	got := tr.KNearest(rowOf(next, dim, 0), 3, 0, nil)
	want := bruteKNearest(next, n, dim, MaxEuclidean2, blocks, 0, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("refreshed flat scan diverged from brute at %d", i)
		}
	}
}

func TestRefreshSteadyStateAllocationFree(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	const n, dim, k = 256, 4, 4
	a := make([]float64, n*dim)
	b := make([]float64, n*dim)
	for i := range a {
		a[i] = r.NormFloat64()
	}
	copy(b, a)
	var tr Tree
	tr.Rebuild(a, n, dim, MaxEuclidean2, nil)
	scratch := make([]Neighbor, 0, k)
	cur, next := a, b
	allocs := testing.AllocsPerRun(10, func() {
		for i := range next {
			next[i] = cur[i] + 1e-6*r.NormFloat64()
		}
		if !tr.Refresh(next, 0.1) {
			t.Fatal("tiny drift took the rebuild path")
		}
		for q := 0; q < n; q++ {
			scratch = tr.KNearest(rowOf(next, dim, q), k, int32(q), scratch)
		}
		cur, next = next, cur
	})
	if allocs != 0 {
		t.Errorf("steady-state refresh+query allocates %v allocs/op, want 0", allocs)
	}
}

// TestStableIDsMakeResultsPermutationInvariant pins the property the
// approximate estimator tier builds on: a tree over Morton- (or any-)
// permuted rows with ids = original indices returns, for every query,
// the same (distance, original-index) neighbour list and the same counts
// as a tree over the original layout.
func TestStableIDsMakeResultsPermutationInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		pts, n, dim, blocks := randomInstance(r)
		perm := r.Perm(n)
		permuted := make([]float64, len(pts))
		ids := make([]int32, n)
		rowOfOrig := make([]int32, n) // original index → permuted row
		for row, orig := range perm {
			copy(permuted[row*dim:(row+1)*dim], pts[orig*dim:(orig+1)*dim])
			ids[row] = int32(orig)
			rowOfOrig[orig] = int32(row)
		}
		for _, metric := range []Metric{MaxEuclidean2, Chebyshev} {
			bl := blocks
			if metric == Chebyshev {
				bl = nil
			}
			var base, permTree Tree
			base.Rebuild(pts, n, dim, metric, bl)
			permTree.RebuildWithIDs(permuted, n, dim, metric, bl, ids)
			k := 1 + r.Intn(n)
			for q := 0; q < n; q++ {
				want := base.KNearest(rowOf(pts, dim, q), k, int32(q), nil)
				got := permTree.KNearest(rowOf(pts, dim, q), k, rowOfOrig[q], nil)
				if len(got) != len(want) {
					t.Fatalf("trial %d q=%d: %d vs %d neighbours", trial, q, len(got), len(want))
				}
				for i := range got {
					if got[i].Dist != want[i].Dist || ids[got[i].Index] != want[i].Index {
						t.Fatalf("trial %d metric %v q=%d neighbour %d: got {row %d → id %d, %v}, want {%d, %v}",
							trial, metric, q, i, got[i].Index, ids[got[i].Index], got[i].Dist, want[i].Index, want[i].Dist)
					}
				}
				if len(want) > 0 {
					rad := want[len(want)-1].Dist
					for _, inc := range []bool{false, true} {
						cw := base.CountWithin(rowOf(pts, dim, q), rad, inc, int32(q))
						cg := permTree.CountWithin(rowOf(pts, dim, q), rad, inc, rowOfOrig[q])
						if cw != cg {
							t.Fatalf("trial %d q=%d: count %d vs %d", trial, q, cw, cg)
						}
					}
				}
			}
		}
	}
}

func TestReleaseDropsReferencesKeepsStorage(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	pts, n, dim, blocks := randomInstance(r)
	var tr Tree
	tr.Rebuild(pts, n, dim, MaxEuclidean2, blocks)
	retained := tr.RetainedBytes()
	if retained == 0 {
		t.Fatal("built tree reports zero retained bytes")
	}
	tr.Release()
	if tr.Len() != 0 || tr.TreeBacked() {
		t.Fatal("Release left the tree non-empty")
	}
	if got := tr.RetainedBytes(); got != retained {
		t.Fatalf("Release changed retained storage: %d → %d", retained, got)
	}
	// A released tree must still be rebuildable without fresh allocation
	// for same-shaped input.
	allocs := testing.AllocsPerRun(5, func() {
		tr.Rebuild(pts, n, dim, MaxEuclidean2, blocks)
	})
	if allocs != 0 {
		t.Errorf("rebuild after Release allocates %v, want 0", allocs)
	}
}

func TestKNearestEdgeCases(t *testing.T) {
	var tr Tree
	pts := []float64{0, 1, 2, 3}
	tr.Rebuild(pts, 4, 1, MaxEuclidean2, nil)
	if got := tr.KNearest([]float64{1.1}, 0, -1, nil); len(got) != 0 {
		t.Errorf("k=0 returned %d neighbours", len(got))
	}
	// k larger than the point count returns everything (minus exclusions).
	got := tr.KNearest([]float64{1.1}, 10, 1, nil)
	if len(got) != 3 {
		t.Errorf("k>n returned %d neighbours, want 3", len(got))
	}
	for _, nb := range got {
		if nb.Index == 1 {
			t.Errorf("excluded index returned")
		}
	}
	// All-duplicate points: ties must resolve by index.
	dup := []float64{5, 5, 5, 5}
	tr.Rebuild(dup, 4, 1, MaxEuclidean2, nil)
	got = tr.KNearest([]float64{5}, 2, 2, nil)
	if len(got) != 2 || got[0].Index != 0 || got[1].Index != 1 {
		t.Errorf("duplicate tie-break: got %v, want indices 0,1", got)
	}
}
