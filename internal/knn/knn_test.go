package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bruteDist evaluates the metric with the reference floating-point
// expression: sequential per-block sums in coordinate order, maxed across
// blocks (or max |Δ| for Chebyshev).
func bruteDist(pts []float64, dim int, metric Metric, blocks []Block, a, b int) float64 {
	pa := pts[a*dim : (a+1)*dim]
	pb := pts[b*dim : (b+1)*dim]
	if metric == Chebyshev {
		var worst float64
		for i := range pa {
			if d := math.Abs(pa[i] - pb[i]); d > worst {
				worst = d
			}
		}
		return worst
	}
	if blocks == nil {
		blocks = []Block{{0, dim}}
	}
	var worst float64
	for _, bl := range blocks {
		var s float64
		for i := bl.Off; i < bl.Off+bl.Len; i++ {
			diff := pa[i] - pb[i]
			s += diff * diff
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

func bruteKNearest(pts []float64, n, dim int, metric Metric, blocks []Block, q, k int) []Neighbor {
	var all []Neighbor
	for j := 0; j < n; j++ {
		if j == q {
			continue
		}
		all = append(all, Neighbor{Index: int32(j), Dist: bruteDist(pts, dim, metric, blocks, q, j)})
	}
	sort.Slice(all, func(a, b int) bool { return nbLess(all[a], all[b]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func bruteCount(pts []float64, n, dim int, metric Metric, blocks []Block, q int, r float64, inclusive bool) int {
	c := 0
	for j := 0; j < n; j++ {
		if j == q {
			continue
		}
		d := bruteDist(pts, dim, metric, blocks, q, j)
		if d < r || (inclusive && d == r) {
			c++
		}
	}
	return c
}

// randomInstance draws a point set with deliberate duplicates and
// coordinate collisions so the (distance, index) tie-breaking paths are
// exercised, plus a random block structure.
func randomInstance(r *rand.Rand) (pts []float64, n, dim int, blocks []Block) {
	dim = 1 + r.Intn(6)
	n = 5 + r.Intn(60)
	pts = make([]float64, n*dim)
	for i := range pts {
		// A coarse grid makes exact distance ties common.
		pts[i] = float64(r.Intn(8))
		if r.Intn(4) == 0 {
			pts[i] += r.Float64()
		}
	}
	// Duplicate a few full rows.
	for d := 0; d < n/8; d++ {
		src, dst := r.Intn(n), r.Intn(n)
		copy(pts[dst*dim:(dst+1)*dim], pts[src*dim:(src+1)*dim])
	}
	off := 0
	for off < dim {
		l := 1 + r.Intn(dim-off)
		blocks = append(blocks, Block{off, l})
		off += l
	}
	return pts, n, dim, blocks
}

// forEachMode runs f with the tree path and the flat-scan path forced in
// turn, restoring the package default afterwards.
func forEachMode(t *testing.T, f func(t *testing.T, wantTree bool)) {
	t.Helper()
	defer func(old int) { TreeDimLimit = old }(TreeDimLimit)
	TreeDimLimit = 64
	f(t, true)
	TreeDimLimit = 0
	f(t, false)
}

func TestKNearestMatchesBruteExactly(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	forEachMode(t, func(t *testing.T, wantTree bool) {
		var tr Tree
		for trial := 0; trial < 200; trial++ {
			pts, n, dim, blocks := randomInstance(r)
			for _, metric := range []Metric{MaxEuclidean2, Chebyshev} {
				bl := blocks
				if metric == Chebyshev {
					bl = nil
				}
				tr.Rebuild(pts, n, dim, metric, bl)
				if tr.TreeBacked() != (wantTree && n > 0) {
					t.Fatalf("TreeBacked = %v, want %v", tr.TreeBacked(), wantTree)
				}
				k := 1 + r.Intn(n)
				var scratch []Neighbor
				for q := 0; q < n; q++ {
					got := tr.KNearest(rowOf(pts, dim, q), k, int32(q), scratch)
					want := bruteKNearest(pts, n, dim, metric, bl, q, k)
					if len(got) != len(want) {
						t.Fatalf("metric %v k=%d q=%d: %d neighbours, want %d", metric, k, q, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("metric %v k=%d q=%d neighbour %d: got {%d %v}, want {%d %v}",
								metric, k, q, i, got[i].Index, got[i].Dist, want[i].Index, want[i].Dist)
						}
					}
					scratch = got
				}
			}
		}
	})
}

func TestCountWithinMatchesBruteExactly(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	forEachMode(t, func(t *testing.T, wantTree bool) {
		var tr Tree
		for trial := 0; trial < 200; trial++ {
			pts, n, dim, blocks := randomInstance(r)
			for _, metric := range []Metric{MaxEuclidean2, Chebyshev} {
				bl := blocks
				if metric == Chebyshev {
					bl = nil
				}
				tr.Rebuild(pts, n, dim, metric, bl)
				for q := 0; q < n; q++ {
					// Radii that exactly hit point distances probe the
					// strict/inclusive boundary; add a couple of generic ones.
					radii := []float64{0, r.Float64() * 10}
					j := r.Intn(n)
					radii = append(radii, bruteDist(pts, dim, metric, bl, q, j))
					for _, rad := range radii {
						for _, inclusive := range []bool{false, true} {
							got := tr.CountWithin(rowOf(pts, dim, q), rad, inclusive, int32(q))
							want := bruteCount(pts, n, dim, metric, bl, q, rad, inclusive)
							if got != want {
								t.Fatalf("metric %v q=%d r=%v inclusive=%v: count %d, want %d",
									metric, q, rad, inclusive, got, want)
							}
						}
					}
				}
			}
		}
	})
}

func rowOf(pts []float64, dim, j int) []float64 { return pts[j*dim : (j+1)*dim] }

// Rebuilding over new data must behave exactly like a fresh tree, and in
// steady state (same-shaped inputs) must not allocate.
func TestRebuildReuseMatchesFreshTree(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var reused Tree
	for trial := 0; trial < 60; trial++ {
		pts, n, dim, blocks := randomInstance(r)
		reused.Rebuild(pts, n, dim, MaxEuclidean2, blocks)
		var fresh Tree
		fresh.Rebuild(pts, n, dim, MaxEuclidean2, blocks)
		k := 1 + r.Intn(4)
		for q := 0; q < n; q++ {
			a := reused.KNearest(rowOf(pts, dim, q), k, int32(q), nil)
			b := fresh.KNearest(rowOf(pts, dim, q), k, int32(q), nil)
			if len(a) != len(b) {
				t.Fatalf("trial %d q=%d: reused %d results, fresh %d", trial, q, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d q=%d: reused tree diverged from fresh tree", trial, q)
				}
			}
		}
	}
}

func TestSteadyStateRebuildAndQueryAllocationFree(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const n, dim, k = 256, 4, 4
	blocks := []Block{{0, 2}, {2, 2}}
	pts := make([]float64, n*dim)
	var tr Tree
	scratch := make([]Neighbor, 0, k)
	fill := func() {
		for i := range pts {
			pts[i] = r.NormFloat64()
		}
	}
	fill()
	tr.Rebuild(pts, n, dim, MaxEuclidean2, blocks) // warm-up build
	allocs := testing.AllocsPerRun(10, func() {
		fill()
		tr.Rebuild(pts, n, dim, MaxEuclidean2, blocks)
		for q := 0; q < n; q++ {
			scratch = tr.KNearest(rowOf(pts, dim, q), k, int32(q), scratch)
			d := scratch[k-1].Dist
			if tr.CountWithin(rowOf(pts, dim, q), d, false, int32(q)) < k-1 {
				t.Fatal("impossible count")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state rebuild+query allocates %v allocs/op, want 0", allocs)
	}
}

func TestKNearestEdgeCases(t *testing.T) {
	var tr Tree
	pts := []float64{0, 1, 2, 3}
	tr.Rebuild(pts, 4, 1, MaxEuclidean2, nil)
	if got := tr.KNearest([]float64{1.1}, 0, -1, nil); len(got) != 0 {
		t.Errorf("k=0 returned %d neighbours", len(got))
	}
	// k larger than the point count returns everything (minus exclusions).
	got := tr.KNearest([]float64{1.1}, 10, 1, nil)
	if len(got) != 3 {
		t.Errorf("k>n returned %d neighbours, want 3", len(got))
	}
	for _, nb := range got {
		if nb.Index == 1 {
			t.Errorf("excluded index returned")
		}
	}
	// All-duplicate points: ties must resolve by index.
	dup := []float64{5, 5, 5, 5}
	tr.Rebuild(dup, 4, 1, MaxEuclidean2, nil)
	got = tr.KNearest([]float64{5}, 2, 2, nil)
	if len(got) != 2 || got[0].Index != 0 || got[1].Index != 1 {
		t.Errorf("duplicate tie-break: got %v, want indices 0,1", got)
	}
}
