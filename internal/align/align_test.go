package align

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/vec"
)

func randomCloud(r *rand.Rand, n int, extent float64) []vec.Vec2 {
	pts := make([]vec.Vec2, n)
	for i := range pts {
		pts[i] = vec.Vec2{X: (r.Float64() - 0.5) * extent, Y: (r.Float64() - 0.5) * extent}
	}
	return pts
}

func normalizeAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

func TestRigidApplyComposeInverse(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		g := Rigid{Theta: r.Float64() * 2 * math.Pi, T: vec.Vec2{X: r.Float64() * 10, Y: r.Float64() * 10}}
		h := Rigid{Theta: r.Float64() * 2 * math.Pi, T: vec.Vec2{X: r.Float64() * 10, Y: r.Float64() * 10}}
		p := vec.Vec2{X: r.Float64()*4 - 2, Y: r.Float64()*4 - 2}
		// Compose: (g then h)(p) == h(g(p)).
		if g.Compose(h).Apply(p).Dist(h.Apply(g.Apply(p))) > 1e-9 {
			t.Fatal("Compose broken")
		}
		// Inverse: g⁻¹(g(p)) == p.
		if g.Inverse().Apply(g.Apply(p)).Dist(p) > 1e-9 {
			t.Fatal("Inverse broken")
		}
	}
}

func TestRigidApplyAll(t *testing.T) {
	g := Rigid{Theta: math.Pi / 2, T: vec.Vec2{X: 1}}
	out := g.ApplyAll([]vec.Vec2{v2(1, 0), v2(0, 1)})
	if out[0].Dist(vec.Vec2{X: 1, Y: 1}) > 1e-12 {
		t.Fatalf("ApplyAll[0] = %v", out[0])
	}
	if out[1].Dist(vec.Vec2{X: 0, Y: 0}) > 1e-12 {
		t.Fatalf("ApplyAll[1] = %v", out[1])
	}
}

// Property: Procrustes recovers a planted rigid motion exactly when the
// correspondence is known.
func TestProcrustesRecoversPlantedTransform(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 100; trial++ {
		src := randomCloud(r, 3+r.IntN(40), 10)
		g := Rigid{
			Theta: r.Float64()*2*math.Pi - math.Pi,
			T:     vec.Vec2{X: r.Float64()*20 - 10, Y: r.Float64()*20 - 10},
		}
		dst := g.ApplyAll(src)
		got := Procrustes2D(src, dst)
		if math.Abs(normalizeAngle(got.Theta-g.Theta)) > 1e-9 {
			t.Fatalf("theta = %v, want %v", got.Theta, g.Theta)
		}
		for i := range src {
			if got.Apply(src[i]).Dist(dst[i]) > 1e-9 {
				t.Fatal("recovered transform does not map src onto dst")
			}
		}
	}
}

func TestProcrustesLeastSquaresUnderNoise(t *testing.T) {
	// With noisy correspondences the recovered rotation should still be
	// close, and the residual must be no worse than the planted one.
	r := rand.New(rand.NewPCG(5, 6))
	src := randomCloud(r, 60, 10)
	g := Rigid{Theta: 0.7, T: vec.Vec2{X: 2, Y: -1}}
	dst := g.ApplyAll(src)
	for i := range dst {
		dst[i] = dst[i].Add(vec.Vec2{X: r.NormFloat64() * 0.01, Y: r.NormFloat64() * 0.01})
	}
	got := Procrustes2D(src, dst)
	if math.Abs(normalizeAngle(got.Theta-0.7)) > 0.01 {
		t.Fatalf("theta = %v, want ≈ 0.7", got.Theta)
	}
	if RMSD(got.ApplyAll(src), dst) > 0.02 {
		t.Fatal("residual too large")
	}
}

func TestProcrustesDegenerate(t *testing.T) {
	// All points coincident: pure translation.
	src := []vec.Vec2{v2(1, 1), v2(1, 1)}
	dst := []vec.Vec2{v2(4, 5), v2(4, 5)}
	g := Procrustes2D(src, dst)
	if g.Theta != 0 {
		t.Fatalf("degenerate rotation = %v", g.Theta)
	}
	if g.Apply(src[0]).Dist(dst[0]) > 1e-12 {
		t.Fatal("degenerate translation wrong")
	}
	// Empty input.
	if g := Procrustes2D(nil, nil); g.Theta != 0 || g.T != (vec.Vec2{}) {
		t.Fatal("empty Procrustes should be identity")
	}
}

func TestProcrustesMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Procrustes2D(make([]vec.Vec2, 2), make([]vec.Vec2, 3))
}

func TestRMSD(t *testing.T) {
	a := []vec.Vec2{v2(0, 0), v2(1, 0)}
	b := []vec.Vec2{v2(0, 1), v2(1, 1)}
	if got := RMSD(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("RMSD = %v, want 1", got)
	}
	if RMSD(nil, nil) != 0 {
		t.Fatal("empty RMSD should be 0")
	}
}

// --- ICP ------------------------------------------------------------------

// Property: ICP undoes a planted element of F = ISO⁺(2) × S*_n — the core
// guarantee the Sec. 5.2 preprocessing needs.
func TestICPRecoversPlantedSymmetry(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 20; trial++ {
		n := 10 + r.IntN(30)
		types := make([]int, n)
		for i := range types {
			types[i] = r.IntN(3)
		}
		ref := randomCloud(r, n, 8)
		g := Rigid{
			Theta: r.Float64()*2*math.Pi - math.Pi,
			T:     vec.Vec2{X: r.Float64()*30 - 15, Y: r.Float64()*30 - 15},
		}
		// Apply the rigid motion, then a same-type permutation.
		moving := make([]vec.Vec2, n)
		perm := sameTypePermutation(r, types)
		movTypes := make([]int, n)
		for i := range ref {
			moving[perm[i]] = g.Apply(ref[i])
			movTypes[perm[i]] = types[i]
		}
		res, err := ICP(moving, ref, movTypes, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.RMS > 1e-6 {
			t.Fatalf("trial %d: residual %v after aligning a planted transform", trial, res.RMS)
		}
		// The reordered output must match the reference point-for-point.
		re := res.Reordered()
		for j := range ref {
			want := ref[j].Sub(vec.Centroid(ref))
			if re[j].Dist(want) > 1e-6 {
				t.Fatalf("trial %d: reordered[%d] = %v, want %v", trial, j, re[j], want)
			}
		}
	}
}

// sameTypePermutation returns a permutation that only moves indices within
// the same type class (an element of S*_n).
func sameTypePermutation(r *rand.Rand, types []int) []int {
	byType := map[int][]int{}
	for i, ty := range types {
		byType[ty] = append(byType[ty], i)
	}
	perm := make([]int, len(types))
	for _, idx := range byType {
		shuffled := append([]int(nil), idx...)
		r.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		for k, i := range idx {
			perm[i] = shuffled[k]
		}
	}
	return perm
}

func TestICPPermIsTypeRespectingBijection(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	n := 24
	types := make([]int, n)
	for i := range types {
		types[i] = i % 4
	}
	ref := randomCloud(r, n, 6)
	moving := Rigid{Theta: 0.4, T: vec.Vec2{X: 3}}.ApplyAll(ref)
	res, err := ICP(moving, ref, types, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, n)
	for j, i := range res.Perm {
		if seen[i] {
			t.Fatal("Perm is not a bijection")
		}
		seen[i] = true
		if types[i] != types[j] {
			t.Fatalf("Perm crosses types: ref slot %d (type %d) ← moving %d (type %d)",
				j, types[j], i, types[i])
		}
	}
}

func TestICPNoisyAlignment(t *testing.T) {
	// Small perturbations: residual should be of the noise order, far
	// below the cloud extent.
	r := rand.New(rand.NewPCG(11, 12))
	n := 30
	types := make([]int, n) // single type
	ref := randomCloud(r, n, 10)
	g := Rigid{Theta: 2.0, T: vec.Vec2{X: -4, Y: 9}}
	moving := g.ApplyAll(ref)
	for i := range moving {
		moving[i] = moving[i].Add(vec.Vec2{X: r.NormFloat64() * 0.02, Y: r.NormFloat64() * 0.02})
	}
	res, err := ICP(moving, ref, types, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RMS > 0.1 {
		t.Fatalf("noisy residual = %v", res.RMS)
	}
}

func TestICPBruteForceMatchesTree(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 14))
	n := 20
	types := make([]int, n)
	for i := range types {
		types[i] = i % 2
	}
	ref := randomCloud(r, n, 8)
	moving := Rigid{Theta: 1.2, T: vec.Vec2{X: 5, Y: 5}}.ApplyAll(ref)
	a, err := ICP(moving, ref, types, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ICP(moving, ref, types, Options{BruteForceNN: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(normalizeAngle(a.Transform.Theta-b.Transform.Theta)) > 1e-9 {
		t.Fatalf("tree and brute-force ICP disagree: %v vs %v", a.Transform.Theta, b.Transform.Theta)
	}
	for j := range a.Perm {
		if a.Perm[j] != b.Perm[j] {
			t.Fatal("permutations differ between NN backends")
		}
	}
}

func TestICPInputValidation(t *testing.T) {
	if _, err := ICP(make([]vec.Vec2, 2), make([]vec.Vec2, 3), []int{0, 0}, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ICP(make([]vec.Vec2, 2), make([]vec.Vec2, 2), []int{0}, Options{}); err == nil {
		t.Error("types length mismatch accepted")
	}
	if _, err := ICP(nil, nil, nil, Options{}); err == nil {
		t.Error("empty configuration accepted")
	}
	if _, err := ICP(make([]vec.Vec2, 1), make([]vec.Vec2, 1), []int{-1}, Options{}); err == nil {
		t.Error("negative type accepted")
	}
}

func TestICPTransformMapsOriginalOntoReference(t *testing.T) {
	r := rand.New(rand.NewPCG(15, 16))
	n := 15
	types := make([]int, n)
	ref := randomCloud(r, n, 6)
	g := Rigid{Theta: -0.9, T: vec.Vec2{X: 7, Y: -2}}
	moving := g.ApplyAll(ref)
	res, err := ICP(moving, ref, types, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Transform maps original moving coordinates onto the *centred*
	// reference frame plus the reference centroid — i.e. onto the
	// original reference coordinates.
	for i := range moving {
		mapped := res.Transform.Apply(moving[i])
		if mapped.Dist(ref[i]) > 1e-6 {
			t.Fatalf("Transform maps point %d to %v, want %v", i, mapped, ref[i])
		}
	}
}

// --- AlignFrame -----------------------------------------------------------

func TestAlignFrameCollapsesTransformedCopies(t *testing.T) {
	// All samples are rigid motions + same-type permutations of one
	// shape; after alignment every sample must coincide with the centred
	// reference.
	r := rand.New(rand.NewPCG(17, 18))
	n := 18
	types := make([]int, n)
	for i := range types {
		types[i] = i % 3
	}
	base := randomCloud(r, n, 7)
	m := 12
	frames := make([][]vec.Vec2, m)
	for s := range frames {
		g := Rigid{
			Theta: r.Float64() * 2 * math.Pi,
			T:     vec.Vec2{X: r.Float64() * 40, Y: r.Float64() * 40},
		}
		perm := sameTypePermutation(r, types)
		f := make([]vec.Vec2, n)
		for i := range base {
			f[perm[i]] = g.Apply(base[i])
		}
		// Types must follow the permutation; with round-robin i%3 and
		// same-type permutation the type of slot perm[i] equals
		// types[i] only if the permutation respects classes — it does,
		// but slot types must still line up with the shared `types`.
		for i := range base {
			if types[perm[i]] != types[i] {
				t.Fatal("test setup: permutation crossed types")
			}
		}
		frames[s] = f
	}
	aligned, err := AlignFrame(frames, types, FrameOptions{})
	if err != nil {
		t.Fatal(err)
	}
	centred := append([]vec.Vec2(nil), frames[0]...)
	vec.Center(centred)
	for s := range aligned {
		for j := range centred {
			if aligned[s][j].Dist(centred[j]) > 1e-5 {
				t.Fatalf("sample %d slot %d: %v, want %v", s, j, aligned[s][j], centred[j])
			}
		}
	}
}

func TestAlignFrameCentroids(t *testing.T) {
	r := rand.New(rand.NewPCG(19, 20))
	frames := [][]vec.Vec2{randomCloud(r, 10, 5), randomCloud(r, 10, 5)}
	types := make([]int, 10)
	aligned, err := AlignFrame(frames, types, FrameOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for s := range aligned {
		if c := vec.Centroid(aligned[s]); c.Norm() > 1e-9 {
			t.Fatalf("sample %d centroid = %v, want origin", s, c)
		}
	}
}

func TestAlignFrameMedoidReference(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 22))
	frames := make([][]vec.Vec2, 5)
	for s := range frames {
		frames[s] = randomCloud(r, 8, 5)
	}
	types := make([]int, 8)
	a, err := AlignFrame(frames, types, FrameOptions{Reference: RefMedoid})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 5 {
		t.Fatal("wrong sample count")
	}
}

func TestAlignFrameValidation(t *testing.T) {
	if _, err := AlignFrame(nil, nil, FrameOptions{}); err == nil {
		t.Error("empty frame set accepted")
	}
	frames := [][]vec.Vec2{make([]vec.Vec2, 3), make([]vec.Vec2, 4)}
	if _, err := AlignFrame(frames, []int{0, 0, 0}, FrameOptions{}); err == nil {
		t.Error("ragged frames accepted")
	}
}

func TestMedoidIndexPicksCentralSample(t *testing.T) {
	// Two clusters of similar frames plus one clearly central frame.
	base := []vec.Vec2{v2(0, 0), v2(1, 0), v2(0, 1)}
	off1 := []vec.Vec2{v2(5, 0), v2(6, 0), v2(5, 1)} // same shape, far centroid (centred away)
	off2 := []vec.Vec2{v2(0, 0), v2(3, 0), v2(0, 3)} // stretched shape
	off3 := []vec.Vec2{v2(0, 0), v2(2, 0), v2(0, 2)} // mildly stretched: central
	frames := [][]vec.Vec2{base, off1, off2, off3}
	idx := medoidIndex(frames)
	if idx < 0 || idx >= len(frames) {
		t.Fatalf("medoid index out of range: %d", idx)
	}
	// base and off1 are identical after centring; the medoid must be one
	// of the two shapes with minimal summed distance. Just assert it is
	// not the most extreme shape (off2).
	if idx == 2 {
		t.Fatal("medoid picked the most extreme sample")
	}
}
