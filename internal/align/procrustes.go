// Package align implements the shape-invariant preprocessing of Sec. 5.2 of
// the paper: factoring the transformation group F = ISO⁺(2) × S*_n
// (translations, rotations, and permutations of same-type particles) out of
// the raw simulation samples, producing the processed samples w^(t) whose
// per-particle observer variables the multi-information is estimated on.
//
// The pipeline is the paper's: express every configuration relative to its
// centroid, align each sample to a common reference with an ICP (iterative
// closest point) algorithm on a 3-D lift whose third coordinate encodes the
// particle type at a scale a magnitude larger than the collective's
// diameter (so correspondences never cross types), then reorder particles
// by type and correspondence. The paper used the Point Cloud Library's ICP;
// this package is a from-scratch equivalent (see DESIGN.md,
// "Substitutions").
package align

import (
	"math"

	"repro/internal/vec"
)

// Rigid is a direct planar isometry q = R(θ)·p + T, an element of ISO⁺(2).
type Rigid struct {
	Theta float64  // rotation angle, counter-clockwise
	T     vec.Vec2 // translation applied after the rotation
}

// Apply maps a single point.
func (r Rigid) Apply(p vec.Vec2) vec.Vec2 { return p.Rotate(r.Theta).Add(r.T) }

// ApplyAll maps all points, returning a new slice.
func (r Rigid) ApplyAll(ps []vec.Vec2) []vec.Vec2 {
	out := make([]vec.Vec2, len(ps))
	for i, p := range ps {
		out[i] = r.Apply(p)
	}
	return out
}

// Compose returns the isometry equivalent to applying r first, then s.
func (r Rigid) Compose(s Rigid) Rigid {
	return Rigid{
		Theta: r.Theta + s.Theta,
		T:     r.T.Rotate(s.Theta).Add(s.T),
	}
}

// Inverse returns the isometry undoing r.
func (r Rigid) Inverse() Rigid {
	return Rigid{Theta: -r.Theta, T: r.T.Rotate(-r.Theta).Neg()}
}

// Procrustes2D returns the direct isometry (rotation + translation, no
// reflection, no scaling) that best maps src onto dst in the least-squares
// sense, given the point-to-point pairing src[i] ↔ dst[i]:
//
//	argmin_{θ,T} Σ_i ‖R(θ)·src_i + T − dst_i‖².
//
// The 2-D Kabsch solution is closed-form: with both clouds centred on the
// centroids of the paired points, θ = atan2(Σ src_i × dst_i, Σ src_i · dst_i)
// and T re-attaches the centroids. Degenerate inputs (fewer than one pair,
// or all points coincident) return the pure translation between centroids.
func Procrustes2D(src, dst []vec.Vec2) Rigid {
	if len(src) != len(dst) {
		panic("align: Procrustes2D needs equal-length paired slices")
	}
	if len(src) == 0 {
		return Rigid{}
	}
	cs := vec.Centroid(src)
	cd := vec.Centroid(dst)
	var sumDot, sumCross float64
	for i := range src {
		p := src[i].Sub(cs)
		q := dst[i].Sub(cd)
		sumDot += p.Dot(q)
		sumCross += p.Cross(q)
	}
	theta := 0.0
	if sumDot != 0 || sumCross != 0 {
		theta = math.Atan2(sumCross, sumDot)
	}
	// T such that R·cs + T = cd.
	return Rigid{Theta: theta, T: cd.Sub(cs.Rotate(theta))}
}

// RMSD returns the root-mean-square deviation between paired point sets.
func RMSD(a, b []vec.Vec2) float64 {
	if len(a) != len(b) {
		panic("align: RMSD needs equal-length paired slices")
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		s += a[i].Dist2(b[i])
	}
	return math.Sqrt(s / float64(len(a)))
}
