package align

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/spatial"
	"repro/internal/vec"
)

// Options configures the ICP alignment.
type Options struct {
	// MaxIterations bounds the ICP loop; 0 means the default (50).
	MaxIterations int
	// Tolerance stops the loop when the RMS correspondence distance
	// improves by less than this between iterations; 0 means the
	// default (1e-9).
	Tolerance float64
	// TypeScaleFactor sets the type-lift coordinate spacing as a
	// multiple of the collective diameter (the paper: "a factor a
	// magnitude larger than the diameter"); 0 means the default (10).
	TypeScaleFactor float64
	// Restarts is the number of initial rotations tried (evenly spaced
	// in [0, 2π)); ICP converges to the nearest local optimum, so a few
	// restarts make the alignment robust to large relative rotations.
	// 0 means the default (8).
	Restarts int
	// BruteForceNN switches the correspondence search from the k-d tree
	// to a linear scan; exposed for the ablation benchmark.
	BruteForceNN bool
}

func (o Options) withDefaults() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 50
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	if o.TypeScaleFactor == 0 {
		o.TypeScaleFactor = 10
	}
	if o.Restarts == 0 {
		o.Restarts = 8
	}
	return o
}

// Result reports an ICP alignment.
type Result struct {
	// Transform maps the original moving cloud onto the reference.
	Transform Rigid
	// Aligned is the moving cloud after the transform, in the original
	// particle order.
	Aligned []vec.Vec2
	// Perm maps reference slots to moving particles: Perm[j] = i means
	// moving particle i corresponds to reference particle j. It is a
	// bijection that never crosses types (an element of S*_n).
	Perm []int
	// RMS is the final root-mean-square distance between matched pairs.
	RMS float64
	// Iterations is the total ICP iterations over all restarts.
	Iterations int
}

// Reordered returns the aligned moving cloud re-indexed to reference slots:
// out[j] is the aligned position of the moving particle matched to
// reference particle j. This is the w-representation of Sec. 5.2 — after
// this step, "particles close to each other in different samples at the
// same time are considered to represent the same particle".
func (r Result) Reordered() []vec.Vec2 {
	out := make([]vec.Vec2, len(r.Aligned))
	for j, i := range r.Perm {
		out[j] = r.Aligned[i]
	}
	return out
}

// lift embeds a typed 2-D configuration in R³ with the type as the third
// coordinate, scaled by typeScale so nearest neighbours never cross types.
func lift(ps []vec.Vec2, types []int, typeScale float64) []vec.Vec3 {
	out := make([]vec.Vec3, len(ps))
	for i, p := range ps {
		out[i] = vec.Vec3{X: p.X, Y: p.Y, Z: float64(types[i]) * typeScale}
	}
	return out
}

// ICP aligns the moving configuration onto the reference configuration,
// both with the same type multiset (same number of particles of each type),
// and returns the recovered isometry, the aligned cloud, and a type-
// respecting one-to-one correspondence.
//
// Both clouds are first centred (factoring out translation); each restart
// then iterates nearest-neighbour correspondence in the type-lifted R³
// against the rotation solved in closed form by Procrustes2D, until the RMS
// stops improving. The restart with the lowest final matching cost wins.
// The final permutation is produced by a greedy minimum-distance matching
// within each type, which unlike raw nearest-neighbour output is guaranteed
// to be a bijection.
func ICP(moving, reference []vec.Vec2, types []int, opt Options) (Result, error) {
	if len(moving) != len(reference) {
		return Result{}, fmt.Errorf("align: moving has %d points, reference %d", len(moving), len(reference))
	}
	if len(types) != len(moving) {
		return Result{}, fmt.Errorf("align: %d types for %d points", len(types), len(moving))
	}
	if len(moving) == 0 {
		return Result{}, fmt.Errorf("align: empty configuration")
	}
	if err := checkTypeMultiset(types); err != nil {
		return Result{}, err
	}
	opt = opt.withDefaults()

	mov := append([]vec.Vec2(nil), moving...)
	ref := append([]vec.Vec2(nil), reference...)
	movCentroid := vec.Center(mov)
	refCentroid := vec.Center(ref)

	diameter := 2 * math.Max(vec.Radius(mov), vec.Radius(ref))
	if diameter == 0 {
		diameter = 1
	}
	typeScale := opt.TypeScaleFactor * diameter

	refLifted := lift(ref, types, typeScale)
	var tree *spatial.KDTree3
	if !opt.BruteForceNN {
		tree = spatial.NewKDTree3(refLifted)
	}
	nearest := func(q vec.Vec3) (int, float64) {
		if tree != nil {
			return tree.Nearest(q)
		}
		return spatial.BruteNearest3(refLifted, q)
	}

	bestTheta, bestCost := 0.0, math.Inf(1)
	totalIters := 0
	matched := make([]vec.Vec2, len(mov))
	rotated := make([]vec.Vec2, len(mov))

	for restart := 0; restart < opt.Restarts; restart++ {
		theta := 2 * math.Pi * float64(restart) / float64(opt.Restarts)
		prevRMS := math.Inf(1)
		for iter := 0; iter < opt.MaxIterations; iter++ {
			totalIters++
			for i, p := range mov {
				rotated[i] = p.Rotate(theta)
			}
			// Correspondence in the lifted space.
			var sumD2 float64
			for i, p := range rotated {
				j, _ := nearest(vec.Vec3{X: p.X, Y: p.Y, Z: float64(types[i]) * typeScale})
				matched[i] = ref[j]
				sumD2 += p.Dist2(ref[j])
			}
			rms := math.Sqrt(sumD2 / float64(len(mov)))
			// Re-solve the rotation against the current matches.
			// The incremental rotation is composed into theta;
			// translation is ignored because both clouds are
			// centred and the matching is (near-)balanced.
			delta := Procrustes2D(rotated, matched)
			theta += delta.Theta
			if prevRMS-rms < opt.Tolerance {
				break
			}
			prevRMS = rms
		}
		// Score this restart by its final matching cost.
		var cost float64
		for i, p := range mov {
			q := p.Rotate(theta)
			_, d2 := nearest(vec.Vec3{X: q.X, Y: q.Y, Z: float64(types[i]) * typeScale})
			cost += d2
		}
		if cost < bestCost {
			bestCost, bestTheta = cost, theta
		}
	}

	aligned := make([]vec.Vec2, len(moving))
	for i, p := range mov {
		aligned[i] = p.Rotate(bestTheta)
	}
	perm := matchByType(aligned, ref, types)

	var sumD2 float64
	for j, i := range perm {
		sumD2 += aligned[i].Dist2(ref[j])
	}

	// Full transform in original coordinates:
	// x ↦ R(θ)·(x − movCentroid) + refCentroid.
	transform := Rigid{Theta: bestTheta, T: refCentroid.Sub(movCentroid.Rotate(bestTheta))}
	return Result{
		Transform:  transform,
		Aligned:    aligned,
		Perm:       perm,
		RMS:        math.Sqrt(sumD2 / float64(len(moving))),
		Iterations: totalIters,
	}, nil
}

func checkTypeMultiset(types []int) error {
	for _, t := range types {
		if t < 0 {
			return fmt.Errorf("align: negative type %d", t)
		}
	}
	return nil
}

// matchByType produces a type-respecting bijection between the moving and
// reference clouds: Perm[j] = i. Within each type it runs a greedy
// minimum-distance matching (repeatedly pairing the globally closest
// unmatched moving/reference pair), which is O(n² log n) per type and is a
// strict improvement over the raw many-to-one nearest-neighbour output of
// the ICP correspondence step.
func matchByType(moving, reference []vec.Vec2, types []int) []int {
	n := len(moving)
	perm := make([]int, n)
	byType := map[int][]int{}
	for i, t := range types {
		byType[t] = append(byType[t], i)
	}
	type pair struct {
		d2   float64
		i, j int // moving index, reference index
	}
	for _, idx := range byType {
		pairs := make([]pair, 0, len(idx)*len(idx))
		for _, i := range idx {
			for _, j := range idx {
				pairs = append(pairs, pair{moving[i].Dist2(reference[j]), i, j})
			}
		}
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].d2 != pairs[b].d2 {
				return pairs[a].d2 < pairs[b].d2
			}
			if pairs[a].i != pairs[b].i {
				return pairs[a].i < pairs[b].i
			}
			return pairs[a].j < pairs[b].j
		})
		usedI := map[int]bool{}
		usedJ := map[int]bool{}
		for _, p := range pairs {
			if usedI[p.i] || usedJ[p.j] {
				continue
			}
			usedI[p.i] = true
			usedJ[p.j] = true
			perm[p.j] = p.i
		}
	}
	return perm
}
