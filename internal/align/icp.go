package align

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/spatial"
	"repro/internal/vec"
)

// Options configures the ICP alignment.
type Options struct {
	// MaxIterations bounds the ICP loop; 0 means the default (50).
	MaxIterations int
	// Tolerance stops the loop when the RMS correspondence distance
	// improves by less than this between iterations; 0 means the
	// default (1e-9).
	Tolerance float64
	// TypeScaleFactor sets the type-lift coordinate spacing as a
	// multiple of the collective diameter (the paper: "a factor a
	// magnitude larger than the diameter"); 0 means the default (10).
	TypeScaleFactor float64
	// Restarts is the number of initial rotations tried (evenly spaced
	// in [0, 2π)); ICP converges to the nearest local optimum, so a few
	// restarts make the alignment robust to large relative rotations.
	// 0 means the default (8).
	Restarts int
	// BruteForceNN switches the correspondence search from the k-d tree
	// to a linear scan; exposed for the ablation benchmark.
	BruteForceNN bool
}

func (o Options) withDefaults() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 50
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	if o.TypeScaleFactor == 0 {
		o.TypeScaleFactor = 10
	}
	if o.Restarts == 0 {
		o.Restarts = 8
	}
	return o
}

// Result reports an ICP alignment.
type Result struct {
	// Transform maps the original moving cloud onto the reference.
	Transform Rigid
	// Aligned is the moving cloud after the transform, in the original
	// particle order.
	Aligned []vec.Vec2
	// Perm maps reference slots to moving particles: Perm[j] = i means
	// moving particle i corresponds to reference particle j. It is a
	// bijection that never crosses types (an element of S*_n).
	Perm []int
	// RMS is the final root-mean-square distance between matched pairs.
	RMS float64
	// Iterations is the total ICP iterations over all restarts.
	Iterations int
}

// Reordered returns the aligned moving cloud re-indexed to reference slots:
// out[j] is the aligned position of the moving particle matched to
// reference particle j. This is the w-representation of Sec. 5.2 — after
// this step, "particles close to each other in different samples at the
// same time are considered to represent the same particle".
func (r Result) Reordered() []vec.Vec2 {
	out := make([]vec.Vec2, len(r.Aligned))
	for j, i := range r.Perm {
		out[j] = r.Aligned[i]
	}
	return out
}

// Aligner runs ICP alignments with reusable scratch storage. A zero Aligner
// is ready to use; after the first call, further alignments of same-sized
// configurations perform (almost) no heap allocation, which matters when an
// ensemble pipeline aligns tens of thousands of frames. An Aligner is not
// safe for concurrent use — give each worker goroutine its own.
type Aligner struct {
	mov, ref  []vec.Vec2
	rotated   []vec.Vec2
	matched   []vec.Vec2
	aligned   []vec.Vec2
	refLifted []vec.Vec3
	tree      spatial.KDTree3
	brute     bool
	perm      []int
	order     []int
	typeSort  typeSorter
	pairs     []icpPair
	pairSort  pairSorter
	usedI     []bool
	usedJ     []bool

	movCentroid, refCentroid vec.Vec2
}

// ICP aligns the moving configuration onto the reference configuration,
// both with the same type multiset (same number of particles of each type),
// and returns the recovered isometry, the aligned cloud, and a type-
// respecting one-to-one correspondence.
//
// Both clouds are first centred (factoring out translation); each restart
// then iterates nearest-neighbour correspondence in the type-lifted R³
// against the rotation solved in closed form by Procrustes2D, until the RMS
// stops improving. The restart with the lowest final matching cost wins.
// The final permutation is produced by a greedy minimum-distance matching
// within each type, which unlike raw nearest-neighbour output is guaranteed
// to be a bijection.
func ICP(moving, reference []vec.Vec2, types []int, opt Options) (Result, error) {
	var a Aligner
	return a.ICP(moving, reference, types, opt)
}

// ICP is the scratch-reusing form of the package-level ICP. The returned
// Result's slices are freshly allocated and caller-owned.
func (a *Aligner) ICP(moving, reference []vec.Vec2, types []int, opt Options) (Result, error) {
	theta, iters, err := a.icp(moving, reference, types, opt)
	if err != nil {
		return Result{}, err
	}
	aligned := append([]vec.Vec2(nil), a.aligned...)
	perm := append([]int(nil), a.perm...)

	var sumD2 float64
	for j, i := range perm {
		sumD2 += aligned[i].Dist2(a.ref[j])
	}

	// Full transform in original coordinates:
	// x ↦ R(θ)·(x − movCentroid) + refCentroid.
	transform := Rigid{Theta: theta, T: a.refCentroid.Sub(a.movCentroid.Rotate(theta))}
	return Result{
		Transform:  transform,
		Aligned:    aligned,
		Perm:       perm,
		RMS:        math.Sqrt(sumD2 / float64(len(moving))),
		Iterations: iters,
	}, nil
}

// AlignReorderedInto aligns moving onto reference and writes the reordered
// aligned cloud directly into dst: dst[j] is the aligned position of the
// moving particle matched to reference slot j (the w-representation of
// Sec. 5.2). dst must have length len(reference). This is the zero-copy
// path of the streaming observer accumulator: no intermediate Result is
// materialised and, after scratch warm-up, the call is allocation-free.
func (a *Aligner) AlignReorderedInto(dst []vec.Vec2, moving, reference []vec.Vec2, types []int, opt Options) error {
	if len(dst) != len(reference) {
		return fmt.Errorf("align: dst has %d slots, reference %d", len(dst), len(reference))
	}
	if _, _, err := a.icp(moving, reference, types, opt); err != nil {
		return err
	}
	for j, i := range a.perm {
		dst[j] = a.aligned[i]
	}
	return nil
}

// nearest answers a correspondence query against the lifted reference.
func (a *Aligner) nearest(q vec.Vec3) (int, float64) {
	if !a.brute {
		return a.tree.Nearest(q)
	}
	return spatial.BruteNearest3(a.refLifted, q)
}

// icp runs the full alignment into the scratch buffers: afterwards
// a.aligned holds the rotated moving cloud (original particle order) and
// a.perm the type-respecting bijection. It returns the winning rotation
// angle and the total iteration count.
func (a *Aligner) icp(moving, reference []vec.Vec2, types []int, opt Options) (float64, int, error) {
	if len(moving) != len(reference) {
		return 0, 0, fmt.Errorf("align: moving has %d points, reference %d", len(moving), len(reference))
	}
	if len(types) != len(moving) {
		return 0, 0, fmt.Errorf("align: %d types for %d points", len(types), len(moving))
	}
	if len(moving) == 0 {
		return 0, 0, fmt.Errorf("align: empty configuration")
	}
	if err := checkTypeMultiset(types); err != nil {
		return 0, 0, err
	}
	opt = opt.withDefaults()

	a.mov = append(a.mov[:0], moving...)
	a.ref = append(a.ref[:0], reference...)
	a.movCentroid = vec.Center(a.mov)
	a.refCentroid = vec.Center(a.ref)
	mov, ref := a.mov, a.ref

	diameter := 2 * math.Max(vec.Radius(mov), vec.Radius(ref))
	if diameter == 0 {
		diameter = 1
	}
	typeScale := opt.TypeScaleFactor * diameter

	a.refLifted = a.refLifted[:0]
	for i, p := range ref {
		a.refLifted = append(a.refLifted, vec.Vec3{X: p.X, Y: p.Y, Z: float64(types[i]) * typeScale})
	}
	a.brute = opt.BruteForceNN
	if !a.brute {
		a.tree.Rebuild(a.refLifted)
	}

	bestTheta, bestCost := 0.0, math.Inf(1)
	totalIters := 0
	a.matched = growVec2(a.matched, len(mov))
	a.rotated = growVec2(a.rotated, len(mov))
	matched, rotated := a.matched, a.rotated

	for restart := 0; restart < opt.Restarts; restart++ {
		theta := 2 * math.Pi * float64(restart) / float64(opt.Restarts)
		prevRMS := math.Inf(1)
		for iter := 0; iter < opt.MaxIterations; iter++ {
			totalIters++
			for i, p := range mov {
				rotated[i] = p.Rotate(theta)
			}
			// Correspondence in the lifted space.
			var sumD2 float64
			for i, p := range rotated {
				j, _ := a.nearest(vec.Vec3{X: p.X, Y: p.Y, Z: float64(types[i]) * typeScale})
				matched[i] = ref[j]
				sumD2 += p.Dist2(ref[j])
			}
			rms := math.Sqrt(sumD2 / float64(len(mov)))
			// Re-solve the rotation against the current matches.
			// The incremental rotation is composed into theta;
			// translation is ignored because both clouds are
			// centred and the matching is (near-)balanced.
			delta := Procrustes2D(rotated, matched)
			theta += delta.Theta
			if prevRMS-rms < opt.Tolerance {
				break
			}
			prevRMS = rms
		}
		// Score this restart by its final matching cost.
		var cost float64
		for i, p := range mov {
			q := p.Rotate(theta)
			_, d2 := a.nearest(vec.Vec3{X: q.X, Y: q.Y, Z: float64(types[i]) * typeScale})
			cost += d2
		}
		if cost < bestCost {
			bestCost, bestTheta = cost, theta
		}
	}

	a.aligned = growVec2(a.aligned, len(moving))
	for i, p := range mov {
		a.aligned[i] = p.Rotate(bestTheta)
	}
	a.matchByType(a.aligned, ref, types)
	return bestTheta, totalIters, nil
}

func checkTypeMultiset(types []int) error {
	for _, t := range types {
		if t < 0 {
			return fmt.Errorf("align: negative type %d", t)
		}
	}
	return nil
}

type icpPair struct {
	d2   float64
	i, j int // moving index, reference index
}

// pairSorter orders candidate pairs by distance with deterministic index
// tie-breaks — a reusable sort.Interface so the per-frame matching does not
// allocate a closure and swapper the way sort.Slice would.
type pairSorter struct{ pairs []icpPair }

func (p *pairSorter) Len() int      { return len(p.pairs) }
func (p *pairSorter) Swap(a, b int) { p.pairs[a], p.pairs[b] = p.pairs[b], p.pairs[a] }
func (p *pairSorter) Less(a, b int) bool {
	pa, pb := p.pairs[a], p.pairs[b]
	if pa.d2 != pb.d2 {
		return pa.d2 < pb.d2
	}
	if pa.i != pb.i {
		return pa.i < pb.i
	}
	return pa.j < pb.j
}

// typeSorter orders particle indices by (type, index) so same-type
// particles form contiguous runs — constant scratch for any type ids,
// where a dense per-type bucket array would scale with the largest id and
// a map would allocate per frame.
type typeSorter struct {
	idx   []int
	types []int
}

func (s *typeSorter) Len() int      { return len(s.idx) }
func (s *typeSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }
func (s *typeSorter) Less(a, b int) bool {
	ta, tb := s.types[s.idx[a]], s.types[s.idx[b]]
	if ta != tb {
		return ta < tb
	}
	return s.idx[a] < s.idx[b]
}

// matchByType produces a type-respecting bijection between the moving and
// reference clouds into a.perm: perm[j] = i. Within each type it runs a
// greedy minimum-distance matching (repeatedly pairing the globally closest
// unmatched moving/reference pair), which is O(n² log n) per type and is a
// strict improvement over the raw many-to-one nearest-neighbour output of
// the ICP correspondence step. Types are processed in increasing order; the
// result is identical to any other order because the per-type matchings
// write disjoint permutation slots.
func (a *Aligner) matchByType(moving, reference []vec.Vec2, types []int) {
	n := len(moving)
	a.perm = growInt(a.perm, n)
	a.order = growInt(a.order, n)
	for i := range a.order {
		a.order[i] = i
	}
	a.typeSort = typeSorter{idx: a.order, types: types}
	sort.Sort(&a.typeSort)
	a.usedI = growBool(a.usedI, n)
	a.usedJ = growBool(a.usedJ, n)
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && types[a.order[hi]] == types[a.order[lo]] {
			hi++
		}
		idx := a.order[lo:hi] // one type's members, in increasing index order
		lo = hi
		a.pairs = a.pairs[:0]
		for _, i := range idx {
			for _, j := range idx {
				a.pairs = append(a.pairs, icpPair{moving[i].Dist2(reference[j]), i, j})
			}
		}
		a.pairSort.pairs = a.pairs
		sort.Sort(&a.pairSort)
		for _, i := range idx {
			a.usedI[i] = false
			a.usedJ[i] = false
		}
		for _, p := range a.pairs {
			if a.usedI[p.i] || a.usedJ[p.j] {
				continue
			}
			a.usedI[p.i] = true
			a.usedJ[p.j] = true
			a.perm[p.j] = p.i
		}
	}
}

func growVec2(s []vec.Vec2, n int) []vec.Vec2 {
	if cap(s) < n {
		return make([]vec.Vec2, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
