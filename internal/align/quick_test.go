package align

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

// Property: Rigid forms a group — composition is associative, the identity
// is neutral, and every element composed with its inverse is the identity
// (up to floating point), verified on random elements and probe points.
func TestQuickRigidGroupLaws(t *testing.T) {
	gen := func(r *rand.Rand) Rigid {
		return Rigid{
			Theta: r.Float64()*4*math.Pi - 2*math.Pi,
			T:     vec.Vec2{X: r.Float64()*20 - 10, Y: r.Float64()*20 - 10},
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, h, k := gen(r), gen(r), gen(r)
		p := vec.Vec2{X: r.Float64()*6 - 3, Y: r.Float64()*6 - 3}
		// Associativity: (g∘h)∘k == g∘(h∘k) pointwise.
		lhs := g.Compose(h).Compose(k).Apply(p)
		rhs := g.Compose(h.Compose(k)).Apply(p)
		if lhs.Dist(rhs) > 1e-7 {
			return false
		}
		// Identity.
		if (Rigid{}).Apply(p) != p {
			return false
		}
		// Inverse, both sides.
		if g.Compose(g.Inverse()).Apply(p).Dist(p) > 1e-7 {
			return false
		}
		if g.Inverse().Compose(g).Apply(p).Dist(p) > 1e-7 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Rigid maps are isometries — they preserve all pairwise
// distances.
func TestQuickRigidIsIsometry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Rigid{
			Theta: r.Float64() * 2 * math.Pi,
			T:     vec.Vec2{X: r.Float64() * 10, Y: r.Float64() * 10},
		}
		a := vec.Vec2{X: r.Float64()*8 - 4, Y: r.Float64()*8 - 4}
		b := vec.Vec2{X: r.Float64()*8 - 4, Y: r.Float64()*8 - 4}
		return math.Abs(g.Apply(a).Dist(g.Apply(b))-a.Dist(b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Procrustes on a planted transform achieves zero residual for
// any non-degenerate random cloud.
func TestQuickProcrustesExactRecovery(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(30)
		src := make([]vec.Vec2, n)
		for i := range src {
			src[i] = vec.Vec2{X: r.Float64()*10 - 5, Y: r.Float64()*10 - 5}
		}
		g := Rigid{
			Theta: r.Float64()*2*math.Pi - math.Pi,
			T:     vec.Vec2{X: r.Float64()*30 - 15, Y: r.Float64()*30 - 15},
		}
		dst := g.ApplyAll(src)
		rec := Procrustes2D(src, dst)
		return RMSD(rec.ApplyAll(src), dst) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the Procrustes residual is never larger than the plain
// (untransformed) residual — it is a minimiser.
func TestQuickProcrustesNeverWorseThanIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		src := make([]vec.Vec2, n)
		dst := make([]vec.Vec2, n)
		for i := range src {
			src[i] = vec.Vec2{X: r.Float64()*10 - 5, Y: r.Float64()*10 - 5}
			dst[i] = vec.Vec2{X: r.Float64()*10 - 5, Y: r.Float64()*10 - 5}
		}
		rec := Procrustes2D(src, dst)
		return RMSD(rec.ApplyAll(src), dst) <= RMSD(src, dst)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
