package align

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/vec"
	"repro/internal/workpool"
)

// Reference selects the alignment reference for an ensemble frame.
type Reference int

const (
	// RefFirst aligns every sample to sample 0 (cheap, the default).
	RefFirst Reference = iota
	// RefMedoid aligns to the sample whose centred configuration has
	// the smallest total unaligned distance to all others — a more
	// central reference that reduces the chance of an unrepresentative
	// anchor. Costs one extra O(m²·n) pass.
	RefMedoid
)

// FrameOptions configures AlignFrame.
type FrameOptions struct {
	ICP Options
	// Reference selects the alignment anchor.
	Reference Reference
	// Workers bounds the parallelism; 0 means GOMAXPROCS.
	Workers int
}

// AlignFrame factors the transformation group F out of one ensemble frame:
// given the m raw configurations z^(t) (frames[s][i], all with the same
// type assignment), it returns the processed configurations w^(t), centred,
// rotation-aligned to a common reference and re-indexed by type-respecting
// correspondence so that index j means "the same particle" across samples
// in the sense of Sec. 5.2.
//
// The reference sample itself is returned centred with the identity
// permutation. The work is parallelised over samples.
func AlignFrame(frames [][]vec.Vec2, types []int, opt FrameOptions) ([][]vec.Vec2, error) {
	m := len(frames)
	if m == 0 {
		return nil, fmt.Errorf("align: empty frame set")
	}
	for s, f := range frames {
		if len(f) != len(types) {
			return nil, fmt.Errorf("align: sample %d has %d points, want %d", s, len(f), len(types))
		}
	}
	refIdx := 0
	if opt.Reference == RefMedoid {
		refIdx = medoidIndex(frames)
	}
	reference := append([]vec.Vec2(nil), frames[refIdx]...)
	vec.Center(reference)

	out := make([][]vec.Vec2, m)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var aligners sync.Pool // per-goroutine ICP scratch, reused across samples
	err := workpool.Run(m, workers, func(s int) error {
		if s == refIdx {
			out[s] = reference
			return nil
		}
		al, _ := aligners.Get().(*Aligner)
		if al == nil {
			al = new(Aligner)
		}
		defer aligners.Put(al)
		dst := make([]vec.Vec2, len(types))
		if e := al.AlignReorderedInto(dst, frames[s], reference, types, opt.ICP); e != nil {
			return fmt.Errorf("align: sample %d: %w", s, e)
		}
		out[s] = dst
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// medoidIndex returns the index of the sample minimising the summed
// centred-configuration distance to all other samples (no rotation or
// permutation applied — this is a cheap anchor heuristic, not a full
// alignment).
func medoidIndex(frames [][]vec.Vec2) int {
	m := len(frames)
	centred := make([][]vec.Vec2, m)
	for s, f := range frames {
		c := append([]vec.Vec2(nil), f...)
		vec.Center(c)
		centred[s] = c
	}
	best, bestCost := 0, -1.0
	for s := 0; s < m; s++ {
		var cost float64
		for t := 0; t < m; t++ {
			if t == s {
				continue
			}
			for i := range centred[s] {
				cost += centred[s][i].Dist2(centred[t][i])
			}
		}
		if bestCost < 0 || cost < bestCost {
			best, bestCost = s, cost
		}
	}
	return best
}
