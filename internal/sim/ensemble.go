package sim

import (
	"context"

	"repro/internal/vec"
	"repro/internal/workpool"
)

// EnsembleConfig describes an experiment's ensemble: m independent runs of
// the same Config with different random streams (Sec. 5.1: "to gather
// statistics for an experiment, we need to run the simulation multiple
// times").
type EnsembleConfig struct {
	// Sim is the per-run configuration (shared by all samples).
	Sim Config
	// M is the number of samples (the paper uses 500–1000).
	M int
	// Steps is t_max, the number of integrator steps per run (the paper
	// uses 100–250).
	Steps int
	// RecordEvery selects which frames are kept: steps 0, RecordEvery,
	// 2·RecordEvery, …, and always the final step. 1 keeps everything;
	// 0 defaults to 1.
	RecordEvery int
	// Seed is the experiment master seed; sample i runs on the
	// deterministic sub-stream Split(Seed, i), so results do not depend
	// on scheduling.
	Seed uint64
	// Workers bounds the sample-level parallelism (independent runs
	// executed concurrently); 0 means GOMAXPROCS. It composes with the
	// per-step force parallelism of Sim.Workers — samples are
	// embarrassingly parallel, so prefer this axis and leave Sim.Workers
	// at its default unless cores outnumber samples. Results never depend
	// on this count, nor on the value of Sim.Workers within a mode; note
	// however that Sim.Workers 0 (serial pair sweep) and ≥ 1 (sharded)
	// accumulate forces in different orders, so switching between those
	// two modes changes trajectories at rounding level.
	Workers int //sopslint:nohash sample-level parallelism; results are bit-identical for every count
	// Tokens, when non-nil, is a shared execution budget the sample
	// workers draw from: each sample's full run holds one token. It lets
	// several concurrently running ensembles (a sweep) share one global
	// worker budget instead of each assuming the whole machine. Runtime
	// only — never persisted; results never depend on it.
	Tokens *workpool.Tokens //sopslint:nohash shared runtime budget; results never depend on it
}

// Trajectory is the recorded output of one sample: Frames[t][i] is the
// position of particle i at recorded step Times[t].
type Trajectory struct {
	Times  []int
	Frames [][]vec.Vec2
}

// Ensemble is the recorded output of all m samples of an experiment, the
// raw material z of Sec. 5.1 (Eq. 17).
type Ensemble struct {
	Cfg   EnsembleConfig
	Types []int
	// Trajs[s] is sample s. All trajectories share the same Times.
	Trajs []Trajectory
	// Equilibrated[s] reports whether sample s met the equilibrium
	// criterion at some recorded point during its run.
	Equilibrated []bool
}

// Times returns the shared recorded step indices.
func (e *Ensemble) Times() []int {
	if len(e.Trajs) == 0 {
		return nil
	}
	return e.Trajs[0].Times
}

// FramesAt collects frame t (an index into Times, not a step count) across
// all samples: the z^(t) sample matrix of Eq. (17). The returned slices
// alias the stored trajectories; treat them as read-only.
func (e *Ensemble) FramesAt(t int) [][]vec.Vec2 {
	out := make([][]vec.Vec2, len(e.Trajs))
	for s := range e.Trajs {
		out[s] = e.Trajs[s].Frames[t]
	}
	return out
}

// RunEnsemble executes the ensemble on a worker pool and retains every
// trajectory. Sample i is seeded with rngx.Split(Seed, i) regardless of
// which worker runs it, so the result is bit-identical for any worker
// count. It is the full-retention composition of StreamEnsemble with a
// Collector; pipelines that only need each frame once should stream
// instead and keep peak memory independent of M×Steps.
func RunEnsemble(ec EnsembleConfig) (*Ensemble, error) {
	return RunEnsembleCtx(context.Background(), ec)
}

// RunEnsembleCtx is RunEnsemble under a context: cancellation stops the
// sample pool within one token-grant and returns the context's error; no
// partial ensemble is returned.
func RunEnsembleCtx(ctx context.Context, ec EnsembleConfig) (*Ensemble, error) {
	col, err := NewCollector(ec)
	if err != nil {
		return nil, err
	}
	if _, err := StreamEnsembleCtx(ctx, ec, col.Visit); err != nil {
		return nil, err
	}
	return col.Ensemble(), nil
}
