package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/rngx"
	"repro/internal/vec"
)

// EnsembleConfig describes an experiment's ensemble: m independent runs of
// the same Config with different random streams (Sec. 5.1: "to gather
// statistics for an experiment, we need to run the simulation multiple
// times").
type EnsembleConfig struct {
	// Sim is the per-run configuration (shared by all samples).
	Sim Config
	// M is the number of samples (the paper uses 500–1000).
	M int
	// Steps is t_max, the number of integrator steps per run (the paper
	// uses 100–250).
	Steps int
	// RecordEvery selects which frames are kept: steps 0, RecordEvery,
	// 2·RecordEvery, …, and always the final step. 1 keeps everything;
	// 0 defaults to 1.
	RecordEvery int
	// Seed is the experiment master seed; sample i runs on the
	// deterministic sub-stream Split(Seed, i), so results do not depend
	// on scheduling.
	Seed uint64
	// Workers bounds the sample-level parallelism (independent runs
	// executed concurrently); 0 means GOMAXPROCS. It composes with the
	// per-step force parallelism of Sim.Workers — samples are
	// embarrassingly parallel, so prefer this axis and leave Sim.Workers
	// at its default unless cores outnumber samples. Results never depend
	// on this count, nor on the value of Sim.Workers within a mode; note
	// however that Sim.Workers 0 (serial pair sweep) and ≥ 1 (sharded)
	// accumulate forces in different orders, so switching between those
	// two modes changes trajectories at rounding level.
	Workers int
}

// Trajectory is the recorded output of one sample: Frames[t][i] is the
// position of particle i at recorded step Times[t].
type Trajectory struct {
	Times  []int
	Frames [][]vec.Vec2
}

// Ensemble is the recorded output of all m samples of an experiment, the
// raw material z of Sec. 5.1 (Eq. 17).
type Ensemble struct {
	Cfg   EnsembleConfig
	Types []int
	// Trajs[s] is sample s. All trajectories share the same Times.
	Trajs []Trajectory
	// Equilibrated[s] reports whether sample s met the equilibrium
	// criterion at some recorded point during its run.
	Equilibrated []bool
}

// Times returns the shared recorded step indices.
func (e *Ensemble) Times() []int {
	if len(e.Trajs) == 0 {
		return nil
	}
	return e.Trajs[0].Times
}

// FramesAt collects frame t (an index into Times, not a step count) across
// all samples: the z^(t) sample matrix of Eq. (17). The returned slices
// alias the stored trajectories; treat them as read-only.
func (e *Ensemble) FramesAt(t int) [][]vec.Vec2 {
	out := make([][]vec.Vec2, len(e.Trajs))
	for s := range e.Trajs {
		out[s] = e.Trajs[s].Frames[t]
	}
	return out
}

// RunEnsemble executes the ensemble on a worker pool. Sample i is seeded
// with rngx.Split(Seed, i) regardless of which worker runs it, so the
// result is bit-identical for any worker count.
func RunEnsemble(ec EnsembleConfig) (*Ensemble, error) {
	ec.Sim = ec.Sim.WithDefaults()
	if err := ec.Sim.Validate(); err != nil {
		return nil, err
	}
	if ec.M <= 0 {
		return nil, errors.New("sim: ensemble M must be positive")
	}
	if ec.Steps <= 0 {
		return nil, errors.New("sim: ensemble Steps must be positive")
	}
	if ec.RecordEvery <= 0 {
		ec.RecordEvery = 1
	}
	workers := ec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > ec.M {
		workers = ec.M
	}

	ens := &Ensemble{
		Cfg:          ec,
		Types:        append([]int(nil), ec.Sim.Types...),
		Trajs:        make([]Trajectory, ec.M),
		Equilibrated: make([]bool, ec.M),
	}

	var (
		wg   sync.WaitGroup
		next = make(chan int)
		errc = make(chan error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range next {
				traj, eq, err := runSample(ec, uint64(s))
				if err != nil {
					select {
					case errc <- fmt.Errorf("sample %d: %w", s, err):
					default:
					}
					return
				}
				ens.Trajs[s] = traj
				ens.Equilibrated[s] = eq
			}
		}()
	}
	for s := 0; s < ec.M; s++ {
		next <- s
	}
	close(next)
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	return ens, nil
}

func runSample(ec EnsembleConfig, stream uint64) (Trajectory, bool, error) {
	sys, err := New(ec.Sim, rngx.Split(ec.Seed, stream))
	if err != nil {
		return Trajectory{}, false, err
	}
	nRec := ec.Steps/ec.RecordEvery + 1
	if ec.Steps%ec.RecordEvery != 0 {
		nRec++ // final step recorded additionally
	}
	traj := Trajectory{
		Times:  make([]int, 0, nRec),
		Frames: make([][]vec.Vec2, 0, nRec),
	}
	record := func() {
		traj.Times = append(traj.Times, sys.Time())
		traj.Frames = append(traj.Frames, sys.Positions())
	}
	record() // t = 0
	equilibrated := false
	for k := 1; k <= ec.Steps; k++ {
		sys.Step()
		if sys.InEquilibrium() {
			equilibrated = true
		}
		if k%ec.RecordEvery == 0 || k == ec.Steps {
			record()
		}
	}
	return traj, equilibrated, nil
}
