package sim

import (
	"math"
	"testing"

	"repro/internal/forces"
	"repro/internal/rngx"
	"repro/internal/vec"
)

func TestMaxStableDt(t *testing.T) {
	if got := MaxStableDt(4, 35); math.Abs(got-0.5/140) > 1e-15 {
		t.Fatalf("MaxStableDt(4,35) = %v", got)
	}
	if got := MaxStableDt(0, 10); got != DefaultDt {
		t.Fatalf("degenerate input should return the default, got %v", got)
	}
	if got := MaxStableDt(2, 0); got != DefaultDt {
		t.Fatalf("degenerate input should return the default, got %v", got)
	}
}

// TestStiffSystemStableAtSuggestedDt demonstrates the stability boundary
// that motivated MaxStableDt: a dense strongly-adhesive collective stays
// bounded at the suggested step and explodes (or disperses far beyond its
// initial extent) at a 20× larger one.
func TestStiffSystemStableAtSuggestedDt(t *testing.T) {
	build := func(dt float64) *System {
		cfg := Config{
			N:     30,
			Types: TypesRoundRobin(30, 2),
			Force: forces.MustF1(forces.ConstantMatrix(2, 4),
				forces.MustMatrix([][]float64{{1.0, 2.0}, {2.0, 2.6}})),
			Cutoff:        6,
			InitRadius:    2.5,
			Dt:            dt,
			NoiseVariance: -1,
		}
		sys, err := New(cfg, rngx.New(5))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	good := build(MaxStableDt(4, 30))
	good.Run(2000)
	if r := vec.Radius(good.Positions()); r > 12 {
		t.Fatalf("stable step dispersed the collective to radius %v", r)
	}
	bad := build(MaxStableDt(4, 30) * 40)
	bad.Run(1000)
	if r := vec.Radius(bad.Positions()); r < 12 {
		t.Fatalf("expected the oversized step to destabilise the collective, radius %v", r)
	}
}

// TestDtHalvingConsistency checks integrator convergence: a noise-free
// trajectory advanced with dt and with dt/2 over the same physical time
// must agree closely (the Euler scheme is first order; halving the step
// roughly halves the error).
func TestDtHalvingConsistency(t *testing.T) {
	run := func(dt float64, steps int) []vec.Vec2 {
		cfg := Config{
			N:             8,
			Force:         forces.MustF1(forces.ConstantMatrix(1, 1), forces.ConstantMatrix(1, 2)),
			Cutoff:        10,
			Dt:            dt,
			NoiseVariance: -1,
		}
		rng := rngx.New(31)
		pos := make([]vec.Vec2, cfg.N)
		for i := range pos {
			x, y := rng.UniformDisc(3)
			pos[i] = vec.Vec2{X: x, Y: y}
		}
		sys, err := NewFromPositions(cfg, pos, rngx.New(0))
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(steps)
		return sys.Positions()
	}
	coarse := run(0.05, 200) // T = 10
	fine := run(0.025, 400)  // same T
	finer := run(0.0125, 800)
	errCoarse, errFine := 0.0, 0.0
	for i := range coarse {
		errCoarse += coarse[i].Dist(finer[i])
		errFine += fine[i].Dist(finer[i])
	}
	if errFine >= errCoarse {
		t.Fatalf("halving dt did not reduce the discretisation error: %v vs %v", errFine, errCoarse)
	}
	if errCoarse/float64(len(coarse)) > 0.05 {
		t.Fatalf("coarse-step trajectory error per particle %v too large; dynamics not step-size robust",
			errCoarse/float64(len(coarse)))
	}
}
