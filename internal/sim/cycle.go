package sim

import (
	"repro/internal/vec"
)

// CycleDetector detects periodic limit cycles in a trajectory. Sec. 6 of
// the paper observes that some runs never satisfy the force-based
// equilibrium criterion but instead "reach a limit cycle with a periodic
// dynamic"; this detector recognises that situation so the harness can
// classify terminal behaviours (equilibrium / expanding / limit cycle).
//
// Detection is by configuration recurrence: the trajectory has an
// (approximate) period p if the current frame matches the frame p recorded
// steps ago within tolerance, for every particle, sustained over at least
// one further period. Matching is done on centred configurations so a
// slowly drifting but internally periodic collective is still recognised.
type CycleDetector struct {
	// Tolerance is the maximum per-particle displacement (after
	// centring) for two frames to be considered equal. It should be
	// comfortably above the noise amplitude per step and below the
	// inter-particle spacing.
	Tolerance float64
	// MaxPeriod bounds the periods searched.
	MaxPeriod int

	frames [][]vec.Vec2
}

// Observe appends a frame (copied and centred) to the detector's history.
func (c *CycleDetector) Observe(frame []vec.Vec2) {
	cp := append([]vec.Vec2(nil), frame...)
	vec.Center(cp)
	c.frames = append(c.frames, cp)
}

// framesEqual reports whether two centred frames agree within tolerance.
func (c *CycleDetector) framesEqual(a, b []vec.Vec2) bool {
	if len(a) != len(b) {
		return false
	}
	t2 := c.Tolerance * c.Tolerance
	for i := range a {
		if a[i].Dist2(b[i]) > t2 {
			return false
		}
	}
	return true
}

// Period returns the smallest period p ≥ 1 (in observed frames) such that
// the trailing 2·p frames consist of two matching length-p blocks, or 0 if
// no period up to MaxPeriod is found. A period of 1 means the configuration
// is stationary to within tolerance (an equilibrium in the recurrence
// sense).
func (c *CycleDetector) Period() int {
	n := len(c.frames)
	maxP := c.MaxPeriod
	if maxP <= 0 {
		maxP = n / 2
	}
	for p := 1; p <= maxP && 2*p <= n; p++ {
		ok := true
		for k := 1; k <= p; k++ {
			if !c.framesEqual(c.frames[n-k], c.frames[n-k-p]) {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	return 0
}

// Len returns the number of observed frames.
func (c *CycleDetector) Len() int { return len(c.frames) }

// Reset discards the observation history.
func (c *CycleDetector) Reset() { c.frames = c.frames[:0] }
