package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/rngx"
	"repro/internal/vec"
	"repro/internal/workpool"
)

// Frame is one recorded frame of one sample, delivered to a streaming
// consumer as it is produced. Pos aliases the simulator's live position
// buffer: it is valid (read-only) for the duration of the visit call only —
// consumers that retain frames must copy.
type Frame struct {
	// Sample is the sample index s; the sample runs on the deterministic
	// random sub-stream Split(Seed, s) regardless of scheduling.
	Sample int
	// Index is the position of this frame on the shared recorded time
	// grid (an index into StreamResult.Times / RecordedSteps).
	Index int
	// Step is the integrator step count of this frame.
	Step int
	// Pos holds the particle positions. Read-only, valid only during the
	// visit call.
	Pos []vec.Vec2
	// Final marks the sample's last recorded frame.
	Final bool
	// Equilibrated reports whether the sample met the equilibrium
	// criterion at any step during its run. Valid only on the final
	// frame.
	Equilibrated bool
}

// FrameVisitor consumes streamed frames. A visitor may be called
// concurrently from different sample goroutines; calls for one sample are
// sequential and arrive in increasing Index order. Returning a non-nil
// error cancels the whole stream.
type FrameVisitor func(f Frame) error

// StreamResult describes a completed stream.
type StreamResult struct {
	// Times is the shared recorded time grid (integrator step indices).
	Times []int
	// Types is the resolved per-particle type assignment.
	Types []int
}

// RecordedSteps returns the recorded step indices of a run: steps
// 0, every, 2·every, …, and always the final step. every ≤ 0 is treated
// as 1. This is the shared time grid of every sample of an ensemble.
func RecordedSteps(steps, every int) []int {
	if every <= 0 {
		every = 1
	}
	n := steps/every + 1
	if steps%every != 0 {
		n++
	}
	out := make([]int, 0, n)
	for k := 0; k <= steps; k += every {
		out = append(out, k)
	}
	if out[len(out)-1] != steps {
		out = append(out, steps)
	}
	return out
}

// Normalized returns a copy of the config with simulation defaults applied
// and the ensemble fields validated, so that consumers can derive the time
// grid and type assignment before any sample runs.
func (ec EnsembleConfig) Normalized() (EnsembleConfig, error) {
	ec.Sim = ec.Sim.WithDefaults()
	if err := ec.Sim.Validate(); err != nil {
		return ec, err
	}
	if ec.M <= 0 {
		return ec, errors.New("sim: ensemble M must be positive")
	}
	if ec.Steps <= 0 {
		return ec, errors.New("sim: ensemble Steps must be positive")
	}
	if ec.RecordEvery <= 0 {
		ec.RecordEvery = 1
	}
	return ec, nil
}

// StreamEnsemble runs all M samples of the ensemble on a worker pool and
// emits every recorded frame to visit as it is produced, without retaining
// trajectories — the bounded-memory alternative to RunEnsemble. Sample i is
// seeded with rngx.Split(Seed, i), so what each sample computes is
// bit-identical for any worker count; only the interleaving of visit calls
// across samples depends on scheduling. Full-trajectory retention is an
// opt-in consumer: see Collector.
func StreamEnsemble(ec EnsembleConfig, visit FrameVisitor) (*StreamResult, error) {
	return StreamEnsembleCtx(context.Background(), ec, visit)
}

// StreamEnsembleCtx is StreamEnsemble under a context: cancellation stops
// the sample pool within one token-grant (samples already running finish
// and their frames are delivered; no further sample starts) and the
// context's error is returned.
func StreamEnsembleCtx(ctx context.Context, ec EnsembleConfig, visit FrameVisitor) (*StreamResult, error) {
	ec, err := ec.Normalized()
	if err != nil {
		return nil, err
	}
	return streamRange(ctx, ec, 0, ec.M, visit)
}

// StreamSamples is StreamEnsemble restricted to samples lo ≤ s < hi of the
// ensemble. Sample seeding is by absolute index, so streaming an ensemble
// in several ranges produces exactly the frames StreamEnsemble would. An
// empty range is a no-op. The staged measurement pipeline uses this to run
// the alignment-reference sample to completion before fanning out the rest.
func StreamSamples(ec EnsembleConfig, lo, hi int, visit FrameVisitor) (*StreamResult, error) {
	return StreamSamplesCtx(context.Background(), ec, lo, hi, visit)
}

// StreamSamplesCtx is StreamSamples under a context; see StreamEnsembleCtx
// for the cancellation contract.
func StreamSamplesCtx(ctx context.Context, ec EnsembleConfig, lo, hi int, visit FrameVisitor) (*StreamResult, error) {
	ec, err := ec.Normalized()
	if err != nil {
		return nil, err
	}
	if lo < 0 || hi > ec.M || lo > hi {
		return nil, fmt.Errorf("sim: sample range [%d, %d) outside ensemble of %d", lo, hi, ec.M)
	}
	return streamRange(ctx, ec, lo, hi, visit)
}

// streamRange distributes samples [lo, hi) over a worker pool. ec must be
// normalized. On any error — from a sample, from the visitor, or from the
// context — the pool stops handing out work and the first error is
// returned (workpool.Run's drain contract: workers that exit early cannot
// strand the producer, the deadlock the pre-streaming RunEnsemble shipped).
func streamRange(ctx context.Context, ec EnsembleConfig, lo, hi int, visit FrameVisitor) (*StreamResult, error) {
	res := &StreamResult{
		Times: RecordedSteps(ec.Steps, ec.RecordEvery),
		Types: append([]int(nil), ec.Sim.Types...),
	}
	workers := ec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	err := workpool.RunSharedCtx(ctx, hi-lo, workers, ec.Tokens, func(_, i int) error {
		s := lo + i
		if err := streamSample(ec, s, visit); err != nil {
			return fmt.Errorf("sample %d: %w", s, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// streamSample runs one sample and emits its recorded frames. ec must be
// normalized.
func streamSample(ec EnsembleConfig, s int, visit FrameVisitor) error {
	sys, err := New(ec.Sim, rngx.Split(ec.Seed, uint64(s)))
	if err != nil {
		return err
	}
	idx := 0
	if err := visit(Frame{Sample: s, Index: 0, Step: 0, Pos: sys.PositionsRef()}); err != nil {
		return err
	}
	equilibrated := false
	for k := 1; k <= ec.Steps; k++ {
		sys.Step()
		if sys.InEquilibrium() {
			equilibrated = true
		}
		if k%ec.RecordEvery == 0 || k == ec.Steps {
			idx++
			f := Frame{Sample: s, Index: idx, Step: sys.Time(), Pos: sys.PositionsRef()}
			if k == ec.Steps {
				f.Final = true
				f.Equilibrated = equilibrated
			}
			if err := visit(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// Collector is the opt-in full-trajectory consumer for StreamEnsemble: it
// copies every streamed frame into an Ensemble, reproducing exactly what
// RunEnsemble returns. Visit is safe for concurrent use (distinct samples
// write distinct trajectories).
type Collector struct {
	ens *Ensemble
}

// NewCollector pre-allocates an Ensemble for the (normalized) config.
func NewCollector(ec EnsembleConfig) (*Collector, error) {
	ec, err := ec.Normalized()
	if err != nil {
		return nil, err
	}
	times := RecordedSteps(ec.Steps, ec.RecordEvery)
	ens := &Ensemble{
		Cfg:          ec,
		Types:        append([]int(nil), ec.Sim.Types...),
		Trajs:        make([]Trajectory, ec.M),
		Equilibrated: make([]bool, ec.M),
	}
	for s := range ens.Trajs {
		ens.Trajs[s] = Trajectory{
			Times:  times, // shared across samples, as documented on Ensemble
			Frames: make([][]vec.Vec2, len(times)),
		}
	}
	return &Collector{ens: ens}, nil
}

// Visit copies one streamed frame into the ensemble.
func (c *Collector) Visit(f Frame) error {
	c.ens.Trajs[f.Sample].Frames[f.Index] = append([]vec.Vec2(nil), f.Pos...)
	if f.Final {
		c.ens.Equilibrated[f.Sample] = f.Equilibrated
	}
	return nil
}

// Ensemble returns the collected ensemble. Call it only after the stream
// has completed.
func (c *Collector) Ensemble() *Ensemble { return c.ens }
