package sim

import (
	"math"
	"testing"

	"repro/internal/forces"
	"repro/internal/rngx"
	"repro/internal/vec"
)

func shardedConfig(n, workers int, cutoff float64) Config {
	return Config{
		N:       n,
		Force:   forces.MustF1(forces.ConstantMatrix(3, 1), forces.ConstantMatrix(3, 2)),
		Cutoff:  cutoff,
		Workers: workers,
	}
}

// runTrajectory advances a fresh system from a fixed seed and returns the
// positions after each step.
func runTrajectory(t *testing.T, cfg Config, seed uint64, steps int) [][]vec.Vec2 {
	t.Helper()
	sys, err := New(cfg, rngx.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]vec.Vec2, 0, steps)
	for k := 0; k < steps; k++ {
		sys.Step()
		out = append(out, sys.Positions())
	}
	return out
}

// Sharded accumulation must be bit-identical for every worker count: the
// serial sharded run (Workers=1) and any parallel run see exactly the same
// per-particle accumulation order.
func TestShardedTrajectoriesBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, cutoff := range []float64{2.5, math.Inf(1)} {
		serial := runTrajectory(t, shardedConfig(70, 1, cutoff), 99, 120)
		for _, workers := range []int{2, 3, 8} {
			parallel := runTrajectory(t, shardedConfig(70, workers, cutoff), 99, 120)
			for step := range serial {
				for i := range serial[step] {
					if serial[step][i] != parallel[step][i] {
						t.Fatalf("cutoff=%v workers=%d step %d particle %d: serial %v, parallel %v",
							cutoff, workers, step, i, serial[step][i], parallel[step][i])
					}
				}
			}
		}
	}
}

// The sharded mode evaluates each pair twice instead of exploiting Newton's
// third law, so it matches the legacy pair sweep only up to rounding; the
// physics must agree to high precision on every path combination.
func TestShardedMatchesLegacyForces(t *testing.T) {
	rng := rngx.New(11)
	for _, tc := range []struct {
		name   string
		spread float64
		cutoff float64
	}{
		{"brute", 4, math.Inf(1)},
		{"grid", 30, 2},
	} {
		cfg := shardedConfig(64, 0, tc.cutoff).WithDefaults()
		pos := make([]vec.Vec2, cfg.N)
		for i := range pos {
			x, y := rng.UniformDisc(tc.spread)
			pos[i] = vec.Vec2{X: x, Y: y}
		}
		legacy, err := NewFromPositions(cfg, pos, rngx.New(1))
		if err != nil {
			t.Fatal(err)
		}
		legacy.computeForces()

		cfg.Workers = 4
		sharded, err := NewFromPositions(cfg, pos, rngx.New(1))
		if err != nil {
			t.Fatal(err)
		}
		sharded.computeForces()

		for i := range legacy.force {
			if d := legacy.force[i].Dist(sharded.force[i]); d > 1e-9 {
				t.Fatalf("%s particle %d: legacy %v, sharded %v (Δ=%v)",
					tc.name, i, legacy.force[i], sharded.force[i], d)
			}
		}
	}
}

// Newton's third law must hold bit-exactly in sharded mode so the centroid
// stays a motion invariant of the noise-free dynamics (cf.
// TestCentroidConservedWithoutNoise for the legacy path).
func TestShardedCentroidConservedWithoutNoise(t *testing.T) {
	cfg := Config{
		N:             12,
		Force:         forces.MustF1(forces.ConstantMatrix(3, 1.5), forces.RandomMatrix(3, 1, 4, rngx.New(5))),
		Cutoff:        8,
		NoiseVariance: -1,
		Workers:       3,
	}
	sys, err := New(cfg, rngx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	before := vec.Centroid(sys.Positions())
	sys.Run(200)
	after := vec.Centroid(sys.Positions())
	if before.Dist(after) > 1e-9 {
		t.Fatalf("centroid drifted by %v", before.Dist(after))
	}
}

// newSpreadSystem builds a system whose configuration keeps the dense-grid
// strategy selected (spread ≫ 3·rc, n ≥ 32).
func newSpreadSystem(t *testing.T, workers int) *System {
	t.Helper()
	cfg := shardedConfig(128, workers, 2).WithDefaults()
	rng := rngx.New(8)
	pos := make([]vec.Vec2, cfg.N)
	for i := range pos {
		x, y := rng.UniformDisc(40)
		pos[i] = vec.Vec2{X: x, Y: y}
	}
	sys, err := NewFromPositions(cfg, pos, rngx.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if strat, _, _ := sys.strategy(); strat != nbrDense {
		t.Fatal("test setup: expected the dense-grid strategy")
	}
	return sys
}

// Steady-state Step on the dense-grid path must not allocate: the grid and
// all scratch buffers are recycled. Covers both the legacy serial sweep and
// the inline sharded mode.
func TestStepSteadyStateAllocationFree(t *testing.T) {
	for _, workers := range []int{0, 1} {
		sys := newSpreadSystem(t, workers)
		sys.Run(3) // warm up grid and scratch buffers
		allocs := testing.AllocsPerRun(30, sys.Step)
		if allocs != 0 {
			t.Fatalf("Workers=%d: steady-state Step allocated %.1f times per run, want 0",
				workers, allocs)
		}
	}
}

// Ensemble runs must be bit-identical whether the per-step force work is
// serial or fanned out, and whatever the sample-level worker count — the
// two parallelism levels compose without breaking reproducibility.
func TestEnsembleDeterministicAcrossWorkerLevels(t *testing.T) {
	base := EnsembleConfig{
		Sim:         shardedConfig(24, 1, 5),
		M:           6,
		Steps:       40,
		RecordEvery: 10,
		Seed:        2012,
	}
	ref, err := RunEnsemble(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ simWorkers, ensWorkers int }{{1, 1}, {4, 1}, {1, 4}, {2, 3}} {
		ec := base
		ec.Sim.Workers = tc.simWorkers
		ec.Workers = tc.ensWorkers
		got, err := RunEnsemble(ec)
		if err != nil {
			t.Fatal(err)
		}
		for s := range ref.Trajs {
			for f := range ref.Trajs[s].Frames {
				for i := range ref.Trajs[s].Frames[f] {
					if ref.Trajs[s].Frames[f][i] != got.Trajs[s].Frames[f][i] {
						t.Fatalf("Sim.Workers=%d Workers=%d: sample %d frame %d particle %d diverged",
							tc.simWorkers, tc.ensWorkers, s, f, i)
					}
				}
			}
		}
	}
}

func TestValidateRejectsNegativeWorkers(t *testing.T) {
	cfg := shardedConfig(8, -1, 5).WithDefaults()
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Workers should fail validation")
	}
}
