package sim

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/forces"
	"repro/internal/vec"
)

func streamTestConfig(m, steps, every, workers int) EnsembleConfig {
	return EnsembleConfig{
		Sim: Config{
			N:     8,
			Types: TypesRoundRobin(8, 2),
			Force: forces.MustF1(forces.ConstantMatrix(2, 1),
				forces.MustMatrix([][]float64{{1.5, 3.0}, {3.0, 2.0}})),
			Cutoff: 6,
		},
		M:           m,
		Steps:       steps,
		RecordEvery: every,
		Seed:        11,
		Workers:     workers,
	}
}

func TestRecordedSteps(t *testing.T) {
	cases := []struct {
		steps, every int
		want         []int
	}{
		{30, 10, []int{0, 10, 20, 30}},
		{30, 15, []int{0, 15, 30}},
		{7, 3, []int{0, 3, 6, 7}}, // final step recorded additionally
		{5, 0, []int{0, 1, 2, 3, 4, 5}},
		{4, 100, []int{0, 4}},
		{1, 1, []int{0, 1}},
	}
	for _, c := range cases {
		if got := RecordedSteps(c.steps, c.every); !reflect.DeepEqual(got, c.want) {
			t.Errorf("RecordedSteps(%d, %d) = %v, want %v", c.steps, c.every, got, c.want)
		}
	}
}

// collectFrames streams the ensemble and snapshots every frame into a
// deterministic [sample][index] layout, so runs with different worker
// counts can be compared.
func collectFrames(t *testing.T, ec EnsembleConfig) ([][][]vec.Vec2, *StreamResult) {
	t.Helper()
	times := RecordedSteps(ec.Steps, ec.RecordEvery)
	frames := make([][][]vec.Vec2, ec.M)
	for s := range frames {
		frames[s] = make([][]vec.Vec2, len(times))
	}
	var mu sync.Mutex
	res, err := StreamEnsemble(ec, func(f Frame) error {
		mu.Lock()
		defer mu.Unlock()
		if frames[f.Sample][f.Index] != nil {
			return fmt.Errorf("frame (%d, %d) delivered twice", f.Sample, f.Index)
		}
		frames[f.Sample][f.Index] = append([]vec.Vec2(nil), f.Pos...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return frames, res
}

func TestStreamEnsembleMatchesRunEnsemble(t *testing.T) {
	ec := streamTestConfig(6, 20, 7, 2)
	ens, err := RunEnsemble(ec)
	if err != nil {
		t.Fatal(err)
	}
	frames, res := collectFrames(t, ec)
	if !reflect.DeepEqual(res.Times, ens.Times()) {
		t.Fatalf("times %v vs %v", res.Times, ens.Times())
	}
	for s := range frames {
		if !reflect.DeepEqual(frames[s], ens.Trajs[s].Frames) {
			t.Fatalf("sample %d frames differ between stream and batch", s)
		}
	}
}

func TestStreamEnsembleWorkerCountInvariance(t *testing.T) {
	ref, _ := collectFrames(t, streamTestConfig(7, 15, 5, 1))
	for _, workers := range []int{2, 3, 7, 16} {
		got, _ := collectFrames(t, streamTestConfig(7, 15, 5, workers))
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d changed the streamed frames", workers)
		}
	}
}

func TestStreamSamplesRangesComposeToFullStream(t *testing.T) {
	ec := streamTestConfig(5, 12, 4, 2)
	full, _ := collectFrames(t, ec)

	times := RecordedSteps(ec.Steps, ec.RecordEvery)
	split := make([][][]vec.Vec2, ec.M)
	for s := range split {
		split[s] = make([][]vec.Vec2, len(times))
	}
	var mu sync.Mutex
	visit := func(f Frame) error {
		mu.Lock()
		defer mu.Unlock()
		split[f.Sample][f.Index] = append([]vec.Vec2(nil), f.Pos...)
		return nil
	}
	for _, r := range [][2]int{{0, 1}, {1, 3}, {3, 3}, {3, 5}} {
		if _, err := StreamSamples(ec, r[0], r[1], visit); err != nil {
			t.Fatalf("range %v: %v", r, err)
		}
	}
	if !reflect.DeepEqual(split, full) {
		t.Fatal("ranged streaming differs from full streaming")
	}
}

func TestStreamSamplesRejectsBadRange(t *testing.T) {
	ec := streamTestConfig(3, 5, 5, 1)
	noop := func(Frame) error { return nil }
	for _, r := range [][2]int{{-1, 2}, {0, 4}, {2, 1}} {
		if _, err := StreamSamples(ec, r[0], r[1], noop); err == nil {
			t.Errorf("range %v accepted", r)
		}
	}
}

func TestStreamFrameMetadata(t *testing.T) {
	ec := streamTestConfig(1, 10, 4, 1)
	wantSteps := []int{0, 4, 8, 10}
	var gotSteps []int
	finals := 0
	_, err := StreamEnsemble(ec, func(f Frame) error {
		if f.Sample != 0 {
			t.Errorf("sample %d in single-sample stream", f.Sample)
		}
		if f.Index != len(gotSteps) {
			t.Errorf("index %d out of order", f.Index)
		}
		gotSteps = append(gotSteps, f.Step)
		if f.Final {
			finals++
			if f.Step != ec.Steps {
				t.Errorf("final frame at step %d, want %d", f.Step, ec.Steps)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSteps, wantSteps) {
		t.Fatalf("steps %v, want %v", gotSteps, wantSteps)
	}
	if finals != 1 {
		t.Fatalf("%d final frames", finals)
	}
}

// TestStreamEnsembleVisitorErrorNoDeadlock is the regression test for the
// worker-pool deadlock of the pre-streaming RunEnsemble: a worker that hit
// an error returned, and once every worker had exited the producer blocked
// forever on an unbuffered send. The streaming runner's producer selects on
// a done channel instead, so an early error must drain promptly.
func TestStreamEnsembleVisitorErrorNoDeadlock(t *testing.T) {
	boom := errors.New("boom")
	// Many more samples than workers, and the failure on an early sample:
	// under the old dispatch this configuration deadlocked.
	ec := streamTestConfig(64, 3, 3, 2)
	donec := make(chan error, 1)
	go func() {
		_, err := StreamEnsemble(ec, func(f Frame) error {
			if f.Sample == 1 {
				return boom
			}
			return nil
		})
		donec <- err
	}()
	select {
	case err := <-donec:
		if !errors.Is(err, boom) {
			t.Fatalf("error = %v, want %v", err, boom)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream deadlocked after visitor error")
	}
}

// TestStreamEnsembleAllWorkersFailNoDeadlock drives every worker into an
// error at once — the exact shape of the original bug, where all workers
// exiting left nobody to receive the producer's sends.
func TestStreamEnsembleAllWorkersFailNoDeadlock(t *testing.T) {
	ec := streamTestConfig(64, 3, 3, 4)
	donec := make(chan error, 1)
	go func() {
		_, err := StreamEnsemble(ec, func(Frame) error { return errors.New("fail all") })
		donec <- err
	}()
	select {
	case err := <-donec:
		if err == nil {
			t.Fatal("no error reported")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream deadlocked when all workers failed")
	}
}

func TestCollectorReproducesRunEnsemble(t *testing.T) {
	ec := streamTestConfig(4, 9, 2, 3)
	ens, err := RunEnsemble(ec)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(ec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StreamEnsemble(ec, col.Visit); err != nil {
		t.Fatal(err)
	}
	got := col.Ensemble()
	if !reflect.DeepEqual(got.Types, ens.Types) ||
		!reflect.DeepEqual(got.Equilibrated, ens.Equilibrated) {
		t.Fatal("collector metadata differs from RunEnsemble")
	}
	for s := range ens.Trajs {
		if !reflect.DeepEqual(got.Trajs[s].Times, ens.Trajs[s].Times) ||
			!reflect.DeepEqual(got.Trajs[s].Frames, ens.Trajs[s].Frames) {
			t.Fatalf("collector trajectory %d differs from RunEnsemble", s)
		}
	}
}
