// Package sim implements the interacting particle model of Sec. 4.1/5.1 of
// the paper: n typed point particles in R² with overdamped dynamics
//
//	ż_i = Σ_{j ∈ N_rc(i)} −F_αβ(‖Δz_ij‖₂)·Δz_ij + w,   w ~ N(0, 0.05)
//
// integrated with the Euler–Maruyama scheme, plus the ensemble machinery
// (m independent runs per experiment) and the equilibrium / limit-cycle
// detectors described in Secs. 4.1 and 6.
package sim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/forces"
	"repro/internal/rngx"
	"repro/internal/spatial"
	"repro/internal/vec"
)

// Default parameter values. The paper fixes the noise (w ~ N(0, 0.05)) and
// the initial condition (uniform on a disc) but leaves the integrator step
// unspecified; Dt = 0.1 reproduces the paper's "organisation over tens to
// hundreds of steps" time scale for k_αβ ∈ [1, 10] (see DESIGN.md).
const (
	DefaultDt            = 0.1
	DefaultNoiseVariance = 0.05
	DefaultInitRadius    = 5.0
	// DefaultEquilibriumThresholdPerParticle scales the equilibrium
	// criterion with the collective size: the noise keeps each particle
	// jittering in its local potential well, so the net deterministic
	// force per particle never vanishes exactly; ~0.5 per particle is
	// comfortably above that noise floor and far below the organising
	// forces.
	DefaultEquilibriumThresholdPerParticle = 0.5
	DefaultEquilibriumWindow               = 10
)

// Config specifies a single simulation run. The zero value is not runnable;
// use WithDefaults to fill unset numeric fields and Validate to check the
// result.
type Config struct {
	// N is the number of particles.
	N int
	// Types assigns each particle a type in [0, Force.Types()). If nil,
	// types are assigned round-robin over Force.Types().
	Types []int
	// Force is the interaction law (Eq. 7 or Eq. 8).
	Force forces.Scaling
	// Cutoff is the interaction radius rc; math.Inf(1) enables the
	// unbounded-interaction experiments (rc = ∞, Sec. 6.1). Zero is
	// replaced by +Inf by WithDefaults.
	Cutoff float64
	// Dt is the Euler–Maruyama step size.
	Dt float64
	// NoiseVariance is the variance of the additive Gaussian noise per
	// coordinate per unit time (the paper's N(0, 0.05)). Set to a
	// negative value for a noise-free simulation; zero means "default".
	NoiseVariance float64
	// InitRadius is the radius of the disc on which particles are
	// initially distributed uniformly (Sec. 5.1).
	InitRadius float64
	// EquilibriumThreshold: the collective is in equilibrium when the
	// sum over particles of the L2 norm of the net (deterministic) force
	// stays below this for EquilibriumWindow consecutive steps
	// (Sec. 4.1).
	EquilibriumThreshold float64
	// EquilibriumWindow is the number of consecutive sub-threshold steps
	// required.
	EquilibriumWindow int
	// Workers selects the force-accumulation mode. 0 (the default) is the
	// serial unordered-pair sweep, each interaction evaluated once.
	// Workers ≥ 1 switches to per-particle sharding: every particle's
	// force is accumulated independently over its full neighbourhood in
	// canonical orientation, so the result is bit-identical for every
	// worker count — Workers=1 runs the shards inline, Workers=k fans
	// them out over k goroutines. The sharded mode costs two force
	// evaluations per pair but parallelises with no synchronisation on
	// the force array.
	Workers int //sopslint:nohash force-accumulation workers within a mode are bit-identical; mode changes bump the checkpoint version instead
}

// WithDefaults returns a copy of c with unset (zero) numeric fields replaced
// by the package defaults and nil Types replaced by a round-robin
// assignment.
func (c Config) WithDefaults() Config {
	if c.Cutoff == 0 {
		c.Cutoff = math.Inf(1)
	}
	if c.Dt == 0 {
		c.Dt = DefaultDt
	}
	if c.NoiseVariance == 0 {
		c.NoiseVariance = DefaultNoiseVariance
	}
	if c.NoiseVariance < 0 {
		c.NoiseVariance = 0
	}
	if c.InitRadius == 0 {
		c.InitRadius = DefaultInitRadius
	}
	if c.EquilibriumThreshold == 0 {
		c.EquilibriumThreshold = DefaultEquilibriumThresholdPerParticle * float64(c.N)
	}
	if c.EquilibriumWindow == 0 {
		c.EquilibriumWindow = DefaultEquilibriumWindow
	}
	if c.Types == nil && c.Force != nil {
		c.Types = TypesRoundRobin(c.N, c.Force.Types())
	}
	return c
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	if c.N <= 0 {
		return errors.New("sim: N must be positive")
	}
	if c.Force == nil {
		return errors.New("sim: Force must be set")
	}
	if len(c.Types) != c.N {
		return fmt.Errorf("sim: len(Types)=%d, want N=%d", len(c.Types), c.N)
	}
	l := c.Force.Types()
	for i, t := range c.Types {
		if t < 0 || t >= l {
			return fmt.Errorf("sim: particle %d has type %d, want [0,%d)", i, t, l)
		}
	}
	if !(c.Dt > 0) {
		return errors.New("sim: Dt must be positive")
	}
	if c.Cutoff <= 0 {
		return errors.New("sim: Cutoff must be positive (use +Inf for unbounded)")
	}
	if c.InitRadius <= 0 {
		return errors.New("sim: InitRadius must be positive")
	}
	if c.NoiseVariance < 0 {
		return errors.New("sim: NoiseVariance must be non-negative after WithDefaults")
	}
	if c.Workers < 0 {
		return errors.New("sim: Workers must be non-negative")
	}
	return nil
}

// MaxStableDt estimates the largest Euler–Maruyama step that keeps the
// overdamped spring dynamics of Eq. (6) numerically stable: the stiffest
// mode of a particle coupled to q neighbours by springs of strength k has
// Jacobian eigenvalue ≈ q·k, and explicit Euler requires dt < 2/(q·k).
// A safety factor of 4 is applied. Use it when raising k_αβ or the density
// beyond the defaults (the default Dt = 0.1 is sized for k ≈ 1 and ~10
// neighbours, the regime of the paper's sweep experiments).
func MaxStableDt(maxK float64, maxNeighbors int) float64 {
	if maxK <= 0 || maxNeighbors <= 0 {
		return DefaultDt
	}
	return 0.5 / (maxK * float64(maxNeighbors))
}

// TypesRoundRobin assigns n particles to l types cyclically: 0,1,…,l−1,0,…
func TypesRoundRobin(n, l int) []int {
	ts := make([]int, n)
	for i := range ts {
		ts[i] = i % l
	}
	return ts
}

// TypesBlocks assigns n particles to l types in contiguous blocks of
// near-equal size (the first n mod l blocks get one extra particle).
func TypesBlocks(n, l int) []int {
	ts := make([]int, n)
	base, extra := n/l, n%l
	i := 0
	for t := 0; t < l; t++ {
		size := base
		if t < extra {
			size++
		}
		for k := 0; k < size; k++ {
			ts[i] = t
			i++
		}
	}
	return ts
}

// NoiseFunc supplies the additive noise displacement for a particle at a
// step; it must already include the √dt·σ Euler–Maruyama scaling. It exists
// so the invariance property tests (Eq. 10) can replay a transformed noise
// stream; normal use never sets it.
type NoiseFunc func(step, particle int) vec.Vec2

// System is a single running simulation.
type System struct {
	cfg      Config
	pos      []vec.Vec2
	force    []vec.Vec2 // scratch: net deterministic force per particle
	rng      rngx.Source
	noise    NoiseFunc
	noiseAmp float64 // √(dt·σ²)
	step     int
	eqStreak int
	lastNet  float64 // Σ_i ‖force_i‖ of the most recent step

	// Neighbour-search scratch state, recycled across steps so the
	// steady-state grid path performs zero heap allocations.
	grid *spatial.DenseGrid // persistent cell list, rebuilt in place
	nbr  []int32            // serial-path neighbour buffer
	wnbr [][]int32          // per-worker neighbour buffers (sharded mode)
}

// New creates a system with particles placed uniformly at random on the
// initial disc, using rng both for the placement and for the dynamical
// noise. The config is completed with WithDefaults and validated.
func New(cfg Config, rng rngx.Source) (*System, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pos := make([]vec.Vec2, cfg.N)
	for i := range pos {
		x, y := rng.UniformDisc(cfg.InitRadius)
		pos[i] = vec.Vec2{X: x, Y: y}
	}
	return newFrom(cfg, pos, rng)
}

// NewFromPositions creates a system with explicit initial positions (copied).
func NewFromPositions(cfg Config, pos []vec.Vec2, rng rngx.Source) (*System, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(pos) != cfg.N {
		return nil, fmt.Errorf("sim: %d positions for N=%d", len(pos), cfg.N)
	}
	return newFrom(cfg, append([]vec.Vec2(nil), pos...), rng)
}

func newFrom(cfg Config, pos []vec.Vec2, rng rngx.Source) (*System, error) {
	s := &System{
		cfg:      cfg,
		pos:      pos,
		force:    make([]vec.Vec2, cfg.N),
		rng:      rng,
		noiseAmp: math.Sqrt(cfg.Dt * cfg.NoiseVariance),
		lastNet:  math.NaN(),
	}
	return s, nil
}

// SetNoiseFunc overrides the Gaussian noise source. Passing nil restores the
// default. The replacement receives the step index and particle index and
// must return the full noise displacement (including any √dt scaling).
func (s *System) SetNoiseFunc(fn NoiseFunc) { s.noise = fn }

// Config returns the completed configuration.
func (s *System) Config() Config { return s.cfg }

// Step advances the system by one Euler–Maruyama step.
//
// Neighbour search strategy: when the cut-off radius is finite and small
// relative to the collective's extent a cell-list grid gives O(n) total
// work; otherwise (rc = ∞ or rc spanning the whole collective) an O(n²)
// pair sweep is cheaper in practice. The choice is re-made every step from
// the current bounding box. All paths are exact: the two grid backends
// visit neighbours in the same order and so are interchangeable
// bit-for-bit, while the brute sweep accumulates in a different order and
// agrees with them up to floating-point rounding (the tests verify
// agreement to 1e-9). The grid is persistent and rebuilt in place, so in
// steady state the grid path allocates nothing.
func (s *System) Step() {
	s.computeForces()
	dt := s.cfg.Dt
	for i := range s.pos {
		s.pos[i] = s.pos[i].Add(s.force[i].Scale(dt)).Add(s.noiseAt(i))
	}
	s.step++
	if s.lastNet < s.cfg.EquilibriumThreshold {
		s.eqStreak++
	} else {
		s.eqStreak = 0
	}
}

func (s *System) noiseAt(i int) vec.Vec2 {
	if s.noise != nil {
		return s.noise(s.step, i)
	}
	if s.noiseAmp == 0 {
		return vec.Vec2{}
	}
	// Draw order (x then y, particles in index order) is part of the
	// reproducibility contract.
	return vec.Vec2{
		X: s.rng.NormFloat64() * s.noiseAmp,
		Y: s.rng.NormFloat64() * s.noiseAmp,
	}
}

// nbrStrategy is the per-step neighbour-search choice.
type nbrStrategy uint8

const (
	nbrBrute  nbrStrategy = iota // O(n²) pair sweep
	nbrDense                     // flat CSR cell list, allocation-free rebuild
	nbrSparse                    // map-backed cell list, O(n) memory at any spread
)

// Dense-grid memory is O(cells); beyond this many cells per particle the
// sparse map grid wins.
const (
	maxDenseCellsPerPoint = 64
	maxDenseCellsFloor    = 4096
)

// strategy decides the neighbour search for the current frame and returns
// the frame's bounding box alongside, so the dense rebuild can reuse it
// instead of scanning the positions a second time.
func (s *System) strategy() (strat nbrStrategy, min, max vec.Vec2) {
	rc := s.cfg.Cutoff
	if math.IsInf(rc, 1) {
		return nbrBrute, min, max
	}
	min, max = vec.BoundingBox(s.pos)
	ex, ey := max.X-min.X, max.Y-min.Y
	// A grid pays off when the 3×3 cell window covers clearly less than
	// the whole collective.
	if !(math.Max(ex, ey) > 3*rc) || len(s.pos) < 32 {
		return nbrBrute, min, max
	}
	if (ex/rc+1)*(ey/rc+1) > float64(maxDenseCellsPerPoint*len(s.pos)+maxDenseCellsFloor) {
		return nbrSparse, min, max
	}
	return nbrDense, min, max
}

// nbrSource is the common query surface of the two grid backends.
type nbrSource interface {
	AppendNeighbors(dst []int32, i int, radius float64) []int32
}

func (s *System) computeForces() {
	for i := range s.force {
		s.force[i] = vec.Vec2{}
	}
	var src nbrSource // nil selects the O(n²) sweep
	strat, min, max := s.strategy()
	switch strat {
	case nbrDense:
		if s.grid == nil {
			s.grid = spatial.NewDenseGrid(s.cfg.Cutoff)
		}
		s.grid.RebuildBounded(s.pos, min, max)
		src = s.grid
	case nbrSparse:
		src = spatial.NewGrid(s.pos, s.cfg.Cutoff)
	}
	if s.cfg.Workers > 0 {
		s.forcesSharded(src)
	} else if src != nil {
		s.forcesScan(src)
	} else {
		s.forcesBrute()
	}
	var net mathKahan
	for i := range s.force {
		net.add(s.force[i].Norm())
	}
	s.lastNet = net.sum()
}

// pairForce accumulates the contribution of the (i,j) interaction into both
// particles' force buffers. The interaction is evaluated once per unordered
// pair; by Newton-pair symmetry of Eq. (6) with symmetric matrices, the
// contribution to j is the exact negation of the contribution to i.
func (s *System) pairForce(i, j int) {
	dz := s.pos[i].Sub(s.pos[j]) // Δz_ij = z_i − z_j
	d2 := dz.Norm2()
	if d2 == 0 {
		// Coincident particles: direction undefined; Eq. (6)'s
		// −F·Δz is the zero vector here for both F¹ (k·|x−r| → k·r
		// but direction Δz/‖Δz‖ undefined) and F². Skip; noise will
		// separate them next step.
		return
	}
	d := math.Sqrt(d2)
	f := s.cfg.Force.Eval(s.cfg.Types[i], s.cfg.Types[j], d)
	contrib := dz.Scale(-f)
	s.force[i] = s.force[i].Add(contrib)
	s.force[j] = s.force[j].Sub(contrib)
}

func (s *System) forcesBrute() {
	rc := s.cfg.Cutoff
	inf := math.IsInf(rc, 1)
	rc2 := rc * rc
	for i := 0; i < len(s.pos); i++ {
		for j := i + 1; j < len(s.pos); j++ {
			if !inf && s.pos[i].Dist2(s.pos[j]) > rc2 {
				continue
			}
			s.pairForce(i, j)
		}
	}
}

// forcesScan is the serial grid path: each unordered pair is evaluated once,
// discovered from the lower-index particle's neighbour list. The scratch
// buffer s.nbr is recycled across particles and steps.
func (s *System) forcesScan(src nbrSource) {
	rc := s.cfg.Cutoff
	for i := range s.pos {
		s.nbr = src.AppendNeighbors(s.nbr[:0], i, rc)
		for _, j := range s.nbr {
			if int(j) > i { // each unordered pair once
				s.pairForce(i, int(j))
			}
		}
	}
}

// Run advances the system by the given number of steps.
func (s *System) Run(steps int) {
	for k := 0; k < steps; k++ {
		s.Step()
	}
}

// RunUntilEquilibrium steps the system until the equilibrium criterion of
// Sec. 4.1 holds (net deterministic force below threshold for
// EquilibriumWindow consecutive steps) or maxSteps have been taken. It
// returns the number of steps taken and whether equilibrium was reached.
func (s *System) RunUntilEquilibrium(maxSteps int) (steps int, equilibrium bool) {
	for k := 0; k < maxSteps; k++ {
		s.Step()
		if s.eqStreak >= s.cfg.EquilibriumWindow {
			return k + 1, true
		}
	}
	return maxSteps, false
}

// Positions returns a copy of the current particle positions.
func (s *System) Positions() []vec.Vec2 {
	return append([]vec.Vec2(nil), s.pos...)
}

// PositionsRef returns the live position slice; callers must not modify it.
// It exists for the hot paths of the ensemble recorder.
func (s *System) PositionsRef() []vec.Vec2 { return s.pos }

// Types returns the particle type assignment (shared, do not modify).
func (s *System) Types() []int { return s.cfg.Types }

// Time returns the number of steps taken so far.
func (s *System) Time() int { return s.step }

// NetForce returns Σ_i ‖F_i‖₂ of the most recent step, the quantity the
// equilibrium criterion thresholds. NaN before the first step.
func (s *System) NetForce() float64 { return s.lastNet }

// InEquilibrium reports whether the equilibrium criterion currently holds.
func (s *System) InEquilibrium() bool { return s.eqStreak >= s.cfg.EquilibriumWindow }

// mathKahan is a minimal local compensated accumulator (avoids importing
// mathx into this hot path's inner loop via interface indirection).
type mathKahan struct{ s, c float64 }

func (k *mathKahan) add(x float64) {
	t := k.s + x
	if math.Abs(k.s) >= math.Abs(x) {
		k.c += (k.s - t) + x
	} else {
		k.c += (x - t) + k.s
	}
	k.s = t
}
func (k *mathKahan) sum() float64 { return k.s + k.c }
