package sim

import (
	"math"
	"sync"

	"repro/internal/vec"
)

// Sharded force accumulation (Config.Workers ≥ 1).
//
// The particle range is split into contiguous shards, one per worker, and
// each worker computes the complete force on its own particles by scanning
// their full neighbourhoods. Workers write disjoint entries of the shared
// force array, so no reduction or locking is needed, and each particle's
// accumulation order depends only on that particle's neighbour list — never
// on the shard layout. Together with the canonical pair orientation of
// oneSided this makes the trajectory bit-identical for every worker count,
// which the determinism regression tests assert.
//
// The price is two force evaluations per unordered pair instead of one
// (Newton's third law is no longer exploited across particles), which the
// parallel speed-up amortises from two workers up.

// forcesSharded accumulates forces over per-particle shards. src selects a
// grid backend; nil selects the cut-off-filtered full sweep.
func (s *System) forcesSharded(src nbrSource) {
	n := len(s.pos)
	w := s.cfg.Workers
	if w > n {
		w = n
	}
	for len(s.wnbr) < w {
		s.wnbr = append(s.wnbr, nil)
	}
	if w <= 1 {
		s.wnbr[0] = s.shardForces(src, s.wnbr[0], 0, n)
		return
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := k*n/w, (k+1)*n/w
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			s.wnbr[k] = s.shardForces(src, s.wnbr[k], lo, hi)
		}(k, lo, hi)
	}
	wg.Wait()
}

// shardForces computes force[i] for every i in [lo, hi), returning the
// (possibly grown) neighbour scratch buffer for reuse next step.
func (s *System) shardForces(src nbrSource, nbr []int32, lo, hi int) []int32 {
	rc := s.cfg.Cutoff
	rc2 := rc * rc
	inf := math.IsInf(rc, 1)
	for i := lo; i < hi; i++ {
		var acc vec.Vec2
		if src != nil {
			nbr = src.AppendNeighbors(nbr[:0], i, rc)
			for _, j := range nbr {
				acc = acc.Add(s.oneSided(i, int(j)))
			}
		} else {
			for j := range s.pos {
				if j == i {
					continue
				}
				if !inf && s.pos[i].Dist2(s.pos[j]) > rc2 {
					continue
				}
				acc = acc.Add(s.oneSided(i, j))
			}
		}
		s.force[i] = acc
	}
	return nbr
}

// oneSided returns the contribution of partner j to particle i's force.
// The pair is always evaluated in lower-index-first orientation, so
// oneSided(i, j) is the exact IEEE-754 negation of oneSided(j, i) — sign
// flips are exact — and Newton's third law holds bit-for-bit even though
// the two sides are computed independently, possibly on different workers.
func (s *System) oneSided(i, j int) vec.Vec2 {
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	dz := s.pos[lo].Sub(s.pos[hi]) // Δz = z_lo − z_hi
	d2 := dz.Norm2()
	if d2 == 0 {
		// Coincident particles: direction undefined, same convention as
		// pairForce.
		return vec.Vec2{}
	}
	d := math.Sqrt(d2)
	f := s.cfg.Force.Eval(s.cfg.Types[lo], s.cfg.Types[hi], d)
	contrib := dz.Scale(-f)
	if i == hi {
		return contrib.Neg()
	}
	return contrib
}
