package sim

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestCycleDetectorStationary(t *testing.T) {
	d := &CycleDetector{Tolerance: 1e-6}
	frame := []vec.Vec2{v2(0, 0), v2(1, 0), v2(0, 1)}
	for i := 0; i < 10; i++ {
		d.Observe(frame)
	}
	if p := d.Period(); p != 1 {
		t.Fatalf("stationary sequence: period = %d, want 1", p)
	}
}

func TestCycleDetectorPeriodThree(t *testing.T) {
	d := &CycleDetector{Tolerance: 1e-6}
	// Three distinct configurations cycling; relative geometry differs
	// so centring cannot collapse them.
	a := []vec.Vec2{v2(0, 0), v2(2, 0)}
	b := []vec.Vec2{v2(0, 0), v2(3, 0)}
	c := []vec.Vec2{v2(0, 0), v2(4, 0)}
	for i := 0; i < 4; i++ {
		d.Observe(a)
		d.Observe(b)
		d.Observe(c)
	}
	if p := d.Period(); p != 3 {
		t.Fatalf("period = %d, want 3", p)
	}
}

func TestCycleDetectorNoPeriod(t *testing.T) {
	d := &CycleDetector{Tolerance: 1e-9}
	for i := 0; i < 12; i++ {
		// Monotonically expanding pair: never recurrent.
		d.Observe([]vec.Vec2{v2(0, 0), v2(float64(i+1), 0)})
	}
	if p := d.Period(); p != 0 {
		t.Fatalf("aperiodic sequence: period = %d, want 0", p)
	}
}

func TestCycleDetectorToleratesNoise(t *testing.T) {
	d := &CycleDetector{Tolerance: 0.05}
	base := []vec.Vec2{v2(0, 0), v2(2, 0), v2(1, 1.5)}
	for i := 0; i < 8; i++ {
		jitter := 0.01 * math.Sin(float64(i))
		frame := []vec.Vec2{
			v2(jitter, 0),
			v2(2+jitter, jitter),
			v2(1, 1.5-jitter),
		}
		d.Observe(frame)
	}
	_ = base
	if p := d.Period(); p != 1 {
		t.Fatalf("noisy stationary sequence: period = %d, want 1", p)
	}
}

func TestCycleDetectorDriftInvariance(t *testing.T) {
	// A drifting but internally static configuration is period 1 after
	// centring.
	d := &CycleDetector{Tolerance: 1e-9}
	for i := 0; i < 6; i++ {
		shift := vec.Vec2{X: float64(i) * 10, Y: float64(i)}
		d.Observe([]vec.Vec2{shift, shift.Add(vec.Vec2{X: 2}), shift.Add(vec.Vec2{Y: 3})})
	}
	if p := d.Period(); p != 1 {
		t.Fatalf("drifting static sequence: period = %d, want 1", p)
	}
}

func TestCycleDetectorMaxPeriodBound(t *testing.T) {
	d := &CycleDetector{Tolerance: 1e-9, MaxPeriod: 2}
	a := []vec.Vec2{v2(0, 0), v2(2, 0)}
	b := []vec.Vec2{v2(0, 0), v2(3, 0)}
	c := []vec.Vec2{v2(0, 0), v2(4, 0)}
	for i := 0; i < 4; i++ {
		d.Observe(a)
		d.Observe(b)
		d.Observe(c)
	}
	if p := d.Period(); p != 0 {
		t.Fatalf("period 3 found despite MaxPeriod=2: got %d", p)
	}
}

func TestCycleDetectorReset(t *testing.T) {
	d := &CycleDetector{Tolerance: 1e-9}
	d.Observe([]vec.Vec2{v2(0, 0)})
	d.Observe([]vec.Vec2{v2(0, 0)})
	d.Reset()
	if d.Len() != 0 {
		t.Fatal("Reset did not clear history")
	}
	if p := d.Period(); p != 0 {
		t.Fatal("empty detector should report no period")
	}
}
