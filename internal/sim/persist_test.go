package sim

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/forces"
)

func roundTripEnsemble(t *testing.T, ec EnsembleConfig) (*Ensemble, *Ensemble) {
	t.Helper()
	orig, err := RunEnsemble(ec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEnsemble(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return orig, back
}

func TestEnsembleRoundTripF1(t *testing.T) {
	orig, back := roundTripEnsemble(t, ensembleConfig(4, 20, 10, 0))
	if back.Cfg.M != orig.Cfg.M || back.Cfg.Seed != orig.Cfg.Seed {
		t.Fatal("ensemble parameters lost")
	}
	for s := range orig.Trajs {
		for f := range orig.Trajs[s].Frames {
			if orig.Trajs[s].Times[f] != back.Trajs[s].Times[f] {
				t.Fatal("times lost")
			}
			for i := range orig.Trajs[s].Frames[f] {
				if orig.Trajs[s].Frames[f][i] != back.Trajs[s].Frames[f][i] {
					t.Fatal("frames lost")
				}
			}
		}
	}
	// The rebuilt force must evaluate identically.
	for _, x := range []float64{0.5, 1, 3} {
		if orig.Cfg.Sim.Force.Eval(0, 1, x) != back.Cfg.Sim.Force.Eval(0, 1, x) {
			t.Fatal("force lost through serialisation")
		}
	}
}

func TestEnsembleRoundTripF2AndInfiniteCutoff(t *testing.T) {
	ec := ensembleConfig(2, 10, 5, 0)
	ec.Sim.Force = forces.MustF2(
		forces.ConstantMatrix(2, 3),
		forces.ConstantMatrix(2, 1),
		forces.MustMatrix([][]float64{{2, 4}, {4, 6}}),
	)
	ec.Sim.Cutoff = math.Inf(1)
	orig, back := roundTripEnsemble(t, ec)
	if !math.IsInf(back.Cfg.Sim.Cutoff, 1) {
		t.Fatal("infinite cut-off lost")
	}
	if back.Cfg.Sim.Force.Name() != "F2" {
		t.Fatal("force family lost")
	}
	if orig.Cfg.Sim.Force.Eval(0, 1, 2.5) != back.Cfg.Sim.Force.Eval(0, 1, 2.5) {
		t.Fatal("F2 parameters lost")
	}
}

func TestEnsembleSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ens.gob")
	orig, err := RunEnsemble(ensembleConfig(3, 10, 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveEnsemble(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEnsemble(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Trajs) != len(orig.Trajs) {
		t.Fatal("trajectories lost")
	}
	// A loaded ensemble must be usable by downstream consumers.
	if frames := back.FramesAt(0); len(frames) != 3 {
		t.Fatal("FramesAt broken after load")
	}
}

func TestReadEnsembleRejectsGarbage(t *testing.T) {
	if _, err := ReadEnsemble(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestForceSpecRoundTrip(t *testing.T) {
	f1 := forces.MustF1(forces.ConstantMatrix(3, 2), forces.MustMatrix([][]float64{
		{1, 2, 3}, {2, 4, 5}, {3, 5, 6},
	}))
	spec, err := forces.ToSpec(f1)
	if err != nil {
		t.Fatal(err)
	}
	back, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if f1.Eval(a, b, 1.7) != back.Eval(a, b, 1.7) {
				t.Fatal("spec round trip changed F1")
			}
		}
	}
	if _, err := (forces.Spec{Family: "F9"}).Build(); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := (forces.Spec{Family: "F1", K: [][]float64{{1, 2}, {3, 4}}}).Build(); err == nil {
		t.Error("asymmetric spec accepted")
	}
}
