package sim

import (
	"testing"

	"repro/internal/forces"
)

func ensembleConfig(m, steps, every, workers int) EnsembleConfig {
	return EnsembleConfig{
		Sim: Config{
			N:      10,
			Force:  forces.MustF1(forces.ConstantMatrix(2, 1), forces.ConstantMatrix(2, 2)),
			Cutoff: 5,
		},
		M:           m,
		Steps:       steps,
		RecordEvery: every,
		Seed:        99,
		Workers:     workers,
	}
}

func TestEnsembleRecordingSchedule(t *testing.T) {
	ens, err := RunEnsemble(ensembleConfig(3, 50, 20, 0))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 20, 40, 50} // every 20 plus the final step
	times := ens.Times()
	if len(times) != len(want) {
		t.Fatalf("times = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestEnsembleFinalStepRecordedOnce(t *testing.T) {
	// Steps divisible by RecordEvery must not duplicate the final frame.
	ens, err := RunEnsemble(ensembleConfig(2, 40, 20, 0))
	if err != nil {
		t.Fatal(err)
	}
	times := ens.Times()
	want := []int{0, 20, 40}
	if len(times) != len(want) {
		t.Fatalf("times = %v, want %v", times, want)
	}
}

func TestEnsembleIndependentOfWorkerCount(t *testing.T) {
	// Bit-identical results for 1 worker and 8 workers: sample seeds are
	// positional, not scheduling-dependent.
	a, err := RunEnsemble(ensembleConfig(6, 30, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEnsemble(ensembleConfig(6, 30, 10, 8))
	if err != nil {
		t.Fatal(err)
	}
	for s := range a.Trajs {
		for f := range a.Trajs[s].Frames {
			for i := range a.Trajs[s].Frames[f] {
				if a.Trajs[s].Frames[f][i] != b.Trajs[s].Frames[f][i] {
					t.Fatalf("sample %d frame %d differs across worker counts", s, f)
				}
			}
		}
	}
}

func TestEnsembleSamplesDiffer(t *testing.T) {
	ens, err := RunEnsemble(ensembleConfig(2, 10, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	a := ens.Trajs[0].Frames[0]
	b := ens.Trajs[1].Frames[0]
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different samples got identical initial conditions")
	}
}

func TestEnsembleFramesAt(t *testing.T) {
	ens, err := RunEnsemble(ensembleConfig(4, 20, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	frames := ens.FramesAt(1)
	if len(frames) != 4 {
		t.Fatalf("FramesAt returned %d samples", len(frames))
	}
	for s := range frames {
		if len(frames[s]) != 10 {
			t.Fatalf("sample %d has %d particles", s, len(frames[s]))
		}
		if &frames[s][0] != &ens.Trajs[s].Frames[1][0] {
			t.Fatal("FramesAt should alias stored trajectories")
		}
	}
}

func TestEnsembleValidation(t *testing.T) {
	bad := ensembleConfig(0, 10, 1, 0)
	if _, err := RunEnsemble(bad); err == nil {
		t.Error("M=0 accepted")
	}
	bad = ensembleConfig(2, 0, 1, 0)
	if _, err := RunEnsemble(bad); err == nil {
		t.Error("Steps=0 accepted")
	}
	bad = ensembleConfig(2, 10, 1, 0)
	bad.Sim.N = 0
	if _, err := RunEnsemble(bad); err == nil {
		t.Error("invalid sim config accepted")
	}
}

func TestEnsembleTypesShared(t *testing.T) {
	ec := ensembleConfig(2, 10, 5, 0)
	ens, err := RunEnsemble(ec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Types) != 10 {
		t.Fatalf("ensemble types = %v", ens.Types)
	}
	for i, ty := range ens.Types {
		if ty != i%2 {
			t.Fatal("ensemble types not the round-robin default")
		}
	}
}
