package sim

import (
	"math"
	"testing"

	"repro/internal/forces"
	"repro/internal/rngx"
	"repro/internal/vec"
)

func pairConfig(k, r, rc float64) Config {
	return Config{
		N:             2,
		Force:         forces.MustF1(forces.ConstantMatrix(1, k), forces.ConstantMatrix(1, r)),
		Cutoff:        rc,
		NoiseVariance: -1, // noise-free
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{N: 10, Force: forces.MustF1(forces.ConstantMatrix(2, 1), forces.ConstantMatrix(2, 1))}
	c = c.WithDefaults()
	if !math.IsInf(c.Cutoff, 1) {
		t.Error("zero Cutoff should default to +Inf")
	}
	if c.Dt != DefaultDt || c.NoiseVariance != DefaultNoiseVariance {
		t.Error("numeric defaults not applied")
	}
	if len(c.Types) != 10 {
		t.Error("Types not defaulted")
	}
	if c.Types[0] != 0 || c.Types[1] != 1 || c.Types[2] != 0 {
		t.Error("default Types not round-robin")
	}
	if c.EquilibriumThreshold != DefaultEquilibriumThresholdPerParticle*10 {
		t.Error("equilibrium threshold should scale with N")
	}
}

func TestNegativeNoiseVarianceMeansZero(t *testing.T) {
	c := Config{N: 2, Force: forces.MustF1(forces.ConstantMatrix(1, 1), forces.ConstantMatrix(1, 1)), NoiseVariance: -1}
	if got := c.WithDefaults().NoiseVariance; got != 0 {
		t.Fatalf("NoiseVariance = %v, want 0", got)
	}
}

func TestValidateErrors(t *testing.T) {
	f := forces.MustF1(forces.ConstantMatrix(2, 1), forces.ConstantMatrix(2, 1))
	cases := []Config{
		{N: 0, Force: f},
		{N: 3, Force: nil},
		{N: 3, Force: f, Types: []int{0, 1}},           // wrong length
		{N: 2, Force: f, Types: []int{0, 5}},           // type out of range
		{N: 2, Force: f, Types: []int{0, -1}},          // negative type
		{N: 2, Force: f, Types: []int{0, 1}, Dt: -0.1}, // bad dt
	}
	for i, c := range cases {
		cc := c
		if cc.Dt == 0 {
			cc = cc.WithDefaults()
			cc.Types = c.Types // preserve the intentionally bad Types
			if c.Types == nil && c.N != 3 {
				cc.Types = nil
			}
		}
		if err := cc.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cc)
		}
	}
}

func TestTypesRoundRobin(t *testing.T) {
	got := TypesRoundRobin(7, 3)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TypesRoundRobin = %v", got)
		}
	}
}

func TestTypesBlocks(t *testing.T) {
	got := TypesBlocks(7, 3)
	want := []int{0, 0, 0, 1, 1, 2, 2} // 7 = 3+2+2
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TypesBlocks = %v", got)
		}
	}
}

func TestPairRelaxesToPreferredDistance(t *testing.T) {
	// Noise-free F1 pair: Eq. (6) is a linear spring toward r.
	r := 2.5
	cfg := pairConfig(1, r, math.Inf(1))
	sys, err := NewFromPositions(cfg, []vec.Vec2{v2(0, 0), v2(6, 0)}, rngx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(500)
	pos := sys.Positions()
	if d := pos[0].Dist(pos[1]); math.Abs(d-r) > 1e-6 {
		t.Fatalf("pair distance = %v, want %v", d, r)
	}
}

func TestPairBeyondCutoffDoesNotInteract(t *testing.T) {
	cfg := pairConfig(1, 2, 3)
	start := []vec.Vec2{v2(0, 0), v2(10, 0)}
	sys, err := NewFromPositions(cfg, start, rngx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(100)
	pos := sys.Positions()
	if pos[0] != start[0] || pos[1] != start[1] {
		t.Fatal("particles beyond rc moved without noise")
	}
}

func TestF2PairRepels(t *testing.T) {
	f := forces.MustF2(forces.ConstantMatrix(1, 2), forces.ConstantMatrix(1, 1), forces.ConstantMatrix(1, 5))
	cfg := Config{N: 2, Force: f, Cutoff: 10, NoiseVariance: -1}
	sys, err := NewFromPositions(cfg, []vec.Vec2{v2(0, 0), v2(1, 0)}, rngx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	d0 := 1.0
	sys.Run(50)
	pos := sys.Positions()
	if d := pos[0].Dist(pos[1]); d <= d0 {
		t.Fatalf("F2 (paper regime) pair should repel: %v -> %v", d0, d)
	}
}

func TestCentroidConservedWithoutNoise(t *testing.T) {
	// Symmetric interactions ⇒ Σ forces = 0 ⇒ the centroid is a motion
	// invariant of the noise-free dynamics.
	cfg := Config{
		N:             12,
		Force:         forces.MustF1(forces.ConstantMatrix(3, 1.5), forces.RandomMatrix(3, 1, 4, rngx.New(5))),
		Cutoff:        8,
		NoiseVariance: -1,
	}
	sys, err := New(cfg, rngx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	before := vec.Centroid(sys.Positions())
	sys.Run(200)
	after := vec.Centroid(sys.Positions())
	if before.Dist(after) > 1e-9 {
		t.Fatalf("centroid drifted by %v", before.Dist(after))
	}
}

func TestGridAndBruteForcesAgree(t *testing.T) {
	// The strategy switch must be invisible: identical forces from both
	// paths on a spread-out configuration with small cut-off.
	cfg := Config{
		N:      64,
		Force:  forces.MustF1(forces.ConstantMatrix(2, 1), forces.ConstantMatrix(2, 1.5)),
		Cutoff: 2,
	}.WithDefaults()
	rng := rngx.New(3)
	pos := make([]vec.Vec2, cfg.N)
	for i := range pos {
		x, y := rng.UniformDisc(20) // spread ≫ 3·rc so useGrid() is true
		pos[i] = vec.Vec2{X: x, Y: y}
	}
	sys, err := NewFromPositions(cfg, pos, rngx.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if strat, _, _ := sys.strategy(); strat != nbrDense {
		t.Fatal("test setup: expected the dense-grid strategy to be selected")
	}
	sys.computeForces() // dense-grid path
	fromGrid := append([]vec.Vec2(nil), sys.force...)
	for i := range sys.force {
		sys.force[i] = vec.Vec2{}
	}
	sys.forcesBrute()
	for i := range sys.force {
		if sys.force[i].Dist(fromGrid[i]) > 1e-9 {
			t.Fatalf("particle %d: grid force %v, brute force %v", i, fromGrid[i], sys.force[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{
		N:      20,
		Force:  forces.MustF1(forces.ConstantMatrix(2, 1), forces.ConstantMatrix(2, 2)),
		Cutoff: 5,
	}
	run := func() []vec.Vec2 {
		sys, err := New(cfg, rngx.New(77))
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(100)
		return sys.Positions()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different trajectories")
		}
	}
}

func TestCoincidentParticlesNoNaN(t *testing.T) {
	cfg := pairConfig(1, 2, math.Inf(1))
	sys, err := NewFromPositions(cfg, []vec.Vec2{v2(1, 1), v2(1, 1)}, rngx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(10)
	for _, p := range sys.Positions() {
		if !p.IsFinite() {
			t.Fatal("coincident particles produced non-finite positions")
		}
	}
}

func TestEquilibriumDetection(t *testing.T) {
	cfg := pairConfig(1, 2, math.Inf(1))
	cfg.EquilibriumThreshold = 1e-6
	cfg.EquilibriumWindow = 5
	sys, err := NewFromPositions(cfg, []vec.Vec2{v2(0, 0), v2(5, 0)}, rngx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	steps, eq := sys.RunUntilEquilibrium(5000)
	if !eq {
		t.Fatalf("noise-free pair did not equilibrate in %d steps (net force %v)", steps, sys.NetForce())
	}
	if !sys.InEquilibrium() {
		t.Error("InEquilibrium false after RunUntilEquilibrium success")
	}
	if steps >= 5000 {
		t.Error("equilibrium reported only at the step bound")
	}
}

func TestNetForceTracked(t *testing.T) {
	cfg := pairConfig(1, 2, math.Inf(1))
	sys, err := NewFromPositions(cfg, []vec.Vec2{v2(0, 0), v2(6, 0)}, rngx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(sys.NetForce()) {
		t.Error("NetForce before first step should be NaN")
	}
	sys.Step()
	// Both particles feel k·|x−r| = 1·4 = 4 at distance 6.
	if math.Abs(sys.NetForce()-8) > 1e-9 {
		t.Errorf("NetForce = %v, want 8", sys.NetForce())
	}
}

func TestTimeAdvances(t *testing.T) {
	cfg := pairConfig(1, 2, math.Inf(1))
	sys, _ := NewFromPositions(cfg, []vec.Vec2{v2(0, 0), v2(3, 0)}, rngx.New(1))
	if sys.Time() != 0 {
		t.Error("fresh system time != 0")
	}
	sys.Run(7)
	if sys.Time() != 7 {
		t.Errorf("Time = %d, want 7", sys.Time())
	}
}

// --- Eq. (10): invariance of the dynamics under F = ISO⁺(2) × S*_n -------

// recordedNoise pre-draws a noise table so the same randomness can be
// replayed under a transformation.
func recordedNoise(steps, n int, amp float64, seed uint64) [][]vec.Vec2 {
	rng := rngx.New(seed)
	out := make([][]vec.Vec2, steps)
	for s := range out {
		out[s] = make([]vec.Vec2, n)
		for i := range out[s] {
			out[s][i] = vec.Vec2{X: rng.NormFloat64() * amp, Y: rng.NormFloat64() * amp}
		}
	}
	return out
}

func invarianceConfig() Config {
	return Config{
		N:      15,
		Types:  TypesRoundRobin(15, 3),
		Force:  forces.MustF1(forces.ConstantMatrix(3, 1), forces.RandomMatrix(3, 1, 4, rngx.New(8))),
		Cutoff: 5,
	}
}

func runWithNoise(t *testing.T, cfg Config, start []vec.Vec2, noise [][]vec.Vec2, steps int) []vec.Vec2 {
	t.Helper()
	sys, err := NewFromPositions(cfg, start, rngx.New(0))
	if err != nil {
		t.Fatal(err)
	}
	sys.SetNoiseFunc(func(step, i int) vec.Vec2 { return noise[step][i] })
	sys.Run(steps)
	return sys.Positions()
}

func TestDynamicsRotationEquivariant(t *testing.T) {
	cfg := invarianceConfig()
	steps := 60
	noise := recordedNoise(steps, cfg.N, 0.07, 9)
	rng := rngx.New(10)
	start := make([]vec.Vec2, cfg.N)
	for i := range start {
		x, y := rng.UniformDisc(4)
		start[i] = vec.Vec2{X: x, Y: y}
	}
	theta := 1.1
	rotStart := make([]vec.Vec2, cfg.N)
	for i := range start {
		rotStart[i] = start[i].Rotate(theta)
	}
	rotNoise := make([][]vec.Vec2, steps)
	for s := range noise {
		rotNoise[s] = make([]vec.Vec2, cfg.N)
		for i := range noise[s] {
			rotNoise[s][i] = noise[s][i].Rotate(theta)
		}
	}
	plain := runWithNoise(t, cfg, start, noise, steps)
	rotated := runWithNoise(t, cfg, rotStart, rotNoise, steps)
	for i := range plain {
		if plain[i].Rotate(theta).Dist(rotated[i]) > 1e-6 {
			t.Fatalf("particle %d: R(z) = %v, z' = %v", i, plain[i].Rotate(theta), rotated[i])
		}
	}
}

func TestDynamicsTranslationEquivariant(t *testing.T) {
	cfg := invarianceConfig()
	steps := 60
	noise := recordedNoise(steps, cfg.N, 0.07, 11)
	rng := rngx.New(12)
	start := make([]vec.Vec2, cfg.N)
	for i := range start {
		x, y := rng.UniformDisc(4)
		start[i] = vec.Vec2{X: x, Y: y}
	}
	shift := vec.Vec2{X: 13.5, Y: -4.2}
	shifted := make([]vec.Vec2, cfg.N)
	for i := range start {
		shifted[i] = start[i].Add(shift)
	}
	plain := runWithNoise(t, cfg, start, noise, steps)
	moved := runWithNoise(t, cfg, shifted, noise, steps)
	for i := range plain {
		if plain[i].Add(shift).Dist(moved[i]) > 1e-6 {
			t.Fatalf("particle %d: translation equivariance broken", i)
		}
	}
}

func TestDynamicsPermutationEquivariant(t *testing.T) {
	// Swapping two particles of the same type (and their noise streams)
	// must swap their trajectories and leave everyone else untouched.
	cfg := invarianceConfig()
	steps := 60
	noise := recordedNoise(steps, cfg.N, 0.07, 13)
	rng := rngx.New(14)
	start := make([]vec.Vec2, cfg.N)
	for i := range start {
		x, y := rng.UniformDisc(4)
		start[i] = vec.Vec2{X: x, Y: y}
	}
	// Particles 0 and 3 share type 0 under round-robin with l=3.
	a, b := 0, 3
	if cfg.Types[a] != cfg.Types[b] {
		t.Fatal("test setup: particles must share a type")
	}
	permStart := append([]vec.Vec2(nil), start...)
	permStart[a], permStart[b] = permStart[b], permStart[a]
	permNoise := make([][]vec.Vec2, steps)
	for s := range noise {
		permNoise[s] = append([]vec.Vec2(nil), noise[s]...)
		permNoise[s][a], permNoise[s][b] = permNoise[s][b], permNoise[s][a]
	}
	plain := runWithNoise(t, cfg, start, noise, steps)
	perm := runWithNoise(t, cfg, permStart, permNoise, steps)
	for i := range plain {
		j := i
		if i == a {
			j = b
		} else if i == b {
			j = a
		}
		if plain[i].Dist(perm[j]) > 1e-9 {
			t.Fatalf("permutation equivariance broken at particle %d", i)
		}
	}
}
