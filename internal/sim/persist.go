package sim

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/forces"
	"repro/internal/vec"
)

// ensembleFile is the on-disk representation of an Ensemble. The force is
// stored as its serialisable spec; everything else maps one-to-one. A
// version field guards future format evolution.
type ensembleFile struct {
	Version int

	// Simulation parameters.
	N                    int
	Types                []int
	Force                forces.Spec
	Cutoff               float64
	Dt                   float64
	NoiseVariance        float64
	InitRadius           float64
	EquilibriumThreshold float64
	EquilibriumWindow    int

	// Ensemble parameters.
	M           int
	Steps       int
	RecordEvery int
	Seed        uint64

	// Payload.
	Trajs        []Trajectory
	Equilibrated []bool
}

const ensembleFileVersion = 1

// Encode serialises the ensemble with encoding/gob. Infinite cut-off radii
// survive the round trip (gob encodes ±Inf).
func (e *Ensemble) Encode(w io.Writer) error {
	spec, err := forces.ToSpec(e.Cfg.Sim.Force)
	if err != nil {
		return fmt.Errorf("sim: persist ensemble: %w", err)
	}
	f := ensembleFile{
		Version:              ensembleFileVersion,
		N:                    e.Cfg.Sim.N,
		Types:                e.Types,
		Force:                spec,
		Cutoff:               e.Cfg.Sim.Cutoff,
		Dt:                   e.Cfg.Sim.Dt,
		NoiseVariance:        e.Cfg.Sim.NoiseVariance,
		InitRadius:           e.Cfg.Sim.InitRadius,
		EquilibriumThreshold: e.Cfg.Sim.EquilibriumThreshold,
		EquilibriumWindow:    e.Cfg.Sim.EquilibriumWindow,
		M:                    e.Cfg.M,
		Steps:                e.Cfg.Steps,
		RecordEvery:          e.Cfg.RecordEvery,
		Seed:                 e.Cfg.Seed,
		Trajs:                e.Trajs,
		Equilibrated:         e.Equilibrated,
	}
	return gob.NewEncoder(w).Encode(f)
}

// ReadEnsemble deserialises an ensemble written by Encode and rebuilds its
// force function from the stored spec.
func ReadEnsemble(r io.Reader) (*Ensemble, error) {
	var f ensembleFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("sim: read ensemble: %w", err)
	}
	if f.Version != ensembleFileVersion {
		return nil, fmt.Errorf("sim: unsupported ensemble file version %d", f.Version)
	}
	force, err := f.Force.Build()
	if err != nil {
		return nil, fmt.Errorf("sim: read ensemble: %w", err)
	}
	ens := &Ensemble{
		Cfg: EnsembleConfig{
			Sim: Config{
				N:                    f.N,
				Types:                f.Types,
				Force:                force,
				Cutoff:               f.Cutoff,
				Dt:                   f.Dt,
				NoiseVariance:        f.NoiseVariance,
				InitRadius:           f.InitRadius,
				EquilibriumThreshold: f.EquilibriumThreshold,
				EquilibriumWindow:    f.EquilibriumWindow,
			},
			M:           f.M,
			Steps:       f.Steps,
			RecordEvery: f.RecordEvery,
			Seed:        f.Seed,
		},
		Types:        f.Types,
		Trajs:        f.Trajs,
		Equilibrated: f.Equilibrated,
	}
	return ens, nil
}

// SaveEnsemble writes the ensemble to a file.
func SaveEnsemble(path string, e *Ensemble) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadEnsemble reads an ensemble from a file.
func LoadEnsemble(path string) (*Ensemble, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEnsemble(f)
}

// The gob payload contains only concrete exported types; register the leaf
// value type once so stream headers stay compact and stable.
func init() {
	gob.Register(vec.Vec2{})
}
