// Package infotheory implements the information-theoretic machinery of the
// paper: entropy and (multi-)information for discrete variables (Sec. 2),
// and three estimators of continuous multi-information (Sec. 5.3) — the
// Kraskov–Stögbauer–Grassberger k-nearest-neighbour estimator the paper
// adopts (in the paper's exact formulation plus the standard KSG-1/KSG-2
// variants), a Gaussian-kernel density estimator, and a James–Stein
// shrinkage binned estimator (the two baselines the paper compared
// against) — together with the multi-information decomposition over
// coarse-grained observers (Eq. 5).
//
// All information quantities are returned in bits.
package infotheory

import (
	"fmt"

	"repro/internal/vec"
)

// Dataset holds m joint samples of n real-valued observer variables, where
// variable v has dimension dims[v] (particle observers have dimension 2).
// Rows are stored contiguously for cache-friendly distance sweeps.
type Dataset struct {
	m       int
	dims    []int
	offsets []int
	rowLen  int
	data    []float64
}

// NewDataset allocates a zeroed dataset of m samples with the given
// per-variable dimensions.
func NewDataset(m int, dims []int) *Dataset {
	if m <= 0 {
		panic("infotheory: dataset needs at least one sample")
	}
	if len(dims) == 0 {
		panic("infotheory: dataset needs at least one variable")
	}
	offsets := make([]int, len(dims))
	rowLen := 0
	for v, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("infotheory: variable %d has dimension %d", v, d))
		}
		offsets[v] = rowLen
		rowLen += d
	}
	return &Dataset{
		m:       m,
		dims:    append([]int(nil), dims...),
		offsets: offsets,
		rowLen:  rowLen,
		data:    make([]float64, m*rowLen),
	}
}

// NumSamples returns m.
func (d *Dataset) NumSamples() int { return d.m }

// NumVars returns the number of observer variables n.
func (d *Dataset) NumVars() int { return len(d.dims) }

// Dim returns the dimension of variable v.
func (d *Dataset) Dim(v int) int { return d.dims[v] }

// TotalDim returns the dimension of the joint space (Σ dims).
func (d *Dataset) TotalDim() int { return d.rowLen }

// Var returns the slice holding variable v of sample s. The slice aliases
// the dataset storage: writes through it mutate the dataset.
func (d *Dataset) Var(s, v int) []float64 {
	off := s*d.rowLen + d.offsets[v]
	return d.data[off : off+d.dims[v] : off+d.dims[v]]
}

// SetVar copies vals into variable v of sample s.
func (d *Dataset) SetVar(s, v int, vals ...float64) {
	dst := d.Var(s, v)
	if len(vals) != len(dst) {
		panic(fmt.Sprintf("infotheory: SetVar got %d values for dimension %d", len(vals), len(dst)))
	}
	copy(dst, vals)
}

// Row returns the full joint sample s (aliasing the storage).
func (d *Dataset) Row(s int) []float64 {
	off := s * d.rowLen
	return d.data[off : off+d.rowLen : off+d.rowLen]
}

// FromFrames builds the per-particle observer dataset of one time step:
// frames[s][i] is the (aligned) position of particle i in sample s; the
// result has one 2-dimensional variable per particle.
func FromFrames(frames [][]vec.Vec2) *Dataset {
	m := len(frames)
	if m == 0 {
		panic("infotheory: FromFrames needs at least one sample")
	}
	n := len(frames[0])
	dims := make([]int, n)
	for v := range dims {
		dims[v] = 2
	}
	d := NewDataset(m, dims)
	for s, f := range frames {
		if len(f) != n {
			panic(fmt.Sprintf("infotheory: sample %d has %d particles, want %d", s, len(f), n))
		}
		for v, p := range f {
			d.SetVar(s, v, p.X, p.Y)
		}
	}
	return d
}

// checkVar panics with a clear message when v is not a valid variable
// index of the dataset; op names the calling method.
func (d *Dataset) checkVar(op string, v int) {
	if v < 0 || v >= len(d.dims) {
		panic(fmt.Sprintf("infotheory: %s: variable index %d out of range [0,%d)", op, v, len(d.dims)))
	}
}

// Select returns a new dataset containing only the given variables, in the
// given order (repeats are allowed and copy the variable again). Data is
// copied. It panics on an out-of-range variable index.
func (d *Dataset) Select(vars []int) *Dataset {
	dims := make([]int, len(vars))
	for i, v := range vars {
		d.checkVar("Select", v)
		dims[i] = d.dims[v]
	}
	out := NewDataset(d.m, dims)
	for s := 0; s < d.m; s++ {
		for i, v := range vars {
			copy(out.Var(s, i), d.Var(s, v))
		}
	}
	return out
}

// Grouped returns a new dataset in which each group of variables is merged
// into a single joint variable (dimension = sum of members' dimensions).
// This constructs the coarse-grained observers X̃ of Sec. 3.1. Every
// original variable must appear in exactly one group for the result to be a
// valid observer set; this is not enforced so that callers may also build
// partial views. It panics on an out-of-range variable index or on a
// variable repeated within one group (a repeat across groups is a legal
// partial view; a repeat inside a group is always a caller bug — the
// merged observer would duplicate coordinates).
func (d *Dataset) Grouped(groups [][]int) *Dataset {
	dims := make([]int, len(groups))
	for g, members := range groups {
		for i, v := range members {
			d.checkVar("Grouped", v)
			for _, w := range members[:i] {
				if w == v {
					panic(fmt.Sprintf("infotheory: Grouped: variable %d repeated in group %d", v, g))
				}
			}
			dims[g] += d.dims[v]
		}
	}
	out := NewDataset(d.m, dims)
	for s := 0; s < d.m; s++ {
		for g, members := range groups {
			dst := out.Var(s, g)
			pos := 0
			for _, v := range members {
				src := d.Var(s, v)
				copy(dst[pos:pos+len(src)], src)
				pos += len(src)
			}
		}
	}
	return out
}

// varDist2 returns the squared Euclidean distance between variable v of
// samples a and b.
func (d *Dataset) varDist2(a, b, v int) float64 {
	xa := d.Var(a, v)
	xb := d.Var(b, v)
	var s float64
	for i := range xa {
		diff := xa[i] - xb[i]
		s += diff * diff
	}
	return s
}

// jointDist2 returns the square of the paper's joint metric between
// samples a and b (Eq. 19): the maximum over variables of the
// per-variable squared Euclidean distance. Neighbour selection compares
// squared distances throughout — sqrt is order-preserving, and staying in
// squared space keeps the (distance, index) ordering unambiguous for the
// engine/brute equivalence contract.
func (d *Dataset) jointDist2(a, b int) float64 {
	var worst float64
	for v := range d.dims {
		if d2 := d.varDist2(a, b, v); d2 > worst {
			worst = d2
		}
	}
	return worst
}

// jointDist is the Eq. (19) metric itself, √jointDist2.
func (d *Dataset) jointDist(a, b int) float64 {
	return sqrt(d.jointDist2(a, b))
}
