package infotheory

import (
	"math"

	"repro/internal/knn"
	"repro/internal/mathx"
	"repro/internal/rngx"
	"repro/internal/spatial"
)

// Approximate estimator tier.
//
// The exact tier evaluates the KSG sum at every one of the m samples —
// Ω(m·log m) tree work per estimate even after PR 3. The approximate
// tier keeps the neighbour structure exact but evaluates the sample
// average at r ≪ m subsampled evaluation points:
//
//	I ≅ ψ(k) + (n−1)ψ(m) − (1/r) Σ_{s ∈ S, |S|=r} Σ_v ψ(c_v(s))
//
// Counts c_v(s) still range over all m samples, so each evaluated term
// is exactly the term the full estimator would produce; only the outer
// average is subsampled, making the estimate an unbiased Monte-Carlo
// draw of the full-m estimate (in ψ-space) with a computable standard
// error. Three stacked mechanics keep the cost down and the result
// deterministic:
//
//   - Morton-ordered rows: the dataset's rows are copied into Z-order of
//     their planar centroids, so tree builds and scans walk memory
//     coherently. Trees carry ids = original sample indices, so every
//     (distance, id) ordering — and therefore every count and neighbour
//     set — is independent of the permutation (knn's
//     permutation-invariance property test pins this).
//   - Amortized rebuilds: across same-shaped calls (the pipeline's
//     consecutive recorded steps) the engine double-buffers the permuted
//     rows and refreshes the trees in O(m·dim) instead of rebuilding,
//     falling back to an internal rebuild when drift exceeds the bound.
//   - Deterministic subsampling: evaluation points are drawn by a
//     rngx.Stream seeded only from caller-supplied (Seed, Sequence) —
//     never from engine state — so results are bit-identical across
//     Workers settings, engine reuse histories, and kill/resume.
//
// The error bar is the finite-population-corrected standard error of
// the subsample mean of the per-point ψ-sums a_s = Σ_v ψ(c_v(s)):
//
//	SE = sd(a_s)/√r · √((m−r)/(m−1))    (in nats; reported in bits)
//
// with the 95% normal interval MI ± 1.96·SE. At r = m the correction
// is 0: every point is evaluated and the interval collapses.

// DefaultMaxDrift is the Refresh drift bound (fraction of the root-box
// extent) used when ApproxOptions.MaxDrift is zero. Recorded frames of
// an equilibrating simulation move a small fraction of the box between
// steps; 10% keeps the split structure useful while letting almost all
// consecutive-step refreshes take the cheap path.
const DefaultMaxDrift = 0.1

// ApproxOptions configures one approximate-tier evaluation.
type ApproxOptions struct {
	// Subsample is r, the number of evaluation points; 1 ≤ r ≤ m.
	Subsample int
	// Seed and Sequence identify the subsample draw: the stream is
	// rngx.NewStream(Seed, Sequence). Derive Sequence from stable task
	// coordinates (e.g. the pipeline step index), never from engine
	// state, to keep results schedule-independent.
	Seed, Sequence uint64
	// MaxDrift overrides DefaultMaxDrift when positive.
	MaxDrift float64
}

// ApproxEstimate is the result of one approximate-tier evaluation: the
// estimate with its subsampling uncertainty, all in bits.
type ApproxEstimate struct {
	MI            float64 // subsampled estimate
	StdErr        float64 // standard error of MI from the subsampling
	CILow, CIHigh float64 // MI ∓ 1.96·StdErr
	Evals         int     // evaluation points actually used (= r)
}

// approxState is the engine's approximate-tier working set: the cached
// Morton layout, the double-buffered permuted rows, and the refreshable
// trees. It is independent of the exact tier's scratch, so exact and
// approximate calls interleave freely on one engine.
type approxState struct {
	ms   spatial.MortonScratch
	perm []int32 // row → original sample index (= tree ids)

	// Cached layout shape; a mismatch forces a fresh permutation+build.
	m, rowLen  int
	dims       []int
	offsets    []int
	blocks     []knn.Block
	haveLayout bool

	rows    [2][]float64   // double-buffered permuted rows
	margPts [2][][]float64 // double-buffered per-variable marginal rows
	cur     int            // buffer currently referenced by the trees

	joint knn.Tree
	marg  []knn.Tree

	rowOf     []int32 // original sample index → permuted row
	sampleIdx []int32 // SampleInto scratch, len m
	drawn     []int32 // the r drawn original indices, in draw order
	aVals     []float64
}

// MultiInfoKSGApprox estimates the multi-information in bits on the
// approximate tier: the KSG sum of MultiInfoKSGVariant subsampled at
// opts.Subsample evaluation points (marginal counts still over all m
// samples), with the subsampling standard error and 95% interval. See
// the tier contract at the top of this file; results are bit-identical
// for every Workers setting and depend only on (d, k, variant, opts).
func (e *Engine) MultiInfoKSGApprox(d *Dataset, k int, variant KSGVariant, opts ApproxOptions) ApproxEstimate {
	m := d.NumSamples()
	n := d.NumVars()
	if n < 2 {
		return ApproxEstimate{}
	}
	if k < 1 || k >= m {
		panic("infotheory: KSG needs 1 <= k < m")
	}
	r := opts.Subsample
	if r < 1 || r > m {
		panic("infotheory: approximate KSG needs 1 <= Subsample <= m")
	}

	e.ensureApproxLayout(d, opts.maxDrift())
	ap := &e.approx

	base := mathx.Digamma(float64(k)) + float64(n-1)*mathx.Digamma(float64(m))
	if variant == KSG2 {
		base -= float64(n-1) / float64(k)
	}

	// Draw the evaluation points in original-index space: the draw knows
	// nothing about the (engine-history-dependent) row permutation.
	if cap(ap.sampleIdx) < m {
		ap.sampleIdx = make([]int32, m)
	}
	stream := rngx.NewStream(opts.Seed, opts.Sequence)
	ap.drawn = stream.SampleInto(ap.sampleIdx[:m], m, r)

	ap.aVals = growFloats(ap.aVals, r)
	if workers := e.workerCount(r); workers == 1 {
		e.approxChunk(k, variant, 0, 0, r)
	} else {
		e.runParallel(workers, r, func(worker, lo, hi int) {
			e.approxChunk(k, variant, worker, lo, hi)
		})
	}

	// Reduce in draw order — fixed for every Workers setting.
	var sum mathx.KahanSum
	for _, a := range ap.aVals[:r] {
		sum.Add(a)
	}
	mean := sum.Sum() / float64(r)

	var se float64
	if r > 1 && m > 1 {
		var devSum mathx.KahanSum
		for _, a := range ap.aVals[:r] {
			dev := a - mean
			devSum.Add(dev * dev)
		}
		s2 := devSum.Sum() / float64(r-1)
		fpc := math.Sqrt(float64(m-r) / float64(m-1))
		se = math.Sqrt(s2/float64(r)) * fpc
	}

	est := ApproxEstimate{
		MI:     mathx.Log2(base - mean),
		StdErr: mathx.Log2(se), // nats → bits
		Evals:  r,
	}
	est.CILow = est.MI - 1.96*est.StdErr
	est.CIHigh = est.MI + 1.96*est.StdErr
	return est
}

func (o ApproxOptions) maxDrift() float64 {
	if o.MaxDrift > 0 {
		return o.MaxDrift
	}
	return DefaultMaxDrift
}

// rowCentroid returns the planar centroid of a row under the repo's
// coordinate convention (even positions x, odd positions y — particle
// observers are (x, y) pairs). A trailing unpaired coordinate is
// ignored; the key only steers memory layout, never results.
func rowCentroid(row []float64) (x, y float64) {
	pairs := len(row) / 2
	if pairs == 0 {
		return row[0], 0
	}
	var sx, sy float64
	for i := 0; i < pairs; i++ {
		sx += row[2*i]
		sy += row[2*i+1]
	}
	return sx / float64(pairs), sy / float64(pairs)
}

// ensureApproxLayout makes the approximate tier's trees cover d's
// current coordinates: a full Morton permutation + build when the
// dataset shape changed since the last call, a double-buffered Refresh
// (drift-gated, possibly an internal rebuild) when it did not. Either
// way the trees are exact over d afterwards; which path ran never
// affects results, only speed.
func (e *Engine) ensureApproxLayout(d *Dataset, maxDrift float64) {
	ap := &e.approx
	m, n := d.NumSamples(), d.NumVars()
	same := ap.haveLayout && ap.m == m && ap.rowLen == d.rowLen && len(ap.dims) == n
	if same {
		for v := 0; v < n; v++ {
			if ap.dims[v] != d.dims[v] {
				same = false
				break
			}
		}
	}

	if !same {
		// New shape: permutation from this dataset's coordinates, full
		// build. The permutation is then pinned for the lifetime of the
		// layout — later same-shaped datasets reuse it (stable ids make
		// results permutation-invariant, so a stale ordering costs only
		// locality, never correctness).
		ap.perm = ap.ms.MortonOrder(m, func(i int) (float64, float64) {
			return rowCentroid(d.Row(i))
		})
		if cap(ap.rowOf) < m {
			ap.rowOf = make([]int32, m)
		}
		ap.rowOf = ap.rowOf[:m]
		for row, orig := range ap.perm {
			ap.rowOf[orig] = int32(row)
		}
		ap.dims = append(ap.dims[:0], d.dims...)
		ap.offsets = append(ap.offsets[:0], d.offsets...)
		ap.blocks = ap.blocks[:0]
		for v := 0; v < n; v++ {
			ap.blocks = append(ap.blocks, knn.Block{Off: d.offsets[v], Len: d.dims[v]})
		}
		ap.m, ap.rowLen = m, d.rowLen
		for len(ap.marg) < n {
			ap.marg = append(ap.marg, knn.Tree{})
		}
		for b := range ap.margPts {
			for len(ap.margPts[b]) < n {
				ap.margPts[b] = append(ap.margPts[b], nil)
			}
		}
		ap.cur = 0
		e.fillApproxBuffers(d, 0)
		ap.joint.RebuildWithIDs(ap.rows[0], m, d.rowLen, knn.MaxEuclidean2, ap.blocks, ap.perm)
		for v := 0; v < n; v++ {
			ap.marg[v].RebuildWithIDs(ap.margPts[0][v], m, d.dims[v], knn.MaxEuclidean2, nil, ap.perm)
		}
		ap.haveLayout = true
		return
	}

	// Same shape: write the new coordinates into the buffer the trees do
	// NOT currently reference (Refresh needs the old coordinates intact
	// to measure drift), then refresh.
	next := 1 - ap.cur
	e.fillApproxBuffers(d, next)
	ap.joint.Refresh(ap.rows[next], maxDrift)
	for v := 0; v < n; v++ {
		ap.marg[v].Refresh(ap.margPts[next][v], maxDrift)
	}
	ap.cur = next
}

// fillApproxBuffers copies d's rows (and per-variable marginal rows)
// into buffer b in the cached Morton order.
func (e *Engine) fillApproxBuffers(d *Dataset, b int) {
	ap := &e.approx
	m, n, rowLen := ap.m, len(ap.dims), ap.rowLen
	buf := growFloats(ap.rows[b], m*rowLen)
	ap.rows[b] = buf
	for row, orig := range ap.perm {
		copy(buf[row*rowLen:(row+1)*rowLen], d.Row(int(orig)))
	}
	for v := 0; v < n; v++ {
		w := ap.dims[v]
		mp := growFloats(ap.margPts[b][v], m*w)
		ap.margPts[b][v] = mp
		off := ap.offsets[v]
		for row := 0; row < m; row++ {
			copy(mp[row*w:(row+1)*w], buf[row*rowLen+off:row*rowLen+off+w])
		}
	}
}

// approxVarDist2 is varDist2 over the permuted row buffer: squared
// Euclidean distance between variable v of rows a and b, with the same
// summation order as Dataset.varDist2.
func (ap *approxState) approxVarDist2(buf []float64, a, b int32, v int) float64 {
	off, w := ap.offsets[v], ap.dims[v]
	pa := buf[int(a)*ap.rowLen+off : int(a)*ap.rowLen+off+w]
	pb := buf[int(b)*ap.rowLen+off : int(b)*ap.rowLen+off+w]
	var s float64
	for i := 0; i < w; i++ {
		diff := pa[i] - pb[i]
		s += diff * diff
	}
	return s
}

// approxChunk evaluates the per-evaluation-point ψ-sums a_s for draw
// positions [lo, hi) into ap.aVals, using the given worker's scratch.
// It is ksgChunk transplanted onto the permuted trees: same radii, same
// strict/inclusive count rules, same clamps.
func (e *Engine) approxChunk(k int, variant KSGVariant, worker, lo, hi int) {
	ap := &e.approx
	n := len(ap.dims)
	sc := &e.scratch[worker]
	buf := ap.rows[ap.cur]
	for i := lo; i < hi; i++ {
		row := ap.rowOf[ap.drawn[i]]
		q := buf[int(row)*ap.rowLen : (int(row)+1)*ap.rowLen]
		nbs := ap.joint.KNearest(q, k, row, sc.neigh)
		sc.neigh = nbs
		var a float64
		for v := 0; v < n; v++ {
			var radius2 float64
			switch variant {
			case KSGPaper:
				radius2 = ap.approxVarDist2(buf, row, nbs[k-1].Index, v)
			case KSG1:
				dist := sqrt(nbs[k-1].Dist)
				radius2 = dist * dist
			case KSG2:
				for j := 0; j < k; j++ {
					if d2 := ap.approxVarDist2(buf, row, nbs[j].Index, v); d2 > radius2 {
						radius2 = d2
					}
				}
			}
			off := ap.offsets[v]
			c := ap.marg[v].CountWithin(q[off:off+ap.dims[v]], radius2, variant == KSG2, row)
			switch variant {
			case KSG1:
				c++ // ψ(c_v + 1)
			default:
				if c < 1 {
					c = 1 // clamp, see KSGPaper docs
				}
			}
			a += mathx.Digamma(float64(c))
		}
		ap.aVals[i] = a
	}
}
