package infotheory_test

import (
	"testing"

	"repro/internal/experiment"
	"repro/internal/forces"
	"repro/internal/infotheory"
	"repro/internal/sim"
)

// TestPipelineMatchesBruteEstimators mirrors the streamed-vs-batch
// equivalence suite one layer down: a full pipeline run (which estimates
// on per-worker tree engines) must produce, step for step and bit for
// bit, what the retained brute-force estimators compute on the same
// aligned datasets — MI, the Eq. (5) decomposition, and the entropy
// profiles.
func TestPipelineMatchesBruteEstimators(t *testing.T) {
	sc := experiment.TestScale()
	p := experiment.Pipeline{
		Name: "engine-equiv",
		Ensemble: sim.EnsembleConfig{
			Sim: sim.Config{
				N:      12,
				Types:  sim.TypesRoundRobin(12, 2),
				Force:  forces.MustF1(forces.ConstantMatrix(2, 1), forces.ConstantMatrix(2, 2)),
				Cutoff: 6,
			},
			M:           sc.M,
			Steps:       sc.Steps,
			RecordEvery: sc.RecordEvery,
			Seed:        77,
		},
		Decompose:      true,
		TrackEntropies: true,
		SampleWorkers:  3,
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	const k = experiment.DefaultKSGK
	brute := func(d *infotheory.Dataset) float64 {
		return infotheory.MultiInfoKSGBruteForTest(d, k, infotheory.KSG2)
	}
	groups := infotheory.GroupsByLabel(res.Labels)
	for ti := range res.Times {
		d := res.Observers.Datasets[ti]
		if got, want := res.MI[ti], brute(d); got != want {
			t.Errorf("step %d: pipeline MI %v, brute %v", res.Times[ti], got, want)
		}
		wantDec := infotheory.Decompose(d, groups, brute)
		gotDec := res.Decomp[ti]
		if gotDec.Between != wantDec.Between {
			t.Errorf("step %d: pipeline Between %v, brute %v", res.Times[ti], gotDec.Between, wantDec.Between)
		}
		for g := range wantDec.Within {
			if gotDec.Within[g] != wantDec.Within[g] {
				t.Errorf("step %d group %d: pipeline Within %v, brute %v", res.Times[ti], g, gotDec.Within[g], wantDec.Within[g])
			}
		}
		var wantProf infotheory.EntropyProfile
		all := make([]int, d.NumVars())
		for v := range all {
			all[v] = v
		}
		wantProf.Joint = infotheory.DifferentialEntropyKLBruteForTest(d, all, k)
		for v := 0; v < d.NumVars(); v++ {
			wantProf.MarginalSum += infotheory.DifferentialEntropyKLBruteForTest(d, []int{v}, k)
		}
		if res.Entropies[ti] != wantProf {
			t.Errorf("step %d: pipeline entropies %+v, brute %+v", res.Times[ti], res.Entropies[ti], wantProf)
		}
	}

	// The kernel baseline through the same pipeline, against the brute
	// kernel-entropy composition.
	p.Estimator = experiment.EstKernel
	p.Decompose = false
	p.TrackEntropies = false
	kres, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	for ti := range kres.Times {
		d := kres.Observers.Datasets[ti]
		var want float64
		for v := 0; v < d.NumVars(); v++ {
			want += infotheory.KernelEntropyBruteForTest(d, []int{v})
		}
		all := make([]int, d.NumVars())
		for v := range all {
			all[v] = v
		}
		want -= infotheory.KernelEntropyBruteForTest(d, all)
		if kres.MI[ti] != want {
			t.Errorf("step %d: pipeline kernel MI %v, brute %v", kres.Times[ti], kres.MI[ti], want)
		}
	}
}
