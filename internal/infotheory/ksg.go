package infotheory

import (
	"math"
	"sort"

	"repro/internal/mathx"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// KSGVariant selects which formulation of the Kraskov–Stögbauer–Grassberger
// estimator MultiInfoKSGVariant evaluates.
type KSGVariant int

const (
	// KSGPaper is the formulation printed in the paper (Eqs. 18–20):
	//
	//	I ≅ ψ(k) + (n−1)ψ(m) − ⟨ψ(c₁)+…+ψ(c_n)⟩
	//
	// where c_v counts the samples whose variable-v distance is
	// strictly smaller than the variable-v distance of the sample's
	// k-th joint neighbour, self excluded. It is KSG's second algorithm
	// without the −(n−1)/k correction term. Counts of zero (possible
	// with the strict inequality) are clamped to 1, where ψ(1) = −γ,
	// to keep the estimate finite; the clamp is exercised only on
	// degenerate data.
	KSGPaper KSGVariant = iota
	// KSG1 is Kraskov et al.'s first algorithm:
	//
	//	I ≅ ψ(k) + (n−1)ψ(m) − ⟨ψ(c₁+1)+…+ψ(c_n+1)⟩
	//
	// with c_v counting samples strictly within the joint k-th
	// neighbour distance ε(s) in the v-marginal.
	KSG1
	// KSG2 is Kraskov et al.'s second algorithm:
	//
	//	I ≅ ψ(k) − (n−1)/k + (n−1)ψ(m) − ⟨ψ(c₁)+…+ψ(c_n)⟩
	//
	// with c_v counting samples within (inclusive) the v-marginal
	// radius spanned by the k nearest joint neighbours.
	KSG2
)

// String returns the variant name used in experiment records.
func (v KSGVariant) String() string {
	switch v {
	case KSGPaper:
		return "ksg-paper"
	case KSG1:
		return "ksg1"
	case KSG2:
		return "ksg2"
	default:
		return "ksg-unknown"
	}
}

// MultiInfoKSG estimates the multi-information I(X₁,…,X_n) of the dataset
// in bits using the paper's formulation of the KSG estimator (Eqs. 18–20)
// with the paper's joint metric (Eq. 19): the maximum over variables of the
// per-variable Euclidean norm. The paper uses k = 4 or 5 and reports the
// estimate to be insensitive to k in the 2–10 range.
//
// A dataset with fewer than two variables has multi-information 0 by
// definition. k must satisfy 1 ≤ k < m.
func MultiInfoKSG(d *Dataset, k int) float64 {
	return MultiInfoKSGVariant(d, k, KSGPaper)
}

// MultiInfoKSGVariant is MultiInfoKSG with an explicit variant selection;
// the variants agree asymptotically and differ by small-sample bias (see
// the ablation benchmark BenchmarkAblationKSGVariants). It runs on a
// fresh tree engine; reuse an Engine to amortise the scratch storage
// across calls.
func MultiInfoKSGVariant(d *Dataset, k int, variant KSGVariant) float64 {
	var e Engine
	return e.MultiInfoKSGVariant(d, k, variant)
}

// multiInfoKSGBrute is the retained brute-force reference: O(m²·n)
// distance sweeps with a full (distance, index) sort per sample. The
// engine is required to reproduce it bit for bit (the equivalence
// property tests and BenchmarkKSGScaling run both). Neighbour ordering
// compares squared joint distances — sqrt is order-preserving but can
// round distinct squared distances to equal values, so comparing in
// squared space is what keeps one unambiguous (distance, index) order for
// both paths.
func multiInfoKSGBrute(d *Dataset, k int, variant KSGVariant) float64 {
	m := d.NumSamples()
	n := d.NumVars()
	if n < 2 {
		return 0
	}
	if k < 1 || k >= m {
		panic("infotheory: KSG needs 1 <= k < m")
	}

	// ψ(k) + (n−1)ψ(m) base term; KSG2 subtracts (n−1)/k.
	base := mathx.Digamma(float64(k)) + float64(n-1)*mathx.Digamma(float64(m))
	if variant == KSG2 {
		base -= float64(n-1) / float64(k)
	}

	// Scratch reused across samples.
	type nb struct {
		idx   int
		dist2 float64
	}
	neigh := make([]nb, 0, m-1)
	var psiSum mathx.KahanSum

	for s := 0; s < m; s++ {
		// Pass 1: squared joint distances to all other samples; select
		// the k nearest. With k ≪ m a full sort is wasteful — the tree
		// engine replaces it with bounded-heap queries.
		neigh = neigh[:0]
		for t := 0; t < m; t++ {
			if t == s {
				continue
			}
			neigh = append(neigh, nb{t, d.jointDist2(s, t)})
		}
		sort.Slice(neigh, func(a, b int) bool {
			if neigh[a].dist2 != neigh[b].dist2 {
				return neigh[a].dist2 < neigh[b].dist2
			}
			return neigh[a].idx < neigh[b].idx
		})

		for v := 0; v < n; v++ {
			// Marginal radius for this variable.
			var radius2 float64
			switch variant {
			case KSGPaper:
				// Distance to the k-th joint neighbour,
				// projected to variable v (Eq. 20).
				radius2 = d.varDist2(s, neigh[k-1].idx, v)
			case KSG1:
				// Joint k-th neighbour distance (max-norm
				// ball radius).
				dist := sqrt(neigh[k-1].dist2)
				radius2 = dist * dist
			case KSG2:
				// Largest v-marginal distance among the k
				// nearest joint neighbours.
				for j := 0; j < k; j++ {
					if d2 := d.varDist2(s, neigh[j].idx, v); d2 > radius2 {
						radius2 = d2
					}
				}
			}

			// Pass 2: marginal counts.
			c := 0
			for t := 0; t < m; t++ {
				if t == s {
					continue
				}
				d2 := d.varDist2(s, t, v)
				if variant == KSG2 {
					if d2 <= radius2 {
						c++
					}
				} else if d2 < radius2 {
					c++
				}
			}
			switch variant {
			case KSG1:
				c++ // ψ(c_v + 1)
			default:
				if c < 1 {
					c = 1 // clamp, see KSGPaper docs
				}
			}
			psiSum.Add(mathx.Digamma(float64(c)))
		}
	}
	nats := base - psiSum.Sum()/float64(m)
	return mathx.Log2(nats)
}

// MutualInfoKSG estimates the bivariate mutual information I(X;Y) in bits
// from paired samples xs[i] ↔ ys[i] (each sample a vector), using the
// recommended KSG-2 formulation. It is a convenience wrapper over a
// two-variable dataset.
func MutualInfoKSG(xs, ys [][]float64, k int) float64 {
	if len(xs) != len(ys) {
		panic("infotheory: MutualInfoKSG needs paired samples")
	}
	m := len(xs)
	if m == 0 {
		panic("infotheory: MutualInfoKSG needs samples")
	}
	d := NewDataset(m, []int{len(xs[0]), len(ys[0])})
	for s := 0; s < m; s++ {
		d.SetVar(s, 0, xs[s]...)
		d.SetVar(s, 1, ys[s]...)
	}
	return MultiInfoKSGVariant(d, k, KSG2)
}
