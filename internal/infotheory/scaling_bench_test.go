package infotheory

import (
	"fmt"
	"math/rand"
	"testing"
)

// scalingDataset draws m samples of n 2-D observer variables with a
// shared latent component, the shape of one pipeline time step: the
// variables are correlated (MI > 0) so neighbour radii and marginal
// counts look like real aligned-ensemble data rather than pure noise.
func scalingDataset(m, n int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	dims := make([]int, n)
	for v := range dims {
		dims[v] = 2
	}
	d := NewDataset(m, dims)
	for s := 0; s < m; s++ {
		lx, ly := r.NormFloat64(), r.NormFloat64()
		for v := 0; v < n; v++ {
			vals := d.Var(s, v)
			vals[0] = lx + 0.7*r.NormFloat64()
			vals[1] = ly + 0.7*r.NormFloat64()
		}
	}
	return d
}

var scalingSink float64

// BenchmarkKSGScaling is the estimator-engine trajectory benchmark: the
// default pipeline estimator (KSG-2, k = 4) on one time-step-shaped
// dataset, brute vs exact tree vs approximate tier, across the ensemble
// sizes of the roadmap (M = 128 quick scale, 500 paper scale,
// 2000/5000/50000 beyond). Engines are warmed before timing, so the
// B/op columns demonstrate the steady-state 0 allocs/op contract; the
// brute rows (capped at m = 5000 — O(m²) is the wall the engine
// removes) document the baseline, and the approx rows use the
// BenchSubsample(m) evaluation budget with repeated same-dataset calls,
// i.e. the zero-drift Refresh path a pipeline's consecutive steps hit.
// The m = 50000 rows are skipped under -short (the CI race job); the
// bench job uploads the full exact-vs-approximate curves side by side
// as the ksg-scaling artifact, and EXPERIMENTS.md holds a reference
// table.
func BenchmarkKSGScaling(b *testing.B) {
	const n, k = 8, DefaultBenchK
	for _, m := range []int{128, 500, 2000, 5000, 50000} {
		if m > 5000 && testing.Short() {
			continue
		}
		d := scalingDataset(m, n, int64(m))
		b.Run(fmt.Sprintf("tree/m=%d", m), func(b *testing.B) {
			e := NewEngine(0)
			scalingSink = e.MultiInfoKSGVariant(d, k, KSG2) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scalingSink = e.MultiInfoKSGVariant(d, k, KSG2)
			}
		})
		b.Run(fmt.Sprintf("approx/m=%d", m), func(b *testing.B) {
			e := NewEngine(0)
			opts := ApproxOptions{Subsample: BenchSubsample(m), Seed: uint64(m)}
			// Two warm calls: the first builds into buffer 0, the second
			// exercises (and warms) the Refresh double-buffer cycle.
			est := e.MultiInfoKSGApprox(d, k, KSG2, opts)
			est = e.MultiInfoKSGApprox(d, k, KSG2, opts)
			scalingSink = est.MI
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scalingSink = e.MultiInfoKSGApprox(d, k, KSG2, opts).MI
			}
		})
		if m > 5000 {
			continue
		}
		b.Run(fmt.Sprintf("brute/m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scalingSink = multiInfoKSGBrute(d, k, KSG2)
			}
		})
	}
}

// BenchSubsample is the approximate tier's benchmark evaluation budget:
// r = m/16 (at least 32), a ~6% subsample whose reported error bars stay
// a few hundredths of a bit on pipeline-shaped data.
func BenchSubsample(m int) int {
	r := m / 16
	if r < 32 {
		r = 32
	}
	if r > m {
		r = m
	}
	return r
}

// DefaultBenchK mirrors experiment.DefaultKSGK without importing the
// experiment package (which would cycle).
const DefaultBenchK = 4

// BenchmarkKLScaling tracks the entropy-profile path (Kozachenko–
// Leonenko joint entropy) on the same datasets; TrackEntropies pipelines
// spend most of their estimation budget here.
func BenchmarkKLScaling(b *testing.B) {
	const n, k = 8, DefaultBenchK
	for _, m := range []int{128, 500, 2000} {
		d := scalingDataset(m, n, int64(m))
		all := make([]int, n)
		for v := range all {
			all[v] = v
		}
		b.Run(fmt.Sprintf("tree/m=%d", m), func(b *testing.B) {
			e := NewEngine(0)
			scalingSink = e.DifferentialEntropyKL(d, all, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scalingSink = e.DifferentialEntropyKL(d, all, k)
			}
		})
		b.Run(fmt.Sprintf("brute/m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scalingSink = differentialEntropyKLBrute(d, all, k)
			}
		})
	}
}
