package infotheory

import (
	"math"
	"math/rand/v2"
	"testing"
)

// --- kernel estimator -------------------------------------------------------

func TestKernelIndependentNearZero(t *testing.T) {
	d := independentDataset(300, 3, 1, 41)
	got := MultiInfoKernel(d)
	if math.Abs(got) > 0.4 {
		t.Errorf("kernel MI on independent data = %v, want ≈ 0", got)
	}
}

func TestKernelBivariateGaussian(t *testing.T) {
	rho := 0.8
	want := gaussianPairTrueMI(rho)
	var sum float64
	reps := 3
	for r := 0; r < reps; r++ {
		sum += MultiInfoKernel(gaussianPair(400, rho, uint64(300+r)))
	}
	got := sum / float64(reps)
	if math.Abs(got-want) > 0.35 {
		t.Errorf("kernel MI = %v, want %v", got, want)
	}
}

func TestKernelMonotoneInCorrelation(t *testing.T) {
	lo := MultiInfoKernel(gaussianPair(400, 0.2, 61))
	hi := MultiInfoKernel(gaussianPair(400, 0.9, 62))
	if hi <= lo {
		t.Errorf("kernel MI not increasing in rho: %v vs %v", lo, hi)
	}
}

func TestKernelSingleVariableZero(t *testing.T) {
	if got := MultiInfoKernel(independentDataset(50, 1, 2, 63)); got != 0 {
		t.Errorf("single variable = %v", got)
	}
}

func TestKernelConstantDimensionDoesNotExplode(t *testing.T) {
	// A zero-variance dimension must not produce NaN/Inf (bandwidth is
	// floored).
	d := NewDataset(50, []int{1, 1})
	r := rand.New(rand.NewPCG(1, 1))
	for s := 0; s < 50; s++ {
		d.SetVar(s, 0, 3.0) // constant
		d.SetVar(s, 1, r.NormFloat64())
	}
	got := MultiInfoKernel(d)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("kernel MI = %v on constant dimension", got)
	}
}

func TestLogSumExp(t *testing.T) {
	xs := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := logSumExp(xs); math.Abs(got-math.Log(6)) > 1e-12 {
		t.Fatalf("logSumExp = %v, want ln 6", got)
	}
	// Extreme values must not overflow.
	if got := logSumExp([]float64{-1e308, -1e308}); math.IsNaN(got) {
		t.Fatal("logSumExp NaN on extreme input")
	}
	if got := logSumExp(nil); !math.IsInf(got, -1) {
		t.Fatalf("logSumExp(nil) = %v, want -Inf", got)
	}
	big := []float64{1000, 1000}
	if got := logSumExp(big); math.Abs(got-(1000+math.Ln2)) > 1e-9 {
		t.Fatalf("logSumExp overflow handling broken: %v", got)
	}
}

// --- binned estimator -------------------------------------------------------

func TestBinnedIndependentLowDim(t *testing.T) {
	// In low dimension with plenty of samples, both binned variants
	// should report small MI for independent variables.
	d := independentDataset(2000, 2, 1, 71)
	js := MultiInfoBinned(d, BinnedOptions{})
	ml := MultiInfoBinned(d, BinnedOptions{PlainML: true})
	if math.Abs(js) > 0.35 {
		t.Errorf("binned-js on independent = %v", js)
	}
	if math.Abs(ml) > 0.35 {
		t.Errorf("binned-ml on independent = %v", ml)
	}
}

// TestBinnedDeterministicAcrossCalls pins the determinism fix: the cell
// sums used to follow Go's randomised map iteration order, so repeated
// estimates on the same data differed at rounding level — which broke
// the sweep suite's bit-identical contract for the comparison table.
func TestBinnedDeterministicAcrossCalls(t *testing.T) {
	d := independentDataset(500, 4, 1, 17)
	for _, opt := range []BinnedOptions{{}, {PlainML: true}} {
		first := MultiInfoBinned(d, opt)
		for i := 0; i < 5; i++ {
			if got := MultiInfoBinned(d, opt); math.Float64bits(got) != math.Float64bits(first) {
				t.Fatalf("opt %+v: call %d = %v, first = %v (not bit-identical)", opt, i, got, first)
			}
		}
	}
}

func TestBinnedDetectsStrongDependence(t *testing.T) {
	d := gaussianPair(2000, 0.95, 73)
	got := MultiInfoBinned(d, BinnedOptions{PlainML: true})
	if got < 0.5 {
		t.Errorf("binned MI on rho=0.95 pair = %v, want clearly positive", got)
	}
}

func TestBinnedMLOverestimatesInHighDimension(t *testing.T) {
	// The paper's reported failure mode: in high dimension the sparse
	// joint histogram drives the ML multi-information far above truth
	// (here: truth = 0 for independent data).
	d := independentDataset(200, 8, 1, 79)
	got := MultiInfoBinned(d, BinnedOptions{PlainML: true})
	if got < 2 {
		t.Errorf("binned-ml on independent 8-dim data = %v, expected gross overestimate", got)
	}
}

func TestBinnedSingleVariableZero(t *testing.T) {
	if got := MultiInfoBinned(independentDataset(50, 1, 1, 81), BinnedOptions{}); got != 0 {
		t.Errorf("single variable = %v", got)
	}
}

func TestBinnedConstantData(t *testing.T) {
	d := NewDataset(20, []int{1, 1})
	for s := 0; s < 20; s++ {
		d.SetVar(s, 0, 1)
		d.SetVar(s, 1, 2)
	}
	got := MultiInfoBinned(d, BinnedOptions{})
	if math.IsNaN(got) || math.Abs(got) > 1e-9 {
		t.Fatalf("constant data MI = %v, want 0", got)
	}
}

func TestShrinkageEntropyUniformLimit(t *testing.T) {
	// With counts exactly uniform over the full alphabet the shrinkage
	// estimate equals the ML estimate equals log2 K.
	h := shrinkageEntropy([]int{5, 5, 5, 5}, 20, 4)
	if math.Abs(h-2) > 1e-9 {
		t.Fatalf("uniform shrinkage entropy = %v, want 2", h)
	}
}

func TestShrinkageEntropyPullsTowardUniform(t *testing.T) {
	// Shrinkage must raise the entropy estimate of a skewed empirical
	// distribution toward the uniform maximum.
	ml := EntropyFromCounts([]int{9, 1})
	js := shrinkageEntropy([]int{9, 1}, 10, 2)
	if js <= ml {
		t.Fatalf("shrinkage entropy %v not above ML %v", js, ml)
	}
	if js > 1 {
		t.Fatalf("shrinkage entropy %v exceeds log2 K", js)
	}
}

func TestShrinkageEntropySmallSampleFallback(t *testing.T) {
	if h := shrinkageEntropy([]int{1}, 1, 4); h != 0 {
		t.Fatalf("m=1 fallback entropy = %v", h)
	}
}

// --- decomposition ----------------------------------------------------------

func TestDecompositionNormalized(t *testing.T) {
	dec := Decomposition{Between: 2, Within: []float64{1, 1}}
	n := dec.Normalized()
	if math.Abs(n.Total()-1) > 1e-12 {
		t.Fatalf("normalized total = %v", n.Total())
	}
	if math.Abs(n.Between-0.5) > 1e-12 {
		t.Fatalf("normalized between = %v", n.Between)
	}
	zero := Decomposition{Within: []float64{0}}
	if z := zero.Normalized(); z.Between != 0 {
		t.Fatal("zero-total normalization changed values")
	}
}

func TestDecomposeSingletonGroupsAreZero(t *testing.T) {
	d := gaussianPair(200, 0.8, 91)
	dec := Decompose(d, [][]int{{0}, {1}}, KSGEstimator(4))
	if dec.Within[0] != 0 || dec.Within[1] != 0 {
		t.Fatal("singleton groups must have zero within-group MI")
	}
	// Between singleton groups the decomposition degenerates to the
	// total multi-information.
	total := MultiInfoKSGVariant(d, 4, KSG2)
	if math.Abs(dec.Between-total) > 1e-9 {
		t.Fatalf("between = %v, total = %v", dec.Between, total)
	}
}

func TestGroupsByLabel(t *testing.T) {
	groups := GroupsByLabel([]int{2, 0, 0, 2, 1})
	want := [][]int{{1, 2}, {4}, {0, 3}}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v", groups)
	}
	for g := range want {
		if len(groups[g]) != len(want[g]) {
			t.Fatalf("groups = %v", groups)
		}
		for i := range want[g] {
			if groups[g][i] != want[g][i] {
				t.Fatalf("groups = %v", groups)
			}
		}
	}
}

func TestGroupsByLabelSkipsEmptyLabels(t *testing.T) {
	groups := GroupsByLabel([]int{0, 3}) // labels 1, 2 unused
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
}
