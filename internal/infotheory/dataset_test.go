package infotheory

import (
	"strings"
	"testing"

	"repro/internal/vec"
)

func TestDatasetBasics(t *testing.T) {
	d := NewDataset(3, []int{2, 1, 3})
	if d.NumSamples() != 3 || d.NumVars() != 3 || d.TotalDim() != 6 {
		t.Fatal("dataset shape wrong")
	}
	if d.Dim(0) != 2 || d.Dim(1) != 1 || d.Dim(2) != 3 {
		t.Fatal("dims wrong")
	}
	d.SetVar(1, 2, 7, 8, 9)
	got := d.Var(1, 2)
	if got[0] != 7 || got[1] != 8 || got[2] != 9 {
		t.Fatalf("Var = %v", got)
	}
	// Row must contain the variables in order.
	d.SetVar(1, 0, 1, 2)
	d.SetVar(1, 1, 3)
	row := d.Row(1)
	want := []float64{1, 2, 3, 7, 8, 9}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("Row = %v", row)
		}
	}
}

func TestDatasetVarAliasesStorage(t *testing.T) {
	d := NewDataset(1, []int{2})
	v := d.Var(0, 0)
	v[0] = 42
	if d.Var(0, 0)[0] != 42 {
		t.Fatal("Var does not alias storage")
	}
}

func TestDatasetPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewDataset(0, []int{1}) },
		func() { NewDataset(2, nil) },
		func() { NewDataset(2, []int{0}) },
		func() { NewDataset(2, []int{1}).SetVar(0, 0, 1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFromFrames(t *testing.T) {
	frames := [][]vec.Vec2{
		{v2(1, 2), v2(3, 4)},
		{v2(5, 6), v2(7, 8)},
	}
	d := FromFrames(frames)
	if d.NumSamples() != 2 || d.NumVars() != 2 {
		t.Fatal("shape wrong")
	}
	if v := d.Var(1, 0); v[0] != 5 || v[1] != 6 {
		t.Fatalf("Var(1,0) = %v", v)
	}
}

func TestFromFramesRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged frames should panic")
		}
	}()
	FromFrames([][]vec.Vec2{{v2(1, 2)}, {v2(1, 2), v2(3, 4)}})
}

func TestSelect(t *testing.T) {
	d := NewDataset(2, []int{1, 2, 1})
	d.SetVar(0, 0, 10)
	d.SetVar(0, 1, 20, 21)
	d.SetVar(0, 2, 30)
	s := d.Select([]int{2, 0})
	if s.NumVars() != 2 || s.Dim(0) != 1 || s.Dim(1) != 1 {
		t.Fatal("Select shape wrong")
	}
	if s.Var(0, 0)[0] != 30 || s.Var(0, 1)[0] != 10 {
		t.Fatal("Select values wrong")
	}
	// Select copies: mutating the selection must not touch the source.
	s.Var(0, 0)[0] = -1
	if d.Var(0, 2)[0] != 30 {
		t.Fatal("Select aliases the source")
	}
}

func TestGrouped(t *testing.T) {
	d := NewDataset(2, []int{2, 1, 1})
	d.SetVar(0, 0, 1, 2)
	d.SetVar(0, 1, 3)
	d.SetVar(0, 2, 4)
	g := d.Grouped([][]int{{0, 2}, {1}})
	if g.NumVars() != 2 || g.Dim(0) != 3 || g.Dim(1) != 1 {
		t.Fatal("Grouped shape wrong")
	}
	v := g.Var(0, 0)
	if v[0] != 1 || v[1] != 2 || v[2] != 4 {
		t.Fatalf("Grouped var 0 = %v", v)
	}
	if g.Var(0, 1)[0] != 3 {
		t.Fatal("Grouped var 1 wrong")
	}
}

func TestJointDistIsMaxOverVariables(t *testing.T) {
	d := NewDataset(2, []int{2, 2})
	d.SetVar(0, 0, 0, 0)
	d.SetVar(0, 1, 0, 0)
	d.SetVar(1, 0, 3, 4) // var distance 5
	d.SetVar(1, 1, 1, 0) // var distance 1
	if got := d.jointDist(0, 1); got != 5 {
		t.Fatalf("jointDist = %v, want max(5,1) = 5", got)
	}
	if got := d.varDist2(0, 1, 1); got != 1 {
		t.Fatalf("varDist2 = %v", got)
	}
}

// mustPanicContaining runs f and requires it to panic with a message
// containing want.
func mustPanicContaining(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("no panic; want one mentioning %q", want)
			return
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Errorf("panic %v; want one mentioning %q", r, want)
		}
	}()
	f()
}

func TestSelectValidatesVariableIndices(t *testing.T) {
	d := NewDataset(3, []int{2, 1, 2})
	mustPanicContaining(t, "Select: variable index 3 out of range [0,3)", func() {
		d.Select([]int{0, 3})
	})
	mustPanicContaining(t, "Select: variable index -1 out of range [0,3)", func() {
		d.Select([]int{-1})
	})
	// Repeats are documented as legal in Select.
	if got := d.Select([]int{1, 1}); got.NumVars() != 2 {
		t.Errorf("Select with repeats: %d vars, want 2", got.NumVars())
	}
}

func TestGroupedValidatesMembers(t *testing.T) {
	d := NewDataset(3, []int{2, 1, 2})
	mustPanicContaining(t, "Grouped: variable index 5 out of range [0,3)", func() {
		d.Grouped([][]int{{0}, {5}})
	})
	mustPanicContaining(t, "Grouped: variable index -2 out of range [0,3)", func() {
		d.Grouped([][]int{{-2}})
	})
	mustPanicContaining(t, "Grouped: variable 1 repeated in group 0", func() {
		d.Grouped([][]int{{1, 2, 1}})
	})
	// The same variable in two different groups is a legal partial view.
	g := d.Grouped([][]int{{0, 1}, {1, 2}})
	if g.NumVars() != 2 || g.Dim(0) != 3 || g.Dim(1) != 3 {
		t.Errorf("cross-group repeat rejected: got %d vars, dims %d/%d", g.NumVars(), g.Dim(0), g.Dim(1))
	}
}
