package infotheory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/knn"
)

// engineDataset draws a random dataset with occasional duplicated samples
// and grid-snapped coordinates, so distance ties and the duplicate-clamp
// paths are exercised alongside the generic case.
func engineDataset(r *rand.Rand, m, n, maxDim int) *Dataset {
	dims := make([]int, n)
	for v := range dims {
		dims[v] = 1 + r.Intn(maxDim)
	}
	d := NewDataset(m, dims)
	for s := 0; s < m; s++ {
		for v := 0; v < n; v++ {
			vals := d.Var(s, v)
			for i := range vals {
				if r.Intn(3) == 0 {
					vals[i] = float64(r.Intn(4)) // exact ties
				} else {
					vals[i] = r.NormFloat64()
				}
			}
		}
	}
	for dup := 0; dup < m/10; dup++ {
		copy(d.Row(r.Intn(m)), d.Row(r.Intn(m)))
	}
	return d
}

// Property: the tree engine reproduces the brute-force reference bit for
// bit — same float64, not approximately — for every KSG variant, for the
// KL entropy over arbitrary variable subsets, and for the kernel
// baseline; and the result is independent of the Workers setting. One
// reused engine serves all shapes.
func TestEngineBitIdenticalToBrute(t *testing.T) {
	reused := NewEngine(0)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 12 + r.Intn(28)
		n := 2 + r.Intn(4)
		d := engineDataset(r, m, n, 3)
		k := 1 + r.Intn(4)

		for _, variant := range []KSGVariant{KSGPaper, KSG1, KSG2} {
			want := multiInfoKSGBrute(d, k, variant)
			if got := reused.MultiInfoKSGVariant(d, k, variant); got != want {
				t.Logf("seed %d: KSG %v: engine %v, brute %v", seed, variant, got, want)
				return false
			}
			par := NewEngine(1 + r.Intn(4))
			if got := par.MultiInfoKSGVariant(d, k, variant); got != want {
				t.Logf("seed %d: KSG %v with %d workers: engine %v, brute %v", seed, variant, par.Workers, got, want)
				return false
			}
		}

		vars := []int{r.Intn(n)}
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 && v != vars[0] {
				vars = append(vars, v)
			}
		}
		wantKL := differentialEntropyKLBrute(d, vars, k)
		if got := reused.DifferentialEntropyKL(d, vars, k); got != wantKL {
			t.Logf("seed %d: KL vars %v: engine %v, brute %v", seed, vars, got, wantKL)
			return false
		}

		wantKernel := func() float64 {
			var sum float64
			for v := 0; v < n; v++ {
				sum += kernelEntropyBrute(d, []int{v})
			}
			all := make([]int, n)
			for v := range all {
				all[v] = v
			}
			return sum - kernelEntropyBrute(d, all)
		}()
		if got := reused.MultiInfoKernel(d); got != wantKernel {
			t.Logf("seed %d: kernel: engine %v, brute %v", seed, got, wantKernel)
			return false
		}
		if got := NewEngine(1 + r.Intn(4)).MultiInfoKernel(d); got != wantKernel {
			t.Logf("seed %d: parallel kernel: engine %v, brute %v", seed, got, wantKernel)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: bit-identity holds on the flat-scan fallback too — variables
// wide enough that the joint space exceeds knn.TreeDimLimit.
func TestEngineBitIdenticalToBruteHighDim(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 12 + r.Intn(16)
		d := engineDataset(r, m, 2, knn.TreeDimLimit+2) // joint dim can exceed the tree limit
		k := 1 + r.Intn(3)
		var e Engine
		for _, variant := range []KSGVariant{KSGPaper, KSG1, KSG2} {
			if e.MultiInfoKSGVariant(d, k, variant) != multiInfoKSGBrute(d, k, variant) {
				return false
			}
		}
		all := []int{0, 1}
		return e.DifferentialEntropyKL(d, all, k) == differentialEntropyKLBrute(d, all, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: the entropy profile is bit-identical to composing the brute
// KL estimator, and stable across Workers.
func TestEngineEntropiesMatchBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 12 + r.Intn(20)
		n := 2 + r.Intn(3)
		d := engineDataset(r, m, n, 2)
		k := 1 + r.Intn(3)
		var want EntropyProfile
		all := make([]int, n)
		for v := range all {
			all[v] = v
		}
		want.Joint = differentialEntropyKLBrute(d, all, k)
		for v := 0; v < n; v++ {
			want.MarginalSum += differentialEntropyKLBrute(d, []int{v}, k)
		}
		for _, workers := range []int{0, 3} {
			if got := NewEngine(workers).Entropies(d, k); got != want {
				t.Logf("seed %d workers %d: %+v, want %+v", seed, workers, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Steady-state estimation on same-shaped datasets must not allocate: the
// trees, scratch matrices and digamma stores are all recycled.
func TestEngineSteadyStateAllocationFree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const m, n, k = 96, 6, 4
	d := engineDataset(r, m, n, 2)
	e := NewEngine(0)
	e.MultiInfoKSGVariant(d, k, KSG2) // warm-up
	e.Entropies(d, k)
	refill := func() {
		for s := 0; s < m; s++ {
			row := d.Row(s)
			for i := range row {
				row[i] = r.NormFloat64()
			}
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		refill()
		e.MultiInfoKSGVariant(d, k, KSG2)
		e.MultiInfoKSGVariant(d, k, KSGPaper)
		e.Entropies(d, k)
	})
	if allocs != 0 {
		t.Errorf("steady-state estimation allocates %v allocs/op, want 0", allocs)
	}
}

// Regression (duplicate-sample rule): a single duplicated pair must shift
// the KL entropy estimate by an in-distribution amount, not inject the
// ≈ −10³-bit outlier the old 1e-300 floor produced.
func TestKLEntropyDuplicateClamp(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const m = 60
	d := NewDataset(m, []int{1})
	for s := 0; s < m; s++ {
		d.Var(s, 0)[0] = r.NormFloat64()
	}
	clean := DifferentialEntropyKL(d, []int{0}, 1)
	copy(d.Row(1), d.Row(0)) // one exact duplicate pair
	dup := DifferentialEntropyKL(d, []int{0}, 1)
	if math.IsInf(dup, 0) || math.IsNaN(dup) {
		t.Fatalf("duplicate pair made the estimate non-finite: %v", dup)
	}
	if diff := math.Abs(dup - clean); diff > 3 {
		t.Errorf("duplicate pair shifted the estimate by %v bits (clean %v, dup %v); want an in-distribution shift", diff, clean, dup)
	}
	// Old behaviour for reference: two ε = 1e-300 terms contribute
	// 2·log(1e-300)/m ≈ −23 nats to the mean — a catastrophic outlier.

	// Fully atomic data: every ε is zero, the entropy is −Inf by the
	// documented rule.
	for s := 0; s < m; s++ {
		d.Var(s, 0)[0] = 2.5
	}
	if got := DifferentialEntropyKL(d, []int{0}, 1); !math.IsInf(got, -1) {
		t.Errorf("all-identical samples: entropy = %v, want -Inf", got)
	}
}

// The engine must keep working when one instance is reused across
// datasets of different shapes (the Decompose call pattern: full set,
// grouped views, per-group selections, interleaved).
func TestEngineReuseAcrossShapes(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	e := NewEngine(2)
	for trial := 0; trial < 10; trial++ {
		d := engineDataset(r, 10+r.Intn(30), 2+r.Intn(5), 3)
		k := 1 + r.Intn(3)
		for _, variant := range []KSGVariant{KSGPaper, KSG1, KSG2} {
			if got, want := e.MultiInfoKSGVariant(d, k, variant), multiInfoKSGBrute(d, k, variant); got != want {
				t.Fatalf("trial %d variant %v: reused engine %v, brute %v", trial, variant, got, want)
			}
		}
		if d.NumVars() >= 3 {
			sub := d.Select([]int{0, 2})
			if got, want := e.MultiInfoKSGVariant(sub, k, KSG2), multiInfoKSGBrute(sub, k, KSG2); got != want {
				t.Fatalf("trial %d: reused engine on selected view %v, brute %v", trial, got, want)
			}
			// Grouped views merge variables into wide joint blocks —
			// possibly past knn.TreeDimLimit, the flat-scan shape.
			cut := 1 + r.Intn(d.NumVars()-1)
			var g1, g2 []int
			for v := 0; v < d.NumVars(); v++ {
				if v < cut {
					g1 = append(g1, v)
				} else {
					g2 = append(g2, v)
				}
			}
			grp := d.Grouped([][]int{g1, g2})
			if got, want := e.MultiInfoKSGVariant(grp, k, KSG2), multiInfoKSGBrute(grp, k, KSG2); got != want {
				t.Fatalf("trial %d: reused engine on grouped view %v, brute %v", trial, got, want)
			}
		}
	}
}
