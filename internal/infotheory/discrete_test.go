package infotheory

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestEntropyFromCountsKnown(t *testing.T) {
	if h := EntropyFromCounts([]int{1, 1}); math.Abs(h-1) > 1e-12 {
		t.Errorf("fair coin entropy = %v, want 1", h)
	}
	if h := EntropyFromCounts([]int{1, 1, 1, 1}); math.Abs(h-2) > 1e-12 {
		t.Errorf("uniform 4 entropy = %v, want 2", h)
	}
	if h := EntropyFromCounts([]int{5, 0, 0}); h != 0 {
		t.Errorf("deterministic entropy = %v, want 0", h)
	}
	if h := EntropyFromCounts(nil); h != 0 {
		t.Errorf("empty entropy = %v", h)
	}
	// p = (3/4, 1/4): H = 2 − 3/4·log2(3) ≈ 0.8113.
	if h := EntropyFromCounts([]int{3, 1}); math.Abs(h-(2-0.75*math.Log2(3))) > 1e-12 {
		t.Errorf("biased entropy = %v", h)
	}
}

func TestEntropyNegativeCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative count should panic")
		}
	}()
	EntropyFromCounts([]int{-1})
}

func TestEntropyFromProbs(t *testing.T) {
	if h := EntropyFromProbs([]float64{0.5, 0.5}); math.Abs(h-1) > 1e-12 {
		t.Errorf("probs entropy = %v", h)
	}
	// Unnormalised weights are normalised.
	if h := EntropyFromProbs([]float64{2, 2}); math.Abs(h-1) > 1e-12 {
		t.Errorf("weights entropy = %v", h)
	}
	if h := EntropyFromProbs([]float64{0, 1}); h != 0 {
		t.Errorf("deterministic probs entropy = %v", h)
	}
}

func TestDiscreteEntropyAndJoint(t *testing.T) {
	// X uniform on {0,1}; Y = X; Z independent uniform on {0,1}.
	var rows [][]int
	for x := 0; x < 2; x++ {
		for z := 0; z < 2; z++ {
			rows = append(rows, []int{x, x, z})
		}
	}
	d := NewDiscreteDataset(rows)
	if h := d.Entropy(0); math.Abs(h-1) > 1e-12 {
		t.Errorf("H(X) = %v", h)
	}
	if h := d.JointEntropy([]int{0, 1}); math.Abs(h-1) > 1e-12 {
		t.Errorf("H(X,Y) = %v, want 1 (Y=X)", h)
	}
	if h := d.JointEntropy([]int{0, 2}); math.Abs(h-2) > 1e-12 {
		t.Errorf("H(X,Z) = %v, want 2", h)
	}
}

func TestDiscreteMutualInfo(t *testing.T) {
	var rows [][]int
	for x := 0; x < 2; x++ {
		for z := 0; z < 2; z++ {
			rows = append(rows, []int{x, x, z})
		}
	}
	d := NewDiscreteDataset(rows)
	if mi := d.MutualInfo(0, 1); math.Abs(mi-1) > 1e-12 {
		t.Errorf("I(X;X) = %v, want 1", mi)
	}
	if mi := d.MutualInfo(0, 2); math.Abs(mi) > 1e-12 {
		t.Errorf("I(X;Z) = %v, want 0", mi)
	}
}

func TestDiscreteMultiInfo(t *testing.T) {
	// Three copies of the same fair bit: I = ΣH − H_joint = 3 − 1 = 2.
	rows := [][]int{{0, 0, 0}, {1, 1, 1}}
	d := NewDiscreteDataset(rows)
	if mi := d.MultiInfo([]int{0, 1, 2}); math.Abs(mi-2) > 1e-12 {
		t.Errorf("multi-info of triplicated bit = %v, want 2", mi)
	}
	if mi := d.MultiInfo([]int{0}); mi != 0 {
		t.Errorf("single-variable multi-info = %v, want 0", mi)
	}
}

// TestDecompositionIdentityExact verifies Eq. (5) exactly on plug-in
// estimates: I(X₁,…,X₄) = I(X̃₁,X̃₂) + I(X₁,X₂) + I(X₃,X₄) for the
// grouping X̃₁ = (X₁,X₂), X̃₂ = (X₃,X₄), on arbitrary random data.
func TestDecompositionIdentityExact(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		m := 64
		rows := make([][]int, m)
		for s := range rows {
			// Correlated structure: x1 drives x2, x3 drives x4, and
			// a global bit couples the halves.
			g := r.IntN(2)
			x1 := r.IntN(3)
			x2 := (x1 + r.IntN(2)) % 3
			x3 := (g + r.IntN(2)) % 2
			x4 := (x3 + g) % 2
			rows[s] = []int{x1, x2, x3, x4}
		}
		d := NewDiscreteDataset(rows)
		total := d.MultiInfo([]int{0, 1, 2, 3})
		between := d.MultiInfoGrouped([][]int{{0, 1}, {2, 3}})
		within := d.MultiInfo([]int{0, 1}) + d.MultiInfo([]int{2, 3})
		if math.Abs(total-(between+within)) > 1e-9 {
			t.Fatalf("trial %d: decomposition broken: %v vs %v + %v", trial, total, between, within)
		}
	}
}

func TestDiscreteDatasetShape(t *testing.T) {
	d := NewDiscreteDataset([][]int{{1, 2}, {3, 4}, {5, 6}})
	if d.NumSamples() != 3 || d.NumVars() != 2 {
		t.Fatal("shape wrong")
	}
	if d.At(1, 1) != 4 {
		t.Fatal("At wrong")
	}
}

func TestDiscreteDatasetPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewDiscreteDataset(nil) },
		func() { NewDiscreteDataset([][]int{{1}, {1, 2}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestJointKeyDistinguishesLargeValues(t *testing.T) {
	// Values beyond one byte must not collide in the key encoding.
	d := NewDiscreteDataset([][]int{{256}, {1}, {65536}})
	if h := d.Entropy(0); math.Abs(h-math.Log2(3)) > 1e-12 {
		t.Fatalf("entropy = %v, want log2(3): key collision?", h)
	}
}
