package infotheory

import (
	"math"
	"sort"

	"repro/internal/mathx"
)

// BinnedOptions configures the shrinkage binned estimator.
type BinnedOptions struct {
	// Bins is the number of equal-width bins per scalar dimension;
	// 0 means the default (8).
	Bins int
	// Shrink disables the James–Stein shrinkage when false is forced by
	// setting PlainML; by default shrinkage is on.
	PlainML bool
}

func (o BinnedOptions) withDefaults() BinnedOptions {
	if o.Bins == 0 {
		o.Bins = 8
	}
	return o
}

// MultiInfoBinned estimates the multi-information of the dataset in bits by
// discretising every scalar dimension into equal-width bins over its sample
// range and computing Σ_v Ĥ(X_v) − Ĥ(X) from cell frequencies, with each
// entropy estimated by the James–Stein shrinkage estimator of Hausser &
// Strimmer (the paper's binning baseline, Sec. 5.3 [15]).
//
// In high dimension the joint histogram support (Bins^D cells) vastly
// exceeds the sample count, the joint entropy saturates near log₂(m), and
// the estimator grossly overestimates multi-information — exactly the
// failure mode the paper reports ("overestimated the multi-information in
// higher dimension due to the sparse sampling"). The estimator is provided
// to reproduce that comparison.
func MultiInfoBinned(d *Dataset, opt BinnedOptions) float64 {
	if d.NumVars() < 2 {
		return 0
	}
	opt = opt.withDefaults()
	var sum float64
	for v := 0; v < d.NumVars(); v++ {
		sum += binnedEntropy(d, []int{v}, opt)
	}
	all := make([]int, d.NumVars())
	for v := range all {
		all[v] = v
	}
	return sum - binnedEntropy(d, all, opt)
}

// binnedEntropy returns the (shrinkage) entropy in bits of the joint
// distribution of the given variables after equal-width binning.
func binnedEntropy(d *Dataset, vars []int, opt BinnedOptions) float64 {
	m := d.NumSamples()
	b := opt.Bins

	// Per-dimension ranges for the selected variables.
	D := 0
	for _, v := range vars {
		D += d.Dim(v)
	}
	lo := make([]float64, D)
	hi := make([]float64, D)
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	flat := func(s int) []float64 {
		row := make([]float64, 0, D)
		for _, v := range vars {
			row = append(row, d.Var(s, v)...)
		}
		return row
	}
	for s := 0; s < m; s++ {
		for i, x := range flat(s) {
			if x < lo[i] {
				lo[i] = x
			}
			if x > hi[i] {
				hi[i] = x
			}
		}
	}

	// Histogram over occupied cells, keyed by packed bin indices.
	counts := map[string]int{}
	key := make([]byte, D)
	for s := 0; s < m; s++ {
		for i, x := range flat(s) {
			w := hi[i] - lo[i]
			bin := 0
			if w > 0 {
				bin = int(float64(b) * (x - lo[i]) / w)
				if bin >= b {
					bin = b - 1
				}
			}
			key[i] = byte(bin)
		}
		counts[string(key)]++
	}

	// Number of possible cells K = b^D, as float (can be astronomically
	// large; only 1/K and (K − occupied) enter the formulas).
	K := math.Pow(float64(b), float64(D))

	// Flatten the histogram in sorted-key order: map iteration order is
	// randomised per run, and a float sum in varying order varies at
	// rounding level — the determinism contract (bit-identical repeat
	// runs, DESIGN.md) extends to the baseline estimators.
	flatCounts := sortedCounts(counts)
	if opt.PlainML {
		return EntropyFromCounts(flatCounts)
	}
	return shrinkageEntropy(flatCounts, m, K)
}

// sortedCounts extracts the histogram counts in lexicographic cell-key
// order, the deterministic iteration the entropy sums rely on.
func sortedCounts(counts map[string]int) []int {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, len(keys))
	for i, k := range keys {
		out[i] = counts[k]
	}
	return out
}

// shrinkageEntropy implements the Hausser–Strimmer James–Stein entropy
// estimator: cell probabilities are shrunk toward the uniform target
// t = 1/K with data-driven intensity
//
//	λ = (1 − Σ θ̂²) / ((m−1) · Σ (t − θ̂)²)
//
// (clamped to [0, 1]), and the plug-in entropy of the shrunk distribution
// is returned in bits, including the contribution of the K − n_occupied
// unobserved cells, each carrying probability λ·t.
func shrinkageEntropy(counts []int, m int, K float64) float64 {
	if m < 2 {
		return EntropyFromCounts(counts)
	}
	t := 1 / K
	var sumSq mathx.KahanSum
	for _, c := range counts {
		p := float64(c) / float64(m)
		sumSq.Add(p * p)
	}
	// Σ_cells (t − θ̂)² over all K cells = Σ_occupied (t−θ̂)² + (K−n)·t².
	var denom mathx.KahanSum
	for _, c := range counts {
		p := float64(c) / float64(m)
		denom.Add((t - p) * (t - p))
	}
	unoccupied := K - float64(len(counts))
	denom.Add(unoccupied * t * t)

	lambda := 0.0
	if denom.Sum() > 0 {
		lambda = (1 - sumSq.Sum()) / (float64(m-1) * denom.Sum())
	}
	lambda = mathx.Clamp(lambda, 0, 1)

	var h mathx.KahanSum
	for _, c := range counts {
		p := lambda*t + (1-lambda)*float64(c)/float64(m)
		if p > 0 {
			h.Add(-p * math.Log2(p))
		}
	}
	if lambda > 0 && unoccupied > 0 {
		p := lambda * t
		h.Add(-unoccupied * p * math.Log2(p))
	}
	return h.Sum()
}
