package infotheory

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/rngx"
)

// equicorrelatedDataset draws m samples of n 1-D jointly Gaussian
// variables with pairwise correlation rho: X_v = √ρ·Z₀ + √(1−ρ)·Z_v.
// The multi-information is analytic — see equicorrelatedMI.
func equicorrelatedDataset(m, n int, rho float64, seed uint64) *Dataset {
	r := rngx.New(seed)
	dims := make([]int, n)
	for v := range dims {
		dims[v] = 1
	}
	d := NewDataset(m, dims)
	a, b := math.Sqrt(rho), math.Sqrt(1-rho)
	for s := 0; s < m; s++ {
		z0 := r.NormFloat64()
		for v := 0; v < n; v++ {
			d.Var(s, v)[0] = a*z0 + b*r.NormFloat64()
		}
	}
	return d
}

// equicorrelatedMI returns the analytic multi-information in bits of n
// equicorrelated standard Gaussians: −½ log₂ det Σ with
// det Σ = (1−ρ)^{n−1} (1 + (n−1)ρ).
func equicorrelatedMI(n int, rho float64) float64 {
	det := math.Pow(1-rho, float64(n-1)) * (1 + float64(n-1)*rho)
	return -0.5 * mathx.Log2(math.Log(det))
}

// TestApproxFullSubsampleMatchesExact: at r = m every evaluation point
// is used, so the estimate must agree with the exact tier up to
// summation-grouping rounding (the approximate tier groups ψ terms per
// sample) and the interval must collapse to the point.
func TestApproxFullSubsampleMatchesExact(t *testing.T) {
	d := scalingDataset(300, 4, 20)
	for _, variant := range []KSGVariant{KSGPaper, KSG1, KSG2} {
		exact := NewEngine(0).MultiInfoKSGVariant(d, DefaultBenchK, variant)
		got := NewEngine(0).MultiInfoKSGApprox(d, DefaultBenchK, variant, ApproxOptions{Subsample: 300, Seed: 1})
		if math.Abs(got.MI-exact) > 1e-9 {
			t.Errorf("%v: r=m approx %v vs exact %v", variant, got.MI, exact)
		}
		if got.StdErr != 0 || got.CILow != got.MI || got.CIHigh != got.MI {
			t.Errorf("%v: r=m interval did not collapse: %+v", variant, got)
		}
		if got.Evals != 300 {
			t.Errorf("%v: Evals = %d, want 300", variant, got.Evals)
		}
	}
}

// TestApproxWithinOwnCI pins the accuracy contract on equicorrelated
// Gaussians with analytic MI, using the pipeline's default KSG-2
// formulation (the paper's strict-count formulation carries a large
// known bias on 1-D marginals, which would test the estimator's bias,
// not the subsampling): at a fixed seed set, the subsampled estimate's
// own 95% interval must cover the exact-tier estimate (the quantity the
// interval is an interval for), and — since the exact KSG-2 estimate
// itself sits close to the analytic value at this m — the analytic MI
// must lie within the interval widened by the exact tier's own bias
// allowance.
func TestApproxWithinOwnCI(t *testing.T) {
	const m, n, rho, k, r = 3000, 3, 0.5, 4, 300
	analytic := equicorrelatedMI(n, rho)
	for seed := uint64(1); seed <= 5; seed++ {
		d := equicorrelatedDataset(m, n, rho, seed)
		exact := NewEngine(0).MultiInfoKSGVariant(d, k, KSG2)
		if math.Abs(exact-analytic) > 0.15 {
			t.Fatalf("seed %d: exact estimate %v too far from analytic %v", seed, exact, analytic)
		}
		est := NewEngine(0).MultiInfoKSGApprox(d, k, KSG2, ApproxOptions{Subsample: r, Seed: seed, Sequence: 9})
		if est.StdErr <= 0 {
			t.Fatalf("seed %d: no error bar: %+v", seed, est)
		}
		if exact < est.CILow || exact > est.CIHigh {
			t.Errorf("seed %d: exact %v outside approx CI [%v, %v]", seed, exact, est.CILow, est.CIHigh)
		}
		if analytic < est.CILow-0.15 || analytic > est.CIHigh+0.15 {
			t.Errorf("seed %d: analytic %v outside widened CI [%v, %v]", seed, analytic, est.CILow-0.15, est.CIHigh+0.15)
		}
	}
}

// TestApproxBitIdenticalAcrossWorkers is the scheduling-invariance
// contract: the full ApproxEstimate must be byte-equal for every
// Workers setting.
func TestApproxBitIdenticalAcrossWorkers(t *testing.T) {
	d := scalingDataset(500, 6, 21)
	opts := ApproxOptions{Subsample: 120, Seed: 3, Sequence: 17}
	want := NewEngine(1).MultiInfoKSGApprox(d, DefaultBenchK, KSG2, opts)
	for _, workers := range []int{2, 8} {
		got := NewEngine(workers).MultiInfoKSGApprox(d, DefaultBenchK, KSG2, opts)
		if got != want {
			t.Errorf("Workers=%d: %+v differs from serial %+v", workers, got, want)
		}
	}
}

// TestApproxIndependentOfEngineHistory is the stable-id contract at the
// engine level: an engine that previously estimated other datasets —
// whose cached Morton permutation and refresh decisions therefore
// differ from a fresh engine's — must still produce byte-equal results.
func TestApproxIndependentOfEngineHistory(t *testing.T) {
	target := scalingDataset(400, 4, 22)
	opts := ApproxOptions{Subsample: 80, Seed: 5, Sequence: 2}
	want := NewEngine(0).MultiInfoKSGApprox(target, DefaultBenchK, KSGPaper, opts)

	// Same shape, different coordinates first: the cached permutation
	// was computed for otherSame, and serving target goes through the
	// Refresh (or internal-rebuild) path with that stale ordering.
	otherSame := scalingDataset(400, 4, 23)
	e := NewEngine(0)
	_ = e.MultiInfoKSGApprox(otherSame, DefaultBenchK, KSGPaper, ApproxOptions{Subsample: 80, Seed: 1})
	if got := e.MultiInfoKSGApprox(target, DefaultBenchK, KSGPaper, opts); got != want {
		t.Errorf("after same-shape history: %+v, want %+v", got, want)
	}

	// Different shape in between: forces a layout rebuild, another
	// history a fresh engine never saw.
	otherShape := scalingDataset(150, 7, 24)
	_ = e.MultiInfoKSGApprox(otherShape, DefaultBenchK, KSGPaper, ApproxOptions{Subsample: 10, Seed: 1})
	if got := e.MultiInfoKSGApprox(target, DefaultBenchK, KSGPaper, opts); got != want {
		t.Errorf("after shape-change history: %+v, want %+v", got, want)
	}

	// Interleaved exact-tier calls must not perturb the approximate
	// tier either (they share the engine but not the working set).
	_ = e.MultiInfoKSG(otherSame, DefaultBenchK)
	if got := e.MultiInfoKSGApprox(target, DefaultBenchK, KSGPaper, opts); got != want {
		t.Errorf("after exact-tier interleaving: %+v, want %+v", got, want)
	}
}

// TestApproxDrawDependsOnSeedAndSequence: different seeds or sequence
// numbers must select different evaluation subsets (distinct estimates
// on continuous data), while identical options repeat exactly.
func TestApproxDrawDependsOnSeedAndSequence(t *testing.T) {
	d := scalingDataset(400, 4, 25)
	base := ApproxOptions{Subsample: 40, Seed: 1, Sequence: 1}
	a := NewEngine(0).MultiInfoKSGApprox(d, DefaultBenchK, KSGPaper, base)
	b := NewEngine(0).MultiInfoKSGApprox(d, DefaultBenchK, KSGPaper, base)
	if a != b {
		t.Fatalf("repeat run differs: %+v vs %+v", a, b)
	}
	seed2 := base
	seed2.Seed = 2
	seq2 := base
	seq2.Sequence = 2
	if c := NewEngine(0).MultiInfoKSGApprox(d, DefaultBenchK, KSGPaper, seed2); c.MI == a.MI {
		t.Error("changing Seed did not change the draw")
	}
	if c := NewEngine(0).MultiInfoKSGApprox(d, DefaultBenchK, KSGPaper, seq2); c.MI == a.MI {
		t.Error("changing Sequence did not change the draw")
	}
}

// TestApproxSteadyStateAllocationFree: across same-shaped datasets (the
// pipeline's consecutive steps, served by the Refresh path) a warm
// serial engine must not allocate.
func TestApproxSteadyStateAllocationFree(t *testing.T) {
	e := NewEngine(0)
	frames := []*Dataset{
		scalingDataset(256, 4, 30),
		scalingDataset(256, 4, 31),
		scalingDataset(256, 4, 32),
	}
	opts := ApproxOptions{Subsample: 64, Seed: 1}
	for _, d := range frames { // warm every buffer of the double-buffer cycle
		_ = e.MultiInfoKSGApprox(d, DefaultBenchK, KSG2, opts)
	}
	step := 0
	allocs := testing.AllocsPerRun(12, func() {
		opts.Sequence = uint64(step % 3)
		_ = e.MultiInfoKSGApprox(frames[step%3], DefaultBenchK, KSG2, opts)
		step++
	})
	if allocs != 0 {
		t.Errorf("steady-state approximate estimate allocates %v allocs/op, want 0", allocs)
	}
}

// TestApproxEdgeCases: r = 1 yields a zero-width interval around a
// finite estimate; fewer than two variables is zero by definition;
// invalid subsample sizes panic.
func TestApproxEdgeCases(t *testing.T) {
	d := scalingDataset(50, 3, 33)
	one := NewEngine(0).MultiInfoKSGApprox(d, 2, KSGPaper, ApproxOptions{Subsample: 1, Seed: 1})
	if one.StdErr != 0 || math.IsNaN(one.MI) {
		t.Errorf("r=1: %+v", one)
	}
	single := scalingDataset(50, 1, 34)
	if z := NewEngine(0).MultiInfoKSGApprox(single, 2, KSGPaper, ApproxOptions{Subsample: 10, Seed: 1}); z != (ApproxEstimate{}) {
		t.Errorf("single variable: %+v, want zero", z)
	}
	for _, r := range []int{0, 51} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Subsample=%d did not panic", r)
				}
			}()
			NewEngine(0).MultiInfoKSGApprox(d, 2, KSGPaper, ApproxOptions{Subsample: r, Seed: 1})
		}()
	}
}
