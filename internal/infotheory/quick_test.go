package infotheory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func quickDataset(r *rand.Rand, m, n int) *Dataset {
	dims := make([]int, n)
	for v := range dims {
		dims[v] = 1 + r.Intn(2)
	}
	d := NewDataset(m, dims)
	for s := 0; s < m; s++ {
		for v := 0; v < n; v++ {
			vals := d.Var(s, v)
			for i := range vals {
				vals[i] = r.NormFloat64()
			}
		}
	}
	return d
}

// Property: multi-information is invariant under permutation of the
// observer variables (Eq. 3 is symmetric), for all KSG variants.
func TestQuickKSGVariablePermutationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 24 + r.Intn(16)
		n := 2 + r.Intn(4)
		d := quickDataset(r, m, n)
		perm := r.Perm(n)
		shuffled := d.Select(perm)
		for _, variant := range []KSGVariant{KSGPaper, KSG1, KSG2} {
			a := MultiInfoKSGVariant(d, 3, variant)
			b := MultiInfoKSGVariant(shuffled, 3, variant)
			if math.Abs(a-b) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Select of all variables in order reproduces the dataset; the
// estimate is unchanged.
func TestQuickSelectIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := quickDataset(r, 20+r.Intn(10), 2+r.Intn(3))
		all := make([]int, d.NumVars())
		for v := range all {
			all[v] = v
		}
		sel := d.Select(all)
		for s := 0; s < d.NumSamples(); s++ {
			for v := 0; v < d.NumVars(); v++ {
				a, b := d.Var(s, v), sel.Var(s, v)
				for i := range a {
					if a[i] != b[i] {
						return false
					}
				}
			}
		}
		return MultiInfoKSGVariant(d, 3, KSG2) == MultiInfoKSGVariant(sel, 3, KSG2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: grouping every variable into its own singleton group leaves
// the joint metric unchanged, so the grouped estimate equals the original.
func TestQuickSingletonGroupingIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := quickDataset(r, 20+r.Intn(10), 2+r.Intn(3))
		groups := make([][]int, d.NumVars())
		for v := range groups {
			groups[v] = []int{v}
		}
		g := d.Grouped(groups)
		return MultiInfoKSGVariant(d, 3, KSG2) == MultiInfoKSGVariant(g, 3, KSG2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the discrete decomposition identity (Eq. 5) holds exactly for
// arbitrary random discrete data and arbitrary contiguous groupings.
func TestQuickDiscreteDecompositionIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 30 + r.Intn(40)
		n := 4 + r.Intn(3)
		rows := make([][]int, m)
		for s := range rows {
			row := make([]int, n)
			for v := range row {
				row[v] = r.Intn(3)
			}
			rows[s] = row
		}
		d := NewDiscreteDataset(rows)
		// Split variables into two contiguous groups at a random cut.
		cut := 1 + r.Intn(n-1)
		g1 := make([]int, 0, cut)
		g2 := make([]int, 0, n-cut)
		all := make([]int, n)
		for v := 0; v < n; v++ {
			all[v] = v
			if v < cut {
				g1 = append(g1, v)
			} else {
				g2 = append(g2, v)
			}
		}
		total := d.MultiInfo(all)
		decomposed := d.MultiInfoGrouped([][]int{g1, g2}) + d.MultiInfo(g1) + d.MultiInfo(g2)
		return math.Abs(total-decomposed) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: discrete entropy is bounded by 0 ≤ H ≤ log₂(support size) and
// invariant under relabeling of values.
func TestQuickDiscreteEntropyBoundsAndRelabeling(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 10 + r.Intn(60)
		rows := make([][]int, m)
		support := map[int]bool{}
		for s := range rows {
			v := r.Intn(6)
			rows[s] = []int{v}
			support[v] = true
		}
		d := NewDiscreteDataset(rows)
		h := d.Entropy(0)
		if h < -1e-12 || h > math.Log2(float64(len(support)))+1e-12 {
			return false
		}
		// Relabel: v → 7·v + 3 is injective on small ints.
		relabeled := make([][]int, m)
		for s := range rows {
			relabeled[s] = []int{7*rows[s][0] + 3}
		}
		h2 := NewDiscreteDataset(relabeled).Entropy(0)
		return math.Abs(h-h2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the KSG estimate is invariant under a global rigid shift of
// every variable (translation invariance of the metric), for random data.
func TestQuickKSGTranslationInvariance(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		d := quickDataset(r, 25, 3)
		before := MultiInfoKSGVariant(d, 3, KSG2)
		for s := 0; s < d.NumSamples(); s++ {
			for v := 0; v < d.NumVars(); v++ {
				vals := d.Var(s, v)
				for i := range vals {
					vals[i] += shift
				}
			}
		}
		after := MultiInfoKSGVariant(d, 3, KSG2)
		return math.Abs(before-after) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
