package infotheory

import (
	"math"
	"sort"

	"repro/internal/mathx"
)

// DifferentialEntropyKL estimates the differential entropy h(X) in bits of
// the joint distribution of the given dataset variables with the
// Kozachenko–Leonenko k-NN estimator:
//
//	ĥ = ψ(m) − ψ(k) + log c_D + (D/m) Σ_s log ε_s
//
// where ε_s is the distance from sample s to its k-th nearest neighbour
// (Euclidean), D the dimension and c_D the volume of the D-dimensional
// unit ball. It is the entropy-side companion of the KSG estimator (KSG is
// derived from it) and powers the entropy-evolution diagnostics of
// Secs. 6/7.1: the paper explains rising multi-information as the joint
// entropy of the collective falling faster than the marginal observer
// entropies.
//
// Duplicate samples make ε_s = 0 and log ε_s undefined. The rule: a zero
// ε_s is clamped to the smallest positive k-th-neighbour distance
// observed in the dataset — the finest resolution the data actually
// exhibits — so a single duplicated pair shifts the mean by one
// in-distribution term instead of injecting a ≈ −10³-bit outlier (the
// old 1e-300 floor). If every sample's ε is zero the distribution is
// (empirically) purely atomic and the differential entropy is −Inf.
//
// It runs on a fresh tree engine; reuse an Engine to amortise the scratch
// storage across calls.
func DifferentialEntropyKL(d *Dataset, vars []int, k int) float64 {
	var e Engine
	return e.DifferentialEntropyKL(d, vars, k)
}

// differentialEntropyKLBrute is the retained brute-force reference
// (O(m²·D) sweeps with a full sort per sample); the engine must
// reproduce it bit for bit.
func differentialEntropyKLBrute(d *Dataset, vars []int, k int) float64 {
	m := d.NumSamples()
	if k < 1 || k >= m {
		panic("infotheory: KL entropy needs 1 <= k < m")
	}
	D := 0
	for _, v := range vars {
		D += d.Dim(v)
	}
	rows := make([][]float64, m)
	for s := 0; s < m; s++ {
		row := make([]float64, 0, D)
		for _, v := range vars {
			row = append(row, d.Var(s, v)...)
		}
		rows[s] = row
	}

	eps := make([]float64, m)
	dists := make([]float64, 0, m-1)
	for s := 0; s < m; s++ {
		dists = dists[:0]
		for t := 0; t < m; t++ {
			if t == s {
				continue
			}
			var d2 float64
			for i := range rows[s] {
				diff := rows[s][i] - rows[t][i]
				d2 += diff * diff
			}
			dists = append(dists, d2)
		}
		sort.Float64s(dists)
		eps[s] = math.Sqrt(dists[k-1])
	}
	return klReduce(eps, k, D)
}

// klReduce finishes the Kozachenko–Leonenko estimate from the per-sample
// k-th-neighbour distances, applying the duplicate rule documented on
// DifferentialEntropyKL. Both the brute reference and the tree engine end
// in this exact reduction (fixed summation order), which is what makes
// their results — and the engine's results for any Workers setting —
// bit-identical.
func klReduce(eps []float64, k, D int) float64 {
	m := len(eps)
	minPos := math.Inf(1)
	for _, e := range eps {
		if e > 0 && e < minPos {
			minPos = e
		}
	}
	if math.IsInf(minPos, 1) {
		// Every sample has ≥ k exact duplicates: the empirical
		// distribution is purely atomic.
		return math.Inf(-1)
	}
	var sumLogEps mathx.KahanSum
	for _, e := range eps {
		if e <= 0 {
			e = minPos
		}
		sumLogEps.Add(math.Log(e))
	}
	nats := mathx.Digamma(float64(m)) - mathx.Digamma(float64(k)) +
		logUnitBallVolume(D) + float64(D)*sumLogEps.Sum()/float64(m)
	return mathx.Log2(nats)
}

// logUnitBallVolume returns ln of the volume of the D-dimensional unit
// ball, c_D = π^{D/2} / Γ(D/2 + 1).
func logUnitBallVolume(D int) float64 {
	lg, _ := math.Lgamma(float64(D)/2 + 1)
	return float64(D)/2*math.Log(math.Pi) - lg
}

// EntropyProfile summarises the entropy structure of one observer dataset:
// the joint differential entropy, the sum of marginal observer entropies,
// and their difference (which is exactly the multi-information, Eq. 3,
// evaluated with the same entropy estimator).
type EntropyProfile struct {
	// Joint is ĥ(W₁,…,W_n) in bits.
	Joint float64
	// MarginalSum is Σ_v ĥ(W_v) in bits.
	MarginalSum float64
}

// MultiInfo returns MarginalSum − Joint, the entropy-difference form of
// multi-information.
func (p EntropyProfile) MultiInfo() float64 { return p.MarginalSum - p.Joint }

// Entropies evaluates the profile with the Kozachenko–Leonenko estimator.
// It makes the paper's Fig. 4 narrative measurable: "in the beginning the
// sum of the marginal entropies is as large as the overall entropy …
// over time the marginal entropies decrease, however the overall entropy
// decreases even faster".
func Entropies(d *Dataset, k int) EntropyProfile {
	var e Engine
	return e.Entropies(d, k)
}
