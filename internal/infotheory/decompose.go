package infotheory

// Estimator evaluates a multi-information estimate in bits on a dataset.
// The stock choices are closures over MultiInfoKSG, MultiInfoKernel and
// MultiInfoBinned; Decompose applies the same estimator to every term so
// the decomposition is internally consistent.
type Estimator func(*Dataset) float64

// KSGEstimator returns the recommended KSG estimator (algorithm 2, the
// bias-corrected form of the paper's Eq. 18) with the given k.
func KSGEstimator(k int) Estimator {
	return func(d *Dataset) float64 { return MultiInfoKSGVariant(d, k, KSG2) }
}

// KSGVariantEstimator returns a specific KSG formulation as an Estimator.
func KSGVariantEstimator(k int, v KSGVariant) Estimator {
	return func(d *Dataset) float64 { return MultiInfoKSGVariant(d, k, v) }
}

// Decomposition is the split of total multi-information over a partition of
// the observer variables into coarse-grained groups (Eq. 5):
//
//	I(X₁,…,X_n) = I(X̃₁,…,X̃_k) + Σ_g I(members of group g)
//
// Between is the first term (organisation only explainable as interaction
// between coarse observers — in the paper's Fig. 11, between particle
// types); Within[g] are the per-group terms. The identity is exact for
// plug-in estimates on discrete data and holds approximately for the
// continuous estimators.
type Decomposition struct {
	Between float64
	Within  []float64
}

// Total returns Between + Σ Within, the reconstructed total
// multi-information.
func (d Decomposition) Total() float64 {
	t := d.Between
	for _, w := range d.Within {
		t += w
	}
	return t
}

// Normalized returns the decomposition scaled so that Total() == 1
// (the presentation of Fig. 11). A zero total returns the decomposition
// unchanged.
func (d Decomposition) Normalized() Decomposition {
	t := d.Total()
	if t == 0 {
		return d
	}
	out := Decomposition{Between: d.Between / t, Within: make([]float64, len(d.Within))}
	for g, w := range d.Within {
		out.Within[g] = w / t
	}
	return out
}

// Decompose evaluates the decomposition of the dataset's multi-information
// over the given variable groups with the given estimator. Groups with a
// single member have zero within-group multi-information by definition.
func Decompose(d *Dataset, groups [][]int, est Estimator) Decomposition {
	out := Decomposition{Within: make([]float64, len(groups))}
	out.Between = est(d.Grouped(groups))
	for g, members := range groups {
		if len(members) < 2 {
			continue
		}
		out.Within[g] = est(d.Select(members))
	}
	return out
}

// GroupsByLabel partitions variable indices 0..len(labels)-1 by their
// label value (e.g. particle type), returning one group per distinct label
// in increasing label order. It is the standard grouping for the per-type
// decomposition of Sec. 6.1.1.
func GroupsByLabel(labels []int) [][]int {
	maxLabel := -1
	for _, t := range labels {
		if t > maxLabel {
			maxLabel = t
		}
	}
	byLabel := make([][]int, maxLabel+1)
	for v, t := range labels {
		byLabel[t] = append(byLabel[t], v)
	}
	var out [][]int
	for _, g := range byLabel {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}
