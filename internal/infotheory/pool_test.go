package infotheory

import "testing"

// TestPoolPutDropsDatasetReferences pins the reference-retention rule:
// an engine returned to a pool must not keep its trees pointed at the
// last dataset's row slab (Engine.flatten can serve the dataset's own
// storage, so the flat tree aliases it too).
func TestPoolPutDropsDatasetReferences(t *testing.T) {
	ep := NewEnginePool()
	e := ep.Get(1)
	d := scalingDataset(200, 4, 1)
	_ = e.MultiInfoKSG(d, DefaultBenchK)
	_ = e.Entropies(d, DefaultBenchK)
	if e.joint.Len() == 0 || e.flat.Len() == 0 {
		t.Fatal("precondition: trees should reference the dataset after estimating")
	}
	ep.Put(e)
	if e.joint.Len() != 0 || e.flat.Len() != 0 {
		t.Fatal("Put left a tree referencing the dataset's rows")
	}
}

// TestPoolPutNilPoolStillReleases: the nil-pool convenience path drops
// the engine, but callers may hold other references to it — the
// dataset release must happen regardless.
func TestPoolPutNilPoolStillReleases(t *testing.T) {
	var ep *EnginePool
	e := NewEngine(1)
	d := scalingDataset(100, 4, 2)
	_ = e.MultiInfoKSG(d, DefaultBenchK)
	ep.Put(e)
	if e.joint.Len() != 0 {
		t.Fatal("nil-pool Put left the joint tree referencing the dataset")
	}
}

// TestPoolWatermarkDropsOversizedScratch is the retained-bytes
// regression test for the huge-m pinning bug: an engine whose grown
// scratch exceeds the watermark must come back from Put reset, while an
// engine under the watermark keeps its working set (that reuse is the
// point of the pool).
func TestPoolWatermarkDropsOversizedScratch(t *testing.T) {
	d := scalingDataset(500, 6, 3)

	over := NewEngine(1)
	_ = over.MultiInfoKSG(d, DefaultBenchK)
	grown := over.retainedBytes()
	if grown == 0 {
		t.Fatal("precondition: estimating should grow scratch")
	}

	defer func(old int) { poolWatermarkBytes = old }(poolWatermarkBytes)
	ep := NewEnginePool()

	// Under the watermark: scratch survives Put.
	poolWatermarkBytes = grown * 2
	ep.Put(over)
	if got := over.retainedBytes(); got == 0 {
		t.Fatal("under-watermark Put dropped the scratch the pool exists to recycle")
	}

	// Over the watermark: Put resets the engine to its zero state.
	under := NewEngine(3)
	_ = under.MultiInfoKSG(d, DefaultBenchK)
	_ = under.MultiInfoKSGApprox(d, DefaultBenchK, KSGPaper, ApproxOptions{Subsample: 50, Seed: 7})
	poolWatermarkBytes = under.retainedBytes() - 1
	ep.Put(under)
	if got := under.retainedBytes(); got != 0 {
		t.Fatalf("over-watermark Put retained %d bytes, want 0", got)
	}
	if under.Workers != 3 {
		t.Fatalf("watermark reset clobbered Workers: %d, want 3", under.Workers)
	}
}

// TestPoolRecycledEngineStillExact: pooling (with its release/reset
// paths) must never change an estimate.
func TestPoolRecycledEngineStillExact(t *testing.T) {
	defer func(old int) { poolWatermarkBytes = old }(poolWatermarkBytes)
	poolWatermarkBytes = 1 // force the reset path on every Put
	ep := NewEnginePool()
	d := scalingDataset(150, 4, 4)
	want := MultiInfoKSG(d, DefaultBenchK)
	for i := 0; i < 3; i++ {
		e := ep.Get(1)
		if got := e.MultiInfoKSG(d, DefaultBenchK); got != want {
			t.Fatalf("cycle %d: pooled engine returned %v, want %v", i, got, want)
		}
		ep.Put(e)
	}
}
