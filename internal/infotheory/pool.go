package infotheory

import "sync"

// EnginePool recycles estimator engines across pipeline runs. An Engine's
// k-d trees and scratch stores grow to the working-set size of the
// datasets it estimates and are then reused allocation-free; a session
// that runs many pipelines back to back (a sweep, a long-lived service)
// re-uses the same engines instead of re-growing fresh ones per run.
//
// A nil *EnginePool is valid and simply allocates: Get returns a fresh
// engine, Put drops it — so pool support can be threaded through APIs
// without burdening callers that do not hold a session. Engines carry no
// result state, only scratch, so pooling never changes any estimate.
type EnginePool struct {
	p sync.Pool
}

// poolWatermarkBytes bounds the scratch footprint an engine may carry
// into the pool: above it, Put resets the engine to its zero state so a
// session that once estimated a huge-m dataset does not pin that
// working set for its whole lifetime. 8 MiB comfortably covers
// paper-scale runs (m=5000, n=8 retains ≈5 MiB) while capping what one
// pooled engine can hold. A var so the regression test can lower it.
var poolWatermarkBytes = 8 << 20

// NewEnginePool returns an empty pool.
func NewEnginePool() *EnginePool {
	ep := &EnginePool{}
	ep.p.New = func() any { return new(Engine) }
	return ep
}

// Get returns an engine configured for the given within-dataset sample
// parallelism — recycled if one is pooled, fresh otherwise.
func (ep *EnginePool) Get(sampleWorkers int) *Engine {
	if ep == nil {
		return NewEngine(sampleWorkers)
	}
	e := ep.p.Get().(*Engine)
	e.Workers = sampleWorkers
	return e
}

// Put returns an engine to the pool for a later Get. No-op on a nil pool.
//
// Two retention rules apply before pooling. References into
// caller-owned storage are always dropped: the joint and flat trees
// alias the last dataset's row slab (Engine.flatten may serve the
// dataset's own storage), and a pooled engine holding that reference
// would keep an entire ensemble's dataset alive between runs. And when
// the engine's own recycled scratch exceeds poolWatermarkBytes, the
// engine is reset to its zero state — recycling exists to amortize
// paper-scale working sets, not to pin a one-off huge-m run's gigabytes
// for the session's lifetime.
func (ep *EnginePool) Put(e *Engine) {
	if e == nil {
		return
	}
	e.joint.Release()
	e.flat.Release()
	if e.retainedBytes() > poolWatermarkBytes {
		*e = Engine{Workers: e.Workers}
	}
	if ep != nil {
		ep.p.Put(e)
	}
}

// retainedBytes reports the engine's recycled storage footprint: every
// scratch slab and tree capacity it would carry into the pool.
// References into caller-owned storage (dataset rows) are not counted —
// Put drops those unconditionally.
func (e *Engine) retainedBytes() int {
	b := e.joint.RetainedBytes() + e.flat.RetainedBytes()
	b += 8 * (cap(e.psi) + cap(e.eps) + cap(e.h) + cap(e.col) + cap(e.flatPts))
	b += 8 * cap(e.allVars)
	b += 16 * cap(e.blocks)
	for i := range e.marg {
		b += e.marg[i].RetainedBytes()
	}
	for i := range e.margPts {
		b += 8 * cap(e.margPts[i])
	}
	for i := range e.scratch {
		b += 16*cap(e.scratch[i].neigh) + 8*cap(e.scratch[i].logs)
	}
	ap := &e.approx
	b += ap.joint.RetainedBytes()
	for i := range ap.marg {
		b += ap.marg[i].RetainedBytes()
	}
	for buf := range ap.rows {
		b += 8 * cap(ap.rows[buf])
		for v := range ap.margPts[buf] {
			b += 8 * cap(ap.margPts[buf][v])
		}
	}
	b += ap.ms.RetainedBytes()
	b += 8 * (cap(ap.dims) + cap(ap.offsets))
	b += 16 * cap(ap.blocks)
	b += 4 * (cap(ap.rowOf) + cap(ap.sampleIdx))
	b += 8 * cap(ap.aVals)
	return b
}
