package infotheory

import "sync"

// EnginePool recycles estimator engines across pipeline runs. An Engine's
// k-d trees and scratch stores grow to the working-set size of the
// datasets it estimates and are then reused allocation-free; a session
// that runs many pipelines back to back (a sweep, a long-lived service)
// re-uses the same engines instead of re-growing fresh ones per run.
//
// A nil *EnginePool is valid and simply allocates: Get returns a fresh
// engine, Put drops it — so pool support can be threaded through APIs
// without burdening callers that do not hold a session. Engines carry no
// result state, only scratch, so pooling never changes any estimate.
type EnginePool struct {
	p sync.Pool
}

// NewEnginePool returns an empty pool.
func NewEnginePool() *EnginePool {
	ep := &EnginePool{}
	ep.p.New = func() any { return new(Engine) }
	return ep
}

// Get returns an engine configured for the given within-dataset sample
// parallelism — recycled if one is pooled, fresh otherwise.
func (ep *EnginePool) Get(sampleWorkers int) *Engine {
	if ep == nil {
		return NewEngine(sampleWorkers)
	}
	e := ep.p.Get().(*Engine)
	e.Workers = sampleWorkers
	return e
}

// Put returns an engine to the pool for a later Get. No-op on a nil pool.
func (ep *EnginePool) Put(e *Engine) {
	if ep != nil && e != nil {
		ep.p.Put(e)
	}
}
