package infotheory

import (
	"math"

	"repro/internal/mathx"
)

// MultiInfoKernel estimates the multi-information of the dataset in bits
// with a Gaussian kernel density estimator: Î = Σ_v ĥ(X_v) − ĥ(X), where
// each differential entropy is the leave-one-out resubstitution estimate
//
//	ĥ(X) = −(1/m) Σ_s log₂ p̂₋ₛ(x_s)
//
// under a product Gaussian kernel with per-dimension Silverman/Scott
// bandwidths h_d = σ_d · m^{−1/(D+4)} (D = dimension of the space the
// density lives in).
//
// This is the kernel baseline of Sec. 5.3: the paper reports it to be
// orders of magnitude slower and higher-variance in high dimension than
// KSG, which BenchmarkEstimatorComparison reproduces. Cost is O(m²·D) —
// every pair contributes to the dense kernel sum, so unlike the k-NN
// estimators no tree applies; the Engine version recycles the scratch
// buffers and spreads samples across workers.
func MultiInfoKernel(d *Dataset) float64 {
	var e Engine
	return e.MultiInfoKernel(d)
}

// kernelEntropyBrute is the retained reference implementation of the
// leave-one-out KDE differential entropy (bits) of the joint distribution
// of the given variables; the engine must reproduce it bit for bit.
func kernelEntropyBrute(d *Dataset, vars []int) float64 {
	m := d.NumSamples()
	if m < 2 {
		return 0
	}
	// Flatten the selected variables into rows of total dimension D.
	D := 0
	for _, v := range vars {
		D += d.Dim(v)
	}
	rows := make([][]float64, m)
	for s := 0; s < m; s++ {
		row := make([]float64, 0, D)
		for _, v := range vars {
			row = append(row, d.Var(s, v)...)
		}
		rows[s] = row
	}

	// Scott's rule bandwidth per dimension: h_d = σ_d · m^(−1/(D+4)),
	// floored to avoid degenerate zero-variance dimensions.
	h := make([]float64, D)
	factor := math.Pow(float64(m), -1/(float64(D)+4))
	for dim := 0; dim < D; dim++ {
		col := make([]float64, m)
		for s := 0; s < m; s++ {
			col[s] = rows[s][dim]
		}
		sd := mathx.StdDev(col)
		if !(sd > 0) || math.IsNaN(sd) {
			sd = 1e-12
		}
		h[dim] = sd * factor
	}

	// ln of the product-kernel normalisation: Π_d 1/(√(2π)·h_d).
	logNorm := 0.0
	for _, hd := range h {
		logNorm -= math.Log(math.Sqrt(2*math.Pi) * hd)
	}

	var ent mathx.KahanSum
	for s := 0; s < m; s++ {
		// p̂₋ₛ(x_s) = 1/(m−1) Σ_{t≠s} Π_d K_h(x_s,d − x_t,d).
		// Work in log space via max-shift for stability.
		logs := make([]float64, 0, m-1)
		for t := 0; t < m; t++ {
			if t == s {
				continue
			}
			e := 0.0
			for dim := 0; dim < D; dim++ {
				diff := (rows[s][dim] - rows[t][dim]) / h[dim]
				e -= 0.5 * diff * diff
			}
			logs = append(logs, e)
		}
		logP := logSumExp(logs) + logNorm - math.Log(float64(m-1))
		ent.Add(-logP)
	}
	return mathx.Log2(ent.Sum() / float64(m))
}

func logSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - max)
	}
	return max + math.Log(s)
}
