package infotheory

import (
	"math"
	"math/rand/v2"
	"testing"
)

// gaussianPair draws m samples of a correlated bivariate standard Gaussian
// and returns them as a two-variable dataset. True MI = −½·log₂(1−ρ²).
func gaussianPair(m int, rho float64, seed uint64) *Dataset {
	r := rand.New(rand.NewPCG(seed, seed^0xABCD))
	d := NewDataset(m, []int{1, 1})
	for s := 0; s < m; s++ {
		x := r.NormFloat64()
		y := rho*x + math.Sqrt(1-rho*rho)*r.NormFloat64()
		d.SetVar(s, 0, x)
		d.SetVar(s, 1, y)
	}
	return d
}

func gaussianPairTrueMI(rho float64) float64 {
	return -0.5 * math.Log2(1-rho*rho)
}

func independentDataset(m, n, dim int, seed uint64) *Dataset {
	r := rand.New(rand.NewPCG(seed, seed*31+7))
	dims := make([]int, n)
	for v := range dims {
		dims[v] = dim
	}
	d := NewDataset(m, dims)
	for s := 0; s < m; s++ {
		for v := 0; v < n; v++ {
			vals := make([]float64, dim)
			for i := range vals {
				vals[i] = r.NormFloat64()
			}
			d.SetVar(s, v, vals...)
		}
	}
	return d
}

func TestKSGIndependentIsNearZero(t *testing.T) {
	for _, variant := range []KSGVariant{KSG1, KSG2} {
		d := independentDataset(400, 4, 1, 11)
		got := MultiInfoKSGVariant(d, 4, variant)
		if math.Abs(got) > 0.25 {
			t.Errorf("%v on independent data = %v, want ≈ 0", variant, got)
		}
	}
}

func TestKSGBivariateGaussianMatchesClosedForm(t *testing.T) {
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		want := gaussianPairTrueMI(rho)
		for _, variant := range []KSGVariant{KSG1, KSG2} {
			// Average over several datasets to beat sampling noise.
			var sum float64
			reps := 5
			for r := 0; r < reps; r++ {
				d := gaussianPair(500, rho, uint64(100+r))
				sum += MultiInfoKSGVariant(d, 4, variant)
			}
			got := sum / float64(reps)
			if math.Abs(got-want) > 0.15 {
				t.Errorf("%v rho=%v: got %v, want %v", variant, rho, got, want)
			}
		}
	}
}

func TestKSGMoreCorrelationMoreInformation(t *testing.T) {
	prev := -math.Inf(1)
	for _, rho := range []float64{0.0, 0.4, 0.8, 0.95} {
		d := gaussianPair(600, rho, 21)
		got := MultiInfoKSGVariant(d, 4, KSG2)
		if got <= prev {
			t.Fatalf("MI not increasing in rho: %v after %v", got, prev)
		}
		prev = got
	}
}

func TestKSGPaperVariantPositiveBias(t *testing.T) {
	// The formula exactly as printed (Eq. 18) lacks the −(n−1)/k
	// correction; on multivariate data it must exceed KSG2 by roughly
	// (n−1)/k nats — the documented reason it is not the default.
	d := independentDataset(300, 6, 1, 33)
	k := 4
	paper := MultiInfoKSGVariant(d, k, KSGPaper)
	ksg2 := MultiInfoKSGVariant(d, k, KSG2)
	gapBits := (float64(6-1) / float64(k)) / math.Ln2
	if paper-ksg2 < gapBits*0.5 {
		t.Errorf("paper variant bias %v bits, expected at least %v", paper-ksg2, gapBits*0.5)
	}
}

func TestKSGInsensitiveToK(t *testing.T) {
	// The paper reports similar results for k in 2..10.
	d := gaussianPair(600, 0.7, 55)
	ref := MultiInfoKSGVariant(d, 4, KSG2)
	for _, k := range []int{2, 8} {
		got := MultiInfoKSGVariant(d, k, KSG2)
		if math.Abs(got-ref) > 0.2 {
			t.Errorf("k=%d estimate %v deviates from k=4 estimate %v", k, got, ref)
		}
	}
}

func TestKSGInvariantUnderPerVariableRigidMotion(t *testing.T) {
	// Multi-information is invariant under invertible per-variable
	// transformations; for 2-D observer variables a rigid motion applied
	// to ALL samples of one variable must leave the estimate unchanged
	// (distances within that variable are preserved exactly).
	d := independentDataset(200, 3, 2, 77)
	// Correlate var 0 and var 1 so the value is non-trivial.
	for s := 0; s < d.NumSamples(); s++ {
		v0 := d.Var(s, 0)
		d.SetVar(s, 1, v0[0]+0.1*d.Var(s, 1)[0], v0[1]+0.1*d.Var(s, 1)[1])
	}
	before := MultiInfoKSGVariant(d, 4, KSG2)
	// Rotate variable 1 by 1.3 rad and translate it.
	c, si := math.Cos(1.3), math.Sin(1.3)
	for s := 0; s < d.NumSamples(); s++ {
		v := d.Var(s, 1)
		x, y := v[0], v[1]
		d.SetVar(s, 1, c*x-si*y+5, si*x+c*y-3)
	}
	after := MultiInfoKSGVariant(d, 4, KSG2)
	if math.Abs(before-after) > 1e-9 {
		t.Fatalf("estimate changed under rigid motion of one variable: %v -> %v", before, after)
	}
}

func TestKSGSingleVariableIsZero(t *testing.T) {
	d := independentDataset(50, 1, 2, 88)
	if got := MultiInfoKSG(d, 4); got != 0 {
		t.Fatalf("single-variable multi-info = %v", got)
	}
}

func TestKSGBadKPanics(t *testing.T) {
	d := independentDataset(10, 2, 1, 99)
	for _, k := range []int{0, 10, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d should panic for m=10", k)
				}
			}()
			MultiInfoKSG(d, k)
		}()
	}
}

func TestKSGDeterministic(t *testing.T) {
	d := gaussianPair(200, 0.5, 123)
	a := MultiInfoKSGVariant(d, 4, KSG2)
	b := MultiInfoKSGVariant(d, 4, KSG2)
	if a != b {
		t.Fatal("estimator not deterministic")
	}
}

func TestMutualInfoKSGWrapper(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 9))
	m := 400
	xs := make([][]float64, m)
	ys := make([][]float64, m)
	for s := 0; s < m; s++ {
		x := r.NormFloat64()
		xs[s] = []float64{x}
		ys[s] = []float64{0.8*x + 0.6*r.NormFloat64()}
	}
	got := MutualInfoKSG(xs, ys, 4)
	want := gaussianPairTrueMI(0.8)
	if math.Abs(got-want) > 0.25 {
		t.Fatalf("wrapper MI = %v, want near %v", got, want)
	}
}

func TestMutualInfoKSGWrapperValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { MutualInfoKSG(make([][]float64, 2), make([][]float64, 3), 1) },
		func() { MutualInfoKSG(nil, nil, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestKSGVariantStrings(t *testing.T) {
	if KSGPaper.String() != "ksg-paper" || KSG1.String() != "ksg1" || KSG2.String() != "ksg2" {
		t.Error("variant names changed; experiment records depend on them")
	}
	if KSGVariant(99).String() != "ksg-unknown" {
		t.Error("unknown variant string")
	}
}

// TestKSGAdditivityUnderGrouping: for independent groups, the between-group
// multi-information should be ≈ 0 while within-group terms carry all the
// correlation — the KSG-side counterpart of the exact discrete identity.
func TestKSGGroupedIndependentBlocks(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 17))
	m := 400
	d := NewDataset(m, []int{1, 1, 1, 1})
	for s := 0; s < m; s++ {
		a := r.NormFloat64()
		b := r.NormFloat64()
		d.SetVar(s, 0, a)
		d.SetVar(s, 1, a+0.3*r.NormFloat64())
		d.SetVar(s, 2, b)
		d.SetVar(s, 3, b+0.3*r.NormFloat64())
	}
	dec := Decompose(d, [][]int{{0, 1}, {2, 3}}, KSGEstimator(4))
	if math.Abs(dec.Between) > 0.3 {
		t.Errorf("between independent blocks = %v, want ≈ 0", dec.Between)
	}
	for g, w := range dec.Within {
		if w < 0.5 {
			t.Errorf("within group %d = %v, want clearly positive", g, w)
		}
	}
	total := MultiInfoKSGVariant(d, 4, KSG2)
	if math.Abs(dec.Total()-total) > 0.6 {
		t.Errorf("decomposition total %v vs direct %v", dec.Total(), total)
	}
}
