package infotheory

import (
	"math"
	"sync"

	"repro/internal/knn"
	"repro/internal/mathx"
)

// Engine evaluates the continuous estimators — the KSG multi-information
// variants, the Kozachenko–Leonenko differential entropy and the
// Gaussian-kernel baseline — on the shared tree-accelerated
// nearest-neighbour core (package knn), with reusable scratch storage.
// After warm-up, estimating same-shaped datasets performs no heap
// allocation (with Workers ≤ 1), the same recycle pattern as
// spatial.DenseGrid and align.Aligner.
//
// Every estimate is bit-identical to the retained brute-force reference
// implementations (and therefore to the pre-engine code): the tree
// evaluates the same floating-point distance expressions, breaks
// neighbour ties by sample index exactly as a (distance, index) sort
// does, and the per-sample digamma/log terms are reduced in the same
// fixed order regardless of Workers.
//
// An Engine is not safe for concurrent use; give each goroutine its own
// (experiment.Pipeline does, one per estimation worker). The zero value
// is ready to use.
type Engine struct {
	// Workers bounds the within-dataset sample parallelism: samples of
	// one estimate are partitioned across this many goroutines. 0 or 1
	// runs serially (and allocation-free in steady state); results are
	// bit-identical for every setting.
	Workers int

	joint   knn.Tree
	blocks  []knn.Block
	marg    []knn.Tree
	margPts [][]float64
	flat    knn.Tree
	flatPts []float64
	psi     []float64 // per-(sample,variable) digamma / per-sample log terms
	eps     []float64 // per-sample k-th neighbour distances (KL)
	h       []float64 // per-dimension kernel bandwidths
	col     []float64 // one flattened column (bandwidth estimation)
	allVars []int
	oneVar  [1]int
	scratch []workerScratch

	// approx is the approximate tier's independent working set (Morton
	// layout, refreshable trees, subsample scratch); see approx.go.
	approx approxState
}

// workerScratch is the per-goroutine query state of one engine worker.
type workerScratch struct {
	neigh []knn.Neighbor
	logs  []float64
}

// NewEngine returns an estimator engine with the given within-dataset
// sample parallelism (see Engine.Workers; 0 or 1 means serial).
func NewEngine(sampleWorkers int) *Engine { return &Engine{Workers: sampleWorkers} }

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// workerCount resolves the effective sample parallelism for m samples and
// makes sure per-worker scratch exists. The serial case (1) is kept
// closure-free by the callers so steady-state estimation never allocates.
func (e *Engine) workerCount(m int) int {
	workers := e.Workers
	if workers > m {
		workers = m
	}
	if workers < 1 {
		workers = 1
	}
	for len(e.scratch) < workers {
		e.scratch = append(e.scratch, workerScratch{})
	}
	return workers
}

// runParallel partitions [0, m) into contiguous chunks across workers
// goroutines and runs fn on each; fn receives the worker id for scratch
// selection. Only called with workers ≥ 2 (the goroutine spawn and the
// fn closure allocate, which the serial path must avoid).
func (e *Engine) runParallel(workers, m int, fn func(worker, lo, hi int)) {
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// MultiInfoKSG is MultiInfoKSGVariant with the paper's formulation.
func (e *Engine) MultiInfoKSG(d *Dataset, k int) float64 {
	return e.MultiInfoKSGVariant(d, k, KSGPaper)
}

// KSGVariantEstimator returns a specific KSG formulation bound to this
// engine as an Estimator closure (the engine-recycling counterpart of the
// package-level KSGVariantEstimator).
func (e *Engine) KSGVariantEstimator(k int, v KSGVariant) Estimator {
	return func(d *Dataset) float64 { return e.MultiInfoKSGVariant(d, k, v) }
}

// MultiInfoKSGVariant estimates the multi-information of the dataset in
// bits (see the package-level MultiInfoKSGVariant for the estimator
// definitions) using the tree engine: one joint k-d tree under the
// paper's max-over-variables metric answers the k-nearest-neighbour
// queries, and one per-variable tree answers the marginal range counts.
func (e *Engine) MultiInfoKSGVariant(d *Dataset, k int, variant KSGVariant) float64 {
	m := d.NumSamples()
	n := d.NumVars()
	if n < 2 {
		return 0
	}
	if k < 1 || k >= m {
		panic("infotheory: KSG needs 1 <= k < m")
	}

	base := mathx.Digamma(float64(k)) + float64(n-1)*mathx.Digamma(float64(m))
	if variant == KSG2 {
		base -= float64(n-1) / float64(k)
	}

	// Joint tree directly over the dataset's contiguous rows; the
	// variable layout supplies the Eq. (19) blocks.
	e.blocks = e.blocks[:0]
	for v := 0; v < n; v++ {
		e.blocks = append(e.blocks, knn.Block{Off: d.offsets[v], Len: d.dims[v]})
	}
	e.joint.Rebuild(d.data, m, d.rowLen, knn.MaxEuclidean2, e.blocks)

	// One tree per variable for the marginal counts, over flattened
	// copies of the variable's columns.
	for len(e.marg) < n {
		e.marg = append(e.marg, knn.Tree{})
		e.margPts = append(e.margPts, nil)
	}
	for v := 0; v < n; v++ {
		w := d.dims[v]
		pts := growFloats(e.margPts[v], m*w)
		for s := 0; s < m; s++ {
			copy(pts[s*w:(s+1)*w], d.Var(s, v))
		}
		e.margPts[v] = pts
		e.marg[v].Rebuild(pts, m, w, knn.MaxEuclidean2, nil)
	}

	// Per-(sample, variable) digamma terms; reduced in fixed order below
	// so the result does not depend on Workers.
	e.psi = growFloats(e.psi, m*n)
	if workers := e.workerCount(m); workers == 1 {
		e.ksgChunk(d, k, variant, 0, 0, m)
	} else {
		e.runParallel(workers, m, func(worker, lo, hi int) {
			e.ksgChunk(d, k, variant, worker, lo, hi)
		})
	}

	var psiSum mathx.KahanSum
	for _, p := range e.psi[:m*n] {
		psiSum.Add(p)
	}
	nats := base - psiSum.Sum()/float64(m)
	return mathx.Log2(nats)
}

// ksgChunk evaluates the per-(sample, variable) digamma terms of samples
// [lo, hi) into e.psi, using the given worker's scratch.
func (e *Engine) ksgChunk(d *Dataset, k int, variant KSGVariant, worker, lo, hi int) {
	n := d.NumVars()
	sc := &e.scratch[worker]
	for s := lo; s < hi; s++ {
		nbs := e.joint.KNearest(d.Row(s), k, int32(s), sc.neigh)
		sc.neigh = nbs
		for v := 0; v < n; v++ {
			var radius2 float64
			switch variant {
			case KSGPaper:
				// Distance to the k-th joint neighbour, projected to
				// variable v (Eq. 20).
				radius2 = d.varDist2(s, int(nbs[k-1].Index), v)
			case KSG1:
				// Joint k-th neighbour distance (max-norm ball
				// radius); squared via sqrt to match the reference
				// expression bit for bit.
				dist := sqrt(nbs[k-1].Dist)
				radius2 = dist * dist
			case KSG2:
				// Largest v-marginal distance among the k nearest
				// joint neighbours.
				for j := 0; j < k; j++ {
					if d2 := d.varDist2(s, int(nbs[j].Index), v); d2 > radius2 {
						radius2 = d2
					}
				}
			}
			c := e.marg[v].CountWithin(d.Var(s, v), radius2, variant == KSG2, int32(s))
			switch variant {
			case KSG1:
				c++ // ψ(c_v + 1)
			default:
				if c < 1 {
					c = 1 // clamp, see KSGPaper docs
				}
			}
			e.psi[s*n+v] = mathx.Digamma(float64(c))
		}
	}
}

// flatten returns the selected variables of every sample as a flat
// matrix of m rows × D columns (the concatenation order of vars). The
// identity selection is served by the dataset's own row storage, which
// already has exactly that layout; any other selection is copied into
// the engine's flat scratch.
func (e *Engine) flatten(d *Dataset, vars []int) (pts []float64, D int) {
	if identitySelection(d, vars) {
		return d.data, d.rowLen
	}
	for _, v := range vars {
		D += d.Dim(v)
	}
	m := d.NumSamples()
	e.flatPts = growFloats(e.flatPts, m*D)
	for s := 0; s < m; s++ {
		pos := s * D
		for _, v := range vars {
			src := d.Var(s, v)
			copy(e.flatPts[pos:pos+len(src)], src)
			pos += len(src)
		}
	}
	return e.flatPts, D
}

// identitySelection reports whether vars is exactly 0..n-1 in order.
func identitySelection(d *Dataset, vars []int) bool {
	if len(vars) != d.NumVars() {
		return false
	}
	for i, v := range vars {
		if v != i {
			return false
		}
	}
	return true
}

// identityVars fills and returns the engine's cached 0..n-1 selection
// for the dataset.
func (e *Engine) identityVars(d *Dataset) []int {
	if cap(e.allVars) < d.NumVars() {
		e.allVars = make([]int, d.NumVars())
	}
	e.allVars = e.allVars[:d.NumVars()]
	for v := range e.allVars {
		e.allVars[v] = v
	}
	return e.allVars
}

// DifferentialEntropyKL estimates the Kozachenko–Leonenko differential
// entropy in bits of the joint distribution of the given variables (see
// the package-level DifferentialEntropyKL for the definition and the
// duplicate-sample rule), answering the k-th-neighbour queries with one
// Euclidean tree over the flattened samples.
func (e *Engine) DifferentialEntropyKL(d *Dataset, vars []int, k int) float64 {
	m := d.NumSamples()
	if k < 1 || k >= m {
		panic("infotheory: KL entropy needs 1 <= k < m")
	}
	pts, D := e.flatten(d, vars)
	e.flat.Rebuild(pts, m, D, knn.MaxEuclidean2, nil)
	e.eps = growFloats(e.eps, m)
	if workers := e.workerCount(m); workers == 1 {
		e.klChunk(pts, D, k, 0, 0, m)
	} else {
		e.runParallel(workers, m, func(worker, lo, hi int) {
			e.klChunk(pts, D, k, worker, lo, hi)
		})
	}
	return klReduce(e.eps[:m], k, D)
}

// klChunk fills e.eps with the k-th-neighbour distances of samples
// [lo, hi), using the given worker's scratch.
func (e *Engine) klChunk(pts []float64, D, k, worker, lo, hi int) {
	sc := &e.scratch[worker]
	for s := lo; s < hi; s++ {
		nbs := e.flat.KNearest(pts[s*D:(s+1)*D], k, int32(s), sc.neigh)
		sc.neigh = nbs
		e.eps[s] = math.Sqrt(nbs[k-1].Dist)
	}
}

// Entropies evaluates the joint/marginal-sum entropy profile (see the
// package-level Entropies) with the engine.
func (e *Engine) Entropies(d *Dataset, k int) EntropyProfile {
	var p EntropyProfile
	p.Joint = e.DifferentialEntropyKL(d, e.identityVars(d), k)
	for v := 0; v < d.NumVars(); v++ {
		e.oneVar[0] = v
		p.MarginalSum += e.DifferentialEntropyKL(d, e.oneVar[:], k)
	}
	return p
}

// MultiInfoKernel estimates the multi-information with the Gaussian-KDE
// baseline (see the package-level MultiInfoKernel). The kernel sum is
// dense — every pair contributes — so no tree applies; the engine's
// contribution is scratch reuse and the Workers partition of the O(m²·D)
// evaluation.
func (e *Engine) MultiInfoKernel(d *Dataset) float64 {
	if d.NumVars() < 2 {
		return 0
	}
	var sum float64
	for v := 0; v < d.NumVars(); v++ {
		e.oneVar[0] = v
		sum += e.kernelEntropy(d, e.oneVar[:])
	}
	return sum - e.kernelEntropy(d, e.identityVars(d))
}

// kernelEntropy is the engine evaluation of the leave-one-out KDE
// differential entropy; identical arithmetic to kernelEntropyBrute with
// the flattening, bandwidth and log buffers recycled.
func (e *Engine) kernelEntropy(d *Dataset, vars []int) float64 {
	m := d.NumSamples()
	if m < 2 {
		return 0
	}
	flat, D := e.flatten(d, vars)

	// Scott's rule bandwidth per dimension, floored to avoid degenerate
	// zero-variance dimensions.
	e.h = growFloats(e.h, D)
	e.col = growFloats(e.col, m)
	factor := math.Pow(float64(m), -1/(float64(D)+4))
	for dim := 0; dim < D; dim++ {
		for s := 0; s < m; s++ {
			e.col[s] = flat[s*D+dim]
		}
		sd := mathx.StdDev(e.col)
		if !(sd > 0) || math.IsNaN(sd) {
			sd = 1e-12
		}
		e.h[dim] = sd * factor
	}

	logNorm := 0.0
	for _, hd := range e.h[:D] {
		logNorm -= math.Log(math.Sqrt(2*math.Pi) * hd)
	}

	e.psi = growFloats(e.psi, m)
	if workers := e.workerCount(m); workers == 1 {
		e.kernelChunk(flat, m, D, logNorm, 0, 0, m)
	} else {
		e.runParallel(workers, m, func(worker, lo, hi int) {
			e.kernelChunk(flat, m, D, logNorm, worker, lo, hi)
		})
	}

	var ent mathx.KahanSum
	for _, p := range e.psi[:m] {
		ent.Add(p)
	}
	return mathx.Log2(ent.Sum() / float64(m))
}

// kernelChunk fills e.psi with the per-sample −log p̂₋ₛ(x_s) terms of the
// leave-one-out KDE for samples [lo, hi), using the given worker's
// scratch.
func (e *Engine) kernelChunk(flat []float64, m, D int, logNorm float64, worker, lo, hi int) {
	h := e.h
	sc := &e.scratch[worker]
	if cap(sc.logs) < m-1 {
		sc.logs = make([]float64, 0, m-1)
	}
	for s := lo; s < hi; s++ {
		// p̂₋ₛ(x_s) = 1/(m−1) Σ_{t≠s} Π_d K_h(x_s,d − x_t,d); log space
		// via max-shift for stability.
		logs := sc.logs[:0]
		for t := 0; t < m; t++ {
			if t == s {
				continue
			}
			ex := 0.0
			for dim := 0; dim < D; dim++ {
				diff := (flat[s*D+dim] - flat[t*D+dim]) / h[dim]
				ex -= 0.5 * diff * diff
			}
			logs = append(logs, ex)
		}
		sc.logs = logs
		logP := logSumExp(logs) + logNorm - math.Log(float64(m-1))
		e.psi[s] = -logP
	}
}
