package infotheory

import (
	"math"
)

// EntropyFromCounts returns the plug-in (maximum-likelihood) Shannon
// entropy, in bits, of the empirical distribution given by non-negative
// counts (Eq. 1). Zero counts contribute nothing; a zero total yields 0.
func EntropyFromCounts(counts []int) float64 {
	total := 0
	for _, c := range counts {
		if c < 0 {
			panic("infotheory: negative count")
		}
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	ft := float64(total)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / ft
		h -= p * math.Log2(p)
	}
	return h
}

// EntropyFromProbs returns the Shannon entropy in bits of a probability
// vector. Probabilities need not be exactly normalised (they are treated as
// weights); zero entries are skipped.
func EntropyFromProbs(ps []float64) float64 {
	var total float64
	for _, p := range ps {
		if p < 0 {
			panic("infotheory: negative probability")
		}
		total += p
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, p := range ps {
		if p == 0 {
			continue
		}
		q := p / total
		h -= q * math.Log2(q)
	}
	return h
}

// DiscreteDataset holds m joint samples of n integer-valued variables, the
// substrate for the exact (plug-in) information quantities used to validate
// the continuous estimators and the decomposition identity (Eq. 5).
type DiscreteDataset struct {
	m, n int
	data []int // sample-major
}

// NewDiscreteDataset builds a dataset from rows[s][v].
func NewDiscreteDataset(rows [][]int) *DiscreteDataset {
	m := len(rows)
	if m == 0 {
		panic("infotheory: empty discrete dataset")
	}
	n := len(rows[0])
	d := &DiscreteDataset{m: m, n: n, data: make([]int, 0, m*n)}
	for _, r := range rows {
		if len(r) != n {
			panic("infotheory: ragged discrete dataset")
		}
		d.data = append(d.data, r...)
	}
	return d
}

// NumSamples returns m.
func (d *DiscreteDataset) NumSamples() int { return d.m }

// NumVars returns n.
func (d *DiscreteDataset) NumVars() int { return d.n }

// At returns variable v of sample s.
func (d *DiscreteDataset) At(s, v int) int { return d.data[s*d.n+v] }

// jointKey builds a map key for the projection of sample s onto vars.
func (d *DiscreteDataset) jointKey(s int, vars []int) string {
	// Variable values are small in practice; a compact byte encoding
	// with explicit separators keeps keys unambiguous.
	buf := make([]byte, 0, 4*len(vars))
	for _, v := range vars {
		x := d.At(s, v)
		buf = append(buf,
			byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return string(buf)
}

// JointEntropy returns the plug-in entropy in bits of the joint
// distribution of the given variables.
func (d *DiscreteDataset) JointEntropy(vars []int) float64 {
	counts := map[string]int{}
	for s := 0; s < d.m; s++ {
		counts[d.jointKey(s, vars)]++
	}
	// Flatten in sorted-key order, not map order: the entropy sum is a
	// float reduction, so its rounding depends on summation order, and
	// the determinism contract (bit-identical repeat runs, DESIGN.md)
	// covers the discrete baseline exactly as it covers the binned one.
	return EntropyFromCounts(sortedCounts(counts))
}

// Entropy returns the plug-in entropy in bits of variable v.
func (d *DiscreteDataset) Entropy(v int) float64 { return d.JointEntropy([]int{v}) }

// MutualInfo returns the plug-in mutual information I(X_a; X_b) in bits.
func (d *DiscreteDataset) MutualInfo(a, b int) float64 {
	return d.Entropy(a) + d.Entropy(b) - d.JointEntropy([]int{a, b})
}

// MultiInfo returns the plug-in multi-information (Eq. 3) in bits of the
// given variables: Σ H(X_v) − H(X₁,…,X_n). Fewer than two variables give 0.
func (d *DiscreteDataset) MultiInfo(vars []int) float64 {
	if len(vars) < 2 {
		return 0
	}
	var sum float64
	for _, v := range vars {
		sum += d.Entropy(v)
	}
	return sum - d.JointEntropy(vars)
}

// MultiInfoGrouped returns the multi-information between coarse-grained
// observers: I(X̃₁,…,X̃_k) where X̃_g is the joint variable over
// groups[g] (the first term of the decomposition Eq. 5):
// Σ_g H(X̃_g) − H(all).
func (d *DiscreteDataset) MultiInfoGrouped(groups [][]int) float64 {
	if len(groups) < 2 {
		return 0
	}
	var all []int
	var sum float64
	for _, g := range groups {
		sum += d.JointEntropy(g)
		all = append(all, g...)
	}
	return sum - d.JointEntropy(all)
}
