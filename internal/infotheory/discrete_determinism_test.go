package infotheory

import (
	"math"
	"testing"
)

// TestJointEntropyBitIdenticalAcrossCalls pins the determinism contract
// on the discrete plug-in estimator: JointEntropy must be a pure
// function of its inputs, bit for bit, no matter how often it is
// evaluated. The original implementation flattened the joint histogram
// by ranging over the count map, so the float entropy sum ran in Go's
// randomized map order and repeat evaluations differed at rounding
// level — the same bug class the PR-4 sorted-key fix removed from the
// binned estimator (and what the mapiter analyzer now flags at vet
// time).
func TestJointEntropyBitIdenticalAcrossCalls(t *testing.T) {
	// Many distinct joint cells with uneven counts: enough keys that two
	// different map iteration orders virtually never produce the same
	// float summation order, and irregular probabilities so reordered
	// sums actually differ in the low bits.
	const m = 400
	rows := make([][]int, m)
	for s := 0; s < m; s++ {
		rows[s] = []int{
			(s * s) % 37,
			(s * 7) % 11,
			s % 3,
		}
	}
	d := NewDiscreteDataset(rows)
	vars := []int{0, 1, 2}

	want := d.JointEntropy(vars)
	if math.IsNaN(want) || want <= 0 {
		t.Fatalf("implausible joint entropy %v", want)
	}
	for i := 0; i < 200; i++ {
		if got := d.JointEntropy(vars); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("call %d: JointEntropy = %x, first call = %x (not bit-identical: map-order-dependent summation)",
				i, math.Float64bits(got), math.Float64bits(want))
		}
	}

	// The quantities built on JointEntropy inherit the contract.
	wantMI := d.MultiInfo(vars)
	for i := 0; i < 50; i++ {
		if got := d.MultiInfo(vars); math.Float64bits(got) != math.Float64bits(wantMI) {
			t.Fatalf("call %d: MultiInfo = %x, first call = %x (not bit-identical)",
				i, math.Float64bits(got), math.Float64bits(wantMI))
		}
	}
}
