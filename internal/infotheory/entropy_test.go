package infotheory

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestKLEntropyStandardGaussian(t *testing.T) {
	// h(N(0,1)) = ½·log₂(2πe) ≈ 2.047 bits.
	want := 0.5 * math.Log2(2*math.Pi*math.E)
	r := rand.New(rand.NewPCG(1, 2))
	var sum float64
	reps := 5
	for rep := 0; rep < reps; rep++ {
		d := NewDataset(600, []int{1})
		for s := 0; s < 600; s++ {
			d.SetVar(s, 0, r.NormFloat64())
		}
		sum += DifferentialEntropyKL(d, []int{0}, 4)
	}
	got := sum / float64(reps)
	if math.Abs(got-want) > 0.1 {
		t.Fatalf("KL entropy of N(0,1) = %v, want %v", got, want)
	}
}

func TestKLEntropyUniform(t *testing.T) {
	// h(U[0,1]) = 0 bits; h(U[0,4]) = 2 bits (scaling adds log₂ 4).
	r := rand.New(rand.NewPCG(3, 4))
	d1 := NewDataset(800, []int{1})
	d4 := NewDataset(800, []int{1})
	for s := 0; s < 800; s++ {
		u := r.Float64()
		d1.SetVar(s, 0, u)
		d4.SetVar(s, 0, 4*u)
	}
	h1 := DifferentialEntropyKL(d1, []int{0}, 4)
	h4 := DifferentialEntropyKL(d4, []int{0}, 4)
	if math.Abs(h1) > 0.1 {
		t.Errorf("h(U[0,1]) = %v, want 0", h1)
	}
	if math.Abs(h4-h1-2) > 0.05 {
		t.Errorf("scaling law broken: h(U[0,4])−h(U[0,1]) = %v, want 2", h4-h1)
	}
}

func TestKLEntropyJoint2D(t *testing.T) {
	// Independent 2-D standard Gaussian: h = 2·½ log₂(2πe).
	want := math.Log2(2 * math.Pi * math.E)
	r := rand.New(rand.NewPCG(5, 6))
	d := NewDataset(800, []int{2})
	for s := 0; s < 800; s++ {
		d.SetVar(s, 0, r.NormFloat64(), r.NormFloat64())
	}
	got := DifferentialEntropyKL(d, []int{0}, 4)
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("joint 2-D Gaussian entropy = %v, want %v", got, want)
	}
}

func TestKLEntropyDuplicatesFinite(t *testing.T) {
	d := NewDataset(10, []int{1})
	for s := 0; s < 10; s++ {
		d.SetVar(s, 0, 1.0) // all identical
	}
	got := DifferentialEntropyKL(d, []int{0}, 2)
	if math.IsNaN(got) || math.IsInf(got, 1) {
		t.Fatalf("degenerate data gave %v", got)
	}
}

func TestKLEntropyBadKPanics(t *testing.T) {
	d := NewDataset(5, []int{1})
	defer func() {
		if recover() == nil {
			t.Error("k >= m should panic")
		}
	}()
	DifferentialEntropyKL(d, []int{0}, 5)
}

func TestLogUnitBallVolume(t *testing.T) {
	// c₁ = 2, c₂ = π, c₃ = 4π/3.
	cases := []struct {
		d    int
		want float64
	}{
		{1, math.Log(2)},
		{2, math.Log(math.Pi)},
		{3, math.Log(4 * math.Pi / 3)},
	}
	for _, c := range cases {
		if got := logUnitBallVolume(c.d); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("log c_%d = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestEntropiesProfileMatchesKSGOnPair(t *testing.T) {
	// The entropy-difference multi-information must agree with the KSG
	// estimate within estimator tolerance.
	d := gaussianPair(500, 0.8, 42)
	p := Entropies(d, 4)
	direct := MultiInfoKSGVariant(d, 4, KSG2)
	if math.Abs(p.MultiInfo()-direct) > 0.3 {
		t.Fatalf("entropy-difference MI %v vs KSG %v", p.MultiInfo(), direct)
	}
	want := gaussianPairTrueMI(0.8)
	if math.Abs(p.MultiInfo()-want) > 0.3 {
		t.Fatalf("entropy-difference MI %v vs truth %v", p.MultiInfo(), want)
	}
}

func TestEntropiesNarrative(t *testing.T) {
	// The paper's Fig. 4 narrative: for independent variables,
	// Σ marginal ≈ joint; for correlated variables the joint entropy
	// drops below the marginal sum.
	ind := independentDataset(400, 3, 1, 77)
	pInd := Entropies(ind, 4)
	if math.Abs(pInd.MultiInfo()) > 0.3 {
		t.Errorf("independent profile MI = %v, want ≈ 0", pInd.MultiInfo())
	}
	r := rand.New(rand.NewPCG(9, 10))
	cor := NewDataset(400, []int{1, 1, 1})
	for s := 0; s < 400; s++ {
		z := r.NormFloat64()
		for v := 0; v < 3; v++ {
			cor.SetVar(s, v, z+0.2*r.NormFloat64())
		}
	}
	pCor := Entropies(cor, 4)
	if pCor.Joint >= pCor.MarginalSum-1 {
		t.Errorf("correlated joint entropy %v should sit well below marginal sum %v",
			pCor.Joint, pCor.MarginalSum)
	}
}
