package infotheory

// Test-only exports of the retained brute-force reference
// implementations, so external test packages can hold the whole pipeline
// to the engine/brute equivalence contract.
var (
	MultiInfoKSGBruteForTest          = multiInfoKSGBrute
	DifferentialEntropyKLBruteForTest = differentialEntropyKLBrute
	KernelEntropyBruteForTest         = kernelEntropyBrute
)
