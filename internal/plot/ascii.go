// Package plot renders the repository's figures without any external
// dependency: multi-series ASCII line charts for terminals, SVG output for
// particle configurations and curves, and CSV export for downstream
// tooling. It is the substitution for the paper's (unspecified) plotting
// stack — see DESIGN.md.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Chart is a multi-series scatter/line chart rendered to a character grid.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	series []chartSeries
}

type chartSeries struct {
	name string
	x, y []float64
}

// seriesMarks assigns each series a distinct glyph.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'}

// Add appends a series. X and Y must have equal length.
func (c *Chart) Add(name string, x, y []float64) {
	if len(x) != len(y) {
		panic("plot: series length mismatch")
	}
	c.series = append(c.series, chartSeries{name, x, y})
}

// Render draws the chart into a width×height character canvas (axes and
// legend added around it). Non-finite points are skipped.
func (c *Chart) Render(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.x {
			if !finite(s.x[i]) || !finite(s.y[i]) {
				continue
			}
			xmin = math.Min(xmin, s.x[i])
			xmax = math.Max(xmax, s.x[i])
			ymin = math.Min(ymin, s.y[i])
			ymax = math.Max(ymax, s.y[i])
		}
	}
	if !finite(xmin) || !finite(ymin) {
		return c.Title + "\n(no finite data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.x {
			if !finite(s.x[i]) || !finite(s.y[i]) {
				continue
			}
			col := int(math.Round((s.x[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((ymax - s.y[i]) / (ymax - ymin) * float64(height-1)))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	fmt.Fprintf(&b, "%10.3g ┤\n", ymax)
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.3g ┤%s\n", ymin, strings.Repeat("─", width))
	fmt.Fprintf(&b, "%10s  %-10.3g%*s%10.3g\n", "", xmin, width-20, "", xmax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	for si, s := range c.series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", seriesMarks[si%len(seriesMarks)], s.name)
	}
	return b.String()
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
