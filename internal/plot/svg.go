package plot

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/vec"
)

// typePalette colours particle types in SVG output; indices wrap.
var typePalette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// SVGScatter renders a typed particle configuration as an SVG document:
// one circle per particle, coloured by type, auto-scaled to the canvas with
// a margin. It reproduces the paper's configuration panels (Figs. 1, 3, 6,
// 7, 12).
func SVGScatter(title string, pos []vec.Vec2, types []int, canvasPx int) string {
	if canvasPx <= 0 {
		canvasPx = 480
	}
	min, max := vec.BoundingBox(pos)
	w := math.Max(max.X-min.X, 1e-9)
	h := math.Max(max.Y-min.Y, 1e-9)
	scale := float64(canvasPx-40) / math.Max(w, h)
	r := math.Max(3, scale*0.12)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		canvasPx, canvasPx, canvasPx, canvasPx)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	if title != "" {
		fmt.Fprintf(&b, `<text x="8" y="16" font-family="sans-serif" font-size="12">%s</text>`+"\n", xmlEscape(title))
	}
	for i, p := range pos {
		cx := 20 + (p.X-min.X)*scale
		cy := float64(canvasPx) - 20 - (p.Y-min.Y)*scale // flip y for screen coords
		color := typePalette[0]
		if types != nil {
			color = typePalette[types[i]%len(typePalette)]
		}
		fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s" fill-opacity="0.8"/>`+"\n", cx, cy, r, color)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// SVGLines renders named (x, y) series as polylines with a light axis box.
func SVGLines(title string, names []string, xs, ys [][]float64, canvasPx int) string {
	if canvasPx <= 0 {
		canvasPx = 480
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for si := range xs {
		for i := range xs[si] {
			if !finite(xs[si][i]) || !finite(ys[si][i]) {
				continue
			}
			xmin = math.Min(xmin, xs[si][i])
			xmax = math.Max(xmax, xs[si][i])
			ymin = math.Min(ymin, ys[si][i])
			ymax = math.Max(ymax, ys[si][i])
		}
	}
	if !finite(xmin) {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	margin := 40.0
	inner := float64(canvasPx) - 2*margin
	px := func(x float64) float64 { return margin + (x-xmin)/(xmax-xmin)*inner }
	py := func(y float64) float64 { return float64(canvasPx) - margin - (y-ymin)/(ymax-ymin)*inner }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", canvasPx, canvasPx)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#999"/>`+"\n",
		margin, margin, inner, inner)
	if title != "" {
		fmt.Fprintf(&b, `<text x="8" y="16" font-family="sans-serif" font-size="12">%s</text>`+"\n", xmlEscape(title))
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10">%.3g</text>`+"\n", 4.0, py(ymin), ymin)
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10">%.3g</text>`+"\n", 4.0, py(ymax)+10, ymax)
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10">%.3g</text>`+"\n", px(xmin), float64(canvasPx)-24, xmin)
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10">%.3g</text>`+"\n", px(xmax)-24, float64(canvasPx)-24, xmax)
	for si := range xs {
		color := typePalette[si%len(typePalette)]
		var pts []string
		for i := range xs[si] {
			if !finite(xs[si][i]) || !finite(ys[si][i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(xs[si][i]), py(ys[si][i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.Join(pts, " "), color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" fill="%s">%s</text>`+"\n",
			margin+4, margin+14+12*float64(si), color, xmlEscape(names[si]))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
