package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/vec"
)

func TestChartRenderContainsMarksAndLegend(t *testing.T) {
	c := &Chart{Title: "demo", XLabel: "t", YLabel: "bits"}
	c.Add("alpha", []float64{0, 1, 2}, []float64{0, 1, 4})
	c.Add("beta", []float64{0, 1, 2}, []float64{4, 1, 0})
	out := c.Render(40, 10)
	for _, want := range []string{"demo", "alpha", "beta", "*", "o", "x: t", "y: bits"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartHandlesNonFinite(t *testing.T) {
	c := &Chart{}
	c.Add("s", []float64{0, 1, math.NaN(), 3}, []float64{1, math.Inf(1), 2, 4})
	out := c.Render(30, 8)
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestChartAllNonFinite(t *testing.T) {
	c := &Chart{Title: "empty"}
	c.Add("s", []float64{math.NaN()}, []float64{math.NaN()})
	out := c.Render(30, 8)
	if !strings.Contains(out, "no finite data") {
		t.Fatalf("expected no-data message, got:\n%s", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := &Chart{}
	c.Add("flat", []float64{0, 1, 2}, []float64{5, 5, 5})
	if out := c.Render(30, 8); out == "" {
		t.Fatal("constant series broke rendering")
	}
}

func TestChartMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	(&Chart{}).Add("bad", []float64{1}, []float64{1, 2})
}

func TestChartMinimumSizeClamped(t *testing.T) {
	c := &Chart{}
	c.Add("s", []float64{0, 1}, []float64{0, 1})
	if out := c.Render(1, 1); out == "" {
		t.Fatal("tiny canvas broke rendering")
	}
}

func TestSVGScatterStructure(t *testing.T) {
	pos := []vec.Vec2{v2(0, 0), v2(1, 1), v2(2, 0)}
	types := []int{0, 1, 2}
	svg := SVGScatter("three <points>", pos, types, 300)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(svg, "<circle") != 3 {
		t.Fatalf("expected 3 circles:\n%s", svg)
	}
	if !strings.Contains(svg, "&lt;points&gt;") {
		t.Error("title not XML-escaped")
	}
	// Distinct types get distinct colours.
	if !strings.Contains(svg, typePalette[0]) || !strings.Contains(svg, typePalette[1]) {
		t.Error("type palette not applied")
	}
}

func TestSVGScatterNilTypes(t *testing.T) {
	svg := SVGScatter("", []vec.Vec2{v2(0, 0)}, nil, 0)
	if strings.Count(svg, "<circle") != 1 {
		t.Fatal("nil types broke scatter")
	}
}

func TestSVGLinesStructure(t *testing.T) {
	svg := SVGLines("curves", []string{"a", "b"},
		[][]float64{{0, 1, 2}, {0, 1, 2}},
		[][]float64{{0, 1, 4}, {4, 1, 0}}, 400)
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatal("expected 2 polylines")
	}
	if !strings.Contains(svg, ">a</text>") || !strings.Contains(svg, ">b</text>") {
		t.Error("legend labels missing")
	}
}

func TestSVGLinesEmptyData(t *testing.T) {
	svg := SVGLines("empty", []string{"a"}, [][]float64{{}}, [][]float64{{}}, 200)
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatal("empty data broke SVG")
	}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	names := []string{"one", "two"}
	xs := [][]float64{{0, 1, 2}, {0, 5}}
	ys := [][]float64{{1.5, 2.5, 3.5}, {-1, math.Inf(1)}}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, names, xs, ys); err != nil {
		t.Fatal(err)
	}
	gotNames, gotXs, gotYs, err := ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNames) != 2 || gotNames[0] != "one" || gotNames[1] != "two" {
		t.Fatalf("names = %v", gotNames)
	}
	for si := range xs {
		for i := range xs[si] {
			if gotXs[si][i] != xs[si][i] {
				t.Fatalf("x[%d][%d] = %v", si, i, gotXs[si][i])
			}
			if gotYs[si][i] != ys[si][i] && !(math.IsInf(gotYs[si][i], 1) && math.IsInf(ys[si][i], 1)) {
				t.Fatalf("y[%d][%d] = %v", si, i, gotYs[si][i])
			}
		}
	}
}

func TestWriteSeriesCSVValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, []string{"a"}, nil, nil); err == nil {
		t.Error("mismatched inputs accepted")
	}
	if err := WriteSeriesCSV(&buf, []string{"a"}, [][]float64{{1}}, [][]float64{{1, 2}}); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestReadSeriesCSVErrors(t *testing.T) {
	if _, _, _, err := ReadSeriesCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, _, _, err := ReadSeriesCSV(strings.NewReader("series,x,y\na,notanumber,2\n")); err == nil {
		t.Error("bad number accepted")
	}
}
