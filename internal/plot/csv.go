package plot

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteSeriesCSV writes named series as long-format CSV rows
// (series,x,y), the exchange format the figure CLI emits next to each
// chart. Series may have different lengths.
func WriteSeriesCSV(w io.Writer, names []string, xs, ys [][]float64) error {
	if len(names) != len(xs) || len(names) != len(ys) {
		return fmt.Errorf("plot: %d names, %d x-series, %d y-series", len(names), len(xs), len(ys))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	for si, name := range names {
		if len(xs[si]) != len(ys[si]) {
			return fmt.Errorf("plot: series %q length mismatch", name)
		}
		for i := range xs[si] {
			rec := []string{name, formatFloat(xs[si][i]), formatFloat(ys[si][i])}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSeriesCSV parses the long-format CSV written by WriteSeriesCSV.
func ReadSeriesCSV(r io.Reader) (names []string, xs, ys [][]float64, err error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, nil, err
	}
	if len(records) == 0 {
		return nil, nil, nil, fmt.Errorf("plot: empty CSV")
	}
	index := map[string]int{}
	for _, rec := range records[1:] {
		if len(rec) != 3 {
			return nil, nil, nil, fmt.Errorf("plot: bad record %v", rec)
		}
		x, errX := strconv.ParseFloat(rec[1], 64)
		y, errY := strconv.ParseFloat(rec[2], 64)
		if errX != nil || errY != nil {
			return nil, nil, nil, fmt.Errorf("plot: bad numbers in %v", rec)
		}
		si, ok := index[rec[0]]
		if !ok {
			si = len(names)
			index[rec[0]] = si
			names = append(names, rec[0])
			xs = append(xs, nil)
			ys = append(ys, nil)
		}
		xs[si] = append(xs[si], x)
		ys[si] = append(ys[si], y)
	}
	return names, xs, ys, nil
}

func formatFloat(x float64) string {
	if math.IsInf(x, 1) {
		return "inf"
	}
	if math.IsInf(x, -1) {
		return "-inf"
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}
