package plot

import "repro/internal/vec"

// v2 is a keyed-literal shorthand for test fixtures.
func v2(x, y float64) vec.Vec2 { return vec.Vec2{X: x, Y: y} }
