// Package statcomplex implements the measure of self-organization the
// paper positions itself against (Sec. 3, citing Shalizi): an increase of
// *statistical complexity* over time, where statistical complexity is the
// entropy of the causal-state distribution of an ε-machine reconstructed
// from time-series data.
//
// The reconstruction here is a CSSR-style state merger for discrete
// sequences: histories of up to MaxHistory symbols are grouped into causal
// states when their empirical next-symbol distributions agree within
// tolerance. The statistical complexity C_μ = H(S) is the entropy of the
// stationary state weights, and the entropy rate h_μ is the expected
// next-symbol entropy. The package also provides the symbolisation that
// turns particle trajectories into sequences (displacement-octant coding),
// so the paper's Sec. 7.1 discussion — a uniform collective has vanishing
// complexity both in its random initial phase and at its frozen
// equilibrium — becomes a runnable comparison against the
// multi-information measure.
package statcomplex

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/infotheory"
	"repro/internal/vec"
)

// Options configures the reconstruction.
type Options struct {
	// Alphabet is the number of distinct symbols (required, ≥ 1).
	Alphabet int
	// MaxHistory is the history length L conditioned on; 0 means the
	// default (2). Memory grows as Alphabet^L.
	MaxHistory int
	// Tolerance is the maximum total-variation distance between two
	// histories' next-symbol distributions for them to share a causal
	// state; 0 means the default (0.08).
	Tolerance float64
	// MinCount drops histories observed fewer times (their estimated
	// distributions are noise); 0 means the default (5).
	MinCount int
}

func (o Options) withDefaults() Options {
	if o.MaxHistory == 0 {
		o.MaxHistory = 2
	}
	if o.Tolerance == 0 {
		o.Tolerance = 0.08
	}
	if o.MinCount == 0 {
		o.MinCount = 5
	}
	return o
}

// State is one reconstructed causal state.
type State struct {
	// Histories are the length-L pasts grouped into this state.
	Histories []string
	// Next is the pooled next-symbol distribution.
	Next []float64
	// Weight is the stationary probability of the state (fraction of
	// observed history occurrences).
	Weight float64
}

// Machine is a reconstructed ε-machine approximation.
type Machine struct {
	Alphabet int
	L        int
	States   []State
}

// StatisticalComplexity returns C_μ = H(S) in bits.
func (m *Machine) StatisticalComplexity() float64 {
	weights := make([]float64, len(m.States))
	for i, s := range m.States {
		weights[i] = s.Weight
	}
	return infotheory.EntropyFromProbs(weights)
}

// EntropyRate returns h_μ = Σ_s p(s)·H(next | s) in bits per symbol.
func (m *Machine) EntropyRate() float64 {
	var h float64
	for _, s := range m.States {
		h += s.Weight * infotheory.EntropyFromProbs(s.Next)
	}
	return h
}

// NumStates returns the number of causal states.
func (m *Machine) NumStates() int { return len(m.States) }

// Reconstruct builds the machine from one or more symbol sequences. Every
// symbol must lie in [0, Alphabet).
func Reconstruct(seqs [][]int, opt Options) (*Machine, error) {
	opt = opt.withDefaults()
	if opt.Alphabet < 1 {
		return nil, fmt.Errorf("statcomplex: Alphabet must be ≥ 1")
	}
	// Count next-symbol occurrences per history.
	type hist struct {
		counts []int
		total  int
	}
	table := map[string]*hist{}
	L := opt.MaxHistory
	for si, seq := range seqs {
		for _, s := range seq {
			if s < 0 || s >= opt.Alphabet {
				return nil, fmt.Errorf("statcomplex: sequence %d contains symbol %d outside [0,%d)", si, s, opt.Alphabet)
			}
		}
		for t := L; t < len(seq); t++ {
			key := encode(seq[t-L : t])
			h := table[key]
			if h == nil {
				h = &hist{counts: make([]int, opt.Alphabet)}
				table[key] = h
			}
			h.counts[seq[t]]++
			h.total++
		}
	}
	// Drop under-observed histories.
	keys := make([]string, 0, len(table))
	grandTotal := 0
	for k, h := range table {
		if h.total >= opt.MinCount {
			keys = append(keys, k)
			grandTotal += h.total
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("statcomplex: no history of length %d observed at least %d times", L, opt.MinCount)
	}
	sort.Strings(keys) // deterministic merge order

	// Greedy merge: each history joins the first existing state whose
	// pooled distribution is within tolerance (total variation), else
	// founds a new state.
	m := &Machine{Alphabet: opt.Alphabet, L: L}
	type protoState struct {
		histories []string
		counts    []int
		total     int
	}
	var protos []*protoState
	for _, k := range keys {
		h := table[k]
		placed := false
		for _, p := range protos {
			if totalVariation(h.counts, h.total, p.counts, p.total) <= opt.Tolerance {
				p.histories = append(p.histories, k)
				for a, c := range h.counts {
					p.counts[a] += c
				}
				p.total += h.total
				placed = true
				break
			}
		}
		if !placed {
			protos = append(protos, &protoState{
				histories: []string{k},
				counts:    append([]int(nil), h.counts...),
				total:     h.total,
			})
		}
	}
	for _, p := range protos {
		next := make([]float64, opt.Alphabet)
		for a, c := range p.counts {
			next[a] = float64(c) / float64(p.total)
		}
		m.States = append(m.States, State{
			Histories: p.histories,
			Next:      next,
			Weight:    float64(p.total) / float64(grandTotal),
		})
	}
	return m, nil
}

func encode(symbols []int) string {
	buf := make([]byte, len(symbols))
	for i, s := range symbols {
		buf[i] = byte(s)
	}
	return string(buf)
}

// totalVariation computes ½·Σ|p−q| between two count vectors.
func totalVariation(ca []int, na int, cb []int, nb int) float64 {
	var tv float64
	for i := range ca {
		pa := float64(ca[i]) / float64(na)
		pb := float64(cb[i]) / float64(nb)
		tv += math.Abs(pa - pb)
	}
	return tv / 2
}

// SymbolizeDisplacements converts a particle trajectory into a symbol
// sequence by quantising each step displacement into `sectors` angular
// sectors, with one extra symbol (value `sectors`) for near-zero
// displacements below minStep. The alphabet size is therefore sectors+1.
// This is the standard coarse-graining used to feed continuous particle
// dynamics into discrete ε-machine reconstruction.
func SymbolizeDisplacements(traj []vec.Vec2, sectors int, minStep float64) []int {
	if sectors < 1 {
		panic("statcomplex: need at least one sector")
	}
	if len(traj) < 2 {
		return nil
	}
	out := make([]int, 0, len(traj)-1)
	for t := 1; t < len(traj); t++ {
		d := traj[t].Sub(traj[t-1])
		if d.Norm() < minStep {
			out = append(out, sectors)
			continue
		}
		angle := d.Angle() // (−π, π]
		frac := (angle + math.Pi) / (2 * math.Pi)
		s := int(frac * float64(sectors))
		if s >= sectors {
			s = sectors - 1
		}
		out = append(out, s)
	}
	return out
}
