package statcomplex

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/vec"
)

func TestIIDProcessHasOneState(t *testing.T) {
	// A fair i.i.d. binary process: every history predicts the same
	// next-symbol distribution, so there is exactly one causal state and
	// C_μ = 0, h_μ = 1 bit.
	r := rand.New(rand.NewPCG(1, 2))
	seq := make([]int, 20000)
	for i := range seq {
		seq[i] = r.IntN(2)
	}
	m, err := Reconstruct([][]int{seq}, Options{Alphabet: 2, MaxHistory: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 1 {
		t.Fatalf("i.i.d. process reconstructed %d states, want 1", m.NumStates())
	}
	if c := m.StatisticalComplexity(); c != 0 {
		t.Errorf("C = %v, want 0", c)
	}
	if h := m.EntropyRate(); math.Abs(h-1) > 0.02 {
		t.Errorf("h = %v, want 1", h)
	}
}

func TestBiasedCoinStillOneState(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	seq := make([]int, 20000)
	for i := range seq {
		if r.Float64() < 0.8 {
			seq[i] = 1
		}
	}
	m, err := Reconstruct([][]int{seq}, Options{Alphabet: 2, MaxHistory: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 1 {
		t.Fatalf("biased coin reconstructed %d states, want 1", m.NumStates())
	}
	// h = H(0.8) ≈ 0.7219 bits.
	want := -(0.8*math.Log2(0.8) + 0.2*math.Log2(0.2))
	if h := m.EntropyRate(); math.Abs(h-want) > 0.03 {
		t.Errorf("h = %v, want %v", h, want)
	}
}

func TestPeriodTwoProcess(t *testing.T) {
	// 0101… has two causal states (phase), each deterministic:
	// C = 1 bit, h = 0.
	seq := make([]int, 4000)
	for i := range seq {
		seq[i] = i % 2
	}
	m, err := Reconstruct([][]int{seq}, Options{Alphabet: 2, MaxHistory: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 2 {
		t.Fatalf("period-2 process reconstructed %d states, want 2", m.NumStates())
	}
	if c := m.StatisticalComplexity(); math.Abs(c-1) > 0.01 {
		t.Errorf("C = %v, want 1", c)
	}
	if h := m.EntropyRate(); h > 0.01 {
		t.Errorf("h = %v, want 0", h)
	}
}

func TestGoldenMeanProcess(t *testing.T) {
	// Golden-mean process: no two consecutive 1s; after a 0 emit 1 with
	// probability ½, after a 1 always emit 0. Two causal states with
	// stationary weights (2/3, 1/3): C = H(1/3) ≈ 0.9183 bits,
	// h = (2/3)·1 ≈ 0.6667 bits.
	r := rand.New(rand.NewPCG(5, 6))
	seq := make([]int, 40000)
	prev := 0
	for i := range seq {
		if prev == 1 {
			seq[i] = 0
		} else if r.Float64() < 0.5 {
			seq[i] = 1
		}
		prev = seq[i]
	}
	m, err := Reconstruct([][]int{seq}, Options{Alphabet: 2, MaxHistory: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 2 {
		t.Fatalf("golden mean reconstructed %d states, want 2", m.NumStates())
	}
	wantC := -(2.0/3)*math.Log2(2.0/3) - (1.0/3)*math.Log2(1.0/3)
	if c := m.StatisticalComplexity(); math.Abs(c-wantC) > 0.03 {
		t.Errorf("C = %v, want %v", c, wantC)
	}
	if h := m.EntropyRate(); math.Abs(h-2.0/3) > 0.03 {
		t.Errorf("h = %v, want 2/3", h)
	}
}

func TestReconstructPoolsMultipleSequences(t *testing.T) {
	// Two halves of a period-2 process, split across sequences with the
	// same phase structure, must reconstruct the same machine.
	a := make([]int, 2000)
	b := make([]int, 2000)
	for i := range a {
		a[i] = i % 2
		b[i] = (i + 1) % 2
	}
	m, err := Reconstruct([][]int{a, b}, Options{Alphabet: 2, MaxHistory: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 2 {
		t.Fatalf("pooled reconstruction found %d states", m.NumStates())
	}
}

func TestReconstructValidation(t *testing.T) {
	if _, err := Reconstruct([][]int{{0, 1}}, Options{Alphabet: 0}); err == nil {
		t.Error("alphabet 0 accepted")
	}
	if _, err := Reconstruct([][]int{{0, 5}}, Options{Alphabet: 2}); err == nil {
		t.Error("out-of-alphabet symbol accepted")
	}
	if _, err := Reconstruct([][]int{{0, 1, 0}}, Options{Alphabet: 2, MaxHistory: 3}); err == nil {
		t.Error("too-short sequence accepted")
	}
}

func TestSymbolizeDisplacements(t *testing.T) {
	traj := []vec.Vec2{
		{X: 0, Y: 0},
		{X: 1, Y: 0},     // east
		{X: 1, Y: 1},     // north
		{X: 0, Y: 1},     // west
		{X: 0, Y: 0},     // south
		{X: 0, Y: 0.001}, // below minStep → stall symbol
	}
	syms := SymbolizeDisplacements(traj, 4, 0.01)
	if len(syms) != 5 {
		t.Fatalf("got %d symbols", len(syms))
	}
	// 4 sectors over (−π, π]: east ≈ 0.5 fraction → sector 2; north →
	// sector 3; west → sector 0 or 3 boundary (angle π → frac 1 →
	// clamped 3); south → sector 0 or 1. Assert distinctness of the four
	// cardinal moves and the stall code.
	if syms[4] != 4 {
		t.Errorf("stall symbol = %d, want 4", syms[4])
	}
	if syms[0] == syms[1] || syms[1] == syms[2] && syms[0] == syms[2] {
		t.Errorf("cardinal directions not distinguished: %v", syms)
	}
	for _, s := range syms[:4] {
		if s < 0 || s > 3 {
			t.Errorf("direction symbol %d out of range", s)
		}
	}
}

func TestSymbolizeShortTrajectory(t *testing.T) {
	if got := SymbolizeDisplacements([]vec.Vec2{{X: 1, Y: 1}}, 4, 0.1); got != nil {
		t.Fatalf("1-point trajectory gave %v", got)
	}
}

func TestSymbolizePanicsOnBadSectors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("sectors=0 should panic")
		}
	}()
	SymbolizeDisplacements(make([]vec.Vec2, 3), 0, 0.1)
}
