package infodynamics

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/forces"
	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/vec"
)

// coupledAR builds two scalar-pair time series where Y drives X with lag 1:
// X_{t+1} = a·X_t + c·Y_t + noise, Y_{t+1} = a·Y_t + noise.
func coupledAR(samples, steps int, a, c float64, seed uint64) (xs, ys []Trajectory) {
	r := rand.New(rand.NewPCG(seed, seed^77))
	for s := 0; s < samples; s++ {
		x := make(Trajectory, steps)
		y := make(Trajectory, steps)
		x[0] = vec.Vec2{X: r.NormFloat64(), Y: r.NormFloat64()}
		y[0] = vec.Vec2{X: r.NormFloat64(), Y: r.NormFloat64()}
		for t := 1; t < steps; t++ {
			y[t] = vec.Vec2{
				X: a*y[t-1].X + 0.5*r.NormFloat64(),
				Y: a*y[t-1].Y + 0.5*r.NormFloat64(),
			}
			x[t] = vec.Vec2{
				X: a*x[t-1].X + c*y[t-1].X + 0.5*r.NormFloat64(),
				Y: a*x[t-1].Y + c*y[t-1].Y + 0.5*r.NormFloat64(),
			}
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys
}

func TestTransferEntropyDetectsDirectionOfCoupling(t *testing.T) {
	xs, ys := coupledAR(8, 60, 0.5, 0.9, 1)
	teYtoX, err := TransferEntropy(xs, ys, 4)
	if err != nil {
		t.Fatal(err)
	}
	teXtoY, err := TransferEntropy(ys, xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if teYtoX <= teXtoY {
		t.Fatalf("TE(Y→X)=%v should exceed TE(X→Y)=%v for Y-driven coupling", teYtoX, teXtoY)
	}
	if teYtoX < 0.1 {
		t.Fatalf("TE(Y→X)=%v too small for strong coupling", teYtoX)
	}
}

func TestTransferEntropyIndependentNearZero(t *testing.T) {
	xs, _ := coupledAR(8, 60, 0.5, 0, 2)
	_, ys := coupledAR(8, 60, 0.5, 0, 3)
	te, err := TransferEntropy(xs, ys, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(te) > 0.12 {
		t.Fatalf("TE between independent processes = %v, want ≈ 0", te)
	}
}

func TestActiveStorageOrdersByAutocorrelation(t *testing.T) {
	strong, _ := coupledAR(8, 60, 0.9, 0, 4)
	weak, _ := coupledAR(8, 60, 0.0, 0, 5)
	aStrong, err := ActiveStorage(strong, 4)
	if err != nil {
		t.Fatal(err)
	}
	aWeak, err := ActiveStorage(weak, 4)
	if err != nil {
		t.Fatal(err)
	}
	if aStrong <= aWeak {
		t.Fatalf("AIS(a=0.9)=%v should exceed AIS(a=0)=%v", aStrong, aWeak)
	}
	if aStrong < 0.5 {
		t.Fatalf("AIS of strongly autocorrelated process = %v, want clearly positive", aStrong)
	}
}

func TestConditionalMutualInfoValidation(t *testing.T) {
	good := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}}
	if _, err := ConditionalMutualInfo(good, good[:5], good, 4); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ConditionalMutualInfo(good, good, good, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ConditionalMutualInfo(good[:3], good[:3], good[:3], 4); err == nil {
		t.Error("too few samples accepted")
	}
}

func TestConditionalMutualInfoScreensOffMediatedDependence(t *testing.T) {
	// X and Y both copy Z (plus small noise): I(X;Y) is large, but
	// I(X;Y|Z) must be near zero — the conditioning screens off the
	// common cause.
	r := rand.New(rand.NewPCG(6, 7))
	m := 300
	xs := make([][]float64, m)
	ys := make([][]float64, m)
	zs := make([][]float64, m)
	for i := 0; i < m; i++ {
		z := r.NormFloat64()
		zs[i] = []float64{z}
		xs[i] = []float64{z + 0.1*r.NormFloat64()}
		ys[i] = []float64{z + 0.1*r.NormFloat64()}
	}
	cmi, err := ConditionalMutualInfo(xs, ys, zs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmi) > 0.15 {
		t.Fatalf("CMI given the common cause = %v, want ≈ 0", cmi)
	}
	// Sanity: unconditional dependence is strong.
	consts := make([][]float64, m)
	for i := range consts {
		consts[i] = []float64{0}
	}
	mi, err := ConditionalMutualInfo(xs, ys, consts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mi < 1 {
		t.Fatalf("unconditional MI = %v, want large", mi)
	}
}

func TestTransferEntropyTrajectoryValidation(t *testing.T) {
	xs, ys := coupledAR(2, 10, 0.5, 0.5, 8)
	if _, err := TransferEntropy(xs[:1], ys, 4); err == nil {
		t.Error("sample count mismatch accepted")
	}
	ys[0] = ys[0][:5]
	if _, err := TransferEntropy(xs, ys, 4); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := TransferEntropy(nil, nil, 4); err == nil {
		t.Error("empty input accepted")
	}
}

func TestParticleTrajectoriesAndPairTransfer(t *testing.T) {
	// A coupled 3-particle spring system must carry measurable
	// information between interacting particles. (With only 2 centred
	// particles the partner is a deterministic mirror image and TE is
	// correctly zero, so 3 is the smallest non-degenerate case.)
	ens, err := sim.RunEnsemble(sim.EnsembleConfig{
		Sim: sim.Config{
			N:      3,
			Force:  forces.MustF1(forces.ConstantMatrix(1, 2), forces.ConstantMatrix(1, 2)),
			Cutoff: 10,
		},
		M:           16,
		Steps:       40,
		RecordEvery: 2,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	trajs := ParticleTrajectories(ens, 0, true)
	if len(trajs) != 16 || len(trajs[0]) != len(ens.Times()) {
		t.Fatal("trajectory extraction shape wrong")
	}

	pt, err := MeasurePairTransfer(ens, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pt.TE < 0.05 && pt.TEReverse < 0.05 {
		t.Fatalf("no information transfer measured in a coupled triple: %+v", pt)
	}
}

func TestPairTransferZeroForNonInteractingParticles(t *testing.T) {
	// Particles far outside each other's cut-off radius exchange no
	// information; TE must be ≈ 0 in both directions. (Uncentred
	// coordinates — centring would couple them spuriously.)
	ens, err := sim.RunEnsemble(sim.EnsembleConfig{
		Sim: sim.Config{
			N:          3,
			Force:      forces.MustF1(forces.ConstantMatrix(1, 2), forces.ConstantMatrix(1, 2)),
			Cutoff:     1e-9,
			InitRadius: 100,
		},
		M:           16,
		Steps:       40,
		RecordEvery: 2,
		Seed:        10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ta := ParticleTrajectories(ens, 0, false)
	tb := ParticleTrajectories(ens, 1, false)
	te, err := TransferEntropy(ta, tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Pooling across runs with widely scattered base positions leaves a
	// small positive bias; the bound is loose but far below any coupled
	// signal.
	if math.Abs(te) > 0.15 {
		t.Fatalf("TE between non-interacting particles = %v, want ≈ 0", te)
	}
}

// bruteConditionalMutualInfo is the pre-engine Frenzel–Pompe
// implementation (full joint-distance sort per sample, O(m²) sweeps),
// retained verbatim as the reference the shared knn-tree path must
// reproduce bit for bit.
func bruteConditionalMutualInfo(xs, ys, zs [][]float64, k int) float64 {
	m := len(xs)
	type point struct{ x, y, z []float64 }
	pts := make([]point, m)
	for i := range pts {
		pts[i] = point{xs[i], ys[i], zs[i]}
	}
	maxDist := func(a, b []float64) float64 {
		var worst float64
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > worst {
				worst = d
			}
		}
		return worst
	}
	jointDist := func(a, b point) float64 {
		d := maxDist(a.x, b.x)
		if dy := maxDist(a.y, b.y); dy > d {
			d = dy
		}
		if dz := maxDist(a.z, b.z); dz > d {
			d = dz
		}
		return d
	}
	var acc mathx.KahanSum
	dists := make([]float64, 0, m-1)
	for i := 0; i < m; i++ {
		dists = dists[:0]
		for j := 0; j < m; j++ {
			if j == i {
				continue
			}
			dists = append(dists, jointDist(pts[i], pts[j]))
		}
		sort.Float64s(dists)
		eps := dists[k-1]
		var nXZ, nYZ, nZ int
		for j := 0; j < m; j++ {
			if j == i {
				continue
			}
			dz := maxDist(pts[i].z, pts[j].z)
			if dz >= eps {
				continue
			}
			nZ++
			if maxDist(pts[i].x, pts[j].x) < eps {
				nXZ++
			}
			if maxDist(pts[i].y, pts[j].y) < eps {
				nYZ++
			}
		}
		acc.Add(mathx.Digamma(float64(nZ+1)) -
			mathx.Digamma(float64(nXZ+1)) -
			mathx.Digamma(float64(nYZ+1)))
	}
	return mathx.Log2(mathx.Digamma(float64(k)) + acc.Sum()/float64(m))
}

// Property: the knn-tree ConditionalMutualInfo reproduces the retained
// brute-force sweep bit for bit, on data with deliberate ties and
// duplicated samples (including the degenerate constant-z conditioning of
// ActiveStorage).
func TestConditionalMutualInfoMatchesBruteExactly(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 0))
	draw := func(m, dim int, constant bool) [][]float64 {
		out := make([][]float64, m)
		for i := range out {
			row := make([]float64, dim)
			for c := range row {
				switch {
				case constant:
					row[c] = 0
				case r.IntN(3) == 0:
					row[c] = float64(r.IntN(3)) // exact ties
				default:
					row[c] = r.NormFloat64()
				}
			}
			out[i] = row
		}
		// Duplicate a few rows to force zero joint distances.
		for d := 0; d < m/8; d++ {
			out[r.IntN(m)] = out[r.IntN(m)]
		}
		return out
	}
	for trial := 0; trial < 60; trial++ {
		m := 10 + r.IntN(60)
		k := 1 + r.IntN(4)
		if m < k+2 {
			continue
		}
		xs := draw(m, 1+r.IntN(3), false)
		ys := draw(m, 1+r.IntN(3), false)
		zs := draw(m, 1+r.IntN(2), trial%5 == 0)
		got, err := ConditionalMutualInfo(xs, ys, zs, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteConditionalMutualInfo(xs, ys, zs, k)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("trial %d (m=%d k=%d): tree CMI %v, brute %v", trial, m, k, got, want)
		}
	}
}

// The new dimension validation must reject ragged inputs with an error
// instead of the old deep-slice panic.
func TestConditionalMutualInfoRaggedInput(t *testing.T) {
	xs := [][]float64{{1, 2}, {3}}
	ys := [][]float64{{1}, {2}}
	zs := [][]float64{{0}, {0}}
	if _, err := ConditionalMutualInfo(xs, ys, zs, 1); err == nil {
		t.Fatal("ragged x vectors accepted")
	}
	empty := [][]float64{{}, {}, {}, {}}
	one := [][]float64{{0}, {0}, {0}, {0}}
	if _, err := ConditionalMutualInfo(empty, one, one, 1); err == nil {
		t.Fatal("empty x vectors accepted")
	}
}
