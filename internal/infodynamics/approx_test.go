package infodynamics

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/infotheory"
)

// gaussianTriplet draws m (x, y, z) scalar samples where z drives both x
// and y, so I(X;Y|Z) is small but the joint dependence is strong — the
// mediated-dependence shape the exact-tier tests use.
func gaussianTriplet(m int, seed uint64) (xs, ys, zs [][]float64) {
	r := rand.New(rand.NewPCG(seed, seed^31))
	for i := 0; i < m; i++ {
		z := r.NormFloat64()
		xs = append(xs, []float64{z + 0.5*r.NormFloat64()})
		ys = append(ys, []float64{z + 0.5*r.NormFloat64()})
		zs = append(zs, []float64{z})
	}
	return xs, ys, zs
}

// TestCMIApproxFullSubsampleMatchesExact: at r = m the subsampled
// estimator evaluates every sample, so it must agree with the exact path
// up to summation-grouping rounding, with a collapsed interval.
func TestCMIApproxFullSubsampleMatchesExact(t *testing.T) {
	const m, k = 400, 4
	xs, ys, zs := gaussianTriplet(m, 1)
	exact, err := ConditionalMutualInfo(xs, ys, zs, k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ConditionalMutualInfoApprox(xs, ys, zs, k, infotheory.ApproxOptions{Subsample: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.MI-exact) > 1e-9 {
		t.Errorf("r=m approx %v vs exact %v", got.MI, exact)
	}
	if got.StdErr != 0 || got.CILow != got.MI || got.CIHigh != got.MI {
		t.Errorf("r=m interval did not collapse: %+v", got)
	}
	if got.Evals != m {
		t.Errorf("Evals = %d, want %d", got.Evals, m)
	}
}

// TestCMIApproxCICoversExact: the subsampled estimate's own 95% interval
// must cover the exact-tier estimate at fixed seeds.
func TestCMIApproxCICoversExact(t *testing.T) {
	const m, k, r = 1500, 4, 200
	for seed := uint64(1); seed <= 3; seed++ {
		xs, ys, zs := gaussianTriplet(m, seed)
		exact, err := ConditionalMutualInfo(xs, ys, zs, k)
		if err != nil {
			t.Fatal(err)
		}
		est, err := ConditionalMutualInfoApprox(xs, ys, zs, k, infotheory.ApproxOptions{Subsample: r, Seed: seed, Sequence: 4})
		if err != nil {
			t.Fatal(err)
		}
		if est.StdErr <= 0 {
			t.Fatalf("seed %d: no error bar: %+v", seed, est)
		}
		if exact < est.CILow || exact > est.CIHigh {
			t.Errorf("seed %d: exact %v outside approx CI [%v, %v]", seed, exact, est.CILow, est.CIHigh)
		}
	}
}

// TestCMIApproxDeterministicDraw: identical options repeat exactly;
// changing Seed or Sequence changes the evaluation subset.
func TestCMIApproxDeterministicDraw(t *testing.T) {
	xs, ys, zs := gaussianTriplet(300, 9)
	base := infotheory.ApproxOptions{Subsample: 40, Seed: 1, Sequence: 1}
	a, err := ConditionalMutualInfoApprox(xs, ys, zs, 4, base)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ConditionalMutualInfoApprox(xs, ys, zs, 4, base)
	if a != b {
		t.Fatalf("repeat run differs: %+v vs %+v", a, b)
	}
	seed2, seq2 := base, base
	seed2.Seed = 2
	seq2.Sequence = 2
	if c, _ := ConditionalMutualInfoApprox(xs, ys, zs, 4, seed2); c.MI == a.MI {
		t.Error("changing Seed did not change the draw")
	}
	if c, _ := ConditionalMutualInfoApprox(xs, ys, zs, 4, seq2); c.MI == a.MI {
		t.Error("changing Sequence did not change the draw")
	}
}

// TestCMIApproxValidation: invalid subsample sizes and invalid pooled
// samples error out, never panic.
func TestCMIApproxValidation(t *testing.T) {
	xs, ys, zs := gaussianTriplet(50, 2)
	for _, r := range []int{0, -1, 51} {
		if _, err := ConditionalMutualInfoApprox(xs, ys, zs, 4, infotheory.ApproxOptions{Subsample: r}); err == nil {
			t.Errorf("Subsample=%d did not error", r)
		}
	}
	if _, err := ConditionalMutualInfoApprox(xs[:10], ys, zs, 4, infotheory.ApproxOptions{Subsample: 5}); err == nil {
		t.Error("mismatched sample counts did not error")
	}
}
