// Package infodynamics implements the time-directed information measures
// the paper names as future work (Sec. 7.3, citing Lizier et al.):
// transfer entropy between particles and active information storage of a
// particle, estimated with the Frenzel–Pompe k-NN conditional
// mutual-information estimator (the conditional sibling of the KSG
// estimator used for multi-information).
//
// These measures operate on *trajectories*, so they require the raw
// simulation output in which particle identity persists over time; the
// permutation-reduced representation of Sec. 5.2 deliberately destroys
// that correspondence (Sec. 5.2: "the correspondence between particles of
// the same sample, but different time steps is lost"). Samples are pooled
// over ensemble runs and over time, which assumes approximate
// stationarity of the increments over the pooled window — use windows, or
// accept the average (the paper itself reports its first attempts at this
// measurement as "still inconclusive"; this package provides the tooling
// to continue that line).
package infodynamics

import (
	"fmt"
	"math"

	"repro/internal/infotheory"
	"repro/internal/knn"
	"repro/internal/mathx"
	"repro/internal/rngx"
	"repro/internal/sim"
	"repro/internal/vec"
)

// ConditionalMutualInfo estimates I(X;Y|Z) in bits from pooled samples
// with the Frenzel–Pompe k-NN estimator:
//
//	Î = ψ(k) + ⟨ψ(n_z+1) − ψ(n_xz+1) − ψ(n_yz+1)⟩
//
// where the counts are taken strictly inside the max-norm distance to the
// k-th neighbour in the full joint space. xs, ys, zs must have equal
// length ≥ k+2; each sample is a non-empty vector whose dimension is
// consistent within one role (dimensions may differ between roles).
//
// The k-th-neighbour searches and the three subspace counts run on the
// shared tree engine (package knn) under the Chebyshev metric: one joint
// tree over the flattened (x,y,z) rows and one range-count tree each for
// the (z), (x,z) and (y,z) subspaces — the same four-structure layout
// JIDT-style implementations use — replacing the former private O(m²)
// sort-based sweep, with bit-identical results.
func ConditionalMutualInfo(xs, ys, zs [][]float64, k int) (float64, error) {
	w, err := buildCMISpace(xs, ys, zs, k)
	if err != nil {
		return 0, err
	}
	var acc mathx.KahanSum
	neigh := make([]knn.Neighbor, 0, k)
	for i := 0; i < w.m; i++ {
		var term float64
		term, neigh = w.term(i, k, neigh)
		acc.Add(term)
	}
	nats := mathx.Digamma(float64(k)) + acc.Sum()/float64(w.m)
	return mathx.Log2(nats), nil
}

// ConditionalMutualInfoApprox estimates I(X;Y|Z) on the approximate
// tier: the Frenzel–Pompe sample average evaluated at opts.Subsample
// drawn evaluation points, with neighbour searches and subspace counts
// still exact over all m samples — the conditional sibling of
// infotheory's MultiInfoKSGApprox, with the same deterministic draw
// (rngx.NewStream(Seed, Sequence)), the same finite-population-corrected
// standard error, and the same 95% interval semantics. Results depend
// only on the inputs and options, never on scheduling.
func ConditionalMutualInfoApprox(xs, ys, zs [][]float64, k int, opts infotheory.ApproxOptions) (infotheory.ApproxEstimate, error) {
	w, err := buildCMISpace(xs, ys, zs, k)
	if err != nil {
		return infotheory.ApproxEstimate{}, err
	}
	r := opts.Subsample
	if r < 1 || r > w.m {
		return infotheory.ApproxEstimate{}, fmt.Errorf("infodynamics: approximate CMI needs 1 <= Subsample <= %d, have %d", w.m, r)
	}
	stream := rngx.NewStream(opts.Seed, opts.Sequence)
	drawn := stream.SampleInto(make([]int32, w.m), w.m, r)
	aVals := make([]float64, r)
	neigh := make([]knn.Neighbor, 0, k)
	for pos, i := range drawn {
		aVals[pos], neigh = w.term(int(i), k, neigh)
	}
	// Reduce in draw order; mean and spread as in the multi-information
	// tier, with the sign of the ψ-terms flipped (here they add).
	var sum mathx.KahanSum
	for _, a := range aVals {
		sum.Add(a)
	}
	mean := sum.Sum() / float64(r)
	var se float64
	if r > 1 && w.m > 1 {
		var devSum mathx.KahanSum
		for _, a := range aVals {
			dev := a - mean
			devSum.Add(dev * dev)
		}
		s2 := devSum.Sum() / float64(r-1)
		fpc := math.Sqrt(float64(w.m-r) / float64(w.m-1))
		se = math.Sqrt(s2/float64(r)) * fpc
	}
	est := infotheory.ApproxEstimate{
		MI:     mathx.Log2(mathx.Digamma(float64(k)) + mean),
		StdErr: mathx.Log2(se),
		Evals:  r,
	}
	est.CILow = est.MI - 1.96*est.StdErr
	est.CIHigh = est.MI + 1.96*est.StdErr
	return est, nil
}

// cmiSpace is the validated, tree-indexed workspace shared by the exact
// and approximate CMI paths: the flattened joint and subspace rows plus
// their four Chebyshev trees.
type cmiSpace struct {
	m, dx, dy, dz, dim               int
	joint, zPts, xzPts, yzPts        []float64
	jointTree, zTree, xzTree, yzTree knn.Tree
}

// buildCMISpace validates the pooled samples and builds the four-tree
// workspace.
func buildCMISpace(xs, ys, zs [][]float64, k int) (*cmiSpace, error) {
	m := len(xs)
	if len(ys) != m || len(zs) != m {
		return nil, fmt.Errorf("infodynamics: sample counts differ: %d/%d/%d", len(xs), len(ys), len(zs))
	}
	if k < 1 || m < k+2 {
		return nil, fmt.Errorf("infodynamics: need at least k+2 = %d samples, have %d", k+2, m)
	}
	dx, dy, dz := len(xs[0]), len(ys[0]), len(zs[0])
	if dx == 0 || dy == 0 || dz == 0 {
		return nil, fmt.Errorf("infodynamics: empty sample vectors (dims %d/%d/%d)", dx, dy, dz)
	}
	for i := 0; i < m; i++ {
		if len(xs[i]) != dx || len(ys[i]) != dy || len(zs[i]) != dz {
			return nil, fmt.Errorf("infodynamics: sample %d has dims %d/%d/%d, want %d/%d/%d",
				i, len(xs[i]), len(ys[i]), len(zs[i]), dx, dy, dz)
		}
	}

	// Flatten the joint [x|y|z] rows and the three count subspaces. Under
	// the max-norm, the joint metric of the former private sweep (max of
	// the per-role max-norms) is exactly the Chebyshev distance on the
	// concatenated row, and a strict (x,z)-count is a strict Chebyshev
	// count on the [x|z] rows.
	w := &cmiSpace{m: m, dx: dx, dy: dy, dz: dz, dim: dx + dy + dz}
	w.joint = make([]float64, m*w.dim)
	w.zPts = make([]float64, m*dz)
	w.xzPts = make([]float64, m*(dx+dz))
	w.yzPts = make([]float64, m*(dy+dz))
	for i := 0; i < m; i++ {
		row := w.joint[i*w.dim : (i+1)*w.dim]
		copy(row, xs[i])
		copy(row[dx:], ys[i])
		copy(row[dx+dy:], zs[i])
		copy(w.zPts[i*dz:], zs[i])
		xz := w.xzPts[i*(dx+dz) : (i+1)*(dx+dz)]
		copy(xz, xs[i])
		copy(xz[dx:], zs[i])
		yz := w.yzPts[i*(dy+dz) : (i+1)*(dy+dz)]
		copy(yz, ys[i])
		copy(yz[dy:], zs[i])
	}
	w.jointTree.Rebuild(w.joint, m, w.dim, knn.Chebyshev, nil)
	w.zTree.Rebuild(w.zPts, m, dz, knn.Chebyshev, nil)
	w.xzTree.Rebuild(w.xzPts, m, dx+dz, knn.Chebyshev, nil)
	w.yzTree.Rebuild(w.yzPts, m, dy+dz, knn.Chebyshev, nil)
	return w, nil
}

// term evaluates sample i's ψ-term ψ(n_z+1) − ψ(n_xz+1) − ψ(n_yz+1),
// threading the caller's neighbour scratch.
func (w *cmiSpace) term(i, k int, neigh []knn.Neighbor) (float64, []knn.Neighbor) {
	neigh = w.jointTree.KNearest(w.joint[i*w.dim:(i+1)*w.dim], k, int32(i), neigh)
	eps := neigh[k-1].Dist
	nZ := w.zTree.CountWithin(w.zPts[i*w.dz:(i+1)*w.dz], eps, false, int32(i))
	nXZ := w.xzTree.CountWithin(w.xzPts[i*(w.dx+w.dz):(i+1)*(w.dx+w.dz)], eps, false, int32(i))
	nYZ := w.yzTree.CountWithin(w.yzPts[i*(w.dy+w.dz):(i+1)*(w.dy+w.dz)], eps, false, int32(i))
	return mathx.Digamma(float64(nZ+1)) -
		mathx.Digamma(float64(nXZ+1)) -
		mathx.Digamma(float64(nYZ+1)), neigh
}

// Trajectory is one particle's positions over the recorded steps of one
// sample.
type Trajectory []vec.Vec2

// TransferEntropy estimates the transfer entropy TE_{Y→X} =
// I(X_{t+1}; Y_t | X_t) in bits, pooling the (future, source, past)
// triples over all provided sample pairs and all consecutive recorded
// steps. xs[s] and ys[s] must come from the same run s and have equal
// length ≥ 2.
func TransferEntropy(xs, ys []Trajectory, k int) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("infodynamics: %d target trajectories, %d source", len(xs), len(ys))
	}
	var fut, src, past [][]float64
	for s := range xs {
		if len(xs[s]) != len(ys[s]) {
			return 0, fmt.Errorf("infodynamics: sample %d trajectory lengths differ", s)
		}
		for t := 0; t+1 < len(xs[s]); t++ {
			fut = append(fut, []float64{xs[s][t+1].X, xs[s][t+1].Y})
			src = append(src, []float64{ys[s][t].X, ys[s][t].Y})
			past = append(past, []float64{xs[s][t].X, xs[s][t].Y})
		}
	}
	if len(fut) == 0 {
		return 0, fmt.Errorf("infodynamics: no transitions to pool")
	}
	return ConditionalMutualInfo(fut, src, past, k)
}

// ActiveStorage estimates the active information storage
// A_X = I(X_{t+1}; X_t) in bits (history length 1), pooling over samples
// and steps, with the KSG-style estimator obtained by conditioning on a
// constant (degenerate) variable.
func ActiveStorage(xs []Trajectory, k int) (float64, error) {
	var fut, past [][]float64
	for s := range xs {
		for t := 0; t+1 < len(xs[s]); t++ {
			fut = append(fut, []float64{xs[s][t+1].X, xs[s][t+1].Y})
			past = append(past, []float64{xs[s][t].X, xs[s][t].Y})
		}
	}
	if len(fut) == 0 {
		return 0, fmt.Errorf("infodynamics: no transitions to pool")
	}
	// I(X;Y) = I(X;Y|∅): condition on a constant scalar.
	zs := make([][]float64, len(fut))
	for i := range zs {
		zs[i] = []float64{0}
	}
	return ConditionalMutualInfo(fut, past, zs, k)
}

// ParticleTrajectories extracts particle i's trajectory from every sample
// of an ensemble, optionally re-expressed relative to the collective
// centroid of its frame (removing the shared drift so the measures see
// relative motion, the organising signal).
func ParticleTrajectories(ens *sim.Ensemble, particle int, centred bool) []Trajectory {
	out := make([]Trajectory, len(ens.Trajs))
	for s, traj := range ens.Trajs {
		tr := make(Trajectory, len(traj.Frames))
		for t, frame := range traj.Frames {
			p := frame[particle]
			if centred {
				p = p.Sub(vec.Centroid(frame))
			}
			tr[t] = p
		}
		out[s] = tr
	}
	return out
}

// PairTransfer reports the transfer entropy in both directions between two
// particles of an ensemble.
type PairTransfer struct {
	From, To     int
	TE           float64 // TE_{From→To}
	TEReverse    float64 // TE_{To→From}
	NetDirection int     // +1 if From drives To, −1 if the reverse, 0 if balanced
}

// MeasurePairTransfer computes bidirectional transfer entropy between two
// particles over the whole ensemble (centred coordinates).
func MeasurePairTransfer(ens *sim.Ensemble, a, b, k int) (PairTransfer, error) {
	ta := ParticleTrajectories(ens, a, true)
	tb := ParticleTrajectories(ens, b, true)
	ab, err := TransferEntropy(tb, ta, k) // a → b: target b, source a
	if err != nil {
		return PairTransfer{}, err
	}
	ba, err := TransferEntropy(ta, tb, k)
	if err != nil {
		return PairTransfer{}, err
	}
	pt := PairTransfer{From: a, To: b, TE: ab, TEReverse: ba}
	switch {
	case ab > ba+1e-9:
		pt.NetDirection = 1
	case ba > ab+1e-9:
		pt.NetDirection = -1
	}
	return pt, nil
}
