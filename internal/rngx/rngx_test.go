package rngx

import (
	"math"
	"testing"
)

func TestNewIsDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestSplitIsStable(t *testing.T) {
	a := Split(7, 3)
	b := Split(7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split not stable")
		}
	}
}

func TestSplitStreamsAreIndependentOfCreationOrder(t *testing.T) {
	// Stream 5 must be the same whether or not other streams were made.
	first := Split(99, 5).Uint64()
	_ = Split(99, 0).Uint64()
	_ = Split(99, 1).Uint64()
	second := Split(99, 5).Uint64()
	if first != second {
		t.Fatal("stream depends on creation order")
	}
}

func TestSplitStreamsDecorrelated(t *testing.T) {
	// Adjacent streams must not produce correlated output; check the
	// first draws of 1000 consecutive streams look uniform.
	n := 1000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Split(123, uint64(i)).Float64()
	}
	mean := sum / float64(n)
	// Uniform(0,1) mean 0.5, std of the mean ≈ 0.289/√1000 ≈ 0.009.
	if math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("stream first-draw mean = %v, want ≈ 0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	n := 200000
	mean, variance := 1.5, 0.05 // the paper's noise variance
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal(mean, variance)
		sum += x
		sumSq += x * x
	}
	m := sum / float64(n)
	v := sumSq/float64(n) - m*m
	if math.Abs(m-mean) > 0.01 {
		t.Errorf("sample mean = %v, want %v", m, mean)
	}
	if math.Abs(v-variance) > 0.005 {
		t.Errorf("sample variance = %v, want %v", v, variance)
	}
}

func TestNormalZeroVariance(t *testing.T) {
	r := New(1)
	if x := r.Normal(3, 0); x != 3 {
		t.Fatalf("Normal(3,0) = %v", x)
	}
}

func TestNormalNegativeVariancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative variance should panic")
		}
	}()
	New(1).Normal(0, -1)
}

func TestUniformInRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		x := r.UniformIn(2, 8)
		if x < 2 || x >= 8 {
			t.Fatalf("UniformIn out of range: %v", x)
		}
	}
}

func TestUniformDiscStatistics(t *testing.T) {
	r := New(11)
	radius := 5.0
	n := 100000
	inside, inHalfRadius := 0, 0
	var sx, sy float64
	for i := 0; i < n; i++ {
		x, y := r.UniformDisc(radius)
		d2 := x*x + y*y
		if d2 <= radius*radius {
			inside++
		}
		if d2 <= radius*radius/4 {
			inHalfRadius++
		}
		sx += x
		sy += y
	}
	if inside != n {
		t.Fatalf("%d/%d points outside the disc", n-inside, n)
	}
	// Uniform area ⇒ quarter of the mass within half the radius.
	frac := float64(inHalfRadius) / float64(n)
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("mass within r/2 = %v, want 0.25 (area-uniform)", frac)
	}
	if math.Abs(sx/float64(n)) > 0.05 || math.Abs(sy/float64(n)) > 0.05 {
		t.Errorf("disc mean = (%v,%v), want ≈ origin", sx/float64(n), sy/float64(n))
	}
}

func TestUniformDiscConstantConsumption(t *testing.T) {
	// UniformDisc must consume exactly two draws per call: the
	// trajectory-invariance property tests rely on deterministic
	// stream alignment.
	a := New(77)
	b := New(77)
	a.UniformDisc(3)
	b.Float64()
	b.Float64()
	if a.Float64() != b.Float64() {
		t.Fatal("UniformDisc consumed a variable number of draws")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
