package rngx

import (
	"math"
	"testing"
)

func TestNewIsDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestSplitIsStable(t *testing.T) {
	a := Split(7, 3)
	b := Split(7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split not stable")
		}
	}
}

func TestSplitStreamsAreIndependentOfCreationOrder(t *testing.T) {
	// Stream 5 must be the same whether or not other streams were made.
	first := Split(99, 5).Uint64()
	_ = Split(99, 0).Uint64()
	_ = Split(99, 1).Uint64()
	second := Split(99, 5).Uint64()
	if first != second {
		t.Fatal("stream depends on creation order")
	}
}

func TestSplitStreamsDecorrelated(t *testing.T) {
	// Adjacent streams must not produce correlated output; check the
	// first draws of 1000 consecutive streams look uniform.
	n := 1000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Split(123, uint64(i)).Float64()
	}
	mean := sum / float64(n)
	// Uniform(0,1) mean 0.5, std of the mean ≈ 0.289/√1000 ≈ 0.009.
	if math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("stream first-draw mean = %v, want ≈ 0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	n := 200000
	mean, variance := 1.5, 0.05 // the paper's noise variance
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal(mean, variance)
		sum += x
		sumSq += x * x
	}
	m := sum / float64(n)
	v := sumSq/float64(n) - m*m
	if math.Abs(m-mean) > 0.01 {
		t.Errorf("sample mean = %v, want %v", m, mean)
	}
	if math.Abs(v-variance) > 0.005 {
		t.Errorf("sample variance = %v, want %v", v, variance)
	}
}

func TestNormalZeroVariance(t *testing.T) {
	r := New(1)
	if x := r.Normal(3, 0); x != 3 {
		t.Fatalf("Normal(3,0) = %v", x)
	}
}

func TestNormalNegativeVariancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative variance should panic")
		}
	}()
	New(1).Normal(0, -1)
}

func TestUniformInRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		x := r.UniformIn(2, 8)
		if x < 2 || x >= 8 {
			t.Fatalf("UniformIn out of range: %v", x)
		}
	}
}

func TestUniformDiscStatistics(t *testing.T) {
	r := New(11)
	radius := 5.0
	n := 100000
	inside, inHalfRadius := 0, 0
	var sx, sy float64
	for i := 0; i < n; i++ {
		x, y := r.UniformDisc(radius)
		d2 := x*x + y*y
		if d2 <= radius*radius {
			inside++
		}
		if d2 <= radius*radius/4 {
			inHalfRadius++
		}
		sx += x
		sy += y
	}
	if inside != n {
		t.Fatalf("%d/%d points outside the disc", n-inside, n)
	}
	// Uniform area ⇒ quarter of the mass within half the radius.
	frac := float64(inHalfRadius) / float64(n)
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("mass within r/2 = %v, want 0.25 (area-uniform)", frac)
	}
	if math.Abs(sx/float64(n)) > 0.05 || math.Abs(sy/float64(n)) > 0.05 {
		t.Errorf("disc mean = (%v,%v), want ≈ origin", sx/float64(n), sy/float64(n))
	}
}

func TestUniformDiscConstantConsumption(t *testing.T) {
	// UniformDisc must consume exactly two draws per call: the
	// trajectory-invariance property tests rely on deterministic
	// stream alignment.
	a := New(77)
	b := New(77)
	a.UniformDisc(3)
	b.Float64()
	b.Float64()
	if a.Float64() != b.Float64() {
		t.Fatal("UniformDisc consumed a variable number of draws")
	}
}

func TestStreamGolden(t *testing.T) {
	// Streams feed deterministic subsample selection in the approximate
	// estimator tier; these pinned values freeze the output sequence —
	// changing them invalidates every approximate-tier result identity.
	s := NewStream(42, 7)
	want := []uint64{
		0xa242ac9783e3cfad,
		0x5f97b4c05e4aad3a,
		0x2f5a473856a559e7,
		0xf963ed0cfe1604de,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("Stream(42,7) draw %d = %#016x, want %#016x", i, got, w)
		}
	}
	s2 := NewStream(3, 0)
	var dst [10]int32
	got := s2.SampleInto(dst[:], 10, 4)
	wantSample := []int32{5, 6, 9, 1}
	for i := range wantSample {
		if got[i] != wantSample[i] {
			t.Fatalf("SampleInto = %v, want %v", got, wantSample)
		}
	}
}

func TestStreamIndependentOfCreationOrder(t *testing.T) {
	first := NewStream(99, 5)
	a := first.Uint64()
	_ = NewStream(99, 0)
	_ = NewStream(99, 1)
	second := NewStream(99, 5)
	if b := second.Uint64(); a != b {
		t.Fatal("Stream depends on creation order")
	}
}

func TestStreamDistinctFromSplit(t *testing.T) {
	// Stream(seed, i) and Split(seed, i) must draw from decorrelated
	// sequences: experiment code uses both against one master seed.
	sp := Split(17, 4)
	st := NewStream(17, 4)
	same := 0
	for i := 0; i < 100; i++ {
		if sp.Uint64() == st.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from Split and Stream", same)
	}
}

func TestStreamIntNUniform(t *testing.T) {
	s := NewStream(8, 8)
	const n, buckets = 100000, 10
	var counts [buckets]int
	for i := 0; i < n; i++ {
		v := s.IntN(buckets)
		if v < 0 || v >= buckets {
			t.Fatalf("IntN out of range: %d", v)
		}
		counts[v]++
	}
	for b, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d frequency %v, want ≈ 0.1", b, frac)
		}
	}
}

func TestStreamIntNRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntN(0) should panic")
		}
	}()
	s := NewStream(1, 1)
	s.IntN(0)
}

func TestSampleIntoIsDistinctSubset(t *testing.T) {
	s := NewStream(5, 2)
	dst := make([]int32, 50)
	for trial := 0; trial < 200; trial++ {
		r := 1 + s.IntN(50)
		sample := s.SampleInto(dst, 50, r)
		if len(sample) != r {
			t.Fatalf("len = %d, want %d", len(sample), r)
		}
		seen := make(map[int32]bool, r)
		for _, v := range sample {
			if v < 0 || v >= 50 || seen[v] {
				t.Fatalf("not a distinct subset of [0,50): %v", sample)
			}
			seen[v] = true
		}
	}
}

func TestSampleIntoFullDrawIsPermutation(t *testing.T) {
	s := NewStream(6, 3)
	dst := make([]int32, 20)
	p := s.SampleInto(dst, 20, 20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestStreamZeroAlloc(t *testing.T) {
	// The whole point of Stream over Split: usable in 0 allocs/op
	// steady-state paths.
	s := NewStream(12, 34)
	dst := make([]int32, 1000)
	allocs := testing.AllocsPerRun(100, func() {
		_ = s.SampleInto(dst, 1000, 100)
	})
	if allocs != 0 {
		t.Fatalf("SampleInto allocates %v per run, want 0", allocs)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
