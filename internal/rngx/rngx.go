// Package rngx provides the deterministic random-number plumbing for the
// ensemble experiments.
//
// Every experiment in the paper is an ensemble of m = 500–1000 independent
// simulation runs (Sec. 5.1). For the results to be reproducible and the
// runs to be executable concurrently, each run needs its own independent
// random stream derived deterministically from a single experiment seed.
// rngx wraps math/rand/v2's PCG generator with a SplitMix64-style stream
// splitter so that stream i of seed s is stable across program runs and
// across the order in which goroutines pick up work.
package rngx

import (
	"math"
	"math/rand/v2"
)

// splitmix64 advances a SplitMix64 state and returns the next output. It is
// the standard seed-expansion function recommended for seeding other
// generators; consecutive or even identical-but-indexed inputs produce
// decorrelated outputs.
func splitmix64(state uint64) uint64 {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Source is a deterministic random source with value semantics suitable for
// embedding in experiment configs. The zero value is NOT usable; construct
// with New or Split.
type Source struct {
	*rand.Rand
}

// New returns a source seeded from the experiment seed.
func New(seed uint64) Source {
	return Source{rand.New(rand.NewPCG(splitmix64(seed), splitmix64(seed^0xDEADBEEFCAFEF00D)))}
}

// Split returns the stream-th independent sub-stream of the given seed.
// Split(seed, i) is stable regardless of how many other streams exist or
// in which order they are created, which keeps parallel ensembles
// reproducible.
func Split(seed uint64, stream uint64) Source {
	h := splitmix64(seed ^ splitmix64(stream*0xA24BAED4963EE407+1))
	return New(h)
}

// Stream is a value-type deterministic SplitMix64 stream: the
// allocation-free sibling of Split for hot paths that must stay at
// 0 allocs/op in steady state (Split builds a heap-allocated PCG
// generator per call; a Stream lives on the caller's stack or inside a
// recycled scratch struct). Stream (seed, i) draws are derived through
// the same SplitMix64 mixing as Split but under a distinct domain
// constant, so a Stream never collides with the Split sub-stream of the
// same (seed, i) pair — experiment code can use both against one master
// seed without coupling their draw sequences.
//
// Streams feed deterministic subsample selection (the approximate
// estimator tier), so the output sequence for a given (seed, stream) is
// frozen: TestStreamGolden pins it, and changing it invalidates every
// approximate-tier result identity.
type Stream struct {
	state uint64
}

// streamDomain separates Stream's seed derivation from Split's.
const streamDomain = 0x53_4F_50_53_54_52_4D // "SOPSTRM"

// NewStream returns the stream-th independent SplitMix64 stream of the
// given seed. Like Split, NewStream(seed, i) is stable regardless of how
// many other streams exist or in which order they are created.
func NewStream(seed, stream uint64) Stream {
	return Stream{state: splitmix64(seed^streamDomain) ^ splitmix64(stream*0xA24BAED4963EE407+1)}
}

// Uint64 returns the next 64-bit output of the stream.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// IntN returns an integer uniform in [0, n), n > 0, using rejection
// sampling so the distribution is exactly uniform (no modulo bias) and
// the algorithm — hence every downstream result — is stable.
func (s *Stream) IntN(n int) int {
	if n <= 0 {
		panic("rngx: IntN needs n > 0")
	}
	un := uint64(n)
	// Reject the partial final interval of the 2^64 range.
	limit := (^uint64(0) / un) * un
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % un)
		}
	}
}

// SampleInto writes a uniform random subset of r distinct integers from
// [0, n) into dst[:r] (which must have length ≥ n, used as scratch), via
// a partial Fisher–Yates shuffle: dst[:r] ends in the random draw order
// the shuffle produced. The draw consumes exactly r IntN calls, so the
// stream position after the call is a function of r alone.
func (s *Stream) SampleInto(dst []int32, n, r int) []int32 {
	if r < 0 || r > n || len(dst) < n {
		panic("rngx: SampleInto needs 0 <= r <= n <= len(dst)")
	}
	for i := 0; i < n; i++ {
		dst[i] = int32(i)
	}
	for i := 0; i < r; i++ {
		j := i + s.IntN(n-i)
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst[:r]
}

// Normal returns a sample from N(mean, variance). Note the second parameter
// is the variance, matching the paper's notation w ~ N(0, 0.05).
func (s Source) Normal(mean, variance float64) float64 {
	if variance < 0 {
		panic("rngx: negative variance")
	}
	if variance == 0 {
		return mean
	}
	return mean + s.NormFloat64()*math.Sqrt(variance)
}

// UniformIn returns a sample uniform in [lo, hi).
func (s Source) UniformIn(lo, hi float64) float64 {
	return lo + s.Float64()*(hi-lo)
}

// UniformDisc returns a point uniformly distributed on the disc of the given
// radius centred at the origin, using the exact inverse-CDF radial method
// (no rejection), so consumption of random numbers per call is constant —
// a property the trajectory-invariance property tests rely on.
func (s Source) UniformDisc(radius float64) (x, y float64) {
	r := radius * math.Sqrt(s.Float64())
	theta := 2 * math.Pi * s.Float64()
	return r * math.Cos(theta), r * math.Sin(theta)
}

// Perm returns a random permutation of n elements.
func (s Source) Perm(n int) []int {
	return s.Rand.Perm(n)
}
