// Package rngx provides the deterministic random-number plumbing for the
// ensemble experiments.
//
// Every experiment in the paper is an ensemble of m = 500–1000 independent
// simulation runs (Sec. 5.1). For the results to be reproducible and the
// runs to be executable concurrently, each run needs its own independent
// random stream derived deterministically from a single experiment seed.
// rngx wraps math/rand/v2's PCG generator with a SplitMix64-style stream
// splitter so that stream i of seed s is stable across program runs and
// across the order in which goroutines pick up work.
package rngx

import (
	"math"
	"math/rand/v2"
)

// splitmix64 advances a SplitMix64 state and returns the next output. It is
// the standard seed-expansion function recommended for seeding other
// generators; consecutive or even identical-but-indexed inputs produce
// decorrelated outputs.
func splitmix64(state uint64) uint64 {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Source is a deterministic random source with value semantics suitable for
// embedding in experiment configs. The zero value is NOT usable; construct
// with New or Split.
type Source struct {
	*rand.Rand
}

// New returns a source seeded from the experiment seed.
func New(seed uint64) Source {
	return Source{rand.New(rand.NewPCG(splitmix64(seed), splitmix64(seed^0xDEADBEEFCAFEF00D)))}
}

// Split returns the stream-th independent sub-stream of the given seed.
// Split(seed, i) is stable regardless of how many other streams exist or
// in which order they are created, which keeps parallel ensembles
// reproducible.
func Split(seed uint64, stream uint64) Source {
	h := splitmix64(seed ^ splitmix64(stream*0xA24BAED4963EE407+1))
	return New(h)
}

// Normal returns a sample from N(mean, variance). Note the second parameter
// is the variance, matching the paper's notation w ~ N(0, 0.05).
func (s Source) Normal(mean, variance float64) float64 {
	if variance < 0 {
		panic("rngx: negative variance")
	}
	if variance == 0 {
		return mean
	}
	return mean + s.NormFloat64()*math.Sqrt(variance)
}

// UniformIn returns a sample uniform in [lo, hi).
func (s Source) UniformIn(lo, hi float64) float64 {
	return lo + s.Float64()*(hi-lo)
}

// UniformDisc returns a point uniformly distributed on the disc of the given
// radius centred at the origin, using the exact inverse-CDF radial method
// (no rejection), so consumption of random numbers per call is constant —
// a property the trajectory-invariance property tests rely on.
func (s Source) UniformDisc(radius float64) (x, y float64) {
	r := radius * math.Sqrt(s.Float64())
	theta := 2 * math.Pi * s.Float64()
	return r * math.Cos(theta), r * math.Sin(theta)
}

// Perm returns a random permutation of n elements.
func (s Source) Perm(n int) []int {
	return s.Rand.Perm(n)
}
