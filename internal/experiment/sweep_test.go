package experiment

import (
	"context"
	"math"
	"testing"
)

// TestSweepDriversRejectDegenerateRepeats is the regression test for the
// silent-NaN bug: Scale.Repeats ≤ 0 used to make the sweep drivers skip
// every run and return NaN/empty curves; now it is a validation error.
func TestSweepDriversRejectDegenerateRepeats(t *testing.T) {
	for _, repeats := range []int{0, -3} {
		sc := TestScale()
		sc.Repeats = repeats
		if _, err := Fig8TypeCountSweep(context.Background(), nil, sc, 3, 1); err == nil {
			t.Fatalf("Fig8TypeCountSweep accepted Repeats=%d", repeats)
		}
		if _, err := Fig9CutoffSweep(context.Background(), nil, sc, 1); err == nil {
			t.Fatalf("Fig9CutoffSweep accepted Repeats=%d", repeats)
		}
		if _, err := Fig10TypesVsCutoff(context.Background(), nil, sc, 1); err == nil {
			t.Fatalf("Fig10TypesVsCutoff accepted Repeats=%d", repeats)
		}
		if _, _, err := AverageMI(context.Background(), nil, sc, 1, nil); err == nil {
			t.Fatalf("AverageMI accepted Repeats=%d", repeats)
		}
	}
	if _, err := EstimatorComparison(context.Background(), nil, 3, 50, 0, 0.5, 4, 1); err == nil {
		t.Fatal("EstimatorComparison accepted reps=0")
	}
	if _, err := Fig8TypeCountSweep(context.Background(), nil, TestScale(), 0, 1); err == nil {
		t.Fatal("Fig8TypeCountSweep accepted maxTypes=0")
	}
}

func TestMeanMICurveMatchesSerialArithmetic(t *testing.T) {
	a := &Result{Times: []int{0, 5}, MI: []float64{1, 3}}
	b := &Result{Times: []int{0, 5}, MI: []float64{2, 5}}
	times, mi, err := MeanMICurve([]*Result{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if times[1] != 5 || mi[0] != 1.5 || mi[1] != 4 {
		t.Fatalf("mean curve = %v %v", times, mi)
	}
	if _, _, err := MeanMICurve(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	short := &Result{Times: []int{0}, MI: []float64{1}}
	if _, _, err := MeanMICurve([]*Result{a, short}); err == nil {
		t.Fatal("mismatched grids accepted")
	}
}

func TestMeanDeltaI(t *testing.T) {
	rs := []*Result{
		{MI: []float64{0, 2}},
		{MI: []float64{1, 5}},
	}
	if got := MeanDeltaI(rs); got != 3 {
		t.Fatalf("mean deltaI = %v, want 3", got)
	}
	if got := MeanDeltaI(nil); !math.IsNaN(got) && got != 0 {
		// mathx.Mean of an empty slice defines the edge; just ensure no
		// panic.
		_ = got
	}
}

// TestSerialSweeperDoOrderAndWorkerZero: the serial reference runs jobs
// in order on worker slot 0 — the properties the comparison's per-worker
// engine reuse relies on.
func TestSerialSweeperDoOrderAndWorkerZero(t *testing.T) {
	var order []int
	err := SerialSweeper{}.Do(context.Background(), 4, func(worker, i int) error {
		if worker != 0 {
			t.Fatalf("worker = %d", worker)
		}
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("order = %v", order)
		}
	}
}
