package experiment

import (
	"math"
	"testing"

	"repro/internal/forces"
	"repro/internal/sim"
	"repro/internal/statcomplex"
)

func TestSymbolicComplexityProfileShapes(t *testing.T) {
	ens, err := sim.RunEnsemble(sim.EnsembleConfig{
		Sim: sim.Config{
			N:      10,
			Types:  sim.TypesRoundRobin(10, 2),
			Force:  forces.MustF1(forces.ConstantMatrix(2, 1), forces.ConstantMatrix(2, 2)),
			Cutoff: 6,
		},
		M:           16,
		Steps:       60,
		RecordEvery: 2,
		Seed:        13,
	})
	if err != nil {
		t.Fatal(err)
	}
	profile, err := SymbolicComplexityProfile(ens, 10, 4, 0.05,
		statcomplex.Options{MaxHistory: 1, MinCount: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(profile) != 3 { // 31 frames / 10 per window
		t.Fatalf("profile has %d windows, want 3", len(profile))
	}
	for _, p := range profile {
		if math.IsNaN(p.C) || math.IsNaN(p.H) || p.C < 0 || p.H < 0 {
			t.Fatalf("invalid complexity point: %+v", p)
		}
		if p.EndStep <= p.StartStep {
			t.Fatalf("bad window bounds: %+v", p)
		}
	}
}

func TestSymbolicComplexityRandomPhaseIsSimple(t *testing.T) {
	// A non-interacting collective: displacements are isotropic i.i.d.
	// noise, so each window's symbol process has (near) one causal state
	// and complexity ≈ 0 — the Sec. 7.1 claim for the random phase.
	ens, err := sim.RunEnsemble(sim.EnsembleConfig{
		Sim: sim.Config{
			N:          8,
			Force:      forces.MustF1(forces.ConstantMatrix(1, 1), forces.ConstantMatrix(1, 1)),
			Cutoff:     1e-9,
			InitRadius: 50,
		},
		M:           16,
		Steps:       60,
		RecordEvery: 2,
		Seed:        14,
	})
	if err != nil {
		t.Fatal(err)
	}
	profile, err := SymbolicComplexityProfile(ens, 15, 4, 0, // minStep 0: pure directions
		statcomplex.Options{MaxHistory: 1, MinCount: 20, Tolerance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profile {
		if p.C > 0.5 {
			t.Fatalf("random-phase complexity %v too high: %+v", p.C, p)
		}
	}
}

func TestSymbolicComplexityProfileValidation(t *testing.T) {
	ens, err := sim.RunEnsemble(sim.EnsembleConfig{
		Sim: sim.Config{
			N:      4,
			Force:  forces.MustF1(forces.ConstantMatrix(1, 1), forces.ConstantMatrix(1, 2)),
			Cutoff: 5,
		},
		M: 2, Steps: 10, RecordEvery: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SymbolicComplexityProfile(ens, 1, 4, 0.1, statcomplex.Options{}); err == nil {
		t.Error("window of 1 accepted")
	}
	if _, err := SymbolicComplexityProfile(ens, 99, 4, 0.1, statcomplex.Options{}); err == nil {
		t.Error("window larger than the recording accepted")
	}
}
