package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/infotheory"
	"repro/internal/mathx"
	"repro/internal/rngx"
)

// ComparisonRow summarises one estimator's behaviour on a ground-truth
// benchmark distribution.
type ComparisonRow struct {
	Estimator string
	// Mean and Std are over the repeated estimates (bits).
	Mean, Std float64
	// Bias is Mean − TrueMI; RMSE the root-mean-square error.
	Bias, RMSE float64
	// PerEval is the average wall time of one estimate.
	PerEval time.Duration
}

// ComparisonTable is the estimator comparison of Sec. 5.3: KSG vs a
// Gaussian-kernel estimator vs shrinkage binning, on equicorrelated
// Gaussian data with analytically known multi-information.
type ComparisonTable struct {
	NVars, M int
	Rho      float64
	TrueMI   float64
	Rows     []ComparisonRow
}

// GaussianTrueMI returns the exact multi-information, in bits, of n jointly
// Gaussian scalar variables with pairwise correlation rho (equicorrelation
// matrix R): I = −½·log₂ det R = −½·log₂[(1−ρ)^{n−1}·(1+(n−1)ρ)].
func GaussianTrueMI(n int, rho float64) float64 {
	det := math.Pow(1-rho, float64(n-1)) * (1 + float64(n-1)*rho)
	return -0.5 * math.Log2(det)
}

// SampleEquicorrelatedGaussians draws m samples of n scalar variables with
// the equicorrelation structure corr(X_a, X_b) = rho (a ≠ b), via the
// one-factor construction X_v = √ρ·Z + √(1−ρ)·ξ_v. Requires 0 ≤ rho < 1.
func SampleEquicorrelatedGaussians(m, n int, rho float64, rng rngx.Source) *infotheory.Dataset {
	if rho < 0 || rho >= 1 {
		panic("experiment: rho must be in [0,1)")
	}
	dims := make([]int, n)
	for v := range dims {
		dims[v] = 1
	}
	d := infotheory.NewDataset(m, dims)
	a := math.Sqrt(rho)
	b := math.Sqrt(1 - rho)
	for s := 0; s < m; s++ {
		z := rng.NormFloat64()
		for v := 0; v < n; v++ {
			d.SetVar(s, v, a*z+b*rng.NormFloat64())
		}
	}
	return d
}

// EstimatorComparison runs every estimator `reps` times on fresh
// equicorrelated Gaussian datasets (n variables, m samples, correlation
// rho) and reports bias, spread and timing against the analytic truth.
// The continuous estimators run on infotheory.Engine — the tree-
// accelerated stack the measurement pipeline actually executes, with one
// engine per worker slot so scratch recycling matches the pipeline's
// per-worker reuse (the brute-force definitions remain the estimator
// packages' test reference, not what is timed here). The reps execute
// through sw's job runner (nil = serial); estimates are bit-identical for
// every sweeper, and PerEval is the mean of the individually timed
// evaluations, so it stays meaningful under concurrency.
//
// Expected shape (paper, Sec. 5.3): KSG is fast and low-variance; the
// kernel estimator is orders of magnitude slower with larger variance in
// higher dimension; the binned estimator overestimates grossly in high
// dimension.
func EstimatorComparison(ctx context.Context, sw Sweeper, nVars, m, reps int, rho float64, kKSG int, seed uint64) (*ComparisonTable, error) {
	if kKSG <= 0 {
		kKSG = DefaultKSGK
	}
	if reps < 1 {
		return nil, fmt.Errorf("experiment: EstimatorComparison needs reps >= 1, got %d", reps)
	}
	if kKSG >= m {
		return nil, fmt.Errorf("experiment: EstimatorComparison needs k (%d) < m (%d)", kKSG, m)
	}
	sweeper := sweeperOrSerial(sw)
	table := &ComparisonTable{
		NVars:  nVars,
		M:      m,
		Rho:    rho,
		TrueMI: GaussianTrueMI(nVars, rho),
	}
	type namedEst struct {
		name string
		fn   func(eng *infotheory.Engine, d *infotheory.Dataset) float64
	}
	ests := []namedEst{
		{"ksg-paper", func(eng *infotheory.Engine, d *infotheory.Dataset) float64 {
			return eng.MultiInfoKSGVariant(d, kKSG, infotheory.KSGPaper)
		}},
		{"ksg1", func(eng *infotheory.Engine, d *infotheory.Dataset) float64 {
			return eng.MultiInfoKSGVariant(d, kKSG, infotheory.KSG1)
		}},
		{"ksg2", func(eng *infotheory.Engine, d *infotheory.Dataset) float64 {
			return eng.MultiInfoKSGVariant(d, kKSG, infotheory.KSG2)
		}},
		{"kernel", func(eng *infotheory.Engine, d *infotheory.Dataset) float64 {
			return eng.MultiInfoKernel(d)
		}},
		{"binned-js", func(_ *infotheory.Engine, d *infotheory.Dataset) float64 {
			return infotheory.MultiInfoBinned(d, infotheory.BinnedOptions{})
		}},
		{"binned-ml", func(_ *infotheory.Engine, d *infotheory.Dataset) float64 {
			return infotheory.MultiInfoBinned(d, infotheory.BinnedOptions{PlainML: true})
		}},
	}
	// Pre-draw the datasets so every estimator sees the same data.
	datasets := make([]*infotheory.Dataset, reps)
	for r := range datasets {
		datasets[r] = SampleEquicorrelatedGaussians(m, nVars, rho, rngx.Split(seed, uint64(r)))
	}
	// One engine per worker slot, shared across estimators: trees and
	// scratch are recycled call to call exactly as a pipeline estimation
	// worker recycles them. An engine is never used concurrently — a slot
	// processes one job at a time.
	engines := make([]*infotheory.Engine, reps)
	vals := make([]float64, reps)
	durs := make([]time.Duration, reps)
	for _, e := range ests {
		err := sweeper.Do(ctx, reps, func(worker, r int) error {
			eng := engines[worker]
			if eng == nil {
				eng = infotheory.NewEngine(0)
				engines[worker] = eng
			}
			// The PerEval column is wall-clock by definition: it reports
			// how long an estimator takes, never feeds a result value,
			// and is excluded from checkpoints and fingerprints.
			start := time.Now()
			vals[r] = e.fn(eng, datasets[r])
			durs[r] = time.Since(start)
			return nil
		})
		if err != nil {
			return nil, err
		}
		mean := mathx.Mean(vals)
		std := mathx.StdDev(vals)
		if reps < 2 {
			std = 0
		}
		var mse float64
		var total time.Duration
		for r, v := range vals {
			mse += mathx.Sq(v - table.TrueMI)
			total += durs[r]
		}
		mse /= float64(reps)
		table.Rows = append(table.Rows, ComparisonRow{
			Estimator: e.name,
			Mean:      mean,
			Std:       std,
			Bias:      mean - table.TrueMI,
			RMSE:      math.Sqrt(mse),
			PerEval:   total / time.Duration(reps),
		})
	}
	return table, nil
}

// String renders the table for the CLI and EXPERIMENTS.md.
func (t *ComparisonTable) String() string {
	s := fmt.Sprintf("estimator comparison: n=%d vars, m=%d samples, rho=%.2f, true MI=%.3f bits\n",
		t.NVars, t.M, t.Rho, t.TrueMI)
	s += fmt.Sprintf("%-10s %10s %10s %10s %10s %14s\n", "estimator", "mean", "std", "bias", "rmse", "time/eval")
	for _, r := range t.Rows {
		s += fmt.Sprintf("%-10s %10.3f %10.3f %10.3f %10.3f %14s\n",
			r.Estimator, r.Mean, r.Std, r.Bias, r.RMSE, r.PerEval)
	}
	return s
}
