package experiment

import (
	"strings"
	"testing"
)

func approxPipeline(name string) Pipeline {
	p := tinyPipeline(name, "")
	p.Tier = TierApprox
	p.Subsample = 8
	return p
}

// TestTierApproxProducesErrorBars: the approximate tier fills MIStdErr
// with finite per-step standard errors, while the exact tier leaves it
// nil.
func TestTierApproxProducesErrorBars(t *testing.T) {
	res, err := approxPipeline("approx").Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MIStdErr) != len(res.MI) {
		t.Fatalf("MIStdErr has %d entries, MI has %d", len(res.MIStdErr), len(res.MI))
	}
	for i, se := range res.MIStdErr {
		if se <= 0 {
			t.Errorf("step %d: standard error %v, want > 0", i, se)
		}
	}
	exact, err := tinyPipeline("exact", "").Run()
	if err != nil {
		t.Fatal(err)
	}
	if exact.MIStdErr != nil {
		t.Errorf("exact tier filled MIStdErr: %v", exact.MIStdErr)
	}
}

// TestTierApproxBitIdenticalAcrossWorkers is the scheduling-invariance
// contract at the pipeline level: the subsample draw is keyed by
// (master seed, step index), so every Workers/SampleWorkers combination
// must produce byte-equal curves and error bars.
func TestTierApproxBitIdenticalAcrossWorkers(t *testing.T) {
	base := approxPipeline("w1")
	base.Workers = 1
	base.Decompose = true
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		p := approxPipeline("wN")
		p.Workers = workers
		p.SampleWorkers = workers
		p.Decompose = true
		got, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.MI {
			if got.MI[i] != want.MI[i] || got.MIStdErr[i] != want.MIStdErr[i] {
				t.Fatalf("Workers=%d step %d: (%v, %v) differs from serial (%v, %v)",
					workers, i, got.MI[i], got.MIStdErr[i], want.MI[i], want.MIStdErr[i])
			}
			if got.Decomp[i].Between != want.Decomp[i].Between {
				t.Fatalf("Workers=%d step %d: decomposition differs", workers, i)
			}
			for g := range want.Decomp[i].Within {
				if got.Decomp[i].Within[g] != want.Decomp[i].Within[g] {
					t.Fatalf("Workers=%d step %d: decomposition differs", workers, i)
				}
			}
		}
	}
}

// TestTierValidation: the tier knobs are validated up front with
// actionable errors.
func TestTierValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Pipeline)
		want string
	}{
		{"unknown tier", func(p *Pipeline) { p.Tier = "fast" }, "unknown estimator tier"},
		{"non-KSG kind", func(p *Pipeline) { p.Estimator = EstBinned }, "requires a KSG estimator kind"},
		{"zero subsample", func(p *Pipeline) { p.Subsample = 0 }, "1 <= Subsample"},
		{"subsample at M", func(p *Pipeline) { p.Subsample = 24 }, "1 <= Subsample"},
		{"subsample without tier", func(p *Pipeline) { p.Tier = ""; p.Subsample = 8 }, "only meaningful on the approximate tier"},
	}
	for _, tc := range cases {
		p := approxPipeline(tc.name)
		tc.mut(&p)
		_, err := p.Run()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
