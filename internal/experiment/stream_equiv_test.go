package experiment

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/align"
	"repro/internal/forces"
	"repro/internal/observer"
	"repro/internal/sim"
)

func forcesEquiv() forces.Scaling {
	return forces.MustF1(forces.ConstantMatrix(3, 1),
		forces.MustMatrix([][]float64{{1.5, 3.5, 2.5}, {3.5, 2.0, 3.0}, {2.5, 3.0, 1.8}}))
}

// resultsIdentical asserts bit-identical pipeline outputs (the acceptance
// bar of the streaming refactor: not approximately equal — identical).
func resultsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Times, b.Times) {
		t.Fatalf("%s: Times %v vs %v", label, a.Times, b.Times)
	}
	for i := range a.MI {
		if a.MI[i] != b.MI[i] {
			t.Fatalf("%s: MI[%d] = %x vs %x", label, i, a.MI[i], b.MI[i])
		}
	}
	if !reflect.DeepEqual(a.Labels, b.Labels) {
		t.Fatalf("%s: labels differ", label)
	}
	if a.EquilibratedFraction != b.EquilibratedFraction {
		t.Fatalf("%s: equilibrated fraction %v vs %v", label, a.EquilibratedFraction, b.EquilibratedFraction)
	}
	if !reflect.DeepEqual(a.Decomp, b.Decomp) {
		t.Fatalf("%s: decompositions differ", label)
	}
	if !reflect.DeepEqual(a.Entropies, b.Entropies) {
		t.Fatalf("%s: entropy profiles differ", label)
	}
}

func equivPipeline() Pipeline {
	return Pipeline{
		Name: "equiv",
		Ensemble: sim.EnsembleConfig{
			Sim: sim.Config{
				N:     12,
				Types: sim.TypesRoundRobin(12, 3),
				Force: forcesEquiv(),
			},
			M:           24,
			Steps:       30,
			RecordEvery: 10,
			Seed:        42,
		},
	}
}

// TestStreamedPipelineMatchesBatchEverywhere runs the streamed Run against
// the materialised batch path for every estimator-relevant configuration
// and a spread of worker counts on both stages; all outputs must be
// bit-identical.
func TestStreamedPipelineMatchesBatchEverywhere(t *testing.T) {
	variants := map[string]func(p Pipeline) Pipeline{
		"plain":     func(p Pipeline) Pipeline { return p },
		"kmeans":    func(p Pipeline) Pipeline { p.Observer = observer.Config{KMeansK: 2, Seed: 9}; return p },
		"skipalign": func(p Pipeline) Pipeline { p.Observer = observer.Config{SkipAlign: true}; return p },
		"decomp-entropies": func(p Pipeline) Pipeline {
			p.Decompose = true
			p.TrackEntropies = true
			return p
		},
	}
	for name, mut := range variants {
		t.Run(name, func(t *testing.T) {
			p := mut(equivPipeline())
			effK, _ := p.effectiveK()
			batch, err := p.runBatch(context.Background(), effK)
			if err != nil {
				t.Fatal(err)
			}
			// The third knob is SampleWorkers: within-step sample
			// parallelism of the estimator engine must leave every
			// output bit-identical too.
			for _, w := range [][3]int{{1, 1, 0}, {2, 3, 1}, {5, 2, 3}, {16, 16, 4}} {
				pw := p
				pw.Ensemble.Workers = w[0]
				pw.Workers = w[1]
				pw.SampleWorkers = w[2]
				streamed, err := pw.Run()
				if err != nil {
					t.Fatal(err)
				}
				resultsIdentical(t, name, streamed, batch)
			}
		})
	}
}

// TestStreamedPipelineQuickScaleFig4 is the QuickScale acceptance check:
// the flagship Fig. 4 experiment at CLI scale, streamed vs batch,
// bit-identical. ~5 s, skipped under -short (the race CI job).
func TestStreamedPipelineQuickScaleFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("QuickScale equivalence is not a -short test")
	}
	sc := QuickScale()
	p := Pipeline{
		Name:     "fig4-quick",
		Ensemble: sim.EnsembleConfig{Sim: Fig4Params(), M: sc.M, Steps: sc.Steps, RecordEvery: sc.RecordEvery, Seed: 2012},
	}
	effK, _ := p.effectiveK()
	batch, err := p.runBatch(context.Background(), effK)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, "fig4-quick", streamed, batch)
}

// TestStreamedRetainedEnsembleMatchesRunEnsemble asserts the retention
// knob reproduces exactly what sim.RunEnsemble returns.
func TestStreamedRetainedEnsembleMatchesRunEnsemble(t *testing.T) {
	p := equivPipeline()
	p.RetainEnsemble = true
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	ens, err := sim.RunEnsemble(p.Ensemble)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Ensemble.Types, ens.Types) ||
		!reflect.DeepEqual(res.Ensemble.Equilibrated, ens.Equilibrated) {
		t.Fatal("retained ensemble metadata differs from RunEnsemble")
	}
	for s := range ens.Trajs {
		if !reflect.DeepEqual(res.Ensemble.Trajs[s].Frames, ens.Trajs[s].Frames) {
			t.Fatalf("retained trajectory %d differs from RunEnsemble", s)
		}
	}
}

// TestMedoidReferenceFallsBackToBatch: the medoid reference cannot stream;
// the pipeline must still run it (through the batch path) and honour the
// retention knob.
func TestMedoidReferenceFallsBackToBatch(t *testing.T) {
	p := equivPipeline()
	p.Observer.Align.Reference = align.RefMedoid
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ensemble != nil {
		t.Fatal("medoid fallback retained the ensemble without RetainEnsemble")
	}
	if len(res.MI) != len(res.Times) || len(res.Times) == 0 {
		t.Fatal("medoid fallback produced no MI curve")
	}
}

// TestPipelineRejectsDefaultedKTooLargeForM is the regression test for the
// validation gap: K=0 defaults to 4, which is just as invalid for M ≤ 4 as
// an explicit K=4 — the old guard only caught the explicit form.
func TestPipelineRejectsDefaultedKTooLargeForM(t *testing.T) {
	p := tinyPipeline("defaultk", "")
	p.K = 0
	p.Ensemble.M = DefaultKSGK // 4 samples, defaulted k = 4: invalid
	if _, err := p.Run(); err == nil {
		t.Fatal("defaulted K >= M accepted")
	} else if !strings.Contains(err.Error(), "KSG k") {
		t.Fatalf("unexpected error: %v", err)
	}
	p.Ensemble.M = DefaultKSGK + 1 // 5 samples: minimal valid ensemble
	if _, err := p.Run(); err != nil {
		t.Fatalf("M = k+1 rejected: %v", err)
	}
	// Estimators that never evaluate a k-NN query keep the old, laxer
	// behaviour for the defaulted K.
	p = tinyPipeline("kernel-smallM", EstKernel)
	p.Ensemble.M = 3
	if _, err := p.Run(); err != nil {
		t.Fatalf("kernel estimator with tiny M rejected: %v", err)
	}
	// ... but an explicit oversized K stays rejected everywhere.
	p.K = 3
	if _, err := p.Run(); err == nil {
		t.Fatal("explicit K >= M accepted for the kernel estimator")
	}
	// And TrackEntropies forces the k-NN guard even for kernel.
	p = tinyPipeline("kernel-entropies", EstKernel)
	p.Ensemble.M = 3
	p.TrackEntropies = true
	if _, err := p.Run(); err == nil {
		t.Fatal("TrackEntropies with M <= default k accepted")
	}
}
