// Package experiment orchestrates the paper's full measurement pipeline —
// simulate an ensemble (Sec. 5.1), factor out the shape symmetries
// (Sec. 5.2), estimate multi-information per time step (Sec. 5.3) — and
// provides one driver per figure of the evaluation section (Figs. 1–12)
// plus the estimator-comparison study of Sec. 5.3.
package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/infotheory"
	"repro/internal/observer"
	"repro/internal/sim"
)

// EstimatorKind names a multi-information estimator.
type EstimatorKind string

const (
	// EstKSGPaper is the estimator exactly as printed in the paper,
	// Eqs. (18)–(20). The printed formula omits the −(n−1)/k correction
	// of Kraskov's algorithm 2 and is therefore strongly positively
	// biased for many variables (≈ (n−1)/k nats); it is provided for
	// the fidelity ablation, not as the default — see
	// BenchmarkAblationKSGVariants and EXPERIMENTS.md.
	EstKSGPaper EstimatorKind = "ksg-paper"
	// EstKSG1 and EstKSG2 are Kraskov et al.'s standard algorithms.
	// KSG2 is the default: it is the corrected form of the paper's
	// Eq. (18) and reproduces the paper's curve shapes (MI ≈ 0 for the
	// i.i.d. initial state, rising as the collective organises).
	EstKSG1 EstimatorKind = "ksg1"
	EstKSG2 EstimatorKind = "ksg2"
	// EstKernel is the Gaussian KDE baseline.
	EstKernel EstimatorKind = "kernel"
	// EstBinned is the James–Stein shrinkage binning baseline.
	EstBinned EstimatorKind = "binned"
)

// DefaultKSGK is the k of the k-NN estimator: the paper states k = 4 for
// the experiment section (Sec. 6) and reports insensitivity over 2–10.
const DefaultKSGK = 4

// Pipeline is a complete experiment specification.
type Pipeline struct {
	// Name labels the experiment in records and plots.
	Name string
	// Ensemble configures the simulation stage.
	Ensemble sim.EnsembleConfig
	// Observer configures alignment and the optional k-means reduction.
	Observer observer.Config
	// Estimator selects the multi-information estimator (default:
	// the paper's KSG formulation).
	Estimator EstimatorKind
	// K is the k-NN parameter for the KSG estimators (default 4).
	K int
	// Bins is the per-dimension bin count for the binned estimator
	// (default 8).
	Bins int
	// Decompose additionally evaluates the per-type decomposition
	// (Eq. 5) at every recorded step.
	Decompose bool
	// TrackEntropies additionally records the Kozachenko–Leonenko joint
	// and marginal-sum entropies per step — the Sec. 6 / Fig. 4
	// narrative ("the overall entropy decreases even faster than the
	// marginal entropies") made measurable.
	TrackEntropies bool
	// Workers bounds the per-time-step estimation parallelism;
	// 0 means GOMAXPROCS.
	Workers int
}

// Result is the outcome of a pipeline run.
type Result struct {
	Name string
	// Times are the recorded step indices.
	Times []int
	// MI[t] is the estimated multi-information (bits) at Times[t].
	MI []float64
	// Decomp[t] is the per-type decomposition at Times[t]; nil unless
	// Pipeline.Decompose was set.
	Decomp []infotheory.Decomposition
	// Entropies[t] is the joint/marginal entropy profile at Times[t];
	// nil unless Pipeline.TrackEntropies was set.
	Entropies []infotheory.EntropyProfile
	// Labels[v] is the type label of observer variable v.
	Labels []int
	// EquilibratedFraction is the fraction of ensemble samples that met
	// the equilibrium criterion during their run.
	EquilibratedFraction float64
	// Ensemble is the raw simulation output (for snapshot figures).
	Ensemble *sim.Ensemble
	// Observers holds the aligned per-step datasets.
	Observers *observer.Observers
}

// DeltaI returns I(t_final) − I(t_0), the self-organisation increase the
// paper reports in Fig. 8.
func (r *Result) DeltaI() float64 {
	if len(r.MI) == 0 {
		return 0
	}
	return r.MI[len(r.MI)-1] - r.MI[0]
}

// FinalMI returns the last multi-information estimate.
func (r *Result) FinalMI() float64 {
	if len(r.MI) == 0 {
		return 0
	}
	return r.MI[len(r.MI)-1]
}

func (p Pipeline) estimator() (infotheory.Estimator, error) {
	k := p.K
	if k == 0 {
		k = DefaultKSGK
	}
	switch p.Estimator {
	case "", EstKSG2:
		return func(d *infotheory.Dataset) float64 {
			return infotheory.MultiInfoKSGVariant(d, k, infotheory.KSG2)
		}, nil
	case EstKSGPaper:
		return func(d *infotheory.Dataset) float64 {
			return infotheory.MultiInfoKSGVariant(d, k, infotheory.KSGPaper)
		}, nil
	case EstKSG1:
		return func(d *infotheory.Dataset) float64 {
			return infotheory.MultiInfoKSGVariant(d, k, infotheory.KSG1)
		}, nil
	case EstKernel:
		return infotheory.MultiInfoKernel, nil
	case EstBinned:
		return func(d *infotheory.Dataset) float64 {
			return infotheory.MultiInfoBinned(d, infotheory.BinnedOptions{Bins: p.Bins})
		}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown estimator %q", p.Estimator)
	}
}

// Run executes the full pipeline: ensemble simulation, alignment/reduction,
// and per-recorded-step multi-information estimation (parallel over steps).
func (p Pipeline) Run() (*Result, error) {
	if p.Ensemble.M > 0 && p.K >= p.Ensemble.M {
		return nil, errors.New("experiment: KSG k must be smaller than the ensemble size M")
	}
	est, err := p.estimator()
	if err != nil {
		return nil, err
	}
	ens, err := sim.RunEnsemble(p.Ensemble)
	if err != nil {
		return nil, fmt.Errorf("experiment %q: simulate: %w", p.Name, err)
	}
	obs, err := observer.FromEnsemble(ens, p.Observer)
	if err != nil {
		return nil, fmt.Errorf("experiment %q: observers: %w", p.Name, err)
	}

	res := &Result{
		Name:      p.Name,
		Times:     obs.Times,
		MI:        make([]float64, len(obs.Times)),
		Labels:    obs.Labels,
		Ensemble:  ens,
		Observers: obs,
	}
	if p.Decompose {
		res.Decomp = make([]infotheory.Decomposition, len(obs.Times))
	}
	if p.TrackEntropies {
		res.Entropies = make([]infotheory.EntropyProfile, len(obs.Times))
	}
	eq := 0
	for _, e := range ens.Equilibrated {
		if e {
			eq++
		}
	}
	res.EquilibratedFraction = float64(eq) / float64(len(ens.Equilibrated))

	groups := obs.Groups()
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(obs.Times) {
		workers = len(obs.Times)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				res.MI[t] = est(obs.Datasets[t])
				if p.Decompose {
					res.Decomp[t] = infotheory.Decompose(obs.Datasets[t], groups, est)
				}
				if p.TrackEntropies {
					k := p.K
					if k == 0 {
						k = DefaultKSGK
					}
					res.Entropies[t] = infotheory.Entropies(obs.Datasets[t], k)
				}
			}
		}()
	}
	for t := range obs.Times {
		next <- t
	}
	close(next)
	wg.Wait()
	return res, nil
}

// Scale bundles the ensemble-size knobs so every figure driver can run at
// paper scale or at a reduced laptop/CI scale with one switch.
type Scale struct {
	// M is the ensemble size (paper: 500–1000).
	M int
	// Steps is t_max (paper: 100–250).
	Steps int
	// RecordEvery controls the time resolution of the MI curves.
	RecordEvery int
	// Repeats is the number of random type-matrix draws averaged in the
	// sweep figures (paper: 10).
	Repeats int
}

// PaperScale reproduces the paper's sample sizes. Expect hours of CPU for
// the sweep figures.
func PaperScale() Scale { return Scale{M: 500, Steps: 250, RecordEvery: 5, Repeats: 10} }

// QuickScale is the default for the CLI: the same experiments with a
// smaller ensemble; curve shapes are preserved, absolute values carry more
// estimator bias. Below M ≈ 100 samples the KSG estimate of a 50-particle
// system degrades visibly; 128 is the practical floor for shape-faithful
// curves.
func QuickScale() Scale { return Scale{M: 128, Steps: 250, RecordEvery: 25, Repeats: 4} }

// TestScale is a minimal setting for unit tests and benchmarks.
func TestScale() Scale { return Scale{M: 32, Steps: 40, RecordEvery: 20, Repeats: 2} }
