// Package experiment orchestrates the paper's full measurement pipeline —
// simulate an ensemble (Sec. 5.1), factor out the shape symmetries
// (Sec. 5.2), estimate multi-information per time step (Sec. 5.3) — and
// provides one driver per figure of the evaluation section (Figs. 1–12)
// plus the estimator-comparison study of Sec. 5.3.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/infotheory"
	"repro/internal/observer"
	"repro/internal/sim"
	"repro/internal/workpool"
)

// EstimatorKind names a multi-information estimator.
type EstimatorKind string

const (
	// EstKSGPaper is the estimator exactly as printed in the paper,
	// Eqs. (18)–(20). The printed formula omits the −(n−1)/k correction
	// of Kraskov's algorithm 2 and is therefore strongly positively
	// biased for many variables (≈ (n−1)/k nats); it is provided for
	// the fidelity ablation, not as the default — see
	// BenchmarkAblationKSGVariants and EXPERIMENTS.md.
	EstKSGPaper EstimatorKind = "ksg-paper"
	// EstKSG1 and EstKSG2 are Kraskov et al.'s standard algorithms.
	// KSG2 is the default: it is the corrected form of the paper's
	// Eq. (18) and reproduces the paper's curve shapes (MI ≈ 0 for the
	// i.i.d. initial state, rising as the collective organises).
	EstKSG1 EstimatorKind = "ksg1"
	EstKSG2 EstimatorKind = "ksg2"
	// EstKernel is the Gaussian KDE baseline.
	EstKernel EstimatorKind = "kernel"
	// EstBinned is the James–Stein shrinkage binning baseline.
	EstBinned EstimatorKind = "binned"
)

// DefaultKSGK is the k of the k-NN estimator: the paper states k = 4 for
// the experiment section (Sec. 6) and reports insensitivity over 2–10.
const DefaultKSGK = 4

// EstimatorTier selects between the exact estimator path and the
// subsampled approximate tier.
type EstimatorTier string

const (
	// TierExact is the default: every sample is an evaluation point and
	// estimates are bit-identical to the brute-force references. The
	// empty tier means exact, so zero-valued pipelines (and specs written
	// before the tier existed) are unchanged.
	TierExact EstimatorTier = "exact"
	// TierApprox evaluates the KSG sum at Subsample points drawn
	// deterministically from (Ensemble.Seed, step index), with neighbour
	// searches and marginal counts still over all M samples, and reports
	// a finite-population-corrected standard error per step in
	// Result.MIStdErr. KSG kinds only.
	TierApprox EstimatorTier = "approx"
)

// Pipeline is a complete experiment specification.
type Pipeline struct {
	// Name labels the experiment in records and plots.
	Name string //sopslint:nohash hashed by the caller as the fingerprint id parameter
	// Ensemble configures the simulation stage.
	Ensemble sim.EnsembleConfig
	// Observer configures alignment and the optional k-means reduction.
	Observer observer.Config
	// Estimator selects the multi-information estimator (default:
	// the paper's KSG formulation).
	Estimator EstimatorKind
	// K is the k-NN parameter for the KSG estimators (default 4).
	K int
	// Bins is the per-dimension bin count for the binned estimator
	// (default 8).
	Bins int
	// Tier selects the estimator tier: TierExact (or empty, the default)
	// or TierApprox. The approximate tier requires a KSG estimator kind
	// and a Subsample budget.
	Tier EstimatorTier
	// Subsample is the approximate tier's per-step evaluation budget r:
	// each step's KSG sum is averaged over r deterministically drawn
	// samples instead of all M (1 ≤ r < M). Ignored on the exact tier.
	Subsample int
	// Decompose additionally evaluates the per-type decomposition
	// (Eq. 5) at every recorded step.
	Decompose bool
	// TrackEntropies additionally records the Kozachenko–Leonenko joint
	// and marginal-sum entropies per step — the Sec. 6 / Fig. 4
	// narrative ("the overall entropy decreases even faster than the
	// marginal entropies") made measurable.
	TrackEntropies bool
	// Workers bounds the per-time-step estimation parallelism;
	// 0 means GOMAXPROCS. Simulation-stage parallelism is bounded
	// separately by Ensemble.Workers; alignment runs inline on the
	// simulation workers.
	Workers int //sopslint:nohash parallelism knob; results are bit-identical for every setting
	// SampleWorkers bounds the within-step sample parallelism of the
	// tree-engine estimators: each estimation worker partitions one
	// step's samples across this many goroutines, so a single huge-m
	// step no longer serialises on one core. 0 or 1 keeps within-step
	// estimation serial (allocation-free in steady state). Estimates are
	// bit-identical for every setting; at peak Workers × SampleWorkers
	// goroutines estimate concurrently.
	SampleWorkers int //sopslint:nohash parallelism knob; results are bit-identical for every setting
	// RetainEnsemble keeps the raw trajectories in Result.Ensemble (for
	// snapshot figures and trajectory analyses). Off by default: the
	// streaming pipeline then never materialises the ensemble, so peak
	// memory is the per-step observer datasets alone.
	RetainEnsemble bool //sopslint:nohash output-retention switch; the numbers themselves are unchanged
	// Tokens, when non-nil, is a shared execution budget all of this
	// pipeline's stage workers draw from: each simulated sample and each
	// estimated step holds one token while active. Several concurrently
	// running pipelines handed the same budget (sweep.Runner does this)
	// then share one machine-wide worker pool instead of each assuming
	// the whole machine. Results never depend on it.
	Tokens *workpool.Tokens //sopslint:nohash shared runtime budget; results never depend on it
	// Engines, when non-nil, recycles estimator engines across pipeline
	// runs (a Session hands every pipeline its pool). Runtime only;
	// results never depend on it.
	Engines *infotheory.EnginePool //sopslint:nohash engine recycling is runtime-only; results never depend on it
	// OnProgress, when non-nil, receives progress events as the run
	// advances: one ProgressSampleSimulated per completed sample (on the
	// streaming path) and one ProgressStepEstimated per estimated step.
	// It may be invoked concurrently from several workers and must be
	// cheap and non-blocking. Runtime only; results never depend on it.
	OnProgress func(ProgressEvent) //sopslint:nohash progress callback; observability only
}

// ProgressKind classifies a pipeline or sweep progress event.
type ProgressKind int

const (
	// ProgressSampleSimulated: one ensemble sample finished simulating
	// (streaming path; Index is the sample index).
	ProgressSampleSimulated ProgressKind = iota
	// ProgressStepEstimated: one recorded step's multi-information was
	// estimated (Index is the step's position on the time grid).
	ProgressStepEstimated
	// ProgressRunCheckpointed: one sweep run was persisted to its
	// checkpoint file (Index is the run's position in the sweep).
	ProgressRunCheckpointed
	// ProgressRunDone: one sweep run completed — computed or restored
	// from its checkpoint (Index is the run's position in the sweep).
	ProgressRunDone
)

// ProgressEvent is one unit of observable pipeline progress. Events carry
// identity (which run) and position (which sample/step/run), not payloads:
// results are returned, never streamed.
type ProgressEvent struct {
	Kind ProgressKind
	// Run labels the emitting run: the Pipeline.Name, or the sweep run
	// ID for sweep-level events.
	Run string
	// Index is the sample, step, or run index, per Kind.
	Index int
	// FromCheckpoint marks a ProgressRunDone that was restored from disk
	// rather than computed.
	FromCheckpoint bool
}

// emit dispatches a progress event if a listener is attached.
func (p Pipeline) emit(ev ProgressEvent) {
	if p.OnProgress != nil {
		ev.Run = p.Name
		p.OnProgress(ev)
	}
}

// Result is the outcome of a pipeline run.
type Result struct {
	Name string
	// Times are the recorded step indices.
	Times []int
	// MI[t] is the estimated multi-information (bits) at Times[t].
	MI []float64
	// MIStdErr[t] is the standard error of MI[t] from the subsampled
	// evaluation (bits); nil unless the pipeline ran on TierApprox. The
	// 95% interval is MI[t] ± 1.96·MIStdErr[t].
	MIStdErr []float64
	// Decomp[t] is the per-type decomposition at Times[t]; nil unless
	// Pipeline.Decompose was set.
	Decomp []infotheory.Decomposition
	// Entropies[t] is the joint/marginal entropy profile at Times[t];
	// nil unless Pipeline.TrackEntropies was set.
	Entropies []infotheory.EntropyProfile
	// Labels[v] is the type label of observer variable v.
	Labels []int
	// EquilibratedFraction is the fraction of ensemble samples that met
	// the equilibrium criterion during their run.
	EquilibratedFraction float64
	// Ensemble is the raw simulation output (for snapshot figures);
	// nil unless Pipeline.RetainEnsemble was set.
	Ensemble *sim.Ensemble
	// Observers holds the aligned per-step datasets.
	Observers *observer.Observers
}

// DeltaI returns I(t_final) − I(t_0), the self-organisation increase the
// paper reports in Fig. 8.
func (r *Result) DeltaI() float64 {
	if len(r.MI) == 0 {
		return 0
	}
	return r.MI[len(r.MI)-1] - r.MI[0]
}

// FinalMI returns the last multi-information estimate.
func (r *Result) FinalMI() float64 {
	if len(r.MI) == 0 {
		return 0
	}
	return r.MI[len(r.MI)-1]
}

// estimatorFor builds the per-step estimator closure bound to one
// worker's tree engine; k is the effective k-NN parameter from
// effectiveK, so validation and estimation can never disagree about its
// value. With a nil engine it only validates the estimator kind (the
// returned closure must not be called).
func (p Pipeline) estimatorFor(k int, eng *infotheory.Engine) (infotheory.Estimator, error) {
	return NewEstimator(p.Estimator, k, p.Bins, eng)
}

// effectiveK returns the k actually used by the KSG machinery (the
// explicit K or the paper's default), and whether this pipeline evaluates a
// k-NN estimate at all.
func (p Pipeline) effectiveK() (k int, used bool) {
	k = p.K
	if k == 0 {
		k = DefaultKSGK
	}
	return k, p.Estimator.UsesKNN() || p.TrackEntropies
}

// Run executes the full pipeline as a staged stream: ensemble simulation,
// per-frame alignment/reduction, and per-recorded-step multi-information
// estimation overlap on bounded worker budgets (Ensemble.Workers for
// simulation+alignment, Workers for estimation). The alignment-reference
// sample runs first; every other sample's frames are then aligned as they
// are produced and written straight into the per-step observer datasets,
// and a step is estimated as soon as its dataset holds all M samples. The
// raw ensemble is never materialised unless RetainEnsemble is set, so peak
// memory stays at one dataset transcript regardless of M×Steps. Results
// are bit-identical to the fully-batched path for every worker count.
//
// The medoid alignment reference needs all samples of a frame at once and
// therefore falls back to the batch path transparently.
//
// Run is RunCtx under context.Background(): the uncancellable entry point,
// kept source-compatible for existing callers and bit-identical to the
// pre-context pipeline.
func (p Pipeline) Run() (*Result, error) { return p.RunCtx(context.Background()) }

// RunCtx is Run under a context. Cancellation stops every stage within one
// token-grant — a simulated sample, an aligned frame or an estimated step
// in flight completes, nothing further starts — and returns the context's
// error (match with errors.Is(err, context.Canceled)). A cancelled run
// returns no partial Result. Results are bit-identical to Run whenever the
// context is never cancelled.
func (p Pipeline) RunCtx(ctx context.Context) (*Result, error) {
	effK, usesK := p.effectiveK()
	if p.Ensemble.M > 0 {
		// The guard must apply to the defaulted k too: K=0 means k=4,
		// which is just as invalid for M ≤ 4 as an explicit K would be.
		if usesK && effK >= p.Ensemble.M {
			return nil, fmt.Errorf("experiment: KSG k (%d) must be smaller than the ensemble size M (%d)", effK, p.Ensemble.M)
		}
		if !usesK && p.K >= p.Ensemble.M && p.K > 0 {
			return nil, fmt.Errorf("experiment: K (%d) must be smaller than the ensemble size M (%d)", p.K, p.Ensemble.M)
		}
	}
	// Validate the estimator kind once up front; the per-step closures
	// are built per estimation worker, each bound to its own engine.
	if _, err := p.estimatorFor(effK, nil); err != nil {
		return nil, err
	}
	switch p.Tier {
	case "", TierExact:
		if p.Subsample != 0 {
			return nil, fmt.Errorf("experiment: Subsample (%d) is only meaningful on the approximate tier", p.Subsample)
		}
	case TierApprox:
		if _, ok := p.Estimator.KSGVariant(); !ok {
			return nil, fmt.Errorf("experiment: the approximate tier requires a KSG estimator kind, have %q", p.Estimator)
		}
		if p.Subsample < 1 || (p.Ensemble.M > 0 && p.Subsample >= p.Ensemble.M) {
			return nil, fmt.Errorf("experiment: approximate tier needs 1 <= Subsample (%d) < M (%d)", p.Subsample, p.Ensemble.M)
		}
	default:
		return nil, fmt.Errorf("experiment: unknown estimator tier %q (valid tiers: exact, approx)", p.Tier)
	}
	// The shared budget (if any) gates the simulation workers too.
	p.Ensemble.Tokens = p.Tokens
	if !p.Observer.Streamable() {
		return p.runBatch(ctx, effK)
	}
	return p.runStreamed(ctx, effK)
}

// runStreamed is the streaming pipeline behind Run.
func (p Pipeline) runStreamed(ctx context.Context, effK int) (*Result, error) {
	ec, err := p.Ensemble.Normalized()
	if err != nil {
		return nil, fmt.Errorf("experiment %q: simulate: %w", p.Name, err)
	}
	times := sim.RecordedSteps(ec.Steps, ec.RecordEvery)
	acc, err := observer.NewAccumulator(ec.M, times, ec.Sim.Types, p.Observer)
	if err != nil {
		return nil, fmt.Errorf("experiment %q: observers: %w", p.Name, err)
	}
	// Completed steps flow to the estimation stage through ready; the
	// buffer covers the whole grid so completions never block alignment.
	ready := make(chan int, len(times))
	acc.OnStepComplete = func(t int) { ready <- t }

	var col *sim.Collector
	if p.RetainEnsemble {
		if col, err = sim.NewCollector(ec); err != nil {
			return nil, fmt.Errorf("experiment %q: simulate: %w", p.Name, err)
		}
	}
	var eqCount atomic.Int64
	track := func(f sim.Frame) error {
		if col != nil {
			if err := col.Visit(f); err != nil {
				return err
			}
		}
		if f.Final {
			if f.Equilibrated {
				eqCount.Add(1)
			}
			p.emit(ProgressEvent{Kind: ProgressSampleSimulated, Index: f.Sample})
		}
		return nil
	}

	// Stage 1: the alignment-reference sample (sample 0) runs to
	// completion, establishing the per-step references and the k-means
	// anchor. It costs 1/M of the simulation budget.
	_, err = sim.StreamSamplesCtx(ctx, ec, 0, 1, func(f sim.Frame) error {
		if err := track(f); err != nil {
			return err
		}
		return acc.SeedReference(f.Index, f.Pos)
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("experiment %q: simulate: %w", p.Name, err)
	}
	if err := acc.FinishReference(); err != nil {
		return nil, fmt.Errorf("experiment %q: observers: %w", p.Name, err)
	}

	res := &Result{
		Name:   p.Name,
		Times:  append([]int(nil), times...),
		MI:     make([]float64, len(times)),
		Labels: acc.Labels(),
	}
	if p.Tier == TierApprox {
		res.MIStdErr = make([]float64, len(times))
	}
	if p.Decompose {
		res.Decomp = make([]infotheory.Decomposition, len(times))
	}
	if p.TrackEntropies {
		res.Entropies = make([]infotheory.EntropyProfile, len(times))
	}

	// Stage 3 starts before stage 2 so estimation overlaps simulation.
	estWait := p.startEstimators(ctx, res, acc.Datasets(), infotheory.GroupsByLabel(acc.Labels()), effK, ready)

	// Stage 2: the remaining samples stream through inline alignment.
	_, simErr := sim.StreamSamplesCtx(ctx, ec, 1, ec.M, func(f sim.Frame) error {
		if err := track(f); err != nil {
			return err
		}
		return acc.Add(f.Sample, f.Index, f.Pos)
	})
	close(ready) // all Add calls have returned: no sends can follow
	estErr := estWait()
	if simErr != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("experiment %q: %w", p.Name, simErr)
	}
	if estErr != nil {
		return nil, estErr
	}

	res.Observers = acc.Observers()
	res.EquilibratedFraction = float64(eqCount.Load()) / float64(ec.M)
	if col != nil {
		res.Ensemble = col.Ensemble()
	}
	return res, nil
}

// runBatch materialises the full ensemble and an aligned copy before
// estimating — required by the medoid alignment reference, and kept as the
// reference implementation the streaming path is tested against.
func (p Pipeline) runBatch(ctx context.Context, effK int) (*Result, error) {
	ens, err := sim.RunEnsembleCtx(ctx, p.Ensemble)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("experiment %q: simulate: %w", p.Name, err)
	}
	obs, err := observer.FromEnsembleCtx(ctx, ens, p.Observer)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("experiment %q: observers: %w", p.Name, err)
	}

	res := &Result{
		Name:      p.Name,
		Times:     obs.Times,
		MI:        make([]float64, len(obs.Times)),
		Labels:    obs.Labels,
		Observers: obs,
	}
	if p.RetainEnsemble {
		res.Ensemble = ens
	}
	if p.Tier == TierApprox {
		res.MIStdErr = make([]float64, len(obs.Times))
	}
	if p.Decompose {
		res.Decomp = make([]infotheory.Decomposition, len(obs.Times))
	}
	if p.TrackEntropies {
		res.Entropies = make([]infotheory.EntropyProfile, len(obs.Times))
	}
	eq := 0
	for _, e := range ens.Equilibrated {
		if e {
			eq++
		}
	}
	res.EquilibratedFraction = float64(eq) / float64(len(ens.Equilibrated))

	ready := make(chan int, len(obs.Times))
	for t := range obs.Times {
		ready <- t
	}
	close(ready)
	if err := p.startEstimators(ctx, res, obs.Datasets, obs.Groups(), effK, ready)(); err != nil {
		return nil, err
	}
	return res, nil
}

// startEstimators launches the estimation stage: workers consume completed
// step indices from ready until it closes, writing MI (and optionally the
// decomposition and entropy profiles) into disjoint slots of res. Each
// worker owns one tree engine — its k-d trees and scratch stores are
// recycled across the steps it consumes (and across runs, when a Session
// engine pool is attached) — and fans one step's samples out across
// SampleWorkers goroutines. The returned wait function blocks until every
// worker exits and reports the first error (context cancellation is the
// only error source; estimation itself cannot fail).
func (p Pipeline) startEstimators(ctx context.Context, res *Result, datasets []*infotheory.Dataset, groups [][]int, effK int, ready <-chan int) func() error {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(datasets) {
		workers = len(datasets)
	}
	wg := &sync.WaitGroup{}
	var (
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	variant, _ := p.Estimator.KSGVariant()
	approx := p.Tier == TierApprox
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := p.Engines.Get(p.SampleWorkers)
			defer p.Engines.Put(eng)
			// The kind was validated in Run; the error is impossible here.
			est, _ := p.estimatorFor(effK, eng)
			for t := range ready {
				// One shared-budget token per estimated step; waiting on
				// `ready` holds none, so sim workers are never starved.
				if err := p.Tokens.AcquireCtx(ctx); err != nil {
					setErr(err)
					return
				}
				if approx {
					// The subsample draw is keyed by (master seed, step
					// index) alone — which worker serves the step, and in
					// what order, can never change the result. Decompose's
					// group terms reuse the step's key: each term then
					// evaluates the same sample subset, so the subtraction
					// cancels draw noise instead of adding it.
					opts := infotheory.ApproxOptions{
						Subsample: p.Subsample,
						Seed:      p.Ensemble.Seed,
						Sequence:  uint64(t),
					}
					ae := eng.MultiInfoKSGApprox(datasets[t], effK, variant, opts)
					res.MI[t] = ae.MI
					res.MIStdErr[t] = ae.StdErr
					if p.Decompose {
						est = func(d *infotheory.Dataset) float64 {
							return eng.MultiInfoKSGApprox(d, effK, variant, opts).MI
						}
					}
				} else {
					res.MI[t] = est(datasets[t])
				}
				if p.Decompose {
					res.Decomp[t] = infotheory.Decompose(datasets[t], groups, est)
				}
				if p.TrackEntropies {
					res.Entropies[t] = eng.Entropies(datasets[t], effK)
				}
				p.Tokens.Release()
				p.emit(ProgressEvent{Kind: ProgressStepEstimated, Index: t})
			}
		}()
	}
	return func() error {
		wg.Wait()
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr
	}
}

// Scale bundles the ensemble-size knobs so every figure driver can run at
// paper scale or at a reduced laptop/CI scale with one switch.
type Scale struct {
	// M is the ensemble size (paper: 500–1000).
	M int
	// Steps is t_max (paper: 100–250).
	Steps int
	// RecordEvery controls the time resolution of the MI curves.
	RecordEvery int
	// Repeats is the number of random type-matrix draws averaged in the
	// sweep figures (paper: 10).
	Repeats int
}

// PaperScale reproduces the paper's sample sizes. Expect hours of CPU for
// the sweep figures.
func PaperScale() Scale { return Scale{M: 500, Steps: 250, RecordEvery: 5, Repeats: 10} }

// QuickScale is the default for the CLI: the same experiments with a
// smaller ensemble; curve shapes are preserved, absolute values carry more
// estimator bias. Below M ≈ 100 samples the KSG estimate of a 50-particle
// system degrades visibly; 128 is the practical floor for shape-faithful
// curves.
func QuickScale() Scale { return Scale{M: 128, Steps: 250, RecordEvery: 25, Repeats: 4} }

// TestScale is a minimal setting for unit tests and benchmarks.
func TestScale() Scale { return Scale{M: 32, Steps: 40, RecordEvery: 20, Repeats: 2} }
