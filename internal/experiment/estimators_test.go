package experiment

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/infotheory"
	"repro/internal/sim"
)

// TestUnknownEstimatorErrorIsTyped: an invalid kind surfaces as the
// typed *UnknownEstimatorError — matchable with errors.As — and its
// message lists every valid kind, from both the constructor and a
// pipeline run.
func TestUnknownEstimatorErrorIsTyped(t *testing.T) {
	_, err := NewEstimator("magic", 4, 0, nil)
	var ue *UnknownEstimatorError
	if !errors.As(err, &ue) {
		t.Fatalf("NewEstimator returned %T, want *UnknownEstimatorError", err)
	}
	if ue.Kind != "magic" {
		t.Fatalf("error carries kind %q", ue.Kind)
	}
	for _, kind := range ValidEstimators() {
		if !strings.Contains(err.Error(), string(kind)) {
			t.Errorf("message does not list %q: %s", kind, err)
		}
	}

	p := Pipeline{Estimator: "magic", Ensemble: fig4TestEnsemble()}
	if _, err := p.Run(); !errors.As(err, &ue) {
		t.Fatalf("Pipeline.Run returned %v, want *UnknownEstimatorError", err)
	}
}

// TestValidEstimatorsAllConstruct: every listed kind builds an estimator
// against a real engine, and the empty kind is the KSG-2 default.
func TestValidEstimatorsAllConstruct(t *testing.T) {
	eng := infotheory.NewEngine(0)
	for _, kind := range ValidEstimators() {
		if _, err := NewEstimator(kind, 2, 4, eng); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	if _, err := NewEstimator("", 2, 0, eng); err != nil {
		t.Errorf("default kind: %v", err)
	}
}

func fig4TestEnsemble() sim.EnsembleConfig {
	cfg := Fig4Params()
	cfg.N = 8
	return sim.EnsembleConfig{Sim: cfg, M: 8, Steps: 4, RecordEvery: 2, Seed: 1}
}
