package experiment

import (
	"context"
	"fmt"
	"math"

	"repro/internal/forces"
	"repro/internal/mathx"
	"repro/internal/observer"
	"repro/internal/rngx"
	"repro/internal/sim"
	"repro/internal/vec"
)

// Series is one named curve of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// FigureData is the regenerated content of one paper figure: a set of
// curves plus free-text notes recording parameters and caveats.
type FigureData struct {
	ID     string
	Title  string
	Series []Series
	Notes  string
}

// TypedConfig is a particle configuration with its type assignment, the
// payload of the snapshot figures (Figs. 1, 3, 6, 7, 12).
type TypedConfig struct {
	Label string
	Pos   []vec.Vec2
	Types []int
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// ---------------------------------------------------------------------------
// Fig. 1 — example of a particle configuration (4 types).

// Fig1Example simulates the paper's opening example: a 4-type collective
// under F¹ with a differential-adhesion matrix, run well past organisation.
func Fig1Example(seed uint64) (*TypedConfig, error) {
	// Nested preferred distances: type 0 adheres tightest (nucleus),
	// type 3 loosest (membrane); cross-type distances increase with
	// type separation, producing the layered morphology of Fig. 1.
	r := forces.MustMatrix([][]float64{
		{1.0, 1.8, 2.6, 3.4},
		{1.8, 1.4, 2.2, 3.0},
		{2.6, 2.2, 1.8, 2.6},
		{3.4, 3.0, 2.6, 2.2},
	})
	k := forces.ConstantMatrix(4, 4)
	cfg := sim.Config{
		N:      40,
		Force:  forces.MustF1(k, r),
		Cutoff: 8,
		// Strong adhesion and a dense neighbourhood need a small step
		// (see sim.MaxStableDt).
		Dt:         0.01,
		InitRadius: 2.5,
	}
	sys, err := sim.New(cfg, rngx.New(seed))
	if err != nil {
		return nil, err
	}
	sys.RunUntilEquilibrium(4000)
	return &TypedConfig{Label: "fig1-example", Pos: sys.Positions(), Types: sys.Types()}, nil
}

// ---------------------------------------------------------------------------
// Fig. 2 — the two force-scaling functions.

// Fig2ForceCurves samples F¹ and F² over distance, reproducing the curve
// shapes of Fig. 2 (hard repulsion with saturating attraction for F¹;
// smooth finite-range interaction for F²).
func Fig2ForceCurves() *FigureData {
	f1 := forces.MustF1(forces.ConstantMatrix(1, 1), forces.ConstantMatrix(1, 2))
	f2 := forces.MustF2(forces.ConstantMatrix(1, 1), forces.ConstantMatrix(1, 1), forces.ConstantMatrix(1, 5))
	xs := mathx.Linspace(0.2, 8, 160)
	fd := &FigureData{
		ID:    "fig2",
		Title: "Force-scaling functions F1 (k=1, r=2) and F2 (k=1, sigma=1, tau=5)",
		Series: []Series{
			{Name: "F1", X: xs, Y: forces.Curve(f1, 0, 0, xs)},
			{Name: "F2", X: xs, Y: forces.Curve(f2, 0, 0, xs)},
		},
		Notes: "F1 crosses zero exactly at r=2 (preferred distance) and saturates at k; " +
			"F2 with sigma=1 is repulsion-only (<=0), matching Sec. 4.1's observation " +
			"that F1 shows stronger attraction relative to repulsion than F2.",
	}
	return fd
}

// ---------------------------------------------------------------------------
// Fig. 3 — equilibrium states for different numbers of types.

// Fig3Equilibria runs three collectives to (near-)equilibrium: a 3-type and
// a 2-type F¹ collective that organise into clustered shapes, and the
// single-type F² collective whose equilibrium is the regular-grid disc the
// paper highlights.
func Fig3Equilibria(seed uint64) ([]TypedConfig, error) {
	var out []TypedConfig

	// l = 3, F1, mild differential adhesion.
	r3 := forces.MustMatrix([][]float64{
		{1.2, 2.4, 3.2},
		{2.4, 1.6, 2.4},
		{3.2, 2.4, 2.0},
	})
	cfg3 := sim.Config{
		N: 39, Force: forces.MustF1(forces.ConstantMatrix(3, 4), r3),
		Cutoff: 6, Dt: 0.01, InitRadius: 2.5,
	}
	sys3, err := sim.New(cfg3, rngx.Split(seed, 3))
	if err != nil {
		return nil, err
	}
	sys3.RunUntilEquilibrium(4000)
	out = append(out, TypedConfig{Label: "l=3 (F1)", Pos: sys3.Positions(), Types: sys3.Types()})

	// l = 2, F1, core/shell.
	r2 := forces.MustMatrix([][]float64{
		{1.0, 2.0},
		{2.0, 2.8},
	})
	cfg2 := sim.Config{
		N: 34, Force: forces.MustF1(forces.ConstantMatrix(2, 4), r2),
		Cutoff: 6, Dt: 0.01, InitRadius: 2.5,
	}
	sys2, err := sim.New(cfg2, rngx.Split(seed, 2))
	if err != nil {
		return nil, err
	}
	sys2.RunUntilEquilibrium(4000)
	out = append(out, TypedConfig{Label: "l=2 (F1)", Pos: sys2.Positions(), Types: sys2.Types()})

	// l = 1, F2: the regular-grid disc.
	f2 := forces.MustF2(forces.ConstantMatrix(1, 4), forces.ConstantMatrix(1, 1), forces.ConstantMatrix(1, 5))
	cfg1 := sim.Config{N: 40, Force: f2, Cutoff: 5, InitRadius: 3}
	sys1, err := sim.New(cfg1, rngx.Split(seed, 1))
	if err != nil {
		return nil, err
	}
	sys1.Run(600)
	out = append(out, TypedConfig{Label: "l=1 (F2 grid)", Pos: sys1.Positions(), Types: sys1.Types()})
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig. 4 — multi-information over time for the flagship 3-type experiment.

// Fig4Params returns the exact experiment of Fig. 4: n = 50, l = 3,
// rc = 5.0, r_αβ = {{2.5,5.0,4.0},{5.0,2.5,2.0},{4.0,2.0,3.5}} under F¹
// (the only force family in which r_αβ is directly specifiable).
func Fig4Params() sim.Config {
	r := forces.MustMatrix([][]float64{
		{2.5, 5.0, 4.0},
		{5.0, 2.5, 2.0},
		{4.0, 2.0, 3.5},
	})
	return sim.Config{
		N:      50,
		Force:  forces.MustF1(forces.ConstantMatrix(3, 1), r),
		Cutoff: 5.0,
	}
}

// Fig4PipelineOf is the Fig. 4 experiment as a pipeline value — the
// declarative form behind Fig4Pipeline, exported so the spec layer can
// capture the exact same run.
func Fig4PipelineOf(sc Scale, seed uint64) Pipeline {
	return Pipeline{
		Name: "fig4",
		Ensemble: sim.EnsembleConfig{
			Sim:         Fig4Params(),
			M:           sc.M,
			Steps:       sc.Steps,
			RecordEvery: sc.RecordEvery,
			Seed:        seed,
		},
	}
}

// Fig4Pipeline runs the Fig. 4 experiment at the given scale and returns
// the MI time series. The raw ensemble is not retained; use Fig6Pipeline
// when the per-sample snapshots are needed too.
func Fig4Pipeline(sc Scale, seed uint64) (*Result, error) {
	return Fig4PipelineOf(sc, seed).Run()
}

// Fig6Pipeline is the Fig. 4 experiment with the raw ensemble retained, the
// input of the Fig. 6 sample-variety snapshots. It is the one figure driver
// that opts back into full-trajectory retention.
func Fig6Pipeline(sc Scale, seed uint64) (*Result, error) {
	p := Pipeline{
		Name: "fig6",
		Ensemble: sim.EnsembleConfig{
			Sim:         Fig4Params(),
			M:           sc.M,
			Steps:       sc.Steps,
			RecordEvery: sc.RecordEvery,
			Seed:        seed,
		},
		RetainEnsemble: true,
	}
	return p.Run()
}

// ---------------------------------------------------------------------------
// Fig. 5 / Fig. 7 — single-type F¹ collective with rc > 2r: two concentric
// regular polygons whose relative rotation is a residual degree of freedom.

// Fig5Params returns the single-type experiment of Figs. 5 and 7:
// 20 particles of one type under F¹ with the cut-off radius exceeding twice
// the preferred distance, so the collective settles into two concentric
// rings.
func Fig5Params() sim.Config {
	return sim.Config{
		N:      20,
		Force:  forces.MustF1(forces.ConstantMatrix(1, 1), forces.ConstantMatrix(1, 2.0)),
		Cutoff: 5.0, // > 2·r_αα = 4
	}
}

// Fig5PipelineOf is the Fig. 5 experiment as a pipeline value.
func Fig5PipelineOf(sc Scale, seed uint64) Pipeline {
	return Pipeline{
		Name: "fig5",
		Ensemble: sim.EnsembleConfig{
			Sim:         Fig5Params(),
			M:           sc.M,
			Steps:       sc.Steps,
			RecordEvery: sc.RecordEvery,
			Seed:        seed,
		},
	}
}

// Fig5SingleTypeRings runs the Fig. 5 experiment.
func Fig5SingleTypeRings(sc Scale, seed uint64) (*Result, error) {
	return Fig5PipelineOf(sc, seed).Run()
}

// Fig6Snapshots extracts per-sample snapshots from a Fig. 4 result at the
// recorded steps closest to the requested times, for up to maxSamples
// samples — the sample-variety panel of Fig. 6. The result must carry the
// raw ensemble (Pipeline.RetainEnsemble, e.g. via Fig6Pipeline); a result
// without one yields no snapshots.
func Fig6Snapshots(res *Result, atSteps []int, maxSamples int) []TypedConfig {
	if res.Ensemble == nil {
		return nil
	}
	var out []TypedConfig
	types := res.Ensemble.Types
	for _, want := range atSteps {
		t := closestIndex(res.Times, want)
		frames := res.Ensemble.FramesAt(t)
		for s := 0; s < len(frames) && s < maxSamples; s++ {
			out = append(out, TypedConfig{
				Label: fmt.Sprintf("sample %d, t=%d", s, res.Times[t]),
				Pos:   frames[s],
				Types: types,
			})
		}
	}
	return out
}

func closestIndex(times []int, want int) int {
	best, bestD := 0, math.MaxInt
	for i, t := range times {
		d := t - want
		if d < 0 {
			d = -d
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Fig7AlignedOverlay pools the aligned final-step positions of every sample
// into one overlay configuration — the paper's Fig. 7, where the outer ring
// forms tight clusters across samples while the inner ring is smeared by
// its rotational degree of freedom.
func Fig7AlignedOverlay(res *Result) *TypedConfig {
	ds := res.Observers.Datasets[len(res.Observers.Datasets)-1]
	var pos []vec.Vec2
	var types []int
	for s := 0; s < ds.NumSamples(); s++ {
		for v := 0; v < ds.NumVars(); v++ {
			x := ds.Var(s, v)
			pos = append(pos, vec.Vec2{X: x[0], Y: x[1]})
			types = append(types, res.Labels[v])
		}
	}
	return &TypedConfig{Label: "fig7-overlay", Pos: pos, Types: types}
}

// RingRadialStats quantifies Fig. 7's visual claim: it splits the aligned
// overlay into inner and outer ring by radius and returns the mean angular
// scatter of per-particle position clusters in each ring. The paper's
// observation — the outer ring aligns into dense clusters while the inner
// ring smears — shows up as innerScatter ≫ outerScatter.
func RingRadialStats(res *Result) (innerScatter, outerScatter float64) {
	ds := res.Observers.Datasets[len(res.Observers.Datasets)-1]
	nVars := ds.NumVars()
	m := ds.NumSamples()
	// Mean radius per observer variable decides ring membership.
	radii := make([]float64, nVars)
	for v := 0; v < nVars; v++ {
		var sum float64
		for s := 0; s < m; s++ {
			x := ds.Var(s, v)
			sum += math.Hypot(x[0], x[1])
		}
		radii[v] = sum / float64(m)
	}
	med := mathx.Median(radii)
	var inner, outer []float64
	for v := 0; v < nVars; v++ {
		// Scatter: RMS distance of the variable's samples from their
		// own mean.
		var mx, my float64
		for s := 0; s < m; s++ {
			x := ds.Var(s, v)
			mx += x[0]
			my += x[1]
		}
		mx /= float64(m)
		my /= float64(m)
		var rms float64
		for s := 0; s < m; s++ {
			x := ds.Var(s, v)
			rms += mathx.Sq(x[0]-mx) + mathx.Sq(x[1]-my)
		}
		rms = math.Sqrt(rms / float64(m))
		if radii[v] < med {
			inner = append(inner, rms)
		} else {
			outer = append(outer, rms)
		}
	}
	return mathx.Mean(inner), mathx.Mean(outer)
}

// ---------------------------------------------------------------------------
// Fig. 8 — ΔI vs number of types under F².

// Fig8Specs builds the full run grid of Fig. 8 — l = 1…maxTypes under F²
// with random symmetric matrices, sc.Repeats independent draws per l —
// in the serial loop's (l, rep) order, with the serial loop's exact seed
// and matrix-draw streams. Every draw uses its own rngx.Split sub-stream,
// so the specs are identical no matter how (or how concurrently) they are
// later executed.
func Fig8Specs(sc Scale, maxTypes int, seed uint64) []SweepSpec {
	specs := make([]SweepSpec, 0, maxTypes*sc.Repeats)
	for l := 1; l <= maxTypes; l++ {
		for rep := 0; rep < sc.Repeats; rep++ {
			rng := rngx.Split(seed, uint64(l*1000+rep))
			f := forces.RandomF2(l, 1, 10, 1, 10, rng)
			specs = append(specs, SweepSpec{
				ID: fmt.Sprintf("fig8-l%d-rep%d", l, rep),
				Pipeline: Pipeline{
					Name: fmt.Sprintf("fig8-l%d-rep%d", l, rep),
					Ensemble: sim.EnsembleConfig{
						Sim:         sim.Config{N: 20, Force: f, Cutoff: 7.5},
						M:           sc.M,
						Steps:       sc.Steps,
						RecordEvery: sc.Steps, // only first and last frame needed
						Seed:        seed + uint64(l*7919+rep),
					},
				},
			})
		}
	}
	return specs
}

// Fig8TypeCountSweep measures the multi-information increase between t=0
// and t_max for l = 1…maxTypes under F² with random symmetric matrices,
// averaged over sc.Repeats draws (the paper: 10 draws, l up to 10,
// τ-family randomised; see DESIGN.md on the r→τ substitution). The runs
// execute through sw (nil = serial); output is bit-identical for every
// sweeper and concurrency setting.
func Fig8TypeCountSweep(ctx context.Context, sw Sweeper, sc Scale, maxTypes int, seed uint64) (*FigureData, error) {
	if err := validateRepeats(sc); err != nil {
		return nil, err
	}
	if maxTypes < 1 {
		return nil, fmt.Errorf("experiment: Fig8TypeCountSweep needs maxTypes >= 1, got %d", maxTypes)
	}
	results, err := sweeperOrSerial(sw).Sweep(ctx, Fig8Specs(sc, maxTypes, seed))
	if err != nil {
		return nil, err
	}
	xs := make([]float64, 0, maxTypes)
	ys := make([]float64, 0, maxTypes)
	for l := 1; l <= maxTypes; l++ {
		xs = append(xs, float64(l))
		ys = append(ys, MeanDeltaI(results[(l-1)*sc.Repeats:l*sc.Repeats]))
	}
	return &FigureData{
		ID:     "fig8",
		Title:  "Increase of multi-information t=0 -> t_max vs number of types (F2)",
		Series: []Series{{Name: "deltaI", X: xs, Y: ys}},
		Notes: "Paper: decreasing trend in l for F2 with random matrices. " +
			"Averaged over random symmetric (k, tau) draws.",
	}, nil
}

// ---------------------------------------------------------------------------
// Figs. 9 & 10 — cut-off radius and type-count sweeps under F¹.

// RandomTypedF1Config builds the random-type F¹ system of Figs. 9/10 (and
// the long-range scenario family): n particles, l types assigned
// round-robin, r_αβ ∈ [2, 8], k_αβ = 1.
func RandomTypedF1Config(n, l int, rc float64, draw rngx.Source) sim.Config {
	f := forces.MustF1(forces.ConstantMatrix(l, 1), forces.RandomMatrix(l, 2, 8, draw))
	return sim.Config{N: n, Types: sim.TypesRoundRobin(n, l), Force: f, Cutoff: rc}
}

// repeatSpecs builds the sc.Repeats runs of one averaged series: rep r
// simulates build(r) with ensemble seed seed + r·104729 (the historical
// stride). idPrefix must be unique per series within a sweep.
func repeatSpecs(idPrefix string, sc Scale, seed uint64, build func(rep int) sim.Config) []SweepSpec {
	specs := make([]SweepSpec, sc.Repeats)
	for rep := 0; rep < sc.Repeats; rep++ {
		specs[rep] = SweepSpec{
			ID: fmt.Sprintf("%s-rep%d", idPrefix, rep),
			Pipeline: Pipeline{
				Name: fmt.Sprintf("avg-rep%d", rep),
				Ensemble: sim.EnsembleConfig{
					Sim:         build(rep),
					M:           sc.M,
					Steps:       sc.Steps,
					RecordEvery: sc.RecordEvery,
					Seed:        seed + uint64(rep)*104729,
				},
			},
		}
	}
	return specs
}

// AverageMI runs the pipeline for sc.Repeats random draws through sw and
// returns the pointwise-mean MI curve (all runs share the recorded time
// grid). It is the one-series form of the Figs. 9/10 sweep machinery,
// exported for the scenario registry.
func AverageMI(ctx context.Context, sw Sweeper, sc Scale, seed uint64, build func(rep int) sim.Config) ([]int, []float64, error) {
	if err := validateRepeats(sc); err != nil {
		return nil, nil, err
	}
	results, err := sweeperOrSerial(sw).Sweep(ctx, repeatSpecs("avg", sc, seed, build))
	if err != nil {
		return nil, nil, err
	}
	return MeanMICurve(results)
}

// Fig9CutoffSweep reproduces Fig. 9: MI(t) for 20 particles with 20
// distinct types (l = n) under F¹, for cut-off radii
// rc ∈ {2.5, 5, 7.5, 10, 15, ∞}, averaged over random r_αβ draws. The
// paper's headline: MI increases with rc even though the configurations
// look unstructured; locality (small rc) limits self-organisation.
func Fig9CutoffSweep(ctx context.Context, sw Sweeper, sc Scale, seed uint64) (*FigureData, error) {
	if err := validateRepeats(sc); err != nil {
		return nil, err
	}
	radii := []float64{2.5, 5.0, 7.5, 10.0, 15.0, math.Inf(1)}
	fd := &FigureData{
		ID:    "fig9",
		Title: "Multi-information vs time for different cut-off radii (n=l=20, F1)",
		Notes: "Paper: MI at t_max increases monotonically with rc; rc<=7.5 strongly limited.",
	}
	// One batch over the whole radius × repeat grid: a concurrent sweeper
	// overlaps runs across series instead of draining one radius at a
	// time. Seeds and draw streams are the historical per-series ones.
	var specs []SweepSpec
	for ri, rc := range radii {
		specs = append(specs, repeatSpecs(fmt.Sprintf("fig9-rc%g", rc), sc, seed+uint64(ri)*15485863,
			func(rep int) sim.Config {
				draw := rngx.Split(seed, uint64(ri*100+rep))
				return RandomTypedF1Config(20, 20, rc, draw)
			})...)
	}
	results, err := sweeperOrSerial(sw).Sweep(ctx, specs)
	if err != nil {
		return nil, err
	}
	for ri, rc := range radii {
		times, mi, err := MeanMICurve(results[ri*sc.Repeats : (ri+1)*sc.Repeats])
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("rc=%g", rc)
		if math.IsInf(rc, 1) {
			name = "rc=inf"
		}
		fd.Series = append(fd.Series, Series{Name: name, X: intsToFloats(times), Y: mi})
	}
	return fd, nil
}

// Fig10TypesVsCutoff reproduces Fig. 10: MI(t) for l ∈ {20, 5} ×
// rc ∈ {10, 15, ∞} with 20 particles under F¹. The paper's headline: with
// locally limited interactions, fewer types self-organise MORE than many
// types — regular same-type clusters restore long-range information flow.
func Fig10TypesVsCutoff(ctx context.Context, sw Sweeper, sc Scale, seed uint64) (*FigureData, error) {
	if err := validateRepeats(sc); err != nil {
		return nil, err
	}
	fd := &FigureData{
		ID:    "fig10",
		Title: "Multi-information vs time for l in {20,5} and rc in {10,15,inf} (n=20, F1)",
		Notes: "Paper: for finite rc the l=5 curves rise above the l=20 curves; at rc=inf they are comparable.",
	}
	cases := []struct {
		l  int
		rc float64
	}{
		{20, 10}, {20, 15}, {20, math.Inf(1)},
		{5, 10}, {5, 15}, {5, math.Inf(1)},
	}
	var specs []SweepSpec
	for ci, c := range cases {
		specs = append(specs, repeatSpecs(fmt.Sprintf("fig10-l%d-rc%g", c.l, c.rc), sc, seed+uint64(ci)*32452843,
			func(rep int) sim.Config {
				draw := rngx.Split(seed, uint64(ci*100+rep))
				return RandomTypedF1Config(20, c.l, c.rc, draw)
			})...)
	}
	results, err := sweeperOrSerial(sw).Sweep(ctx, specs)
	if err != nil {
		return nil, err
	}
	for ci, c := range cases {
		times, mi, err := MeanMICurve(results[ci*sc.Repeats : (ci+1)*sc.Repeats])
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("l=%d,rc=%g", c.l, c.rc)
		if math.IsInf(c.rc, 1) {
			name = fmt.Sprintf("l=%d,rc=inf", c.l)
		}
		fd.Series = append(fd.Series, Series{Name: name, X: intsToFloats(times), Y: mi})
	}
	return fd, nil
}

// ---------------------------------------------------------------------------
// Fig. 11 — normalised decomposition of the multi-information.

// Fig11PipelineOf is the Fig. 11 experiment as a pipeline value: one
// l=5, rc=15 system from the Fig. 10 family with the decomposition
// enabled (the random r_αβ draw is split off the master seed, so the
// pipeline — and its spec form — pins the exact matrices).
func Fig11PipelineOf(sc Scale, seed uint64) Pipeline {
	draw := rngx.Split(seed, 11)
	return Pipeline{
		Name: "fig11",
		Ensemble: sim.EnsembleConfig{
			Sim:         RandomTypedF1Config(20, 5, 15, draw),
			M:           sc.M,
			Steps:       sc.Steps,
			RecordEvery: sc.RecordEvery,
			Seed:        seed,
		},
		Decompose: true,
	}
}

// Fig11Decomposition runs one l=5, rc=15 system from the Fig. 10 family
// with the per-type decomposition enabled and returns the decomposition
// terms normalised by the total at each time step — the presentation of
// Fig. 11 (between-type term plus one within-type term per type).
func Fig11Decomposition(sc Scale, seed uint64) (*FigureData, error) {
	res, err := Fig11PipelineOf(sc, seed).Run()
	if err != nil {
		return nil, err
	}
	fd := DecompositionFigure(res, "fig11", "Normalized decomposition of multi-information (l=5, rc=15, F1)")
	fd.Notes = "Paper: contributions vary early, then settle to stable fractions while total MI still grows."
	return fd, nil
}

// DecompositionFigure renders a decomposed result in the Fig. 11
// presentation — the normalised between/within fractions plus the total
// MI trace scaled to its maximum. It is shared by the fig11 driver and
// the spec dispatcher, so a Decompose spec replayed from JSON produces
// the same figure data as the figure command that dumped it.
func DecompositionFigure(res *Result, id, title string) *FigureData {
	fd := &FigureData{ID: id, Title: title}
	xs := intsToFloats(res.Times)
	between := make([]float64, len(res.Times))
	within := make([][]float64, len(res.Decomp[0].Within))
	for g := range within {
		within[g] = make([]float64, len(res.Times))
	}
	total := make([]float64, len(res.Times))
	for t, dec := range res.Decomp {
		norm := dec.Normalized()
		between[t] = norm.Between
		for g := range norm.Within {
			within[g][t] = norm.Within[g]
		}
		total[t] = dec.Total()
	}
	// Normalise the total-MI trace to its maximum, as in the figure.
	_, maxTot := mathx.MinMax(total)
	if maxTot > 0 {
		for t := range total {
			total[t] /= maxTot
		}
	}
	fd.Series = append(fd.Series, Series{Name: "total (scaled)", X: xs, Y: total})
	fd.Series = append(fd.Series, Series{Name: "between-types", X: xs, Y: between})
	for g := range within {
		fd.Series = append(fd.Series, Series{Name: fmt.Sprintf("type %d", g), X: xs, Y: within[g]})
	}
	return fd
}

// ---------------------------------------------------------------------------
// Fig. 12 — emergent structures with few types and local interactions.

// Fig12EmergentStructures runs the designed few-type, small-rc F¹ systems
// of Sec. 7.2: a ball enclosed in a ring, and a layered three-type
// collective.
func Fig12EmergentStructures(seed uint64) ([]TypedConfig, error) {
	var out []TypedConfig

	// Ball-in-ring: core type adheres tightly, shell type keeps a larger
	// distance to itself and a medium distance to the core.
	rBall := forces.MustMatrix([][]float64{
		{1.0, 2.0},
		{2.0, 2.6},
	})
	cfgBall := sim.Config{
		N:     36,
		Types: sim.TypesBlocks(36, 2),
		Force: forces.MustF1(forces.ConstantMatrix(2, 4), rBall),
		// Small cut-off relative to the collective: interactions are
		// local (the Sec. 7.2 regime). Strong adhesion needs a small
		// step (sim.MaxStableDt).
		Cutoff:     6,
		Dt:         0.01,
		InitRadius: 2.5,
	}
	sysBall, err := sim.New(cfgBall, rngx.Split(seed, 121))
	if err != nil {
		return nil, err
	}
	sysBall.RunUntilEquilibrium(4000)
	out = append(out, TypedConfig{Label: "ball-in-ring", Pos: sysBall.Positions(), Types: sysBall.Types()})

	// Layers: three types with graded mutual distances.
	rLayer := forces.MustMatrix([][]float64{
		{1.2, 1.8, 3.6},
		{1.8, 1.2, 1.8},
		{3.6, 1.8, 1.2},
	})
	cfgLayer := sim.Config{
		N:          42,
		Types:      sim.TypesBlocks(42, 3),
		Force:      forces.MustF1(forces.ConstantMatrix(3, 4), rLayer),
		Cutoff:     6,
		Dt:         0.01,
		InitRadius: 2.5,
	}
	sysLayer, err := sim.New(cfgLayer, rngx.Split(seed, 122))
	if err != nil {
		return nil, err
	}
	sysLayer.RunUntilEquilibrium(4000)
	out = append(out, TypedConfig{Label: "layers", Pos: sysLayer.Positions(), Types: sysLayer.Types()})
	return out, nil
}

// ---------------------------------------------------------------------------
// Convenience: pipelines used by more than one figure.

// WithKMeans returns a copy of the pipeline with the Sec. 5.3.1 k-means
// reduction enabled at k clusters per type.
func (p Pipeline) WithKMeans(k int) Pipeline {
	p.Observer.KMeansK = k
	return p
}

// Fig4PipelineReduced is Fig4Pipeline with the k-means reduction the paper
// prescribes for large collectives, exercised here on the 50-particle
// system for the reduction-bias ablation.
func Fig4PipelineReduced(sc Scale, seed uint64, k int) (*Result, error) {
	p := Pipeline{
		Name: "fig4-kmeans",
		Ensemble: sim.EnsembleConfig{
			Sim:         Fig4Params(),
			M:           sc.M,
			Steps:       sc.Steps,
			RecordEvery: sc.RecordEvery,
			Seed:        seed,
		},
		Observer: observer.Config{KMeansK: k, Seed: seed},
	}
	return p.Run()
}
