package experiment

import (
	"context"
	"math"
	"testing"

	"repro/internal/vec"
)

// The snapshot-figure drivers run full simulations; keep them out of
// -short runs but verify their outputs structurally in normal runs.

func TestFig1ExampleDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg, err := Fig1Example(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Pos) != 40 || len(cfg.Types) != 40 {
		t.Fatalf("fig1 shape: %d positions, %d types", len(cfg.Pos), len(cfg.Types))
	}
	// The morphology claim: per-type mean radius (from collective
	// centroid) must be ordered by type — type 0 innermost, type 3
	// outermost — reflecting the nested adhesion matrix.
	pos := append([]vec.Vec2(nil), cfg.Pos...)
	vec.Center(pos)
	radius := make([]float64, 4)
	count := make([]int, 4)
	for i, p := range pos {
		radius[cfg.Types[i]] += p.Norm()
		count[cfg.Types[i]]++
	}
	for ty := range radius {
		radius[ty] /= float64(count[ty])
	}
	if !(radius[0] < radius[3]) {
		t.Errorf("type 0 mean radius %v should be inside type 3 mean radius %v (radii: %v)",
			radius[0], radius[3], radius)
	}
}

func TestFig3EquilibriaDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfgs, err := Fig3Equilibria(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 3 {
		t.Fatalf("%d configurations, want 3 (l=3,2,1)", len(cfgs))
	}
	// The single-type F2 panel: a repulsion-only collective must spread
	// into an even configuration — nearest-neighbour distances should
	// have a low coefficient of variation (regular-grid signature).
	grid := cfgs[2]
	var nnDists []float64
	for i, p := range grid.Pos {
		best := math.Inf(1)
		for j, q := range grid.Pos {
			if i == j {
				continue
			}
			if d := p.Dist(q); d < best {
				best = d
			}
		}
		nnDists = append(nnDists, best)
	}
	mean, varSum := 0.0, 0.0
	for _, d := range nnDists {
		mean += d
	}
	mean /= float64(len(nnDists))
	for _, d := range nnDists {
		varSum += (d - mean) * (d - mean)
	}
	cv := math.Sqrt(varSum/float64(len(nnDists))) / mean
	if cv > 0.45 {
		t.Errorf("single-type F2 equilibrium not grid-like: NN-distance CV = %v", cv)
	}
}

func TestFig12EmergentStructuresDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfgs, err := Fig12EmergentStructures(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 {
		t.Fatalf("%d structures, want 2", len(cfgs))
	}
	// Ball-in-ring: the type-0 core must sit strictly inside the type-1
	// shell (mean radius ordering with clear separation).
	ball := cfgs[0]
	pos := append([]vec.Vec2(nil), ball.Pos...)
	vec.Center(pos)
	var rCore, rShell float64
	var nCore, nShell int
	for i, p := range pos {
		if ball.Types[i] == 0 {
			rCore += p.Norm()
			nCore++
		} else {
			rShell += p.Norm()
			nShell++
		}
	}
	rCore /= float64(nCore)
	rShell /= float64(nShell)
	if !(rShell > 1.5*rCore) {
		t.Errorf("ball-in-ring: shell mean radius %v not clearly outside core %v", rShell, rCore)
	}
}

func TestFig8SweepAtTestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	fd, err := Fig8TypeCountSweep(context.Background(), nil, TestScale(), 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Series) != 1 || len(fd.Series[0].X) != 3 {
		t.Fatalf("fig8 series shape wrong: %+v", fd.Series)
	}
	for _, y := range fd.Series[0].Y {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			t.Fatal("non-finite ΔI")
		}
	}
}

func TestFig11DecompositionAtTestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	fd, err := Fig11Decomposition(TestScale(), 11)
	if err != nil {
		t.Fatal(err)
	}
	// total + between + 5 types.
	if len(fd.Series) != 7 {
		t.Fatalf("fig11 has %d series, want 7", len(fd.Series))
	}
	// Normalized fractions: between + within must sum to 1 wherever the
	// total is nonzero.
	nPts := len(fd.Series[0].X)
	for i := 0; i < nPts; i++ {
		sum := 0.0
		for _, s := range fd.Series[1:] { // skip the scaled total
			sum += s.Y[i]
		}
		if math.Abs(sum-1) > 1e-6 && sum != 0 {
			t.Fatalf("decomposition fractions at point %d sum to %v", i, sum)
		}
	}
}

func TestRingRadialStatsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline")
	}
	res, err := Fig5SingleTypeRings(Scale{M: 64, Steps: 150, RecordEvery: 150}, 5)
	if err != nil {
		t.Fatal(err)
	}
	inner, outer := RingRadialStats(res)
	if math.IsNaN(inner) || math.IsNaN(outer) {
		t.Fatal("non-finite ring stats")
	}
	if inner <= outer {
		t.Logf("note: inner scatter %v not above outer %v at this scale (paper claim holds at larger M)", inner, outer)
	}
}
