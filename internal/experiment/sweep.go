package experiment

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/mathx"
)

// SweepSpec is one run of a sweep: a fully specified pipeline plus an
// identifier that is unique within the sweep. The ID — not the pipeline
// Name, which figure drivers reuse across series — keys checkpoint files
// and progress reports.
type SweepSpec struct {
	ID       string
	Pipeline Pipeline
}

// Sweeper executes batches of pipeline runs. The figure drivers that loop
// over many pipelines (Figs. 8–10, the estimator comparison) are written
// against this interface, so the same driver runs serially
// (SerialSweeper, the historical loops) or concurrently with
// checkpointing (sweep.Runner). Implementations must return results in
// spec order and must not reorder, drop, or batch-merge runs — the
// reducers consume results positionally with serial-loop arithmetic.
// Cancelling the context stops the sweep within one token-grant; a
// cancelled sweep returns the context's error and no partial result set.
type Sweeper interface {
	// Sweep executes every spec and returns the results in spec order.
	Sweep(ctx context.Context, specs []SweepSpec) ([]*Result, error)
	// Do executes n indexed jobs (not necessarily pipelines) under the
	// sweeper's execution policy. fn receives a dense worker slot index
	// so callers can keep per-worker scratch (estimator engines); jobs
	// must be independent and safe to run concurrently.
	Do(ctx context.Context, n int, fn func(worker, i int) error) error
}

// SerialSweeper runs every spec in order on the calling goroutine — the
// pre-sweep serial loops, kept as the equivalence reference that
// concurrent sweepers are tested against bit for bit.
type SerialSweeper struct{}

// Sweep runs the specs one after another.
func (SerialSweeper) Sweep(ctx context.Context, specs []SweepSpec) ([]*Result, error) {
	results := make([]*Result, len(specs))
	for i, spec := range specs {
		res, err := spec.Pipeline.RunCtx(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("sweep run %q: %w", spec.ID, err)
		}
		results[i] = res
	}
	return results, nil
}

// Do runs the jobs in order on the calling goroutine (worker slot 0).
func (SerialSweeper) Do(ctx context.Context, n int, fn func(worker, i int) error) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := fn(0, i); err != nil {
			return err
		}
	}
	return nil
}

// sweeperOrSerial resolves a nil Sweeper to the serial reference, so
// drivers accept nil for the historical behaviour.
func sweeperOrSerial(sw Sweeper) Sweeper {
	if sw == nil {
		return SerialSweeper{}
	}
	return sw
}

// validateRepeats rejects the degenerate Scale the sweep drivers used to
// accept silently: Repeats ≤ 0 made the serial loops skip every run and
// return NaN/empty curves.
func validateRepeats(sc Scale) error {
	if sc.Repeats <= 0 {
		return fmt.Errorf("experiment: Scale.Repeats must be positive, got %d", sc.Repeats)
	}
	return nil
}

// MeanMICurve reduces sweep results to the pointwise-mean MI curve over
// the shared recorded time grid, with exactly the serial-loop arithmetic
// (accumulate in result order, divide once) so that sweep outputs stay
// bit-identical to the historical per-series loops.
func MeanMICurve(results []*Result) (times []int, mi []float64, err error) {
	if len(results) == 0 {
		return nil, nil, errors.New("experiment: MeanMICurve needs at least one result")
	}
	times = results[0].Times
	acc := make([]float64, len(results[0].MI))
	for _, res := range results {
		if len(res.MI) != len(acc) {
			return nil, nil, fmt.Errorf("experiment: result %q has %d MI points, want %d (mismatched time grids)",
				res.Name, len(res.MI), len(acc))
		}
		for i, v := range res.MI {
			acc[i] += v
		}
	}
	for i := range acc {
		acc[i] /= float64(len(results))
	}
	return times, acc, nil
}

// MeanDeltaI reduces sweep results to the mean self-organisation increase
// ΔI = I(t_max) − I(t_0), in result order — the Fig. 8 reducer.
func MeanDeltaI(results []*Result) float64 {
	deltas := make([]float64, len(results))
	for i, res := range results {
		deltas[i] = res.DeltaI()
	}
	return mathx.Mean(deltas)
}
