package experiment

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/statcomplex"
	"repro/internal/vec"
)

// ComplexityPoint is one window of the symbolic-complexity profile.
type ComplexityPoint struct {
	// StartStep and EndStep delimit the window in recorded step indices.
	StartStep, EndStep int
	// C is the statistical complexity C_μ (bits) of the ε-machine
	// reconstructed from the window's pooled motion symbols.
	C float64
	// H is the entropy rate h_μ (bits/symbol).
	H float64
	// States is the number of reconstructed causal states.
	States int
}

// SymbolicComplexityProfile measures the statistical-complexity view of
// self-organization the paper discusses as the main alternative to its
// multi-information measure (Sec. 3, Sec. 7.1): every particle's motion in
// every ensemble sample is symbolised (displacement sectors + stall
// symbol), the sequences of each window of recorded frames are pooled, and
// an ε-machine is reconstructed per window.
//
// windowFrames is the number of recorded frames per window; sectors and
// minStep configure the symbolisation. The returned profile makes the
// Sec. 7.1 narrative checkable: a purely random phase and a frozen
// equilibrium both show low complexity, structured motion in between shows
// more. Windows whose histories are all under-observed yield a
// zero-information point instead of an error.
func SymbolicComplexityProfile(ens *sim.Ensemble, windowFrames, sectors int, minStep float64, opt statcomplex.Options) ([]ComplexityPoint, error) {
	times := ens.Times()
	if windowFrames < 2 {
		return nil, fmt.Errorf("experiment: windowFrames must be ≥ 2")
	}
	if len(times) < windowFrames {
		return nil, fmt.Errorf("experiment: ensemble has %d recorded frames, window needs %d", len(times), windowFrames)
	}
	opt.Alphabet = sectors + 1 // sector symbols plus the stall symbol

	var out []ComplexityPoint
	for start := 0; start+windowFrames <= len(times); start += windowFrames {
		end := start + windowFrames
		var seqs [][]int
		for _, traj := range ens.Trajs {
			for i := range ens.Types {
				window := statcomplex.SymbolizeDisplacements(
					trajWindow(traj, i, start, end), sectors, minStep)
				if len(window) > opt.MaxHistory {
					seqs = append(seqs, window)
				}
			}
		}
		if len(seqs) == 0 {
			continue
		}
		point := ComplexityPoint{StartStep: times[start], EndStep: times[end-1]}
		if m, err := statcomplex.Reconstruct(seqs, opt); err == nil {
			point.C = m.StatisticalComplexity()
			point.H = m.EntropyRate()
			point.States = m.NumStates()
		}
		out = append(out, point)
	}
	return out, nil
}

func trajWindow(traj sim.Trajectory, particle, start, end int) []vec.Vec2 {
	out := make([]vec.Vec2, 0, end-start)
	for t := start; t < end; t++ {
		out = append(out, traj.Frames[t][particle])
	}
	return out
}
