package experiment

import (
	"fmt"
	"strings"

	"repro/internal/infotheory"
)

// ValidEstimators lists every estimator kind the pipeline accepts, in
// documentation order. The empty kind is not listed: it is shorthand for
// the default, EstKSG2.
func ValidEstimators() []EstimatorKind {
	return []EstimatorKind{EstKSG2, EstKSG1, EstKSGPaper, EstKernel, EstBinned}
}

// UnknownEstimatorError reports an estimator kind outside ValidEstimators.
// It replaces the stringly-typed "unknown estimator %q" errors: callers
// (CLIs, spec validation) can match it with errors.As and present the
// valid kinds without maintaining their own copy of the list.
type UnknownEstimatorError struct {
	// Kind is the rejected estimator name.
	Kind EstimatorKind
}

func (e *UnknownEstimatorError) Error() string {
	valid := ValidEstimators()
	names := make([]string, len(valid))
	for i, k := range valid {
		names[i] = string(k)
	}
	return fmt.Sprintf("experiment: unknown estimator %q (valid kinds: %s)",
		string(e.Kind), strings.Join(names, ", "))
}

// NewEstimator builds the estimator closure for a kind, bound to one
// engine: the single constructor behind Pipeline runs, sopinfo and the
// spec layer, so validation and estimation can never disagree about what a
// kind means. k is the k-NN parameter of the KSG kinds, bins the
// per-dimension bin count of the binned kind (0 = its default). With a nil
// engine it only validates the kind — the returned closure must not be
// called. An unknown kind returns *UnknownEstimatorError.
func NewEstimator(kind EstimatorKind, k, bins int, eng *infotheory.Engine) (infotheory.Estimator, error) {
	if variant, ok := kind.KSGVariant(); ok {
		return eng.KSGVariantEstimator(k, variant), nil
	}
	switch kind {
	case EstKernel:
		return eng.MultiInfoKernel, nil
	case EstBinned:
		return func(d *infotheory.Dataset) float64 {
			return infotheory.MultiInfoBinned(d, infotheory.BinnedOptions{Bins: bins})
		}, nil
	default:
		return nil, &UnknownEstimatorError{Kind: kind}
	}
}

// UsesKNN reports whether the kind evaluates a k-NN estimate (and so is
// subject to the k < M constraint).
func (k EstimatorKind) UsesKNN() bool {
	switch k {
	case "", EstKSG2, EstKSG1, EstKSGPaper:
		return true
	}
	return false
}

// KSGVariant maps a KSG estimator kind to its infotheory variant; ok is
// false for the non-KSG kinds (which also means the kind has no
// approximate-tier form).
func (k EstimatorKind) KSGVariant() (variant infotheory.KSGVariant, ok bool) {
	switch k {
	case "", EstKSG2:
		return infotheory.KSG2, true
	case EstKSG1:
		return infotheory.KSG1, true
	case EstKSGPaper:
		return infotheory.KSGPaper, true
	}
	return 0, false
}
