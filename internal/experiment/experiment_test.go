package experiment

import (
	"context"
	"math"
	"testing"

	"repro/internal/forces"
	"repro/internal/rngx"
	"repro/internal/sim"
)

func rngSource(seed uint64) rngx.Source { return rngx.New(seed) }

func tinyPipeline(name string, est EstimatorKind) Pipeline {
	return Pipeline{
		Name: name,
		Ensemble: sim.EnsembleConfig{
			Sim: sim.Config{
				N:     10,
				Types: sim.TypesRoundRobin(10, 2),
				Force: forces.MustF1(forces.ConstantMatrix(2, 1),
					forces.MustMatrix([][]float64{{1.5, 3.5}, {3.5, 2.0}})),
				Cutoff: 6,
			},
			M:           24,
			Steps:       30,
			RecordEvery: 15,
			Seed:        7,
		},
		Estimator: est,
	}
}

func TestPipelineRunShapes(t *testing.T) {
	res, err := tinyPipeline("t", "").Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 3 || len(res.MI) != 3 {
		t.Fatalf("times=%v MI=%v", res.Times, res.MI)
	}
	if res.Observers == nil {
		t.Fatal("observers missing")
	}
	if res.Ensemble != nil {
		t.Fatal("ensemble retained without RetainEnsemble")
	}
	if len(res.Labels) != 10 {
		t.Fatalf("labels = %v", res.Labels)
	}
	for _, mi := range res.MI {
		if math.IsNaN(mi) || math.IsInf(mi, 0) {
			t.Fatalf("non-finite MI: %v", res.MI)
		}
	}
}

func TestPipelineRetainEnsemble(t *testing.T) {
	p := tinyPipeline("retain", "")
	p.RetainEnsemble = true
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ensemble == nil {
		t.Fatal("RetainEnsemble did not retain the ensemble")
	}
	if len(res.Ensemble.Trajs) != p.Ensemble.M {
		t.Fatalf("%d trajectories, want %d", len(res.Ensemble.Trajs), p.Ensemble.M)
	}
	for s, traj := range res.Ensemble.Trajs {
		if len(traj.Frames) != len(res.Times) {
			t.Fatalf("sample %d has %d frames, want %d", s, len(traj.Frames), len(res.Times))
		}
	}
}

func TestPipelineDeterministic(t *testing.T) {
	a, err := tinyPipeline("a", "").Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tinyPipeline("b", "").Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.MI {
		if a.MI[i] != b.MI[i] {
			t.Fatal("pipeline not deterministic")
		}
	}
}

func TestPipelineEstimatorSelection(t *testing.T) {
	for _, est := range []EstimatorKind{EstKSGPaper, EstKSG1, EstKSG2, EstKernel, EstBinned} {
		if _, err := tinyPipeline(string(est), est).Run(); err != nil {
			t.Errorf("estimator %q failed: %v", est, err)
		}
	}
	if _, err := tinyPipeline("bad", "nope").Run(); err == nil {
		t.Error("unknown estimator accepted")
	}
}

func TestPipelineRejectsKTooLargeForM(t *testing.T) {
	p := tinyPipeline("k", "")
	p.K = p.Ensemble.M
	if _, err := p.Run(); err == nil {
		t.Error("k >= M accepted")
	}
}

func TestPipelineDecompose(t *testing.T) {
	p := tinyPipeline("d", "")
	p.Decompose = true
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decomp) != len(res.Times) {
		t.Fatal("decomposition missing")
	}
	for _, dec := range res.Decomp {
		if len(dec.Within) != 2 {
			t.Fatalf("decomposition has %d groups, want 2", len(dec.Within))
		}
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{MI: []float64{1, 2, 5}}
	if r.DeltaI() != 4 {
		t.Errorf("DeltaI = %v", r.DeltaI())
	}
	if r.FinalMI() != 5 {
		t.Errorf("FinalMI = %v", r.FinalMI())
	}
	empty := &Result{}
	if empty.DeltaI() != 0 || empty.FinalMI() != 0 {
		t.Error("empty result helpers wrong")
	}
}

func TestScalePresets(t *testing.T) {
	p := PaperScale()
	if p.M != 500 || p.Steps != 250 || p.Repeats != 10 {
		t.Errorf("PaperScale changed: %+v (paper: m=500–1000, tmax=250, 10 repeats)", p)
	}
	q := QuickScale()
	if q.M < 64 || q.Steps != 250 {
		t.Errorf("QuickScale unusable: %+v", q)
	}
	s := TestScale()
	if s.M > q.M || s.Steps > q.Steps {
		t.Error("TestScale should be the smallest")
	}
}

// --- figure drivers ---------------------------------------------------------

func TestFig2ForceCurves(t *testing.T) {
	fd := Fig2ForceCurves()
	if fd.ID != "fig2" || len(fd.Series) != 2 {
		t.Fatal("fig2 shape wrong")
	}
	var f1Series, f2Series Series
	for _, s := range fd.Series {
		switch s.Name {
		case "F1":
			f1Series = s
		case "F2":
			f2Series = s
		}
	}
	// F1 (k=1, r=2): negative below 2, positive above.
	for i, x := range f1Series.X {
		y := f1Series.Y[i]
		if x < 1.9 && y >= 0 {
			t.Fatalf("F1(%g) = %v, want negative", x, y)
		}
		if x > 2.1 && y <= 0 {
			t.Fatalf("F1(%g) = %v, want positive", x, y)
		}
	}
	// F2 in the paper regime: never positive.
	for i, y := range f2Series.Y {
		if y > 1e-12 {
			t.Fatalf("F2(%g) = %v, want <= 0", f2Series.X[i], y)
		}
	}
}

func TestFig4ParamsMatchPaper(t *testing.T) {
	cfg := Fig4Params()
	if cfg.N != 50 {
		t.Error("Fig. 4 uses n = 50")
	}
	if cfg.Cutoff != 5.0 {
		t.Error("Fig. 4 uses rc = 5.0")
	}
	f1, ok := cfg.Force.(*forces.F1)
	if !ok {
		t.Fatal("Fig. 4 force should be F1")
	}
	if f1.Types() != 3 {
		t.Error("Fig. 4 uses l = 3")
	}
	// Spot-check the r matrix from the caption.
	if f1.R.At(0, 1) != 5.0 || f1.R.At(1, 2) != 2.0 || f1.R.At(2, 2) != 3.5 {
		t.Error("Fig. 4 r matrix wrong")
	}
}

func TestFig5ParamsCutoffExceedsTwiceR(t *testing.T) {
	cfg := Fig5Params()
	f1 := cfg.Force.(*forces.F1)
	if f1.Types() != 1 || cfg.N != 20 {
		t.Error("Fig. 5 is 20 particles of one type")
	}
	if cfg.Cutoff <= 2*f1.R.At(0, 0) {
		t.Error("Fig. 5 requires rc > 2·r_αα (the two-ring regime)")
	}
}

func TestClosestIndex(t *testing.T) {
	times := []int{0, 10, 20, 50}
	if closestIndex(times, 12) != 1 {
		t.Error("closestIndex(12) wrong")
	}
	if closestIndex(times, 49) != 3 {
		t.Error("closestIndex(49) wrong")
	}
	if closestIndex(times, -5) != 0 {
		t.Error("closestIndex(-5) wrong")
	}
}

func TestGaussianTrueMI(t *testing.T) {
	// n=2: −½log2(det [[1,ρ],[ρ,1]]) = −½log2(1−ρ²).
	rho := 0.6
	want := -0.5 * math.Log2(1-rho*rho)
	if got := GaussianTrueMI(2, rho); math.Abs(got-want) > 1e-12 {
		t.Errorf("GaussianTrueMI(2, %v) = %v, want %v", rho, got, want)
	}
	if got := GaussianTrueMI(5, 0); got != 0 {
		t.Errorf("independent true MI = %v", got)
	}
	// Multi-information grows with n at fixed rho.
	if GaussianTrueMI(6, 0.5) <= GaussianTrueMI(3, 0.5) {
		t.Error("true MI should grow with n")
	}
}

func TestSampleEquicorrelatedGaussians(t *testing.T) {
	d := SampleEquicorrelatedGaussians(5000, 3, 0.7, rngSource(1))
	// Empirical pairwise correlation ≈ 0.7.
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			var sab, sa, sb, saa, sbb float64
			m := d.NumSamples()
			for s := 0; s < m; s++ {
				x := d.Var(s, a)[0]
				y := d.Var(s, b)[0]
				sab += x * y
				sa += x
				sb += y
				saa += x * x
				sbb += y * y
			}
			n := float64(m)
			cov := sab/n - (sa/n)*(sb/n)
			va := saa/n - (sa/n)*(sa/n)
			vb := sbb/n - (sb/n)*(sb/n)
			rho := cov / math.Sqrt(va*vb)
			if math.Abs(rho-0.7) > 0.05 {
				t.Fatalf("empirical correlation (%d,%d) = %v", a, b, rho)
			}
		}
	}
}

func TestSampleEquicorrelatedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rho=1 should panic")
		}
	}()
	SampleEquicorrelatedGaussians(10, 2, 1, rngSource(1))
}

func TestEstimatorComparisonRanksKSGAboveBaselines(t *testing.T) {
	table, err := EstimatorComparison(context.Background(), nil, 5, 150, 3, 0.6, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("%d rows", len(table.Rows))
	}
	byName := map[string]ComparisonRow{}
	for _, r := range table.Rows {
		byName[r.Estimator] = r
	}
	// The paper's findings, as shape assertions:
	// (1) KSG-2 beats the binned ML estimator on RMSE.
	if byName["ksg2"].RMSE >= byName["binned-ml"].RMSE {
		t.Errorf("ksg2 RMSE %v not below binned-ml RMSE %v",
			byName["ksg2"].RMSE, byName["binned-ml"].RMSE)
	}
	// (2) binned ML grossly overestimates in this 5-dim setting.
	if byName["binned-ml"].Bias < 1 {
		t.Errorf("binned-ml bias = %v, expected large positive", byName["binned-ml"].Bias)
	}
	// (3) the verbatim paper formula overestimates.
	if byName["ksg-paper"].Bias < 1 {
		t.Errorf("ksg-paper bias = %v, expected large positive", byName["ksg-paper"].Bias)
	}
	if table.String() == "" {
		t.Error("empty table rendering")
	}
}

func TestFig6SnapshotsSlicesEnsemble(t *testing.T) {
	p := tinyPipeline("snap", "")
	p.RetainEnsemble = true
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	snaps := Fig6Snapshots(res, []int{0, 30}, 2)
	if len(snaps) != 4 { // 2 times × 2 samples
		t.Fatalf("%d snapshots", len(snaps))
	}
	for _, s := range snaps {
		if len(s.Pos) != 10 || len(s.Types) != 10 {
			t.Fatal("snapshot shape wrong")
		}
	}
}

func TestFig6SnapshotsWithoutEnsemble(t *testing.T) {
	res, err := tinyPipeline("nosnap", "").Run()
	if err != nil {
		t.Fatal(err)
	}
	if snaps := Fig6Snapshots(res, []int{0}, 2); snaps != nil {
		t.Fatalf("snapshots from an unretained result: %v", snaps)
	}
}

func TestFig7OverlayPoolsAllSamples(t *testing.T) {
	p := tinyPipeline("overlay", "")
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	ov := Fig7AlignedOverlay(res)
	if len(ov.Pos) != 24*10 {
		t.Fatalf("overlay has %d points, want m·n = 240", len(ov.Pos))
	}
	if len(ov.Types) != len(ov.Pos) {
		t.Fatal("overlay types missing")
	}
}
