// Package vec provides the small fixed-dimension vector algebra used by the
// particle simulator and the shape-alignment pipeline.
//
// Vec2 is the workhorse: particle positions, velocities and forces all live
// in the Euclidean plane. Vec3 exists solely for the type-lifted point clouds
// used by the ICP alignment (Sec. 5.2 of the paper), where the third
// coordinate encodes the particle type.
package vec

import "math"

// Vec2 is a point or displacement in the Euclidean plane.
type Vec2 struct {
	X, Y float64
}

// Add returns v + u.
func (v Vec2) Add(u Vec2) Vec2 { return Vec2{v.X + u.X, v.Y + u.Y} }

// Sub returns v - u.
func (v Vec2) Sub(u Vec2) Vec2 { return Vec2{v.X - u.X, v.Y - u.Y} }

// Scale returns s·v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Neg returns -v.
func (v Vec2) Neg() Vec2 { return Vec2{-v.X, -v.Y} }

// Dot returns the inner product ⟨v, u⟩.
func (v Vec2) Dot(u Vec2) float64 { return v.X*u.X + v.Y*u.Y }

// Cross returns the scalar cross product v × u = v.X·u.Y − v.Y·u.X.
// It is the signed area of the parallelogram spanned by v and u and drives
// the closed-form 2-D Procrustes rotation.
func (v Vec2) Cross(u Vec2) float64 { return v.X*u.Y - v.Y*u.X }

// Norm returns the Euclidean length ‖v‖₂.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared Euclidean length ‖v‖₂².
func (v Vec2) Norm2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance ‖v−u‖₂.
func (v Vec2) Dist(u Vec2) float64 { return v.Sub(u).Norm() }

// Dist2 returns the squared Euclidean distance ‖v−u‖₂².
func (v Vec2) Dist2(u Vec2) float64 { return v.Sub(u).Norm2() }

// Normalize returns v/‖v‖. The zero vector is returned unchanged.
func (v Vec2) Normalize() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Rotate returns v rotated counter-clockwise by theta radians about the
// origin.
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{c*v.X - s*v.Y, s*v.X + c*v.Y}
}

// Lerp returns the linear interpolation (1−t)·v + t·u.
func (v Vec2) Lerp(u Vec2, t float64) Vec2 {
	return Vec2{v.X + t*(u.X-v.X), v.Y + t*(u.Y-v.Y)}
}

// Angle returns the angle of v in radians in (−π, π], measured from the
// positive x-axis.
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// IsFinite reports whether both components are finite (neither NaN nor ±Inf).
func (v Vec2) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

// Centroid returns the arithmetic mean of the points. It returns the zero
// vector for an empty slice.
func Centroid(points []Vec2) Vec2 {
	if len(points) == 0 {
		return Vec2{}
	}
	var sx, sy float64
	for _, p := range points {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(points))
	return Vec2{sx / n, sy / n}
}

// Center subtracts the centroid from every point in place and returns the
// centroid that was removed.
func Center(points []Vec2) Vec2 {
	c := Centroid(points)
	for i := range points {
		points[i] = points[i].Sub(c)
	}
	return c
}

// Radius returns the maximum distance of any point from the origin. It is
// used to size the type-lift in the ICP alignment and to track the expansion
// of a collective.
func Radius(points []Vec2) float64 {
	var r2 float64
	for _, p := range points {
		if n2 := p.Norm2(); n2 > r2 {
			r2 = n2
		}
	}
	return math.Sqrt(r2)
}

// BoundingBox returns the axis-aligned bounding box (min, max) of the points.
// It returns zero vectors for an empty slice.
func BoundingBox(points []Vec2) (min, max Vec2) {
	if len(points) == 0 {
		return Vec2{}, Vec2{}
	}
	min, max = points[0], points[0]
	for _, p := range points[1:] {
		if p.X < min.X {
			min.X = p.X
		}
		if p.Y < min.Y {
			min.Y = p.Y
		}
		if p.X > max.X {
			max.X = p.X
		}
		if p.Y > max.Y {
			max.Y = p.Y
		}
	}
	return min, max
}

// Vec3 is a point in R³, used for the type-lifted point clouds of the ICP
// alignment stage.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v - u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product ⟨v, u⟩.
func (v Vec3) Dot(u Vec3) float64 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Norm returns the Euclidean length ‖v‖₂.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist2 returns the squared Euclidean distance ‖v−u‖₂².
func (v Vec3) Dist2(u Vec3) float64 { return v.Sub(u).Norm2() }

// XY projects the lifted point back to the plane.
func (v Vec3) XY() Vec2 { return Vec2{v.X, v.Y} }
