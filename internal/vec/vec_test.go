package vec

import (
	"math"
	"math/rand/v2"
	"testing"
)

const eps = 1e-12

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

func vecApprox(a, b Vec2, tol float64) bool {
	return approx(a.X, b.X, tol) && approx(a.Y, b.Y, tol)
}

// smallVec generates bounded random vectors for property tests (quick's
// default generator produces astronomically large floats that defeat
// floating-point tolerance reasoning).
func smallVec(r *rand.Rand) Vec2 {
	return Vec2{r.Float64()*20 - 10, r.Float64()*20 - 10}
}

func TestAddSubInverse(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 500; i++ {
		a, b := smallVec(r), smallVec(r)
		if got := a.Add(b).Sub(b); !vecApprox(got, a, eps) {
			t.Fatalf("(%v+%v)-%v = %v, want %v", a, b, b, got, a)
		}
	}
}

func TestScaleDistributesOverAdd(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 500; i++ {
		a, b := smallVec(r), smallVec(r)
		s := r.Float64()*4 - 2
		lhs := a.Add(b).Scale(s)
		rhs := a.Scale(s).Add(b.Scale(s))
		if !vecApprox(lhs, rhs, 1e-10) {
			t.Fatalf("s(a+b)=%v != sa+sb=%v", lhs, rhs)
		}
	}
}

func TestDotSymmetric(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 500; i++ {
		a, b := smallVec(r), smallVec(r)
		if !approx(a.Dot(b), b.Dot(a), eps) {
			t.Fatalf("dot not symmetric: %v vs %v", a.Dot(b), b.Dot(a))
		}
	}
}

func TestCrossAntisymmetric(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 500; i++ {
		a, b := smallVec(r), smallVec(r)
		if !approx(a.Cross(b), -b.Cross(a), eps) {
			t.Fatalf("cross not antisymmetric")
		}
	}
}

func TestNormMatchesDot(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	for i := 0; i < 500; i++ {
		a := smallVec(r)
		if !approx(a.Norm2(), a.Dot(a), eps) {
			t.Fatalf("Norm2 != Dot self")
		}
		if !approx(a.Norm()*a.Norm(), a.Norm2(), 1e-10) {
			t.Fatalf("Norm^2 != Norm2")
		}
	}
}

func TestRotatePreservesNorm(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 500; i++ {
		a := smallVec(r)
		theta := r.Float64() * 2 * math.Pi
		if !approx(a.Rotate(theta).Norm(), a.Norm(), 1e-10) {
			t.Fatalf("rotation changed norm")
		}
	}
}

func TestRotatePreservesInnerProduct(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 14))
	for i := 0; i < 500; i++ {
		a, b := smallVec(r), smallVec(r)
		theta := r.Float64() * 2 * math.Pi
		lhs := a.Rotate(theta).Dot(b.Rotate(theta))
		if !approx(lhs, a.Dot(b), 1e-9) {
			t.Fatalf("rotation changed inner product: %v vs %v", lhs, a.Dot(b))
		}
	}
}

func TestRotateComposes(t *testing.T) {
	r := rand.New(rand.NewPCG(15, 16))
	for i := 0; i < 500; i++ {
		a := smallVec(r)
		t1 := r.Float64() * math.Pi
		t2 := r.Float64() * math.Pi
		if !vecApprox(a.Rotate(t1).Rotate(t2), a.Rotate(t1+t2), 1e-9) {
			t.Fatalf("rotations do not compose")
		}
	}
}

func TestRotateQuarterTurn(t *testing.T) {
	got := Vec2{1, 0}.Rotate(math.Pi / 2)
	if !vecApprox(got, Vec2{0, 1}, 1e-12) {
		t.Fatalf("quarter turn of e_x = %v, want (0,1)", got)
	}
}

func TestNormalize(t *testing.T) {
	if got := (Vec2{3, 4}).Normalize(); !vecApprox(got, Vec2{0.6, 0.8}, eps) {
		t.Fatalf("Normalize(3,4) = %v", got)
	}
	if got := (Vec2{}).Normalize(); got != (Vec2{}) {
		t.Fatalf("Normalize(0) = %v, want zero vector", got)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := Vec2{1, 2}, Vec2{-3, 5}
	if got := a.Lerp(b, 0); got != a {
		t.Fatalf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !vecApprox(got, b, eps) {
		t.Fatalf("Lerp(1) = %v", got)
	}
	mid := a.Lerp(b, 0.5)
	if !vecApprox(mid, Vec2{-1, 3.5}, eps) {
		t.Fatalf("Lerp(0.5) = %v", mid)
	}
}

func TestAngle(t *testing.T) {
	cases := []struct {
		v    Vec2
		want float64
	}{
		{Vec2{1, 0}, 0},
		{Vec2{0, 1}, math.Pi / 2},
		{Vec2{-1, 0}, math.Pi},
		{Vec2{0, -1}, -math.Pi / 2},
	}
	for _, c := range cases {
		if got := c.v.Angle(); !approx(got, c.want, 1e-12) && !(c.want == math.Pi && approx(math.Abs(got), math.Pi, 1e-12)) {
			t.Errorf("Angle(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vec2{1, 2}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vec2{math.NaN(), 0}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vec2{0, math.Inf(1)}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestCentroidAndCenter(t *testing.T) {
	pts := []Vec2{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	c := Centroid(pts)
	if !vecApprox(c, Vec2{1, 1}, eps) {
		t.Fatalf("centroid = %v, want (1,1)", c)
	}
	removed := Center(pts)
	if !vecApprox(removed, Vec2{1, 1}, eps) {
		t.Fatalf("Center returned %v", removed)
	}
	if got := Centroid(pts); !vecApprox(got, Vec2{}, eps) {
		t.Fatalf("centroid after centering = %v", got)
	}
}

func TestCentroidEmpty(t *testing.T) {
	if got := Centroid(nil); got != (Vec2{}) {
		t.Fatalf("Centroid(nil) = %v", got)
	}
}

func TestCenterIsIdempotent(t *testing.T) {
	r := rand.New(rand.NewPCG(17, 18))
	pts := make([]Vec2, 20)
	for i := range pts {
		pts[i] = smallVec(r)
	}
	Center(pts)
	second := Center(pts)
	if second.Norm() > 1e-10 {
		t.Fatalf("second centering removed %v, want ~0", second)
	}
}

func TestRadius(t *testing.T) {
	pts := []Vec2{{0, 0}, {3, 4}, {1, 1}}
	if got := Radius(pts); !approx(got, 5, eps) {
		t.Fatalf("Radius = %v, want 5", got)
	}
	if got := Radius(nil); got != 0 {
		t.Fatalf("Radius(nil) = %v", got)
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Vec2{{1, 5}, {-2, 3}, {4, -1}}
	min, max := BoundingBox(pts)
	if min != (Vec2{-2, -1}) || max != (Vec2{4, 5}) {
		t.Fatalf("bbox = %v %v", min, max)
	}
}

func TestVec3Basics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, -3, -3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale = %v", got)
	}
	if !approx(a.Norm(), math.Sqrt(14), eps) {
		t.Fatalf("Norm = %v", a.Norm())
	}
	if got := a.XY(); got != (Vec2{1, 2}) {
		t.Fatalf("XY = %v", got)
	}
	if got := a.Dist2(b); got != 27 {
		t.Fatalf("Dist2 = %v", got)
	}
}

func TestTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewPCG(19, 20))
	for i := 0; i < 500; i++ {
		a, b, c := smallVec(r), smallVec(r), smallVec(r)
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-12 {
			t.Fatalf("triangle inequality violated")
		}
	}
}
