package forces

import (
	"fmt"
)

// Spec is a serialisable description of a force-scaling function, used by
// the ensemble persistence layer (interactions are part of an experiment's
// identity and must round-trip through disk).
type Spec struct {
	// Family is "F1" or "F2".
	Family string `json:"family"`
	// K is the strength matrix (all families).
	K [][]float64 `json:"k"`
	// R is the preferred-distance matrix (F1 only).
	R [][]float64 `json:"r,omitempty"`
	// Sigma and Tau are the Gaussian width matrices (F2 only).
	Sigma [][]float64 `json:"sigma,omitempty"`
	Tau   [][]float64 `json:"tau,omitempty"`
}

// ToSpec captures a Scaling into its serialisable form. Only the two
// built-in families are supported; custom Scaling implementations must
// provide their own persistence.
func ToSpec(s Scaling) (Spec, error) {
	switch f := s.(type) {
	case *F1:
		return Spec{Family: "F1", K: f.K.Rows(), R: f.R.Rows()}, nil
	case *F2:
		return Spec{Family: "F2", K: f.K.Rows(), Sigma: f.Sigma.Rows(), Tau: f.Tau.Rows()}, nil
	default:
		return Spec{}, fmt.Errorf("forces: cannot serialise force family %q", s.Name())
	}
}

// Build reconstructs the Scaling described by the spec.
func (sp Spec) Build() (Scaling, error) {
	switch sp.Family {
	case "F1":
		k, err := MatrixFromRows(sp.K)
		if err != nil {
			return nil, fmt.Errorf("forces: spec K: %w", err)
		}
		r, err := MatrixFromRows(sp.R)
		if err != nil {
			return nil, fmt.Errorf("forces: spec R: %w", err)
		}
		return NewF1(k, r)
	case "F2":
		k, err := MatrixFromRows(sp.K)
		if err != nil {
			return nil, fmt.Errorf("forces: spec K: %w", err)
		}
		sigma, err := MatrixFromRows(sp.Sigma)
		if err != nil {
			return nil, fmt.Errorf("forces: spec Sigma: %w", err)
		}
		tau, err := MatrixFromRows(sp.Tau)
		if err != nil {
			return nil, fmt.Errorf("forces: spec Tau: %w", err)
		}
		return NewF2(k, sigma, tau)
	default:
		return nil, fmt.Errorf("forces: unknown force family %q", sp.Family)
	}
}
