package forces

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/rngx"
)

func TestMatrixSymmetryByConstruction(t *testing.T) {
	m := NewMatrix(4)
	m.Set(1, 3, 7.5)
	if m.At(3, 1) != 7.5 || m.At(1, 3) != 7.5 {
		t.Fatal("Set did not propagate to the mirrored entry")
	}
	m.Set(2, 2, -1)
	if m.At(2, 2) != -1 {
		t.Fatal("diagonal broken")
	}
}

func TestMatrixIndexing(t *testing.T) {
	l := 5
	m := NewMatrix(l)
	// Fill every upper-triangle slot with a distinct value; all must be
	// stored in distinct locations (no aliasing).
	val := 1.0
	for a := 0; a < l; a++ {
		for b := a; b < l; b++ {
			m.Set(a, b, val)
			val++
		}
	}
	val = 1.0
	for a := 0; a < l; a++ {
		for b := a; b < l; b++ {
			if m.At(a, b) != val {
				t.Fatalf("At(%d,%d) = %v, want %v", a, b, m.At(a, b), val)
			}
			val++
		}
	}
}

func TestMatrixOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) should panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestMatrixFromRowsValidates(t *testing.T) {
	if _, err := MatrixFromRows(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := MatrixFromRows([][]float64{{1, 2}, {2}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	m, err := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	if m.At(0, 1) != 2 || m.At(1, 1) != 4 {
		t.Fatal("values lost")
	}
}

func TestMatrixRowsRoundTrip(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {2, 5, 6}, {3, 6, 9}}
	m := MustMatrix(rows)
	got := m.Rows()
	for a := range rows {
		for b := range rows[a] {
			if got[a][b] != rows[a][b] {
				t.Fatalf("Rows()[%d][%d] = %v", a, b, got[a][b])
			}
		}
	}
}

func TestConstantMatrix(t *testing.T) {
	m := ConstantMatrix(3, 2.5)
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if m.At(a, b) != 2.5 {
				t.Fatal("ConstantMatrix not constant")
			}
		}
	}
}

func TestRandomMatrixRangeAndSymmetry(t *testing.T) {
	m := RandomMatrix(6, 2, 8, rngx.New(1))
	for a := 0; a < 6; a++ {
		for b := 0; b < 6; b++ {
			x := m.At(a, b)
			if x < 2 || x >= 8 {
				t.Fatalf("entry %v out of [2,8)", x)
			}
			if m.At(b, a) != x {
				t.Fatal("random matrix asymmetric")
			}
		}
	}
}

func TestF1ZeroAtPreferredDistance(t *testing.T) {
	f := MustF1(ConstantMatrix(2, 3), MustMatrix([][]float64{{1.5, 2.5}, {2.5, 4.0}}))
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			r := f.PreferredDistance(a, b)
			if got := f.Eval(a, b, r); math.Abs(got) > 1e-12 {
				t.Errorf("F1(%d,%d,%g) = %v, want 0", a, b, r, got)
			}
			// Repulsive below, attractive above.
			if f.Eval(a, b, r*0.5) >= 0 {
				t.Errorf("F1 below r should be negative (repulsion)")
			}
			if f.Eval(a, b, r*2) <= 0 {
				t.Errorf("F1 above r should be positive (attraction)")
			}
		}
	}
}

func TestF1SaturatesAtK(t *testing.T) {
	f := MustF1(ConstantMatrix(1, 5), ConstantMatrix(1, 2))
	if got := f.Eval(0, 0, 1e9); math.Abs(got-5) > 1e-6 {
		t.Fatalf("F1 at large x = %v, want ≈ k = 5", got)
	}
}

func TestF1EffectiveForceIsLinearSpring(t *testing.T) {
	// |F1(x)·x| = k·|x−r|: the Δz multiplication in Eq. (6)
	// regularises the 1/x singularity.
	k, r := 2.0, 3.0
	f := MustF1(ConstantMatrix(1, k), ConstantMatrix(1, r))
	for _, x := range []float64{0.01, 0.5, 1, 2.9, 3.1, 10} {
		got := math.Abs(f.Eval(0, 0, x) * x)
		want := k * math.Abs(x-r)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("|F1(x)·x| at x=%g: %v, want %v", x, got, want)
		}
	}
}

func TestF1TypeCountMismatch(t *testing.T) {
	if _, err := NewF1(ConstantMatrix(2, 1), ConstantMatrix(3, 1)); err == nil {
		t.Error("mismatched matrices accepted")
	}
}

func TestF2PaperRegimeIsRepulsionOnly(t *testing.T) {
	// σ = 1, τ > 1: F² ≤ 0 everywhere, 0 only at x = 0 in the limit.
	f := MustF2(ConstantMatrix(1, 1), ConstantMatrix(1, 1), ConstantMatrix(1, 5))
	for x := 0.05; x < 20; x += 0.05 {
		if f.Eval(0, 0, x) > 1e-12 {
			t.Fatalf("F2(σ=1,τ=5) positive at x=%g", x)
		}
	}
	if !math.IsNaN(f.PreferredDistance(0, 0)) {
		t.Error("repulsion-only F2 should have NaN preferred distance")
	}
}

func TestF2VanishesAtLargeDistance(t *testing.T) {
	f := MustF2(ConstantMatrix(1, 3), ConstantMatrix(1, 1), ConstantMatrix(1, 8))
	if math.Abs(f.Eval(0, 0, 50)) > 1e-12 {
		t.Error("F2 should vanish at large distance")
	}
}

func TestF2PreferredDistanceCrossingRegime(t *testing.T) {
	// σ > max(τ, 1): the wide weak Gaussian dominates at long range and
	// the function has a real repulsion→attraction crossing.
	f := MustF2(ConstantMatrix(1, 1), ConstantMatrix(1, 4), ConstantMatrix(1, 1))
	r := f.PreferredDistance(0, 0)
	if math.IsNaN(r) || r <= 0 {
		t.Fatalf("expected a crossing, got %v", r)
	}
	if got := f.Eval(0, 0, r); math.Abs(got) > 1e-9 {
		t.Fatalf("F2 at its preferred distance = %v, want 0", got)
	}
	if f.Eval(0, 0, r*0.9) >= 0 || f.Eval(0, 0, r*1.1) <= 0 {
		t.Error("crossing is not repulsion→attraction")
	}
}

func TestF2EqualWidthsNaN(t *testing.T) {
	f := MustF2(ConstantMatrix(1, 1), ConstantMatrix(1, 2), ConstantMatrix(1, 2))
	if !math.IsNaN(f.PreferredDistance(0, 0)) {
		t.Error("σ = τ should give NaN preferred distance")
	}
}

func TestF2RejectsNonPositiveWidths(t *testing.T) {
	if _, err := NewF2(ConstantMatrix(1, 1), ConstantMatrix(1, 0), ConstantMatrix(1, 1)); err == nil {
		t.Error("σ = 0 accepted")
	}
	if _, err := NewF2(ConstantMatrix(1, 1), ConstantMatrix(1, 1), ConstantMatrix(1, -2)); err == nil {
		t.Error("τ < 0 accepted")
	}
}

// Property: both force families are symmetric in the type pair, because the
// parameter matrices are — the precondition for Newton-pair accumulation in
// the simulator.
func TestScalingSymmetricInTypes(t *testing.T) {
	rng := rngx.New(3)
	f1 := RandomF1(5, 1, 10, 0.5, 5, rng)
	f2 := RandomF2(5, 1, 10, 1, 10, rng)
	for _, f := range []Scaling{f1, f2} {
		for a := 0; a < 5; a++ {
			for b := 0; b < 5; b++ {
				for _, x := range []float64{0.3, 1, 2.5, 7} {
					if f.Eval(a, b, x) != f.Eval(b, a, x) {
						t.Fatalf("%s not symmetric at (%d,%d,x=%g)", f.Name(), a, b, x)
					}
				}
			}
		}
	}
}

func TestRandomF2UsesUnitSigma(t *testing.T) {
	f := RandomF2(3, 1, 10, 1, 10, rngx.New(9))
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if f.Sigma.At(a, b) != 1 {
				t.Fatal("RandomF2 must fix σ = 1 (the paper's setting)")
			}
			tau := f.Tau.At(a, b)
			if tau < 1 || tau >= 10 {
				t.Fatalf("τ = %v out of [1,10)", tau)
			}
		}
	}
}

func TestCurve(t *testing.T) {
	f := MustF1(ConstantMatrix(1, 1), ConstantMatrix(1, 2))
	xs := mathx.Linspace(1, 4, 4)
	ys := Curve(f, 0, 0, xs)
	if len(ys) != 4 {
		t.Fatalf("Curve returned %d values", len(ys))
	}
	for i, x := range xs {
		if ys[i] != f.Eval(0, 0, x) {
			t.Fatal("Curve values disagree with Eval")
		}
	}
}

func TestNames(t *testing.T) {
	f1 := MustF1(ConstantMatrix(1, 1), ConstantMatrix(1, 1))
	f2 := MustF2(ConstantMatrix(1, 1), ConstantMatrix(1, 1), ConstantMatrix(1, 2))
	if f1.Name() != "F1" || f2.Name() != "F2" {
		t.Error("Name() values changed; experiment records depend on them")
	}
	if f1.Types() != 1 || f2.Types() != 1 {
		t.Error("Types() wrong")
	}
}
