// Package forces implements the particle interaction laws of the paper:
// the two force-scaling functions F¹ (Eq. 7) and F² (Eq. 8), the symmetric
// per-type-pair parameter matrices (k_αβ, r_αβ, σ_αβ, τ_αβ) that define
// them, and the random interaction generators used by the sweep experiments
// of Figs. 8–10.
//
// A force-scaling function F_αβ(x) maps the distance x between a particle
// of type α and one of type β to a scalar; the equation of motion (Eq. 6)
// applies the velocity contribution −F_αβ(‖Δz‖)·Δz. Positive F therefore
// means attraction and negative F repulsion. The paper only considers
// symmetric parameter matrices (non-symmetric ones lead to unstable or
// cycling dynamics, Sec. 4.1), and Matrix enforces that symmetry
// structurally.
package forces

import (
	"errors"
	"fmt"

	"repro/internal/rngx"
)

// Matrix is a symmetric l×l matrix of per-type-pair parameters. Only the
// upper triangle (including the diagonal) is stored; At(a,b) and At(b,a)
// always agree by construction, which realises the paper's restriction to
// symmetric interactions.
type Matrix struct {
	l int
	v []float64 // upper triangle, row-major: (a,b) with a <= b
}

// NewMatrix returns the zero symmetric l×l matrix. l must be positive.
func NewMatrix(l int) Matrix {
	if l <= 0 {
		panic("forces: matrix size must be positive")
	}
	return Matrix{l: l, v: make([]float64, l*(l+1)/2)}
}

// ConstantMatrix returns the symmetric l×l matrix with every entry c.
func ConstantMatrix(l int, c float64) Matrix {
	m := NewMatrix(l)
	for i := range m.v {
		m.v[i] = c
	}
	return m
}

// MatrixFromRows builds a Matrix from a full row representation, verifying
// squareness and symmetry. It is the entry point for the literature
// parameter sets (e.g. the r_αβ matrix of Fig. 4).
func MatrixFromRows(rows [][]float64) (Matrix, error) {
	l := len(rows)
	if l == 0 {
		return Matrix{}, errors.New("forces: empty matrix")
	}
	m := NewMatrix(l)
	for a, row := range rows {
		if len(row) != l {
			return Matrix{}, fmt.Errorf("forces: row %d has %d entries, want %d", a, len(row), l)
		}
		for b, x := range row {
			if b < a {
				if rows[b][a] != x {
					return Matrix{}, fmt.Errorf("forces: matrix not symmetric at (%d,%d): %g vs %g", a, b, x, rows[b][a])
				}
				continue
			}
			m.Set(a, b, x)
		}
	}
	return m, nil
}

// MustMatrix is MatrixFromRows that panics on error; intended for package
// literals in experiment definitions and tests.
func MustMatrix(rows [][]float64) Matrix {
	m, err := MatrixFromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

func (m Matrix) idx(a, b int) int {
	if a < 0 || b < 0 || a >= m.l || b >= m.l {
		panic(fmt.Sprintf("forces: index (%d,%d) out of range for %d types", a, b, m.l))
	}
	if a > b {
		a, b = b, a
	}
	// Row a starts after a*(l) - a*(a-1)/2 ... derive: rows 0..a-1 contribute
	// (l) + (l-1) + ... + (l-a+1) = a*l - a*(a-1)/2 entries.
	return a*m.l - a*(a-1)/2 + (b - a)
}

// At returns the (a,b) entry; At(a,b) == At(b,a).
func (m Matrix) At(a, b int) float64 { return m.v[m.idx(a, b)] }

// Set assigns the (a,b) and, implicitly, the (b,a) entry.
func (m *Matrix) Set(a, b int, x float64) { m.v[m.idx(a, b)] = x }

// Len returns the number of types l.
func (m Matrix) Len() int { return m.l }

// Rows expands the matrix into a full row representation (for printing and
// serialisation).
func (m Matrix) Rows() [][]float64 {
	rows := make([][]float64, m.l)
	for a := range rows {
		rows[a] = make([]float64, m.l)
		for b := range rows[a] {
			rows[a][b] = m.At(a, b)
		}
	}
	return rows
}

// RandomMatrix returns a symmetric l×l matrix with entries drawn uniformly
// from [lo, hi). This is the generator behind the paper's "randomly
// generated type matrices" (Figs. 8–10).
func RandomMatrix(l int, lo, hi float64, rng rngx.Source) Matrix {
	m := NewMatrix(l)
	for a := 0; a < l; a++ {
		for b := a; b < l; b++ {
			m.Set(a, b, rng.UniformIn(lo, hi))
		}
	}
	return m
}
