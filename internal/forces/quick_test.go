package forces

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rngx"
)

// quickMatrix draws a bounded random symmetric matrix from testing/quick's
// rand source.
func quickMatrix(r *rand.Rand, l int, lo, hi float64) Matrix {
	m := NewMatrix(l)
	for a := 0; a < l; a++ {
		for b := a; b < l; b++ {
			m.Set(a, b, lo+r.Float64()*(hi-lo))
		}
	}
	return m
}

// Property: At is symmetric for every index pair of every randomly drawn
// matrix.
func TestQuickMatrixSymmetry(t *testing.T) {
	f := func(seed int64, lRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		l := 1 + int(lRaw%8)
		m := quickMatrix(r, l, -5, 5)
		for a := 0; a < l; a++ {
			for b := 0; b < l; b++ {
				if m.At(a, b) != m.At(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Rows round-trips through MatrixFromRows for random matrices.
func TestQuickMatrixRowsRoundTrip(t *testing.T) {
	f := func(seed int64, lRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		l := 1 + int(lRaw%6)
		m := quickMatrix(r, l, -3, 3)
		back, err := MatrixFromRows(m.Rows())
		if err != nil {
			return false
		}
		for a := 0; a < l; a++ {
			for b := 0; b < l; b++ {
				if back.At(a, b) != m.At(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: F¹ changes sign exactly at its preferred distance, for random
// parameters.
func TestQuickF1SignStructure(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 0.5 + r.Float64()*9
		rr := 0.2 + r.Float64()*5
		fc := MustF1(ConstantMatrix(1, k), ConstantMatrix(1, rr))
		below := fc.Eval(0, 0, rr*(0.2+0.7*r.Float64()))
		above := fc.Eval(0, 0, rr*(1.1+3*r.Float64()))
		at := fc.Eval(0, 0, rr)
		return below < 0 && above > 0 && math.Abs(at) < 1e-9*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the paper-regime F² (σ = 1, τ ≥ 1) is non-positive everywhere
// and decays to zero, for random τ and k.
func TestQuickF2PaperRegimeNonPositive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 0.5 + r.Float64()*9
		tau := 1 + r.Float64()*9
		fc := MustF2(ConstantMatrix(1, k), ConstantMatrix(1, 1), ConstantMatrix(1, tau))
		for i := 0; i < 40; i++ {
			x := 0.05 + r.Float64()*15
			if fc.Eval(0, 0, x) > 1e-12 {
				return false
			}
		}
		return math.Abs(fc.Eval(0, 0, 60)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Eval is symmetric in (α, β) for every random interaction of
// both families — the precondition for Newton-pair force accumulation.
func TestQuickScalingTypeSymmetry(t *testing.T) {
	f := func(seed uint64, lRaw uint8) bool {
		l := 1 + int(lRaw%6)
		rng := rngx.New(seed)
		f1 := RandomF1(l, 1, 10, 0.5, 5, rng)
		f2 := RandomF2(l, 1, 10, 1, 10, rng)
		probe := rngx.New(seed ^ 0xBEEF)
		for i := 0; i < 30; i++ {
			a := probe.IntN(l)
			b := probe.IntN(l)
			x := 0.1 + probe.Float64()*10
			if f1.Eval(a, b, x) != f1.Eval(b, a, x) {
				return false
			}
			if f2.Eval(a, b, x) != f2.Eval(b, a, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
