package forces

import (
	"fmt"
	"math"

	"repro/internal/rngx"
)

// Scaling is a force-scaling function F_αβ(x) in the sense of Eq. (6):
// given the types α, β of two interacting particles and their distance
// x = ‖Δz‖₂ > 0, Eval returns the scalar F whose contribution to particle
// i's velocity is −F·Δz_ij. Positive values attract, negative values repel.
type Scaling interface {
	// Eval returns F_αβ(x) for distance x > 0.
	Eval(alpha, beta int, x float64) float64
	// Types returns the number of particle types l the function is
	// parameterised for.
	Types() int
	// PreferredDistance returns the equilibrium distance of an isolated
	// α–β pair: the smallest x > 0 with F_αβ(x) = 0 and F crossing from
	// negative (repulsion) to positive (attraction). It returns NaN when
	// no such crossing exists (e.g. F² with σ = 1 is repulsion-only).
	PreferredDistance(alpha, beta int) float64
	// Name identifies the function family ("F1" or "F2") in experiment
	// records.
	Name() string
}

// F1 is the first force-scaling function of the paper, Eq. (7):
//
//	F¹_αβ(x) = k_αβ · (1 − r_αβ/x)
//
// It diverges to −∞ as x→0 (hard repulsion) and saturates at k_αβ for
// large x (long-range attraction, cut off only by the interaction radius
// rc). The preferred pair distance is exactly r_αβ. Note that the velocity
// contribution −F¹·Δz has magnitude k_αβ·|x − r_αβ|: Eq. (6)'s
// multiplication by the un-normalised Δz regularises the 1/x singularity,
// so the dynamics are a linear spring toward r_αβ.
type F1 struct {
	K Matrix // interaction strengths k_αβ ∈ [1, 10] in the paper
	R Matrix // preferred distances r_αβ
}

// NewF1 validates the parameter matrices and returns the scaling function.
func NewF1(k, r Matrix) (*F1, error) {
	if k.Len() != r.Len() {
		return nil, fmt.Errorf("forces: K has %d types but R has %d", k.Len(), r.Len())
	}
	return &F1{K: k, R: r}, nil
}

// MustF1 is NewF1 that panics on error.
func MustF1(k, r Matrix) *F1 {
	f, err := NewF1(k, r)
	if err != nil {
		panic(err)
	}
	return f
}

// Eval implements Scaling.
func (f *F1) Eval(alpha, beta int, x float64) float64 {
	return f.K.At(alpha, beta) * (1 - f.R.At(alpha, beta)/x)
}

// Types implements Scaling.
func (f *F1) Types() int { return f.K.Len() }

// PreferredDistance implements Scaling; for F¹ it is r_αβ directly.
func (f *F1) PreferredDistance(alpha, beta int) float64 { return f.R.At(alpha, beta) }

// Name implements Scaling.
func (f *F1) Name() string { return "F1" }

// F2 is the second force-scaling function of the paper, Eq. (8):
//
//	F²_αβ(x) = k_αβ · ( (1/σ²_αβ)·e^{−x²/(2σ_αβ)} − e^{−x²/(2τ_αβ)} )
//
// a difference of Gaussians. The paper fixes σ_αβ = 1 and draws
// τ_αβ ∈ [1, 10]; in that regime the function is ≤ 0 everywhere (pure
// finite-range repulsion, strongest at intermediate distance), which is
// what produces the regular-grid disc equilibria of Fig. 3 and the weaker
// attraction noted in Sec. 4.1. In the opposite regime σ > max(τ, 1) the
// short-range term is the weak-but-wide one (amplitude 1/σ² < 1, width σ)
// and the function acquires a genuine preferred distance: repulsion below
// the crossing, attraction above; the constructor supports both regimes.
type F2 struct {
	K     Matrix // interaction strengths
	Sigma Matrix // short-range Gaussian width parameters σ_αβ (paper: 1)
	Tau   Matrix // long-range Gaussian width parameters τ_αβ ∈ [1, 10]
}

// NewF2 validates the parameter matrices and returns the scaling function.
// All σ and τ entries must be positive.
func NewF2(k, sigma, tau Matrix) (*F2, error) {
	if k.Len() != sigma.Len() || k.Len() != tau.Len() {
		return nil, fmt.Errorf("forces: mismatched type counts K=%d Sigma=%d Tau=%d",
			k.Len(), sigma.Len(), tau.Len())
	}
	for a := 0; a < k.Len(); a++ {
		for b := a; b < k.Len(); b++ {
			if sigma.At(a, b) <= 0 || tau.At(a, b) <= 0 {
				return nil, fmt.Errorf("forces: non-positive width at (%d,%d)", a, b)
			}
		}
	}
	return &F2{K: k, Sigma: sigma, Tau: tau}, nil
}

// MustF2 is NewF2 that panics on error.
func MustF2(k, sigma, tau Matrix) *F2 {
	f, err := NewF2(k, sigma, tau)
	if err != nil {
		panic(err)
	}
	return f
}

// Eval implements Scaling.
func (f *F2) Eval(alpha, beta int, x float64) float64 {
	s := f.Sigma.At(alpha, beta)
	t := f.Tau.At(alpha, beta)
	x2 := x * x
	return f.K.At(alpha, beta) * (math.Exp(-x2/(2*s))/(s*s) - math.Exp(-x2/(2*t)))
}

// Types implements Scaling.
func (f *F2) Types() int { return f.K.Len() }

// PreferredDistance implements Scaling. For F² the zero crossing exists in
// closed form: (1/σ²)e^{−x²/(2σ)} = e^{−x²/(2τ)} gives
//
//	x² = 2·ln(σ²) / (1/τ − 1/σ)   (requires a sign-consistent solution)
//
// When σ = τ or the right-hand side is non-positive, the crossing does not
// exist and NaN is returned (repulsion-only or attraction-only pair).
func (f *F2) PreferredDistance(alpha, beta int) float64 {
	s := f.Sigma.At(alpha, beta)
	t := f.Tau.At(alpha, beta)
	if s == t {
		return math.NaN()
	}
	x2 := 2 * math.Log(s*s) / (1/t - 1/s)
	if x2 <= 0 {
		return math.NaN()
	}
	x := math.Sqrt(x2)
	// A valid preferred distance must be a repulsion→attraction crossing:
	// F < 0 just below, F > 0 just above.
	if f.Eval(alpha, beta, x*0.99) < 0 && f.Eval(alpha, beta, x*1.01) > 0 {
		return x
	}
	return math.NaN()
}

// Name implements Scaling.
func (f *F2) Name() string { return "F2" }

// RandomF1 draws a random symmetric F¹ interaction: k_αβ uniform in
// [kLo, kHi), r_αβ uniform in [rLo, rHi). This is the generator behind the
// Fig. 9/10 experiments (r_αβ ∈ [2, 8], k_αβ = 1 is obtained with
// kLo = kHi-ε or the Constant helpers).
func RandomF1(l int, kLo, kHi, rLo, rHi float64, rng rngx.Source) *F1 {
	return MustF1(RandomMatrix(l, kLo, kHi, rng), RandomMatrix(l, rLo, rHi, rng))
}

// RandomF2 draws a random symmetric F² interaction with σ_αβ = 1 (the
// paper's setting) and k, τ uniform in the given ranges. The paper's Fig. 8
// describes its random F² types by "mutual preferred distance radii r_αβ
// between 1.0 and 5.0", but Eq. (8) with σ = 1 contains no r_αβ; we follow
// the stated parameter ranges (τ_αβ ∈ [1, 10]) instead, which spans the
// same one-parameter family of interaction shapes (see DESIGN.md,
// "Substitutions").
func RandomF2(l int, kLo, kHi, tauLo, tauHi float64, rng rngx.Source) *F2 {
	return MustF2(
		RandomMatrix(l, kLo, kHi, rng),
		ConstantMatrix(l, 1),
		RandomMatrix(l, tauLo, tauHi, rng),
	)
}

// Curve samples F_αβ on the given distances; used to regenerate Fig. 2 and
// by the force-shape tests.
func Curve(f Scaling, alpha, beta int, xs []float64) []float64 {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = f.Eval(alpha, beta, x)
	}
	return ys
}
