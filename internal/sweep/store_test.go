package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiment"
	"repro/internal/workpool"
)

// mapStore is an in-memory inner store that counts loads per key, so
// tests can see exactly which lookups fell through a fronting cache.
type mapStore struct {
	mu    sync.Mutex
	m     map[storeKey]*experiment.Result
	loads map[storeKey]int
}

func newMapStore() *mapStore {
	return &mapStore{m: make(map[storeKey]*experiment.Result), loads: make(map[storeKey]int)}
}

func (s *mapStore) Load(id string, fp uint64) (*experiment.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := storeKey{id, fp}
	s.loads[k]++
	res, ok := s.m[k]
	if !ok {
		return nil, false
	}
	return copyResult(res), true
}

func (s *mapStore) Save(id string, fp uint64, res *experiment.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[storeKey{id, fp}] = copyResult(res)
	return nil
}

func (s *mapStore) loadCount(id string, fp uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loads[storeKey{id, fp}]
}

// countingStore wraps any ResultStore and counts the calls that reach
// it — the "did the cache hit avoid the disk read" instrument.
type countingStore struct {
	inner ResultStore
	mu    sync.Mutex
	loads int
	saves int
}

func (s *countingStore) Load(id string, fp uint64) (*experiment.Result, bool) {
	s.mu.Lock()
	s.loads++
	s.mu.Unlock()
	return s.inner.Load(id, fp)
}

func (s *countingStore) Save(id string, fp uint64, res *experiment.Result) error {
	s.mu.Lock()
	s.saves++
	s.mu.Unlock()
	return s.inner.Save(id, fp, res)
}

func (s *countingStore) loadCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loads
}

// fakeResult builds a result whose resultBytes is exactly
// 128 + 8*miLen, so eviction arithmetic in the tests is explicit.
func fakeResult(miLen int) *experiment.Result {
	mi := make([]float64, miLen)
	for i := range mi {
		mi[i] = float64(i) + 0.5
	}
	return &experiment.Result{MI: mi}
}

// TestDirStoreCompatibleWithLegacyDir pins that Runner.Dir (the
// pre-store checkpoint layout) and an explicit DirStore address the same
// files in both directions: existing checkpoint directories remain
// valid, and new DirStore writes resume old-style runs.
func TestDirStoreCompatibleWithLegacyDir(t *testing.T) {
	specs := experiment.Fig8Specs(tinyScale(), 1, 31)
	dir := t.TempDir()
	legacy := &Runner{Concurrency: 1, Dir: dir}
	want, err := legacy.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	resumed := 0
	viaStore := &Runner{
		Concurrency: 1,
		Store:       DirStore{Dir: dir},
		OnRunDone: func(_ int, _ experiment.SweepSpec, _ *experiment.Result, fromCheckpoint bool) {
			if fromCheckpoint {
				resumed++
			}
		},
	}
	got, err := viaStore.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != len(specs) {
		t.Fatalf("DirStore resumed %d of %d legacy Dir checkpoints", resumed, len(specs))
	}
	sameResults(t, "legacy-dir via DirStore", want, got)
}

// TestCacheStoreLRUEvictionOrder: the least-recently-USED entry goes
// first — a Load refreshes recency, so insertion order alone must not
// decide eviction.
func TestCacheStoreLRUEvictionOrder(t *testing.T) {
	inner := newMapStore()
	// Three entries of 256 accounted bytes fit; a fourth evicts.
	c := NewCacheStore(inner, 3*(128+8*16))
	for _, id := range []string{"a", "b", "c"} {
		if err := c.Save(id, 1, fakeResult(16)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Load("a", 1); !ok { // refresh "a": "b" is now LRU
		t.Fatal("warm load of a missed")
	}
	if err := c.Save("d", 1, fakeResult(16)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", c.Len())
	}
	// The refreshed "a" and the newer "c"/"d" are still cached (probed
	// first: a miss would repopulate and shuffle the LRU under us)...
	for _, id := range []string{"a", "c", "d"} {
		before := inner.loadCount(id, 1)
		if _, ok := c.Load(id, 1); !ok {
			t.Fatalf("%s lost", id)
		}
		if inner.loadCount(id, 1) != before {
			t.Fatalf("%s fell through to inner; expected a cache hit", id)
		}
	}
	// ...and "b" — least recently used at eviction time — is the one
	// that falls through to the inner store.
	before := inner.loadCount("b", 1)
	if _, ok := c.Load("b", 1); !ok {
		t.Fatal("b lost entirely")
	}
	if inner.loadCount("b", 1) != before+1 {
		t.Fatal("b was served from cache; expected it evicted as LRU")
	}
}

// TestCacheStoreByteBoundRespected: the accounted payload never exceeds
// the configured bound, whatever the insert pattern.
func TestCacheStoreByteBoundRespected(t *testing.T) {
	inner := newMapStore()
	const max = 2048
	c := NewCacheStore(inner, max)
	for i := 0; i < 64; i++ {
		if err := c.Save(fmt.Sprintf("run-%d", i), uint64(i), fakeResult(8+i)); err != nil {
			t.Fatal(err)
		}
		if c.Bytes() > max {
			t.Fatalf("after insert %d: %d cached bytes exceeds bound %d", i, c.Bytes(), max)
		}
	}
	if c.Len() == 0 {
		t.Fatal("bound respected but nothing cached")
	}
}

// TestCacheStoreOversizedEntryPassesThrough: an entry bigger than the
// whole cache is stored durably but never cached.
func TestCacheStoreOversizedEntryPassesThrough(t *testing.T) {
	inner := newMapStore()
	c := NewCacheStore(inner, 256)
	if err := c.Save("huge", 1, fakeResult(1024)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("oversized entry cached (%d entries, %d bytes)", c.Len(), c.Bytes())
	}
	if _, ok := c.Load("huge", 1); !ok {
		t.Fatal("oversized entry not readable through the cache")
	}
	if inner.loadCount("huge", 1) != 1 {
		t.Fatal("oversized load did not reach the inner store")
	}
}

// TestCacheStoreHitAvoidsDiskRead is the satellite's headline: a warm
// cache serves repeat loads without touching the directory store at all.
func TestCacheStoreHitAvoidsDiskRead(t *testing.T) {
	disk := &countingStore{inner: DirStore{Dir: t.TempDir()}}
	c := NewCacheStore(disk, 1<<20)
	if err := c.Save("run", 7, fakeResult(32)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok := c.Load("run", 7); !ok {
			t.Fatal("warm load missed")
		}
	}
	if n := disk.loadCount(); n != 0 {
		t.Fatalf("%d loads reached disk; the save should have warmed the cache", n)
	}
	// A cold cache over the same directory reads disk exactly once.
	cold := NewCacheStore(disk, 1<<20)
	for i := 0; i < 5; i++ {
		if _, ok := cold.Load("run", 7); !ok {
			t.Fatal("cold load missed")
		}
	}
	if n := disk.loadCount(); n != 1 {
		t.Fatalf("%d loads reached disk, want exactly 1 (first miss only)", n)
	}
}

// TestCacheStoreLoadsArePrivateCopies: mutating a loaded result must not
// corrupt later loads — the gob-decode isolation contract, kept by the
// in-memory fast path.
func TestCacheStoreLoadsArePrivateCopies(t *testing.T) {
	c := NewCacheStore(newMapStore(), 1<<20)
	if err := c.Save("run", 1, fakeResult(4)); err != nil {
		t.Fatal(err)
	}
	first, _ := c.Load("run", 1)
	first.MI[0] = math.Inf(1)
	second, _ := c.Load("run", 1)
	if math.IsInf(second.MI[0], 1) {
		t.Fatal("cache returned a shared slice; loads must be private copies")
	}
}

// TestCacheFrontedSweepBitIdentical: fronting the checkpoint store with
// a cache must be invisible in the results — fresh compute, warm resume
// and cold resume all bit-identical to the bare store.
func TestCacheFrontedSweepBitIdentical(t *testing.T) {
	specs := experiment.Fig8Specs(tinyScale(), 2, 17)
	bare := &Runner{Concurrency: 2, Tokens: workpool.NewTokens(2), Dir: t.TempDir()}
	want, err := bare.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	disk := &countingStore{inner: DirStore{Dir: t.TempDir()}}
	cache := NewCacheStore(disk, 8<<20)
	fronted := &Runner{Concurrency: 2, Tokens: workpool.NewTokens(2), Store: cache}
	got, err := fronted.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "cache-fronted fresh", want, got)
	// Warm resume: served entirely from memory, still bit-identical.
	loadsBefore := disk.loadCount()
	again, err := fronted.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "cache-fronted resume", want, again)
	if disk.loadCount() != loadsBefore {
		t.Fatal("warm resume read the directory store; cache should have served every run")
	}
}

// TestRunErrorSurvivesConcurrentCancel pins the error-masking fix: a
// run that fails for its own reason while a cancellation is in flight
// must surface that reason (joined with the context's error), while a
// pure cancellation still returns the context's error verbatim.
func TestRunErrorSurvivesConcurrentCancel(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	realErr := errors.New("estimator exploded")

	err := runError(cancelled, "run-1", realErr)
	if !errors.Is(err, realErr) {
		t.Fatalf("real error lost under concurrent cancel: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("context error not joined: %v", err)
	}
	if !strings.Contains(err.Error(), "run-1") {
		t.Fatalf("run ID missing from %v", err)
	}

	if err := runError(cancelled, "run-1", context.Canceled); err != context.Canceled {
		t.Fatalf("pure cancellation = %v, want context.Canceled verbatim", err)
	}
	// A wrapped cancellation (the pipeline annotated ctx.Err) is still a
	// pure cancellation.
	if err := runError(cancelled, "run-1", fmt.Errorf("stage: %w", context.Canceled)); err != context.Canceled {
		t.Fatalf("wrapped cancellation = %v, want context.Canceled verbatim", err)
	}

	live := context.Background()
	err = runError(live, "run-2", realErr)
	if !errors.Is(err, realErr) || errors.Is(err, context.Canceled) {
		t.Fatalf("uncancelled failure = %v", err)
	}
}

// BenchmarkSweepCacheStoreResume measures the repeat-load path the cache
// exists for: resuming a fully checkpointed sweep through a bare
// DirStore (gob decode per run, every time) vs through a warm
// CacheStore (in-memory copies, no disk).
func BenchmarkSweepCacheStoreResume(b *testing.B) {
	specs := experiment.Fig8Specs(tinyScale(), 2, 1234)
	dir := b.TempDir()
	seed := &Runner{Dir: dir}
	if _, err := seed.Sweep(context.Background(), specs); err != nil {
		b.Fatal(err)
	}
	b.Run("dirstore", func(b *testing.B) {
		r := &Runner{Store: DirStore{Dir: dir}}
		for i := 0; i < b.N; i++ {
			if _, err := r.Sweep(context.Background(), specs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cachestore", func(b *testing.B) {
		r := &Runner{Store: NewCacheStore(DirStore{Dir: dir}, 8<<20)}
		if _, err := r.Sweep(context.Background(), specs); err != nil {
			b.Fatal(err) // warm the cache outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Sweep(context.Background(), specs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
