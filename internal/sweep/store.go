package sweep

import (
	"container/list"
	"sync"

	"repro/internal/experiment"
	"repro/internal/infotheory"
)

// ResultStore persists completed sweep runs keyed by (ID, fingerprint) —
// the one seam every execution mode shares. The Runner resolves each run
// against a store before computing it; distributed workers write their
// runs through the same store (a directory shared between processes), so
// re-handing a run to any worker — or re-handing it after a crash — is
// idempotent by construction. Implementations must be safe for concurrent
// use by multiple goroutines; cross-process safety comes from the
// temp-file+rename discipline of the directory store.
//
// Load returns ok=false on any miss — a missing, stale, corrupt or
// foreign entry is never an error, it is simply not a checkpoint for
// this (id, fp). Save receives an already-trimmed result (curve-level
// fields only) and owns making the write atomic.
type ResultStore interface {
	Load(id string, fp uint64) (*experiment.Result, bool)
	Save(id string, fp uint64, res *experiment.Result) error
}

// DirStore is the directory-backed store: one versioned gob file per run
// (see checkpoint.go for the file format), written with the
// temp-file+rename discipline so a kill mid-write leaves no
// half-checkpoint a resume could trust. It is the historical Runner.Dir
// layout extracted behind the interface — file names and bytes are
// unchanged, so checkpoint directories written by earlier releases stay
// valid.
type DirStore struct {
	// Dir is the checkpoint directory; Save creates it on demand.
	Dir string
}

// Load restores a completed run if a matching file exists.
func (d DirStore) Load(id string, fp uint64) (*experiment.Result, bool) {
	return readRunFile(d.Dir, id, fp)
}

// Save persists a completed (already trimmed) run.
func (d DirStore) Save(id string, fp uint64, res *experiment.Result) error {
	return writeRunFile(d.Dir, id, fp, res)
}

// CacheStore fronts any ResultStore with an in-memory LRU bounded in
// bytes (the EnginePool retained-bytes idiom applied to results): repeat
// loads of the same run — a session regenerating figures over one grid,
// a coordinator resuming the same sweep — are served from memory without
// touching the inner store. Entries are accounted by resultBytes and
// evicted least-recently-used once the bound is exceeded; an entry
// larger than the whole bound is passed through uncached.
//
// The cache holds private deep copies and returns a fresh deep copy per
// Load, so callers can mutate what they get back (exactly as they can
// with gob-decoded results) without corrupting later loads. CacheStore
// is for trimmed results: the Ensemble/Observers pointers sweeps never
// persist are not deep-copied.
type CacheStore struct {
	inner ResultStore
	max   int

	mu      sync.Mutex
	ll      *list.List // most-recent at front; values are *cacheEntry
	entries map[storeKey]*list.Element
	bytes   int
}

type storeKey struct {
	id string
	fp uint64
}

type cacheEntry struct {
	key   storeKey
	res   *experiment.Result
	bytes int
}

// NewCacheStore wraps inner with an LRU cache of at most maxBytes of
// result payload (maxBytes <= 0 disables caching: every call passes
// through).
func NewCacheStore(inner ResultStore, maxBytes int) *CacheStore {
	return &CacheStore{
		inner:   inner,
		max:     maxBytes,
		ll:      list.New(),
		entries: make(map[storeKey]*list.Element),
	}
}

// Load serves from memory when it can, falling back to — and populating
// from — the inner store.
func (c *CacheStore) Load(id string, fp uint64) (*experiment.Result, bool) {
	k := storeKey{id, fp}
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.ll.MoveToFront(el)
		res := copyResult(el.Value.(*cacheEntry).res)
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()
	res, ok := c.inner.Load(id, fp)
	if !ok {
		return nil, false
	}
	c.insert(k, res)
	return res, true
}

// Save writes through to the inner store first — the durable copy is the
// one crash recovery depends on — and caches on success.
func (c *CacheStore) Save(id string, fp uint64, res *experiment.Result) error {
	if err := c.inner.Save(id, fp, res); err != nil {
		return err
	}
	c.insert(storeKey{id, fp}, res)
	return nil
}

// insert stores a private copy of res under k and evicts from the LRU
// tail until the byte bound holds again.
func (c *CacheStore) insert(k storeKey, res *experiment.Result) {
	n := resultBytes(res)
	if n > c.max {
		return // larger than the whole cache: pass through uncached
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		old := el.Value.(*cacheEntry)
		c.bytes += n - old.bytes
		old.res, old.bytes = copyResult(res), n
		c.ll.MoveToFront(el)
	} else {
		c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, res: copyResult(res), bytes: n})
		c.bytes += n
	}
	for c.bytes > c.max {
		el := c.ll.Back()
		ent := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.entries, ent.key)
		c.bytes -= ent.bytes
	}
}

// Len reports the number of cached entries; Bytes the accounted payload.
func (c *CacheStore) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the accounted payload size of the cached entries.
func (c *CacheStore) Bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// resultBytes estimates the retained payload of a trimmed result — the
// slice data plus a fixed per-entry overhead — mirroring the
// EnginePool retained-bytes accounting.
func resultBytes(r *experiment.Result) int {
	b := 128 + len(r.Name)
	b += 8 * (len(r.Times) + len(r.MI) + len(r.MIStdErr) + len(r.Labels))
	for i := range r.Decomp {
		b += 24 + 8*len(r.Decomp[i].Within)
	}
	b += 16 * len(r.Entropies)
	return b
}

// copyResult deep-copies the persisted (curve-level) fields of a result.
// Ensemble and Observers are runtime-only and never survive a store, so
// they are carried as-is (nil on every trimmed result).
func copyResult(r *experiment.Result) *experiment.Result {
	c := *r
	c.Times = append([]int(nil), r.Times...)
	c.MI = append([]float64(nil), r.MI...)
	c.MIStdErr = append([]float64(nil), r.MIStdErr...)
	c.Labels = append([]int(nil), r.Labels...)
	if r.Decomp != nil {
		c.Decomp = make([]infotheory.Decomposition, len(r.Decomp))
		for i, d := range r.Decomp {
			d.Within = append([]float64(nil), d.Within...)
			c.Decomp[i] = d
		}
	}
	c.Entropies = append([]infotheory.EntropyProfile(nil), r.Entropies...)
	return &c
}
