package sweep

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRemoveStaleTemps pins the selection rule: only plain files named
// .tmp-run-* go; checkpoints, foreign files, and directories stay.
func TestRemoveStaleTemps(t *testing.T) {
	dir := t.TempDir()
	keep := []string{
		"grid-0123456789abcdef.run.gob", // a completed checkpoint
		"notes.txt",                     // a foreign file
	}
	stale := []string{".tmp-run-1", ".tmp-run-xyz9"}
	for _, name := range append(append([]string{}, keep...), stale...) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A directory matching the prefix is not a temp file; leave it.
	if err := os.Mkdir(filepath.Join(dir, ".tmp-run-dir"), 0o755); err != nil {
		t.Fatal(err)
	}

	n, err := RemoveStaleTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(stale) {
		t.Errorf("removed %d temps, want %d", n, len(stale))
	}
	for _, name := range stale {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("stale temp %s still present", name)
		}
	}
	for _, name := range append(keep, ".tmp-run-dir") {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("wanted to keep %s: %v", name, err)
		}
	}

	// Missing directory: nothing to do, no error.
	if n, err := RemoveStaleTemps(filepath.Join(dir, "nope")); err != nil || n != 0 {
		t.Errorf("missing dir: got (%d, %v), want (0, nil)", n, err)
	}
}
