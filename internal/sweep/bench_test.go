package sweep

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/experiment"
	"repro/internal/workpool"
)

// BenchmarkSweepRunner measures the wall clock of a Fig. 8-shaped grid
// (8 full pipelines at TestScale) through the serial reference and
// through Runners at growing concurrency, all under a GOMAXPROCS token
// budget. On a single-core box the rows tie — the budget model's win is
// that W cores run ≈W× faster without oversubscription; the CI artifact
// (sweep-bench) tracks that trajectory. Results are bit-identical across
// rows by the sweep equivalence suite.
func BenchmarkSweepRunner(b *testing.B) {
	sc := experiment.TestScale()
	specs := experiment.Fig8Specs(sc, 4, 2012)

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (experiment.SerialSweeper{}).Sweep(context.Background(), specs); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, conc := range []int{2, 4} {
		b.Run(fmt.Sprintf("runner-conc%d", conc), func(b *testing.B) {
			r := &Runner{Concurrency: conc, Tokens: workpool.NewTokens(0)}
			for i := 0; i < b.N; i++ {
				if _, err := r.Sweep(context.Background(), specs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepCheckpointResume measures the resume path: a sweep whose
// runs are all on disk costs only the gob decodes.
func BenchmarkSweepCheckpointResume(b *testing.B) {
	sc := experiment.TestScale()
	specs := experiment.Fig8Specs(sc, 4, 2012)
	r := &Runner{Dir: b.TempDir()}
	if _, err := r.Sweep(context.Background(), specs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Sweep(context.Background(), specs); err != nil {
			b.Fatal(err)
		}
	}
}
