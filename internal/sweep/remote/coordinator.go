package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/experiment"
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/workpool"
)

// SpawnFunc starts worker i against the coordinator at addr with its
// slice of the token budget, returning a wait function that blocks until
// the worker exits. The context is the sweep's: cancelling it must bring
// the worker down.
type SpawnFunc func(ctx context.Context, i int, addr string, budget int) (wait func() error, err error)

// Coordinator shards sweeps across worker processes, implementing
// experiment.Sweeper: drivers hand it the same spec lists they hand a
// Runner and get bit-identical results back — every run is deterministic
// and store-keyed, so which process computes it cannot matter.
//
// Scheduling is pull-based: each connected worker holds at most one spec
// at a time and is handed the next only after answering, so fast workers
// take more of the queue and a slow run cannot convoy others. A worker
// that dies mid-run (lost connection, killed child) has its spec
// requeued to the remaining workers; if it managed to checkpoint through
// the shared store first, the retry loads instead of recomputes.
type Coordinator struct {
	// Procs is the number of workers to spawn (<= 1 means one).
	Procs int
	// Budget is the global token budget divided among workers
	// (<= 0 means GOMAXPROCS), so N children on one box stay within the
	// budget one process would have used.
	Budget int
	// Spawn starts the workers; required. See CommandSpawner and
	// GoSpawner.
	Spawn SpawnFunc
	// Addr is the listen address (a path-shaped string means a unix
	// socket, anything else TCP). Empty picks a unix socket in a fresh
	// temp directory.
	Addr string
	// Store, when non-nil, resolves runs before any worker is consulted
	// — a fully checkpointed sweep completes without spawning — and
	// persists the local fallback runs. Workers reach the same durable
	// store through their own configuration (the shared directory), not
	// through this handle.
	Store sweep.ResultStore
	// OnProgress, when non-nil, receives the merged progress stream:
	// every worker's pipeline events plus one ProgressRunDone per run,
	// emitted by the coordinator as results land. May be invoked
	// concurrently, like Runner.OnProgress.
	OnProgress func(experiment.ProgressEvent)
}

// sweepState is the shared bookkeeping of one Sweep call.
type sweepState struct {
	queue chan int // sweep indices awaiting a worker

	mu          sync.Mutex
	outstanding int
	err         error
	finished    chan struct{} // closed once: success or first failure
	conns       []net.Conn
}

func (s *sweepState) complete() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.outstanding--
	if s.outstanding == 0 && s.err == nil {
		close(s.finished)
	}
}

func (s *sweepState) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
		close(s.finished)
	}
}

// failIfUnfinished aborts the sweep only if runs are still outstanding —
// the all-workers-dead path, where waiting would hang forever.
func (s *sweepState) failIfUnfinished(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.outstanding > 0 && s.err == nil {
		s.err = err
		close(s.finished)
	}
}

func (s *sweepState) addConn(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns = append(s.conns, c)
}

func (s *sweepState) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		c.Close()
	}
}

func (c *Coordinator) emit(ev experiment.ProgressEvent) {
	if c.OnProgress != nil {
		c.OnProgress(ev)
	}
}

func (c *Coordinator) procs() int {
	if c.Procs > 1 {
		return c.Procs
	}
	return 1
}

func (c *Coordinator) budget() int {
	if c.Budget > 0 {
		return c.Budget
	}
	return runtime.GOMAXPROCS(0)
}

// perWorkerBudget divides the global budget across workers, at least one
// token each — the GOMAXPROCS-of-a-child analogue.
func (c *Coordinator) perWorkerBudget() int {
	per := c.budget() / c.procs()
	if per < 1 {
		per = 1
	}
	return per
}

// Sweep distributes the specs across worker processes and returns the
// results in spec order. The contract is Runner.Sweep's: bit-identical
// results, checkpoints of completed runs survive failures, cancellation
// returns the context's error verbatim.
func (c *Coordinator) Sweep(ctx context.Context, specs []experiment.SweepSpec) ([]*experiment.Result, error) {
	if c.Spawn == nil {
		return nil, errors.New("remote: Coordinator requires a Spawn function")
	}
	if err := sweep.CheckUniqueIDs(specs); err != nil {
		return nil, err
	}
	results := make([]*experiment.Result, len(specs))

	// Resolve what the store already has and serialize the rest: remote
	// runs carry their canonical spec JSON; pipelines with no
	// serialisable spec (custom force closures) cannot cross a process
	// boundary and fall back to local execution.
	var pending, local []int
	wireSpecs := make([][]byte, len(specs))
	for i, ss := range specs {
		if c.Store != nil {
			if fp, ok := spec.PipelineFingerprint(ss.ID, ss.Pipeline); ok {
				if res, hit := c.Store.Load(ss.ID, fp); hit {
					results[i] = res
					c.emit(experiment.ProgressEvent{Kind: experiment.ProgressRunDone, Run: ss.ID, Index: i, FromCheckpoint: true})
					continue
				}
			}
		}
		sp, err := spec.FromPipeline(ss.Pipeline)
		if err != nil {
			local = append(local, i)
			continue
		}
		b, err := json.Marshal(sp)
		if err != nil {
			local = append(local, i)
			continue
		}
		wireSpecs[i] = b
		pending = append(pending, i)
	}

	st := &sweepState{
		queue:       make(chan int, len(specs)),
		finished:    make(chan struct{}),
		outstanding: len(pending) + len(local),
	}
	if st.outstanding == 0 {
		return results, nil // fully resolved from the store
	}
	for _, i := range pending {
		st.queue <- i
	}

	var handlers sync.WaitGroup
	acceptDone := make(chan struct{})
	close(acceptDone) // replaced by a live channel when a listener starts
	var ln net.Listener
	if len(pending) > 0 {
		var addr string
		var cleanup func()
		var err error
		ln, addr, cleanup, err = c.listen()
		if err != nil {
			return nil, err
		}
		defer cleanup()
		acceptDone = make(chan struct{})
		go func() {
			// handlers.Add happens only here; teardown waits for this
			// loop to stop before handlers.Wait, so Add can never race
			// a Wait that already saw zero.
			defer close(acceptDone)
			for {
				conn, err := ln.Accept()
				if err != nil {
					return // listener closed: teardown
				}
				st.addConn(conn)
				handlers.Add(1)
				go func() {
					defer handlers.Done()
					c.handle(conn, st, specs, wireSpecs, results)
				}()
			}
		}()

		procs := c.procs()
		per := c.perWorkerBudget()
		var dead sync.WaitGroup
		for i := 0; i < procs; i++ {
			wait, err := c.Spawn(ctx, i, addr, per)
			if err != nil {
				st.fail(fmt.Errorf("remote: spawning worker %d: %w", i, err))
				break
			}
			dead.Add(1)
			go func() {
				defer dead.Done()
				_ = wait()
			}()
		}
		go func() {
			// Every worker exiting with runs still outstanding means no
			// one is left to requeue to: fail instead of hanging. When
			// cancellation is what killed the workers, the context's
			// error is the cause and comes back verbatim — this watcher
			// races the main select's st.fail(ctx.Err()) and must not
			// mask it.
			dead.Wait()
			if err := ctx.Err(); err != nil {
				st.failIfUnfinished(err)
				return
			}
			st.failIfUnfinished(errors.New("remote: all workers exited with runs outstanding"))
		}()
	}

	if len(local) > 0 {
		go c.runLocal(ctx, st, specs, local, results)
	}

	select {
	case <-st.finished:
	case <-ctx.Done():
		st.fail(ctx.Err())
	}
	// Teardown: stop accepting, sever every worker so in-flight handlers
	// unblock, then wait for them — no handler may touch the results
	// slice after Sweep returns.
	if ln != nil {
		ln.Close()
	}
	<-acceptDone
	st.closeConns()
	handlers.Wait()

	st.mu.Lock()
	err := st.err
	st.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return results, nil
}

// listen opens the coordinator socket: the configured address, or a unix
// socket in a fresh temp directory.
func (c *Coordinator) listen() (net.Listener, string, func(), error) {
	if c.Addr != "" {
		ln, err := net.Listen(Network(c.Addr), c.Addr)
		if err != nil {
			return nil, "", nil, fmt.Errorf("remote: listen %s: %w", c.Addr, err)
		}
		return ln, c.Addr, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "sops-dist-")
	if err != nil {
		return nil, "", nil, fmt.Errorf("remote: listen: %w", err)
	}
	addr := filepath.Join(dir, "coord.sock")
	ln, err := net.Listen("unix", addr)
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", nil, fmt.Errorf("remote: listen %s: %w", addr, err)
	}
	return ln, addr, func() { os.RemoveAll(dir) }, nil
}

// handle serves one worker connection: pull an index, hand the spec
// over, pump progress until the result (or the worker's death, which
// requeues the index for someone else).
func (c *Coordinator) handle(conn net.Conn, st *sweepState, specs []experiment.SweepSpec, wireSpecs [][]byte, results []*experiment.Result) {
	defer conn.Close()
	w := newWire(conn)
	for {
		select {
		case <-st.finished:
			return
		case idx := <-st.queue:
			if !c.runRemote(w, idx, st, specs, wireSpecs, results) {
				// The connection is dead; the run is requeued for the
				// surviving workers (the queue is sized for every spec,
				// so this never blocks).
				st.queue <- idx
				return
			}
		}
	}
}

// runRemote drives one run on one worker. It returns false when the
// connection broke — the caller requeues — and true when the exchange
// finished, successfully or not (a worker-side run failure aborts the
// whole sweep, matching Runner.Sweep's first-error contract).
func (c *Coordinator) runRemote(w *wire, idx int, st *sweepState, specs []experiment.SweepSpec, wireSpecs [][]byte, results []*experiment.Result) bool {
	if err := w.send(&frame{Type: msgSpec, Index: idx, ID: specs[idx].ID, SpecJSON: wireSpecs[idx]}); err != nil {
		return false
	}
	for {
		f, err := w.recv()
		if err != nil {
			return false
		}
		switch f.Type {
		case msgProgress:
			if f.Event != nil {
				c.emit(*f.Event)
			}
		case msgResult:
			results[idx] = fromWire(f.Result)
			c.emit(experiment.ProgressEvent{Kind: experiment.ProgressRunDone, Run: specs[idx].ID, Index: idx, FromCheckpoint: f.FromCheckpoint})
			st.complete()
			return true
		case msgError:
			st.fail(fmt.Errorf("remote: sweep run %q: %s", specs[idx].ID, f.Error))
			return true
		default:
			return false
		}
	}
}

// runLocal executes the unserialisable specs in-process, one at a time,
// through a Runner sharing the coordinator's store and a worker-sized
// slice of the budget — the coordinator acting as one more worker for
// the runs only it can see.
func (c *Coordinator) runLocal(ctx context.Context, st *sweepState, specs []experiment.SweepSpec, local []int, results []*experiment.Result) {
	tokens := workpool.NewTokens(c.perWorkerBudget())
	for _, i := range local {
		idx := i
		r := &sweep.Runner{
			Concurrency: 1,
			Tokens:      tokens,
			Store:       c.Store,
			OnProgress: func(ev experiment.ProgressEvent) {
				if ev.Kind == experiment.ProgressRunDone || ev.Kind == experiment.ProgressRunCheckpointed {
					ev.Index = idx
				}
				c.emit(ev)
			},
		}
		res, err := r.Sweep(ctx, []experiment.SweepSpec{specs[idx]})
		if err != nil {
			st.fail(err)
			return
		}
		results[idx] = res[0]
		st.complete()
		select {
		case <-st.finished:
			return
		default:
		}
	}
}

// Do executes n independent jobs locally under the coordinator's global
// budget, implementing the job half of experiment.Sweeper: jobs are
// closures and cannot cross a process boundary, so they run in-process
// exactly as a Runner would run them.
func (c *Coordinator) Do(ctx context.Context, n int, fn func(worker, i int) error) error {
	return workpool.RunSharedCtx(ctx, n, runtime.GOMAXPROCS(0), workpool.NewTokens(c.Budget), fn)
}

// compile-time check: Coordinator implements the driver-facing interface.
var _ experiment.Sweeper = (*Coordinator)(nil)
