package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// TestMain doubles as the worker executable for the process-level tests:
// re-execing the test binary with SOPS_WORKER_ADDR set runs a real
// worker process instead of the test suite, so worker death can be a
// real SIGKILL on a real process boundary.
func TestMain(m *testing.M) {
	if addr := os.Getenv("SOPS_WORKER_ADDR"); addr != "" {
		budget, _ := strconv.Atoi(os.Getenv("SOPS_WORKER_BUDGET"))
		err := Serve(context.Background(), addr, WorkerOptions{
			Budget: budget,
			Dir:    os.Getenv("SOPS_WORKER_DIR"),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// tinyScale matches the sweep package's equivalence scale: milliseconds
// per run, the contract under test is scheduling-independence.
func tinyScale() experiment.Scale {
	return experiment.Scale{M: 16, Steps: 20, RecordEvery: 10, Repeats: 2}
}

// sameResults asserts bit-identical persisted payloads, the distributed
// acceptance bar: not close, identical.
func sameResults(t *testing.T, tag string, want, got []*experiment.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if got[i] == nil {
			t.Fatalf("%s: result %d is nil", tag, i)
		}
		if len(want[i].MI) != len(got[i].MI) {
			t.Fatalf("%s: result %d has %d MI points, want %d", tag, i, len(got[i].MI), len(want[i].MI))
		}
		for j := range want[i].MI {
			if math.Float64bits(want[i].MI[j]) != math.Float64bits(got[i].MI[j]) {
				t.Fatalf("%s: result %d MI[%d] = %v, want %v (not bit-identical)",
					tag, i, j, got[i].MI[j], want[i].MI[j])
			}
		}
		for j := range want[i].Times {
			if want[i].Times[j] != got[i].Times[j] {
				t.Fatalf("%s: result %d time grid differs", tag, i)
			}
		}
		if len(want[i].Labels) != len(got[i].Labels) {
			t.Fatalf("%s: result %d label count differs", tag, i)
		}
		for j := range want[i].Labels {
			if want[i].Labels[j] != got[i].Labels[j] {
				t.Fatalf("%s: result %d labels differ", tag, i)
			}
		}
		if math.Float64bits(want[i].EquilibratedFraction) != math.Float64bits(got[i].EquilibratedFraction) {
			t.Fatalf("%s: result %d equilibrated fraction differs", tag, i)
		}
	}
}

// TestDistributedMatchesSerial is the tentpole acceptance criterion:
// sharding a sweep across 1, 2 and 4 worker processes returns results
// bit-identical to the serial reference loop.
func TestDistributedMatchesSerial(t *testing.T) {
	specs := experiment.Fig8Specs(tinyScale(), 2, 1234)
	want, err := experiment.SerialSweeper{}.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	procs := []int{1, 2, 4}
	if testing.Short() {
		procs = []int{2}
	}
	for _, p := range procs {
		dir := t.TempDir()
		co := &Coordinator{
			Procs:  p,
			Budget: 4,
			Spawn:  GoSpawner(WorkerOptions{Dir: dir}),
			Store:  sweep.DirStore{Dir: dir},
		}
		got, err := co.Sweep(context.Background(), specs)
		if err != nil {
			t.Fatalf("procs=%d: %v", p, err)
		}
		sameResults(t, fmt.Sprintf("procs=%d", p), want, got)
	}
}

// TestDistributedFigureMatchesSerial runs a real figure driver through
// the coordinator: the driver cannot tell a Coordinator from a Runner.
func TestDistributedFigureMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep-heavy")
	}
	sc := tinyScale()
	want, err := experiment.Fig8TypeCountSweep(context.Background(), experiment.SerialSweeper{}, sc, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	co := &Coordinator{
		Procs:  2,
		Budget: 4,
		Spawn:  GoSpawner(WorkerOptions{Dir: dir}),
		Store:  sweep.DirStore{Dir: dir},
	}
	got, err := experiment.Fig8TypeCountSweep(context.Background(), co, sc, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Series) != len(got.Series) {
		t.Fatalf("%d series, want %d", len(got.Series), len(want.Series))
	}
	for s := range want.Series {
		for j := range want.Series[s].Y {
			if math.Float64bits(want.Series[s].Y[j]) != math.Float64bits(got.Series[s].Y[j]) {
				t.Fatalf("series %q Y[%d] = %v, want %v", want.Series[s].Name, j, got.Series[s].Y[j], want.Series[s].Y[j])
			}
		}
	}
}

// TestWorkerDeathRequeuesAndResumes kills a worker between checkpointing
// a run and answering for it: the coordinator must requeue the run to
// the surviving worker, which resumes from the shared store instead of
// recomputing. Worker 1 connects late, so worker 0 deterministically
// receives the first two specs and dies on the second.
func TestWorkerDeathRequeuesAndResumes(t *testing.T) {
	specs := experiment.Fig8Specs(tinyScale(), 3, 99)
	want, err := experiment.SerialSweeper{}.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var died atomic.Bool
	spawn := func(ctx context.Context, i int, addr string, budget int) (func() error, error) {
		o := WorkerOptions{Budget: budget, Dir: dir}
		if i == 0 {
			o.dieAfterRuns = 1
		}
		done := make(chan error, 1)
		go func() {
			if i == 1 {
				time.Sleep(200 * time.Millisecond)
			}
			err := Serve(ctx, addr, o)
			if errors.Is(err, errWorkerDied) {
				died.Store(true)
				err = nil
			}
			done <- err
		}()
		return func() error { return <-done }, nil
	}
	var mu sync.Mutex
	resumed := 0
	co := &Coordinator{
		Procs:  2,
		Budget: 4,
		Spawn:  spawn,
		Store:  sweep.DirStore{Dir: dir},
		OnProgress: func(ev experiment.ProgressEvent) {
			if ev.Kind == experiment.ProgressRunDone && ev.FromCheckpoint {
				mu.Lock()
				resumed++
				mu.Unlock()
			}
		},
	}
	got, err := co.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "after worker death", want, got)
	if !died.Load() {
		t.Fatal("worker 0 never exercised the death hook")
	}
	if resumed == 0 {
		t.Fatal("the requeued run recomputed instead of resuming from the dead worker's checkpoint")
	}
}

// TestCoordinatorResumesWithoutSpawning: a sweep whose runs are all in
// the store completes from the coordinator's pre-dispatch pass — no
// worker is ever spawned, the process-boundary analogue of the
// checkpoint fast path.
func TestCoordinatorResumesWithoutSpawning(t *testing.T) {
	specs := experiment.Fig8Specs(tinyScale(), 2, 7)
	dir := t.TempDir()
	first := &Coordinator{
		Procs:  2,
		Budget: 4,
		Spawn:  GoSpawner(WorkerOptions{Dir: dir}),
		Store:  sweep.DirStore{Dir: dir},
	}
	want, err := first.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	var spawns atomic.Int32
	second := &Coordinator{
		Procs: 2,
		Spawn: func(ctx context.Context, i int, addr string, budget int) (func() error, error) {
			spawns.Add(1)
			return GoSpawner(WorkerOptions{Dir: dir})(ctx, i, addr, budget)
		},
		Store: sweep.DirStore{Dir: dir},
	}
	got, err := second.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if n := spawns.Load(); n != 0 {
		t.Fatalf("resume spawned %d workers, want 0", n)
	}
	sameResults(t, "store resume", want, got)
}

// TestWorkerStartupSweepsStaleTemps: a killed sibling's .tmp-run-*
// remnants must be cleaned by whichever process next opens the dir —
// including a worker, which may be the only process that ever opens it.
func TestWorkerStartupSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".tmp-run-12345")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	specs := experiment.Fig8Specs(tinyScale(), 1, 3)
	co := &Coordinator{
		Procs:  1,
		Budget: 2,
		Spawn:  GoSpawner(WorkerOptions{Dir: dir}),
	}
	if _, err := co.Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp %s survived worker startup", stale)
	}
}

// TestAllWorkersDeadFails: when every worker exits with runs still
// outstanding, the sweep must fail loudly instead of hanging.
func TestAllWorkersDeadFails(t *testing.T) {
	specs := experiment.Fig8Specs(tinyScale(), 2, 5)
	co := &Coordinator{
		Procs: 2,
		Spawn: func(ctx context.Context, i int, addr string, budget int) (func() error, error) {
			conn, err := Dial(ctx, addr)
			if err != nil {
				return nil, err
			}
			conn.Close() // connect, then die before serving anything
			return func() error { return nil }, nil
		},
	}
	_, err := co.Sweep(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), "all workers exited") {
		t.Fatalf("err = %v, want all-workers-exited failure", err)
	}
}

// TestWorkerRunErrorSurfaces: a run that fails on the worker for a
// reason of its own must abort the sweep with the run's ID and reason —
// the satellite error-masking fix extended across the process boundary.
func TestWorkerRunErrorSurfaces(t *testing.T) {
	specs := experiment.Fig8Specs(tinyScale(), 1, 11)
	specs[0].Pipeline.K = 64 // k >= m: rejected by worker-side validation
	specs[0].ID = "bad-run"
	co := &Coordinator{
		Procs:  1,
		Budget: 2,
		Spawn:  GoSpawner(WorkerOptions{}),
	}
	_, err := co.Sweep(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), "bad-run") {
		t.Fatalf("err = %v, want the failing run's ID surfaced", err)
	}
}

// TestCancelReturnsContextError: the coordinator honours the Runner's
// cancellation contract — the context's error comes back verbatim.
func TestCancelReturnsContextError(t *testing.T) {
	specs := experiment.Fig8Specs(experiment.Scale{M: 16, Steps: 200, RecordEvery: 10, Repeats: 2}, 3, 21)
	ctx, cancel := context.WithCancel(context.Background())
	co := &Coordinator{
		Procs:  2,
		Budget: 2,
		Spawn:  GoSpawner(WorkerOptions{}),
		OnProgress: func(ev experiment.ProgressEvent) {
			cancel() // first event from any worker: pull the plug
		},
	}
	_, err := co.Sweep(ctx, specs)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled verbatim", err)
	}
}

// TestWireSpecFingerprintRoundTrip pins the property distribution rests
// on: serializing a sweep spec to canonical JSON and rebuilding it in
// another process yields the same pipeline fingerprint byte-for-byte, so
// coordinator and workers key the shared store identically.
func TestWireSpecFingerprintRoundTrip(t *testing.T) {
	for _, ss := range experiment.Fig8Specs(tinyScale(), 3, 77) {
		want, ok := spec.PipelineFingerprint(ss.ID, ss.Pipeline)
		if !ok {
			t.Fatalf("%s: not fingerprintable", ss.ID)
		}
		sp, err := spec.FromPipeline(ss.Pipeline)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}
		back, err := spec.Parse(b, "wire")
		if err != nil {
			t.Fatal(err)
		}
		p, err := back.Pipeline()
		if err != nil {
			t.Fatal(err)
		}
		got, ok := spec.PipelineFingerprint(ss.ID, p)
		if !ok || got != want {
			t.Fatalf("%s: fingerprint %016x after wire round-trip, want %016x", ss.ID, got, want)
		}
	}
}

// TestProcessWorkerSIGKILL is the real thing: workers as separate
// processes (the re-exec'd test binary), one SIGKILLed mid-sweep, and
// the surviving worker must carry the sweep to results bit-identical to
// the serial reference.
func TestProcessWorkerSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	specs := experiment.Fig8Specs(tinyScale(), 3, 42)
	want, err := experiment.SerialSweeper{}.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var mu sync.Mutex
	var procs []*os.Process
	spawn := func(ctx context.Context, i int, addr string, budget int) (func() error, error) {
		cmd := exec.CommandContext(ctx, exe)
		cmd.Env = append(os.Environ(),
			"SOPS_WORKER_ADDR="+addr,
			"SOPS_WORKER_BUDGET="+strconv.Itoa(budget),
			"SOPS_WORKER_DIR="+dir,
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		mu.Lock()
		procs = append(procs, cmd.Process)
		mu.Unlock()
		return func() error { return cmd.Wait() }, nil
	}
	var killOnce sync.Once
	co := &Coordinator{
		Procs:  2,
		Budget: 4,
		Spawn:  spawn,
		Store:  sweep.DirStore{Dir: dir},
		OnProgress: func(ev experiment.ProgressEvent) {
			if ev.Kind != experiment.ProgressRunDone {
				return
			}
			killOnce.Do(func() {
				// First result is in: SIGKILL one real worker process
				// mid-sweep.
				mu.Lock()
				defer mu.Unlock()
				if len(procs) > 0 {
					procs[0].Kill()
				}
			})
		},
	}
	got, err := co.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "after SIGKILL", want, got)
}
