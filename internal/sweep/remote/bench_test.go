package remote

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/experiment"
	"repro/internal/sweep"
)

// BenchmarkDistributedSweep runs a Fig. 8-shaped grid through 1, 2 and 4
// in-process workers (real sockets, real protocol, no exec overhead) —
// the CI artifact that tracks multi-process scaling. On a multi-core box
// the wall clock should fall as workers are added until the budget is
// exhausted; on a single core the rows should stay flat, demonstrating
// the budget split prevents oversubscription.
func BenchmarkDistributedSweep(b *testing.B) {
	sc := experiment.Scale{M: 32, Steps: 60, RecordEvery: 20, Repeats: 2}
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				specs := experiment.Fig8Specs(sc, 3, 1234)
				co := &Coordinator{
					Procs: procs,
					Spawn: GoSpawner(WorkerOptions{}),
				}
				if _, err := co.Sweep(context.Background(), specs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributedResume measures the coordinator's pre-dispatch
// store pass: a fully checkpointed sweep resolves without spawning a
// single worker, so resume cost is store reads, not processes.
func BenchmarkDistributedResume(b *testing.B) {
	sc := experiment.Scale{M: 32, Steps: 60, RecordEvery: 20, Repeats: 2}
	specs := experiment.Fig8Specs(sc, 3, 1234)
	dir := b.TempDir()
	seedRun := &Coordinator{Procs: 2, Spawn: GoSpawner(WorkerOptions{Dir: dir}), Store: sweep.DirStore{Dir: dir}}
	if _, err := seedRun.Sweep(context.Background(), specs); err != nil {
		b.Fatal(err)
	}
	b.Run("dirstore", func(b *testing.B) {
		co := &Coordinator{Procs: 2, Spawn: GoSpawner(WorkerOptions{Dir: dir}), Store: sweep.DirStore{Dir: dir}}
		for i := 0; i < b.N; i++ {
			if _, err := co.Sweep(context.Background(), specs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cachestore", func(b *testing.B) {
		cache := sweep.NewCacheStore(sweep.DirStore{Dir: dir}, 8<<20)
		co := &Coordinator{Procs: 2, Spawn: GoSpawner(WorkerOptions{Dir: dir}), Store: cache}
		if _, err := co.Sweep(context.Background(), specs); err != nil {
			b.Fatal(err) // warm the cache outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := co.Sweep(context.Background(), specs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
