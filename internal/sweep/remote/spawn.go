package remote

import (
	"context"
	"io"
	"os/exec"
	"strconv"
)

// CommandSpawner starts workers as child processes of the given
// executable — the production spawner behind `sopsweep -worker-procs`.
// args builds the argument vector for worker i; it must route addr and
// budget into whatever flags the binary's worker mode expects. Worker
// stderr is forwarded to stderr (nil discards it), so a crashing child
// says why. The child lives under the sweep context: cancellation kills
// it.
func CommandSpawner(name string, stderr io.Writer, args func(i int, addr string, budget int) []string) SpawnFunc {
	return func(ctx context.Context, i int, addr string, budget int) (func() error, error) {
		cmd := exec.CommandContext(ctx, name, args(i, addr, budget)...)
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return cmd.Wait, nil
	}
}

// WorkerArgs is the default argument vector for a sopsweep-style worker
// mode: -worker -dist-addr <addr> -budget <n>, plus -checkpoint when a
// shared directory is in play. Factored here so the CLI and the process
// tests cannot drift.
func WorkerArgs(addr string, budget int, dir string) []string {
	args := []string{"-worker", "-dist-addr", addr, "-budget", strconv.Itoa(budget)}
	if dir != "" {
		args = append(args, "-checkpoint", dir)
	}
	return args
}

// GoSpawner runs workers as goroutines inside this process: the same
// protocol over a real socket, no exec. The in-process harness for tests
// and benchmarks; opts.Budget is overridden per worker by the
// coordinator's split.
func GoSpawner(opts WorkerOptions) SpawnFunc {
	return func(ctx context.Context, i int, addr string, budget int) (func() error, error) {
		o := opts
		o.Budget = budget
		done := make(chan error, 1)
		go func() { done <- Serve(ctx, addr, o) }()
		return func() error { return <-done }, nil
	}
}
