// Package remote shards one sweep across worker processes on the same
// box. A Coordinator (the experiment.Sweeper half) listens on a unix or
// TCP socket, spawns N workers, and hands each idle worker one sweep
// spec at a time; workers (the Serve half) run the spec through their own
// sweep.Runner against the shared ResultStore, stream ProgressEvents
// back, and return the trimmed result.
//
// Distribution is correct by construction, not by protocol cleverness:
// every run is deterministic and keyed by spec.PipelineFingerprint, so
// handing a run to any worker — or re-handing it after a crash — is
// idempotent. A lost connection just requeues the spec; if the dead
// worker had already checkpointed the run, the retry resumes from the
// store instead of recomputing. The coordinator splits the global token
// budget across live workers GOMAXPROCS-style, so N children never
// oversubscribe the box the way N independent sweeps would.
//
// The wire format is length-prefixed frames: a 4-byte big-endian length
// followed by one self-contained gob-encoded frame. Each frame is
// encoded with a fresh encoder (stateless framing), so a reader can cap,
// skip or resync on frame boundaries without tracking stream state, and
// a single oversized frame fails loudly instead of running away. Specs
// cross the wire as their canonical JSON (sops.Spec is versioned and
// JSON-round-trippable by contract), which keeps the hot fingerprint
// path — worker rebuilds the pipeline, fingerprints it, hits the shared
// store — byte-identical to the coordinator's view.
package remote

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"repro/internal/experiment"
	"repro/internal/infotheory"
)

// maxFrameBytes caps a single frame. Results are curve-level payloads
// (kilobytes at paper scale); anything near the cap is corruption, not
// data.
const maxFrameBytes = 64 << 20

// msgType discriminates the frames of the coordinator/worker protocol.
type msgType uint8

const (
	// msgSpec (coordinator → worker): run this spec. ID and Index carry
	// the sweep-level identity; SpecJSON is the canonical spec document.
	msgSpec msgType = 1 + iota
	// msgResult (worker → coordinator): the run completed; Result holds
	// the trimmed curve payload, FromCheckpoint whether the worker's
	// store already had it.
	msgResult
	// msgError (worker → coordinator): the run failed for a reason of its
	// own (bad spec, pipeline error). The worker stays alive; the
	// coordinator aborts the sweep with this error.
	msgError
	// msgProgress (worker → coordinator): one pipeline-level
	// ProgressEvent from the run in flight, forwarded so the
	// coordinator's subscriber sees a single merged stream.
	msgProgress
)

// frame is the one wire message; Type selects which fields are live.
type frame struct {
	Type  msgType
	Index int
	ID    string

	SpecJSON       []byte
	Result         *wireResult
	FromCheckpoint bool
	Error          string
	Event          *experiment.ProgressEvent
}

// wireResult is the trimmed result payload — exactly the fields the
// checkpoint runFile persists, so what crosses the wire and what crosses
// the store are the same result by construction.
type wireResult struct {
	Name                 string
	Times                []int
	MI                   []float64
	MIStdErr             []float64
	Decomp               []infotheory.Decomposition
	Entropies            []infotheory.EntropyProfile
	Labels               []int
	EquilibratedFraction float64
}

func toWire(res *experiment.Result) *wireResult {
	return &wireResult{
		Name:                 res.Name,
		Times:                res.Times,
		MI:                   res.MI,
		MIStdErr:             res.MIStdErr,
		Decomp:               res.Decomp,
		Entropies:            res.Entropies,
		Labels:               res.Labels,
		EquilibratedFraction: res.EquilibratedFraction,
	}
}

func fromWire(w *wireResult) *experiment.Result {
	return &experiment.Result{
		Name:                 w.Name,
		Times:                w.Times,
		MI:                   w.MI,
		MIStdErr:             w.MIStdErr,
		Decomp:               w.Decomp,
		Entropies:            w.Entropies,
		Labels:               w.Labels,
		EquilibratedFraction: w.EquilibratedFraction,
	}
}

// wire frames gob messages over one connection. Sends are serialised by
// a mutex (progress events race the result message on the worker side)
// and a send error is sticky: once the peer is gone every later send
// fails fast with the same error.
type wire struct {
	conn net.Conn

	mu      sync.Mutex
	sendErr error
	buf     bytes.Buffer

	rmu sync.Mutex
}

func newWire(conn net.Conn) *wire {
	return &wire{conn: conn}
}

// send writes one frame: gob-encode to a scratch buffer, then length
// prefix + payload in a single Write so frames are never interleaved.
func (w *wire) send(f *frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sendErr != nil {
		return w.sendErr
	}
	w.buf.Reset()
	w.buf.Write([]byte{0, 0, 0, 0}) // length prefix placeholder
	if err := gob.NewEncoder(&w.buf).Encode(f); err != nil {
		w.sendErr = fmt.Errorf("remote: encode frame: %w", err)
		return w.sendErr
	}
	b := w.buf.Bytes()
	n := len(b) - 4
	if n > maxFrameBytes {
		w.sendErr = fmt.Errorf("remote: frame of %d bytes exceeds cap", n)
		return w.sendErr
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	if _, err := w.conn.Write(b); err != nil {
		w.sendErr = fmt.Errorf("remote: write frame: %w", err)
		return w.sendErr
	}
	return nil
}

// recv reads one frame. io.EOF on a clean close between frames.
func (w *wire) recv() (*frame, error) {
	w.rmu.Lock()
	defer w.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(w.conn, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("remote: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("remote: frame of %d bytes exceeds cap", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(w.conn, payload); err != nil {
		return nil, fmt.Errorf("remote: read frame payload: %w", err)
	}
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
		return nil, fmt.Errorf("remote: decode frame: %w", err)
	}
	return &f, nil
}

// Network classifies a coordinator address: path-shaped addresses are
// unix sockets, everything else is TCP host:port. One rule shared by
// listen and dial so the two sides can never disagree.
func Network(addr string) string {
	if strings.ContainsRune(addr, '/') {
		return "unix"
	}
	return "tcp"
}

// Dial connects a worker to the coordinator address. The context governs
// the dial only; close the returned conn to abort reads.
func Dial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, Network(addr), addr)
}
