package remote

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/experiment"
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/workpool"
)

// WorkerOptions configures one worker process (or goroutine).
type WorkerOptions struct {
	// Budget is this worker's token budget — its slice of the global
	// budget, handed down by the coordinator at spawn time (<= 0 means
	// GOMAXPROCS, matching workpool.NewTokens).
	Budget int
	// Dir is the shared checkpoint directory; empty disables the store
	// (runs are computed fresh and only returned over the wire).
	Dir string
	// CacheBytes, when > 0, fronts the store with an in-memory
	// sweep.CacheStore of that many bytes.
	CacheBytes int
	// Store overrides Dir with an explicit store (tests exercise
	// counting stores through this; Dir is still swept for stale temps).
	Store sweep.ResultStore

	// dieAfterRuns is a test hook: after sending this many results the
	// worker severs its connection instead of serving the next spec,
	// simulating a worker killed mid-sweep. Zero disables.
	dieAfterRuns int
}

// errWorkerDied marks the test-hook death so Serve's caller can tell it
// from a real failure.
var errWorkerDied = errors.New("remote: worker died (test hook)")

// Serve runs the worker side of the protocol: sweep the checkpoint
// directory for stale temps (a killed sibling's .tmp-run-* remnants must
// be cleaned by whichever process next opens the dir), dial the
// coordinator, then loop — receive a spec frame, run it through a local
// sweep.Runner against the shared store, stream progress back, answer
// with the trimmed result. A clean connection close (the coordinator is
// done) returns nil; cancelling the context severs the connection and
// returns the context's error.
func Serve(ctx context.Context, addr string, opts WorkerOptions) error {
	if opts.Dir != "" {
		if _, err := sweep.RemoveStaleTemps(opts.Dir); err != nil {
			return err
		}
	}
	conn, err := Dial(ctx, addr)
	if err != nil {
		return fmt.Errorf("remote: worker dial: %w", err)
	}
	defer conn.Close()
	// A blocked frame read does not watch the context; closing the
	// connection from the cancellation path aborts it.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	st := opts.Store
	if st == nil && opts.Dir != "" {
		st = sweep.DirStore{Dir: opts.Dir}
	}
	if st != nil && opts.CacheBytes > 0 {
		st = sweep.NewCacheStore(st, opts.CacheBytes)
	}
	w := newWire(conn)
	tokens := workpool.NewTokens(opts.Budget)
	served := 0
	for {
		f, err := w.recv()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) {
				return nil // coordinator closed: sweep is done
			}
			return err
		}
		if f.Type != msgSpec {
			return fmt.Errorf("remote: worker got unexpected frame type %d", f.Type)
		}
		res, fromCkpt, runErr := runOne(ctx, f, st, tokens, w)
		if runErr != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if err := w.send(&frame{Type: msgError, Index: f.Index, ID: f.ID, Error: runErr.Error()}); err != nil {
				return err
			}
			continue
		}
		served++
		if opts.dieAfterRuns > 0 && served > opts.dieAfterRuns {
			// Test hook: this run is computed and checkpointed, but the
			// answer never leaves — the exact window a crash-requeue
			// must recover from by loading, not recomputing.
			conn.Close()
			return errWorkerDied
		}
		if err := w.send(&frame{Type: msgResult, Index: f.Index, ID: f.ID, Result: toWire(res), FromCheckpoint: fromCkpt}); err != nil {
			return err
		}
	}
}

// runOne executes a single spec frame: rebuild the pipeline from the
// canonical JSON (Parse validates, and the rebuilt pipeline fingerprints
// byte-identically to the coordinator's original — the property the
// shared store keys on), then run it as a one-spec sweep so the full
// checkpoint/trim/progress discipline of the Runner applies unchanged.
func runOne(ctx context.Context, f *frame, st sweep.ResultStore, tokens *workpool.Tokens, w *wire) (*experiment.Result, bool, error) {
	sp, err := spec.Parse(f.SpecJSON, fmt.Sprintf("remote spec %q", f.ID))
	if err != nil {
		return nil, false, err
	}
	p, err := sp.Pipeline()
	if err != nil {
		return nil, false, err
	}
	fromCkpt := false
	r := &sweep.Runner{
		Concurrency: 1,
		Tokens:      tokens,
		Store:       st,
		OnRunDone: func(_ int, _ experiment.SweepSpec, _ *experiment.Result, fc bool) {
			fromCkpt = fc
		},
		OnProgress: func(ev experiment.ProgressEvent) {
			switch ev.Kind {
			case experiment.ProgressRunDone:
				// The coordinator emits its own RunDone when the result
				// frame lands, so the merged stream has exactly one.
				return
			case experiment.ProgressRunCheckpointed:
				// Run-level indices are sweep positions; remap from this
				// one-spec sweep (always 0) to the global sweep index.
				ev.Index = f.Index
			}
			// Best-effort: a torn connection surfaces at the next
			// result/recv, not here.
			_ = w.send(&frame{Type: msgProgress, Event: &ev})
		},
	}
	results, err := r.Sweep(ctx, []experiment.SweepSpec{{ID: f.ID, Pipeline: p}})
	if err != nil {
		return nil, false, err
	}
	return results[0], fromCkpt, nil
}
