package sweep

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiment"
	"repro/internal/infotheory"
	"repro/internal/spec"
)

// runFile is the on-disk representation of one completed sweep run,
// modeled on sim's ensembleFile: explicit exported fields, a version
// guard for format evolution, and an identity (ID + spec fingerprint)
// that must match before a checkpoint is trusted. Only the curve-level
// payload is persisted — aggregation needs nothing else, and it keeps a
// paper-scale sweep's checkpoint directory at kilobytes per run.
type runFile struct {
	Version     int
	ID          string
	Fingerprint uint64

	Name  string
	Times []int
	MI    []float64
	// MIStdErr is the approximate tier's per-step standard error; nil on
	// exact-tier runs. gob tolerates its absence, so checkpoints written
	// before the tier existed keep decoding (the field stays nil).
	MIStdErr             []float64
	Decomp               []infotheory.Decomposition
	Entropies            []infotheory.EntropyProfile
	Labels               []int
	EquilibratedFraction float64
}

const runFileVersion = 1

// fingerprint derives the run's checkpoint identity. It is
// spec.PipelineFingerprint — the declarative spec layer owns the one
// stable fingerprint recipe, and the checkpoint key is its single-run
// case, so checkpoints written before the spec layer existed keep
// verifying. ok is false when the force is a custom Scaling with no
// serialisable spec — such runs are recomputed rather than resumed, since
// their identity cannot be pinned.
func fingerprint(ss experiment.SweepSpec) (fp uint64, ok bool) {
	return spec.PipelineFingerprint(ss.ID, ss.Pipeline)
}

// runFilePath names the run's file: the sanitised ID plus the
// fingerprint, so distinct specs can never collide on a file even if
// their IDs sanitise identically.
func runFilePath(dir, id string, fp uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%016x.run.gob", sanitizeID(id), fp))
}

// sanitizeID maps a spec ID onto the filename-safe alphabet.
func sanitizeID(id string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			return c
		default:
			return '_'
		}
	}, id)
}

// RemoveStaleTemps deletes leftover .tmp-run-* files from a checkpoint
// directory and reports how many it removed. These are the remnants of a
// process killed between CreateTemp and Rename in writeRunFile: never
// a valid checkpoint (a resume ignores them by name), but they
// accumulate across crashes. Completed checkpoints and anything else in
// the directory are untouched. A missing directory removes nothing and
// is not an error, so callers can sweep before the first run ever
// creates the directory.
func RemoveStaleTemps(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("sweep: scanning checkpoint dir: %w", err)
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), ".tmp-run-") {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			return removed, fmt.Errorf("sweep: removing stale temp: %w", err)
		}
		removed++
	}
	return removed, nil
}

// CheckUniqueIDs rejects duplicate spec IDs, which would otherwise
// silently share store entries (and, distributed, wire frames).
func CheckUniqueIDs(specs []experiment.SweepSpec) error {
	seen := make(map[string]int, len(specs))
	for i, spec := range specs {
		if j, dup := seen[spec.ID]; dup {
			return fmt.Errorf("sweep: specs %d and %d share ID %q; checkpoint IDs must be unique", j, i, spec.ID)
		}
		seen[spec.ID] = i
	}
	return nil
}

// readRunFile restores a completed run if a matching checkpoint file
// exists. Any mismatch — missing file, undecodable payload, wrong
// version, ID or fingerprint — means "recompute"; a stale or foreign
// file is never an error, it is simply not a checkpoint for this spec.
func readRunFile(dir, id string, fp uint64) (*experiment.Result, bool) {
	f, err := os.Open(runFilePath(dir, id, fp))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var rec runFile
	if err := gob.NewDecoder(f).Decode(&rec); err != nil {
		return nil, false
	}
	if rec.Version != runFileVersion || rec.ID != id || rec.Fingerprint != fp {
		return nil, false
	}
	return &experiment.Result{
		Name:                 rec.Name,
		Times:                rec.Times,
		MI:                   rec.MI,
		MIStdErr:             rec.MIStdErr,
		Decomp:               rec.Decomp,
		Entropies:            rec.Entropies,
		Labels:               rec.Labels,
		EquilibratedFraction: rec.EquilibratedFraction,
	}, true
}

// writeRunFile persists a completed (already trimmed) run. The write
// goes through a temp file in the same directory plus a rename, so a
// kill mid-write leaves no half-checkpoint that a resume could trust.
func writeRunFile(dir, id string, fp uint64, res *experiment.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	rec := runFile{
		Version:              runFileVersion,
		ID:                   id,
		Fingerprint:          fp,
		Name:                 res.Name,
		Times:                res.Times,
		MI:                   res.MI,
		MIStdErr:             res.MIStdErr,
		Decomp:               res.Decomp,
		Entropies:            res.Entropies,
		Labels:               res.Labels,
		EquilibratedFraction: res.EquilibratedFraction,
	}
	path := runFilePath(dir, id, fp)
	tmp, err := os.CreateTemp(dir, ".tmp-run-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := gob.NewEncoder(tmp).Encode(rec); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}
