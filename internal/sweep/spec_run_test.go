package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/experiment"
	"repro/internal/spec"
)

// TestScenarioSpecsRoundTripLossless: every named scenario in the
// registry has a declarative Spec form that survives JSON marshal →
// parse → marshal byte-for-byte and value-for-value (an acceptance
// criterion of the Spec redesign).
func TestScenarioSpecsRoundTripLossless(t *testing.T) {
	names := []string{"fig4", "fig8", "fig9", "fig10", "rings", "cell-adhesion", "long-range"}
	if got := len(Scenarios()); got != len(names) {
		t.Fatalf("registry has %d scenarios, test covers %d — keep them in sync", got, len(names))
	}
	for _, name := range names {
		s, ok := LookupScenario(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		sp := s.Spec("quick", 2012)
		if err := sp.Validate(); err != nil {
			t.Fatalf("%s: invalid spec: %v", name, err)
		}
		b1, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := spec.Parse(b1, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, sp) {
			t.Fatalf("%s: round-trip changed the spec:\nwant %+v\ngot  %+v", name, sp, got)
		}
		b2, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("%s: JSON not a fixed point:\n%s\n%s", name, b1, b2)
		}
	}
}

// TestRunSpecDispatch: the one dispatcher reproduces each kind of
// experiment — scenario, grid, single run — and grid specs converted
// from the legacy GridSpec form produce bit-identical figures.
func TestRunSpecDispatch(t *testing.T) {
	ctx := context.Background()
	sc := experiment.TestScale()

	// Scenario spec ≡ direct scenario run.
	s, _ := LookupScenario("fig8")
	want, err := s.Run(ctx, nil, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSpec(ctx, nil, s.Spec("test", 3))
	if err != nil {
		t.Fatal(err)
	}
	sameFigure(t, "scenario", want, got)

	// Grid spec (via the declarative form) ≡ legacy GridSpec.Figure.
	g := &GridSpec{Name: "g", N: 8, TypeCounts: []int{2}, Cutoffs: []float64{5},
		Force: GridForce{Family: "f1"}, Repeats: 2}
	wantG, err := g.Figure(ctx, nil, sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotG, err := RunSpec(ctx, nil, g.Spec("test", 5))
	if err != nil {
		t.Fatal(err)
	}
	sameFigure(t, "grid", wantG, gotG)

	// Single-run spec: the figure is the run's MI curve.
	runSpec := spec.MustNew("single",
		spec.WithSim(experiment.Fig5Params()),
		spec.WithScale("test"),
		spec.WithSeed(11),
	)
	fd, err := RunSpec(ctx, nil, runSpec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := runSpec.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Series) != 1 || !reflect.DeepEqual(fd.Series[0].Y, res.MI) {
		t.Fatalf("single-run figure does not match the pipeline result")
	}

	if _, err := RunSpec(ctx, nil, spec.Spec{Scenario: "nope", Scale: "test"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestSweepCancellation is the cancellation acceptance regression:
// cancelling a checkpointing sweep mid-run (1) returns context.Canceled,
// (2) leaves only valid checkpoints for the runs that finished, and
// (3) resuming with the same directory reproduces the uninterrupted
// figure byte-for-byte while actually restoring from disk.
func TestSweepCancellation(t *testing.T) {
	sc := experiment.TestScale()
	sc.Repeats = 3
	const maxTypes = 3
	seed := uint64(17)
	specs := experiment.Fig8Specs(sc, maxTypes, seed)

	// Uninterrupted reference.
	reference, err := experiment.Fig8TypeCountSweep(context.Background(), experiment.SerialSweeper{}, sc, maxTypes, seed)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	interrupted := &Runner{
		Concurrency: 2,
		Dir:         dir,
		OnRunDone: func(int, experiment.SweepSpec, *experiment.Result, bool) {
			if done.Add(1) == 3 {
				cancel() // cancel mid-sweep, after a few checkpoints exist
			}
		},
	}
	_, err = interrupted.Sweep(ctx, specs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	completed := int(done.Load())
	if completed >= len(specs) {
		t.Fatalf("sweep finished (%d runs) before the cancellation landed — shrink the trigger", completed)
	}

	// Resume: the checkpoints written before the cancellation must be
	// restored (not recomputed), and the figure must match the
	// uninterrupted reference exactly.
	restored := 0
	resume := &Runner{Dir: dir, OnRunDone: func(_ int, _ experiment.SweepSpec, _ *experiment.Result, fromCkpt bool) {
		if fromCkpt {
			restored++
		}
	}}
	resumed, err := experiment.Fig8TypeCountSweep(context.Background(), resume, sc, maxTypes, seed)
	if err != nil {
		t.Fatal(err)
	}
	if restored < 3 {
		t.Fatalf("resume restored %d checkpoints, want >= 3", restored)
	}
	sameFigure(t, "resumed-after-cancel", reference, resumed)
}

// TestSerialSweeperCancellation: even the serial reference stops between
// runs and reports the context's error.
func TestSerialSweeperCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := experiment.TestScale()
	if _, err := (experiment.SerialSweeper{}).Sweep(ctx, experiment.Fig8Specs(sc, 1, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if err := (experiment.SerialSweeper{}).Do(ctx, 3, func(_, _ int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do got %v, want context.Canceled", err)
	}
}
