package sweep

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/plot"
	"repro/internal/workpool"
)

// tinyScale keeps every equivalence pipeline at milliseconds: the sweep
// contract under test is scheduling-independence, not estimator quality.
func tinyScale() experiment.Scale {
	return experiment.Scale{M: 16, Steps: 20, RecordEvery: 10, Repeats: 2}
}

func sameResults(t *testing.T, tag string, want, got []*experiment.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if len(want[i].MI) != len(got[i].MI) {
			t.Fatalf("%s: result %d has %d MI points, want %d", tag, i, len(got[i].MI), len(want[i].MI))
		}
		for j := range want[i].MI {
			if math.Float64bits(want[i].MI[j]) != math.Float64bits(got[i].MI[j]) {
				t.Fatalf("%s: result %d MI[%d] = %v, want %v (not bit-identical)",
					tag, i, j, got[i].MI[j], want[i].MI[j])
			}
		}
		for j := range want[i].Times {
			if want[i].Times[j] != got[i].Times[j] {
				t.Fatalf("%s: result %d time grid differs", tag, i)
			}
		}
	}
}

func sameFigure(t *testing.T, tag string, want, got *experiment.FigureData) {
	t.Helper()
	if len(want.Series) != len(got.Series) {
		t.Fatalf("%s: %d series, want %d", tag, len(got.Series), len(want.Series))
	}
	for s := range want.Series {
		if want.Series[s].Name != got.Series[s].Name {
			t.Fatalf("%s: series %d named %q, want %q", tag, s, got.Series[s].Name, want.Series[s].Name)
		}
		for j := range want.Series[s].Y {
			if math.Float64bits(want.Series[s].Y[j]) != math.Float64bits(got.Series[s].Y[j]) {
				t.Fatalf("%s: series %q Y[%d] = %v, want %v (not bit-identical)",
					tag, want.Series[s].Name, j, got.Series[s].Y[j], want.Series[s].Y[j])
			}
			if math.Float64bits(want.Series[s].X[j]) != math.Float64bits(got.Series[s].X[j]) {
				t.Fatalf("%s: series %q X[%d] differs", tag, want.Series[s].Name, j)
			}
		}
	}
}

// TestRunnerMatchesSerialSweep is the core equivalence contract: the
// concurrent budgeted Runner returns bit-identical results to the serial
// loop for every concurrency/budget setting.
func TestRunnerMatchesSerialSweep(t *testing.T) {
	specs := experiment.Fig8Specs(tinyScale(), 2, 1234)
	want, err := experiment.SerialSweeper{}.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	concs := []int{1, 2, 8}
	if testing.Short() {
		concs = []int{2}
	}
	for _, conc := range concs {
		r := &Runner{Concurrency: conc, Tokens: workpool.NewTokens(conc)}
		got, err := r.Sweep(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "conc="+string(rune('0'+conc)), want, got)
	}
}

// TestSweepDriversBitIdenticalAcrossSweepers pins the acceptance
// criterion on the real figure drivers: Figs. 8/9/10 produce identical
// curves through the serial reference and through Runners at several
// concurrency settings.
func TestSweepDriversBitIdenticalAcrossSweepers(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep-heavy")
	}
	sc := tinyScale()
	type driver struct {
		name string
		run  func(sw experiment.Sweeper) (*experiment.FigureData, error)
	}
	drivers := []driver{
		{"fig8", func(sw experiment.Sweeper) (*experiment.FigureData, error) {
			return experiment.Fig8TypeCountSweep(context.Background(), sw, sc, 2, 7)
		}},
		{"fig9", func(sw experiment.Sweeper) (*experiment.FigureData, error) {
			return experiment.Fig9CutoffSweep(context.Background(), sw, sc, 7)
		}},
		{"fig10", func(sw experiment.Sweeper) (*experiment.FigureData, error) {
			return experiment.Fig10TypesVsCutoff(context.Background(), sw, sc, 7)
		}},
	}
	for _, d := range drivers {
		want, err := d.run(experiment.SerialSweeper{})
		if err != nil {
			t.Fatal(err)
		}
		for _, conc := range []int{1, 2, 8} {
			r := &Runner{Concurrency: conc, Tokens: workpool.NewTokens(conc)}
			got, err := d.run(r)
			if err != nil {
				t.Fatal(err)
			}
			sameFigure(t, d.name, want, got)
		}
	}
}

// TestEstimatorComparisonBitIdenticalAcrossSweepers: the rewired Sec. 5.3
// comparison returns the same estimates through the serial job loop and
// the budgeted concurrent one (timings are wall-clock and excluded).
func TestEstimatorComparisonBitIdenticalAcrossSweepers(t *testing.T) {
	want, err := experiment.EstimatorComparison(context.Background(), experiment.SerialSweeper{}, 4, 80, 3, 0.5, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Concurrency: 3, Tokens: workpool.NewTokens(3)}
	got, err := experiment.EstimatorComparison(context.Background(), r, 4, 80, 3, 0.5, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("row counts differ")
	}
	for i := range want.Rows {
		if math.Float64bits(want.Rows[i].Mean) != math.Float64bits(got.Rows[i].Mean) ||
			math.Float64bits(want.Rows[i].Std) != math.Float64bits(got.Rows[i].Std) ||
			math.Float64bits(want.Rows[i].RMSE) != math.Float64bits(got.Rows[i].RMSE) {
			t.Fatalf("row %q differs between serial and concurrent", want.Rows[i].Estimator)
		}
	}
}

// figureCSV renders a figure exactly as the CLIs write it, for
// byte-for-byte comparisons.
func figureCSV(t *testing.T, fd *experiment.FigureData) []byte {
	t.Helper()
	names := make([]string, len(fd.Series))
	xs := make([][]float64, len(fd.Series))
	ys := make([][]float64, len(fd.Series))
	for i, s := range fd.Series {
		names[i] = s.Name
		xs[i] = s.X
		ys[i] = s.Y
	}
	var buf bytes.Buffer
	if err := plot.WriteSeriesCSV(&buf, names, xs, ys); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointResumeMidSweep interrupts a sweep after a prefix of its
// runs (the on-disk state a kill leaves behind) and checks the resumed
// sweep restores the completed runs from disk and reproduces the
// uninterrupted figure byte for byte.
func TestCheckpointResumeMidSweep(t *testing.T) {
	sc := tinyScale()
	const maxTypes, seed = 2, 41
	reference, err := experiment.Fig8TypeCountSweep(context.Background(), experiment.SerialSweeper{}, sc, maxTypes, seed)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	specs := experiment.Fig8Specs(sc, maxTypes, seed)
	half := len(specs) / 2
	if half == 0 {
		t.Fatal("need at least 2 specs")
	}
	// "Kill" after the first half: only those checkpoints exist.
	partial := &Runner{Concurrency: 2, Dir: dir}
	if _, err := partial.Sweep(context.Background(), specs[:half]); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.run.gob"))
	if err != nil || len(files) != half {
		t.Fatalf("checkpoint files = %v (err %v), want %d", files, err, half)
	}

	// Resume: the full sweep must restore the first half from disk.
	var restored, computed int
	resume := &Runner{Concurrency: 2, Dir: dir, OnRunDone: func(_ int, _ experiment.SweepSpec, _ *experiment.Result, fromCheckpoint bool) {
		if fromCheckpoint {
			restored++
		} else {
			computed++
		}
	}}
	resumed, err := experiment.Fig8TypeCountSweep(context.Background(), resume, sc, maxTypes, seed)
	if err != nil {
		t.Fatal(err)
	}
	if restored != half || computed != len(specs)-half {
		t.Fatalf("restored %d / computed %d, want %d / %d", restored, computed, half, len(specs)-half)
	}
	if !bytes.Equal(figureCSV(t, reference), figureCSV(t, resumed)) {
		t.Fatal("resumed sweep's figure differs from the uninterrupted one")
	}

	// A third pass over a complete checkpoint set computes nothing.
	restored, computed = 0, 0
	again, err := experiment.Fig8TypeCountSweep(context.Background(), resume, sc, maxTypes, seed)
	if err != nil {
		t.Fatal(err)
	}
	if computed != 0 || restored != len(specs) {
		t.Fatalf("second resume recomputed %d runs", computed)
	}
	if !bytes.Equal(figureCSV(t, reference), figureCSV(t, again)) {
		t.Fatal("fully-restored sweep differs")
	}
}

// TestCheckpointSurvivesFailedSweep: a sweep that errors mid-way keeps
// the checkpoints of the runs that completed, and re-running with the
// spec fixed resumes instead of restarting.
func TestCheckpointSurvivesFailedSweep(t *testing.T) {
	sc := tinyScale()
	specs := experiment.Fig8Specs(sc, 2, 17)
	dir := t.TempDir()

	broken := make([]experiment.SweepSpec, len(specs))
	copy(broken, specs)
	// M=2 with the default k=4 fails pipeline validation at Run time.
	broken[len(broken)-1].Pipeline.Ensemble.M = 2

	r := &Runner{Concurrency: 1, Dir: dir}
	if _, err := r.Sweep(context.Background(), broken); err == nil {
		t.Fatal("broken spec did not fail the sweep")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.run.gob"))
	if len(files) == 0 {
		t.Fatal("no checkpoints survived the failed sweep")
	}

	want, err := experiment.SerialSweeper{}.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "after-failure-resume", want, got)
}

// TestCheckpointIgnoresStaleSpec: a checkpoint written for one spec must
// not be served for a modified spec (different seed ⇒ different
// fingerprint ⇒ different file), and corrupt checkpoint files are
// recomputed, not trusted.
func TestCheckpointIgnoresStaleSpec(t *testing.T) {
	sc := tinyScale()
	dir := t.TempDir()
	specs := experiment.Fig8Specs(sc, 1, 5)

	r := &Runner{Dir: dir}
	if _, err := r.Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}

	// Same IDs, different ensemble seed: must recompute, and must match
	// the serial run of the modified specs.
	modified := make([]experiment.SweepSpec, len(specs))
	copy(modified, specs)
	for i := range modified {
		modified[i].Pipeline.Ensemble.Seed += 1000
	}
	var fromCkpt int
	r2 := &Runner{Dir: dir, OnRunDone: func(_ int, _ experiment.SweepSpec, _ *experiment.Result, cached bool) {
		if cached {
			fromCkpt++
		}
	}}
	got, err := r2.Sweep(context.Background(), modified)
	if err != nil {
		t.Fatal(err)
	}
	if fromCkpt != 0 {
		t.Fatalf("%d stale checkpoints were trusted", fromCkpt)
	}
	want, err := experiment.SerialSweeper{}.Sweep(context.Background(), modified)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "modified-specs", want, got)

	// Corrupt every checkpoint: the next sweep must recompute cleanly.
	files, _ := filepath.Glob(filepath.Join(dir, "*.run.gob"))
	if len(files) == 0 {
		t.Fatal("no checkpoint files to corrupt")
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err = (&Runner{Dir: dir}).Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	wantOrig, err := experiment.SerialSweeper{}.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "corrupt-recompute", wantOrig, got)
}

func TestSweepRejectsDuplicateIDsWhenCheckpointing(t *testing.T) {
	specs := experiment.Fig8Specs(tinyScale(), 1, 5)
	specs = append(specs, specs[0])
	_, err := (&Runner{Dir: t.TempDir()}).Sweep(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), "unique") {
		t.Fatalf("duplicate IDs accepted: %v", err)
	}
}

// TestCheckpointedResultsAreTrimmed: with checkpointing on, computed and
// restored results are structurally identical — neither carries the
// observers or the raw ensemble.
func TestCheckpointedResultsAreTrimmed(t *testing.T) {
	specs := experiment.Fig8Specs(tinyScale(), 1, 6)
	res, err := (&Runner{Dir: t.TempDir()}).Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Observers != nil || r.Ensemble != nil {
			t.Fatal("checkpointed sweep results must not retain observers/ensembles")
		}
	}
	// Without checkpointing the observers stay available.
	res, err = (&Runner{}).Sweep(context.Background(), specs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Observers == nil {
		t.Fatal("non-checkpointed sweep lost the observers")
	}
}
