package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"repro/internal/experiment"
	"repro/internal/forces"
	"repro/internal/rngx"
	"repro/internal/sim"
	"repro/internal/spec"
)

// GridForce selects the random interaction family of a grid cell; it is
// the spec layer's type — the sweep grid is one face of the declarative
// Spec.
type GridForce = spec.GridForce

// GridSpec is the executable form of a custom sweep grid: a grid over
// type counts × cut-off radii of random-matrix systems, every cell
// averaged over repeated draws. It is built from (and converts back to)
// the declarative spec.Spec — `sopsweep -spec file.json` parses the
// versioned Spec format and runs through GridFromSpec; this struct's own
// JSON tags remain only for the legacy pre-Spec grid files.
//
// A cutoff ≤ 0 means rc = ∞ (JSON has no infinity literal). Zero-valued
// scale fields (m, steps, recordEvery, repeats) inherit the surrounding
// Scale.
type GridSpec struct {
	Name       string    `json:"name"`
	N          int       `json:"n"`
	TypeCounts []int     `json:"typeCounts"`
	Cutoffs    []float64 `json:"cutoffs"`
	Force      GridForce `json:"force"`

	// Scale overrides; 0 inherits the surrounding Scale.
	M           int `json:"m"`
	Steps       int `json:"steps"`
	RecordEvery int `json:"recordEvery"`
	Repeats     int `json:"repeats"`

	// Estimator selects the MI estimator ("" = pipeline default, the
	// corrected KSG-2); K is its k-NN parameter (0 = default 4); Bins
	// the per-dimension bin count of the binned kind.
	Estimator string `json:"estimator"`
	K         int    `json:"k"`
	Bins      int    `json:"bins,omitempty"`
	// Tier selects the estimator tier ("" / "exact" or "approx");
	// Subsample is the approximate tier's per-run evaluation budget
	// (1 ≤ r < m).
	Tier      string `json:"tier,omitempty"`
	Subsample int    `json:"subsample,omitempty"`
	// Decompose additionally records the per-type decomposition;
	// TrackEntropies the per-step entropy profile.
	Decompose      bool `json:"decompose"`
	TrackEntropies bool `json:"trackEntropies,omitempty"`
}

// LoadGridSpec reads and validates a legacy (pre-Spec) JSON grid file.
// New files should use the versioned Spec format; sopsweep accepts both.
func LoadGridSpec(path string) (*GridSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g GridSpec
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("sweep: parse grid spec %s: %w", path, err)
	}
	if err := g.validate(); err != nil {
		return nil, fmt.Errorf("sweep: grid spec %s: %w", path, err)
	}
	return &g, nil
}

// validate delegates to the spec layer's grid validation, so legacy grid
// files and Spec sweeps are held to identical rules.
func (g *GridSpec) validate() error {
	if g.N < 0 || g.M < 0 || g.Steps < 0 || g.RecordEvery < 0 || g.K < 0 {
		return fmt.Errorf("negative counts are invalid")
	}
	sp := g.Spec("", 0)
	return sp.Validate()
}

// Spec converts the grid to its declarative form: the versioned,
// JSON-round-trippable Spec every entry point consumes. The grid's scale
// overrides become explicit ensemble fields; scale names the surrounding
// preset.
func (g *GridSpec) Spec(scale string, seed uint64) spec.Spec {
	sp := spec.Spec{
		Version: spec.Version,
		Name:    g.Name,
		Scale:   scale,
		Seed:    seed,
		Sweep: &spec.Sweep{
			TypeCounts: append([]int(nil), g.TypeCounts...),
			Cutoffs:    append([]float64(nil), g.Cutoffs...),
			Repeats:    g.Repeats,
		},
	}
	f := g.Force
	sp.Sweep.Force = &f
	if g.N > 0 {
		sp.Sim = &spec.Sim{N: g.N}
	}
	if g.M > 0 || g.Steps > 0 || g.RecordEvery > 0 {
		sp.Ensemble = &spec.Ensemble{M: g.M, Steps: g.Steps, RecordEvery: g.RecordEvery}
	}
	if g.Estimator != "" || g.K > 0 || g.Bins > 0 || g.Tier != "" || g.Subsample > 0 || g.Decompose || g.TrackEntropies {
		sp.Estimator = &spec.Estimator{
			Kind:           g.Estimator,
			K:              g.K,
			Bins:           g.Bins,
			Tier:           g.Tier,
			Subsample:      g.Subsample,
			Decompose:      g.Decompose,
			TrackEntropies: g.TrackEntropies,
		}
	}
	return sp
}

// GridFromSpec materialises a grid-sweep Spec as its executable form.
// Scale-derived fields (m/steps/recordEvery/repeats) are left zero — the
// caller resolves them once through sp.EffectiveScale and passes the
// result to Figure.
func GridFromSpec(sp spec.Spec) (*GridSpec, error) {
	if sp.Kind() != spec.KindGrid {
		return nil, fmt.Errorf("sweep: spec %q is not a grid sweep", sp.Name)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	g := &GridSpec{
		Name:       sp.Name,
		TypeCounts: append([]int(nil), sp.Sweep.TypeCounts...),
		Cutoffs:    append([]float64(nil), sp.Sweep.Cutoffs...),
	}
	if sp.Sweep.Force != nil {
		g.Force = *sp.Sweep.Force
	}
	if sp.Sim != nil {
		g.N = sp.Sim.N
	}
	if est := sp.Estimator; est != nil {
		g.Estimator = est.Kind
		g.K = est.K
		g.Bins = est.Bins
		g.Tier = est.Tier
		g.Subsample = est.Subsample
		g.Decompose = est.Decompose
		g.TrackEntropies = est.TrackEntropies
	}
	return g, nil
}

// scale merges the grid's overrides into the surrounding Scale.
func (g *GridSpec) scale(sc experiment.Scale) experiment.Scale {
	if g.M > 0 {
		sc.M = g.M
	}
	if g.Steps > 0 {
		sc.Steps = g.Steps
	}
	if g.RecordEvery > 0 {
		sc.RecordEvery = g.RecordEvery
	}
	if g.Repeats > 0 {
		sc.Repeats = g.Repeats
	}
	return sc
}

// cellForce draws the cell's interaction from the grid's family, using
// the given deterministic sub-stream.
func (g *GridSpec) cellForce(l int, draw rngx.Source) forces.Scaling {
	f := g.Force
	switch f.Family {
	case "f2":
		kLo, kHi := defRange(f.KLo, f.KHi, 1, 10)
		tauLo, tauHi := defRange(f.TauLo, f.TauHi, 1, 10)
		return forces.RandomF2(l, kLo, kHi, tauLo, tauHi, draw)
	default: // "f1", guaranteed by validate
		k := f.K
		if k <= 0 {
			k = 1
		}
		rLo, rHi := defRange(f.RLo, f.RHi, 2, 8)
		return forces.MustF1(forces.ConstantMatrix(l, k), forces.RandomMatrix(l, rLo, rHi, draw))
	}
}

func defRange(lo, hi, dLo, dHi float64) (float64, float64) {
	if lo == 0 && hi == 0 {
		return dLo, dHi
	}
	return lo, hi
}

// Figure builds the grid's run set, executes it through sw, and reduces
// each (typeCount, cutoff) cell to its mean MI curve. Every run's random
// draw and ensemble seed come from rngx.Split sub-streams of the master
// seed indexed by (cell, repeat), so the grid is reproducible and every
// spec is independent of execution order. Cancelling the context stops
// the sweep within one token-grant (completed runs keep any checkpoints).
func (g *GridSpec) Figure(ctx context.Context, sw experiment.Sweeper, sc experiment.Scale, seed uint64) (*experiment.FigureData, error) {
	if sw == nil {
		sw = experiment.SerialSweeper{}
	}
	if err := g.validate(); err != nil {
		return nil, fmt.Errorf("sweep: grid %q: %w", g.Name, err)
	}
	sc = g.scale(sc)
	if sc.Repeats < 1 {
		return nil, fmt.Errorf("sweep: grid %q needs repeats >= 1, got %d", g.Name, sc.Repeats)
	}
	name := g.Name
	if name == "" {
		name = "grid"
	}
	n := g.N
	if n <= 0 {
		n = 20
	}
	typeCounts := g.TypeCounts
	if len(typeCounts) == 0 {
		typeCounts = []int{1}
	}
	cutoffs := g.Cutoffs
	if len(cutoffs) == 0 {
		cutoffs = []float64{math.Inf(1)}
	}

	type cell struct {
		l  int
		rc float64
	}
	var cells []cell
	for _, l := range typeCounts {
		for _, rc := range cutoffs {
			if rc <= 0 {
				rc = math.Inf(1)
			}
			cells = append(cells, cell{l, rc})
		}
	}
	var specs []experiment.SweepSpec
	for ci, c := range cells {
		for rep := 0; rep < sc.Repeats; rep++ {
			draw := rngx.Split(seed, uint64(ci)*1_000_003+uint64(rep)*2+1)
			specs = append(specs, experiment.SweepSpec{
				ID: fmt.Sprintf("%s-l%d-rc%g-rep%d", name, c.l, c.rc, rep),
				Pipeline: experiment.Pipeline{
					Name:           fmt.Sprintf("%s-l%d-rc%g", name, c.l, c.rc),
					Estimator:      experiment.EstimatorKind(g.Estimator),
					K:              g.K,
					Bins:           g.Bins,
					Tier:           experiment.EstimatorTier(g.Tier),
					Subsample:      g.Subsample,
					Decompose:      g.Decompose,
					TrackEntropies: g.TrackEntropies,
					Ensemble: sim.EnsembleConfig{
						Sim: sim.Config{
							N:      n,
							Types:  sim.TypesRoundRobin(n, c.l),
							Force:  g.cellForce(c.l, draw),
							Cutoff: c.rc,
						},
						M:           sc.M,
						Steps:       sc.Steps,
						RecordEvery: sc.RecordEvery,
						Seed:        rngx.Split(seed, uint64(ci)*1_000_033+uint64(rep)*2).Uint64(),
					},
				},
			})
		}
	}
	results, err := sw.Sweep(ctx, specs)
	if err != nil {
		return nil, err
	}
	fd := &experiment.FigureData{
		ID:    name,
		Title: fmt.Sprintf("Custom grid %q: mean MI vs time per (l, rc) cell (%s family)", name, g.Force.Family),
		Notes: fmt.Sprintf("n=%d, %d repeats per cell, master seed splits per (cell, repeat).", n, sc.Repeats),
	}
	for ci, c := range cells {
		times, mi, err := experiment.MeanMICurve(results[ci*sc.Repeats : (ci+1)*sc.Repeats])
		if err != nil {
			return nil, err
		}
		xs := make([]float64, len(times))
		for i, t := range times {
			xs[i] = float64(t)
		}
		sname := fmt.Sprintf("l=%d,rc=%g", c.l, c.rc)
		if math.IsInf(c.rc, 1) {
			sname = fmt.Sprintf("l=%d,rc=inf", c.l)
		}
		fd.Series = append(fd.Series, experiment.Series{Name: sname, X: xs, Y: mi})
	}
	return fd, nil
}
