package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"repro/internal/experiment"
	"repro/internal/forces"
	"repro/internal/rngx"
	"repro/internal/sim"
)

// GridSpec is the JSON description of a custom sweep: a grid over type
// counts × cut-off radii of random-matrix systems, every cell averaged
// over repeated draws. It is the `sopsweep -spec file.json` input for
// experiments outside the named scenario registry.
//
// Example:
//
//	{
//	  "name": "my-grid",
//	  "n": 20,
//	  "typeCounts": [2, 5],
//	  "cutoffs": [5, -1],
//	  "force": {"family": "f1"},
//	  "repeats": 4
//	}
//
// A cutoff ≤ 0 means rc = ∞ (JSON has no infinity literal). Zero-valued
// scale fields (m, steps, recordEvery, repeats) inherit the CLI scale.
type GridSpec struct {
	Name       string    `json:"name"`
	N          int       `json:"n"`
	TypeCounts []int     `json:"typeCounts"`
	Cutoffs    []float64 `json:"cutoffs"`
	Force      GridForce `json:"force"`

	// Scale overrides; 0 inherits the surrounding Scale.
	M           int `json:"m"`
	Steps       int `json:"steps"`
	RecordEvery int `json:"recordEvery"`
	Repeats     int `json:"repeats"`

	// Estimator selects the MI estimator ("" = pipeline default, the
	// corrected KSG-2); K is its k-NN parameter (0 = default 4).
	Estimator string `json:"estimator"`
	K         int    `json:"k"`
	// Decompose additionally records the per-type decomposition.
	Decompose bool `json:"decompose"`
}

// GridForce selects the random interaction family of a grid cell. All
// bounds are optional; zero values take the paper's sweep defaults.
type GridForce struct {
	// Family is "f1" (random preferred distances, the Figs. 9/10 family)
	// or "f2" (random strength/τ Gaussians, the Fig. 8 family).
	Family string  `json:"family"`
	K      float64 `json:"k"`   // f1 constant strength (default 1)
	RLo    float64 `json:"rLo"` // f1 r_αβ range (default [2, 8])
	RHi    float64 `json:"rHi"`
	KLo    float64 `json:"kLo"` // f2 k_αβ range (default [1, 10])
	KHi    float64 `json:"kHi"`
	TauLo  float64 `json:"tauLo"` // f2 τ_αβ range (default [1, 10])
	TauHi  float64 `json:"tauHi"`
}

// LoadGridSpec reads and validates a JSON grid file.
func LoadGridSpec(path string) (*GridSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g GridSpec
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("sweep: parse grid spec %s: %w", path, err)
	}
	if err := g.validate(); err != nil {
		return nil, fmt.Errorf("sweep: grid spec %s: %w", path, err)
	}
	return &g, nil
}

func (g *GridSpec) validate() error {
	switch g.Force.Family {
	case "f1", "f2":
	case "":
		return fmt.Errorf("force.family is required (\"f1\" or \"f2\")")
	default:
		return fmt.Errorf("unknown force.family %q (want \"f1\" or \"f2\")", g.Force.Family)
	}
	for _, l := range g.TypeCounts {
		if l < 1 {
			return fmt.Errorf("typeCounts entries must be >= 1, got %d", l)
		}
	}
	if g.N < 0 || g.M < 0 || g.Steps < 0 || g.RecordEvery < 0 || g.Repeats < 0 || g.K < 0 {
		return fmt.Errorf("negative counts are invalid")
	}
	for _, r := range []struct {
		name   string
		lo, hi float64
	}{
		{"rLo/rHi", g.Force.RLo, g.Force.RHi},
		{"kLo/kHi", g.Force.KLo, g.Force.KHi},
		{"tauLo/tauHi", g.Force.TauLo, g.Force.TauHi},
	} {
		// A pair is either fully omitted (both zero → family default) or
		// a proper positive range; a half-specified pair would silently
		// invert the draw interval.
		if r.lo == 0 && r.hi == 0 {
			continue
		}
		if r.lo <= 0 || r.hi <= r.lo {
			return fmt.Errorf("force.%s must satisfy 0 < lo < hi (or omit both for the default), got [%g, %g)", r.name, r.lo, r.hi)
		}
	}
	return nil
}

// scale merges the grid's overrides into the surrounding Scale.
func (g *GridSpec) scale(sc experiment.Scale) experiment.Scale {
	if g.M > 0 {
		sc.M = g.M
	}
	if g.Steps > 0 {
		sc.Steps = g.Steps
	}
	if g.RecordEvery > 0 {
		sc.RecordEvery = g.RecordEvery
	}
	if g.Repeats > 0 {
		sc.Repeats = g.Repeats
	}
	return sc
}

// cellForce draws the cell's interaction from the grid's family, using
// the given deterministic sub-stream.
func (g *GridSpec) cellForce(l int, draw rngx.Source) forces.Scaling {
	f := g.Force
	switch f.Family {
	case "f2":
		kLo, kHi := defRange(f.KLo, f.KHi, 1, 10)
		tauLo, tauHi := defRange(f.TauLo, f.TauHi, 1, 10)
		return forces.RandomF2(l, kLo, kHi, tauLo, tauHi, draw)
	default: // "f1", guaranteed by validate
		k := f.K
		if k <= 0 {
			k = 1
		}
		rLo, rHi := defRange(f.RLo, f.RHi, 2, 8)
		return forces.MustF1(forces.ConstantMatrix(l, k), forces.RandomMatrix(l, rLo, rHi, draw))
	}
}

func defRange(lo, hi, dLo, dHi float64) (float64, float64) {
	if lo == 0 && hi == 0 {
		return dLo, dHi
	}
	return lo, hi
}

// Figure builds the grid's run set, executes it through sw, and reduces
// each (typeCount, cutoff) cell to its mean MI curve. Every run's random
// draw and ensemble seed come from rngx.Split sub-streams of the master
// seed indexed by (cell, repeat), so the grid is reproducible and every
// spec is independent of execution order.
func (g *GridSpec) Figure(sw experiment.Sweeper, sc experiment.Scale, seed uint64) (*experiment.FigureData, error) {
	if sw == nil {
		sw = experiment.SerialSweeper{}
	}
	if err := g.validate(); err != nil {
		return nil, fmt.Errorf("sweep: grid %q: %w", g.Name, err)
	}
	sc = g.scale(sc)
	if sc.Repeats < 1 {
		return nil, fmt.Errorf("sweep: grid %q needs repeats >= 1, got %d", g.Name, sc.Repeats)
	}
	name := g.Name
	if name == "" {
		name = "grid"
	}
	n := g.N
	if n <= 0 {
		n = 20
	}
	typeCounts := g.TypeCounts
	if len(typeCounts) == 0 {
		typeCounts = []int{1}
	}
	cutoffs := g.Cutoffs
	if len(cutoffs) == 0 {
		cutoffs = []float64{math.Inf(1)}
	}

	type cell struct {
		l  int
		rc float64
	}
	var cells []cell
	for _, l := range typeCounts {
		for _, rc := range cutoffs {
			if rc <= 0 {
				rc = math.Inf(1)
			}
			cells = append(cells, cell{l, rc})
		}
	}
	var specs []experiment.SweepSpec
	for ci, c := range cells {
		for rep := 0; rep < sc.Repeats; rep++ {
			draw := rngx.Split(seed, uint64(ci)*1_000_003+uint64(rep)*2+1)
			specs = append(specs, experiment.SweepSpec{
				ID: fmt.Sprintf("%s-l%d-rc%g-rep%d", name, c.l, c.rc, rep),
				Pipeline: experiment.Pipeline{
					Name:      fmt.Sprintf("%s-l%d-rc%g", name, c.l, c.rc),
					Estimator: experiment.EstimatorKind(g.Estimator),
					K:         g.K,
					Decompose: g.Decompose,
					Ensemble: sim.EnsembleConfig{
						Sim: sim.Config{
							N:      n,
							Types:  sim.TypesRoundRobin(n, c.l),
							Force:  g.cellForce(c.l, draw),
							Cutoff: c.rc,
						},
						M:           sc.M,
						Steps:       sc.Steps,
						RecordEvery: sc.RecordEvery,
						Seed:        rngx.Split(seed, uint64(ci)*1_000_033+uint64(rep)*2).Uint64(),
					},
				},
			})
		}
	}
	results, err := sw.Sweep(specs)
	if err != nil {
		return nil, err
	}
	fd := &experiment.FigureData{
		ID:    name,
		Title: fmt.Sprintf("Custom grid %q: mean MI vs time per (l, rc) cell (%s family)", name, g.Force.Family),
		Notes: fmt.Sprintf("n=%d, %d repeats per cell, master seed splits per (cell, repeat).", n, sc.Repeats),
	}
	for ci, c := range cells {
		times, mi, err := experiment.MeanMICurve(results[ci*sc.Repeats : (ci+1)*sc.Repeats])
		if err != nil {
			return nil, err
		}
		xs := make([]float64, len(times))
		for i, t := range times {
			xs[i] = float64(t)
		}
		sname := fmt.Sprintf("l=%d,rc=%g", c.l, c.rc)
		if math.IsInf(c.rc, 1) {
			sname = fmt.Sprintf("l=%d,rc=inf", c.l)
		}
		fd.Series = append(fd.Series, experiment.Series{Name: sname, X: xs, Y: mi})
	}
	return fd, nil
}
