package sweep

import (
	"context"
	"sort"

	"repro/internal/experiment"
	"repro/internal/forces"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Scenario is a named, ready-to-run sweep family: it builds its run grid
// from a Scale and a master seed and reduces the results to one figure.
// The registry covers the paper's sweep figures plus the example-derived
// workloads, so `sopsweep -scenario <name>` regenerates any of them with
// concurrency and checkpointing; custom grids come in through GridSpec.
type Scenario struct {
	Name string
	Desc string
	Run  func(ctx context.Context, sw experiment.Sweeper, sc experiment.Scale, seed uint64) (*experiment.FigureData, error)
}

// Spec returns the scenario's declarative form: the Spec that `sopsweep
// -spec` (or a Session) runs to reproduce this scenario at the given
// scale preset and master seed. Scenario specs round-trip losslessly
// through JSON.
func (s Scenario) Spec(scale string, seed uint64) spec.Spec {
	return spec.Spec{Version: spec.Version, Name: s.Name, Scenario: s.Name, Scale: scale, Seed: seed}
}

// Scenarios returns the registry sorted by name.
func Scenarios() []Scenario {
	out := make([]Scenario, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupScenario finds a scenario by name.
func LookupScenario(name string) (Scenario, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// meanCurveFigure reduces one averaged series to a single-curve figure.
func meanCurveFigure(ctx context.Context, id, title, notes string, sw experiment.Sweeper, sc experiment.Scale, seed uint64, build func(rep int) sim.Config) (*experiment.FigureData, error) {
	times, mi, err := experiment.AverageMI(ctx, sw, sc, seed, build)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(times))
	for i, t := range times {
		xs[i] = float64(t)
	}
	return &experiment.FigureData{
		ID:     id,
		Title:  title,
		Series: []experiment.Series{{Name: "I(W1..Wn)", X: xs, Y: mi}},
		Notes:  notes,
	}, nil
}

// cellAdhesionConfig is the Fig. 1 nucleus-and-membranes tissue (the
// paper's biological motivation) as a measurable MI workload: 4 types
// under F¹ with the nested differential-adhesion matrix. Strong adhesion
// needs the small step (sim.MaxStableDt).
func cellAdhesionConfig() sim.Config {
	r := forces.MustMatrix([][]float64{
		{1.0, 1.8, 2.6, 3.4},
		{1.8, 1.4, 2.2, 3.0},
		{2.6, 2.2, 1.8, 2.6},
		{3.4, 3.0, 2.6, 2.2},
	})
	return sim.Config{
		N:          40,
		Force:      forces.MustF1(forces.ConstantMatrix(4, 4), r),
		Cutoff:     8,
		Dt:         0.01,
		InitRadius: 2.5,
	}
}

var registry = []Scenario{
	{
		Name: "fig4",
		Desc: "flagship 3-type F1 system: mean MI(t) over repeated ensemble seeds",
		Run: func(ctx context.Context, sw experiment.Sweeper, sc experiment.Scale, seed uint64) (*experiment.FigureData, error) {
			return meanCurveFigure(ctx, "fig4", "Multi-information vs time (n=50, l=3, rc=5, F1), seed-averaged",
				"Repeats independent ensembles of the Fig. 4 experiment, mean curve.",
				sw, sc, seed, func(int) sim.Config { return experiment.Fig4Params() })
		},
	},
	{
		Name: "fig8",
		Desc: "deltaI vs number of types (F2, random matrices, l = 1..10)",
		Run: func(ctx context.Context, sw experiment.Sweeper, sc experiment.Scale, seed uint64) (*experiment.FigureData, error) {
			return experiment.Fig8TypeCountSweep(ctx, sw, sc, 10, seed)
		},
	},
	{
		Name: "fig9",
		Desc: "MI(t) for cut-off radii rc in {2.5,5,7.5,10,15,inf} (n=l=20, F1)",
		Run: func(ctx context.Context, sw experiment.Sweeper, sc experiment.Scale, seed uint64) (*experiment.FigureData, error) {
			return experiment.Fig9CutoffSweep(ctx, sw, sc, seed)
		},
	},
	{
		Name: "fig10",
		Desc: "MI(t) for l in {20,5} x rc in {10,15,inf} (n=20, F1)",
		Run: func(ctx context.Context, sw experiment.Sweeper, sc experiment.Scale, seed uint64) (*experiment.FigureData, error) {
			return experiment.Fig10TypesVsCutoff(ctx, sw, sc, seed)
		},
	},
	{
		Name: "rings",
		Desc: "single-type two-ring collective (Figs. 5/7): mean MI(t) over ensemble seeds",
		Run: func(ctx context.Context, sw experiment.Sweeper, sc experiment.Scale, seed uint64) (*experiment.FigureData, error) {
			return meanCurveFigure(ctx, "rings", "Single-type rings: mean multi-information vs time (Fig. 5 family)",
				"rc > 2r: two concentric polygons; the inner ring's free rotation carries the MI.",
				sw, sc, seed, func(int) sim.Config { return experiment.Fig5Params() })
		},
	},
	{
		Name: "cell-adhesion",
		Desc: "4-type differential-adhesion tissue (Fig. 1 morphology): mean MI(t)",
		Run: func(ctx context.Context, sw experiment.Sweeper, sc experiment.Scale, seed uint64) (*experiment.FigureData, error) {
			return meanCurveFigure(ctx, "cell-adhesion", "Nucleus-and-membranes tissue: mean multi-information vs time",
				"Differential adhesion sorts the mixed ball into nested layers while MI grows.",
				sw, sc, seed, func(int) sim.Config { return cellAdhesionConfig() })
		},
	},
	{
		Name: "long-range",
		Desc: "type count vs interaction range: l in {20,5} x rc in {2.5,7.5,inf} (examples/longrange)",
		Run:  longRangeScenario,
	},
}

// longRangeScenario is the examples/longrange study as a sweep: the
// Fig. 10 comparison at the example's radii (l ∈ {20, 5} × rc ∈
// {2.5, 7.5, ∞}), expressed as the GridSpec it is — one grid-sweep
// implementation serves both the JSON path and this registry entry. The
// grid's f1 family is exactly RandomTypedF1Config (k = 1, r ∈ [2, 8]).
func longRangeScenario(ctx context.Context, sw experiment.Sweeper, sc experiment.Scale, seed uint64) (*experiment.FigureData, error) {
	g := &GridSpec{
		Name:       "long-range",
		N:          20,
		TypeCounts: []int{20, 5},
		Cutoffs:    []float64{2.5, 7.5, -1}, // -1 → rc = ∞
		Force:      GridForce{Family: "f1"},
	}
	fd, err := g.Figure(ctx, sw, sc, seed)
	if err != nil {
		return nil, err
	}
	fd.Title = "Multi-information vs time: type count x interaction range (n=20, F1)"
	fd.Notes = "Paper Secs. 6.1/7.2: long-range interactions organise many-type collectives; " +
		"under local interactions fewer types organise more."
	return fd, nil
}
