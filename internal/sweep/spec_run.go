package sweep

import (
	"context"
	"fmt"

	"repro/internal/experiment"
	"repro/internal/spec"
)

// RunSpec executes any Spec — a named scenario, a custom sweep grid, or a
// single measurement run — through the given sweeper and reduces it to
// its figure. It is the one dispatcher every entry point (sopsweep,
// sopfigures, a Session) funnels through, so a spec file means exactly
// the same experiment everywhere. A nil sweeper runs serially.
//
// Cancelling the context stops the underlying sweep within one
// token-grant and returns the context's error; runs that completed under
// a checkpointing sweeper keep their checkpoints, so re-running the same
// spec resumes.
func RunSpec(ctx context.Context, sw experiment.Sweeper, sp spec.Spec) (*experiment.FigureData, error) {
	if sw == nil {
		sw = experiment.SerialSweeper{}
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	sc, err := sp.EffectiveScale()
	if err != nil {
		return nil, err
	}
	switch sp.Kind() {
	case spec.KindScenario:
		s, ok := LookupScenario(sp.Scenario)
		if !ok {
			return nil, fmt.Errorf("sweep: unknown scenario %q (known: %s)", sp.Scenario, scenarioNames())
		}
		return s.Run(ctx, sw, sc, sp.Seed)
	case spec.KindGrid:
		g, err := GridFromSpec(sp)
		if err != nil {
			return nil, err
		}
		return g.Figure(ctx, sw, sc, sp.Seed)
	default:
		p, err := sp.Pipeline()
		if err != nil {
			return nil, err
		}
		id := sp.Name
		if id == "" {
			id = "run"
		}
		results, err := sw.Sweep(ctx, []experiment.SweepSpec{{ID: id, Pipeline: p}})
		if err != nil {
			return nil, err
		}
		res := results[0]
		if len(res.Decomp) > 0 {
			// A Decompose run renders in the Fig. 11 presentation, so
			// replaying a dumped fig11 spec reproduces the same series.
			return experiment.DecompositionFigure(res, id,
				fmt.Sprintf("Normalized decomposition of multi-information (%s)", id)), nil
		}
		xs := make([]float64, len(res.Times))
		for i, t := range res.Times {
			xs[i] = float64(t)
		}
		return &experiment.FigureData{
			ID:     id,
			Title:  fmt.Sprintf("Multi-information vs time (%s)", id),
			Series: []experiment.Series{{Name: "I(W1..Wn)", X: xs, Y: res.MI}},
		}, nil
	}
}

// scenarioNames lists the registry, for error messages.
func scenarioNames() string {
	out := ""
	for i, s := range Scenarios() {
		if i > 0 {
			out += ", "
		}
		out += s.Name
	}
	return out
}
