package sweep

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiment"
)

func TestScenarioRegistry(t *testing.T) {
	all := Scenarios()
	if len(all) < 7 {
		t.Fatalf("%d scenarios registered, want >= 7", len(all))
	}
	seen := map[string]bool{}
	for i, s := range all {
		if s.Name == "" || s.Desc == "" || s.Run == nil {
			t.Fatalf("scenario %d incomplete: %+v", i, s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
		if i > 0 && all[i-1].Name > s.Name {
			t.Fatal("registry not sorted by name")
		}
	}
	for _, name := range []string{"fig4", "fig8", "fig9", "fig10", "rings", "cell-adhesion", "long-range"} {
		if _, ok := LookupScenario(name); !ok {
			t.Fatalf("scenario %q missing", name)
		}
	}
	if _, ok := LookupScenario("nope"); ok {
		t.Fatal("unknown scenario found")
	}
}

// TestScenariosRunAtTinyScale executes every registered scenario through
// a concurrent Runner at a minimal scale: curves must be present and the
// serial reference must agree bit for bit (the scenarios inherit the
// equivalence contract of the drivers they wrap).
func TestScenariosRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep-heavy")
	}
	sc := experiment.Scale{M: 12, Steps: 10, RecordEvery: 10, Repeats: 2}
	for _, s := range Scenarios() {
		if s.Name == "fig8" || s.Name == "fig9" || s.Name == "fig10" {
			continue // covered (at full series counts) by the driver equivalence test
		}
		want, err := s.Run(context.Background(), experiment.SerialSweeper{}, sc, 3)
		if err != nil {
			t.Fatalf("%s serial: %v", s.Name, err)
		}
		got, err := s.Run(context.Background(), &Runner{Concurrency: 3}, sc, 3)
		if err != nil {
			t.Fatalf("%s concurrent: %v", s.Name, err)
		}
		if len(got.Series) == 0 {
			t.Fatalf("%s produced no series", s.Name)
		}
		sameFigure(t, s.Name, want, got)
	}
}

func TestGridSpecLoadAndValidate(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{
		"name": "demo",
		"n": 10,
		"typeCounts": [1, 2],
		"cutoffs": [5, -1],
		"force": {"family": "f1"},
		"m": 10, "steps": 8, "recordEvery": 4, "repeats": 2
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGridSpec(good)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "demo" || len(g.TypeCounts) != 2 {
		t.Fatalf("parsed grid = %+v", g)
	}

	for name, body := range map[string]string{
		"no-family.json":   `{"typeCounts": [1]}`,
		"bad-family.json":  `{"force": {"family": "f9"}}`,
		"bad-types.json":   `{"force": {"family": "f1"}, "typeCounts": [0]}`,
		"negative.json":    `{"force": {"family": "f2"}, "m": -1}`,
		"half-range.json":  `{"force": {"family": "f1", "rLo": 5}}`,
		"inverted.json":    `{"force": {"family": "f2", "tauLo": 9, "tauHi": 2}}`,
		"nonpositive.json": `{"force": {"family": "f1", "rLo": -1, "rHi": 4}}`,
		"not-json.json":    `{`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadGridSpec(p); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if _, err := LoadGridSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestGridFigureEquivalenceAndShape runs a tiny custom grid serially and
// concurrently with checkpointing: same curves, one series per (l, rc)
// cell, infinite-cutoff encoding honoured.
func TestGridFigureEquivalenceAndShape(t *testing.T) {
	g := &GridSpec{
		Name:       "demo",
		N:          10,
		TypeCounts: []int{1, 2},
		Cutoffs:    []float64{5, -1}, // -1 → rc = ∞
		Force:      GridForce{Family: "f2"},
		M:          10, Steps: 8, RecordEvery: 4, Repeats: 2,
	}
	sc := experiment.TestScale()
	want, err := g.Figure(context.Background(), nil, sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Series) != 4 {
		t.Fatalf("%d series, want 4 cells", len(want.Series))
	}
	foundInf := false
	for _, s := range want.Series {
		if s.Name == "l=2,rc=inf" {
			foundInf = true
		}
	}
	if !foundInf {
		t.Fatalf("rc=inf cell missing: %+v", want.Series)
	}
	got, err := g.Figure(context.Background(), &Runner{Concurrency: 4, Dir: t.TempDir()}, sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	sameFigure(t, "grid", want, got)

	bad := &GridSpec{Force: GridForce{Family: "f1"}, Repeats: -1}
	empty := experiment.Scale{}
	if _, err := bad.Figure(context.Background(), nil, empty, 1); err == nil {
		t.Fatal("repeats<1 grid accepted")
	}
}
