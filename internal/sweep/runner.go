// Package sweep orchestrates batches of measurement pipelines — the
// paper's evaluation is mostly sweeps (Fig. 8's type-count grid, the
// Figs. 9/10 radius × type-count families, the Sec. 5.3 estimator
// comparison), each a set of fully independent experiment.Pipeline runs.
//
// The Runner executes such a set concurrently under one global worker
// budget: a shared workpool.Tokens pool that the simulation, alignment
// and estimation workers of every in-flight run draw from, so a sweep of
// small-M runs keeps every core busy while a sweep of huge runs cannot
// oversubscribe the machine. Each run's results are deterministic — the
// per-sample rngx.Split sub-streams and the fixed-order estimator
// reductions make every pipeline bit-identical for any worker count — so
// Runner output is bit-identical to the serial loops for every
// concurrency setting (enforced by the equivalence suite).
//
// With a ResultStore attached (Store, or the Dir shorthand), every
// completed run is persisted — one versioned gob file per run under
// DirStore, modeled on sim/persist.go — and a later Sweep over the same
// specs resumes from the store: an interrupted figure regeneration at
// paper scale loses at most the runs in flight. The store is also the
// seam the remote package distributes over: workers in other processes
// write through the same directory, so re-handing a run after a crash is
// idempotent.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/experiment"
	"repro/internal/infotheory"
	"repro/internal/workpool"
)

// Runner executes sweep specs concurrently. The zero value runs with
// GOMAXPROCS in-flight runs, a fresh GOMAXPROCS-token budget per call,
// and no checkpointing. A Runner is safe for sequential reuse; share one
// Tokens pool explicitly to budget several concurrent Sweep calls
// together.
type Runner struct {
	// Concurrency bounds the number of in-flight pipeline runs
	// (0 = GOMAXPROCS). It is a memory bound — each in-flight run holds
	// its observer datasets — not a CPU bound; CPU is governed by Tokens.
	Concurrency int
	// Tokens is the global worker budget shared by all stages of all
	// in-flight runs; nil allocates a fresh GOMAXPROCS budget per call.
	Tokens *workpool.Tokens
	// Store enables checkpointing: runs are resolved against the store
	// (keyed by spec ID + fingerprint) before being computed, and
	// persisted through it after. Takes precedence over Dir.
	Store ResultStore
	// Dir is shorthand for Store = DirStore{Dir}: one versioned gob file
	// per completed run. Empty (with a nil Store) disables checkpointing.
	Dir string
	// OnRunDone, when non-nil, is invoked after each run completes (or
	// is restored from its checkpoint), serialised by an internal mutex.
	OnRunDone func(i int, spec experiment.SweepSpec, res *experiment.Result, fromCheckpoint bool)
	// OnProgress, when non-nil, receives sweep-level progress events
	// (ProgressRunCheckpointed, ProgressRunDone), and is installed as the
	// per-pipeline progress listener of every run that does not carry its
	// own. May be invoked concurrently; must be cheap and non-blocking.
	OnProgress func(experiment.ProgressEvent)
	// Engines, when non-nil, is a shared estimator-engine pool handed to
	// every run that does not carry its own (a Session does this), so a
	// long sweep recycles engine scratch across runs. Runtime only.
	Engines *infotheory.EnginePool

	mu sync.Mutex // serialises OnRunDone
}

// budget resolves the shared token pool for one call.
func (r *Runner) budget() *workpool.Tokens {
	if r.Tokens != nil {
		return r.Tokens
	}
	return workpool.NewTokens(0)
}

// concurrency resolves the in-flight run bound.
func (r *Runner) concurrency() int {
	if r.Concurrency > 0 {
		return r.Concurrency
	}
	return runtime.GOMAXPROCS(0)
}

// store resolves the checkpoint store for one call: an explicit Store
// wins, Dir is shorthand for the directory store, nil disables
// checkpointing.
func (r *Runner) store() ResultStore {
	if r.Store != nil {
		return r.Store
	}
	if r.Dir != "" {
		return DirStore{Dir: r.Dir}
	}
	return nil
}

// Sweep executes every spec and returns the results in spec order,
// implementing experiment.Sweeper. Failed sweeps keep the checkpoints of
// the runs that did complete, so re-running the same Sweep resumes
// rather than restarts.
//
// Cancelling the context stops the sweep within one token-grant: no new
// run starts, runs in flight abort at their own next grant (and are not
// checkpointed), and the context's error is returned verbatim — runs that
// completed before the cancellation keep their checkpoints, so a
// re-issued Sweep resumes from exactly what finished. A run that fails
// for a reason of its own while the cancellation is in flight is NOT
// absorbed into the context error: the run's error is reported (joined
// with the context's), so worker-side failures always surface.
//
// When checkpointing is enabled, results carry only the persisted fields
// (Times, MI, Decomp, Entropies, Labels, EquilibratedFraction) whether
// they were computed or restored — Observers and the raw Ensemble are
// never part of a sweep result in that mode, keeping fresh and resumed
// sweeps structurally identical.
func (r *Runner) Sweep(ctx context.Context, specs []experiment.SweepSpec) ([]*experiment.Result, error) {
	st := r.store()
	if st != nil {
		if err := CheckUniqueIDs(specs); err != nil {
			return nil, err
		}
	}
	tok := r.budget()
	results := make([]*experiment.Result, len(specs))
	err := workpool.RunSharedCtx(ctx, len(specs), r.concurrency(), nil, func(_, i int) error {
		spec := specs[i]
		fp, fpOK := fingerprint(spec)
		if st != nil && fpOK {
			if res, ok := st.Load(spec.ID, fp); ok {
				results[i] = res
				r.notify(i, spec, res, true)
				return nil
			}
		}
		p := spec.Pipeline
		p.Tokens = tok
		if p.Engines == nil {
			p.Engines = r.Engines
		}
		if p.OnProgress == nil {
			p.OnProgress = r.OnProgress
		}
		res, err := p.RunCtx(ctx)
		if err != nil {
			return runError(ctx, spec.ID, err)
		}
		if st != nil {
			res = trimResult(res)
			if fpOK {
				if err := st.Save(spec.ID, fp, res); err != nil {
					return fmt.Errorf("sweep run %q: %w", spec.ID, err)
				}
				r.emit(experiment.ProgressEvent{Kind: experiment.ProgressRunCheckpointed, Run: spec.ID, Index: i})
			}
		}
		results[i] = res
		r.notify(i, spec, res, false)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runError reports a failed run without masking it behind a concurrent
// cancellation. A pure cancellation — the run aborted only because the
// context was cancelled — returns the context's error verbatim,
// preserving the Sweep cancellation contract. A run that failed for a
// reason of its own is wrapped with its spec ID, and joined with the
// context's error when a cancellation raced it, so both remain matchable
// with errors.Is and the real failure survives into the coordinator log.
func runError(ctx context.Context, id string, err error) error {
	cancelled := ctx.Err()
	if cancelled != nil && errors.Is(err, cancelled) {
		return cancelled
	}
	wrapped := fmt.Errorf("sweep run %q: %w", id, err)
	if cancelled != nil {
		return errors.Join(wrapped, cancelled)
	}
	return wrapped
}

// Do executes n independent jobs under the runner's budget (one token
// held per job) with at most Concurrency worker goroutines, implementing
// the job half of experiment.Sweeper. fn receives a dense worker slot
// index for per-worker scratch state.
func (r *Runner) Do(ctx context.Context, n int, fn func(worker, i int) error) error {
	return workpool.RunSharedCtx(ctx, n, r.concurrency(), r.budget(), fn)
}

// emit dispatches a sweep-level progress event if a listener is attached.
func (r *Runner) emit(ev experiment.ProgressEvent) {
	if r.OnProgress != nil {
		r.OnProgress(ev)
	}
}

func (r *Runner) notify(i int, spec experiment.SweepSpec, res *experiment.Result, fromCheckpoint bool) {
	r.emit(experiment.ProgressEvent{Kind: experiment.ProgressRunDone, Run: spec.ID, Index: i, FromCheckpoint: fromCheckpoint})
	if r.OnRunDone == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.OnRunDone(i, spec, res, fromCheckpoint)
}

// trimResult strips the fields checkpoints do not persist, so computed
// and restored results are indistinguishable.
func trimResult(res *experiment.Result) *experiment.Result {
	t := *res
	t.Observers = nil
	t.Ensemble = nil
	return &t
}

// compile-time check: Runner implements the driver-facing interface.
var _ experiment.Sweeper = (*Runner)(nil)
