package sweep

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiment"
)

// approxGrid is a tiny grid sweep on the approximate estimator tier.
func approxGrid() *GridSpec {
	return &GridSpec{
		Name:       "approx-grid",
		N:          10,
		TypeCounts: []int{2},
		Cutoffs:    []float64{5},
		Force:      GridForce{Family: "f1"},
		Tier:       "approx",
		Subsample:  6,
	}
}

// TestApproxTierResumeBitIdentical is the kill/resume contract on the
// approximate tier: a sweep resumed from a partial checkpoint directory
// must reproduce the uninterrupted figure byte for byte — the subsample
// draw is keyed by (seed, step), never by which process evaluates it —
// and the per-step error bars must survive the checkpoint round trip
// bit-identically.
func TestApproxTierResumeBitIdentical(t *testing.T) {
	g := approxGrid()
	sc := tinyScale()
	const seed = 77
	reference, err := g.Figure(context.Background(), experiment.SerialSweeper{}, sc, seed)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	r := &Runner{Concurrency: 2, Dir: dir}
	first, err := g.Figure(context.Background(), r, sc, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(figureCSV(t, reference), figureCSV(t, first)) {
		t.Fatal("checkpointed approx sweep differs from the serial reference")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.run.gob"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoints written (err %v)", err)
	}

	// "Kill": drop one completed run, keep the rest.
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	var restored, computed int
	resume := &Runner{Concurrency: 2, Dir: dir, OnRunDone: func(_ int, _ experiment.SweepSpec, res *experiment.Result, fromCheckpoint bool) {
		if fromCheckpoint {
			restored++
		} else {
			computed++
		}
		if len(res.MIStdErr) != len(res.MI) {
			t.Errorf("run %q: %d error bars for %d MI points", res.Name, len(res.MIStdErr), len(res.MI))
		}
	}}
	resumed, err := g.Figure(context.Background(), resume, sc, seed)
	if err != nil {
		t.Fatal(err)
	}
	if computed != 1 || restored != len(files)-1 {
		t.Fatalf("restored %d / computed %d, want %d / 1", restored, computed, len(files)-1)
	}
	if !bytes.Equal(figureCSV(t, reference), figureCSV(t, resumed)) {
		t.Fatal("resumed approx sweep differs from the uninterrupted one")
	}
}

// TestApproxTierKeysOwnCheckpoints: exact-tier and approximate-tier runs
// of the same grid must never share a checkpoint file — the tier is part
// of the fingerprint when (and only when) it changes the numbers.
func TestApproxTierKeysOwnCheckpoints(t *testing.T) {
	sc := tinyScale()
	const seed = 78
	dir := t.TempDir()

	exact := approxGrid()
	exact.Tier, exact.Subsample = "", 0
	r := &Runner{Concurrency: 1, Dir: dir}
	exactFig, err := exact.Figure(context.Background(), r, sc, seed)
	if err != nil {
		t.Fatal(err)
	}

	// Same grid on the approximate tier, same directory: every run must
	// be computed (no cross-tier restore), and the curves must differ
	// from the exact ones (same draw seeds, different evaluation).
	var restored int
	r2 := &Runner{Concurrency: 1, Dir: dir, OnRunDone: func(_ int, _ experiment.SweepSpec, _ *experiment.Result, fromCheckpoint bool) {
		if fromCheckpoint {
			restored++
		}
	}}
	approxFig, err := approxGrid().Figure(context.Background(), r2, sc, seed)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 {
		t.Fatalf("%d approx runs restored from exact-tier checkpoints", restored)
	}
	same := true
	for s := range exactFig.Series {
		for j := range exactFig.Series[s].Y {
			if math.Float64bits(exactFig.Series[s].Y[j]) != math.Float64bits(approxFig.Series[s].Y[j]) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("approximate tier reproduced the exact curves exactly — tier not threaded through the sweep")
	}
}
