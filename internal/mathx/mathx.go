// Package mathx supplies the special functions and numerically careful
// statistics helpers that the standard library lacks and that the
// Kraskov–Stögbauer–Grassberger estimator and the analysis pipeline need:
// the digamma function ψ (Eq. 18 of the paper), compensated summation, and
// descriptive statistics over float64 slices.
package mathx

import (
	"math"
	"sort"
)

// EulerGamma is the Euler–Mascheroni constant γ = −ψ(1).
const EulerGamma = 0.57721566490153286060651209008240243104215933593992

// Digamma returns ψ(x), the logarithmic derivative of the gamma function,
// for real x. It uses the recurrence ψ(x) = ψ(x+1) − 1/x to shift the
// argument above 6 and then the asymptotic series
//
//	ψ(x) ≈ ln x − 1/(2x) − 1/(12x²) + 1/(120x⁴) − 1/(252x⁶) + …
//
// For non-positive integers (poles of ψ) it returns NaN. Negative
// non-integer arguments are handled through the reflection formula
// ψ(1−x) − ψ(x) = π·cot(πx).
//
// Accuracy is ~1e-12 over the range used by the KSG estimator (positive
// integer counts), which is far below the statistical error of the
// estimator itself.
func Digamma(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return math.NaN()
	}
	if x <= 0 {
		if x == math.Trunc(x) {
			return math.NaN() // pole
		}
		// Reflection: ψ(x) = ψ(1−x) − π·cot(πx).
		return Digamma(1-x) - math.Pi/math.Tan(math.Pi*x)
	}
	var result float64
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion in 1/x².
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	// Bernoulli-number coefficients B_{2n}/(2n): 1/12, −1/120, 1/252,
	// −1/240, 1/132.
	series := inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2*(1.0/132)))))
	return result - series
}

// HarmonicNumber returns H_n = Σ_{i=1..n} 1/i, with H_0 = 0. It is the
// discrete counterpart of the digamma recurrence ψ(n+1) = −γ + H_n and is
// used to cross-check Digamma in tests.
func HarmonicNumber(n int) float64 {
	var s float64
	for i := 1; i <= n; i++ {
		s += 1 / float64(i)
	}
	return s
}

// Log2 converts a natural-log quantity to bits.
func Log2(x float64) float64 { return x / math.Ln2 }

// Sq returns x².
func Sq(x float64) float64 { return x * x }

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// KahanSum accumulates float64 values with Kahan–Babuška compensation,
// reducing the error of long force and entropy accumulations from O(n·ε) to
// O(ε).
type KahanSum struct {
	sum, c float64
}

// Add accumulates x.
func (k *KahanSum) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// Sum returns the compensated sum of xs.
func Sum(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance of xs, or NaN when
// fewer than two values are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var k KahanSum
	for _, x := range xs {
		d := x - m
		k.Add(d * d)
	}
	return k.Sum() / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs. It returns (NaN, NaN) for an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (the "type 7" rule, the R and NumPy
// default). It returns NaN for an empty slice and does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	q = Clamp(q, 0, 1)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Linspace returns n points spanning [a, b] inclusive. n must be ≥ 2.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic("mathx: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}

// ApproxEqual reports whether a and b agree within absolute tolerance atol
// or relative tolerance rtol, whichever is looser.
func ApproxEqual(a, b, atol, rtol float64) bool {
	diff := math.Abs(a - b)
	if diff <= atol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rtol*scale
}
