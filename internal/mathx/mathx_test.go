package mathx

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDigammaKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{1, -EulerGamma},
		{0.5, -EulerGamma - 2*math.Ln2},
		{2, 1 - EulerGamma},
		{3, 1.5 - EulerGamma},
		{10, -EulerGamma + HarmonicNumber(9)},
		{100, -EulerGamma + HarmonicNumber(99)},
	}
	for _, c := range cases {
		got := Digamma(c.x)
		if math.Abs(got-c.want) > 1e-10 {
			t.Errorf("Digamma(%g) = %.15f, want %.15f", c.x, got, c.want)
		}
	}
}

func TestDigammaRecurrence(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x across a wide range, including the shifted
	// small-argument branch.
	for _, x := range []float64{0.1, 0.7, 1.3, 2.5, 5.9, 6.1, 17.5, 123.4} {
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Errorf("recurrence broken at x=%g: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestDigammaReflection(t *testing.T) {
	// ψ(1−x) − ψ(x) = π·cot(πx) for non-integer x.
	for _, x := range []float64{-0.5, -1.3, -2.7} {
		lhs := Digamma(1-x) - Digamma(x)
		rhs := math.Pi / math.Tan(math.Pi*x)
		if math.Abs(lhs-rhs) > 1e-8 {
			t.Errorf("reflection broken at x=%g: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestDigammaPoles(t *testing.T) {
	for _, x := range []float64{0, -1, -2, -10} {
		if !math.IsNaN(Digamma(x)) {
			t.Errorf("Digamma(%g) should be NaN at pole", x)
		}
	}
	if !math.IsNaN(Digamma(math.NaN())) {
		t.Error("Digamma(NaN) should be NaN")
	}
}

func TestDigammaMonotoneOnPositives(t *testing.T) {
	// ψ is strictly increasing on (0, ∞).
	prev := Digamma(0.05)
	for x := 0.1; x < 50; x += 0.05 {
		cur := Digamma(x)
		if cur <= prev {
			t.Fatalf("Digamma not increasing at x=%g", x)
		}
		prev = cur
	}
}

func TestDigammaAsymptotic(t *testing.T) {
	// ψ(x) → ln x − 1/(2x) for large x.
	for _, x := range []float64{1e3, 1e6} {
		want := math.Log(x) - 1/(2*x)
		if math.Abs(Digamma(x)-want) > 1e-7 {
			t.Errorf("asymptote broken at %g", x)
		}
	}
}

func TestHarmonicNumber(t *testing.T) {
	if HarmonicNumber(0) != 0 {
		t.Error("H_0 != 0")
	}
	if HarmonicNumber(1) != 1 {
		t.Error("H_1 != 1")
	}
	if math.Abs(HarmonicNumber(4)-(1+0.5+1.0/3+0.25)) > 1e-15 {
		t.Error("H_4 wrong")
	}
}

func TestKahanSumCatastrophicCancellation(t *testing.T) {
	// 1 + 1e-16 added 1e5 times: naive summation loses the small terms.
	var k KahanSum
	k.Add(1)
	for i := 0; i < 100000; i++ {
		k.Add(1e-16)
	}
	want := 1 + 1e-11
	if math.Abs(k.Sum()-want) > 1e-15 {
		t.Errorf("Kahan sum = %.18f, want %.18f", k.Sum(), want)
	}
}

func TestSumMatchesNaiveOnBenignData(t *testing.T) {
	xs := []float64{1, 2, 3, 4.5, -2.5}
	if Sum(xs) != 8 {
		t.Errorf("Sum = %v", Sum(xs))
	}
}

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Errorf("Mean = %v", m)
	}
	// Population variance is 4; sample (n−1) variance is 32/7.
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v", v)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", s)
	}
}

func TestMeanEmptyIsNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one sample should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v %v", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Error("MinMax(nil) should be NaN, NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); math.Abs(q-2.5) > 1e-12 {
		t.Errorf("median = %v", q)
	}
	if q := Median([]float64{5, 1, 3}); q != 3 {
		t.Errorf("odd median = %v", q)
	}
	// Quantile must not mutate its input.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-15 {
			t.Fatalf("Linspace[%d] = %v", i, xs[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Linspace(…, 1) should panic")
		}
	}()
	Linspace(0, 1, 1)
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1, 1+1e-13, 1e-12, 0) {
		t.Error("atol path broken")
	}
	if !ApproxEqual(1e6, 1e6*(1+1e-10), 0, 1e-9) {
		t.Error("rtol path broken")
	}
	if ApproxEqual(1, 2, 1e-12, 1e-12) {
		t.Error("clearly different values reported equal")
	}
}

// Property: quantile is monotone in q (uses testing/quick over q pairs).
func TestQuantileMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	f := func(a, b float64) bool {
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if math.IsNaN(qa) || math.IsNaN(qb) {
			return true
		}
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Kahan sum of shuffled data equals sum of sorted data to high
// precision.
func TestSumPermutationInvariantProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 50; trial++ {
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = r.NormFloat64() * math.Pow(10, float64(r.IntN(8)))
		}
		s1 := Sum(xs)
		r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		s2 := Sum(xs)
		if !ApproxEqual(s1, s2, 1e-9, 1e-12) {
			t.Fatalf("sum not permutation invariant: %v vs %v", s1, s2)
		}
	}
}
