package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

// TestRepoIsClean is the enforcement point of the mechanized contracts:
// the whole module, checked by the full default suite, must produce zero
// diagnostics. Every true positive is either fixed or carries a
// //sopslint:ignore directive with its justification, so a new finding
// anywhere in the repo fails this test (and `go vet -vettool` in CI).
func TestRepoIsClean(t *testing.T) {
	pkgs, err := load.Packages("", "repro/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	diags, err := lint.Run(pkgs, lint.DefaultChecks())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	}
}
