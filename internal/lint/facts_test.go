package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// fakeFactObjects builds detached type objects to key facts on: a
// function and a type name in a synthetic package. Fact identity is
// (package path, object key, fact type), so a fresh object with the
// same coordinates must resolve the same fact after a decode.
func fakeFactObjects() (*types.Func, *types.TypeName) {
	pkg := types.NewPackage("corpus/p", "p")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	fn := types.NewFunc(token.NoPos, pkg, "F", sig)
	tn := types.NewTypeName(token.NoPos, pkg, "T", nil)
	types.NewNamed(tn, types.NewStruct(nil, nil), nil)
	return fn, tn
}

// TestFactGobRoundTrip encodes one fact of every registered type and
// decodes them back: values must survive bit-exactly, and the wire form
// must be canonical (re-encoding the decoded set is byte-identical).
func TestFactGobRoundTrip(t *testing.T) {
	fn, tn := fakeFactObjects()
	facts := analysis.NewFactSet()
	facts.ExportObjectFact(fn, &TaintFact{Ret: 5, Escapes: 2, Sinks: 9, Src: "time.Now"})
	facts.ExportObjectFact(fn, &BoundedFact{})
	facts.ExportObjectFact(fn, &RootMintFact{})
	facts.ExportObjectFact(fn, &ErrWrapFact{Params: 3})
	facts.ExportObjectFact(fn, &AllocFact{Allocates: true})
	facts.ExportObjectFact(tn, &NoHashFact{Fields: []string{"Tokens", "Workers"}})

	data, err := facts.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(analysis.VetxMagic)) {
		t.Fatalf("encoded facts do not start with the vetx magic header")
	}

	got := analysis.NewFactSet()
	if err := got.Decode(data); err != nil {
		t.Fatal(err)
	}
	if got.Len() != facts.Len() {
		t.Fatalf("decoded %d facts, want %d", got.Len(), facts.Len())
	}

	// Resolve through fresh objects with the same coordinates: the wire
	// identity is positional, not pointer-based.
	fn2, tn2 := fakeFactObjects()
	var taint TaintFact
	if !got.ImportObjectFact(fn2, &taint) {
		t.Fatal("TaintFact did not survive the round trip")
	}
	if taint != (TaintFact{Ret: 5, Escapes: 2, Sinks: 9, Src: "time.Now"}) {
		t.Errorf("TaintFact = %+v", taint)
	}
	var bounded BoundedFact
	if !got.ImportObjectFact(fn2, &bounded) {
		t.Error("BoundedFact did not survive the round trip")
	}
	var mint RootMintFact
	if !got.ImportObjectFact(fn2, &mint) {
		t.Error("RootMintFact did not survive the round trip")
	}
	var wrap ErrWrapFact
	if !got.ImportObjectFact(fn2, &wrap) {
		t.Fatal("ErrWrapFact did not survive the round trip")
	}
	if wrap.Params != 3 {
		t.Errorf("ErrWrapFact.Params = %d, want 3", wrap.Params)
	}
	var alloc AllocFact
	if !got.ImportObjectFact(fn2, &alloc) {
		t.Fatal("AllocFact did not survive the round trip")
	}
	if !alloc.Allocates {
		t.Error("AllocFact.Allocates = false, want true")
	}
	var nohash NoHashFact
	if !got.ImportObjectFact(tn2, &nohash) {
		t.Fatal("NoHashFact did not survive the round trip")
	}
	if len(nohash.Fields) != 2 || nohash.Fields[0] != "Tokens" || nohash.Fields[1] != "Workers" {
		t.Errorf("NoHashFact.Fields = %v", nohash.Fields)
	}

	// Canonical form: the decoded set re-encodes byte-identically, so
	// cmd/go's content-addressed cache sees stable .vetx outputs.
	data2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("re-encoding a decoded fact set changed the bytes")
	}
}

// TestVetxDecodeErrors pins the hard-failure contract: a facts file
// that is not completely readable must error, never pass for empty.
func TestVetxDecodeErrors(t *testing.T) {
	if err := analysis.NewFactSet().Decode([]byte("garbage, not a vetx file")); err == nil {
		t.Error("decoding garbage succeeded")
	} else if !strings.Contains(err.Error(), "not a sopslint facts file") {
		t.Errorf("garbage decode error = %v", err)
	}

	fn, _ := fakeFactObjects()
	facts := analysis.NewFactSet()
	facts.ExportObjectFact(fn, &TaintFact{Ret: 1, Src: "time.Now"})
	data, err := facts.Encode()
	if err != nil {
		t.Fatal(err)
	}
	truncated := data[:len(data)-3]
	if err := analysis.NewFactSet().Decode(truncated); err == nil {
		t.Error("decoding a truncated facts file succeeded")
	} else if !strings.Contains(err.Error(), "corrupt facts file") {
		t.Errorf("truncated decode error = %v", err)
	}

	// Header-only (empty set) is valid: out-of-scope units write these.
	empty, err := analysis.NewFactSet().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := analysis.NewFactSet().Decode(empty); err != nil {
		t.Errorf("decoding an empty facts file: %v", err)
	}
}

// TestUnitRejectsCorruptVetx drives the unitchecker entry point against
// a dependency whose .vetx is corrupt: loading the unit must fail with
// an error naming the dependency, not proceed with an empty fact set.
func TestUnitRejectsCorruptVetx(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "x.go")
	if err := os.WriteFile(src, []byte("package x\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "dep.vetx")
	if err := os.WriteFile(vetx, []byte("junk"), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := map[string]any{
		"ID":          "repro/x",
		"ImportPath":  "repro/x",
		"GoFiles":     []string{src},
		"PackageVetx": map[string]string{"repro/dep": vetx},
		"VetxOutput":  filepath.Join(dir, "out.vetx"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	_, err = load.Unit(cfgPath, nil)
	if err == nil {
		t.Fatal("loading a unit with a corrupt dependency .vetx succeeded")
	}
	if !strings.Contains(err.Error(), "repro/dep") || !strings.Contains(err.Error(), "not a sopslint facts file") {
		t.Errorf("corrupt vetx error = %v", err)
	}
}

// TestFactFlowRequiresFacts is the negative control for the factflow
// corpus: with the fact store stubbed out, the cross-package
// diagnostics in factflow/b disappear — proving they ride imported
// facts, not some local approximation.
func TestFactFlowRequiresFacts(t *testing.T) {
	checks := []Check{{Analyzer: Walltime}, {Analyzer: Dettaint}}
	countB := func(pkgs []*analysis.Package) int {
		t.Helper()
		diags, err := Run(pkgs, checks)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, d := range diags {
			if strings.Contains(filepath.ToSlash(d.Pos.Filename), "factflow/b/") {
				n++
			}
		}
		return n
	}

	pkgs, err := load.Corpus("testdata", "factflow/a", "factflow/b")
	if err != nil {
		t.Fatal(err)
	}
	if n := countB(pkgs); n != 2 {
		t.Errorf("with facts: %d diagnostics in factflow/b, want 2", n)
	}

	pkgs, err = load.Corpus("testdata", "factflow/a", "factflow/b")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		p.Facts = nil
	}
	if n := countB(pkgs); n != 0 {
		t.Errorf("without facts: %d diagnostics in factflow/b, want 0", n)
	}
}
