package lint

import "testing"

func TestMapiterCorpus(t *testing.T) { runCorpus(t, soloCheck(Mapiter), "mapiter") }

func TestRNGSourceCorpus(t *testing.T) { runCorpus(t, soloCheck(RNGSource), "rngsource") }

func TestWalltimeCorpus(t *testing.T) { runCorpus(t, soloCheck(Walltime), "walltime") }

func TestCtxFlowCorpus(t *testing.T) { runCorpus(t, soloCheck(CtxFlow), "ctxflow", "workpool") }

func TestTokenPairCorpus(t *testing.T) { runCorpus(t, soloCheck(TokenPair), "tokenpair", "workpool") }

func TestGoroleakCorpus(t *testing.T) { runCorpus(t, soloCheck(Goroleak), "goroleak") }

func TestChansendCorpus(t *testing.T) { runCorpus(t, soloCheck(Chansend), "chansend") }

func TestDettaintCorpus(t *testing.T) { runCorpus(t, soloCheck(Dettaint), "dettaint") }

func TestSpecCoverageCorpus(t *testing.T) {
	runCorpus(t, soloCheck(SpecCoverage), "speccoverage", "speccoverage/dep")
}

func TestErrVerbatimCorpus(t *testing.T) {
	runCorpus(t, soloCheck(ErrVerbatim), "errverbatim", "errverbatim/wrapx")
}

func TestAllocFreeCorpus(t *testing.T) {
	runCorpus(t, soloCheck(AllocFree), "allocfree", "allocfree/helper")
}

// TestFactFlowCorpus is the cross-package fact proof: the taint facts
// exported while checking factflow/a are what let walltime and dettaint
// report inside factflow/b (see TestFactFlowRequiresFacts for the
// negative control).
func TestFactFlowCorpus(t *testing.T) {
	runCorpus(t, []Check{{Analyzer: Walltime}, {Analyzer: Dettaint}}, "factflow/a", "factflow/b")
}

// TestGoroleakFactsCorpus pins BoundedFact flow: a spawn of another
// package's exported loop is joined only if that loop's own body is
// bounded.
func TestGoroleakFactsCorpus(t *testing.T) {
	runCorpus(t, soloCheck(Goroleak), "goroleakx", "goroleakx/watcher")
}

// TestCtxFlowFactsCorpus pins RootMintFact flow: dropping a held
// context at a cross-package boundary that mints its own root.
func TestCtxFlowFactsCorpus(t *testing.T) {
	runCorpus(t, soloCheck(CtxFlow), "ctxflowx", "ctxflowx/rootsrc")
}

// TestSuppressionCorpus exercises the //sopslint:ignore directive: it
// runs the walltime analyzer over a corpus where every clock read is
// paired with a directive — valid (suppressing), misnamed (not
// suppressing), or malformed (a diagnostic in its own right).
func TestSuppressionCorpus(t *testing.T) { runCorpus(t, soloCheck(Walltime), "suppress") }

// TestDefaultChecksScope pins the package scoping of the suite: which
// contract binds which import paths.
func TestDefaultChecksScope(t *testing.T) {
	byName := map[string]Check{}
	for _, c := range DefaultChecks() {
		byName[c.Name] = c
	}
	cases := []struct {
		analyzer string
		path     string
		want     bool
	}{
		// mapiter binds only the result-producing packages.
		{"mapiter", "repro/internal/infotheory", true},
		{"mapiter", "repro/internal/sweep", true},
		{"mapiter", "repro/internal/vec", false},
		{"mapiter", "repro/cmd/sops", false},
		// rngsource binds the whole module except rngx itself.
		{"rngsource", "repro/internal/rngx", false},
		{"rngsource", "repro/internal/sim", true},
		{"rngsource", "repro/cmd/sops", true},
		{"rngsource", "fmt", false},
		// walltime and ctxflow bind root + internal/..., not CLIs and
		// not the lint suite itself.
		{"walltime", "repro", true},
		{"walltime", "repro/internal/sweep", true},
		{"walltime", "repro/cmd/sops", false},
		{"walltime", "repro/internal/lint/load", false},
		{"ctxflow", "repro/internal/experiment", true},
		{"ctxflow", "repro/cmd/sops", false},
		// tokenpair binds everything in the module.
		{"tokenpair", "repro/cmd/sops", true},
		{"tokenpair", "repro/internal/workpool", true},
		{"tokenpair", "os", false},
		// goroleak and chansend bind library code like walltime/ctxflow:
		// root + internal/..., not CLIs (which own program lifetime).
		{"goroleak", "repro/internal/sweep/remote", true},
		{"goroleak", "repro/internal/workpool", true},
		{"goroleak", "repro/cmd/sops", false},
		{"goroleak", "repro/internal/lint", false},
		{"chansend", "repro/internal/workpool", true},
		{"chansend", "repro/cmd/sops", false},
		// dettaint binds the result-producing packages plus the spec
		// package (the fingerprint lives there).
		{"dettaint", "repro/internal/experiment", true},
		{"dettaint", "repro/internal/spec", true},
		{"dettaint", "repro/internal/vec", false},
		{"dettaint", "repro/cmd/sops", false},
		// speccoverage, errverbatim and allocfree bind library code:
		// root + internal/..., not CLIs and not the lint suite.
		{"speccoverage", "repro/internal/spec", true},
		{"speccoverage", "repro/cmd/sops", false},
		{"errverbatim", "repro/internal/sweep/remote", true},
		{"errverbatim", "repro/internal/lint", false},
		{"allocfree", "repro/internal/infotheory", true},
		{"allocfree", "repro/cmd/sops", false},
		{"allocfree", "repro/internal/lint/analysis", false},
	}
	for _, c := range cases {
		chk, ok := byName[c.analyzer]
		if !ok {
			t.Fatalf("no default check named %q", c.analyzer)
		}
		if got := chk.AppliesTo(c.path); got != c.want {
			t.Errorf("%s applies to %s = %v, want %v", c.analyzer, c.path, got, c.want)
		}
	}
	// Test-variant import paths scope like their base package.
	if got := basePath("repro/internal/sim [repro/internal/sim.test]"); got != "repro/internal/sim" {
		t.Errorf("basePath stripped to %q", got)
	}
}
