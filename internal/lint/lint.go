// Package lint is sopslint: eleven custom static analyzers that
// mechanize this repository's written contracts — bit-identical
// determinism, rngx-derived randomness, wall-clock-free fingerprints,
// context-aware cancellation, balanced worker-token accounting, joined
// goroutine lifecycles, cancellable producer sends,
// nondeterminism-free result/fingerprint flows, fingerprint coverage
// of every spec knob, verbatim cancellation errors, and
// allocation-free hot paths (DESIGN.md, "Mechanized contracts"). The
// suite runs as `go vet -vettool=$(sopslint)` in CI, standalone via
// cmd/sopslint, and in-process through the meta-test that keeps this
// repository at zero diagnostics.
//
// The syntax-shape analyzers work on the AST directly; walltime,
// dettaint, goroleak and chansend sit on the flow-sensitive layer in
// internal/lint/analysis — a per-function CFG, a worklist dataflow
// solver, and one-level call summaries — so sanctioned idioms
// (collect-sort-iterate, deferred Done on all paths, Duration
// instrumentation columns) pass without annotation.
//
// Analysis is modular across packages: before any analyzer runs on a
// package, ExportFacts publishes that package's gob-serialized facts
// (taint summaries, bounded goroutine launchers, context-root minting,
// error-wrapping helpers, allocation summaries, nohash exclusions) to
// its FactSet, and analyzers consult imported facts at cross-package
// call and type boundaries. Under `go vet` the facts ride the .vetx
// files of the unitchecker protocol; in-process, load.Packages returns
// packages in dependency order sharing one fact set — the two paths
// see identical diagnostics.
//
// A finding that is a sanctioned exception is silenced with a directive
// on (or immediately above) the offending line:
//
//	//sopslint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive names one or more analyzers (comma-separated, no
// spaces) and must give a reason; a directive naming an unknown
// analyzer, or giving no reason, is itself a diagnostic, so
// suppressions cannot rot silently.
package lint

import (
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// A Check pairs an analyzer with the set of packages its contract binds.
type Check struct {
	*analysis.Analyzer
	// AppliesTo reports whether the analyzer runs on the package with
	// the given import path.
	AppliesTo func(pkgPath string) bool
}

// resultProducing lists the packages whose outputs feed figures, sweep
// checkpoints or persisted results — the scope of the mapiter
// determinism contract.
var resultProducing = map[string]bool{
	"repro/internal/infotheory":   true,
	"repro/internal/infodynamics": true,
	"repro/internal/sweep":        true,
	"repro/internal/experiment":   true,
	"repro/internal/observer":     true,
	"repro/internal/statcomplex":  true,
}

// inModule reports whether path belongs to this module.
func inModule(path string) bool {
	return path == "repro" || strings.HasPrefix(path, "repro/")
}

// contractScope is the root package plus internal/... minus the lint
// suite itself: the code whose behaviour reaches fingerprints,
// checkpoints and result streams. CLIs (cmd/...) and examples are
// outside — they own program lifetime, so wall clocks and root contexts
// are legitimate there.
func contractScope(path string) bool {
	if strings.HasPrefix(path, "repro/internal/lint") {
		return false
	}
	return path == "repro" || strings.HasPrefix(path, "repro/internal/")
}

// Analyzers returns the eleven sopslint analyzers.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{Mapiter, RNGSource, Walltime, CtxFlow, TokenPair, Goroleak, Chansend, Dettaint, SpecCoverage, ErrVerbatim, AllocFree}
}

// DefaultChecks returns the suite with each analyzer scoped to the
// packages its contract covers (see DESIGN.md, "Mechanized contracts").
func DefaultChecks() []Check {
	return []Check{
		{Mapiter, func(p string) bool { return resultProducing[p] }},
		{RNGSource, func(p string) bool { return inModule(p) && p != "repro/internal/rngx" }},
		{Walltime, contractScope},
		{CtxFlow, contractScope},
		{TokenPair, inModule},
		{Goroleak, contractScope},
		{Chansend, contractScope},
		{Dettaint, func(p string) bool { return resultProducing[p] || p == "repro/internal/spec" }},
		{SpecCoverage, contractScope},
		{ErrVerbatim, contractScope},
		{AllocFree, contractScope},
	}
}

// Run applies the checks to the packages, resolves //sopslint:ignore
// directives, and returns the surviving diagnostics sorted by position.
func Run(pkgs []*analysis.Package, checks []Check) ([]analysis.Diagnostic, error) {
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		// Publish this package's facts before analyzing it, so checks
		// on it — and, with pkgs in dependency order, on everything
		// that imports it — see the exports.
		ExportFacts(pkg)
		var diags []analysis.Diagnostic
		for _, c := range checks {
			if c.AppliesTo != nil && !c.AppliesTo(basePath(pkg.Path)) {
				continue
			}
			ds, err := analysis.Run(c.Analyzer, pkg)
			if err != nil {
				return nil, err
			}
			diags = append(diags, ds...)
		}
		all = append(all, applyDirectives(pkg, diags)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// basePath strips the test-variant suffix `go vet` appends to import
// paths ("repro/internal/sim [repro/internal/sim.test]"), so package
// scoping holds under vettool invocation too.
func basePath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}
