package lint

import (
	"fmt"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

const directivePrefix = "//sopslint:ignore"

// directive is one parsed //sopslint:ignore comment. The analyzer
// field may be a comma-separated list ("mapiter,walltime"); splitting
// and validating the names is applyDirectives' job, so a malformed
// list still carries its position here.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
}

// fileDirectives extracts every sopslint directive from the package.
// Directives are ordinary comments as far as gofmt is concerned, but
// follow the //go: convention of no space after the slashes, so they
// survive formatting attached to their line.
func fileDirectives(pkg *analysis.Package) []directive {
	var out []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				name, reason, _ := strings.Cut(text, " ")
				out = append(out, directive{
					pos:      pkg.Fset.Position(c.Pos()),
					analyzer: name,
					reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return out
}

// applyDirectives filters diagnostics through the package's
// //sopslint:ignore directives: a directive suppresses the named
// analyzers' findings on its own line and on the line directly below
// (the directive-above-the-statement form). The analyzer field is a
// comma-separated list; each known name suppresses independently, and
// each unknown name is its own diagnostic — one typo in a list does
// not silently void the rest, and does not hide that it is a typo.
// Malformed directives — unknown analyzer name, or no reason — surface
// as diagnostics of the pseudo-analyzer "sopslint", so every
// suppression stays auditable.
func applyDirectives(pkg *analysis.Package, diags []analysis.Diagnostic) []analysis.Diagnostic {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}

	type key struct {
		file     string
		line     int
		analyzer string
	}
	suppressed := map[key]bool{}
	var out []analysis.Diagnostic
	for _, d := range fileDirectives(pkg) {
		if d.analyzer == "" {
			out = append(out, analysis.Diagnostic{
				Pos:      d.pos,
				Analyzer: "sopslint",
				Message:  "//sopslint:ignore needs an analyzer name and a reason: //sopslint:ignore <analyzer>[,<analyzer>...] <reason>",
			})
			continue
		}
		for _, name := range strings.Split(d.analyzer, ",") {
			switch {
			case name == "":
				out = append(out, analysis.Diagnostic{
					Pos:      d.pos,
					Analyzer: "sopslint",
					Message:  "empty analyzer name in //sopslint:ignore list " + d.analyzer,
				})
			case !known[name]:
				out = append(out, analysis.Diagnostic{
					Pos:      d.pos,
					Analyzer: "sopslint",
					Message:  fmt.Sprintf("unknown analyzer %q in //sopslint:ignore directive", name),
				})
			case d.reason == "":
				out = append(out, analysis.Diagnostic{
					Pos:      d.pos,
					Analyzer: "sopslint",
					Message:  "//sopslint:ignore " + name + " needs a reason",
				})
			default:
				suppressed[key{d.pos.Filename, d.pos.Line, name}] = true
				suppressed[key{d.pos.Filename, d.pos.Line + 1, name}] = true
			}
		}
	}
	for _, d := range diags {
		if suppressed[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
