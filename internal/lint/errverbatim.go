package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// ErrVerbatim enforces verbatim propagation of context cancellation
// errors.
//
// Contract (DESIGN.md): callers distinguish "the user cancelled" from
// "the computation failed" with errors.Is(err, context.Canceled), and
// the sweep coordinator drops cancelled shards instead of recording
// them as failures. That test only works if every layer between
// ctx.Done() and the caller returns the context error verbatim. Three
// shapes break the chain, and ErrVerbatim flags them all:
//
//   - wrapping: fmt.Errorf("...: %w", ctx.Err()) changes nothing for
//     errors.Is but invites the next refactor to drop the %w; the
//     sanctioned idiom is to return ctx.Err() bare and let the caller
//     add context;
//   - replacing: returning errors.New/fmt.Errorf-fabricated errors
//     from a cancellation branch (case <-ctx.Done(), if ctx.Err() !=
//     nil) discards the sentinel entirely;
//   - laundering through a helper: passing the context error to a
//     wrapper function — local or, via ErrWrapFact, in another package
//     — that folds it into a new error.
//
// Values are tracked through locals (err := ctx.Err()), and
// context.Canceled, context.DeadlineExceeded, context.Cause(ctx) and
// ctx.Err() all count as cancellation errors.
var ErrVerbatim = &analysis.Analyzer{
	Name: "errverbatim",
	Doc:  "require context cancellation errors to be returned verbatim, not wrapped or replaced",
	Run:  runErrVerbatim,
}

func runErrVerbatim(pass *analysis.Pass) error {
	sums := errWrapSummaries(pass)
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cancel := cancelErrObjs(pass, fd.Body)
			checkErrVerbatim(pass, fd, cancel, sums)
		}
	}
	return nil
}

// cancelErrObjs collects local objects holding a context cancellation
// error: idents assigned (directly or through other tracked idents)
// from ctx.Err(), context.Cause, or the context sentinels. Iterated to
// a fixpoint so err2 := err is tracked too.
func cancelErrObjs(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	objs := map[types.Object]bool{}
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, rhs := range st.Rhs {
					id, ok := st.Lhs[i].(*ast.Ident)
					if !ok || !isCancelExpr(pass, rhs, objs) {
						continue
					}
					if obj := pass.ObjectOf(id); obj != nil && !objs[obj] {
						objs[obj] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) != len(st.Values) {
					return true
				}
				for i, rhs := range st.Values {
					if !isCancelExpr(pass, rhs, objs) {
						continue
					}
					if obj := pass.ObjectOf(st.Names[i]); obj != nil && !objs[obj] {
						objs[obj] = true
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			return objs
		}
	}
}

// isCancelExpr reports whether e evaluates to a context cancellation
// error: ctx.Err(), context.Cause(ctx), the Canceled/DeadlineExceeded
// sentinels, or an ident tracked in objs.
func isCancelExpr(pass *analysis.Pass, e ast.Expr, objs map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.ObjectOf(e)
		if obj == nil {
			return false
		}
		if objs[obj] {
			return true
		}
		return (obj.Name() == "Canceled" || obj.Name() == "DeadlineExceeded") && pkgPathIs(obj.Pkg(), "context")
	case *ast.SelectorExpr:
		obj := pass.ObjectOf(e.Sel)
		if obj == nil {
			return false
		}
		return (obj.Name() == "Canceled" || obj.Name() == "DeadlineExceeded") && pkgPathIs(obj.Pkg(), "context")
	case *ast.CallExpr:
		fn := calleeFunc(pass, e)
		if fn == nil {
			return false
		}
		return (fn.Name() == "Err" || fn.Name() == "Cause") && pkgPathIs(fn.Pkg(), "context")
	}
	return false
}

// checkErrVerbatim walks one declaration and reports the three
// verbatim-contract violations.
func checkErrVerbatim(pass *analysis.Pass, fd *ast.FuncDecl, cancel map[types.Object]bool, sums map[*types.Func]uint32) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass, n)
			if fn == nil {
				return true
			}
			// Rule 1: wrapping via fmt.Errorf.
			if fn.Name() == "Errorf" && pkgPathIs(fn.Pkg(), "fmt") {
				for _, arg := range n.Args[min(1, len(n.Args)):] {
					if isCancelExpr(pass, arg, cancel) {
						pass.Reportf(n.Pos(), "%s wraps the context cancellation error in fmt.Errorf: return ctx.Err() verbatim so errors.Is(err, context.Canceled) holds for every caller, or annotate //sopslint:ignore errverbatim <reason>", fd.Name.Name)
						return true
					}
				}
				return true
			}
			// Rule 2: laundering through a wrapper helper, local or
			// (via ErrWrapFact) in another package.
			mask, known := sums[fn]
			if !known {
				var wf ErrWrapFact
				if pass.ImportObjectFact(fn, &wf) {
					mask, known = wf.Params, true
				}
			}
			if known && mask != 0 {
				for i, arg := range n.Args {
					if i < 32 && mask&(1<<uint(i)) != 0 && isCancelExpr(pass, arg, cancel) {
						pass.Reportf(n.Pos(), "%s passes the context cancellation error to %s, which wraps it into a new error: return ctx.Err() verbatim so errors.Is(err, context.Canceled) holds for every caller, or annotate //sopslint:ignore errverbatim <reason>", fd.Name.Name, calleeLabel(fn))
						return true
					}
				}
			}
		case *ast.CommClause:
			// Rule 3a: case <-ctx.Done(): return <fabricated error>.
			if commObservesDone(pass, n.Comm) {
				reportFabricatedReturns(pass, fd, n.Body, cancel)
			}
			return true
		case *ast.IfStmt:
			// Rule 3b: if ctx.Err() != nil { return <fabricated error> }.
			if condObservesCancel(pass, n.Cond, cancel) {
				reportFabricatedReturns(pass, fd, []ast.Stmt{n.Body}, cancel)
			}
			return true
		}
		return true
	})
}

// commObservesDone reports whether a select comm statement receives
// from ctx.Done().
func commObservesDone(pass *analysis.Pass, comm ast.Stmt) bool {
	var recv ast.Expr
	switch st := comm.(type) {
	case *ast.ExprStmt:
		recv = st.X
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			recv = st.Rhs[0]
		}
	}
	un, ok := ast.Unparen(recv).(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(un.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Name() == "Done" && pkgPathIs(fn.Pkg(), "context")
}

// condObservesCancel reports whether cond is a nil check on a
// cancellation error: ctx.Err() != nil, err != nil with err tracked.
func condObservesCancel(pass *analysis.Pass, cond ast.Expr, cancel map[types.Object]bool) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilIdent(pass, y) {
		return isCancelExpr(pass, x, cancel)
	}
	if isNilIdent(pass, x) {
		return isCancelExpr(pass, y, cancel)
	}
	return false
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.ObjectOf(id).(*types.Nil)
	return isNil
}

// reportFabricatedReturns flags return statements inside a
// cancellation branch whose error result is fabricated — errors.New,
// or fmt.Errorf that does not carry the context error. Returns that
// propagate a tracked cancellation value verbatim are the sanctioned
// shape and pass untouched.
func reportFabricatedReturns(pass *analysis.Pass, fd *ast.FuncDecl, body []ast.Stmt, cancel map[types.Object]bool) {
	for _, st := range body {
		ast.Inspect(st, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				call, ok := ast.Unparen(res).(*ast.CallExpr)
				if !ok {
					continue
				}
				fn := calleeFunc(pass, call)
				if fn == nil {
					continue
				}
				fabricated := fn.Name() == "New" && pkgPathIs(fn.Pkg(), "errors")
				if fn.Name() == "Errorf" && pkgPathIs(fn.Pkg(), "fmt") {
					fabricated = true
					for _, arg := range call.Args {
						if isCancelExpr(pass, arg, cancel) {
							fabricated = false // rule 1 reports the wrap instead
						}
					}
				}
				if fabricated {
					pass.Reportf(ret.Pos(), "%s observes cancellation but returns a fabricated error, discarding the context sentinel: return ctx.Err() verbatim so errors.Is(err, context.Canceled) holds for every caller, or annotate //sopslint:ignore errverbatim <reason>", fd.Name.Name)
				}
			}
			return true
		})
	}
}

// errWrapSummaries computes, per package-local declaration, the mask of
// parameters that the function folds into a new error — directly via a
// fmt.Errorf argument, or one level deep through another local wrapper.
// Memoized on the package so errverbatim and the fact exporter share
// one computation.
func errWrapSummaries(pass *analysis.Pass) map[*types.Func]uint32 {
	return pass.Pkg.Memo("lint.errWrapSummaries", func() any {
		decls := localDeclsFor(pass)
		sums := map[*types.Func]uint32{}
		// Two rounds: round 1 sees direct fmt.Errorf wraps, round 2
		// sees params laundered through a round-1 wrapper.
		for round := 0; round < 2; round++ {
			for fn, fd := range decls {
				if fd.Body == nil {
					continue
				}
				sums[fn] |= wrapMask(pass, fd, sums)
			}
		}
		return sums
	}).(map[*types.Func]uint32)
}

// wrapMask returns the bitmask of fd's parameters that reach an
// error-wrap site, given the wrapper summaries computed so far.
func wrapMask(pass *analysis.Pass, fd *ast.FuncDecl, sums map[*types.Func]uint32) uint32 {
	errType := types.Universe.Lookup("error").Type()
	params := map[types.Object]uint{}
	i := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.ObjectOf(name)
				if obj != nil && i < 32 && types.AssignableTo(obj.Type(), errType) {
					params[obj] = uint(i)
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	if len(params) == 0 {
		return 0
	}
	var mask uint32
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		wraps := func(arg ast.Expr) {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				return
			}
			if bit, tracked := params[pass.ObjectOf(id)]; tracked {
				mask |= 1 << bit
			}
		}
		if fn.Name() == "Errorf" && pkgPathIs(fn.Pkg(), "fmt") {
			for _, arg := range call.Args[min(1, len(call.Args)):] {
				wraps(arg)
			}
			return true
		}
		if calleeMask := sums[fn]; calleeMask != 0 {
			for j, arg := range call.Args {
				if j < 32 && calleeMask&(1<<uint(j)) != 0 {
					wraps(arg)
				}
			}
		}
		return true
	})
	return mask
}

// exportErrWrapFacts publishes an ErrWrapFact for every exported
// declaration that wraps one of its parameters into a new error, so
// errverbatim in dependent packages can catch cross-package laundering.
func exportErrWrapFacts(pass *analysis.Pass) {
	for fn, mask := range errWrapSummaries(pass) {
		if mask != 0 && fn.Exported() {
			pass.ExportObjectFact(fn, &ErrWrapFact{Params: mask})
		}
	}
}
