package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// pkgPathIs reports whether pkg is the package named by want, where want
// is either a full import path ("time") or a repo-internal leaf
// ("workpool"). Corpus packages under testdata use bare leaf paths, so
// leaf matching keeps the analyzers testable without replicating the
// module layout.
func pkgPathIs(pkg *types.Package, want string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == want || strings.HasSuffix(p, "/"+want)
}

// calleeFunc resolves a call expression to the function or method object
// it invokes, or nil for builtins, conversions and indirect calls.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

// isPkgFunc reports whether the call invokes the named package-level
// function (e.g. pkg "time", name "Now").
func isPkgFunc(pass *analysis.Pass, call *ast.CallExpr, pkg, name string) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Name() == name && pkgPathIs(fn.Pkg(), pkg)
}

// mentionsObject reports whether expr references obj.
func mentionsObject(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	if obj == nil || expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isInteger reports whether t's underlying type is an integer kind —
// the types whose addition is exact and order-independent, unlike
// floats, whose rounding makes sums depend on summation order.
func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
