package lint

// This file defines the suite's cross-package facts — the durable
// observations one package's analysis exports for its dependents — and
// the fact pass that computes them. Facts make the flow-sensitive
// analyzers genuinely interprocedural across package boundaries: the
// fingerprint flow spec → experiment → sweep, the goroutine lifecycles
// coordinated across internal/sweep/remote, and the cancellation-error
// identity contract all span packages, and one-package-local summaries
// stop exactly where those contracts start to matter.
//
// In-process (meta-test, standalone) the packages of a run share one
// analysis.FactSet and are visited in dependency order; under
// `go vet -vettool` the same facts ride the .vetx files of the
// unitchecker protocol (see internal/lint/load and cmd/sopslint). Both
// paths run this same fact pass, so they see identical results.

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Fact is the suite's fact interface: a gob-encodable, object-keyed
// observation exported by one package's analysis and imported by its
// dependents (an alias of the analysis-layer interface, re-exported as
// the suite's vocabulary).
type Fact = analysis.Fact

// TaintFact is a function's exported taint summary: the same
// (ret, escapes, sinks) triple the in-package summaries carry, so the
// taint engine applies cross-package calls exactly like local ones.
// A present fact with zero masks is information too — "this function
// introduces and propagates nothing" — and silences the conservative
// at-the-boundary clock-escape report.
type TaintFact struct {
	// Ret holds taint kinds a call introduces plus the param bits whose
	// taint flows through to a result.
	Ret uint32
	// Escapes holds param bits that reach a clock-escape point inside.
	Escapes uint32
	// Sinks holds param bits that reach a hash write inside.
	Sinks uint32
	// Src names the intrinsic source when Ret carries kind bits.
	Src string
}

func (*TaintFact) AFact() {}

// BoundedFact marks a function whose body's lifetime is bounded by a
// join signal it already owns — it blocks on ctx.Done(), a done-shaped
// channel, or a WaitGroup Wait — so `go pkg.F(x)` is joined even when
// no context or channel crosses the call.
type BoundedFact struct{}

func (*BoundedFact) AFact() {}

// RootMintFact marks an exported function without a context parameter
// that mints a fresh root (context.Background/TODO) outside the
// sanctioned Run→RunCtx wrapper shape: calling it while holding a ctx
// silently detaches the callee tree from cancellation.
type RootMintFact struct{}

func (*RootMintFact) AFact() {}

// ErrWrapFact records which of a function's error parameters it wraps
// or rewords into a new error (fmt.Errorf and friends) before
// returning. Passing a context cancellation error to such a parameter
// destroys its identity, which the errverbatim contract forbids.
type ErrWrapFact struct {
	// Params is a bitmask over the function's parameters (bit i set:
	// parameter i is wrapped into a returned error).
	Params uint32
}

func (*ErrWrapFact) AFact() {}

// AllocFact records whether a function was observed to allocate on its
// own path (composite literals, unguarded make/append, closures,
// boxing) — hot-path callers flag calls to allocating functions.
type AllocFact struct {
	Allocates bool
}

func (*AllocFact) AFact() {}

// NoHashFact lists the fields of a struct type annotated
// //sopslint:nohash — runtime-only knobs deliberately excluded from the
// fingerprint — so speccoverage honors annotations on structs it
// reaches across package boundaries.
type NoHashFact struct {
	Fields []string
}

func (*NoHashFact) AFact() {}

func init() {
	analysis.RegisterFact(&TaintFact{})
	analysis.RegisterFact(&BoundedFact{})
	analysis.RegisterFact(&RootMintFact{})
	analysis.RegisterFact(&ErrWrapFact{})
	analysis.RegisterFact(&AllocFact{})
	analysis.RegisterFact(&NoHashFact{})
}

// factPass is the pseudo-analyzer the fact pass runs under (facts have
// no diagnostics of their own; the name only labels the Pass).
var factPass = &analysis.Analyzer{
	Name: "facts",
	Doc:  "export cross-package facts (taint summaries, bounded lifetimes, wrap/alloc/nohash annotations)",
}

// ExportFacts runs the fact pass over one package: every fact producer
// publishes into pkg.Facts, regardless of which analyzers are scoped to
// run on the package — dependents outside a contract's scope still
// supply facts to packages inside it. Idempotent per package; a no-op
// without a fact store.
func ExportFacts(pkg *analysis.Package) {
	if pkg.Facts == nil {
		return
	}
	pkg.Memo("lint.factsExported", func() any {
		pass := &analysis.Pass{Analyzer: factPass, Pkg: pkg}
		exportTaintFacts(pass)
		exportBoundedFacts(pass)
		exportRootMintFacts(pass)
		exportErrWrapFacts(pass)
		exportAllocFacts(pass)
		exportNoHashFacts(pass)
		return true
	})
}

// localDeclsFor memoizes the package's function-object → declaration
// map, shared by the fact pass and the analyzers.
func localDeclsFor(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	return pass.Pkg.Memo("lint.localDecls", func() any {
		return analysis.LocalDecls(pass.Pkg)
	}).(map[*types.Func]*ast.FuncDecl)
}
