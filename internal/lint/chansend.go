package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Chansend checks that blocking sends in producer loops are
// cancellable: a send on a locally made unbuffered channel inside a
// loop must sit in a select with a second arm (done/ctx) or a default.
//
// Contract (DESIGN.md): a producer looping `ch <- work` on an
// unbuffered channel deadlocks the moment its consumers stop early —
// the first-error-return shape: workers bail on error, the producer
// blocks forever on a send nobody will receive, and Wait never returns.
// The fix shape is the select-with-done producer. The analyzer
// resolves the channel to its make site: only channels created
// unbuffered in the same declaration are flagged — parameters, fields
// and buffered channels have capacity or ownership the caller manages.
var Chansend = &analysis.Analyzer{
	Name: "chansend",
	Doc:  "flag blocking sends in loops on locally made unbuffered channels outside a multi-arm select",
	Run:  runChansend,
}

func runChansend(pass *analysis.Pass) error {
	for _, f := range pass.SourceFiles() {
		for _, u := range analysis.Units(f) {
			u := u
			walkShallow(u.Body(), func(n ast.Node) {
				send, ok := n.(*ast.SendStmt)
				if !ok {
					return
				}
				checkSend(pass, u, send)
			})
		}
	}
	return nil
}

func checkSend(pass *analysis.Pass, u analysis.Unit, send *ast.SendStmt) {
	path := pathTo(u.Body(), send)
	if path == nil || !inLoop(path) || inGuardedSelect(path, send) {
		return
	}
	// Resolve the channel: an identifier whose declaration in the
	// enclosing function is an unbuffered make. Anything else —
	// parameters, struct fields, buffered channels — is capacity or
	// ownership the caller manages, out of this analyzer's scope.
	id, ok := ast.Unparen(send.Chan).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.ObjectOf(id)
	if obj == nil || !unbufferedMake(pass, u.Enclosing, obj) {
		return
	}
	pass.Reportf(send.Pos(), "blocking send on unbuffered %s in a loop with no done/ctx arm: if the consumers stop early (first-error return), this send blocks forever and the pool deadlocks; wrap it in a select with a done or ctx.Done() case (or annotate //sopslint:ignore chansend <reason>)", id.Name)
}

// inLoop reports whether the path from the unit body to the send
// crosses a for or range statement.
func inLoop(path []ast.Node) bool {
	for _, n := range path {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// inGuardedSelect reports whether the send is the comm statement of a
// select clause that has an alternative: at least two clauses, or a
// default. A single-clause select without default blocks exactly like
// a bare send and earns no exemption.
func inGuardedSelect(path []ast.Node, send *ast.SendStmt) bool {
	for i := len(path) - 1; i >= 0; i-- {
		clause, ok := path[i].(*ast.CommClause)
		if !ok || clause.Comm != ast.Stmt(send) {
			continue
		}
		// The clause's select sits further up the path (behind the
		// select's own body block).
		for j := i - 1; j >= 0; j-- {
			sel, ok := path[j].(*ast.SelectStmt)
			if !ok {
				continue
			}
			if len(sel.Body.List) >= 2 {
				return true
			}
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					return true // default clause
				}
			}
			return false
		}
		return false
	}
	return false
}

// unbufferedMake reports whether obj is assigned a make(chan T) with no
// capacity argument anywhere in the enclosing declaration. An object
// with no visible make site (a parameter, a capture from further out)
// resolves false — the channel's capacity is someone else's decision.
func unbufferedMake(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) bool {
	made := false
	isMakeChan := func(x ast.Expr) (unbuffered, isMake bool) {
		call, ok := ast.Unparen(x).(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call, "make") || len(call.Args) == 0 {
			return false, false
		}
		if _, ok := call.Args[0].(*ast.ChanType); !ok {
			return false, false
		}
		return len(call.Args) == 1, true
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || pass.ObjectOf(id) != obj || i >= len(n.Rhs) {
					continue
				}
				if unbuf, isMake := isMakeChan(n.Rhs[i]); isMake && unbuf {
					made = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.ObjectOf(name) != obj || i >= len(n.Values) {
					continue
				}
				if unbuf, isMake := isMakeChan(n.Values[i]); isMake && unbuf {
					made = true
				}
			}
		}
		return !made
	})
	return made
}
