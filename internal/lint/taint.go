package lint

// This file is the shared taint engine behind the flow-sensitive
// analyzers (walltime, dettaint): a forward may-dataflow over the
// analysis-package CFGs tracking three kinds of nondeterminism per local
// variable — map iteration order, wall-clock reads, raw (non-rngx)
// randomness — with one-level call summaries so taint survives a hop
// through package-local helpers.
//
// The engine is deliberately idiom-aware, so the sanctioned patterns
// pass without directives:
//
//   - collect-sort-iterate: appending map keys taints the slice, a
//     sort.* / slices.Sort* call sanitizes it, ranging over the sorted
//     slice yields clean keys (the sortedCounts idiom);
//   - key-indexed writes and exact integer accumulation are
//     order-insensitive and do not propagate map-order taint;
//   - wall-clock values stay legal while they remain transparently
//     time-typed instrumentation (time.Time/time.Duration locals,
//     slices of them, Duration-typed struct columns) and are flagged
//     only where they escape that family — a conversion to a number, a
//     comparison steering control flow, a non-time method like
//     UnixNano, or an argument to another package's API.
//
// Each function unit is analyzed in isolation with clean parameters;
// what a callee does with a tainted argument is captured in its summary
// (param→result flow, param→escape, param→hash-sink) and reported at
// the call site.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Taint kinds: the low bits of a TaintVal mask. Bits at and above
// taintParamShift mark flow from the n-th parameter during summary
// computation.
const (
	taintMapOrder uint32 = 1 << iota
	taintClock
	taintRand

	taintKinds      = taintMapOrder | taintClock | taintRand
	taintParamShift = 3
)

func paramBit(i int) uint32 {
	if n := i + taintParamShift; n < 32 {
		return 1 << n
	}
	return 0
}

// clockEscaping reports whether a value reaching a clock-escape point
// records an event: it carries clock taint, or — in summary mode —
// parameter bits, recording "this parameter would escape here if the
// caller's argument were clock-tainted".
func clockEscaping(kinds uint32) bool {
	return kinds&taintClock != 0 || kinds&^taintKinds != 0
}

// taintEventKind classifies what the engine observed at a node.
type taintEventKind int

const (
	// evClockEscape: a wall-clock-derived value left the time-typed
	// family (conversion, comparison, non-time method, cross-package
	// argument). Reported by walltime.
	evClockEscape taintEventKind = iota
	// evHashSink: a tainted value was written into a hash (the
	// fingerprint/checkpoint identity). Reported by dettaint.
	evHashSink
	// evReturnSink: a map-order or raw-rand tainted value is returned
	// from an exported function — nondeterminism reaching a result.
	// Reported by dettaint.
	evReturnSink
)

// taintEvent is one observation at a source position.
type taintEvent struct {
	kind  taintEventKind
	pos   token.Pos
	kinds uint32 // taint kinds involved
	src   string // human-readable source ("time.Now", "map iteration order")
	where string // event-specific context for the message
}

// taintSummary is the one-level call summary of a declaration.
type taintSummary struct {
	// ret holds the taint kinds a call introduces plus the param bits
	// whose taint flows through to a result.
	ret uint32
	// escapes holds param bits that reach a clock-escape point inside
	// the callee (passing a clock-tainted arg there escapes it).
	escapes uint32
	// sinks holds param bits that reach a hash write inside the callee.
	sinks uint32
	// src names the intrinsic source when ret carries kind bits.
	src string
}

// taintEngine analyzes the units of one package.
type taintEngine struct {
	pass  *analysis.Pass
	cfgs  *analysis.CFGs
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]taintSummary

	// per-unit analysis state
	summaryMode bool
	params      map[types.Object]uint32 // summary mode: param object → bit
	results     []types.Object          // named results, for bare returns
	exported    bool                    // reporting mode: unit is an exported decl
	funcName    string
	events      []taintEvent
	emitting    bool
}

// taintEngineFor returns the package's memoized taint engine: walltime,
// dettaint and the fact pass share one summary computation per package.
// The engine only reads pass.Pkg (types, info, facts), so the first
// pass's engine serves every later one.
func taintEngineFor(pass *analysis.Pass) *taintEngine {
	return pass.Pkg.Memo("lint.taintEngine", func() any {
		return newTaintEngine(pass)
	}).(*taintEngine)
}

// exportTaintFacts publishes every exported declaration's summary as a
// TaintFact, including zero summaries: "introduces and propagates
// nothing" is what lets a clock-tainted argument cross into a callee
// known to keep it in the instrumentation family.
func exportTaintFacts(pass *analysis.Pass) {
	e := taintEngineFor(pass)
	for fn, sum := range e.sums {
		if !fn.Exported() {
			continue
		}
		pass.ExportObjectFact(fn, &TaintFact{Ret: sum.ret, Escapes: sum.escapes, Sinks: sum.sinks, Src: sum.src})
	}
}

// newTaintEngine builds the engine for one pass: summaries first, then
// callers analyze units with analyze().
func newTaintEngine(pass *analysis.Pass) *taintEngine {
	e := &taintEngine{
		pass:  pass,
		cfgs:  analysis.NewCFGs(terminalForCFG),
		decls: map[*types.Func]*ast.FuncDecl{},
	}
	e.decls = analysis.LocalDecls(pass.Pkg)
	e.sums = analysis.Summarize(pass.Pkg, func(fd *ast.FuncDecl, prev map[*types.Func]taintSummary) taintSummary {
		return e.summarize(fd, prev)
	})
	return e
}

// terminalForCFG adapts the suite's terminal-call test to the CFG
// builder (panic is handled by the builder itself).
func terminalForCFG(call *ast.CallExpr) bool { return isTerminalCall(call) }

// summarize computes one declaration's summary: seed every parameter
// with its bit, run the flow, union the returns.
func (e *taintEngine) summarize(fd *ast.FuncDecl, prev map[*types.Func]taintSummary) taintSummary {
	saved := *e
	defer func() { *e = saved }()

	e.summaryMode = true
	e.sums = prev
	e.emitting = false
	e.events = nil

	state := analysis.TaintState{}
	e.params = map[types.Object]uint32{}
	for i, obj := range e.paramObjs(fd) {
		if b := paramBit(i); b != 0 && obj != nil {
			e.params[obj] = b
			state = state.Add(obj, analysis.TaintVal{Kinds: b})
		}
	}
	e.results = namedResults(e.pass, fd.Type)

	sum := taintSummary{}
	collect := func(ev taintEvent) {
		switch ev.kind {
		case evClockEscape:
			sum.escapes |= ev.kinds &^ taintKinds
		case evHashSink:
			sum.sinks |= ev.kinds &^ taintKinds
		}
	}
	retMask, src := e.flowUnit(fd.Body, state, collect)
	sum.ret = retMask
	sum.src = src
	return sum
}

// paramObjs lists the declaration's receiver and parameter objects in
// signature order.
func (e *taintEngine) paramObjs(fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				out = append(out, nil) // unnamed: position still counts
				continue
			}
			for _, name := range field.Names {
				out = append(out, e.pass.ObjectOf(name))
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return out
}

func namedResults(pass *analysis.Pass, ft *ast.FuncType) []types.Object {
	if ft.Results == nil {
		return nil
	}
	var out []types.Object
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if obj := pass.ObjectOf(name); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// analyze runs the engine over one unit in reporting mode and returns
// the events observed. exported marks a declaration whose returns are
// result sinks.
func (e *taintEngine) analyze(u analysis.Unit) []taintEvent {
	saved := *e
	defer func() { *e = saved }()

	e.summaryMode = false
	e.params = nil
	e.exported = u.Decl != nil && u.Decl.Name.IsExported()
	e.funcName = "function literal"
	if u.Decl != nil {
		e.funcName = u.Decl.Name.Name
	}
	e.results = namedResults(e.pass, u.FuncType())
	e.events = nil
	var events []taintEvent
	e.flowUnit(u.Body(), analysis.TaintState{}, func(ev taintEvent) {
		events = append(events, ev)
	})
	return events
}

// flowUnit solves the taint flow over one body and replays it once with
// events enabled. It returns the union of return-value taints and the
// source name of the first intrinsic kind seen in a return.
func (e *taintEngine) flowUnit(body *ast.BlockStmt, boundary analysis.TaintState, emit func(taintEvent)) (retMask uint32, retSrc string) {
	cfg := e.cfgs.For(body)
	ins := analysis.Solve(cfg, analysis.Problem[analysis.TaintState]{
		Dir:      analysis.Forward,
		Boundary: boundary,
		Merge:    func(a, b analysis.TaintState) analysis.TaintState { return a.Merge(b) },
		Equal:    func(a, b analysis.TaintState) bool { return a.Equal(b) },
		Transfer: func(b *analysis.Block, in analysis.TaintState) analysis.TaintState {
			st := in
			for _, n := range b.Nodes {
				st = e.transfer(st, n, nil)
			}
			return st
		},
	})

	// Replay each reachable block once from its solved IN state with
	// events on, and union return taints as they are visited.
	for _, b := range cfg.Blocks {
		in, ok := ins[b]
		if !ok {
			continue // unreachable
		}
		st := in
		for _, n := range b.Nodes {
			if ret, isRet := returnOf(n); isRet {
				mask, src := e.returnTaint(st, ret)
				retMask |= mask
				if retSrc == "" {
					retSrc = src
				}
			}
			st = e.transfer(st, n, emit)
		}
	}
	// Defers run on exit with whatever state their closure sees; for
	// events, evaluate each deferred call under the exit-adjacent state
	// is overkill — the defer statement node already sat in a block and
	// was replayed there.
	return retMask, retSrc
}

func returnOf(n ast.Node) (*ast.ReturnStmt, bool) {
	ret, ok := n.(*ast.ReturnStmt)
	return ret, ok
}

// returnTaint unions the taint of a return's results (falling back to
// named results on a bare return).
func (e *taintEngine) returnTaint(st analysis.TaintState, ret *ast.ReturnStmt) (uint32, string) {
	var mask uint32
	var src string
	note := func(v analysis.TaintVal) {
		mask |= v.Kinds
		if src == "" {
			src = v.Src
		}
	}
	if len(ret.Results) == 0 {
		for _, obj := range e.results {
			note(st[obj])
		}
		return mask, src
	}
	for _, r := range ret.Results {
		note(e.eval(st, r, nil))
	}
	return mask, src
}

// transfer pushes the state through one CFG node, optionally emitting
// events. It must stay in lockstep with the event-free solving pass.
func (e *taintEngine) transfer(st analysis.TaintState, n ast.Node, emit func(taintEvent)) analysis.TaintState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return e.transferAssign(st, n, emit)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return st
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var v analysis.TaintVal
				if i < len(vs.Values) {
					v = e.eval(st, vs.Values[i], emit)
				} else if len(vs.Values) == 1 {
					v = e.eval(st, vs.Values[0], emit)
				}
				if obj := e.pass.ObjectOf(name); obj != nil {
					st = st.Set(obj, v)
				}
			}
		}
		return st
	case *ast.RangeStmt:
		return e.transferRange(st, n, emit)
	case *ast.ExprStmt:
		st = e.sanitizers(st, n.X)
		e.eval(st, n.X, emit)
		return st
	case *ast.ReturnStmt:
		if emit != nil && !e.summaryMode && e.exported {
			mask, src := e.returnTaint(st, n)
			if det := mask & (taintMapOrder | taintRand); det != 0 {
				emit(taintEvent{kind: evReturnSink, pos: n.Pos(), kinds: det, src: src, where: e.funcName})
			}
		}
		// evaluate for escape events in the results themselves
		for _, r := range n.Results {
			e.eval(st, r, emit)
		}
		return st
	case *ast.IfStmt:
		// only the Init lands here as a separate node; Cond is its own
		// node evaluated via the expression case below
		return st
	case *ast.SendStmt:
		e.eval(st, n.Chan, emit)
		e.eval(st, n.Value, emit)
		return st
	case *ast.GoStmt:
		e.evalCallArgs(st, n.Call, emit)
		return st
	case *ast.DeferStmt:
		e.evalCallArgs(st, n.Call, emit)
		return st
	case *ast.IncDecStmt:
		return st
	case *ast.LabeledStmt, *ast.BranchStmt, *ast.EmptyStmt:
		return st
	case ast.Expr:
		// loop/if/switch conditions and case expressions
		e.eval(st, n, emit)
		return st
	case ast.Stmt:
		return st
	}
	return st
}

// sanitizers clears map-order taint killed by a sort call: sort.X(s) /
// slices.SortX(s) leaves s deterministically ordered.
func (e *taintEngine) sanitizers(st analysis.TaintState, x ast.Expr) analysis.TaintState {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return st
	}
	fn := calleeFunc(e.pass, call)
	if fn == nil {
		return st
	}
	isSort := pkgPathIs(fn.Pkg(), "sort") && (strings.HasPrefix(fn.Name(), "Sort") ||
		fn.Name() == "Strings" || fn.Name() == "Ints" || fn.Name() == "Float64s" || fn.Name() == "Stable" || fn.Name() == "Slice" || fn.Name() == "SliceStable")
	isSlices := pkgPathIs(fn.Pkg(), "slices") && strings.HasPrefix(fn.Name(), "Sort")
	if !isSort && !isSlices {
		return st
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		if obj := e.pass.ObjectOf(id); obj != nil {
			v := st[obj]
			v.Kinds &^= taintMapOrder
			st = st.Set(obj, v)
		}
	}
	return st
}

func (e *taintEngine) transferAssign(st analysis.TaintState, n *ast.AssignStmt, emit func(taintEvent)) analysis.TaintState {
	// Evaluate RHS values first (events fire on the RHS reads).
	vals := make([]analysis.TaintVal, len(n.Rhs))
	for i, r := range n.Rhs {
		vals[i] = e.eval(st, r, emit)
	}
	valFor := func(i int) analysis.TaintVal {
		if len(n.Rhs) == len(n.Lhs) {
			return vals[i]
		}
		// tuple assignment: one multi-valued RHS taints every LHS
		return vals[0]
	}

	integerAccum := false
	opAssign := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		integerAccum = true
	}

	for i, lhs := range n.Lhs {
		v := valFor(i)
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := e.pass.ObjectOf(lhs)
			if obj == nil {
				continue
			}
			if opAssign {
				if integerAccum && isInteger(obj.Type()) {
					v.Kinds &^= taintMapOrder // exact, commutative
				}
				st = st.Add(obj, v)
			} else {
				st = st.Set(obj, v)
			}
		case *ast.IndexExpr:
			// Writes indexed by a map-order-tainted key hit each entry
			// exactly once — distinct-entry writes commute, so the
			// container's contents are order-independent.
			idx := e.eval(st, lhs.Index, nil)
			if idx.Kinds&taintMapOrder != 0 {
				v.Kinds &^= taintMapOrder
			}
			st = e.weakenInto(st, lhs.X, v)
		case *ast.SelectorExpr:
			// Storing a clock value into a time-typed field is the
			// sanctioned instrumentation column; tracking ends there.
			if t := e.pass.TypeOf(lhs); isTimeFamily(t) {
				v.Kinds &^= taintClock
			}
			st = e.weakenInto(st, lhs.X, v)
		case *ast.StarExpr:
			st = e.weakenInto(st, lhs.X, v)
		}
	}
	return st
}

// weakenInto adds v to the object at the base of a container/field
// write expression (weak update: the old contents survive).
func (e *taintEngine) weakenInto(st analysis.TaintState, base ast.Expr, v analysis.TaintVal) analysis.TaintState {
	if v.Kinds == 0 {
		return st
	}
	for {
		switch b := ast.Unparen(base).(type) {
		case *ast.Ident:
			if obj := e.pass.ObjectOf(b); obj != nil {
				return st.Add(obj, v)
			}
			return st
		case *ast.IndexExpr:
			base = b.X
		case *ast.SelectorExpr:
			base = b.X
		case *ast.StarExpr:
			base = b.X
		default:
			return st
		}
	}
}

func (e *taintEngine) transferRange(st analysis.TaintState, n *ast.RangeStmt, emit func(taintEvent)) analysis.TaintState {
	xv := e.eval(st, n.X, emit)
	t := e.pass.TypeOf(n.X)
	var keyV, valV analysis.TaintVal
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			src := "map iteration order"
			keyV = analysis.TaintVal{Kinds: xv.Kinds | taintMapOrder, Src: src}
			valV = keyV
		case *types.Chan:
			keyV = analysis.TaintVal{}
			valV = analysis.TaintVal{}
		default:
			// slices, arrays, strings, ints: deterministic order; the
			// values inherit the container's taint, the index is clean.
			keyV = analysis.TaintVal{}
			valV = xv
		}
	}
	if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
		if obj := e.pass.ObjectOf(id); obj != nil {
			st = st.Set(obj, keyV)
		}
	}
	if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
		if obj := e.pass.ObjectOf(id); obj != nil {
			st = st.Set(obj, valV)
		}
	}
	return st
}

// eval computes the taint of an expression under st, emitting escape
// and sink events when emit is non-nil.
func (e *taintEngine) eval(st analysis.TaintState, x ast.Expr, emit func(taintEvent)) analysis.TaintVal {
	switch x := x.(type) {
	case *ast.Ident:
		if obj := e.pass.ObjectOf(x); obj != nil {
			return st[obj]
		}
		return analysis.TaintVal{}
	case *ast.ParenExpr:
		return e.eval(st, x.X, emit)
	case *ast.BasicLit, *ast.FuncLit:
		return analysis.TaintVal{}
	case *ast.SelectorExpr:
		// package-qualified name or field read
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := e.pass.ObjectOf(id).(*types.PkgName); isPkg {
				return analysis.TaintVal{}
			}
		}
		return e.eval(st, x.X, emit)
	case *ast.StarExpr:
		return e.eval(st, x.X, emit)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			e.eval(st, x.X, emit)
			return analysis.TaintVal{} // cross-goroutine flow is out of scope
		}
		return e.eval(st, x.X, emit)
	case *ast.BinaryExpr:
		l := e.eval(st, x.X, emit)
		r := e.eval(st, x.Y, emit)
		v := mergeVals(l, r)
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			// a comparison turns the value into a branch decision — a
			// wall-clock read steering control flow escapes the
			// instrumentation family.
			if clockEscaping(v.Kinds) {
				e.emitEv(emit, taintEvent{kind: evClockEscape, pos: x.Pos(), kinds: v.Kinds, src: v.Src, where: "compared (the result steers control flow)"})
				v.Kinds &^= taintClock
			}
		}
		return v
	case *ast.IndexExpr:
		return mergeVals(e.eval(st, x.X, emit), e.eval(st, x.Index, emit))
	case *ast.SliceExpr:
		return e.eval(st, x.X, emit)
	case *ast.TypeAssertExpr:
		return e.eval(st, x.X, emit)
	case *ast.CompositeLit:
		return e.evalComposite(st, x, emit)
	case *ast.CallExpr:
		return e.evalCall(st, x, emit)
	case *ast.KeyValueExpr:
		return e.eval(st, x.Value, emit)
	}
	return analysis.TaintVal{}
}

func mergeVals(a, b analysis.TaintVal) analysis.TaintVal {
	out := a
	out.Kinds |= b.Kinds
	if out.Src == "" {
		out.Src = b.Src
	}
	return out
}

func (e *taintEngine) evalComposite(st analysis.TaintState, x *ast.CompositeLit, emit func(taintEvent)) analysis.TaintVal {
	t := e.pass.TypeOf(x)
	_, isStruct := underlyingStruct(t)
	var out analysis.TaintVal
	for _, el := range x.Elts {
		v := e.eval(st, el, emit)
		if isStruct {
			// A clock value stored in a time-typed struct field is an
			// instrumentation column; tracking ends at the store.
			if ft := e.fieldTypeOf(x, el); isTimeFamily(ft) {
				v.Kinds &^= taintClock
			}
		}
		out = mergeVals(out, v)
	}
	return out
}

func underlyingStruct(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	s, ok := t.Underlying().(*types.Struct)
	return s, ok
}

// fieldTypeOf resolves the struct field type a composite-literal element
// initializes, or nil.
func (e *taintEngine) fieldTypeOf(lit *ast.CompositeLit, el ast.Expr) types.Type {
	if kv, ok := el.(*ast.KeyValueExpr); ok {
		if id, ok := kv.Key.(*ast.Ident); ok {
			if obj := e.pass.Pkg.Info.Uses[id]; obj != nil {
				return obj.Type()
			}
			// struct keys live in Info.Uses for typechecked literals;
			// fall back to the element's own type
		}
		return e.pass.TypeOf(kv.Value)
	}
	return e.pass.TypeOf(el)
}

// evalCallArgs evaluates a call's function and arguments for their
// events without using the result (go/defer statements).
func (e *taintEngine) evalCallArgs(st analysis.TaintState, call *ast.CallExpr, emit func(taintEvent)) {
	e.evalCall(st, call, emit)
}

func (e *taintEngine) evalCall(st analysis.TaintState, call *ast.CallExpr, emit func(taintEvent)) analysis.TaintVal {
	// Conversions: T(x) preserves determinism taint; a conversion of a
	// clock value to a non-time type is the canonical escape.
	if t, isConv := e.conversionType(call); isConv {
		v := e.eval(st, call.Args[0], emit)
		if !isTimeFamily(t) && clockEscaping(v.Kinds) {
			e.emitEv(emit, taintEvent{kind: evClockEscape, pos: call.Pos(), kinds: v.Kinds, src: v.Src, where: "converted to " + t.String()})
			v.Kinds &^= taintClock
		}
		return v
	}

	fn := calleeFunc(e.pass, call)

	// Builtins.
	if fn == nil {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isB := e.pass.ObjectOf(id).(*types.Builtin); isB {
				switch id.Name {
				case "len", "cap", "make", "new":
					for _, a := range call.Args {
						e.eval(st, a, emit)
					}
					return analysis.TaintVal{}
				default: // append, min, max, copy, …
					var out analysis.TaintVal
					for _, a := range call.Args {
						out = mergeVals(out, e.eval(st, a, emit))
					}
					return out
				}
			}
		}
		// Indirect call through a function value: propagate
		// conservatively, without treating it as a package boundary.
		var out analysis.TaintVal
		e.eval(st, call.Fun, emit)
		for _, a := range call.Args {
			out = mergeVals(out, e.eval(st, a, emit))
		}
		return out
	}

	// Wall-clock sources.
	if pkgPathIs(fn.Pkg(), "time") && walltimeCalls[fn.Name()] {
		for _, a := range call.Args {
			e.eval(st, a, emit)
		}
		return analysis.TaintVal{Kinds: taintClock, Src: "time." + fn.Name()}
	}

	// Raw randomness: the package-level functions of math/rand and
	// math/rand/v2 draw from the shared global source, which is not
	// derived from the spec seed. Methods on a *rand.Rand value are
	// clean — in contract packages every Rand comes from rngx (the
	// rngsource analyzer enforces construction), so its draws are a
	// pure function of the seed.
	if fnPkgIsRand(fn) {
		for _, a := range call.Args {
			e.eval(st, a, emit)
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
			// Constructors (New, NewSource, NewPCG, …) build a generator
			// deterministically from their seed; only the draws from the
			// global source are tainted.
			return analysis.TaintVal{Kinds: taintRand, Src: fn.Pkg().Name() + "." + fn.Name()}
		}
		return analysis.TaintVal{}
	}

	// Hash sinks: writes into a hash.Hash build the run fingerprint.
	if ev, handled := e.hashSink(st, call, fn, emit); handled {
		return ev
	}

	recvTaint, argTaints := e.callOperands(st, call, fn, emit)

	// Methods on time.Time/time.Duration: family-preserving arithmetic
	// is allowed; a method whose result leaves the family (UnixNano,
	// Seconds, String, …) escapes.
	if recv := recvExprOf(call); recv != nil && isTimeFamily(e.pass.TypeOf(recv)) {
		v := recvTaint
		for _, a := range argTaints {
			v = mergeVals(v, a)
		}
		if rt := e.resultType(call); !isTimeFamily(rt) && clockEscaping(v.Kinds) {
			e.emitEv(emit, taintEvent{kind: evClockEscape, pos: call.Pos(), kinds: v.Kinds, src: v.Src, where: "read out through " + fn.Name() + "()"})
			v.Kinds &^= taintClock
		}
		return v
	}

	// Package-local callee with a summary: one-level interprocedural
	// flow — kinds the callee introduces, plus the taint of arguments
	// whose parameter reaches a result, escape or sink.
	if e.decls[fn] != nil {
		if sum, ok := e.summaryOf(fn); ok {
			return e.applySummary(call, sum, recvTaint, argTaints, emit)
		}
		// summary unavailable (first summary pass): conservative union
		v := recvTaint
		for _, a := range argTaints {
			v = mergeVals(v, a)
		}
		return v
	}

	// Same-package callee without a declaration here (interface
	// methods, declarations in other files of a corpus stub):
	// conservative union, no package boundary.
	if fn.Pkg() == e.pass.Pkg.Types {
		v := recvTaint
		for _, a := range argTaints {
			v = mergeVals(v, a)
		}
		return v
	}

	// Cross-package callee with an exported taint fact (another module
	// package already analyzed): apply it exactly like a local summary,
	// so taint flows — and sanctioned handling is recognized — across
	// package boundaries instead of stopping at one hop.
	var tf TaintFact
	if e.pass.ImportObjectFact(fn, &tf) {
		return e.applySummary(call, taintSummary{ret: tf.Ret, escapes: tf.Escapes, sinks: tf.Sinks, src: tf.Src}, recvTaint, argTaints, emit)
	}

	// Cross-package call without a fact: a clock-tainted operand handed
	// to another package's API escapes the instrumentation family
	// (time-package helpers were handled above).
	v := recvTaint
	for _, a := range argTaints {
		v = mergeVals(v, a)
	}
	if clockEscaping(v.Kinds) && !pkgPathIs(fn.Pkg(), "time") {
		e.emitEv(emit, taintEvent{kind: evClockEscape, pos: call.Pos(), kinds: v.Kinds, src: v.Src, where: "passed to " + calleeLabel(fn)})
		v.Kinds &^= taintClock
	}
	return v
}

// summaryOf looks up fn's summary, if the engine has one.
func (e *taintEngine) summaryOf(fn *types.Func) (taintSummary, bool) {
	if e.sums == nil {
		return taintSummary{}, false
	}
	s, ok := e.sums[fn]
	return s, ok
}

// callOperands evaluates the receiver and arguments of a resolved call.
func (e *taintEngine) callOperands(st analysis.TaintState, call *ast.CallExpr, fn *types.Func, emit func(taintEvent)) (analysis.TaintVal, []analysis.TaintVal) {
	var recvTaint analysis.TaintVal
	if recv := recvExprOf(call); recv != nil {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			recvTaint = e.eval(st, recv, emit)
		}
	}
	args := make([]analysis.TaintVal, len(call.Args))
	for i, a := range call.Args {
		args[i] = e.eval(st, a, emit)
	}
	return recvTaint, args
}

// applySummary folds a callee summary into the call's result taint and
// re-raises escapes/sinks the callee performs on tainted arguments.
func (e *taintEngine) applySummary(call *ast.CallExpr, sum taintSummary, recvTaint analysis.TaintVal, argTaints []analysis.TaintVal, emit func(taintEvent)) analysis.TaintVal {
	operands := append([]analysis.TaintVal{recvTaint}, argTaints...)
	// When the callee has no receiver, parameter 0 is the first arg.
	fn := calleeFunc(e.pass, call)
	if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() == nil {
		operands = argTaints
	}
	out := analysis.TaintVal{Kinds: sum.ret & taintKinds, Src: sum.src}
	for i, op := range operands {
		b := paramBit(i)
		if b == 0 || op.Kinds&taintKinds == 0 {
			continue
		}
		if sum.ret&b != 0 {
			out = mergeVals(out, op)
		}
		if sum.escapes&b != 0 && op.Kinds&taintClock != 0 {
			e.emitEv(emit, taintEvent{kind: evClockEscape, pos: call.Pos(), kinds: op.Kinds, src: op.Src, where: "passed to " + fn.Name() + ", which lets it escape"})
		}
		if sum.sinks&b != 0 {
			e.emitEv(emit, taintEvent{kind: evHashSink, pos: call.Pos(), kinds: op.Kinds & taintKinds, src: op.Src, where: "via " + fn.Name()})
		}
	}
	return out
}

// hashSink recognizes fingerprint writes: fmt.Fprint* with a hash as
// the writer, or Write/WriteString/Sum methods on a hash value. Tainted
// operands are reported; the call result carries no taint.
func (e *taintEngine) hashSink(st analysis.TaintState, call *ast.CallExpr, fn *types.Func, emit func(taintEvent)) (analysis.TaintVal, bool) {
	sinkArgs := -1 // index of the first data argument
	switch {
	case pkgPathIs(fn.Pkg(), "fmt") && strings.HasPrefix(fn.Name(), "Fprint"):
		if len(call.Args) > 0 && isHashType(e.pass.TypeOf(call.Args[0])) {
			sinkArgs = 1
		}
	case fn.Name() == "Write" || fn.Name() == "WriteString" || fn.Name() == "Sum":
		if recv := recvExprOf(call); recv != nil && isHashType(e.pass.TypeOf(recv)) {
			sinkArgs = 0
		}
	}
	if sinkArgs < 0 {
		return analysis.TaintVal{}, false
	}
	for i, a := range call.Args {
		v := e.eval(st, a, emit)
		if i >= sinkArgs && v.Kinds&taintKinds != 0 {
			e.emitEv(emit, taintEvent{kind: evHashSink, pos: a.Pos(), kinds: v.Kinds & taintKinds, src: v.Src})
		}
		// In summary mode, a param bit reaching the hash marks the
		// parameter as sink-feeding.
		if i >= sinkArgs && v.Kinds&^taintKinds != 0 {
			e.emitEv(emit, taintEvent{kind: evHashSink, pos: a.Pos(), kinds: v.Kinds &^ taintKinds})
		}
	}
	return analysis.TaintVal{}, true
}

func (e *taintEngine) emitEv(emit func(taintEvent), ev taintEvent) {
	if emit == nil {
		return
	}
	if e.summaryMode {
		// keep only param-flow information
		if ev.kinds&^taintKinds == 0 {
			return
		}
	} else if ev.kinds&taintKinds == 0 {
		return
	}
	emit(ev)
}

// conversionType reports whether the call is a type conversion, and to
// what type.
func (e *taintEngine) conversionType(call *ast.CallExpr) (types.Type, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := e.pass.ObjectOf(fun).(*types.TypeName); ok {
			return e.pass.TypeOf(call.Fun), true
		}
	case *ast.SelectorExpr:
		if _, ok := e.pass.ObjectOf(fun.Sel).(*types.TypeName); ok {
			return e.pass.TypeOf(call.Fun), true
		}
	case *ast.ArrayType, *ast.MapType, *ast.InterfaceType:
		return e.pass.TypeOf(call.Fun), true
	}
	return nil, false
}

// resultType is the call's (single) result type, or nil.
func (e *taintEngine) resultType(call *ast.CallExpr) types.Type {
	return e.pass.TypeOf(call)
}

// recvExprOf returns the receiver expression of a method-shaped call.
func recvExprOf(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

func calleeLabel(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// isTimeFamily reports whether values of t are transparently time-typed
// instrumentation: time.Time, time.Duration, pointers/slices/arrays of
// them.
func isTimeFamily(t types.Type) bool {
	switch t := t.(type) {
	case nil:
		return false
	case *types.Pointer:
		return isTimeFamily(t.Elem())
	case *types.Slice:
		return isTimeFamily(t.Elem())
	case *types.Array:
		return isTimeFamily(t.Elem())
	case *types.Named:
		obj := t.Obj()
		return (obj.Name() == "Time" || obj.Name() == "Duration" || obj.Name() == "Month" || obj.Name() == "Weekday") && pkgPathIs(obj.Pkg(), "time")
	}
	return false
}

// fnPkgIsRand recognizes the unseeded randomness packages.
func fnPkgIsRand(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == "math/rand" || p == "math/rand/v2" || strings.HasSuffix(p, "/math/rand")
}

// isHashType recognizes hash.Hash-shaped values: named types (or
// pointers to them) declared in package hash or one of its children
// (hash/fnv, hash/maphash, …), plus crypto hash states.
func isHashType(t types.Type) bool {
	switch t := t.(type) {
	case nil:
		return false
	case *types.Pointer:
		return isHashType(t.Elem())
	case *types.Named:
		pkg := t.Obj().Pkg()
		if pkg == nil {
			return false
		}
		p := pkg.Path()
		return p == "hash" || strings.HasPrefix(p, "hash/") || strings.HasSuffix(p, "/hash")
	case *types.Interface:
		return false
	}
	return false
}
