package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// AllocFree keeps the per-step hot paths free of heap allocation.
//
// Contract (DESIGN.md): the inner loops — the simulation step, the
// k-NN queries it issues, the estimator chunk kernels, the ICP
// alignment loop — run millions of times per experiment, and the
// scratch-buffer discipline (Engine scratch fields, dst-reuse APIs,
// grow* amortized helpers) exists precisely so that steady-state
// iterations allocate nothing. One stray literal or closure in a hot
// body turns into GC pressure that dwarfs the arithmetic. AllocFree is
// escape-analysis-lite over a declared hot-path list: inside a hot
// function it flags
//
//   - make/new and map/slice composite literals, and address-taken
//     struct literals (&T{}), all of which heap-allocate;
//   - append calls that can grow — unless they reuse a reslice
//     (s[:0]), build into a parameter or receiver field (the dst-reuse
//     and scratch idioms), or sit under a cap()-guard;
//     cap()-guarded blocks and cold error exits (an if-body ending in
//     a non-nil error return) are exempt wholesale: neither is a
//     steady-state cost;
//   - function literals that capture enclosing variables (a closure
//     allocates its environment);
//   - interface-boxing argument conversions and variadic calls, both
//     of which materialize hidden slices or boxes;
//   - string<->[]byte conversions, which copy;
//   - calls to functions that allocate — package-local ones by
//     summary, cross-package ones via AllocFact. Amortized-growth
//     helpers (a body that branches on cap()) are sanctioned and not
//     counted.
//
// The hot set is the central hotPaths list plus any declaration whose
// doc comment carries //sopslint:hotpath <reason>; the reason is
// mandatory so each addition explains what loop makes it hot.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "flag heap allocations in declared hot-path functions",
	Run:  runAllocFree,
}

// hotPaths names the repo's per-step inner loops. Keys are
// package.(receiver).function with the package's base import path.
var hotPaths = map[string]bool{
	"repro/internal/sim.(*System).Step":               true,
	"repro/internal/knn.(*Tree).KNearest":             true,
	"repro/internal/knn.(*Tree).CountWithin":          true,
	"repro/internal/infotheory.(*Engine).ksgChunk":    true,
	"repro/internal/infotheory.(*Engine).klChunk":     true,
	"repro/internal/infotheory.(*Engine).kernelChunk": true,
	"repro/internal/infotheory.(*Engine).approxChunk": true,
	"repro/internal/align.(*Aligner).icp":             true,
}

const hotpathPrefix = "//sopslint:hotpath"

func runAllocFree(pass *analysis.Pass) error {
	sums := allocSummaries(pass)
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hot := false
			if fn, ok := pass.ObjectOf(fd.Name).(*types.Func); ok && hotPaths[funcKey(fn)] {
				hot = true
			}
			if ann, pos, ok := hotpathAnnotation(fd); ok {
				hot = true
				if strings.TrimSpace(strings.TrimPrefix(ann, hotpathPrefix)) == "" {
					pass.Reportf(pos, "//sopslint:hotpath needs a reason — write //sopslint:hotpath <which loop makes this hot>")
				}
			}
			if hot {
				checkHotBody(pass, fd, sums)
			}
		}
	}
	return nil
}

// funcKey renders fn as a hotPaths key: pkg.(recv).Name for methods,
// pkg.Name for functions, with the test-variant suffix stripped.
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	pkg := basePath(fn.Pkg().Path())
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + "." + fn.Name()
	}
	rt := sig.Recv().Type()
	recv := ""
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
		recv = "*"
	}
	if named, isNamed := rt.(*types.Named); isNamed {
		recv += named.Obj().Name()
	}
	return fmt.Sprintf("%s.(%s).%s", pkg, recv, fn.Name())
}

func hotpathAnnotation(fd *ast.FuncDecl) (string, token.Pos, bool) {
	if fd.Doc == nil {
		return "", 0, false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathPrefix) {
			return c.Text, c.Pos(), true
		}
	}
	return "", 0, false
}

// checkHotBody reports every allocation site in a hot declaration.
func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl, sums map[*types.Func]bool) {
	name := fd.Name.Name
	scratch := scratchObjects(pass, fd)
	guarded, _ := allocExemptRanges(pass, fd.Body)
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in hot path %s: steady-state iterations must not allocate; hoist into a scratch field or reuse a caller-provided buffer, or annotate //sopslint:ignore allocfree <reason>", what, name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := captured(pass, n, fd); capt != "" {
				report(n.Pos(), fmt.Sprintf("closure capturing %s allocates its environment", capt))
			}
			return false
		case *ast.UnaryExpr:
			// Map/slice literals report in the CompositeLit case
			// whether or not they are address-taken.
			if n.Op == token.AND && !guarded.contains(n.Pos()) {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					if _, isStruct := pass.TypeOf(lit).Underlying().(*types.Struct); isStruct {
						report(n.Pos(), "address-taken composite literal escapes to the heap")
					}
				}
			}
		case *ast.CompositeLit:
			if guarded.contains(n.Pos()) {
				return true
			}
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, n, sums, scratch, guarded, report)
		}
		return true
	})
}

// checkHotCall classifies one call expression inside a hot body.
func checkHotCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, sums map[*types.Func]bool, scratch map[types.Object]bool, guarded posRanges, report func(token.Pos, string)) {
	// Conversions: string<->[]byte copies.
	if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, pass.TypeOf(call.Args[0])
		if isStringByteConv(dst, src) && !guarded.contains(call.Pos()) {
			report(call.Pos(), "string/[]byte conversion copies")
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				if !guarded.contains(call.Pos()) {
					report(call.Pos(), id.Name+" allocates")
				}
			case "append":
				if len(call.Args) > 0 && !appendExempt(pass, call.Args[0], scratch) && !guarded.contains(call.Pos()) {
					report(call.Pos(), "append may grow the backing array")
				}
			}
			return
		}
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	// Allocating callee: local summary or imported AllocFact.
	allocates, known := sums[fn]
	if !known {
		var af AllocFact
		if pass.ImportObjectFact(fn, &af) {
			allocates = af.Allocates
		}
	}
	if allocates && !guarded.contains(call.Pos()) {
		report(call.Pos(), fmt.Sprintf("call to %s, which allocates,", calleeLabel(fn)))
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	// Variadic call materializes an argument slice (no args -> nil
	// slice, no allocation; spread passes the caller's slice through).
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) > sig.Params().Len()-1 && !guarded.contains(call.Pos()) {
		report(call.Pos(), fmt.Sprintf("variadic call to %s materializes an argument slice", calleeLabel(fn)))
	}
	// Interface boxing at argument positions.
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || isPointerShaped(at) || guarded.contains(arg.Pos()) {
			continue
		}
		report(arg.Pos(), fmt.Sprintf("passing %s as interface %s boxes it on the heap", at, pt))
	}
}

// isPointerShaped reports whether storing t in an interface needs no
// allocation: pointers, channels, maps, funcs, unsafe pointers,
// interfaces themselves, and untyped nil.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer
	}
	return false
}

func isStringByteConv(dst, src types.Type) bool {
	return (isStringType(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// appendExempt reports whether an append's destination follows a
// sanctioned no-steady-state-growth shape: a reslice (s[:0] reuse), a
// parameter (the dst-reuse API idiom), or a field on a parameter or
// receiver (a scratch buffer).
func appendExempt(pass *analysis.Pass, dst ast.Expr, scratch map[types.Object]bool) bool {
	switch dst := ast.Unparen(dst).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		return scratch[pass.ObjectOf(dst)]
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(dst.X).(*ast.Ident); ok {
			return scratch[pass.ObjectOf(base)]
		}
	}
	return false
}

// scratchObjects collects the declaration's parameters and receiver —
// the roots callers own, whose buffers are reusable across calls — plus
// locals derived from them: an assignment from a reslice (logs :=
// sc.logs[:0]) or from another scratch root keeps the scratch status,
// so the buffer-naming idiom passes without annotation.
func scratchObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.ObjectOf(name); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok || !scratchDerived(pass, as.Rhs[i], out) {
					continue
				}
				if obj := pass.ObjectOf(id); obj != nil && !out[obj] {
					out[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return out
}

// scratchDerived reports whether the expression denotes (a reslice of)
// a scratch root.
func scratchDerived(pass *analysis.Pass, e ast.Expr, scratch map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		return scratch[pass.ObjectOf(e)]
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			return scratch[pass.ObjectOf(base)]
		}
	}
	return false
}

// posRanges is a set of source intervals; contains reports membership.
type posRanges []struct{ lo, hi token.Pos }

func (r posRanges) contains(p token.Pos) bool {
	for _, iv := range r {
		if p >= iv.lo && p <= iv.hi {
			return true
		}
	}
	return false
}

// allocExemptRanges returns the if-statement bodies where allocation
// is not a steady-state cost: cap()-guarded blocks (the
// amortized-growth idiom — they run only when the buffer must grow)
// and cold error exits (a body ending in a return whose error result
// is non-nil — they run at most once, on the way out). hasCapGuard
// reports whether any guard was specifically a cap() check, which the
// summary layer uses to sanction grow-style helpers.
func allocExemptRanges(pass *analysis.Pass, body *ast.BlockStmt) (out posRanges, hasCapGuard bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		ifst, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		capGuard := condMentionsCap(pass, ifst.Cond)
		if capGuard || coldErrorExit(pass, ifst.Body) {
			out = append(out, struct{ lo, hi token.Pos }{ifst.Body.Pos(), ifst.Body.End()})
			hasCapGuard = hasCapGuard || capGuard
		}
		return true
	})
	return out, hasCapGuard
}

// coldErrorExit reports whether the block ends by returning a non-nil
// error — the failure path out of the function, executed at most once
// per call rather than per iteration.
func coldErrorExit(pass *analysis.Pass, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	ret, ok := body.List[len(body.List)-1].(*ast.ReturnStmt)
	if !ok || len(ret.Results) == 0 {
		return false
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	if id, ok := last.(*ast.Ident); ok {
		if _, isNil := pass.ObjectOf(id).(*types.Nil); isNil {
			return false
		}
	}
	t := pass.TypeOf(last)
	return t != nil && types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

func condMentionsCap(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "cap" {
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// captured names one enclosing local the literal captures, or "" when
// the literal is capture-free (a static func value, no allocation).
func captured(pass *analysis.Pass, lit *ast.FuncLit, fd *ast.FuncDecl) string {
	inner := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.Pkg.Info.Defs[n]; obj != nil {
				inner[obj] = true
			}
		}
		return true
	})
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || name != "" {
			return name == ""
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj == nil || inner[obj] {
			return true
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && obj.Pkg() == pass.Pkg.Types && obj.Parent() != pass.Pkg.Types.Scope() && obj.Parent() != nil {
			if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() {
				name = obj.Name()
			}
		}
		return true
	})
	return name
}

// allocSummaries reports, per package-local declaration, whether its
// body unconditionally allocates — make/new, map/slice/address-taken
// literals, or string<->[]byte conversions outside a cap() guard.
// Amortized-growth helpers (any cap() guard in the body) are
// sanctioned wholesale: their steady-state path is allocation-free by
// construction. Memoized so allocfree and the fact exporter share one
// computation.
func allocSummaries(pass *analysis.Pass) map[*types.Func]bool {
	return pass.Pkg.Memo("lint.allocSummaries", func() any {
		sums := map[*types.Func]bool{}
		for fn, fd := range localDeclsFor(pass) {
			if fd.Body == nil {
				continue
			}
			sums[fn] = bodyAllocates(pass, fd.Body)
		}
		return sums
	}).(map[*types.Func]bool)
}

func bodyAllocates(pass *analysis.Pass, body *ast.BlockStmt) bool {
	guarded, hasCapGuard := allocExemptRanges(pass, body)
	allocates := false
	ast.Inspect(body, func(n ast.Node) bool {
		if allocates {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CompositeLit:
			if guarded.contains(n.Pos()) {
				return true
			}
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Map, *types.Slice:
				allocates = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && !guarded.contains(n.Pos()) {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					allocates = true
				}
			}
		case *ast.CallExpr:
			if guarded.contains(n.Pos()) {
				return true
			}
			if tv, ok := pass.Pkg.Info.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
				if isStringByteConv(tv.Type, pass.TypeOf(n.Args[0])) {
					allocates = true
				}
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin && (id.Name == "make" || id.Name == "new") {
					allocates = true
				}
			}
		}
		return true
	})
	if !allocates {
		return false
	}
	// Amortized-growth sanction: a body that branches on cap() is a
	// grow-style helper whose allocation is the resize path.
	return !hasCapGuard
}

// exportAllocFacts publishes an AllocFact for every exported
// declaration whose body allocates, so hot paths in dependent packages
// see cross-package allocation without reading this package's source.
func exportAllocFacts(pass *analysis.Pass) {
	for fn, allocates := range allocSummaries(pass) {
		if allocates && fn.Exported() {
			pass.ExportObjectFact(fn, &AllocFact{Allocates: true})
		}
	}
}
