// Package workpool is a corpus stub of the repository's
// internal/workpool surface: just enough for the tokenpair and ctxflow
// analyzers to resolve Tokens.Acquire/AcquireCtx/Release by type (the
// analyzers match the package by leaf name, so this stub stands in for
// repro/internal/workpool).
package workpool

import "context"

// Tokens is the stub of the shared concurrency budget.
type Tokens struct{ ch chan struct{} }

// New returns a budget of n tokens.
func New(n int) *Tokens { return &Tokens{ch: make(chan struct{}, n)} }

// Acquire takes one token, blocking until one is free.
func (t *Tokens) Acquire() { t.ch <- struct{}{} }

// AcquireCtx takes one token or returns the context's error, in which
// case no token is held.
func (t *Tokens) AcquireCtx(ctx context.Context) error {
	select {
	case t.ch <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a token taken by Acquire or AcquireCtx.
func (t *Tokens) Release() { <-t.ch }
