// The watcher-over-a-worker-group shape: the literal blocks on a
// WaitGroup the workers drain, so the group bounds its lifetime — no
// directive needed (this is the coordinator's dead-watcher pattern).
package goroleak

import "sync"

func watchGroup(dead *sync.WaitGroup, stop func()) {
	go func() {
		dead.Wait()
		stop()
	}()
}
