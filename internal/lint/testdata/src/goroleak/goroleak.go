// Package goroleak is the corpus for the goroleak analyzer: every
// goroutine must be joined — WaitGroup pairing, close-join, send-join,
// or a ctx/done bound. The accept-loop cases pin the distributed-sweep
// teardown race in both its broken (pre-fix) and fixed shapes.
package goroleak

import (
	"context"
	"net"
	"sync"
	"time"
)

// AcceptLoopRace is the exact pre-fix coordinator shape: the accept
// loop is spawned with no join of its own. Teardown closes the
// listener and waits for the handlers, but nothing waits for the
// accept loop itself — it can still be between Accept returning and
// handlers.Add when Wait passes, and the handler it then spawns races
// the caller's cleanup.
func AcceptLoopRace(ln net.Listener, handle func(net.Conn)) func() {
	var handlers sync.WaitGroup
	go func() { // want "goroutine is not joined"
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				handle(conn)
			}()
		}
	}()
	return func() {
		ln.Close()
		handlers.Wait()
	}
}

// AcceptLoopJoined is the fixed shape: the accept loop closes
// acceptDone on every exit path, and teardown receives from it after
// closing the listener — only then is the handler group complete and
// Wait sound.
func AcceptLoopJoined(ln net.Listener, handle func(net.Conn)) func() {
	var handlers sync.WaitGroup
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				handle(conn)
			}()
		}
	}()
	return func() {
		ln.Close()
		<-acceptDone
		handlers.Wait()
	}
}

// WaitGroupJoined is the canonical worker pattern: Add before the
// spawn, deferred Done, Wait in the same function.
func WaitGroupJoined(n int, work func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// DoneNotOnAllPaths: the early return skips wg.Done, so Wait hangs on
// the error path — Done must be deferred or reached on every exit.
func DoneNotOnAllPaths(work func() error) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "goroutine is not joined"
		if err := work(); err != nil {
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// AddInsideGoroutine: Add racing the spawn means Wait can pass before
// the goroutine registers itself — Add must precede the go statement.
func AddInsideGoroutine(work func()) {
	var wg sync.WaitGroup
	go func() { // want "goroutine is not joined"
		wg.Add(1)
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// FieldGroup: the WaitGroup is owned wider than this function (a struct
// field), so the Wait lives with the owner; the Add/Done pairing here
// is still required and suffices.
type pool struct {
	wg sync.WaitGroup
}

func (p *pool) Spawn(work func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}

// SendJoined is the spawner idiom: the body's only exit sends the
// result, and the returned closure receives it — whoever calls the
// closure joins the goroutine.
func SendJoined(run func() error) func() error {
	done := make(chan error, 1)
	go func() {
		done <- run()
	}()
	return func() error { return <-done }
}

// CtxBounded: the body blocks on ctx.Done(), so cancellation reaps it;
// its lifetime is the context's.
func CtxBounded(ctx context.Context, conn net.Conn) {
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
}

// TickerBounded: a done-shaped channel (chan struct{}) bounds the loop.
func TickerBounded(stop chan struct{}, tick func()) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				tick()
			}
		}
	}()
}

// NamedWithCtx: a named callee handed the caller's context owns its
// termination through it.
func NamedWithCtx(ctx context.Context, run func(context.Context) error) {
	go runForever(ctx, run)
}

func runForever(ctx context.Context, run func(context.Context) error) {
	_ = run(ctx)
}

// NamedDetached: a named callee with no context and no channel is
// unreachable once spawned.
func NamedDetached(run func(context.Context) error) {
	go detached(run) // want "goroutine calls detached with no context or channel"
}

func detached(run func(context.Context) error) {
	_ = run(context.TODO())
}

// PlainLeak: no join of any kind.
func PlainLeak(work func()) {
	go func() { // want "goroutine is not joined"
		work()
	}()
}
