// Package ctxflow is the corpus for the ctxflow analyzer: minting fresh
// context roots in library code is flagged, as is accepting a context
// and then calling the context-free variant of an API that has a Ctx
// sibling; threading the context through is allowed. The networking
// cases pin the distributed-sweep idiom: dial and accept loops must be
// governed by the caller's context, never a fresh root.
package ctxflow

import (
	"context"
	"net"

	"workpool"
)

// Mint detaches its callees from the caller's cancellation.
func Mint(tok *workpool.Tokens) error {
	return RunCtx(context.Background(), tok) // want "context.Background"
}

// Todo is the same failure through the other constructor.
func Todo(tok *workpool.Tokens) error {
	return RunCtx(context.TODO(), tok) // want "context.TODO"
}

// RunCtx threads its context into the ctx-aware variant: allowed.
func RunCtx(ctx context.Context, tok *workpool.Tokens) error {
	if err := tok.AcquireCtx(ctx); err != nil {
		return err
	}
	defer tok.Release()
	return nil
}

// Drop accepts a context but calls the context-free Acquire even though
// AcquireCtx exists, silently dropping cancellation mid-chain.
func Drop(ctx context.Context, tok *workpool.Tokens) error {
	tok.Acquire() // want "Drop accepts a context but calls Acquire"
	defer tok.Release()
	return use(ctx)
}

func use(ctx context.Context) error { return ctx.Err() }

// DialDetached mints a root for the dial, detaching the connection
// attempt from the sweep's cancellation.
func DialDetached(addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(context.Background(), "tcp", addr) // want "context.Background"
}

// DialThreaded passes the caller's context into the dial: a cancelled
// sweep abandons the connection attempt. Allowed.
func DialThreaded(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// AcceptLoop is the coordinator idiom: Accept has no Ctx sibling, so the
// loop is governed by closing the listener from a ctx-watching goroutine
// — no fresh context root anywhere. Allowed.
func AcceptLoop(ctx context.Context, ln net.Listener) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			ln.Close() // unblocks Accept below
		case <-done:
		}
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return ctx.Err()
		}
		conn.Close()
	}
}

// AcceptLoopDetached hides the accept loop's lifetime behind a minted
// root instead of the caller's context.
func AcceptLoopDetached(ln net.Listener) error {
	return AcceptLoop(context.TODO(), ln) // want "context.TODO"
}

// ServeCtx is the cancellation-aware implementation; Serve is its
// sanctioned legacy wrapper — no ctx parameter, and the minted root is
// handed straight to the declaration's own Ctx variant. The root is the
// API seam itself, so nothing detaches. Allowed.
func ServeCtx(ctx context.Context, ln net.Listener) error {
	return AcceptLoop(ctx, ln)
}

func Serve(ln net.Listener) error {
	return ServeCtx(context.Background(), ln)
}

// ServeDetour mints a root for a Ctx variant that is not its own —
// not the wrapper shape, still flagged.
func ServeDetour(ln net.Listener) error {
	return AcceptLoop(context.Background(), ln) // want "context.Background"
}
