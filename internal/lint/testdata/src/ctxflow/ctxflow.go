// Package ctxflow is the corpus for the ctxflow analyzer: minting fresh
// context roots in library code is flagged, as is accepting a context
// and then calling the context-free variant of an API that has a Ctx
// sibling; threading the context through is allowed.
package ctxflow

import (
	"context"

	"workpool"
)

// Mint detaches its callees from the caller's cancellation.
func Mint(tok *workpool.Tokens) error {
	return RunCtx(context.Background(), tok) // want "context.Background"
}

// Todo is the same failure through the other constructor.
func Todo(tok *workpool.Tokens) error {
	return RunCtx(context.TODO(), tok) // want "context.TODO"
}

// RunCtx threads its context into the ctx-aware variant: allowed.
func RunCtx(ctx context.Context, tok *workpool.Tokens) error {
	if err := tok.AcquireCtx(ctx); err != nil {
		return err
	}
	defer tok.Release()
	return nil
}

// Drop accepts a context but calls the context-free Acquire even though
// AcquireCtx exists, silently dropping cancellation mid-chain.
func Drop(ctx context.Context, tok *workpool.Tokens) error {
	tok.Acquire() // want "Drop accepts a context but calls Acquire"
	defer tok.Release()
	return use(ctx)
}

func use(ctx context.Context) error { return ctx.Err() }
