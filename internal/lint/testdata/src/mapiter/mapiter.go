// Package mapiter is the corpus for the mapiter analyzer: map-order
// float reductions and escapes are flagged; the collect-then-sort idiom,
// integer accumulation and key-indexed writes are allowed.
package mapiter

import "sort"

// Sum accumulates a float in map order: the summation order is
// randomized per range statement, so the rounding differs between runs.
func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want "accumulates a non-integer value"
	}
	return s
}

// Count accumulates an integer: exact and commutative, allowed.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// SortedSum is the sanctioned idiom: collect keys, sort, iterate sorted.
func SortedSum(m map[string]float64) float64 {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// First returns from inside the iteration: which entry is first is
// randomized.
func First(m map[string]int) string {
	for k := range m {
		return k // want "returns from inside the iteration"
	}
	return ""
}

// Values appends non-key values to an outer slice in map order.
func Values(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want "appends non-key values"
	}
	return out
}

// Double writes entries indexed by the range key: distinct keys, so the
// writes commute. Allowed.
func Double(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = 2 * v
	}
	return out
}

// LoopLocal confines all order-dependent state to the iteration: the
// scratch dies with each entry. Allowed.
func LoopLocal(m map[string][]float64) int {
	total := 0
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		if s > 0 {
			total++
		}
	}
	return total
}

// Max assigns an outer non-integer in map order: ties resolve to a
// randomized winner.
func Max(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v // want "assigns to an outer variable"
		}
	}
	return best
}

// SubsampleMean averages per-sample ψ-terms keyed by drawn index in map
// order: float rounding then depends on the iteration order, so a
// subsampled estimate would differ between repeat runs even with an
// identical draw. The estimator keeps the terms in a slice in draw
// order instead.
func SubsampleMean(terms map[int]float64) float64 {
	var s float64
	for _, t := range terms {
		s += t // want "accumulates a non-integer value"
	}
	return s / float64(len(terms))
}

// SubsampleMeanOrdered is the sanctioned form of the same reduction:
// the draw order is part of the estimator's contract, so the terms live
// in a slice and the mean is a fixed-order sum.
func SubsampleMeanOrdered(terms []float64) float64 {
	var s float64
	for _, t := range terms {
		s += t
	}
	return s / float64(len(terms))
}

// SubsampleCI collects per-index deviation terms from a weights map in
// map order: the term list — and the CI computed from it — would come
// out in a different order each run. (Appending the bare key is the
// allowed collect-then-sort idiom; appending anything else is not.)
func SubsampleCI(weights map[int]float64) []float64 {
	var devs []float64
	for _, w := range weights {
		devs = append(devs, w*w) // want "appends non-key values"
	}
	return devs
}
