// Package allocfree is the corpus for the hot-path allocation
// analyzer: //sopslint:hotpath is the corpus stand-in for the repo's
// central hot-path list, and every steady-state allocation class below
// carries a want.
package allocfree

import (
	"fmt"

	"allocfree/helper"
)

type point struct{ X, Y float64 }

type box struct{ buf []float64 }

//sopslint:hotpath corpus stand-in for a per-step inner loop
func step(buf []float64) []float64 {
	s := make([]float64, 4) // want "make allocates"
	_ = s
	t := []int{1, 2} // want "slice literal allocates"
	_ = t
	u := map[string]bool{} // want "map literal allocates"
	_ = u
	p := &point{1, 2} // want "address-taken composite literal escapes to the heap"
	_ = p
	q := point{1, 2} // stack value: fine
	_ = q
	var local []float64
	local = append(local, 1) // want "append may grow the backing array"
	_ = local
	buf = append(buf, 1) // caller-provided dst: the reuse idiom
	n := 3
	f := func() { n++ } // want "closure capturing n allocates its environment"
	f()
	_ = fmt.Sprint(n) // want "variadic call to fmt.Sprint materializes an argument slice" "boxes it on the heap"
	b := []byte("hi") // want "conversion copies"
	_ = b
	_ = helper.Build(3) // want "call to helper.Build, which allocates,"
	_ = localAlloc()    // want "call to allocfree.localAlloc, which allocates,"
	buf = helper.Grow(buf, 8)
	if cap(buf) < 9 {
		buf = make([]float64, 9) // cap-guarded grow path: fine
	}
	return buf
}

func localAlloc() []int { return []int{1} }

//sopslint:hotpath scratch reuse is the sanctioned steady-state shape
func (b *box) fill(v float64) {
	b.buf = append(b.buf[:0], v) // reslice dst: fine
	logs := b.buf[:0]
	logs = append(logs, v) // scratch-derived local: fine
	b.buf = logs
}

//sopslint:hotpath error exits are cold
func hotErr(n int) error {
	if n < 0 {
		return fmt.Errorf("allocfree: bad n %d", n) // cold error exit: fine
	}
	return nil
}

/* want "needs a reason" */ //sopslint:hotpath
func hotNoReason()          {}
