// Package helper is the cross-package half of the allocfree corpus:
// Build's unconditional allocation travels to importers as an
// AllocFact; Grow's cap-guarded amortized growth exports nothing.
package helper

// Build allocates a fresh slice on every call.
func Build(n int) []float64 {
	return make([]float64, n)
}

// Grow reuses s when it is large enough: the amortized scratch-growth
// shape, sanctioned in hot paths.
func Grow(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}
