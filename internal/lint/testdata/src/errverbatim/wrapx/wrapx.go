// Package wrapx is the cross-package half of the errverbatim corpus:
// its exported wrapper folds an error parameter into a new error, and
// that flow reaches importers only as an ErrWrapFact.
package wrapx

import "fmt"

// Wrap annotates err with the failing operation.
func Wrap(op string, err error) error {
	return fmt.Errorf("%s: %w", op, err)
}
