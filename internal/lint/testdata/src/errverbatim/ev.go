// Package errverbatim is the corpus for the cancellation-verbatim
// analyzer: ctx.Err() and the context sentinels must be returned
// untouched — not wrapped, laundered through a helper, or replaced by
// a fabricated error.
package errverbatim

import (
	"context"
	"errors"
	"fmt"

	"errverbatim/wrapx"
)

// WrapDirect wraps the tracked cancellation error in fmt.Errorf.
func WrapDirect(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("stopped: %w", err) // want "WrapDirect wraps the context cancellation error"
	}
	return nil
}

// CanceledSentinel wraps the package sentinel itself.
func CanceledSentinel() error {
	return fmt.Errorf("stop: %w", context.Canceled) // want "CanceledSentinel wraps the context cancellation error"
}

// Replace observes Done and fabricates a fresh error.
func Replace(ctx context.Context, done chan struct{}) error {
	select {
	case <-ctx.Done():
		return errors.New("cancelled") // want "Replace observes cancellation but returns a fabricated error"
	case <-done:
		return nil
	}
}

// ReplaceErrf observes cancellation and fabricates via Errorf without
// carrying the sentinel.
func ReplaceErrf(ctx context.Context) error {
	if ctx.Err() != nil {
		return fmt.Errorf("gave up after cancellation") // want "ReplaceErrf observes cancellation but returns a fabricated error"
	}
	return nil
}

// LaunderLocal pushes the sentinel through a package-local wrapper.
func LaunderLocal(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return annotate(ctx.Err()) // want "LaunderLocal passes the context cancellation error to errverbatim.annotate"
	}
}

func annotate(err error) error { return fmt.Errorf("run: %w", err) }

// LaunderRemote pushes it through the cross-package helper: visible
// only through wrapx's ErrWrapFact.
func LaunderRemote(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return wrapx.Wrap("run", ctx.Err()) // want "LaunderRemote passes the context cancellation error to wrapx.Wrap"
	}
}

// Verbatim is the sanctioned shape: the sentinel flows out untouched.
func Verbatim(ctx context.Context, work chan int) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case _, ok := <-work:
			if !ok {
				return nil
			}
		}
	}
}

// VerbatimTracked returns the tracked ident untouched.
func VerbatimTracked(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}
