// Package watcher is the cross-package half of the goroleak fact
// corpus: Watch is bounded by the WaitGroup it blocks on, and that
// reaches importers only as a BoundedFact; Spin is unbounded and
// exports nothing.
package watcher

import "sync"

// Watch blocks until the group drains: the group both bounds it and
// reaps it.
func Watch(wg *sync.WaitGroup) {
	wg.Wait()
}

// Spin runs forever with nothing to join it.
func Spin() {
	for {
	}
}
