// Package goroleakx spawns another package's exported loops: the
// Watch spawn is recognized as joined only through watcher's
// BoundedFact — stub the fact store and it would be flagged too.
package goroleakx

import (
	"sync"

	"goroleakx/watcher"
)

// Spawn launches both loops: Watch is fact-bounded, Spin leaks.
func Spawn(wg *sync.WaitGroup) {
	go watcher.Watch(wg)
	go watcher.Spin() // want "no context or channel to join it"
}
