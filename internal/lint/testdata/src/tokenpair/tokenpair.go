// Package tokenpair is the corpus for the tokenpair analyzer: every
// acquired token must be released on every path, by defer or on all
// branches; the error return of AcquireCtx holds nothing.
package tokenpair

import (
	"context"
	"errors"

	"workpool"
)

// DeferPair is the gold-standard pairing: allowed.
func DeferPair(tok *workpool.Tokens) {
	tok.Acquire()
	defer tok.Release()
	work()
}

// DeferLit releases inside a deferred closure: allowed.
func DeferLit(tok *workpool.Tokens) {
	tok.Acquire()
	defer func() {
		work()
		tok.Release()
	}()
	work()
}

// AllBranches releases on every path after the if-init acquire form:
// the error branch holds nothing, and both surviving paths release.
func AllBranches(ctx context.Context, tok *workpool.Tokens) error {
	if err := tok.AcquireCtx(ctx); err != nil {
		return err
	}
	if mode() {
		tok.Release()
		return nil
	}
	work()
	tok.Release()
	return nil
}

// CtxAllPaths uses the standalone assign + error-check form; the check
// branch holds nothing and the fallthrough path releases. Allowed.
func CtxAllPaths(ctx context.Context, tok *workpool.Tokens) error {
	err := tok.AcquireCtx(ctx)
	if err != nil {
		return err
	}
	work()
	tok.Release()
	return nil
}

// LeakOnError returns from the error branch with the token still held.
func LeakOnError(tok *workpool.Tokens) error {
	tok.Acquire() // want "not released on every path"
	if mode() {
		return errors.New("leaks the token")
	}
	tok.Release()
	return nil
}

// LeakAtEnd falls off the end of the function still holding.
func LeakAtEnd(tok *workpool.Tokens) {
	tok.Acquire() // want "not released on every path"
	work()
}

// PanicPath treats the panic as process unwinding, not a leak: allowed.
func PanicPath(tok *workpool.Tokens) {
	tok.Acquire()
	if mode() {
		panic("unwinding releases nothing, but the process is done for")
	}
	tok.Release()
}

func work()      {}
func mode() bool { return false }
