// Package chansend is the corpus for the chansend analyzer: a blocking
// send in a producer loop on a locally made unbuffered channel must sit
// in a select with a done/ctx arm. The pool cases pin the workpool
// first-error deadlock in both its broken (pre-fix) and fixed shapes.
package chansend

import (
	"context"
	"sync"
)

// PoolDeadlock is the exact pre-fix workpool shape: workers return on
// the first error, and the bare send then blocks forever — the
// producer never learns the consumers are gone, and Wait never
// returns.
func PoolDeadlock(n, workers int, fn func(int) error) error {
	next := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i // want "blocking send on unbuffered next in a loop"
	}
	close(next)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// PoolGuarded is the fixed shape: the send shares a select with the
// done and ctx arms, so a dead consumer or a cancelled caller unblocks
// the producer.
func PoolGuarded(ctx context.Context, n, workers int, fn func(int) error) error {
	next := make(chan int)
	done := make(chan struct{})
	var once sync.Once
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					once.Do(func() { firstErr = err; close(done) })
					return
				}
			}
		}()
	}
produce:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break produce
		case <-ctx.Done():
			break produce
		}
	}
	close(next)
	wg.Wait()
	return firstErr
}

// SingleArmSelect: a one-clause select with no default blocks exactly
// like a bare send and earns no exemption.
func SingleArmSelect(n int) {
	next := make(chan int)
	go func() {
		for range next {
		}
	}()
	for i := 0; i < n; i++ {
		select {
		case next <- i: // want "blocking send on unbuffered next in a loop"
		}
	}
	close(next)
}

// DefaultSelect: a default arm makes the send non-blocking; dropping
// work is the caller's policy decision, not a deadlock.
func DefaultSelect(n int) {
	next := make(chan int)
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		default:
		}
	}
}

// Buffered: capacity is the join slack the producer relies on; a
// buffered channel is out of scope.
func Buffered(n int) chan int {
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	return next
}

// NotInLoop: a single send is the send-join idiom, not a producer loop.
func NotInLoop(run func() error) func() error {
	done := make(chan error, 1)
	go func() {
		done <- run()
	}()
	return func() error { return <-done }
}

// ParamChannel: the caller made the channel and owns its capacity and
// consumers; resolving blame across the call boundary is out of scope.
func ParamChannel(next chan int, n int) {
	for i := 0; i < n; i++ {
		next <- i
	}
}
