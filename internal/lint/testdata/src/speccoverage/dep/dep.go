// Package dep is the cross-package half of the speccoverage corpus:
// its nohash annotation reaches the root package only as a NoHashFact,
// and its unannotated Extra field is reported back at the root.
package dep

// Knobs is a spec fragment embedded in the root corpus spec.
type Knobs struct {
	// M keys the estimator grid and is hashed by the root.
	M int
	// Workers is excluded at the source; importers see the NoHashFact.
	Workers int //sopslint:nohash parallelism knob, results are bit-identical for every count
	// Extra is the added-but-forgotten knob the root never hashes.
	Extra float64
}
