// Package speccoverage is the corpus for the fingerprint-coverage
// analyzer: every field reachable from a Fingerprint root must be
// hashed, whole-covered, or annotated //sopslint:nohash with a reason.
package speccoverage

import (
	"fmt"
	"hash/fnv"
	"io"

	"speccoverage/dep"
)

// Whole is hashed wholesale via %+v, so its fields need no per-field
// coverage.
type Whole struct {
	X int
	Y int
}

// Spec is the fingerprint subject under test.
type Spec struct {
	Name string
	K    int
	W    Whole
	Deep dep.Knobs
	Skip int //sopslint:nohash derived from K at load time
	Bad  int /* want "needs a reason" */ //sopslint:nohash
	Miss int // want "field Spec.Miss is fingerprint-reachable but never hashed"
}

// Validate keeps Spec checkable before it keys any result.
func (s Spec) Validate() error {
	if s.K <= 0 {
		return fmt.Errorf("speccoverage: K must be positive")
	}
	return nil
}

// Fingerprint covers every knob except Miss — and dep.Knobs.Extra,
// which only the NoHashFact-aware cross-package walk can see.
func (s Spec) Fingerprint() uint64 { // want "field Knobs.Extra \\(package speccoverage/dep\\) is fingerprint-reachable but never hashed"
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|", s.Name, s.K)
	fmt.Fprintf(h, "%+v|", s.W)
	writeDeep(h, s.Deep)
	return h.Sum64()
}

// writeDeep is in the fingerprint closure: its reads count as coverage.
func writeDeep(w io.Writer, k dep.Knobs) {
	fmt.Fprintf(w, "%d|", k.M)
}

// NoVal keys a fingerprint but cannot be checked before it runs.
type NoVal struct { // want "NoVal is a fingerprint subject but has no Validate method"
	A int
}

// NoValFingerprint is a free-function root over NoVal.
func NoValFingerprint(n NoVal) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", n.A)
	return h.Sum64()
}
