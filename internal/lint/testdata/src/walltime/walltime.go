// Package walltime is the corpus for the flow-aware walltime analyzer:
// reading the clock is legal while the value stays time-typed
// instrumentation; what gets flagged is the escape — a conversion to a
// raw number, a non-time accessor, a comparison steering control flow,
// or handing the value to another package's API. The deadline cases pin
// the distributed-sweep timeout idiom: I/O deadlines must come from the
// context, never from time.Now arithmetic.
package walltime

import (
	"context"
	"fmt"
	"net"
	"time"
)

// Stamp reads the clock and immediately reads it out as an integer:
// the UnixNano accessor is the escape.
func Stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock read time.Now"
}

// Elapsed keeps the clock read inside time.Duration: pure
// instrumentation, allowed under the flow-aware contract.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Remaining likewise: a Duration result is transparently time-typed.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline)
}

// Converted strips the time type from a clock-derived duration — the
// raw float can steer results.
func Converted(start time.Time) float64 {
	d := time.Since(start)
	return float64(d) // want "wall-clock read time.Since"
}

// Compared branches on a clock read: the boolean steers control flow.
func Compared(budget time.Duration, work func()) {
	start := time.Now()
	for {
		work()
		if time.Since(start) > budget { // want "wall-clock read time.Since"
			return
		}
	}
}

// Printed hands a clock-derived value to another package's API.
func Printed() {
	start := time.Now()
	fmt.Println(time.Since(start)) // want "wall-clock read time.Since"
}

// viaHelper lets its parameter escape through a conversion. Analyzed
// alone its parameter is clean (no diagnostic here); the summary
// records the param→escape flow and Laundered is flagged at the call
// site, one level deep.
func viaHelper(d time.Duration) int64 {
	return int64(d)
}

func Laundered(start time.Time) int64 {
	return viaHelper(time.Since(start)) // want "wall-clock read time.Since"
}

// Column stores a clock-derived duration into a Duration-typed struct
// field — the instrumentation-column idiom (PerEval). Allowed.
type stats struct {
	PerEval time.Duration
}

func Column(reps int, work func()) stats {
	start := time.Now()
	for i := 0; i < reps; i++ {
		work()
	}
	return stats{PerEval: time.Since(start) / time.Duration(reps)}
}

// Shift is pure arithmetic on a caller-supplied instant: allowed.
func Shift(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}

// Span is duration arithmetic with no clock read: allowed.
func Span(steps int, per time.Duration) time.Duration {
	return time.Duration(steps) * per
}

// DeadlineFromClock fabricates an I/O deadline from the wall clock —
// the timeout drifts from the caller's cancellation and the clock read
// makes the frame exchange unreproducible.
func DeadlineFromClock(conn net.Conn, d time.Duration) error {
	return conn.SetReadDeadline(time.Now().Add(d)) // want "wall-clock read time.Now"
}

// DeadlineFromCtx forwards the deadline the caller already owns: the
// context is the single clock authority. Allowed.
func DeadlineFromCtx(ctx context.Context, conn net.Conn) error {
	if dl, ok := ctx.Deadline(); ok {
		return conn.SetReadDeadline(dl)
	}
	return nil
}

// CancelByClose is the deadline-free alternative the sweep protocol
// uses: no SetDeadline at all, a ctx-watching goroutine severs the
// connection and the blocked read returns. Allowed.
func CancelByClose(ctx context.Context, conn net.Conn) {
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
}
