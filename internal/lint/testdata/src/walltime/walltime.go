// Package walltime is the corpus for the walltime analyzer: reading the
// wall clock is flagged; pure time arithmetic on values passed in is
// allowed.
package walltime

import "time"

// Stamp reads the wall clock directly.
func Stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock read time.Now"
}

// Elapsed reads the wall clock through Since.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read time.Since"
}

// Remaining reads the wall clock through Until.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "wall-clock read time.Until"
}

// Shift is pure arithmetic on a caller-supplied instant: allowed.
func Shift(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}

// Span is duration arithmetic with no clock read: allowed.
func Span(steps int, per time.Duration) time.Duration {
	return time.Duration(steps) * per
}
