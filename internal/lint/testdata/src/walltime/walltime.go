// Package walltime is the corpus for the walltime analyzer: reading the
// wall clock is flagged; pure time arithmetic on values passed in is
// allowed. The deadline cases pin the distributed-sweep timeout idiom:
// I/O deadlines must come from the context, never from time.Now
// arithmetic.
package walltime

import (
	"context"
	"net"
	"time"
)

// Stamp reads the wall clock directly.
func Stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock read time.Now"
}

// Elapsed reads the wall clock through Since.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read time.Since"
}

// Remaining reads the wall clock through Until.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "wall-clock read time.Until"
}

// Shift is pure arithmetic on a caller-supplied instant: allowed.
func Shift(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}

// Span is duration arithmetic with no clock read: allowed.
func Span(steps int, per time.Duration) time.Duration {
	return time.Duration(steps) * per
}

// DeadlineFromClock fabricates an I/O deadline from the wall clock —
// the timeout drifts from the caller's cancellation and the clock read
// makes the frame exchange unreproducible.
func DeadlineFromClock(conn net.Conn, d time.Duration) error {
	return conn.SetReadDeadline(time.Now().Add(d)) // want "wall-clock read time.Now"
}

// DeadlineFromCtx forwards the deadline the caller already owns: the
// context is the single clock authority. Allowed.
func DeadlineFromCtx(ctx context.Context, conn net.Conn) error {
	if dl, ok := ctx.Deadline(); ok {
		return conn.SetReadDeadline(dl)
	}
	return nil
}

// CancelByClose is the deadline-free alternative the sweep protocol
// uses: no SetDeadline at all, a ctx-watching goroutine severs the
// connection and the blocked read returns. Allowed.
func CancelByClose(ctx context.Context, conn net.Conn) {
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
}
