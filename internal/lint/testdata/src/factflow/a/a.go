// Package a is the producer half of the cross-package fact corpus: it
// exports clock- and map-order-tainted functions whose TaintFacts are
// the only way factflow/b's diagnostics can fire.
package a

import "time"

// Stamp returns the wall clock. Time-typed all the way through, so it
// is clean here — but its exported TaintFact records the clock in the
// return mask for every importer.
func Stamp() time.Time { return time.Now() }

// Keys returns m's keys in map iteration order: the return-sink diag
// below is local, and the exported TaintFact marks the return as
// map-order tainted for importers.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out // want "nondeterministic value .* reaches the result returned by Keys"
}
