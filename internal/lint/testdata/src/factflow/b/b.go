// Package b is the consumer half of the cross-package fact corpus:
// every want below depends on a TaintFact imported from factflow/a —
// stub the fact store and this file is silent.
package b

import (
	"fmt"
	"hash"
	"io"

	"factflow/a"
)

// Leak hands the clock value from another package to an external API:
// visible only through a.Stamp's TaintFact.
func Leak(w io.Writer) {
	fmt.Fprintln(w, a.Stamp()) // want "wall-clock read time.Now passed to fmt.Fprintln"
}

// Digest hashes map-iteration-order bytes minted in another package:
// visible only through a.Keys's TaintFact.
func Digest(h hash.Hash, m map[string]int) {
	for _, k := range a.Keys(m) {
		h.Write([]byte(k)) // want "nondeterministic value .* feeds the fingerprint/checkpoint hash"
	}
}
