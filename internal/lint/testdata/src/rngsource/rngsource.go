// Package rngsource is the corpus for the rngsource analyzer: any
// import of a randomness source outside internal/rngx is flagged at the
// import site; deterministic stdlib imports are allowed.
package rngsource

import (
	crand "crypto/rand" // want "import of crypto/rand outside internal/rngx"
	"math/rand"         // want "import of math/rand outside internal/rngx"
	"sort"
)

// Roll draws from the flagged global source.
func Roll() int { return rand.Intn(6) }

// Nonce reads the flagged crypto source.
func Nonce() []byte {
	b := make([]byte, 8)
	crand.Read(b)
	return b
}

// Sorted uses an allowed, deterministic import.
func Sorted(xs []int) { sort.Ints(xs) }

// SubsampleDraw is the forbidden way to draw an estimator's evaluation
// subsample: rand.Perm's order depends on the global source, so the
// drawn index set — and with it the approximate-tier estimate — would
// differ between runs and workers. The sanctioned draw is
// rngx.NewStream(seed, sequence).SampleInto, keyed by the spec.
func SubsampleDraw(m, r int) []int {
	return rand.Perm(m)[:r]
}
