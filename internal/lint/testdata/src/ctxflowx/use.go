// Package ctxflowx holds a context but hands control to rootsrc.Run,
// which mints its own root — a drop visible only through the imported
// RootMintFact.
package ctxflowx

import (
	"context"

	"ctxflowx/rootsrc"
)

// Do drops ctx on the floor at the rootsrc.Run boundary.
func Do(ctx context.Context) {
	rootsrc.Run() // want "Do accepts a context but calls rootsrc.Run, which mints its own context root"
}
