// Package rootsrc is the cross-package half of the ctxflow fact
// corpus: Run mints its own context root outside the sanctioned
// Run/RunCtx wrapper shape, which is a local diagnostic here and a
// RootMintFact for every importer.
package rootsrc

import "context"

// Run detaches its callee tree from any caller's cancellation.
func Run() {
	helper(context.Background()) // want "context.Background\\(\\) in library code"
}

func helper(ctx context.Context) { <-ctx.Done() }
