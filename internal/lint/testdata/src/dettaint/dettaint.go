// Package dettaint is the corpus for the dettaint analyzer:
// nondeterminism taint — map iteration order, the wall clock, raw
// math/rand randomness — is followed through locals, arithmetic,
// containers and one level of package-local calls, and flagged where it
// reaches a result returned by an exported function or a write into the
// fingerprint hash. The sanctioned idioms (collect-sort-iterate,
// key-indexed writes, exact integer accumulation, rngx-style seeded
// draws) pass without directives.
package dettaint

import (
	"fmt"
	"hash"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"
)

// KeysUnsorted ranges a map and returns the keys in iteration order —
// a different sequence every run.
func KeysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out // want "map iteration order.*reaches the result returned by KeysUnsorted"
}

// KeysSorted is the collect-sort-iterate idiom: the sort call
// sanitizes the slice, and what follows is deterministic.
func KeysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SumFloat accumulates map values in floating point, where addition is
// not associative — the total depends on visit order.
func SumFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum // want "map iteration order.*reaches the result returned by SumFloat"
}

// SumInt accumulates in exact integer arithmetic, which is commutative
// and associative: order cannot show in the total.
func SumInt(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// Reindex writes through the keys it ranges: every key lands in its
// own slot, so iteration order cannot show in the output map.
func Reindex(in map[string]int) map[string]int {
	out := make(map[string]int, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// HashClock writes a clock-derived value into the fingerprint hash:
// the identity stops being a pure function of the spec.
func HashClock(h hash.Hash, start time.Time) {
	fmt.Fprintf(h, "%v", time.Since(start)) // want "time.Since.*feeds the fingerprint/checkpoint hash"
}

// HashSpec hashes only caller-supplied fields — the fingerprint idiom.
func HashSpec(name string, steps int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "name=%s steps=%d;", name, steps)
	return h.Sum64()
}

// writeField is a package-local helper whose parameter reaches a hash
// write; the summary records the param→sink flow.
func writeField(h hash.Hash, s string) {
	fmt.Fprintf(h, "%s;", s)
}

// HashViaHelper feeds map-order-tainted keys to the hash one call
// deep — flagged at the call site through writeField's summary.
func HashViaHelper(h hash.Hash, m map[string]int) {
	for k := range m {
		writeField(h, k) // want "map iteration order.*feeds the fingerprint/checkpoint hash via writeField"
	}
}

// GlobalRand draws from the shared global source, which is not derived
// from the spec seed.
func GlobalRand() float64 {
	return rand.Float64() // want "rand.Float64.*reaches the result returned by GlobalRand"
}

// SeededRand draws from an explicit source the caller seeded — the
// rngx discipline; deterministic given the seed.
func SeededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// scale is a package-local helper whose parameter flows to its result;
// LaunderedSum shows taint surviving the hop through its summary.
func scale(x float64) float64 {
	return 2 * x
}

func LaunderedSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return scale(sum) // want "map iteration order.*reaches the result returned by LaunderedSum"
}
