// Package suppress is the corpus for the //sopslint:ignore directive:
// a well-formed directive silences exactly the named analyzer on its
// own line and the line below, and a malformed directive — missing
// name, unknown name, or missing reason — is itself a diagnostic and
// suppresses nothing.
package suppress

import "time"

// Suppressed: the directive on the line above silences walltime here.
func Suppressed() int64 {
	//sopslint:ignore walltime corpus: deliberately suppressed clock read
	return time.Now().UnixNano()
}

// SameLine: the trailing-directive form silences its own line.
func SameLine() int64 {
	return time.Now().UnixNano() //sopslint:ignore walltime corpus: same-line form
}

// WrongAnalyzer: a directive naming a different (but known) analyzer
// leaves walltime findings alone — suppression is per-analyzer.
func WrongAnalyzer() int64 {
	//sopslint:ignore mapiter corpus: names a different analyzer
	return time.Now().UnixNano() // want "wall-clock read time.Now"
}

// OutOfRange: a directive two lines up is out of range; only the
// directive's own line and the next are covered.
func OutOfRange() int64 {
	//sopslint:ignore walltime corpus: too far from the finding
	_ = 0
	return time.Now().UnixNano() // want "wall-clock read time.Now"
}

// Unknown: an unknown analyzer name is a diagnostic, and the directive
// suppresses nothing.
func Unknown() int64 {
	/* want "unknown analyzer \"nosuchcheck\"" */ //sopslint:ignore nosuchcheck corpus: bogus name
	return time.Now().UnixNano()                  // want "wall-clock read time.Now"
}

// NoReason: a directive without a reason is a diagnostic, and the
// directive suppresses nothing.
func NoReason() int64 {
	/* want "needs a reason" */  //sopslint:ignore walltime
	return time.Now().UnixNano() // want "wall-clock read time.Now"
}

// Bare: a directive with no analyzer name at all.
func Bare() int64 {
	/* want "needs an analyzer name" */ //sopslint:ignore
	return time.Now().UnixNano()        // want "wall-clock read time.Now"
}

// CommaList: a comma-separated directive suppresses every named
// analyzer — walltime is in the list, so the clock read is silenced.
func CommaList() int64 {
	//sopslint:ignore mapiter,walltime corpus: comma list naming walltime
	return time.Now().UnixNano()
}

// CommaUnknown: each name in the list is validated independently — the
// typo is its own diagnostic, but the known name still suppresses, so
// one bad entry neither voids nor hides the rest.
func CommaUnknown() int64 {
	/* want "unknown analyzer \"nosuchcheck\"" */ //sopslint:ignore walltime,nosuchcheck corpus: one typo in the list
	return time.Now().UnixNano()
}

// CommaNoReason: a list consumes everything up to the first space, so a
// directive ending at the list still has no reason — one diagnostic per
// listed name, nothing suppressed.
func CommaNoReason() int64 {
	/* want "ignore mapiter needs a reason" "ignore walltime needs a reason" */ //sopslint:ignore mapiter,walltime
	return time.Now().UnixNano()                                                // want "wall-clock read time.Now"
}
