package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// SpecCoverage proves the fingerprint hashes every spec knob.
//
// Contract (DESIGN.md): a run's identity is fully determined by its
// spec, which means the fingerprint must consume every field that can
// change the numbers. The historical failure mode is silent drift: a
// field is added to Pipeline or Config, the estimator reads it, and
// the frozen fingerprint recipe never learns about it — two different
// experiments now share a checkpoint key. SpecCoverage mechanizes the
// review step that catches this:
//
//   - roots are the Fingerprint functions (any declaration named
//     Fingerprint or *Fingerprint); their subject structs are the
//     receiver and module-typed parameters;
//   - the analysis closes over package-local callees and records which
//     fields are read, and which structs are consumed whole (passed to
//     an external call such as fmt.Fprintf("%+v") or json.Marshal,
//     which covers every field transitively);
//   - structs reachable from a subject through module-typed fields are
//     checked field by field: each must be read on some fingerprint
//     path, be inside a whole-consumed struct, or carry an explicit
//     //sopslint:nohash <reason> annotation (exported via NoHashFact
//     so cross-package fields stay covered);
//   - subject structs declared in the analyzed package must also have
//     a Validate method — a spec that keys results must be checkable.
//
// The annotation requires a reason; a bare //sopslint:nohash is itself
// a diagnostic, so every exclusion is an argued decision in the code.
var SpecCoverage = &analysis.Analyzer{
	Name: "speccoverage",
	Doc:  "require every fingerprint-reachable spec field to be hashed or carry //sopslint:nohash <reason>",
	Run:  runSpecCoverage,
}

func runSpecCoverage(pass *analysis.Pass) error {
	nh := nohashFieldsFor(pass)
	for _, d := range nh.malformed {
		pass.Reportf(d, "//sopslint:nohash needs a reason — write //sopslint:nohash <why this field cannot affect results>")
	}
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasSuffix(fd.Name.Name, "Fingerprint") {
				continue
			}
			checkFingerprintRoot(pass, fd, nh)
		}
	}
	return nil
}

// checkFingerprintRoot runs the coverage analysis for one Fingerprint
// declaration.
func checkFingerprintRoot(pass *analysis.Pass, root *ast.FuncDecl, nh *nohashInfo) {
	subjects := subjectStructs(pass, root)
	if len(subjects) == 0 {
		return
	}
	closure := fingerprintClosure(pass, root)
	reads, whole := collectUses(pass, closure)
	wholeClosure(pass, whole)

	// BFS the reachable struct set from the subjects, stopping at
	// whole-consumed structs (fully covered) and nohash fields (the
	// annotation argues the subtree cannot affect results).
	seen := map[*types.Named]bool{}
	queue := append([]*types.Named{}, subjects...)
	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]
		if seen[named] {
			continue
		}
		seen[named] = true

		obj := named.Obj()
		local := obj.Pkg() == pass.Pkg.Types
		if local && !hasValidateMethod(named, pass.Pkg.Types) && isSubject(subjects, named) {
			pass.Reportf(obj.Pos(), "%s is a fingerprint subject but has no Validate method: a spec that keys results must be checkable before it runs", obj.Name())
		}
		if whole[named] {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if !local && !field.Exported() {
				continue
			}
			if fieldNoHash(pass, nh, named, field.Name()) {
				continue
			}
			if next := moduleNamed(pass, field.Type()); next != nil {
				queue = append(queue, next)
			}
			if reads[field] {
				continue
			}
			if local {
				pass.Reportf(field.Pos(), "field %s.%s is fingerprint-reachable but never hashed: hash it in %s or annotate //sopslint:nohash <reason>; an unhashed knob lets two different experiments share a checkpoint key", obj.Name(), field.Name(), root.Name.Name)
			} else {
				pass.Reportf(root.Name.Pos(), "field %s.%s (package %s) is fingerprint-reachable but never hashed by %s: hash it or annotate //sopslint:nohash <reason> at its declaration; an unhashed knob lets two different experiments share a checkpoint key", obj.Name(), field.Name(), obj.Pkg().Path(), root.Name.Name)
			}
		}
	}
}

// subjectStructs returns the module-local struct types the root
// fingerprints: its receiver and its module-struct-typed parameters.
func subjectStructs(pass *analysis.Pass, fd *ast.FuncDecl) []*types.Named {
	var out []*types.Named
	add := func(e ast.Expr) {
		if named := moduleNamed(pass, pass.TypeOf(e)); named != nil {
			out = append(out, named)
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			add(field.Type)
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			add(field.Type)
		}
	}
	return out
}

func isSubject(subjects []*types.Named, named *types.Named) bool {
	for _, s := range subjects {
		if s == named {
			return true
		}
	}
	return false
}

// fingerprintClosure returns the root plus every package-local
// declaration transitively called from it — the code that can feed the
// hash.
func fingerprintClosure(pass *analysis.Pass, root *ast.FuncDecl) []*ast.FuncDecl {
	decls := localDeclsFor(pass)
	inClosure := map[*ast.FuncDecl]bool{root: true}
	work := []*ast.FuncDecl{root}
	for len(work) > 0 {
		fd := work[0]
		work = work[1:]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass, call); fn != nil {
				if callee := decls[fn]; callee != nil && callee.Body != nil && !inClosure[callee] {
					inClosure[callee] = true
					work = append(work, callee)
				}
			}
			return true
		})
	}
	out := make([]*ast.FuncDecl, 0, len(inClosure))
	for fd := range inClosure {
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// collectUses walks the closure and records field reads (selector
// expressions outside assignment left-hand sides, attributed through
// embedded-field promotion) and whole-struct consumption (a module
// struct passed to a call outside the closure — fmt, encoding/json,
// an indirect call — which observes every field).
func collectUses(pass *analysis.Pass, closure []*ast.FuncDecl) (reads map[*types.Var]bool, whole map[*types.Named]bool) {
	reads = map[*types.Var]bool{}
	whole = map[*types.Named]bool{}
	decls := localDeclsFor(pass)
	inClosure := map[*ast.FuncDecl]bool{}
	for _, fd := range closure {
		inClosure[fd] = true
	}
	for _, fd := range closure {
		lhs := assignTargets(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if lhs[n] {
					return true
				}
				if sel, ok := pass.Pkg.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					markSelectionPath(sel, reads)
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass, n)
				if fn != nil {
					if callee := decls[fn]; callee != nil && inClosure[callee] {
						return true // reads happen inside the closure
					}
				}
				for _, arg := range n.Args {
					if named := moduleNamed(pass, pass.TypeOf(arg)); named != nil {
						whole[named] = true
					}
				}
			}
			return true
		})
	}
	return reads, whole
}

// markSelectionPath records the field a selection denotes, walking the
// embedded-field index path so promoted selectors cover the embedding
// hops too.
func markSelectionPath(sel *types.Selection, reads map[*types.Var]bool) {
	t := sel.Recv()
	for _, idx := range sel.Index() {
		for {
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return
		}
		field := st.Field(idx)
		reads[field] = true
		t = field.Type()
	}
}

// assignTargets collects the selector expressions appearing on an
// assignment's left-hand side — writes, which must not count as the
// fingerprint reading the field.
func assignTargets(body *ast.BlockStmt) map[ast.Expr]bool {
	out := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if st, ok := n.(*ast.AssignStmt); ok {
			for _, l := range st.Lhs {
				out[ast.Unparen(l)] = true
			}
		}
		return true
	})
	return out
}

// wholeClosure extends whole-struct coverage transitively: a struct
// consumed whole (%+v, json.Marshal) observes its module-struct fields
// whole as well.
func wholeClosure(pass *analysis.Pass, whole map[*types.Named]bool) {
	queue := make([]*types.Named, 0, len(whole))
	for named := range whole {
		queue = append(queue, named)
	}
	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if next := moduleNamed(pass, st.Field(i).Type()); next != nil && !whole[next] {
				whole[next] = true
				queue = append(queue, next)
			}
		}
	}
}

// moduleNamed unwraps t (through one level of pointer) to a named
// struct type declared in this module — same first import-path segment
// as the analyzed package — or nil. The first-segment rule keeps the
// analyzer testable on bare corpus paths while excluding the standard
// library and any vendored code.
func moduleNamed(pass *analysis.Pass, t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	if firstPathSegment(named.Obj().Pkg().Path()) != firstPathSegment(basePath(pass.Pkg.Types.Path())) {
		return nil
	}
	return named
}

func firstPathSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

func hasValidateMethod(named *types.Named, from *types.Package) bool {
	obj, _, _ := types.LookupFieldOrMethod(named, true, from, "Validate")
	_, ok := obj.(*types.Func)
	return ok
}

// fieldNoHash reports whether the field carries a nohash annotation —
// in this package's source, or via a NoHashFact exported by the
// struct's defining package.
func fieldNoHash(pass *analysis.Pass, nh *nohashInfo, named *types.Named, field string) bool {
	obj := named.Obj()
	if obj.Pkg() == pass.Pkg.Types {
		return nh.fields[obj] != nil && nh.fields[obj][field]
	}
	var fact NoHashFact
	if !pass.ImportObjectFact(obj, &fact) {
		return false
	}
	for _, name := range fact.Fields {
		if name == field {
			return true
		}
	}
	return false
}

// nohashInfo is the package's parsed //sopslint:nohash annotations:
// per struct TypeName, the excluded field names, plus the positions of
// annotations missing their mandatory reason.
type nohashInfo struct {
	fields    map[types.Object]map[string]bool
	malformed []token.Pos
}

const nohashPrefix = "//sopslint:nohash"

// nohashFieldsFor parses the package's struct declarations for
// field-level //sopslint:nohash annotations (doc comment or line
// comment), memoized so the analyzer and the fact exporter share one
// scan. A malformed annotation still excludes the field — the
// malformed diagnostic is the single report for it.
func nohashFieldsFor(pass *analysis.Pass) *nohashInfo {
	return pass.Pkg.Memo("lint.nohashFields", func() any {
		nh := &nohashInfo{fields: map[types.Object]map[string]bool{}}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, s := range gd.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					obj := pass.ObjectOf(ts.Name)
					if obj == nil {
						continue
					}
					for _, field := range st.Fields.List {
						ann, pos, ok := nohashAnnotation(field)
						if !ok {
							continue
						}
						if strings.TrimSpace(strings.TrimPrefix(ann, nohashPrefix)) == "" {
							nh.malformed = append(nh.malformed, pos)
						}
						for _, name := range field.Names {
							if nh.fields[obj] == nil {
								nh.fields[obj] = map[string]bool{}
							}
							nh.fields[obj][name.Name] = true
						}
					}
				}
			}
		}
		return nh
	}).(*nohashInfo)
}

// nohashAnnotation scans a struct field's doc and line comments for the
// nohash directive, returning the full comment text and its position.
func nohashAnnotation(field *ast.Field) (string, token.Pos, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, nohashPrefix) {
				return c.Text, c.Pos(), true
			}
		}
	}
	return "", 0, false
}

// exportNoHashFacts publishes a NoHashFact per exported struct with
// nohash-annotated fields, so speccoverage in dependent packages sees
// the exclusions without reading this package's source.
func exportNoHashFacts(pass *analysis.Pass) {
	nh := nohashFieldsFor(pass)
	for obj, fields := range nh.fields {
		if !obj.Exported() {
			continue
		}
		names := make([]string, 0, len(fields))
		for name := range fields {
			names = append(names, name)
		}
		sort.Strings(names)
		pass.ExportObjectFact(obj, &NoHashFact{Fields: names})
	}
}
