package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Mapiter flags `for range` over a map whose body feeds a returned or
// accumulated value in result-producing packages.
//
// Contract (DESIGN.md): repeat runs are bit-identical. Go randomizes map
// iteration order per range statement, and floating-point addition is
// not associative, so any float accumulated — or any slice appended —
// in map order differs at rounding level between two runs of the same
// binary (the PR-4 binned-estimator bug). The sanctioned idiom is the
// one sortedCounts uses: collect the keys, sort them, then iterate the
// sorted slice.
//
// The analyzer allows loop bodies that are order-insensitive:
// collecting keys into a slice (to be sorted), writing map or slice
// entries indexed by the key, integer accumulation (exact and
// commutative), deletes, and anything confined to variables declared
// inside the loop. Everything else that escapes the iteration —
// non-key appends, float accumulation, plain assignments to outer
// variables, returns, sends, calls with outer effects — is flagged.
var Mapiter = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration that feeds results in randomized order; collect and sort keys instead",
	Run:  runMapiter,
}

func runMapiter(pass *analysis.Pass) error {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			m := &mapRange{pass: pass, rs: rs}
			if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
				m.key = pass.ObjectOf(id)
			}
			m.checkStmts(rs.Body.List)
			return true
		})
	}
	return nil
}

// mapRange checks one range-over-map statement.
type mapRange struct {
	pass *analysis.Pass
	rs   *ast.RangeStmt
	key  types.Object // the range key variable, nil when blank
}

func (m *mapRange) report(n ast.Node, why string) {
	m.pass.Reportf(n.Pos(), "range over map %s is order-sensitive: %s; collect and sort the keys first (the sortedCounts idiom), or annotate //sopslint:ignore mapiter <reason>",
		types.ExprString(m.rs.X), why)
}

// declaredInside reports whether obj is declared within the range body,
// where order-dependent values may live freely — they die with the
// iteration.
func (m *mapRange) declaredInside(obj types.Object) bool {
	return obj != nil && obj.Pos() >= m.rs.Pos() && obj.Pos() <= m.rs.End()
}

func (m *mapRange) checkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		m.checkStmt(s)
	}
}

func (m *mapRange) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		m.checkAssign(s)
	case *ast.IncDecStmt:
		if !m.allowedLvalue(s.X, true) {
			m.report(s, "updates an outer non-integer value in map order")
		}
	case *ast.ExprStmt:
		m.checkExpr(s)
	case *ast.DeclStmt:
		// declares loop-local state
	case *ast.IfStmt:
		if s.Init != nil {
			m.checkStmt(s.Init)
		}
		m.checkStmts(s.Body.List)
		if s.Else != nil {
			m.checkStmt(s.Else)
		}
	case *ast.BlockStmt:
		m.checkStmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			m.checkStmt(s.Init)
		}
		if s.Post != nil {
			m.checkStmt(s.Post)
		}
		m.checkStmts(s.Body.List)
	case *ast.RangeStmt:
		// An inner range over a map gets its own check from the file
		// walk; here only the body's outer effects matter.
		m.checkStmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			m.checkStmt(s.Init)
		}
		for _, c := range s.Body.List {
			m.checkStmts(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			m.checkStmts(c.(*ast.CaseClause).Body)
		}
	case *ast.LabeledStmt:
		m.checkStmt(s.Stmt)
	case *ast.BranchStmt:
		if s.Tok == token.BREAK {
			m.report(s, "breaks out after a random subset of entries")
		} else if s.Tok == token.GOTO {
			m.report(s, "jumps out of the iteration")
		}
		// continue only skips entries — harmless by itself
	case *ast.ReturnStmt:
		m.report(s, "returns from inside the iteration, so the result depends on visit order")
	default:
		// sends, go, defer, select, …: all escape the iteration with
		// order-dependent effects
		m.report(s, "has effects outside the loop whose order is randomized")
	}
}

// checkAssign vets one assignment: every left-hand side must be
// order-insensitive.
func (m *mapRange) checkAssign(s *ast.AssignStmt) {
	if s.Tok == token.DEFINE {
		return // new loop-local variables
	}
	integerOp := false
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		integerOp = true
	}
	for i, lhs := range s.Lhs {
		if m.allowedLvalue(lhs, integerOp) {
			continue
		}
		// The one extra allowance on plain `=`: the sorted-key idiom's
		// collection step, keys = append(keys, k).
		if s.Tok == token.ASSIGN && len(s.Lhs) == len(s.Rhs) && m.isKeyAppend(s.Lhs[i], s.Rhs[i]) {
			continue
		}
		why := "assigns to an outer variable in map order"
		if integerOp {
			why = "accumulates a non-integer value (float rounding depends on summation order)"
		}
		if call, ok := ast.Unparen(s.Rhs[min(i, len(s.Rhs)-1)]).(*ast.CallExpr); ok && isBuiltin(m.pass, call, "append") {
			why = "appends non-key values to an outer slice in map order"
		}
		m.report(s, why)
		return
	}
}

// allowedLvalue reports whether writing through lhs is order-insensitive:
// blank, loop-local, key-indexed container entries, and (when the
// operator is an exact commutative accumulation) outer integers.
func (m *mapRange) allowedLvalue(lhs ast.Expr, integerOp bool) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return true
		}
		obj := m.pass.ObjectOf(lhs)
		if m.declaredInside(obj) {
			return true
		}
		if integerOp && obj != nil && isInteger(obj.Type()) {
			return true
		}
	case *ast.IndexExpr:
		// m2[k] = v or counts[key(k)] += n: each key is visited once, so
		// writes to distinct entries commute.
		if mentionsObject(m.pass, lhs.Index, m.key) {
			return true
		}
		// Indexing a loop-local container is fine regardless.
		if base, ok := ast.Unparen(lhs.X).(*ast.Ident); ok && m.declaredInside(m.pass.ObjectOf(base)) {
			return true
		}
	case *ast.SelectorExpr:
		// field write on a loop-local value
		if base, ok := ast.Unparen(lhs.X).(*ast.Ident); ok && m.declaredInside(m.pass.ObjectOf(base)) {
			return true
		}
		if integerOp {
			if t := m.pass.TypeOf(lhs); t != nil && isInteger(t) {
				return true
			}
		}
	case *ast.StarExpr:
		// *p = v through a loop-local pointer (e.g. the range value)
		if base, ok := ast.Unparen(lhs.X).(*ast.Ident); ok && m.declaredInside(m.pass.ObjectOf(base)) {
			return true
		}
	}
	return false
}

// isKeyAppend recognizes `keys = append(keys, k)` where k is exactly the
// range key: the collection half of the sanctioned collect-then-sort
// idiom.
func (m *mapRange) isKeyAppend(lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || !isBuiltin(m.pass, call, "append") || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	lhsID, ok2 := ast.Unparen(lhs).(*ast.Ident)
	if !ok || !ok2 || m.pass.ObjectOf(dst) != m.pass.ObjectOf(lhsID) {
		return false
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	return ok && m.key != nil && m.pass.ObjectOf(arg) == m.key
}

// checkExpr vets a bare expression statement in the loop body.
func (m *mapRange) checkExpr(s *ast.ExprStmt) {
	call, ok := ast.Unparen(s.X).(*ast.CallExpr)
	if !ok {
		return // bare non-call expressions have no effect
	}
	if isBuiltin(m.pass, call, "delete") {
		return // each key deleted once; deletes commute
	}
	if isBuiltin(m.pass, call, "panic") {
		return // failing fast is failing; determinism of success is intact
	}
	// Method call on a loop-local value: effects die with the iteration.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && m.declaredInside(m.pass.ObjectOf(base)) {
			return
		}
	}
	m.report(s, "calls with effects outside the loop in map order")
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}
