package lint

import (
	"repro/internal/lint/analysis"
)

// Dettaint tracks nondeterminism taint from its sources to result
// sinks in the result-producing packages and the spec fingerprint.
//
// Contract (DESIGN.md): repeat runs are bit-identical, and a run's
// fingerprint is a pure function of its spec. Three value sources break
// that if they reach a result: map iteration order (randomized per
// range statement), the wall clock, and raw math/rand randomness (rngx
// is the sanctioned, seed-derived source). Where mapiter checks the
// shape of a single loop, dettaint follows the values: taint flows
// through locals, arithmetic, containers and one level of package-local
// calls, and is reported where it lands in a sink —
//
//   - a write into a hash (the fingerprint/checkpoint identity), or
//   - a value returned by an exported function (a result leaving the
//     package).
//
// The sanctioned idioms sanitize: sorting a key slice clears its
// map-order taint (collect-sort-iterate), key-indexed container writes
// and exact integer accumulation are order-insensitive and propagate
// nothing. Wall-clock values are a dettaint concern only at hash
// writes; their instrumentation lifecycle is walltime's contract.
var Dettaint = &analysis.Analyzer{
	Name: "dettaint",
	Doc:  "track map-order/wall-clock/raw-rand taint to returned results and fingerprint hash writes",
	Run:  runDettaint,
}

func runDettaint(pass *analysis.Pass) error {
	eng := taintEngineFor(pass)
	for _, f := range pass.SourceFiles() {
		for _, u := range analysis.Units(f) {
			for _, ev := range eng.analyze(u) {
				switch ev.kind {
				case evHashSink:
					where := ""
					if ev.where != "" {
						where = " " + ev.where
					}
					pass.Reportf(ev.pos, "nondeterministic value (%s) feeds the fingerprint/checkpoint hash%s: the hash must be a pure function of the spec; derive the bytes from sorted, seed-keyed inputs, or annotate //sopslint:ignore dettaint <reason>", taintLabel(ev), where)
				case evReturnSink:
					pass.Reportf(ev.pos, "nondeterministic value (%s) reaches the result returned by %s: results must be bit-identical across runs; collect and sort map keys (the sortedCounts idiom) or draw randomness from rngx, or annotate //sopslint:ignore dettaint <reason>", taintLabel(ev), ev.where)
				}
			}
		}
	}
	return nil
}

// taintLabel names the taint source for a diagnostic, preferring the
// concrete source expression the engine recorded.
func taintLabel(ev taintEvent) string {
	if ev.src != "" {
		return ev.src
	}
	switch {
	case ev.kinds&taintMapOrder != 0:
		return "map iteration order"
	case ev.kinds&taintClock != 0:
		return "the wall clock"
	case ev.kinds&taintRand != 0:
		return "unseeded randomness"
	}
	return "nondeterministic input"
}
