// Package load typechecks packages for the sopslint suite without any
// dependency beyond the Go toolchain itself.
//
// Two loaders cover the suite's two consumers:
//
//   - Packages shells out to `go list -export -deps -json`, so every
//     dependency (standard library included) arrives as compiler export
//     data, and only the module's own packages are parsed and
//     typechecked from source — the same division of labour `go vet`
//     uses, at a fraction of a full source load.
//   - Corpus loads analysistest-style GOPATH-shaped trees
//     (testdata/src/<importpath>/*.go), resolving inter-corpus imports
//     from source and everything else from export data.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// listPkg is the subset of `go list -json` output the loaders consume.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
}

// goList runs `go list -export -deps -json` for the patterns and returns
// the decoded packages in the order `go list -deps` emits them — a
// depth-first post-order, so every package follows all of its
// dependencies — plus an index by import path.
func goList(dir string, patterns ...string) ([]*listPkg, map[string]*listPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var ordered []*listPkg
	pkgs := map[string]*listPkg{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		q := p
		ordered = append(ordered, &q)
		pkgs[p.ImportPath] = &q
	}
	return ordered, pkgs, nil
}

// exportLookup returns an importer lookup function serving export data
// files out of a go list result.
func exportLookup(pkgs map[string]*listPkg) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		p := pkgs[path]
		if p == nil || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Packages loads, parses and typechecks the module packages matched by
// the patterns (run in dir; "" means the current directory). Test files
// are not part of the returned packages — `go list` GoFiles excludes
// them — matching the suite's production-code-only scope.
//
// Packages are returned in dependency order (every package after all of
// its dependencies) and share one analysis.FactSet, so a driver that
// visits them in order sees each package's exported facts when analyzing
// its dependents — the in-process equivalent of the unitchecker's .vetx
// hand-off.
func Packages(dir string, patterns ...string) ([]*analysis.Package, error) {
	ordered, byPath, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(byPath))
	facts := analysis.NewFactSet()

	var out []*analysis.Package
	for _, p := range ordered {
		if p.Standard || p.Module == nil {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typechecking %s: %w", p.ImportPath, err)
		}
		out = append(out, &analysis.Package{
			Path: p.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info, Facts: facts,
		})
	}
	return out, nil
}

// Corpus loads the named packages from an analysistest-style tree: each
// path names a directory root/src/<path> holding one package's files.
// Imports between corpus packages resolve from source; all other imports
// resolve from toolchain export data.
func Corpus(root string, paths ...string) ([]*analysis.Package, error) {
	fset := token.NewFileSet()
	type corpusPkg struct {
		path    string
		files   []*ast.File
		imports []string
	}
	byPath := map[string]*corpusPkg{}
	inCorpus := map[string]bool{}
	for _, p := range paths {
		inCorpus[p] = true
	}

	var external []string
	seenExt := map[string]bool{}
	for _, path := range paths {
		dir := filepath.Join(root, "src", filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("corpus package %s: %w", path, err)
		}
		cp := &corpusPkg{path: path}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("corpus package %s: %w", path, err)
			}
			cp.files = append(cp.files, f)
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				cp.imports = append(cp.imports, ip)
				if !inCorpus[ip] && !seenExt[ip] {
					seenExt[ip] = true
					external = append(external, ip)
				}
			}
		}
		if len(cp.files) == 0 {
			return nil, fmt.Errorf("corpus package %s: no Go files", path)
		}
		byPath[path] = cp
	}

	exported := map[string]*listPkg{}
	if len(external) > 0 {
		sort.Strings(external)
		var err error
		_, exported, err = goList("", external...)
		if err != nil {
			return nil, err
		}
	}

	checked := map[string]*types.Package{}
	baseImporter := importer.ForCompiler(fset, "gc", exportLookup(exported))
	imp := importerFunc(func(path string) (*types.Package, error) {
		if tp := checked[path]; tp != nil {
			return tp, nil
		}
		return baseImporter.Import(path)
	})

	// Typecheck in dependency order so corpus-internal imports resolve.
	var order []string
	done := map[string]bool{}
	var visit func(string) error
	visit = func(path string) error {
		if done[path] {
			return nil
		}
		done[path] = true
		for _, ip := range byPath[path].imports {
			if inCorpus[ip] {
				if err := visit(ip); err != nil {
					return err
				}
			}
		}
		order = append(order, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	// Return in dependency order, sharing one fact store — mirroring
	// Packages, so corpus runs exercise the same fact hand-off the
	// meta-test and the vettool see.
	facts := analysis.NewFactSet()
	var out []*analysis.Package
	for _, path := range order {
		cp := byPath[path]
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, cp.files, info)
		if err != nil {
			return nil, fmt.Errorf("typechecking corpus %s: %w", path, err)
		}
		checked[path] = tpkg
		out = append(out, &analysis.Package{Path: path, Fset: fset, Files: cp.files, Types: tpkg, Info: info, Facts: facts})
	}
	return out, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
