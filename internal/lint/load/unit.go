package load

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// unitConfig mirrors the JSON compilation-unit description `go vet`
// writes for a -vettool (the x/tools unitchecker protocol): absolute
// source paths plus an export-data file for every dependency, and —
// for facts — a .vetx input per dependency and one output to write.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// ErrTypecheckTolerated reports a typecheck failure in a unit whose
// config asked for silence on typecheck failure (cmd/go sets it when
// the compiler itself will report the error).
var ErrTypecheckTolerated = errors.New("typecheck failed (tolerated by config)")

// A UnitResult is one compilation unit loaded from a vet.cfg, plus the
// obligations the unitchecker protocol attaches to it. The driver runs
// the fact pass (and, unless VetxOnly, the analyzers) over Pkg, then
// writes Pkg's fact store to VetxOutput via WriteVetx — cmd/go caches
// that file as the unit's output and feeds it to dependent units.
type UnitResult struct {
	// Pkg is the typechecked unit with its dependencies' facts already
	// decoded into Pkg.Facts. Nil for units outside the analysis scope
	// (their placeholder .vetx has already been written).
	Pkg *analysis.Package
	// VetxOnly marks a dependency-only unit: compute and write facts,
	// report nothing.
	VetxOnly bool
	// VetxOutput is the facts file to write after analysis ("" = none;
	// already written for out-of-scope units).
	VetxOutput string
}

// Unit loads the compilation unit named by a vet.cfg path. The analyze
// predicate bounds the facts universe: units whose import path it
// rejects (the standard library, when the driver scopes to the module)
// are not typechecked at all — they get an empty facts file immediately,
// keeping the vettool run within the same wall-clock class as a
// facts-free one — while accepted units are typechecked even when
// VetxOnly, because their facts feed dependents.
//
// Dependency facts arrive through cfg.PackageVetx; every named file must
// decode cleanly (see analysis.FactSet.Decode) — a truncated or corrupt
// .vetx is a load error, not an empty fact set.
func Unit(cfgPath string, analyze func(importPath string) bool) (*UnitResult, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	res := &UnitResult{VetxOnly: cfg.VetxOnly, VetxOutput: cfg.VetxOutput}
	if analyze != nil && !analyze(cfg.ImportPath) {
		if cfg.VetxOutput != "" {
			if err := WriteVetx(cfg.VetxOutput, analysis.NewFactSet()); err != nil {
				return nil, err
			}
		}
		res.VetxOutput = ""
		return res, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, ErrTypecheckTolerated
			}
			return nil, err
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	if v := cfg.GoVersion; v != "" && strings.HasPrefix(v, "go") {
		conf.GoVersion = v
	}
	info := newInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, ErrTypecheckTolerated
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	facts := analysis.NewFactSet()
	deps := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		deps = append(deps, path)
	}
	sort.Strings(deps)
	for _, path := range deps {
		file := cfg.PackageVetx[path]
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("reading facts of dependency %s: %w", path, err)
		}
		if err := facts.Decode(data); err != nil {
			return nil, fmt.Errorf("facts of dependency %s (%s): %w", path, file, err)
		}
	}

	res.Pkg = &analysis.Package{
		Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info, Facts: facts,
	}
	return res, nil
}

// WriteVetx encodes facts into the canonical .vetx wire form and writes
// it to path.
func WriteVetx(path string, facts *analysis.FactSet) error {
	data, err := facts.Encode()
	if err != nil {
		return fmt.Errorf("encoding facts: %w", err)
	}
	return os.WriteFile(path, data, 0o666)
}
