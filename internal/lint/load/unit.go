package load

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/lint/analysis"
)

// unitConfig mirrors the JSON compilation-unit description `go vet`
// writes for a -vettool (the x/tools unitchecker protocol): absolute
// source paths plus an export-data file for every dependency.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// ErrTypecheckTolerated reports a typecheck failure in a unit whose
// config asked for silence on typecheck failure (cmd/go sets it when
// the compiler itself will report the error).
var ErrTypecheckTolerated = errors.New("typecheck failed (tolerated by config)")

// Unit loads the compilation unit named by a vet.cfg path into an
// analysis.Package. It always writes the VetxOutput facts file when the
// config names one — cmd/go caches it as the action's output — and the
// suite exports no facts, so the file is an empty placeholder. A nil
// package with nil error means a facts-only (VetxOnly) unit.
func Unit(cfgPath string) (*analysis.Package, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("sopslint-no-facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, ErrTypecheckTolerated
			}
			return nil, err
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	if v := cfg.GoVersion; v != "" && strings.HasPrefix(v, "go") {
		conf.GoVersion = v
	}
	info := newInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, ErrTypecheckTolerated
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}
	return &analysis.Package{
		Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info,
	}, nil
}
