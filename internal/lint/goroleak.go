package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Goroleak checks that every goroutine launched in library code is
// joined: its termination is observable by the function that owns it.
//
// Contract (DESIGN.md): goroutine lifecycles nest — Sweep returns only
// after every handler it spawned has exited, a pipeline stage's workers
// die before the stage reports, and teardown never races a straggler
// (the accept-loop/WaitGroup teardown race was exactly an unjoined
// accept loop outliving ln.Close()). A goroutine counts as joined when
// one of the following holds:
//
//   - WaitGroup pairing: wg.Add sits before the `go` statement,
//     wg.Done runs on every exit path of the body (deferred, or
//     must-reach on the CFG), and wg.Wait is reachable in the enclosing
//     declaration (or the group belongs to an outer owner);
//   - close-join: the body closes a local channel on every exit path
//     (defer close(ch)) and the enclosing declaration receives from it;
//   - send-join: the body's exit is a send on a local channel the
//     enclosing declaration (or a closure it returns) receives from;
//   - bounded lifetime: the body receives from ctx.Done() or a
//     done-shaped channel (chan struct{}), or blocks on a WaitGroup
//     Wait (the watcher-over-a-worker-group shape), so a signal the
//     body already owns reaps it;
//   - a named callee handed the caller's context or a channel — the
//     callee owns its termination through them — or whose own body is
//     bounded in the sense above: locally via its declaration, across
//     packages via an exported BoundedFact.
//
// An intentionally detached goroutine carries a //sopslint:ignore
// goroleak directive arguing why nothing it touches outlives it.
var Goroleak = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "flag goroutines in library code with no join: no WaitGroup pairing, no close/send-join, no ctx/done bound",
	Run:  runGoroleak,
}

func runGoroleak(pass *analysis.Pass) error {
	cfgs := analysis.NewCFGs(terminalForCFG)
	for _, f := range pass.SourceFiles() {
		for _, u := range analysis.Units(f) {
			u := u
			walkShallow(u.Body(), func(n ast.Node) {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return
				}
				checkGoStmt(pass, cfgs, u, gs)
			})
		}
	}
	return nil
}

func checkGoStmt(pass *analysis.Pass, cfgs *analysis.CFGs, u analysis.Unit, gs *ast.GoStmt) {
	lit, isLit := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !isLit {
		// A named callee: the caller can join it through what it hands
		// over — the context (cancellation reaps it) or a channel (the
		// callee signals or is signalled through it) — or the callee's
		// own body is bounded: checked on its declaration locally, or
		// through an exported BoundedFact across packages.
		for _, arg := range gs.Call.Args {
			t := pass.TypeOf(arg)
			if isContextType(t) || isChanType(t) {
				return
			}
		}
		if fn := calleeFunc(pass, gs.Call); fn != nil {
			if fd := localDeclsFor(pass)[fn]; fd != nil && fd.Body != nil && bodyBounded(pass, fd.Body) {
				return
			}
			var bf BoundedFact
			if pass.ImportObjectFact(fn, &bf) {
				return
			}
		}
		pass.Reportf(gs.Pos(), "goroutine calls %s with no context or channel to join it: the callee outlives the caller unobserved; pass the caller's ctx, a done channel, or wrap in a WaitGroup-joined literal (or annotate //sopslint:ignore goroleak <reason>)", types.ExprString(gs.Call.Fun))
		return
	}

	cfg := cfgs.For(lit.Body)
	if wgJoined(pass, u, gs, lit, cfg) || closeJoined(pass, u, lit, cfg) ||
		sendJoined(pass, u, lit, cfg) || boundedBody(pass, lit) {
		return
	}
	pass.Reportf(gs.Pos(), "goroutine is not joined: no WaitGroup Add-before-go/Done-on-all-paths/Wait pairing, no closed or sent channel the owner receives, no ctx/done bound — teardown can race it (the accept-loop teardown bug); join it or annotate //sopslint:ignore goroleak <reason>")
}

// wgJoined checks the WaitGroup pairing: recv.Done() on every exit path
// of the body, recv.Add positioned before the go statement, and
// recv.Wait reachable from the owner.
func wgJoined(pass *analysis.Pass, u analysis.Unit, gs *ast.GoStmt, lit *ast.FuncLit, cfg *analysis.CFG) bool {
	recv, ok := doneReceiver(pass, lit, cfg)
	if !ok {
		return false
	}
	// Add must come before the spawn in the enclosing declaration;
	// Add inside the spawned body itself races the owner's Wait.
	addOK := false
	ast.Inspect(u.Enclosing, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && n.Pos() < gs.Pos() && !containsNode(lit, n) {
			if isWaitGroupCall(pass, call, recv, "Add") {
				addOK = true
			}
		}
		return !addOK
	})
	if !addOK {
		return false
	}
	// Wait in the enclosing declaration — or the group is owned wider
	// than this function (a field, a parameter), where the Wait lives
	// with the owner.
	waitOK := false
	ast.Inspect(u.Enclosing, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(pass, call, recv, "Wait") {
			waitOK = true
		}
		return !waitOK
	})
	if waitOK {
		return true
	}
	return !declaredWithin(pass, recv, u.Enclosing)
}

// doneReceiver finds the WaitGroup receiver whose Done() the body runs
// on every exit path (deferred, or must-reach on the CFG).
func doneReceiver(pass *analysis.Pass, lit *ast.FuncLit, cfg *analysis.CFG) (string, bool) {
	var recvs []string
	walkShallow(lit.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" || !isWaitGroupType(pass.TypeOf(sel.X)) {
			return
		}
		recvs = append(recvs, types.ExprString(sel.X))
	})
	for _, recv := range recvs {
		if cfg.MustReachExit(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			return ok && isWaitGroupCall(pass, call, recv, "Done")
		}) {
			return recv, true
		}
	}
	return "", false
}

// closeJoined checks the close-join: the body closes a channel on every
// exit path and the owner receives from it.
func closeJoined(pass *analysis.Pass, u analysis.Unit, lit *ast.FuncLit, cfg *analysis.CFG) bool {
	var chans []types.Object
	walkShallow(lit.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call, "close") || len(call.Args) != 1 {
			return
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				chans = append(chans, obj)
			}
		}
	})
	for _, ch := range chans {
		closes := func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call, "close") || len(call.Args) != 1 {
				return false
			}
			id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			return ok && pass.ObjectOf(id) == ch
		}
		if cfg.MustReachExit(closes) && ownerReceivesFrom(pass, u, lit, ch) {
			return true
		}
	}
	return false
}

// sendJoined checks the send-join: every exit path of the body sends on
// a channel the owner receives from (the `done <- run()` idiom).
func sendJoined(pass *analysis.Pass, u analysis.Unit, lit *ast.FuncLit, cfg *analysis.CFG) bool {
	var chans []types.Object
	walkShallow(lit.Body, func(n ast.Node) {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return
		}
		if id, ok := ast.Unparen(send.Chan).(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				chans = append(chans, obj)
			}
		}
	})
	for _, ch := range chans {
		sends := func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return false
			}
			id, ok := ast.Unparen(send.Chan).(*ast.Ident)
			return ok && pass.ObjectOf(id) == ch
		}
		if cfg.MustReachExit(sends) && ownerReceivesFrom(pass, u, lit, ch) {
			return true
		}
	}
	return false
}

// ownerReceivesFrom reports whether the enclosing declaration — outside
// the spawned literal itself — receives from or ranges over ch.
func ownerReceivesFrom(pass *analysis.Pass, u analysis.Unit, lit *ast.FuncLit, ch types.Object) bool {
	found := false
	isCh := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.ObjectOf(id) == ch
	}
	ast.Inspect(u.Enclosing, func(n ast.Node) bool {
		if found || containsNode(lit, n) && n == ast.Node(lit) {
			return !found
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isCh(n.X) && !within(lit, n) {
				found = true
			}
		case *ast.RangeStmt:
			if isCh(n.X) && !within(lit, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// within reports whether n lies inside root's source range.
func within(root, n ast.Node) bool {
	return n.Pos() >= root.Pos() && n.End() <= root.End()
}

// boundedBody reports whether the literal's lifetime is bounded (see
// bodyBounded).
func boundedBody(pass *analysis.Pass, lit *ast.FuncLit) bool {
	return bodyBounded(pass, lit.Body)
}

// bodyBounded reports whether a function body's lifetime is bounded by
// a join signal it already owns: it receives from ctx.Done() or from a
// done-shaped channel (chan struct{}), or it blocks on a WaitGroup's
// Wait — the watcher shape, where the body outlives exactly the group
// it observes and the group's own goroutines are separately joined.
func bodyBounded(pass *analysis.Pass, body *ast.BlockStmt) bool {
	bounded := false
	walkShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Done" && isContextType(pass.TypeOf(sel.X)) {
					bounded = true
				}
				if sel.Sel.Name == "Wait" && isWaitGroupType(pass.TypeOf(sel.X)) {
					bounded = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isDoneChanType(pass.TypeOf(n.X)) {
				bounded = true
			}
		case *ast.RangeStmt:
			if isDoneChanType(pass.TypeOf(n.X)) {
				bounded = true
			}
		}
	})
	return bounded
}

// exportBoundedFacts publishes a BoundedFact for every exported
// declaration whose body is bounded, so `go pkg.F(x)` in another
// package is recognized as joined.
func exportBoundedFacts(pass *analysis.Pass) {
	for fn, fd := range localDeclsFor(pass) {
		if !fn.Exported() || fd.Body == nil {
			continue
		}
		if bodyBounded(pass, fd.Body) {
			pass.ExportObjectFact(fn, &BoundedFact{})
		}
	}
}

// declaredWithin reports whether the WaitGroup named by recv (rendered
// receiver expression) is owned by this declaration's body. A selector
// or index receiver ("p.wg", "pools[i].wg") is a field — the struct
// owns it and its Wait lives with the owner, so it counts as non-local.
// A bare identifier is local when its object is declared inside the
// body (parameters are handed in by an owner and count as non-local).
func declaredWithin(pass *analysis.Pass, recv string, fd *ast.FuncDecl) bool {
	for i := 0; i < len(recv); i++ {
		if recv[i] == '.' || recv[i] == '[' {
			return false
		}
	}
	if fd.Body == nil {
		return false
	}
	declared := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == recv {
			if obj := pass.ObjectOf(id); obj != nil && obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End() {
				declared = true
			}
		}
		return !declared
	})
	return declared
}

func isWaitGroupCall(pass *analysis.Pass, call *ast.CallExpr, recv, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name || !isWaitGroupType(pass.TypeOf(sel.X)) {
		return false
	}
	return types.ExprString(sel.X) == recv
}

func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && pkgPathIs(obj.Pkg(), "sync")
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isDoneChanType recognizes the done-channel convention: chan struct{}.
func isDoneChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	s, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}
