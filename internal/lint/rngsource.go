package lint

import (
	"strings"

	"repro/internal/lint/analysis"
)

// RNGSource forbids random-number sources outside internal/rngx.
//
// Contract (DESIGN.md): every random draw in an experiment flows from an
// rngx.Split-derived stream, so that (a) repeat runs are bit-identical,
// (b) parallel ensembles are schedule-independent, and (c) a spec
// fingerprint pins the full randomness of a run. A stray math/rand
// global or a crypto/rand read is invisible to the fingerprint and
// breaks all three. Test files are exempt.
var RNGSource = &analysis.Analyzer{
	Name: "rngsource",
	Doc:  "forbid math/rand, math/rand/v2 and crypto/rand outside internal/rngx; randomness must derive from rngx.Split streams",
	Run:  runRNGSource,
}

func runRNGSource(pass *analysis.Pass) error {
	for _, f := range pass.SourceFiles() {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			switch path {
			case "math/rand", "math/rand/v2", "crypto/rand":
				pass.Reportf(imp.Pos(), "import of %s outside internal/rngx: derive randomness from an rngx.Split stream so runs stay reproducible and fingerprintable", path)
			}
		}
	}
	return nil
}
