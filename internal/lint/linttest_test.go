package lint

// This file is the corpus harness: an analysistest-style runner over the
// GOPATH-shaped trees under testdata/src. Corpus sources mark every
// expected finding with a trailing comment
//
//	code() // want "regexp matching the message"
//
// (or the block form /* want "..." */ when the line's trailing comment
// position is taken by a directive under test). The harness runs the
// given checks — including //sopslint:ignore processing, since it goes
// through lint.Run — and fails on any unexpected or missing diagnostic,
// so each corpus pins both the flagged and the allowed cases.

import (
	"regexp"
	"strconv"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

var (
	wantRE    = regexp.MustCompile(`want((?:\s+"(?:[^"\\]|\\.)*")+)\s*(?:\*/)?\s*$`)
	wantStrRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type wantMarker struct {
	posStr string
	re     *regexp.Regexp
	hit    bool
}

// soloCheck runs one analyzer on every corpus package, with no
// package-path scoping: scoping is the suite driver's concern and has
// its own test.
func soloCheck(a *analysis.Analyzer) []Check { return []Check{{Analyzer: a}} }

// runCorpus loads testdata/src/<path> for each path, applies the checks
// through lint.Run (directive processing included) and compares the
// surviving diagnostics line by line against the corpus's want markers.
func runCorpus(t *testing.T, checks []Check, paths ...string) {
	t.Helper()
	pkgs, err := load.Corpus("testdata", paths...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, checks)
	if err != nil {
		t.Fatal(err)
	}

	type lineKey struct {
		file string
		line int
	}
	wants := map[lineKey][]*wantMarker{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range wantStrRE.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: malformed want marker %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: malformed want regexp %q: %v", pos, pat, err)
						}
						k := lineKey{pos.Filename, pos.Line}
						wants[k] = append(wants[k], &wantMarker{posStr: pos.String(), re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: no diagnostic matching %q", w.posStr, w.re)
			}
		}
	}
}
