package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// TokenPair checks that every workpool token acquired is released on
// every path of the acquiring function.
//
// Contract (DESIGN.md): the shared token budget bounds machine-wide
// active work; one leaked token permanently shrinks the budget for
// every in-flight run, and a leaked-on-error token is precisely how a
// cancelled sweep would deadlock its siblings. The analyzer accepts a
// `defer tok.Release()` anywhere in the function, or a Release on every
// control-flow path after a successful acquire. The error return of
// AcquireCtx holds no token, so the canonical
//
//	if err := tok.AcquireCtx(ctx); err != nil { return err }
//
// form starts the held region after the if statement.
//
// The path analysis is intentionally conservative: loops guarantee
// nothing (they may run zero times), break/goto while holding counts as
// a leak, and panics/os.Exit are treated as non-leaking (the process is
// unwinding). False positives carry a //sopslint:ignore tokenpair
// directive with the argument for why the pairing holds.
var TokenPair = &analysis.Analyzer{
	Name: "tokenpair",
	Doc:  "flag workpool.Tokens.Acquire/AcquireCtx calls without a Release on some path (defer-or-all-branches)",
	Run:  runTokenPair,
}

func runTokenPair(pass *analysis.Pass) error {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkTokenFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkTokenFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// acquireSite is one Tokens.Acquire/AcquireCtx call in a function body.
type acquireSite struct {
	call *ast.CallExpr
	recv string // rendered receiver expression, the release must match
	ctx  bool   // AcquireCtx (error return means "not held")
}

// checkTokenFunc analyzes one function body in isolation; nested
// function literals are separate functions with their own analysis.
func checkTokenFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var sites []acquireSite
	walkShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Acquire" && sel.Sel.Name != "AcquireCtx") {
			return
		}
		if !isTokensType(pass.TypeOf(sel.X)) {
			return
		}
		sites = append(sites, acquireSite{
			call: call,
			recv: types.ExprString(sel.X),
			ctx:  sel.Sel.Name == "AcquireCtx",
		})
	})
	for _, site := range sites {
		if hasDeferRelease(body, site.recv) {
			continue
		}
		after, ok := heldRegion(body, site)
		if !ok {
			pass.Reportf(site.call.Pos(), "Tokens.%s: cannot follow the acquired token; defer %s.Release() right after the acquire", acquireName(site), site.recv)
			continue
		}
		if seqReleases(after, site.recv) != relReleased {
			pass.Reportf(site.call.Pos(), "Tokens.%s is not released on every path; defer %s.Release() or release on all branches (a leaked token shrinks the shared budget for every in-flight run)", acquireName(site), site.recv)
		}
	}
}

func acquireName(s acquireSite) string {
	if s.ctx {
		return "AcquireCtx"
	}
	return "Acquire"
}

// isTokensType recognizes workpool.Tokens (possibly behind a pointer).
func isTokensType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Tokens" && pkgPathIs(obj.Pkg(), "workpool")
}

// walkShallow visits every node of the function body without descending
// into nested function literals.
func walkShallow(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		if c != nil {
			visit(c)
		}
		return true
	})
}

// heldRegion returns the statements that execute while the token is
// held: the suffix of the acquire's enclosing statement list. For the
// if-init AcquireCtx form the held region starts after the whole if
// statement (its error branch holds nothing); for a standalone
// `err := t.AcquireCtx(ctx)` followed by an `if err != nil` check, that
// check is likewise skipped.
func heldRegion(body *ast.BlockStmt, site acquireSite) ([]ast.Stmt, bool) {
	path := pathTo(body, site.call)
	if path == nil {
		return nil, false
	}
	// Find the outermost statement S containing the call whose parent is
	// a statement list, and that list.
	for i := len(path) - 1; i > 0; i-- {
		list := stmtList(path[i-1])
		if list == nil {
			continue
		}
		s, ok := path[i].(ast.Stmt)
		if !ok {
			continue
		}
		idx := -1
		for j, st := range list {
			if st == s {
				idx = j
				break
			}
		}
		if idx < 0 {
			continue
		}
		switch s := s.(type) {
		case *ast.ExprStmt:
			return list[idx+1:], true
		case *ast.IfStmt:
			// Acquire in the init/cond: the branch taken on acquire
			// error returns nothing held; hold begins after the if.
			if !containsNode(s.Body, site.call) {
				return list[idx+1:], true
			}
			return nil, false
		case *ast.AssignStmt:
			rest := list[idx+1:]
			// err := t.AcquireCtx(ctx); if err != nil { ... } — skip the
			// not-held error branch.
			if site.ctx && len(rest) > 0 {
				if ifs, ok := rest[0].(*ast.IfStmt); ok && condMentionsLHS(ifs, s) {
					return rest[1:], true
				}
			}
			return rest, true
		}
		return nil, false
	}
	return nil, false
}

// containsNode reports whether target lies within root.
func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// condMentionsLHS reports whether the if condition reads a variable
// assigned by the given statement (the err of an AcquireCtx).
func condMentionsLHS(ifs *ast.IfStmt, assign *ast.AssignStmt) bool {
	names := map[string]bool{}
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			names[id.Name] = true
		}
	}
	found := false
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && names[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// stmtList returns the statement list a node carries, if it is a
// list-bearing node.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// pathTo returns the ancestor chain from root down to target inclusive,
// or nil.
func pathTo(root ast.Node, target ast.Node) []ast.Node {
	var stack, found []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target {
			found = append([]ast.Node(nil), stack...)
			return false
		}
		return true
	})
	return found
}

// relStatus is the release state of one control-flow region.
type relStatus int

const (
	relPending  relStatus = iota // no release yet; control continues
	relReleased                  // released (or safely terminated) on all paths
	relLeaked                    // some path exits while still holding
)

// seqReleases walks a statement sequence executed while holding the
// token and decides whether every path releases it. Reaching the end of
// the sequence still holding counts as a leak: the sequence is the
// held region, so falling off its end (function return, or the next
// loop iteration's acquire) leaks the token.
func seqReleases(stmts []ast.Stmt, recv string) relStatus {
	for _, s := range stmts {
		switch stmtReleases(s, recv) {
		case relReleased:
			return relReleased
		case relLeaked:
			return relLeaked
		}
	}
	return relLeaked
}

// seqStatus is seqReleases for nested regions, where running off the
// end just continues in the parent region.
func seqStatus(stmts []ast.Stmt, recv string) relStatus {
	for _, s := range stmts {
		switch stmtReleases(s, recv) {
		case relReleased:
			return relReleased
		case relLeaked:
			return relLeaked
		}
	}
	return relPending
}

func stmtReleases(s ast.Stmt, recv string) relStatus {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if isReleaseCall(s.X, recv) {
			return relReleased
		}
		if isTerminalCall(s.X) {
			return relReleased
		}
		return relPending
	case *ast.DeferStmt:
		if isReleaseCall(s.Call, recv) || deferredLitReleases(s.Call, recv) {
			return relReleased
		}
		return relPending
	case *ast.ReturnStmt:
		return relLeaked
	case *ast.BranchStmt:
		// break/continue/goto while holding jumps somewhere this local
		// analysis cannot follow; demand the release first (or a defer).
		return relLeaked
	case *ast.IfStmt:
		thenS := seqStatus(s.Body.List, recv)
		elseS := relPending
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseS = seqStatus(e.List, recv)
		case *ast.IfStmt:
			elseS = stmtReleases(e, recv)
		}
		if thenS == relLeaked || elseS == relLeaked {
			return relLeaked
		}
		if thenS == relReleased && elseS == relReleased {
			return relReleased
		}
		return relPending
	case *ast.BlockStmt:
		return seqStatus(s.List, recv)
	case *ast.LabeledStmt:
		return stmtReleases(s.Stmt, recv)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return clausesRelease(s, recv)
	case *ast.ForStmt:
		if st := seqStatus(s.Body.List, recv); st == relLeaked {
			return relLeaked
		}
		return relPending // zero iterations possible
	case *ast.RangeStmt:
		if st := seqStatus(s.Body.List, recv); st == relLeaked {
			return relLeaked
		}
		return relPending
	case *ast.GoStmt:
		// handing the token off to a goroutine that releases it
		if deferredLitReleases(s.Call, recv) {
			return relReleased
		}
		return relPending
	}
	return relPending
}

// clausesRelease folds the case clauses of a switch/select: all clauses
// must release (and a default/else must exist) for the statement to
// guarantee release; any leaking clause leaks.
func clausesRelease(s ast.Stmt, recv string) relStatus {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	all := relReleased
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		}
		switch seqStatus(stmts, recv) {
		case relLeaked:
			return relLeaked
		case relPending:
			all = relPending
		}
	}
	if _, isSelect := s.(*ast.SelectStmt); isSelect {
		hasDefault = true // a select blocks until some clause runs
	}
	if all == relReleased && hasDefault && len(body.List) > 0 {
		return relReleased
	}
	return relPending
}

// hasDeferRelease reports whether the function body defers a Release on
// the receiver anywhere — the gold-standard pairing.
func hasDeferRelease(body *ast.BlockStmt, recv string) bool {
	found := false
	walkShallow(body, func(n ast.Node) {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		if isReleaseCall(d.Call, recv) || deferredLitReleases(d.Call, recv) {
			found = true
		}
	})
	return found
}

// isReleaseCall recognizes <recv>.Release(...) by rendered receiver.
func isReleaseCall(e ast.Expr, recv string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	return types.ExprString(sel.X) == recv
}

// deferredLitReleases recognizes defer func() { ... recv.Release() ... }().
func deferredLitReleases(call *ast.CallExpr, recv string) bool {
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if e, ok := n.(*ast.ExprStmt); ok && isReleaseCall(e.X, recv) {
			found = true
		}
		return !found
	})
	return found
}

// isTerminalCall recognizes calls that unwind or end the process:
// panic, os.Exit, log.Fatal*.
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if pkg.Name == "os" && fun.Sel.Name == "Exit" {
				return true
			}
			if pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln") {
				return true
			}
		}
	}
	return false
}
