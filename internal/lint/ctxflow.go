package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// CtxFlow enforces the cancellation contract in library code.
//
// Contract (DESIGN.md): cancellation stops any entry point within one
// token-grant, which requires the caller's context to reach every
// blocking call. Two failure modes break the chain, and CtxFlow flags
// both:
//
//  1. Minting a fresh root — context.Background() or context.TODO() —
//     inside internal packages, which silently detaches everything
//     downstream from the caller's cancellation. The one sanctioned
//     shape is the documented legacy wrapper: a function with no ctx
//     parameter whose Background() feeds a call to its own Ctx variant
//     (Run → RunCtx). There the root is the API seam itself, and the
//     exemption is structural rather than an ignore directive.
//  2. An exported function that accepts a context but then calls the
//     context-free variant of an API that has one (Acquire where
//     AcquireCtx exists), quietly dropping cancellation mid-chain —
//     or calls a function in another package that a RootMintFact marks
//     as minting its own root, which detaches the callee tree just the
//     same even though no Ctx sibling exists to point at.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flag context.Background()/TODO() in library code and ctx-accepting functions that call non-ctx API variants",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) error {
	for _, f := range pass.SourceFiles() {
		sanctioned := wrapperRoots(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && !sanctioned[call] {
				if fn := calleeFunc(pass, call); fn != nil && pkgPathIs(fn.Pkg(), "context") {
					if fn.Name() == "Background" || fn.Name() == "TODO" {
						pass.Reportf(call.Pos(), "context.%s() in library code detaches callees from the caller's cancellation; accept and pass through a ctx parameter (or make this a Run/RunCtx-style wrapper pair)", fn.Name())
					}
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !hasCtxParam(pass, fd) {
				continue
			}
			checkCtxVariants(pass, fd)
		}
	}
	return nil
}

// wrapperRoots collects the sanctioned context.Background()/TODO()
// calls of the file: those inside a declaration that has no context
// parameter, appearing as an argument to a call of the declaration's
// own Ctx variant — the `func (p Pipeline) Run() { return
// p.RunCtx(context.Background()) }` legacy-wrapper shape. The root is
// minted exactly at the API seam and handed straight to the
// cancellation-aware implementation, so nothing detaches.
func wrapperRoots(pass *analysis.Pass, f *ast.File) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || hasCtxParam(pass, fd) {
			continue
		}
		want := fd.Name.Name + "Ctx"
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := ""
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if name != want {
				return true
			}
			for _, arg := range call.Args {
				inner, ok := ast.Unparen(arg).(*ast.CallExpr)
				if !ok {
					continue
				}
				if fn := calleeFunc(pass, inner); fn != nil && pkgPathIs(fn.Pkg(), "context") &&
					(fn.Name() == "Background" || fn.Name() == "TODO") {
					out[inner] = true
				}
			}
			return true
		})
	}
	return out
}

// hasCtxParam reports whether the function declares a context.Context
// parameter.
func hasCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && pkgPathIs(obj.Pkg(), "context")
}

// checkCtxVariants flags calls inside fd that drop the context in hand:
// calls to F where a sibling FCtx exists, and cross-package calls to
// functions a RootMintFact marks as minting their own root.
func checkCtxVariants(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		name := fn.Name()
		if len(name) >= 3 && name[len(name)-3:] == "Ctx" {
			return true
		}
		if hasCtxSibling(fn) {
			pass.Reportf(call.Pos(), "%s accepts a context but calls %s, which has a context-aware variant %sCtx; pass the context through so cancellation propagates", fd.Name.Name, name, name)
			return true
		}
		var rm RootMintFact
		if fn.Pkg() != pass.Pkg.Types && pass.ImportObjectFact(fn, &rm) {
			pass.Reportf(call.Pos(), "%s accepts a context but calls %s, which mints its own context root — the context in hand is dropped and the callee tree detaches from cancellation; use or add a ctx-accepting variant", fd.Name.Name, calleeLabel(fn))
		}
		return true
	})
}

// exportRootMintFacts publishes a RootMintFact for every exported
// declaration without a context parameter that mints a fresh root
// outside the sanctioned Run→RunCtx wrapper shape.
func exportRootMintFacts(pass *analysis.Pass) {
	for _, f := range pass.SourceFiles() {
		sanctioned := wrapperRoots(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || hasCtxParam(pass, fd) {
				continue
			}
			mints := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && !sanctioned[call] {
					if fn := calleeFunc(pass, call); fn != nil && pkgPathIs(fn.Pkg(), "context") &&
						(fn.Name() == "Background" || fn.Name() == "TODO") {
						mints = true
					}
				}
				return !mints
			})
			if mints {
				if fn, ok := pass.ObjectOf(fd.Name).(*types.Func); ok {
					pass.ExportObjectFact(fn, &RootMintFact{})
				}
			}
		}
	}
}

// hasCtxSibling reports whether fn has a sibling named fn.Name()+"Ctx":
// a method on the same receiver type, or a function in the same package
// scope.
func hasCtxSibling(fn *types.Func) bool {
	want := fn.Name() + "Ctx"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), want)
		_, isFunc := obj.(*types.Func)
		return isFunc
	}
	_, isFunc := fn.Pkg().Scope().Lookup(want).(*types.Func)
	return isFunc
}
