package analysis

// This file enumerates function units and carries the one-level
// call-graph summary pass. A unit is one body the CFG/dataflow layer
// analyzes in isolation: a function declaration or a function literal —
// matching how the concurrency and determinism contracts are written
// (each goroutine body is its own lifecycle). Summaries let an analyzer
// look one call deep without a whole-program graph: compute a fact per
// package-local declaration, then consult it at call sites.

import (
	"go/ast"
	"go/types"
)

// A Unit is one analyzable function body: a declaration or a literal.
// Exactly one of Decl and Lit is non-nil.
type Unit struct {
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Enclosing is the top-level declaration the unit lives in (the unit
	// itself for declarations). Join-point searches that cross goroutine
	// boundaries — "is this WaitGroup waited on anywhere?" — scan the
	// enclosing declaration, since that is the lifetime the contract
	// binds.
	Enclosing *ast.FuncDecl
}

// Body returns the unit's statement body.
func (u Unit) Body() *ast.BlockStmt {
	if u.Decl != nil {
		return u.Decl.Body
	}
	return u.Lit.Body
}

// FuncType returns the unit's signature AST.
func (u Unit) FuncType() *ast.FuncType {
	if u.Decl != nil {
		return u.Decl.Type
	}
	return u.Lit.Type
}

// Units enumerates every function unit of the file with a non-nil body:
// each declaration and, nested to any depth, each literal.
func Units(f *ast.File) []Unit {
	var out []Unit
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, Unit{Decl: fd, Enclosing: fd})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, Unit{Lit: lit, Enclosing: fd})
			}
			return true
		})
	}
	return out
}

// CFGs memoizes BuildCFG per body, so the several analyzers sharing the
// flow-sensitive layer do not rebuild graphs for the same functions.
type CFGs struct {
	isTerminal IsTerminalCall
	m          map[*ast.BlockStmt]*CFG
}

// NewCFGs returns a CFG cache using the given terminal-call predicate.
func NewCFGs(isTerminal IsTerminalCall) *CFGs {
	return &CFGs{isTerminal: isTerminal, m: map[*ast.BlockStmt]*CFG{}}
}

// For returns the (cached) CFG of the body.
func (c *CFGs) For(body *ast.BlockStmt) *CFG {
	if g, ok := c.m[body]; ok {
		return g
	}
	g := BuildCFG(body, c.isTerminal)
	c.m[body] = g
	return g
}

// LocalDecls maps every package-local function and method object to its
// declaration, the resolution step of the one-level call-graph pass:
// a call site looks its callee up here and, when found, consults the
// callee's summary instead of treating the call as opaque.
func LocalDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.ObjectOf(fd.Name).(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// Summarize computes a summary per package-local declaration. Two
// passes: the first computes every summary with callees treated
// conservatively, the second recomputes with first-pass summaries in
// hand, so facts propagate one call level through the package graph
// (acyclic chains of depth two converge exactly; deeper or cyclic
// chains stay conservative).
func Summarize[S any](pkg *Package, compute func(fd *ast.FuncDecl, prev map[*types.Func]S) S) map[*types.Func]S {
	decls := LocalDecls(pkg)
	sums := map[*types.Func]S{}
	for fn, fd := range decls {
		sums[fn] = compute(fd, nil)
	}
	next := make(map[*types.Func]S, len(sums))
	for fn, fd := range decls {
		next[fn] = compute(fd, sums)
	}
	return next
}
