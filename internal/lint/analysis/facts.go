package analysis

// This file is the cross-package half of the analysis layer: durable,
// object-keyed facts. An analyzer computing a package exports facts
// about that package's objects (a function's taint summary, a struct's
// annotated fields); analyzers of downstream packages import them at
// call/use sites, so interprocedural reasoning crosses package
// boundaries instead of stopping at one package-local hop.
//
// Facts travel two ways, both through the same FactSet:
//
//   - in-process (meta-test, standalone sopslint): every loaded package
//     shares one FactSet, and packages are visited in dependency order,
//     so an import simply sees what a dependency exported moments ago;
//   - under `go vet -vettool` (the unitchecker protocol): each
//     compilation unit decodes the .vetx files of its dependencies into
//     its FactSet before analysis and encodes the whole set — own facts
//     plus re-exported dependency facts, so transitivity survives — to
//     the unit's VetxOutput afterwards.
//
// The wire format is a magic header followed by a gob stream of
// (package, object, fact) triples sorted by key, so identical fact sets
// encode byte-identically and cmd/go's content-addressed build cache
// works. A file without the header, or with a gob stream that does not
// decode cleanly to the end, is a hard error — a truncated or corrupt
// facts file must never be mistaken for an empty one.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A Fact is one exported observation about a package-level object.
// Implementations must be pointers to gob-encodable structs, registered
// once via RegisterFact. The AFact method is a marker only.
type Fact interface {
	AFact()
}

// VetxMagic is the header line of a sopslint facts (.vetx) file. The
// version is part of the format identity: bump it when the encoding or
// any registered fact type changes shape.
const VetxMagic = "sopslint-facts-v1\n"

// RegisterFact registers a fact type for gob transport. Call from init;
// registering the same type twice is fine, two distinct types with the
// same struct name is not (the name keys the wire format).
func RegisterFact(f Fact) {
	t := reflect.TypeOf(f)
	if t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("RegisterFact: %T is not a pointer to struct", f))
	}
	gob.Register(f)
}

// FactKey addresses one fact: the declaring package's import path, the
// object's stable key within it, and the fact's concrete type.
type FactKey struct {
	Pkg  string
	Obj  string
	Type string
}

// ObjectKey returns the stable within-package key of a package-level
// object: "Name" for functions, types, vars and consts, and
// "RecvType.Name" for methods (the pointer-ness of the receiver does not
// key — a type has one method set namespace).
func ObjectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				return n.Obj().Name() + "." + fn.Name()
			}
		}
	}
	return obj.Name()
}

// factPkgPath returns the package path a fact about obj is keyed under,
// with any test-variant suffix ("p [p.test]") stripped so facts exported
// while checking a test variant land under the base package.
func factPkgPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	p := obj.Pkg().Path()
	if i := strings.IndexByte(p, ' '); i >= 0 {
		p = p[:i]
	}
	return p, true
}

func factTypeName(f Fact) string {
	return reflect.TypeOf(f).Elem().Name()
}

// A FactSet is the fact store one analysis run shares: facts exported by
// already-analyzed packages, keyed for import by downstream ones.
type FactSet struct {
	m map[FactKey]Fact
}

// NewFactSet returns an empty fact store.
func NewFactSet() *FactSet {
	return &FactSet{m: map[FactKey]Fact{}}
}

// Len reports the number of stored facts.
func (s *FactSet) Len() int { return len(s.m) }

// ExportObjectFact stores fact about obj, replacing a previous fact of
// the same type.
func (s *FactSet) ExportObjectFact(obj types.Object, fact Fact) {
	pkg, ok := factPkgPath(obj)
	if !ok {
		return
	}
	s.m[FactKey{Pkg: pkg, Obj: ObjectKey(obj), Type: factTypeName(fact)}] = fact
}

// ImportObjectFact copies the stored fact of ptr's type about obj into
// *ptr and reports whether one was found.
func (s *FactSet) ImportObjectFact(obj types.Object, ptr Fact) bool {
	pkg, ok := factPkgPath(obj)
	if !ok {
		return false
	}
	f, ok := s.m[FactKey{Pkg: pkg, Obj: ObjectKey(obj), Type: factTypeName(ptr)}]
	if !ok {
		return false
	}
	pv, fv := reflect.ValueOf(ptr), reflect.ValueOf(f)
	if pv.Type() != fv.Type() {
		return false
	}
	pv.Elem().Set(fv.Elem())
	return true
}

// wireFact is the gob-transported triple. The Fact field rides as an
// interface value, so concrete types must be registered (RegisterFact).
type wireFact struct {
	Pkg  string
	Obj  string
	Fact Fact
}

// Encode serializes the set: the magic header, then one gob stream
// holding the fact count and the facts sorted by key — a canonical,
// deterministic byte form for the build cache.
func (s *FactSet) Encode() ([]byte, error) {
	keys := make([]FactKey, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Type < b.Type
	})
	var buf bytes.Buffer
	buf.WriteString(VetxMagic)
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(len(keys)); err != nil {
		return nil, err
	}
	for _, k := range keys {
		if err := enc.Encode(wireFact{Pkg: k.Pkg, Obj: k.Obj, Fact: s.m[k]}); err != nil {
			return nil, fmt.Errorf("encoding fact %s.%s (%s): %w", k.Pkg, k.Obj, k.Type, err)
		}
	}
	return buf.Bytes(), nil
}

// Decode merges the facts encoded in data into the set. Any deviation
// from the wire format — missing header, truncated stream, undecodable
// gob — is an error: a facts file that cannot be read completely must
// not silently pass for empty.
func (s *FactSet) Decode(data []byte) error {
	rest, ok := bytes.CutPrefix(data, []byte(VetxMagic))
	if !ok {
		return fmt.Errorf("not a sopslint facts file (missing %q header; got %d bytes)", strings.TrimSpace(VetxMagic), len(data))
	}
	dec := gob.NewDecoder(bytes.NewReader(rest))
	var n int
	if err := dec.Decode(&n); err != nil {
		return fmt.Errorf("corrupt facts file: reading fact count: %w", err)
	}
	if n < 0 {
		return fmt.Errorf("corrupt facts file: negative fact count %d", n)
	}
	for i := 0; i < n; i++ {
		var w wireFact
		if err := dec.Decode(&w); err != nil {
			return fmt.Errorf("corrupt facts file: fact %d/%d: %w", i+1, n, err)
		}
		if w.Fact == nil {
			return fmt.Errorf("corrupt facts file: fact %d/%d is nil", i+1, n)
		}
		s.m[FactKey{Pkg: w.Pkg, Obj: w.Obj, Type: factTypeName(w.Fact)}] = w.Fact
	}
	return nil
}
