// Package analysis is the repo-local core of the sopslint static-analysis
// suite: a deliberately small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// on top of the standard library's go/ast and go/types.
//
// The upstream module is not vendored here — the container images this
// repo builds in carry only the Go toolchain — so the suite typechecks
// packages itself from compiler export data (see the sibling load
// package) and keeps the analyzer surface to exactly what the five
// sopslint analyzers need: typed ASTs, position-addressed diagnostics,
// and per-file traversal that skips _test.go files (the determinism,
// cancellation and budget contracts bind production code; tests are free
// to use wall clocks, raw rand and context.Background()).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named, documented invariant check. Run inspects a
// single typechecked package through the Pass and reports findings via
// Pass.Reportf; analyzers are stateless and safe to reuse across
// packages.
type Analyzer struct {
	// Name is the identifier used in diagnostics and in
	// //sopslint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc states the contract the analyzer mechanizes, first line short.
	Doc string
	// Run performs the check. Returned errors are infrastructure
	// failures (they abort the run), not findings.
	Run func(*Pass) error
}

// A Package is one typechecked compilation unit ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/sweep"; corpus packages
	// use their testdata-relative path).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Facts is the cross-package fact store shared by the run: facts of
	// this package's dependencies on entry, plus this package's own
	// exports once its fact pass has run. Nil disables cross-package
	// facts — analyzers then fall back to their package-local summaries.
	Facts *FactSet

	memo map[string]any
}

// Memo returns the cached value under key, building it on first use.
// Analyzers sharing expensive per-package state (the taint engine, call
// summaries) key it here so the several passes over one package compute
// it once.
func (p *Package) Memo(key string, build func() any) any {
	if p.memo == nil {
		p.memo = map[string]any{}
	}
	v, ok := p.memo[key]
	if !ok {
		v = build()
		p.memo[key] = v
	}
	return v
}

// A Diagnostic is one finding, addressed by resolved source position so
// drivers can print, sort and suppress it without the FileSet in hand.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// A Pass connects one Analyzer to one Package and collects its
// diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when untypeable.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object denoted by id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// ImportObjectFact copies the stored fact of ptr's type about obj into
// *ptr. It reports false when the run carries no fact store or no such
// fact was exported — callers then fall back to local reasoning.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.Pkg.Facts == nil || obj == nil {
		return false
	}
	return p.Pkg.Facts.ImportObjectFact(obj, ptr)
}

// ExportObjectFact publishes fact about obj for downstream packages.
// A no-op without a fact store.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Pkg.Facts == nil || obj == nil {
		return
	}
	p.Pkg.Facts.ExportObjectFact(obj, fact)
}

// SourceFiles returns the package's non-test files: every sopslint
// contract applies to production code only, so analyzers iterate this
// instead of Pkg.Files.
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Pkg.Files {
		name := p.Pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Run applies one analyzer to one package and returns its diagnostics.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Pkg: pkg}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	return pass.diags, nil
}
