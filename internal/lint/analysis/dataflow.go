package analysis

// This file is the dataflow half of the flow-sensitive layer: a small
// iterative worklist solver over the CFG, parameterized by direction and
// by the lattice join (union for may-analyses, intersection for
// must-analyses), plus the two instantiations the sopslint analyzers
// use — a boolean must-reach query and a tainted-variable set.

import (
	"go/ast"
	"go/types"
)

// Direction selects which way facts flow.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Join selects how facts meet at control-flow merges.
type Join int

const (
	May  Join = iota // union: true on some path
	Must             // intersection: true on every path
)

// A Problem describes one dataflow analysis over fact values of type F.
// Facts must be treated as immutable by Transfer: return a fresh value
// (or the input unchanged) rather than mutating in place.
type Problem[F any] struct {
	Dir Direction
	// Boundary is the fact at the boundary block (Entry for Forward,
	// Exit for Backward).
	Boundary F
	// Merge joins two facts (the Join semantics are the caller's; the
	// solver never merges with an unvisited block's fact).
	Merge func(a, b F) F
	// Equal reports fact equality, for fixpoint detection.
	Equal func(a, b F) bool
	// Transfer pushes a fact through one block.
	Transfer func(b *Block, in F) F
}

// Solve runs the worklist algorithm to fixpoint and returns the fact at
// the IN side of every block (the OUT side for Backward). Blocks not yet
// reached by any path keep no entry in the result map — callers treat a
// missing block as unreachable.
func Solve[F any](c *CFG, p Problem[F]) map[*Block]F {
	in := map[*Block]F{}  // fact entering the block (flow order)
	out := map[*Block]F{} // fact leaving the block
	seen := map[*Block]bool{}

	start := c.Entry
	if p.Dir == Backward {
		start = c.Exit
	}
	next := func(b *Block) []*Block {
		if p.Dir == Backward {
			return b.Preds
		}
		return b.Succs
	}
	prev := func(b *Block) []*Block {
		if p.Dir == Backward {
			return b.Succs
		}
		return b.Preds
	}

	in[start] = p.Boundary
	seen[start] = true
	work := []*Block{start}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]

		// Merge the facts of all visited flow-predecessors; the start
		// block additionally carries the boundary fact.
		var acc F
		have := false
		if b == start {
			acc, have = p.Boundary, true
		}
		for _, q := range prev(b) {
			o, ok := out[q]
			if !ok {
				continue // not yet visited: no contribution
			}
			if !have {
				acc, have = o, true
			} else {
				acc = p.Merge(acc, o)
			}
		}
		if !have {
			continue
		}
		in[b] = acc
		o := p.Transfer(b, acc)
		old, hadOut := out[b]
		if hadOut && p.Equal(old, o) {
			continue
		}
		out[b] = o
		for _, q := range next(b) {
			if !seen[q] {
				seen[q] = true
			}
			work = append(work, q)
		}
	}
	return in
}

// MustReachExit reports whether every path from Entry to Exit passes a
// node satisfying pred, counting a matching defer (defers run on every
// exit) and treating Terminal blocks (panic/os.Exit — the process is
// unwinding) as satisfied. An unreachable Exit (e.g. an infinite loop)
// reports false: nothing is guaranteed about paths that never finish.
func (c *CFG) MustReachExit(pred func(ast.Node) bool) bool {
	for _, d := range c.Defers {
		if pred(d) || pred(d.Call) {
			return true
		}
	}
	type fact struct{ ok, reached bool }
	res := Solve(c, Problem[fact]{
		Dir:      Forward,
		Boundary: fact{ok: false, reached: true},
		Merge: func(a, b fact) fact {
			return fact{ok: a.ok && b.ok, reached: a.reached || b.reached}
		},
		Equal: func(a, b fact) bool { return a == b },
		Transfer: func(b *Block, in fact) fact {
			if in.ok || b.Terminal {
				return fact{ok: true, reached: true}
			}
			for _, n := range b.Nodes {
				if matchNode(n, pred) {
					return fact{ok: true, reached: true}
				}
			}
			return in
		},
	})
	f, ok := res[c.Exit]
	if !ok {
		return false
	}
	// The fact at Exit's IN side is the merge over all paths; but the
	// Exit block itself has no nodes, so IN is the answer.
	return f.ok
}

// matchNode applies pred to n and, for statements, to the direct
// expressions they carry, so a predicate written against calls or
// receives fires whether the node is the bare expression or the
// statement wrapping it.
func matchNode(n ast.Node, pred func(ast.Node) bool) bool {
	if pred(n) {
		return true
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false // other units' bodies are not this path
		}
		if m != nil && pred(m) {
			found = true
		}
		return !found
	})
	return found
}

// TaintVal is the per-variable fact of the taint analyses: a bitmask of
// taint kinds plus the human-readable name of the first clock source
// that contributed (for diagnostics).
type TaintVal struct {
	Kinds uint32
	Src   string
}

// TaintState maps locals to their taint at a program point.
type TaintState map[types.Object]TaintVal

// Merge unions two states (may-analysis: tainted on some path).
func (s TaintState) Merge(o TaintState) TaintState {
	out := make(TaintState, len(s)+len(o))
	for k, v := range s {
		out[k] = v
	}
	for k, v := range o {
		cur := out[k]
		cur.Kinds |= v.Kinds
		if cur.Src == "" {
			cur.Src = v.Src
		}
		out[k] = cur
	}
	return out
}

// Equal reports whether two states carry the same taint kinds for the
// same objects (sources are diagnostic garnish and do not drive the
// fixpoint).
func (s TaintState) Equal(o TaintState) bool {
	if len(s) != len(o) {
		// Zero-kind entries may pad one side; compare semantically.
		for k, v := range s {
			if o[k].Kinds != v.Kinds {
				return false
			}
		}
		for k, v := range o {
			if s[k].Kinds != v.Kinds {
				return false
			}
		}
		return true
	}
	for k, v := range s {
		if o[k].Kinds != v.Kinds {
			return false
		}
	}
	return true
}

// Set returns a copy of the state with obj's taint replaced (a strong
// update: assignment kills the old fact).
func (s TaintState) Set(obj types.Object, v TaintVal) TaintState {
	out := make(TaintState, len(s)+1)
	for k, w := range s {
		out[k] = w
	}
	if v.Kinds == 0 {
		delete(out, obj)
	} else {
		out[obj] = v
	}
	return out
}

// Add returns a copy with obj's taint widened (a weak update).
func (s TaintState) Add(obj types.Object, v TaintVal) TaintState {
	cur := s[obj]
	cur.Kinds |= v.Kinds
	if cur.Src == "" {
		cur.Src = v.Src
	}
	return s.Set(obj, cur)
}
