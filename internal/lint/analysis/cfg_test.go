package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseBody parses a function body from source and returns it with the
// terminal-call predicate used by the suite (none, for these tests).
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// callNamed matches a call statement to the named function.
func callNamed(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

// TestMustReachExit pins the must-analysis on the shapes the goroleak
// rules depend on: deferred calls satisfy every path, straight-line
// calls satisfy, a call skipped by an early return does not, a call on
// both branches of an if does, and a call only inside a conditional
// loop does not.
func TestMustReachExit(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"deferred", "defer done()\nwork()", true},
		{"straight line", "work()\ndone()", true},
		{"early return skips", "if cond() {\nreturn\n}\ndone()", false},
		{"both branches", "if cond() {\ndone()\nreturn\n}\ndone()", true},
		{"only inside loop", "for cond() {\ndone()\n}", false},
		{"infinite loop without call", "for {\nwork()\n}", false},
		{"select both arms", "select {\ncase <-a:\ndone()\ncase <-b:\ndone()\n}", true},
		{"select one arm", "select {\ncase <-a:\ndone()\ncase <-b:\n}", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := BuildCFG(parseBody(t, c.body), nil)
			if got := cfg.MustReachExit(callNamed("done")); got != c.want {
				t.Errorf("MustReachExit(done) = %v, want %v\nbody:\n%s", got, c.want, c.body)
			}
		})
	}
}

// TestSolveReachability runs the trivial forward may-problem (is the
// block reachable?) and checks branch joins and dead code: statements
// after an unconditional return must sit in unreachable blocks.
func TestSolveReachability(t *testing.T) {
	body := parseBody(t, "work()\nreturn\ndead()")
	cfg := BuildCFG(body, nil)
	facts := Solve(cfg, Problem[bool]{
		Dir:      Forward,
		Boundary: true,
		Merge:    func(a, b bool) bool { return a || b },
		Equal:    func(a, b bool) bool { return a == b },
		Transfer: func(_ *Block, in bool) bool { return in },
	})
	blockContains := func(b *Block, pred func(ast.Node) bool) bool {
		found := false
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if m != nil && pred(m) {
					found = true
				}
				return !found
			})
		}
		return found
	}
	foundDead := false
	for _, b := range cfg.Blocks {
		if blockContains(b, callNamed("dead")) {
			foundDead = true
			if _, reachable := facts[b]; reachable {
				t.Errorf("dead() block is in the solved fact map; want unreachable")
			}
		}
		if blockContains(b, callNamed("work")) {
			if in, ok := facts[b]; !ok || !in {
				t.Errorf("work() block fact = %v, %v; want reachable with boundary fact", in, ok)
			}
		}
	}
	if !foundDead {
		t.Fatal("corpus error: dead() not found in any block")
	}
}

// TestTaintStateOps pins the lattice helpers the taint engine leans on:
// Set is a strong (replacing) update that drops zero facts, Add is a
// weak (unioning) update, Merge unions pointwise, and Equal compares
// kind masks in both directions.
func TestTaintStateOps(t *testing.T) {
	k1 := types.NewVar(token.NoPos, nil, "k1", types.Typ[types.Int])
	k2 := types.NewVar(token.NoPos, nil, "k2", types.Typ[types.Int])

	a := TaintState{}
	a = a.Set(k1, TaintVal{Kinds: 1, Src: "one"})
	a = a.Add(k1, TaintVal{Kinds: 2, Src: "two"})
	if got := a[k1].Kinds; got != 3 {
		t.Errorf("Add after Set: kinds = %b, want 11", got)
	}

	b := TaintState{}
	b = b.Set(k2, TaintVal{Kinds: 4, Src: "four"})
	m := a.Merge(b)
	if m[k1].Kinds != 3 || m[k2].Kinds != 4 {
		t.Errorf("Merge lost facts: %v", m)
	}
	if a.Equal(m) {
		t.Error("Equal: merged state compares equal to its smaller input")
	}
	if !m.Equal(a.Merge(b)) {
		t.Error("Equal: identical merges compare unequal")
	}

	// Strong update to zero kinds removes the entry entirely.
	m = m.Set(k1, TaintVal{})
	if _, ok := m[k1]; ok {
		t.Error("Set to zero kinds should delete the entry")
	}
}
