package analysis

// This file is the control-flow half of the flow-sensitive layer: a
// per-function CFG built from the typechecked AST. Blocks hold statement
// and condition nodes in execution order; edges follow if/for/range/
// switch/select/goto structure; return and terminal calls (panic,
// os.Exit, log.Fatal*) edge to the synthetic Exit block. Function
// literals are NOT descended into — each function unit (declaration or
// literal) gets its own CFG, so an analyzer reasons about one goroutine
// or one body at a time, the way the concurrency contracts are written.

import (
	"go/ast"
)

// A Block is one straight-line run of nodes with no internal control
// transfer. Nodes are statements plus the condition expressions of the
// branches that end the block, in execution order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Terminal marks a block ending in a call that unwinds or ends the
	// process (panic, os.Exit, log.Fatal*): its edge to Exit is not a
	// normal return path, and must-analyses may treat it as satisfied.
	Terminal bool
}

// A CFG is the control-flow graph of one function unit (a declaration
// body or a function literal body). Entry has no predecessors; every
// normal or terminal exit reaches Exit. Defers collects the unit's defer
// statements in source order — they run on every exit path, so path
// analyses consult them separately instead of threading them through
// the edges.
type CFG struct {
	Entry, Exit *Block
	Blocks      []*Block
	Defers      []*ast.DeferStmt
}

// IsTerminalCall reports whether a call expression ends the function
// abnormally (so control never falls through). Analyzers supply it to
// BuildCFG; nil means only the builtin panic is terminal.
type IsTerminalCall func(*ast.CallExpr) bool

// BuildCFG constructs the CFG of one function body. isTerminal, when
// non-nil, identifies calls that never return (os.Exit, log.Fatal*);
// panic is always terminal.
func BuildCFG(body *ast.BlockStmt, isTerminal IsTerminalCall) *CFG {
	b := &cfgBuilder{
		cfg:        &CFG{},
		isTerminal: isTerminal,
		labels:     map[string]*labelBlocks{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit) // fall off the end: implicit return
	}
	return b.cfg
}

// labelBlocks is the jump-target bookkeeping of one label: where break,
// continue and goto to that label land.
type labelBlocks struct {
	breakTo    *Block
	continueTo *Block
	gotoTo     *Block
}

type cfgBuilder struct {
	cfg        *CFG
	cur        *Block // nil after an unconditional transfer
	isTerminal IsTerminalCall
	labels     map[string]*labelBlocks

	// innermost-first stacks of enclosing break/continue targets
	breaks    []*Block
	continues []*Block

	// pendingLabel is set between a LabeledStmt and its statement, so
	// the loop/switch registers its targets under the label.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// use appends a node to the current block, starting a fresh unreachable
// block if control already transferred (dead code still gets analyzed,
// it just has no predecessors).
func (b *cfgBuilder) use(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// terminalExpr reports whether the expression statement never returns.
func (b *cfgBuilder) terminalExpr(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return b.isTerminal != nil && b.isTerminal(call)
}

// takeLabel consumes the pending label for the statement that now owns
// its jump targets, registering the given blocks.
func (b *cfgBuilder) takeLabel(breakTo, continueTo *Block) {
	if b.pendingLabel == "" {
		return
	}
	lb := b.labelFor(b.pendingLabel)
	lb.breakTo = breakTo
	lb.continueTo = continueTo
	b.pendingLabel = ""
}

func (b *cfgBuilder) labelFor(name string) *labelBlocks {
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlocks{}
		b.labels[name] = lb
	}
	return lb
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.pendingLabel = ""
		b.stmts(s.List)

	case *ast.IfStmt:
		b.pendingLabel = ""
		if s.Init != nil {
			b.use(s.Init)
		}
		b.use(s.Cond)
		cond := b.cur
		after := b.newBlock()

		thenB := b.newBlock()
		b.edge(cond, thenB)
		b.cur = thenB
		b.stmts(s.Body.List)
		b.edge(b.cur, after)

		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.use(s.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.takeLabel(after, post)
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.use(s.Cond)
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.breaks = append(b.breaks, after)
		b.continues = append(b.continues, post)
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, post)
		if s.Post != nil {
			b.cur = post
			b.use(s.Post)
			b.edge(post, head)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		after := b.newBlock()
		b.takeLabel(after, head)
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s) // key/value binding happens here
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.breaks = append(b.breaks, after)
		b.continues = append(b.continues, head)
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.use(s.Init)
		}
		if s.Tag != nil {
			b.use(s.Tag)
		}
		b.switchClauses(s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.use(s.Init)
		}
		b.switchClauses(s.Body, s.Assign)

	case *ast.SelectStmt:
		b.selectClauses(s.Body)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		lb := b.labelFor(s.Label.Name)
		// goto target: the labeled statement's entry point
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		lb.gotoTo = target
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.use(s)
		switch s.Tok.String() {
		case "break":
			if s.Label != nil {
				b.edge(b.cur, b.labelFor(s.Label.Name).breakTo)
			} else if len(b.breaks) > 0 {
				b.edge(b.cur, b.breaks[len(b.breaks)-1])
			}
			b.cur = nil
		case "continue":
			if s.Label != nil {
				b.edge(b.cur, b.labelFor(s.Label.Name).continueTo)
			} else if len(b.continues) > 0 {
				b.edge(b.cur, b.continues[len(b.continues)-1])
			}
			b.cur = nil
		case "goto":
			if s.Label != nil {
				lb := b.labelFor(s.Label.Name)
				if lb.gotoTo == nil {
					lb.gotoTo = b.newBlock() // forward goto: placeholder
				}
				b.edge(b.cur, lb.gotoTo)
			}
			b.cur = nil
		case "fallthrough":
			// handled by switchClauses; the edge to the next clause is
			// added there
		}

	case *ast.ReturnStmt:
		b.use(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.ExprStmt:
		b.use(s)
		if b.terminalExpr(s.X) {
			b.cur.Terminal = true
			b.edge(b.cur, b.cfg.Exit)
			b.cur = nil
		}

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.use(s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, …
		b.use(s)
	}
}

// switchClauses wires an (expression or type) switch body: the current
// block branches to every clause (and to after, when no default exists);
// fallthrough chains clause bodies.
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, assign ast.Stmt) {
	cond := b.cur
	after := b.newBlock()
	b.takeLabel(after, nil)
	hasDefault := false

	clauseBlocks := make([]*Block, len(body.List))
	for i := range body.List {
		clauseBlocks[i] = b.newBlock()
	}
	b.breaks = append(b.breaks, after)
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(cond, clauseBlocks[i])
		b.cur = clauseBlocks[i]
		if assign != nil {
			// the type switch's per-clause binding
			b.use(assign)
		}
		for _, e := range cc.List {
			b.use(e)
		}
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(clauseBlocks) {
			b.edge(b.cur, clauseBlocks[i+1])
			b.cur = nil
		}
		b.edge(b.cur, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !hasDefault || len(body.List) == 0 {
		b.edge(cond, after)
	}
	b.cur = after
}

// selectClauses wires a select: every comm clause is a successor; with
// no default the statement blocks until one fires, so there is no
// fall-past edge (and an empty select has no successors at all).
func (b *cfgBuilder) selectClauses(body *ast.BlockStmt) {
	cond := b.cur
	after := b.newBlock()
	b.takeLabel(after, nil)
	b.breaks = append(b.breaks, after)
	for _, c := range body.List {
		cc := c.(*ast.CommClause)
		cb := b.newBlock()
		b.edge(cond, cb)
		b.cur = cb
		if cc.Comm != nil {
			b.use(cc.Comm)
		}
		b.stmts(cc.Body)
		b.edge(b.cur, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if len(body.List) == 0 {
		// select{}: blocks forever; after is unreachable
		b.cur = after
		return
	}
	b.cur = after
}
