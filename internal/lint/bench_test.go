package lint

import (
	"testing"

	"repro/internal/lint/load"
)

// benchmarkSuite times the full default suite over the whole module —
// the in-process twin of CI's `go vet -vettool` run. The stubFacts
// variant nils every fact store, reproducing the pre-facts placeholder
// behaviour; CI's sopslint-bench step runs both and fails if facts
// cost more than 2× the placeholder wall-clock.
func benchmarkSuite(b *testing.B, stubFacts bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Fresh packages per iteration: fact export and the analyzers'
		// engines memoize per package, so a reused load would time the
		// cache, not the analysis.
		pkgs, err := load.Packages("", "repro/...")
		if err != nil {
			b.Fatalf("loading module packages: %v", err)
		}
		if stubFacts {
			for _, p := range pkgs {
				p.Facts = nil
			}
		}
		b.StartTimer()
		if _, err := Run(pkgs, DefaultChecks()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteFacts(b *testing.B) { benchmarkSuite(b, false) }

func BenchmarkSuiteNoFacts(b *testing.B) { benchmarkSuite(b, true) }
