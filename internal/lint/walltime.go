package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// Walltime forbids reading the wall clock in packages reachable from
// Spec.Fingerprint() or checkpoint encoding.
//
// Contract (DESIGN.md): a run's identity is fully determined by its
// spec, and a checkpoint restored on any machine at any time is
// byte-identical to the original computation. A time.Now() anywhere in
// that closure is a hidden input. The suite scopes this check to the
// root package and internal/... (the conservative superset of the
// fingerprint/checkpoint import closure); CLIs, examples and test files
// are exempt, and sanctioned instrumentation (per-eval timing columns,
// progress reporting) carries a //sopslint:ignore walltime directive
// with its justification.
var Walltime = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/time.Since/time.Until in fingerprint- and checkpoint-reachable packages",
	Run:  runWalltime,
}

var walltimeCalls = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWalltime(pass *analysis.Pass) error {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || !walltimeCalls[fn.Name()] || !pkgPathIs(fn.Pkg(), "time") {
				return true
			}
			pass.Reportf(call.Pos(), "wall-clock read time.%s in fingerprint/checkpoint-reachable code: results must be a pure function of the spec; take times in the CLI layer, or annotate //sopslint:ignore walltime <reason> for reporting-only instrumentation", fn.Name())
			return true
		})
	}
	return nil
}
