package lint

import (
	"repro/internal/lint/analysis"
)

// Walltime flags wall-clock reads whose values escape time-typed
// instrumentation in packages reachable from Spec.Fingerprint() or
// checkpoint encoding.
//
// Contract (DESIGN.md): a run's identity is fully determined by its
// spec, and a checkpoint restored on any machine at any time is
// byte-identical to the original computation. A time.Now() feeding that
// closure is a hidden input. The analyzer is flow-aware: reading the
// clock is legal while the value remains transparently time-typed
// instrumentation — time.Time/time.Duration locals, slices of them,
// Duration-typed result columns (the PerEval idiom) — because such
// values are reporting-only by construction. What gets flagged is the
// escape, where a clock read could start steering results:
//
//   - conversion to a non-time type (int64(d), float64(d));
//   - a non-time accessor on a time value (UnixNano, Seconds, String);
//   - a comparison, whose boolean steers control flow;
//   - an argument to another package's API (conn.SetReadDeadline,
//     fmt.Fprintf) — including one level deep through a package-local
//     helper whose summary says the parameter escapes.
//
// The suite scopes this check to the root package and internal/... (the
// conservative superset of the fingerprint/checkpoint import closure);
// CLIs, examples and test files are exempt.
var Walltime = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "flag time.Now/time.Since/time.Until values escaping time-typed instrumentation in fingerprint- and checkpoint-reachable packages",
	Run:  runWalltime,
}

var walltimeCalls = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWalltime(pass *analysis.Pass) error {
	eng := taintEngineFor(pass)
	for _, f := range pass.SourceFiles() {
		for _, u := range analysis.Units(f) {
			for _, ev := range eng.analyze(u) {
				if ev.kind != evClockEscape {
					continue
				}
				src := ev.src
				if src == "" {
					src = "time.Now"
				}
				pass.Reportf(ev.pos, "wall-clock read %s %s: results must be a pure function of the spec; keep timings in time.Duration instrumentation columns, take times in the CLI layer, or annotate //sopslint:ignore walltime <reason>", src, ev.where)
			}
		}
	}
	return nil
}
