package spatial

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/vec"
)

func randomPoints(r *rand.Rand, n int, extent float64) []vec.Vec2 {
	pts := make([]vec.Vec2, n)
	for i := range pts {
		pts[i] = vec.Vec2{X: (r.Float64() - 0.5) * extent, Y: (r.Float64() - 0.5) * extent}
	}
	return pts
}

func sorted(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: grid radius queries agree exactly with brute force for random
// point sets, radii and cell sizes.
func TestGridMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 40; trial++ {
		n := 5 + r.IntN(120)
		pts := randomPoints(r, n, 30)
		radius := 0.5 + r.Float64()*8
		cell := 0.3 + r.Float64()*6
		g := NewGrid(pts, cell)
		for i := 0; i < n; i++ {
			got := sorted(g.Neighbors(i, radius))
			want := sorted(BruteNeighbors(pts, i, radius))
			if !equalInts(got, want) {
				t.Fatalf("trial %d point %d: grid %v, brute %v (r=%v cell=%v)", trial, i, got, want, radius, cell)
			}
		}
	}
}

func TestGridExcludesSelf(t *testing.T) {
	pts := []vec.Vec2{v2(0, 0), v2(0.1, 0), v2(5, 5)}
	g := NewGrid(pts, 1)
	for _, j := range g.Neighbors(0, 2) {
		if j == 0 {
			t.Fatal("grid returned the query point itself")
		}
	}
}

func TestGridBoundaryInclusive(t *testing.T) {
	// A point exactly at the radius must be included (<=).
	pts := []vec.Vec2{v2(0, 0), v2(2, 0)}
	g := NewGrid(pts, 1)
	if got := g.Neighbors(0, 2); len(got) != 1 {
		t.Fatalf("boundary point excluded: %v", got)
	}
}

func TestGridCountWithin(t *testing.T) {
	pts := []vec.Vec2{v2(0, 0), v2(1, 0), v2(0, 1), v2(10, 10)}
	g := NewGrid(pts, 2)
	if got := g.CountWithin(0, 1.5); got != 2 {
		t.Fatalf("CountWithin = %d, want 2", got)
	}
}

func TestGridDeterministicOrder(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	pts := randomPoints(r, 60, 20)
	g1 := NewGrid(pts, 2)
	g2 := NewGrid(pts, 2)
	for i := range pts {
		a := g1.Neighbors(i, 5)
		b := g2.Neighbors(i, 5)
		if !equalInts(a, b) {
			t.Fatal("grid visit order not deterministic")
		}
	}
}

func TestGridRejectsBadCellSize(t *testing.T) {
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cell size %v should panic", bad)
				}
			}()
			NewGrid(nil, bad)
		}()
	}
}

func TestBruteNeighborsInfiniteRadius(t *testing.T) {
	pts := []vec.Vec2{v2(0, 0), v2(1e6, 0), v2(0, 1e6)}
	got := BruteNeighbors(pts, 0, math.Inf(1))
	if len(got) != 2 {
		t.Fatalf("rc=inf should return all others, got %v", got)
	}
}

func liftPoints(ps []vec.Vec2, z float64) []vec.Vec3 {
	out := make([]vec.Vec3, len(ps))
	for i, p := range ps {
		out[i] = vec.Vec3{X: p.X, Y: p.Y, Z: z}
	}
	return out
}

// Property: k-d tree nearest neighbour agrees with brute force on random
// inputs, including queries far outside the point cloud.
func TestKDTreeMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.IntN(200)
		pts := make([]vec.Vec3, n)
		for i := range pts {
			pts[i] = vec.Vec3{
				X: (r.Float64() - 0.5) * 20,
				Y: (r.Float64() - 0.5) * 20,
				Z: float64(r.IntN(4)) * 100,
			}
		}
		tree := NewKDTree3(pts)
		if tree.Len() != n {
			t.Fatalf("tree has %d nodes, want %d", tree.Len(), n)
		}
		for q := 0; q < 50; q++ {
			query := vec.Vec3{
				X: (r.Float64() - 0.5) * 60,
				Y: (r.Float64() - 0.5) * 60,
				Z: float64(r.IntN(4)) * 100,
			}
			gi, gd := tree.Nearest(query)
			_, bd := BruteNearest3(pts, query)
			// Indices may differ under exact ties; distances must
			// agree exactly.
			if gd != bd {
				t.Fatalf("trial %d: tree dist %v, brute dist %v", trial, gd, bd)
			}
			if pts[gi].Dist2(query) != gd {
				t.Fatal("returned index inconsistent with returned distance")
			}
		}
	}
}

func TestKDTreeSinglePoint(t *testing.T) {
	tree := NewKDTree3([]vec.Vec3{v3(1, 2, 3)})
	i, d2 := tree.Nearest(v3(1, 2, 4))
	if i != 0 || d2 != 1 {
		t.Fatalf("Nearest = %d, %v", i, d2)
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	pts := []vec.Vec3{v3(1, 1, 0), v3(1, 1, 0), v3(2, 2, 0)}
	tree := NewKDTree3(pts)
	i, d2 := tree.Nearest(v3(1, 1, 0))
	if d2 != 0 {
		t.Fatalf("exact duplicate query: d2 = %v", d2)
	}
	if i != 0 && i != 1 {
		t.Fatalf("unexpected index %d", i)
	}
}

func TestKDTreeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Nearest on empty tree should panic")
		}
	}()
	NewKDTree3(nil).Nearest(vec.Vec3{})
}

func TestKDTreeTypeLiftSeparation(t *testing.T) {
	// With a type lift much larger than the spatial extent, the nearest
	// neighbour of a lifted query is always a point of the same type,
	// even when another type's point is spatially closer — the property
	// the ICP alignment relies on.
	r := rand.New(rand.NewPCG(7, 8))
	spatialPts := randomPoints(r, 50, 10)
	var lifted []vec.Vec3
	types := make([]int, 50)
	for i, p := range spatialPts {
		types[i] = i % 3
		lifted = append(lifted, vec.Vec3{X: p.X, Y: p.Y, Z: float64(types[i]) * 1000})
	}
	tree := NewKDTree3(lifted)
	for q := 0; q < 200; q++ {
		qt := q % 3
		query := vec.Vec3{
			X: (r.Float64() - 0.5) * 10,
			Y: (r.Float64() - 0.5) * 10,
			Z: float64(qt) * 1000,
		}
		i, _ := tree.Nearest(query)
		if types[i] != qt {
			t.Fatalf("nearest crossed types: query type %d matched point of type %d", qt, types[i])
		}
	}
}
