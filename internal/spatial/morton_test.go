package spatial

import (
	"testing"

	"repro/internal/rngx"
)

func TestMortonKeyInterleaves(t *testing.T) {
	cases := []struct {
		cx, cy uint32
		want   uint32
	}{
		{0, 0, 0},
		{1, 0, 0b01},
		{0, 1, 0b10},
		{1, 1, 0b11},
		{0b11, 0b00, 0b0101},
		{0b00, 0b11, 0b1010},
		{0xFFFF, 0xFFFF, 0xFFFFFFFF},
		{0xFFFF, 0, 0x55555555},
		{0, 0xFFFF, 0xAAAAAAAA},
	}
	for _, c := range cases {
		if got := MortonKey(c.cx, c.cy); got != c.want {
			t.Errorf("MortonKey(%#x, %#x) = %#x, want %#x", c.cx, c.cy, got, c.want)
		}
	}
}

func TestMortonKeyIsMonotoneInQuadrants(t *testing.T) {
	// Z-order's defining property at the top level: every key in the
	// lower-left quadrant precedes every key in the upper-right one.
	hi := uint32(1 << (mortonBits - 1))
	if MortonKey(hi-1, hi-1) >= MortonKey(hi, hi) {
		t.Fatal("lower-left quadrant does not precede upper-right")
	}
}

func mortonPoints(n int, seed uint64) []float64 {
	r := rngx.New(seed)
	pts := make([]float64, 2*n)
	for i := range pts {
		pts[i] = r.UniformIn(-3, 3)
	}
	return pts
}

func atXY(pts []float64) func(int) (float64, float64) {
	return func(i int) (float64, float64) { return pts[2*i], pts[2*i+1] }
}

func TestMortonOrderIsPermutation(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		pts := mortonPoints(n, uint64(n)+1)
		var ms MortonScratch
		perm := ms.MortonOrder(n, atXY(pts))
		if len(perm) != n {
			t.Fatalf("n=%d: len(perm) = %d", n, len(perm))
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("n=%d: not a permutation: %v", n, perm)
			}
			seen[v] = true
		}
	}
}

func TestMortonOrderIsPureFunctionOfPoints(t *testing.T) {
	pts := mortonPoints(500, 9)
	var a, b MortonScratch
	pa := a.MortonOrder(500, atXY(pts))
	// Dirty b with a different point set first: scratch reuse must not
	// leak into the result.
	_ = b.MortonOrder(300, atXY(mortonPoints(300, 10)))
	pb := b.MortonOrder(500, atXY(pts))
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("perm differs at %d: %d vs %d", i, pa[i], pb[i])
		}
	}
}

func TestMortonOrderCoincidentPointsKeepIndexOrder(t *testing.T) {
	// All points identical ⇒ all keys tie ⇒ identity permutation. Same
	// for the degenerate one-axis case.
	n := 20
	pts := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		pts[2*i], pts[2*i+1] = 1.5, -2.5
	}
	var ms MortonScratch
	perm := ms.MortonOrder(n, atXY(pts))
	for i, v := range perm {
		if int(v) != i {
			t.Fatalf("coincident points: perm = %v, want identity", perm)
		}
	}
}

func TestMortonOrderGroupsQuadrants(t *testing.T) {
	// Two tight clusters far apart must come out contiguous: that is the
	// locality the row reordering exists to create.
	r := rngx.New(4)
	n := 200
	pts := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		base := 0.0
		if i%2 == 1 {
			base = 100.0
		}
		pts[2*i] = base + r.UniformIn(0, 1)
		pts[2*i+1] = base + r.UniformIn(0, 1)
	}
	var ms MortonScratch
	perm := ms.MortonOrder(n, atXY(pts))
	// After ordering, cluster membership along perm must switch exactly
	// once.
	switches := 0
	for i := 1; i < n; i++ {
		if perm[i]%2 != perm[i-1]%2 {
			switches++
		}
	}
	if switches != 1 {
		t.Fatalf("clusters interleaved after Morton order: %d membership switches, want 1", switches)
	}
}

func TestMortonOrderSteadyStateAllocs(t *testing.T) {
	pts := mortonPoints(1000, 11)
	at := atXY(pts)
	ms := &MortonScratch{}
	ms.MortonOrder(1000, at) // warm the scratch
	allocs := testing.AllocsPerRun(20, func() {
		ms.MortonOrder(1000, at)
	})
	if allocs != 0 {
		t.Fatalf("MortonOrder allocates %v per run after warm-up, want 0", allocs)
	}
}
