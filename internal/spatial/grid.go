// Package spatial provides the neighbour-search substrates of the
// repository: two uniform cell-list grids for the simulator's fixed-radius
// queries (the N_rc(i) neighbourhoods of Eq. 6) and a k-d tree for the
// nearest-neighbour correspondences of the ICP alignment stage.
//
// The two grids trade memory for rebuild cost. DenseGrid lays cells out in
// a flat CSR array over the point set's bounding box and recycles its
// backing arrays across Rebuild calls — the simulator's per-step hot path,
// allocation-free in steady state. Grid keys cells sparsely in a map, so
// its memory is O(n) regardless of how spread out the points are; it is
// the fallback for pathologically sparse sets whose bounding box would
// need far more cells than points.
//
// All structures are exact — they return the same results as brute force,
// and the two grids visit neighbours in the same deterministic order,
// which the property tests verify on random inputs.
package spatial

import (
	"math"

	"repro/internal/vec"
)

// Grid is a uniform cell-list over a point set, supporting exact
// fixed-radius neighbour queries. Cells are keyed sparsely in a map so the
// domain may be unbounded (the paper's particles live in all of R² and the
// collectives slowly expand).
type Grid struct {
	cellSize float64
	points   []vec.Vec2
	cells    map[cellKey][]int32
}

type cellKey struct{ cx, cy int32 }

// NewGrid builds a grid over points with the given cell size. A cell size
// equal to the query radius gives the classic 3×3-cell neighbourhood scan.
// cellSize must be positive and finite.
func NewGrid(points []vec.Vec2, cellSize float64) *Grid {
	if !(cellSize > 0) || math.IsInf(cellSize, 1) {
		panic("spatial: cell size must be positive and finite")
	}
	g := &Grid{
		cellSize: cellSize,
		points:   points,
		cells:    make(map[cellKey][]int32, len(points)),
	}
	for i, p := range points {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], int32(i))
	}
	return g
}

func (g *Grid) key(p vec.Vec2) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / g.cellSize)),
		cy: int32(math.Floor(p.Y / g.cellSize)),
	}
}

// ForNeighbors calls fn(j) for every point j ≠ i with ‖p_j − p_i‖ ≤ radius.
// The visit order is deterministic for a fixed point set (cells are scanned
// in a fixed window order and indices within a cell in insertion order),
// which keeps simulations bit-reproducible.
func (g *Grid) ForNeighbors(i int, radius float64, fn func(j int)) {
	p := g.points[i]
	r2 := radius * radius
	span := int32(math.Ceil(radius / g.cellSize))
	base := g.key(p)
	for dx := -span; dx <= span; dx++ {
		for dy := -span; dy <= span; dy++ {
			bucket := g.cells[cellKey{base.cx + dx, base.cy + dy}]
			for _, j := range bucket {
				if int(j) == i {
					continue
				}
				if g.points[j].Dist2(p) <= r2 {
					fn(int(j))
				}
			}
		}
	}
}

// AppendNeighbors appends to dst the indices of all points j ≠ i with
// ‖p_j − p_i‖ ≤ radius, in the same deterministic order as ForNeighbors,
// and returns the extended slice. It mirrors DenseGrid.AppendNeighbors so
// the simulator can swap backends without changing its scan loop.
func (g *Grid) AppendNeighbors(dst []int32, i int, radius float64) []int32 {
	g.ForNeighbors(i, radius, func(j int) { dst = append(dst, int32(j)) })
	return dst
}

// Neighbors returns the indices of all points within radius of point i,
// excluding i itself, in deterministic order.
func (g *Grid) Neighbors(i int, radius float64) []int {
	var out []int
	g.ForNeighbors(i, radius, func(j int) { out = append(out, j) })
	return out
}

// CountWithin returns the number of points j ≠ i within radius of point i.
func (g *Grid) CountWithin(i int, radius float64) int {
	n := 0
	g.ForNeighbors(i, radius, func(int) { n++ })
	return n
}

// BruteNeighbors is the reference implementation of a fixed-radius query:
// it scans all points. It is used by the simulator when the cut-off radius
// is infinite (every particle interacts with every other, Sec. 6.1's
// rc = ∞ experiments) and by tests as ground truth.
func BruteNeighbors(points []vec.Vec2, i int, radius float64) []int {
	r2 := radius * radius
	inf := math.IsInf(radius, 1)
	var out []int
	for j, q := range points {
		if j == i {
			continue
		}
		if inf || points[i].Dist2(q) <= r2 {
			out = append(out, j)
		}
	}
	return out
}
