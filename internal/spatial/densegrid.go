package spatial

import (
	"math"

	"repro/internal/vec"
)

// DenseGrid is a flat-array uniform cell list built by counting sort
// (CSR layout: idx holds point indices grouped by cell, start[c]..start[c+1]
// delimits cell c). Unlike Grid it is designed for the simulator's
// step-rebuild access pattern: Rebuild recycles all backing arrays, so in
// steady state rebuilding over a new frame performs zero heap allocations.
//
// DenseGrid covers the bounding box of the point set with nx×ny cells and
// therefore uses O(cells + n) memory; for point sets whose bounding box is
// huge relative to the population (cells ≫ n) the sparse map-backed Grid is
// the better choice. Cell membership uses the same floor(x/cellSize) keying
// as Grid, and queries scan the same 3×3 (or wider) window in the same
// order with point indices ascending within each cell, so DenseGrid visits
// neighbours in exactly the same deterministic order as Grid — simulations
// are bit-identical whichever backend serves the query.
type DenseGrid struct {
	cellSize float64
	points   []vec.Vec2 // aliased from the last Rebuild; not owned

	// Cell-space bounding box of the last Rebuild.
	minCX, minCY int64
	nx, ny       int

	start  []int32 // CSR cell offsets, len nx·ny+1
	idx    []int32 // point indices grouped by cell, len n
	cellOf []int32 // scratch: linear cell id per point, len n
}

// NewDenseGrid returns an empty dense grid with the given cell size; call
// Rebuild to populate it. A cell size equal to the query radius gives the
// classic 3×3-cell neighbourhood scan. cellSize must be positive and finite.
func NewDenseGrid(cellSize float64) *DenseGrid {
	if !(cellSize > 0) || math.IsInf(cellSize, 1) {
		panic("spatial: cell size must be positive and finite")
	}
	return &DenseGrid{cellSize: cellSize}
}

// NewDenseGridFrom builds a dense grid over points, equivalent to
// NewDenseGrid followed by Rebuild.
func NewDenseGridFrom(points []vec.Vec2, cellSize float64) *DenseGrid {
	g := NewDenseGrid(cellSize)
	g.Rebuild(points)
	return g
}

// CellSize returns the grid's cell size.
func (g *DenseGrid) CellSize() float64 { return g.cellSize }

// Len returns the number of points indexed by the last Rebuild.
func (g *DenseGrid) Len() int { return len(g.points) }

// Cells returns the number of cells allocated by the last Rebuild.
func (g *DenseGrid) Cells() int { return g.nx * g.ny }

// grow returns buf resliced to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func grow(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n, n+n/2)
	}
	return buf[:n]
}

// Rebuild re-indexes the grid over a new point set, recycling all backing
// arrays. The slice is aliased, not copied: the caller must not move points
// between Rebuild and subsequent queries. Growing, shrinking and identical
// point sets are all fine — the property tests check that a recycled grid
// answers exactly like a freshly built one.
func (g *DenseGrid) Rebuild(points []vec.Vec2) {
	min, max := vec.BoundingBox(points)
	g.RebuildBounded(points, min, max)
}

// RebuildBounded is Rebuild with a precomputed bounding box of the points,
// saving the extra O(n) scan when the caller already has one (the
// simulator's strategy choice computes it every step anyway). min and max
// must satisfy min.X ≤ p.X ≤ max.X, min.Y ≤ p.Y ≤ max.Y for every point.
func (g *DenseGrid) RebuildBounded(points []vec.Vec2, min, max vec.Vec2) {
	g.points = points
	n := len(points)
	g.idx = grow(g.idx, n)
	g.cellOf = grow(g.cellOf, n)
	if n == 0 {
		g.nx, g.ny = 0, 0
		g.start = grow(g.start, 1)
		g.start[0] = 0
		return
	}

	g.minCX = int64(math.Floor(min.X / g.cellSize))
	g.minCY = int64(math.Floor(min.Y / g.cellSize))
	g.nx = int(int64(math.Floor(max.X/g.cellSize))-g.minCX) + 1
	g.ny = int(int64(math.Floor(max.Y/g.cellSize))-g.minCY) + 1
	nc := g.nx * g.ny

	g.start = grow(g.start, nc+1)
	for c := range g.start {
		g.start[c] = 0
	}
	// Counting sort, pass 1: histogram cell occupancy.
	for i, p := range points {
		c := int32((int64(math.Floor(p.Y/g.cellSize))-g.minCY)*int64(g.nx) +
			(int64(math.Floor(p.X/g.cellSize)) - g.minCX))
		g.cellOf[i] = c
		g.start[c+1]++
	}
	for c := 0; c < nc; c++ {
		g.start[c+1] += g.start[c]
	}
	// Pass 2: scatter in ascending point order, so indices stay ascending
	// within each cell (the determinism contract shared with Grid). The
	// cursor trick advances start[c] to end-of-cell; the shift below
	// restores the CSR offsets.
	for i := 0; i < n; i++ {
		c := g.cellOf[i]
		g.idx[g.start[c]] = int32(i)
		g.start[c]++
	}
	for c := nc; c > 0; c-- {
		g.start[c] = g.start[c-1]
	}
	g.start[0] = 0
}

// ForNeighbors calls fn(j) for every point j ≠ i with ‖p_j − p_i‖ ≤ radius,
// in the same deterministic order as Grid.ForNeighbors.
func (g *DenseGrid) ForNeighbors(i int, radius float64, fn func(j int)) {
	p := g.points[i]
	r2 := radius * radius
	span := int64(math.Ceil(radius / g.cellSize))
	cx := int64(math.Floor(p.X/g.cellSize)) - g.minCX
	cy := int64(math.Floor(p.Y/g.cellSize)) - g.minCY
	for dx := -span; dx <= span; dx++ {
		x := cx + dx
		if x < 0 || x >= int64(g.nx) {
			continue
		}
		for dy := -span; dy <= span; dy++ {
			y := cy + dy
			if y < 0 || y >= int64(g.ny) {
				continue
			}
			c := y*int64(g.nx) + x
			for _, j := range g.idx[g.start[c]:g.start[c+1]] {
				if int(j) == i {
					continue
				}
				if g.points[j].Dist2(p) <= r2 {
					fn(int(j))
				}
			}
		}
	}
}

// AppendNeighbors appends to dst the indices of all points j ≠ i with
// ‖p_j − p_i‖ ≤ radius, in the same deterministic order as ForNeighbors,
// and returns the extended slice. Passing a recycled dst[:0] makes the
// query allocation-free once the buffer has grown to the steady-state
// neighbour count — this is the simulator's hot-path entry point.
func (g *DenseGrid) AppendNeighbors(dst []int32, i int, radius float64) []int32 {
	p := g.points[i]
	r2 := radius * radius
	span := int64(math.Ceil(radius / g.cellSize))
	cx := int64(math.Floor(p.X/g.cellSize)) - g.minCX
	cy := int64(math.Floor(p.Y/g.cellSize)) - g.minCY
	for dx := -span; dx <= span; dx++ {
		x := cx + dx
		if x < 0 || x >= int64(g.nx) {
			continue
		}
		for dy := -span; dy <= span; dy++ {
			y := cy + dy
			if y < 0 || y >= int64(g.ny) {
				continue
			}
			c := y*int64(g.nx) + x
			for _, j := range g.idx[g.start[c]:g.start[c+1]] {
				if int(j) == i {
					continue
				}
				if g.points[j].Dist2(p) <= r2 {
					dst = append(dst, j)
				}
			}
		}
	}
	return dst
}

// Neighbors returns the indices of all points within radius of point i,
// excluding i itself, in deterministic order.
func (g *DenseGrid) Neighbors(i int, radius float64) []int {
	var out []int
	g.ForNeighbors(i, radius, func(j int) { out = append(out, j) })
	return out
}

// CountWithin returns the number of points j ≠ i within radius of point i.
func (g *DenseGrid) CountWithin(i int, radius float64) int {
	n := 0
	g.ForNeighbors(i, radius, func(int) { n++ })
	return n
}
