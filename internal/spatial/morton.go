package spatial

import "sort"

// Morton (Z-order) row ordering.
//
// The estimator engine builds k-d trees over datasets whose rows are
// ordered by sample index — spatially random, so tree construction and
// the flat-scan fallback stride all over the row slab. Sorting rows
// along a Z-order curve makes spatially close rows memory-adjacent:
// tree leaves become contiguous runs and range scans walk the slab
// mostly forward. The helper is deliberately generic (rows exposed
// through an accessor, not a concrete layout) so infotheory.Dataset and
// DenseGrid-style structures can share it.
//
// The ordering is a pure function of the point set: MortonOrder on the
// same coordinates always yields the same permutation, and equal keys
// fall back to the original index, so downstream code that ties on a
// stable row ID stays bit-identical however rows were previously laid
// out.

// mortonBits is the per-axis key resolution. 16 bits per axis keeps the
// interleaved key in 32 bits while resolving 65536 cells per axis —
// far below float noise for any simulation box this repo produces.
const mortonBits = 16

// spreadBits16 spaces the low 16 bits of v one bit apart (abcd →
// a0b0c0d0), the standard mask-shift interleave ladder.
func spreadBits16(v uint32) uint32 {
	v &= 0xFFFF
	v = (v | v<<8) & 0x00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}

// MortonKey interleaves two 16-bit cell coordinates into a 32-bit
// Z-order key, x occupying the even bits and y the odd bits.
func MortonKey(cx, cy uint32) uint32 {
	return spreadBits16(cx) | spreadBits16(cy)<<1
}

// MortonScratch recycles the buffers MortonOrder needs, so steady-state
// reordering of same-size point sets performs zero heap allocations.
// The zero value is ready to use.
type MortonScratch struct {
	sorter mortonSorter
}

type mortonSorter struct {
	keys []uint32
	perm []int32
}

func (s *mortonSorter) Len() int { return len(s.perm) }
func (s *mortonSorter) Less(i, j int) bool {
	a, b := s.perm[i], s.perm[j]
	if s.keys[a] != s.keys[b] {
		return s.keys[a] < s.keys[b]
	}
	return a < b // equal keys: original index, so the order is total
}
func (s *mortonSorter) Swap(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] }

// MortonOrder computes the Z-order permutation of n points whose planar
// coordinates are exposed by at (index → x, y): perm[k] is the original
// index of the point that lands in slot k. Coordinates are quantized to
// a 2^16-per-axis grid over the bounding box; degenerate axes (all
// points equal) quantize to cell 0. Key ties — including the n ≤ 1 and
// all-points-coincident cases — preserve original index order, so the
// permutation is deterministic and a pure function of the coordinates.
// The returned slice aliases scratch storage, valid until the next call.
func (ms *MortonScratch) MortonOrder(n int, at func(i int) (x, y float64)) []int32 {
	s := &ms.sorter
	s.keys = growUint32(s.keys, n)
	s.perm = grow(s.perm, n)
	if n == 0 {
		return s.perm
	}
	minX, minY := at(0)
	maxX, maxY := minX, minY
	for i := 1; i < n; i++ {
		x, y := at(i)
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	const cells = 1<<mortonBits - 1
	sx, sy := 0.0, 0.0
	if maxX > minX {
		sx = cells / (maxX - minX)
	}
	if maxY > minY {
		sy = cells / (maxY - minY)
	}
	for i := 0; i < n; i++ {
		x, y := at(i)
		cx := uint32((x - minX) * sx)
		cy := uint32((y - minY) * sy)
		if cx > cells {
			cx = cells // guard float round-up at the box edge
		}
		if cy > cells {
			cy = cells
		}
		s.keys[i] = MortonKey(cx, cy)
		s.perm[i] = int32(i)
	}
	sort.Sort(s)
	return s.perm
}

// RetainedBytes reports the scratch capacity the MortonScratch keeps
// across calls, for pool retention accounting.
func (ms *MortonScratch) RetainedBytes() int {
	return 4*cap(ms.sorter.keys) + 4*cap(ms.sorter.perm)
}

// growUint32 is grow for uint32 scratch.
func growUint32(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n, n+n/2)
	}
	return buf[:n]
}
