package spatial

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/vec"
)

// Property: the dense grid, the map grid and brute force agree on random
// point sets, radii and cell sizes — and the two grids agree in exact visit
// order, not just as sets.
func TestDenseGridMatchesGridAndBruteForce(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 40; trial++ {
		n := 5 + r.IntN(120)
		pts := randomPoints(r, n, 30)
		radius := 0.5 + r.Float64()*8
		cell := 0.3 + r.Float64()*6
		dense := NewDenseGridFrom(pts, cell)
		sparse := NewGrid(pts, cell)
		for i := 0; i < n; i++ {
			got := dense.Neighbors(i, radius)
			order := sparse.Neighbors(i, radius)
			if !equalInts(got, order) {
				t.Fatalf("trial %d point %d: dense order %v, map order %v (r=%v cell=%v)",
					trial, i, got, order, radius, cell)
			}
			want := sorted(BruteNeighbors(pts, i, radius))
			if !equalInts(sorted(got), want) {
				t.Fatalf("trial %d point %d: dense %v, brute %v (r=%v cell=%v)",
					trial, i, sorted(got), want, radius, cell)
			}
		}
	}
}

// Property: a recycled grid answers exactly like a freshly built one across
// growing, shrinking, identical and disjoint point sets.
func TestDenseGridRebuildReuse(t *testing.T) {
	r := rand.New(rand.NewPCG(23, 24))
	g := NewDenseGrid(1.5)
	sizes := []int{80, 200, 200, 12, 1, 0, 150, 3}
	for round, n := range sizes {
		extent := 5 + r.Float64()*60 // varying spread exercises regrowth
		pts := randomPoints(r, n, extent)
		g.Rebuild(pts)
		if g.Len() != n {
			t.Fatalf("round %d: Len = %d, want %d", round, g.Len(), n)
		}
		fresh := NewDenseGridFrom(pts, 1.5)
		radius := 0.5 + r.Float64()*5
		for i := 0; i < n; i++ {
			got := g.Neighbors(i, radius)
			if !equalInts(got, fresh.Neighbors(i, radius)) {
				t.Fatalf("round %d point %d: recycled grid diverged from fresh grid", round, i)
			}
			if !equalInts(sorted(got), sorted(BruteNeighbors(pts, i, radius))) {
				t.Fatalf("round %d point %d: recycled grid diverged from brute force", round, i)
			}
		}
	}
}

// Rebuilding over the identical point set twice must not change any answer
// (the counting sort is stable and the scratch arrays are fully overwritten).
func TestDenseGridRebuildIdempotent(t *testing.T) {
	r := rand.New(rand.NewPCG(25, 26))
	pts := randomPoints(r, 90, 25)
	g := NewDenseGridFrom(pts, 2)
	before := make([][]int, len(pts))
	for i := range pts {
		before[i] = g.Neighbors(i, 4)
	}
	g.Rebuild(pts)
	for i := range pts {
		if !equalInts(before[i], g.Neighbors(i, 4)) {
			t.Fatalf("point %d: answers changed after identical rebuild", i)
		}
	}
}

// AppendNeighbors must match ForNeighbors order exactly and reuse the
// caller's buffer, on both grid backends.
func TestAppendNeighborsMatchesForNeighbors(t *testing.T) {
	r := rand.New(rand.NewPCG(27, 28))
	pts := randomPoints(r, 100, 20)
	const radius = 3.0
	dense := NewDenseGridFrom(pts, radius)
	sparse := NewGrid(pts, radius)
	buf := make([]int32, 0, len(pts))
	for _, src := range []interface {
		AppendNeighbors(dst []int32, i int, radius float64) []int32
		Neighbors(i int, radius float64) []int
	}{dense, sparse} {
		for i := range pts {
			buf = src.AppendNeighbors(buf[:0], i, radius)
			want := src.Neighbors(i, radius)
			if len(buf) != len(want) {
				t.Fatalf("point %d: append %d neighbours, callback %d", i, len(buf), len(want))
			}
			for k, j := range want {
				if int(buf[k]) != j {
					t.Fatalf("point %d: append order %v, callback order %v", i, buf, want)
				}
			}
		}
	}
}

func TestDenseGridSteadyStateRebuildAllocationFree(t *testing.T) {
	r := rand.New(rand.NewPCG(29, 30))
	pts := randomPoints(r, 256, 40)
	g := NewDenseGridFrom(pts, 2)
	buf := make([]int32, 0, 64)
	allocs := testing.AllocsPerRun(20, func() {
		// Jitter in place: same bounding box scale, new cell membership.
		for i := range pts {
			pts[i].X += (r.Float64() - 0.5)
			pts[i].Y += (r.Float64() - 0.5)
		}
		g.Rebuild(pts)
		for i := range pts {
			buf = g.AppendNeighbors(buf[:0], i, 2)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Rebuild+query allocated %.1f times per run, want 0", allocs)
	}
}

func TestDenseGridEdgeCases(t *testing.T) {
	g := NewDenseGrid(1)
	g.Rebuild(nil)
	if g.Len() != 0 || g.Cells() != 0 {
		t.Fatalf("empty rebuild: Len=%d Cells=%d", g.Len(), g.Cells())
	}
	g.Rebuild([]vec.Vec2{{X: 3, Y: -7}})
	if got := g.Neighbors(0, 5); len(got) != 0 {
		t.Fatalf("single point has no neighbours, got %v", got)
	}
	if g.Cells() != 1 {
		t.Fatalf("single point should occupy one cell, got %d", g.Cells())
	}
	// Points exactly on cell boundaries (negative and positive).
	pts := []vec.Vec2{{X: 0, Y: 0}, {X: -1, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: -1}, {X: 0, Y: 1}}
	g.Rebuild(pts)
	if got := sorted(g.Neighbors(0, 1)); !equalInts(got, []int{1, 2, 3, 4}) {
		t.Fatalf("boundary-inclusive query: %v", got)
	}
}

func TestDenseGridRejectsBadCellSize(t *testing.T) {
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cell size %v should panic", bad)
				}
			}()
			NewDenseGrid(bad)
		}()
	}
}
