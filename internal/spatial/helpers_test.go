package spatial

import "repro/internal/vec"

// v2 and v3 are keyed-literal shorthands for test fixtures.
func v2(x, y float64) vec.Vec2 { return vec.Vec2{X: x, Y: y} }

func v3(x, y, z float64) vec.Vec3 { return vec.Vec3{X: x, Y: y, Z: z} }
