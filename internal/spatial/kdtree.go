package spatial

import (
	"math"
	"sort"

	"repro/internal/vec"
)

// KDTree3 is a static k-d tree over points in R³ supporting exact
// nearest-neighbour queries. It is the correspondence engine of the ICP
// alignment: the paper lifts 2-D particle configurations into R³ with the
// type as third coordinate (Sec. 5.2) so that nearest-neighbour matching
// never crosses particle types, and queries the reference cloud once per
// moving point per ICP iteration.
//
// The tree stores indices into the original point slice; Nearest returns
// that index so callers can recover particle identities.
type KDTree3 struct {
	points []vec.Vec3
	nodes  []kdNode
	root   int32
	idx    []int32
	sorter kdSorter
}

type kdNode struct {
	point       vec.Vec3
	index       int32 // index into the original slice
	left, right int32 // node indices, -1 for none
	axis        int8
}

// NewKDTree3 builds a balanced tree by recursive median split. The input
// slice is not retained or modified.
func NewKDTree3(points []vec.Vec3) *KDTree3 {
	t := &KDTree3{}
	t.Rebuild(points)
	return t
}

// Rebuild reconstructs the tree over a new point set in place, reusing the
// node and index storage of previous builds. After warm-up, rebuilding over
// same-sized inputs performs no heap allocation — the property the ICP
// alignment relies on when it re-lifts the reference cloud once per frame
// pair. The input slice is read during the call only, not retained.
func (t *KDTree3) Rebuild(points []vec.Vec3) {
	t.points = points
	t.nodes = t.nodes[:0]
	if cap(t.idx) < len(points) {
		t.idx = make([]int32, len(points))
	}
	t.idx = t.idx[:len(points)]
	for i := range t.idx {
		t.idx[i] = int32(i)
	}
	t.root = t.build(t.idx, 0)
	t.points = nil
	t.sorter = kdSorter{}
}

// kdSorter sorts an index slice by one coordinate axis with a deterministic
// index tie-break. It replaces a per-node sort.Slice call (whose closure and
// reflection-based swapper allocate) with a reusable sort.Interface value.
type kdSorter struct {
	idx    []int32
	points []vec.Vec3
	axis   int8
}

func (s *kdSorter) Len() int      { return len(s.idx) }
func (s *kdSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }
func (s *kdSorter) Less(a, b int) bool {
	ca := coord3(s.points[s.idx[a]], s.axis)
	cb := coord3(s.points[s.idx[b]], s.axis)
	if ca != cb {
		return ca < cb
	}
	return s.idx[a] < s.idx[b] // stable tie-break for determinism
}

func coord3(p vec.Vec3, axis int8) float64 {
	switch axis {
	case 0:
		return p.X
	case 1:
		return p.Y
	default:
		return p.Z
	}
}

func (t *KDTree3) build(idx []int32, depth int) int32 {
	if len(idx) == 0 {
		return -1
	}
	axis := int8(depth % 3)
	t.sorter = kdSorter{idx: idx, points: t.points, axis: axis}
	sort.Sort(&t.sorter)
	mid := len(idx) / 2
	node := kdNode{
		point: t.points[idx[mid]],
		index: idx[mid],
		axis:  axis,
	}
	t.nodes = append(t.nodes, node)
	self := int32(len(t.nodes) - 1)
	// Children must be built after appending self; record their roots.
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[self].left = left
	t.nodes[self].right = right
	return self
}

// Nearest returns the index (into the construction slice) of the point
// closest to q in Euclidean distance, and the squared distance. It panics
// on an empty tree. Ties are broken toward the smaller original index by
// the deterministic construction order.
func (t *KDTree3) Nearest(q vec.Vec3) (index int, dist2 float64) {
	if t.root < 0 {
		panic("spatial: Nearest on empty KDTree3")
	}
	best := int32(-1)
	bestD2 := math.Inf(1)
	t.search(t.root, q, &best, &bestD2)
	return int(best), bestD2
}

func (t *KDTree3) search(ni int32, q vec.Vec3, best *int32, bestD2 *float64) {
	if ni < 0 {
		return
	}
	n := &t.nodes[ni]
	d2 := n.point.Dist2(q)
	if d2 < *bestD2 || (d2 == *bestD2 && (*best < 0 || n.index < *best)) {
		*bestD2 = d2
		*best = n.index
	}
	delta := coord3(q, n.axis) - coord3(n.point, n.axis)
	near, far := n.left, n.right
	if delta > 0 {
		near, far = far, near
	}
	t.search(near, q, best, bestD2)
	if delta*delta <= *bestD2 {
		t.search(far, q, best, bestD2)
	}
}

// Len returns the number of points in the tree.
func (t *KDTree3) Len() int { return len(t.nodes) }

// BruteNearest3 is the reference nearest-neighbour implementation used by
// tests and by the ICP ablation benchmark.
func BruteNearest3(points []vec.Vec3, q vec.Vec3) (index int, dist2 float64) {
	if len(points) == 0 {
		panic("spatial: BruteNearest3 on empty slice")
	}
	best, bestD2 := 0, points[0].Dist2(q)
	for i := 1; i < len(points); i++ {
		if d2 := points[i].Dist2(q); d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best, bestD2
}
