package kmeans

import (
	"math"
	"testing"

	"repro/internal/rngx"
	"repro/internal/vec"
)

func gaussianBlobs(rng rngx.Source, centers []vec.Vec2, perBlob int, spread float64) []vec.Vec2 {
	var pts []vec.Vec2
	for _, c := range centers {
		for i := 0; i < perBlob; i++ {
			pts = append(pts, vec.Vec2{
				X: c.X + rng.NormFloat64()*spread,
				Y: c.Y + rng.NormFloat64()*spread,
			})
		}
	}
	return pts
}

func TestClusterRecoversWellSeparatedBlobs(t *testing.T) {
	rng := rngx.New(1)
	centers := []vec.Vec2{v2(0, 0), v2(20, 0), v2(0, 20)}
	pts := gaussianBlobs(rng, centers, 30, 0.5)
	res, err := Cluster(pts, 3, rngx.New(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every recovered centroid must be within 1 unit of a true centre.
	for _, c := range res.Centroids {
		best := math.Inf(1)
		for _, tc := range centers {
			best = math.Min(best, c.Dist(tc))
		}
		if best > 1 {
			t.Fatalf("centroid %v far from every true centre", c)
		}
	}
	// Points within one blob must share a cluster.
	for b := 0; b < 3; b++ {
		first := res.Assign[b*30]
		for i := 1; i < 30; i++ {
			if res.Assign[b*30+i] != first {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
}

func TestClusterAssignmentsAreNearest(t *testing.T) {
	rng := rngx.New(3)
	pts := gaussianBlobs(rng, []vec.Vec2{v2(0, 0), v2(8, 8)}, 25, 1.5)
	res, err := Cluster(pts, 4, rngx.New(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		got := res.Assign[i]
		for c := range res.Centroids {
			if p.Dist2(res.Centroids[c]) < p.Dist2(res.Centroids[got])-1e-9 {
				t.Fatalf("point %d assigned to non-nearest centroid", i)
			}
		}
	}
}

func TestClusterSSEConsistent(t *testing.T) {
	rng := rngx.New(5)
	pts := gaussianBlobs(rng, []vec.Vec2{v2(0, 0), v2(10, 0)}, 20, 1)
	res, err := Cluster(pts, 2, rngx.New(6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i, p := range pts {
		want += p.Dist2(res.Centroids[res.Assign[i]])
	}
	if math.Abs(res.SSE-want) > 1e-9 {
		t.Fatalf("SSE = %v, recomputed %v", res.SSE, want)
	}
}

func TestClusterMoreClustersNeverWorse(t *testing.T) {
	// Optimal SSE is non-increasing in k; Lloyd is not optimal but on
	// well-separated data the recovered SSE should still decrease
	// substantially from k=1 to k=3.
	rng := rngx.New(7)
	pts := gaussianBlobs(rng, []vec.Vec2{v2(0, 0), v2(15, 0), v2(0, 15)}, 20, 0.5)
	r1, _ := Cluster(pts, 1, rngx.New(8), Options{})
	r3, _ := Cluster(pts, 3, rngx.New(9), Options{})
	if r3.SSE > r1.SSE/10 {
		t.Fatalf("k=3 SSE %v not ≪ k=1 SSE %v on separated blobs", r3.SSE, r1.SSE)
	}
}

func TestClusterKEqualsN(t *testing.T) {
	pts := []vec.Vec2{v2(0, 0), v2(1, 0), v2(2, 0)}
	res, err := Cluster(pts, 3, rngx.New(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE > 1e-12 {
		t.Fatalf("k=n SSE = %v, want 0", res.SSE)
	}
}

func TestClusterKOne(t *testing.T) {
	pts := []vec.Vec2{v2(0, 0), v2(4, 0)}
	res, err := Cluster(pts, 1, rngx.New(11), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids[0].Dist(vec.Vec2{X: 2}) > 1e-12 {
		t.Fatalf("k=1 centroid = %v, want the mean", res.Centroids[0])
	}
}

func TestClusterInvalidK(t *testing.T) {
	pts := []vec.Vec2{v2(0, 0)}
	if _, err := Cluster(pts, 0, rngx.New(1), Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Cluster(pts, 2, rngx.New(1), Options{}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestClusterDeterministicForFixedStream(t *testing.T) {
	rng := rngx.New(12)
	pts := gaussianBlobs(rng, []vec.Vec2{v2(0, 0), v2(9, 9)}, 15, 1)
	a, _ := Cluster(pts, 2, rngx.New(13), Options{})
	b, _ := Cluster(pts, 2, rngx.New(13), Options{})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same stream produced different clusterings")
		}
	}
}

func TestClusterDuplicatePoints(t *testing.T) {
	pts := []vec.Vec2{v2(1, 1), v2(1, 1), v2(1, 1), v2(5, 5)}
	res, err := Cluster(pts, 2, rngx.New(14), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE > 1e-12 {
		t.Fatalf("duplicate-point clustering SSE = %v", res.SSE)
	}
}

func TestPartitionByType(t *testing.T) {
	// 3 types × 8 particles each, each type concentrated in 2 blobs.
	rng := rngx.New(15)
	var pts []vec.Vec2
	var typeOf []int
	for ty := 0; ty < 3; ty++ {
		off := float64(ty) * 100
		pts = append(pts, gaussianBlobs(rng, []vec.Vec2{v2(off, 0), v2(off+10, 0)}, 4, 0.3)...)
		for i := 0; i < 8; i++ {
			typeOf = append(typeOf, ty)
		}
	}
	groups, err := PartitionByType(pts, typeOf, 3, 2, rngx.New(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("got %d type entries", len(groups))
	}
	seen := map[int]bool{}
	for ty, perType := range groups {
		if len(perType) != 2 {
			t.Fatalf("type %d: %d groups, want 2", ty, len(perType))
		}
		for _, g := range perType {
			for _, i := range g {
				if typeOf[i] != ty {
					t.Fatalf("particle %d (type %d) grouped under type %d", i, typeOf[i], ty)
				}
				if seen[i] {
					t.Fatalf("particle %d in two groups", i)
				}
				seen[i] = true
			}
		}
	}
	if len(seen) != len(pts) {
		t.Fatalf("%d of %d particles grouped", len(seen), len(pts))
	}
}

func TestPartitionByTypeKLargerThanMembers(t *testing.T) {
	pts := []vec.Vec2{v2(0, 0), v2(1, 0), v2(10, 10)}
	typeOf := []int{0, 0, 1}
	groups, err := PartitionByType(pts, typeOf, 2, 5, rngx.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups[0]) != 2 || len(groups[1]) != 1 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestPartitionByTypeValidation(t *testing.T) {
	if _, err := PartitionByType([]vec.Vec2{v2(0, 0)}, []int{0, 1}, 2, 1, rngx.New(1)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PartitionByType([]vec.Vec2{v2(0, 0)}, []int{5}, 2, 1, rngx.New(1)); err == nil {
		t.Error("out-of-range type accepted")
	}
}
